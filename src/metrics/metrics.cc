#include "metrics/metrics.h"

#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/check.h"
#include "vm/vm.h"

namespace msw::metrics {

double
process_cpu_seconds()
{
    struct rusage ru;
    if (::getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    const auto to_s = [](const timeval& tv) {
        return static_cast<double>(tv.tv_sec) +
               static_cast<double>(tv.tv_usec) * 1e-6;
    };
    return to_s(ru.ru_utime) + to_s(ru.ru_stime);
}

double
wall_seconds()
{
    struct timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

// ---------------------------------------------------------------- sampler

RssSampler::RssSampler(unsigned interval_ms)
    : interval_ms_(interval_ms), start_(wall_seconds())
{
    thread_ = std::thread([this] { loop(); });
}

RssSampler::~RssSampler()
{
    stop();
}

void
RssSampler::loop()
{
    // msw-relaxed(config-flag): shutdown poll; the join in stop()
    // orders everything after the final iteration.
    while (!stop_.load(std::memory_order_relaxed)) {
        const std::size_t rss = vm::current_rss_bytes();
        {
            MutexGuard g(mu_);
            samples_.emplace_back(wall_seconds() - start_, rss);
        }
        struct timespec ts {
            0, static_cast<long>(interval_ms_) * 1000000
        };
        ::nanosleep(&ts, nullptr);
    }
}

void
RssSampler::stop()
{
    if (thread_.joinable()) {
        // msw-relaxed(config-flag): one-way latch; the join below is
        // the synchronisation point.
        stop_.store(true, std::memory_order_relaxed);
        thread_.join();
    }
}

std::size_t
RssSampler::average() const
{
    MutexGuard g(mu_);
    if (samples_.empty())
        return 0;
    unsigned long long sum = 0;
    for (const auto& [t, rss] : samples_)
        sum += rss;
    return static_cast<std::size_t>(sum / samples_.size());
}

std::size_t
RssSampler::peak() const
{
    MutexGuard g(mu_);
    std::size_t best = 0;
    for (const auto& [t, rss] : samples_)
        best = rss > best ? rss : best;
    return best;
}

std::vector<std::pair<double, std::size_t>>
RssSampler::series() const
{
    MutexGuard g(mu_);
    return samples_;
}

// ------------------------------------------------------------ subprocess

namespace {

struct WireHeader {
    double wall_s;
    double cpu_s;
    std::uint64_t avg_rss;
    std::uint64_t peak_rss;
    std::uint64_t sweeps;
    std::uint64_t allocs;
    std::uint64_t frees;
    std::uint64_t checksum;
    std::uint64_t emergency_sweeps;
    std::uint64_t commit_retries;
    std::uint64_t watchdog_fallbacks;
    std::uint64_t oom_returns;
    std::uint64_t failed_allocs;
    // LatencySummary is trivially copyable; ship it verbatim.
    LatencySummary op_latency;
    LatencySummary sweep_pause;
    std::uint64_t pause_total_ns;
    std::uint64_t stw_total_ns;
    std::uint64_t phase_dirty_scan_ns;
    std::uint64_t phase_mark_ns;
    std::uint64_t phase_drain_ns;
    std::uint64_t phase_release_ns;
    std::uint64_t series_len;
};

struct WireSample {
    double t;
    std::uint64_t rss;
};

/**
 * Read @p len bytes, giving up (and returning false) if nothing arrives
 * within @p timeout_s seconds (0 = wait forever). On timeout the child is
 * killed by the caller.
 */
bool
read_fully(int fd, void* buf, std::size_t len, unsigned timeout_s)
{
    auto* p = static_cast<char*>(buf);
    while (len > 0) {
        if (timeout_s > 0) {
            struct pollfd pfd {
                fd, POLLIN, 0
            };
            const int pr =
                ::poll(&pfd, 1, static_cast<int>(timeout_s) * 1000);
            if (pr <= 0)
                return false;
        }
        const ssize_t n = ::read(fd, p, len);
        if (n <= 0)
            return false;
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
write_fully(int fd, const void* buf, std::size_t len)
{
    const auto* p = static_cast<const char*>(buf);
    while (len > 0) {
        const ssize_t n = ::write(fd, p, len);
        if (n <= 0)
            return false;
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

}  // namespace

RunRecord
run_in_subprocess(const std::function<RunRecord()>& body,
                  unsigned timeout_s)
{
    int fds[2];
    MSW_CHECK(::pipe(fds) == 0);

    const pid_t pid = ::fork();
    MSW_CHECK(pid >= 0);
    if (pid == 0) {
        ::close(fds[0]);
        RunRecord rec = body();
        WireHeader hdr;
        hdr.wall_s = rec.wall_s;
        hdr.cpu_s = rec.cpu_s;
        hdr.avg_rss = rec.avg_rss;
        hdr.peak_rss = rec.peak_rss;
        hdr.sweeps = rec.sweeps;
        hdr.allocs = rec.allocs;
        hdr.frees = rec.frees;
        hdr.checksum = rec.checksum;
        hdr.emergency_sweeps = rec.emergency_sweeps;
        hdr.commit_retries = rec.commit_retries;
        hdr.watchdog_fallbacks = rec.watchdog_fallbacks;
        hdr.oom_returns = rec.oom_returns;
        hdr.failed_allocs = rec.failed_allocs;
        hdr.op_latency = rec.op_latency;
        hdr.sweep_pause = rec.sweep_pause;
        hdr.pause_total_ns = rec.pause_total_ns;
        hdr.stw_total_ns = rec.stw_total_ns;
        hdr.phase_dirty_scan_ns = rec.phase_dirty_scan_ns;
        hdr.phase_mark_ns = rec.phase_mark_ns;
        hdr.phase_drain_ns = rec.phase_drain_ns;
        hdr.phase_release_ns = rec.phase_release_ns;
        hdr.series_len = rec.rss_series.size();
        bool ok = write_fully(fds[1], &hdr, sizeof(hdr));
        for (const auto& [t, rss] : rec.rss_series) {
            if (!ok)
                break;
            WireSample s{t, rss};
            ok = write_fully(fds[1], &s, sizeof(s));
        }
        ::close(fds[1]);
        ::_exit(ok ? 0 : 1);
    }

    ::close(fds[1]);

    RunRecord rec;
    WireHeader hdr;
    bool ok = read_fully(fds[0], &hdr, sizeof(hdr), timeout_s);
    if (ok) {
        rec.wall_s = hdr.wall_s;
        rec.cpu_s = hdr.cpu_s;
        rec.avg_rss = hdr.avg_rss;
        rec.peak_rss = hdr.peak_rss;
        rec.sweeps = hdr.sweeps;
        rec.allocs = hdr.allocs;
        rec.frees = hdr.frees;
        rec.checksum = hdr.checksum;
        rec.emergency_sweeps = hdr.emergency_sweeps;
        rec.commit_retries = hdr.commit_retries;
        rec.watchdog_fallbacks = hdr.watchdog_fallbacks;
        rec.oom_returns = hdr.oom_returns;
        rec.failed_allocs = hdr.failed_allocs;
        rec.op_latency = hdr.op_latency;
        rec.sweep_pause = hdr.sweep_pause;
        rec.pause_total_ns = hdr.pause_total_ns;
        rec.stw_total_ns = hdr.stw_total_ns;
        rec.phase_dirty_scan_ns = hdr.phase_dirty_scan_ns;
        rec.phase_mark_ns = hdr.phase_mark_ns;
        rec.phase_drain_ns = hdr.phase_drain_ns;
        rec.phase_release_ns = hdr.phase_release_ns;
        rec.rss_series.reserve(hdr.series_len);
        for (std::uint64_t i = 0; i < hdr.series_len && ok; ++i) {
            WireSample s;
            ok = read_fully(fds[0], &s, sizeof(s), timeout_s);
            if (ok)
                rec.rss_series.emplace_back(s.t, s.rss);
        }
    }
    ::close(fds[0]);

    if (!ok)
        ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    rec.ok = ok && WIFEXITED(status) && WEXITSTATUS(status) == 0;
    return rec;
}

// ----------------------------------------------------------------- table

double
geomean(const std::vector<double>& values)
{
    if (values.empty())
        return 0;
    double log_sum = 0;
    for (const double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{}

void
Table::add_row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
Table::print() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = row[c].size() > widths[c] ? row[c].size()
                                                  : widths[c];
    }
    const auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string& cell = c < row.size() ? row[c] : "";
            std::printf("%c %-*s", c == 0 ? '|' : '|',
                        static_cast<int>(widths[c]), cell.c_str());
        }
        std::printf("|\n");
    };
    print_row(headers_);
    for (std::size_t c = 0; c < widths.size(); ++c) {
        std::printf("|%s", std::string(widths[c] + 2, '-').c_str());
    }
    std::printf("|\n");
    for (const auto& row : rows_)
        print_row(row);
    std::fflush(stdout);
}

std::string
fmt_ratio(double r)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3fx", r);
    return buf;
}

std::string
fmt_mib(std::size_t bytes)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
    return buf;
}

std::string
fmt_seconds(double s)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", s);
    return buf;
}

double
bench_scale()
{
    const char* env = std::getenv("MSW_BENCH_SCALE");
    if (env == nullptr)
        return 1.0;
    const double v = std::atof(env);
    return v > 0 ? v : 1.0;
}

}  // namespace msw::metrics
