/**
 * @file
 * Fixed-size binary trace ring for sweep/lifecycle/resilience events.
 *
 * A multi-producer overwrite-oldest ring of small binary slots: every
 * push claims a ticket from an atomic cursor and writes slot
 * (ticket mod kSlots) under a per-slot sequence word (a miniature
 * seqlock). Readers validate each slot's sequence before and after
 * copying the payload, so entries caught mid-overwrite are discarded
 * rather than returned torn. All fields are atomics, so concurrent
 * push/snapshot is race-free under TSan; the reader's relaxed payload
 * loads leave a theoretical window where a stale payload passes the
 * sequence recheck on weakly-ordered hardware, which diagnostic trace
 * data tolerates by design (documented in DESIGN.md §14).
 *
 * Allocation-free and fixed-size: safe to snapshot from the SIGUSR2
 * dump handler and usable on the self-hosted LD_PRELOAD path.
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace msw::metrics {

/** Event identities recorded by the runtime (DESIGN.md §14). */
enum class TraceEvent : std::uint32_t {
    kNone = 0,
    kSweepBegin,        ///< a0 = locked-in quarantine entries
    kSweepEnd,          ///< a0 = duration ns, a1 = entries released
    kPhaseDirtyScan,    ///< a0 = duration ns
    kPhaseMark,         ///< a0 = duration ns, a1 = bytes scanned
    kPhaseDrain,        ///< a0 = duration ns
    kPhaseRelease,      ///< a0 = duration ns, a1 = entries released
    kStwPause,          ///< a0 = duration ns
    kAllocPause,        ///< a0 = duration ns (backpressure pause)
    kWatchdogFallback,  ///< synchronous sweep on a mutator thread
    kEmergencySweep,    ///< reclaim forced from the alloc() ladder
    kOomReturn,         ///< a0 = request bytes (alloc returned nullptr)
    kForkChild,         ///< runtime reset in an atfork child
    kCount,
};

/** Short stable name for an event ("sweep_begin", ...). */
const char* trace_event_name(TraceEvent event);

/** One decoded trace entry. */
struct TraceRecord {
    std::uint64_t ticket = 0;  ///< Global event ordinal.
    std::uint64_t ts_ns = 0;   ///< CLOCK_MONOTONIC stamp.
    TraceEvent event = TraceEvent::kNone;
    std::uint64_t a0 = 0;
    std::uint64_t a1 = 0;
};

class TraceRing
{
  public:
    /** Ring capacity; power of two. ~80 KiB of static slots. */
    static constexpr std::size_t kSlots = 2048;

    constexpr TraceRing() = default;

    TraceRing(const TraceRing&) = delete;
    TraceRing& operator=(const TraceRing&) = delete;

    /** Append one event (wait-free; overwrites the oldest slot). */
    void push(TraceEvent event, std::uint64_t a0 = 0,
              std::uint64_t a1 = 0);

    /**
     * Copy up to @p cap of the *newest* stable entries into @p out,
     * oldest-first among those returned. Slots caught mid-write are
     * skipped. Allocation-free; safe from the signal dump path.
     */
    std::size_t snapshot(TraceRecord* out, std::size_t cap) const;

    /** Total events pushed since construction/reset. */
    std::uint64_t pushed() const;

    /** Clear the ring. Only legal with no concurrent writers. */
    void reset();

  private:
    struct Slot {
        // seq: 2*ticket+1 while writing, 2*ticket+2 once stable.
        std::atomic<std::uint64_t> seq{0};
        std::atomic<std::uint64_t> ts{0};
        std::atomic<std::uint64_t> ev{0};
        std::atomic<std::uint64_t> a0{0};
        std::atomic<std::uint64_t> a1{0};
    };

    std::atomic<std::uint64_t> cursor_{0};
    Slot slots_[kSlots];
};

}  // namespace msw::metrics
