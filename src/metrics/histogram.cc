#include "metrics/histogram.h"

namespace msw::metrics {

unsigned
Histogram::bucket_index(std::uint64_t value)
{
    // Bit width of (value | 1): 2^(b-1) <= value < 2^b, b >= 1.
    const unsigned b =
        64u - static_cast<unsigned>(__builtin_clzll(value | 1));
    if (b <= kSubBits)
        return static_cast<unsigned>(value);  // exact below 2^kSubBits
    // (value >> shift) lies in [kHalf*2/2, kSubCount) = [kHalf, 2*kHalf):
    // kHalf linear sub-buckets per power-of-two group. Groups are laid
    // out at (shift+1)*kHalf so group boundaries never collide with the
    // exact region; the layout leaves a small unused gap, which costs a
    // few cells and buys branch-free decode.
    const unsigned shift = b - kSubBits;
    return (shift + 1) * kHalf + static_cast<unsigned>(value >> shift);
}

std::uint64_t
Histogram::bucket_lower(unsigned index)
{
    if (index < kSubCount)
        return index;
    const unsigned shift = index / kHalf - 2;
    const unsigned sub = index - (shift + 1) * kHalf;
    return static_cast<std::uint64_t>(sub) << shift;
}

std::uint64_t
Histogram::bucket_upper(unsigned index)
{
    if (index < kSubCount)
        return index;
    const unsigned shift = index / kHalf - 2;
    return bucket_lower(index) + ((std::uint64_t{1} << shift) - 1);
}

void
Histogram::record(std::uint64_t value)
{
    // msw-relaxed(hist-cell): monotonic tally cells; totals impose no
    // ordering on the durations they count, and readers accept
    // cross-cell skew while writers are active.
    cells_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    // msw-relaxed(hist-cell): as above — sample count tally.
    count_.fetch_add(1, std::memory_order_relaxed);
    // msw-relaxed(hist-cell): as above — value sum tally (mod 2^64).
    sum_.fetch_add(value, std::memory_order_relaxed);
}

void
Histogram::merge_from(const Histogram& other)
{
    for (unsigned i = 0; i < kBuckets; ++i) {
        // msw-relaxed(hist-cell): cell-wise merge; wraparound addition
        // is associative, so the destination totals are exact.
        const std::uint64_t v =
            other.cells_[i].load(std::memory_order_relaxed);
        if (v != 0) {
            // msw-relaxed(hist-cell): as above — merge add.
            cells_[i].fetch_add(v, std::memory_order_relaxed);
        }
    }
    // msw-relaxed(hist-cell): as above — count/sum merge.
    count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    // msw-relaxed(hist-cell): as above — count/sum merge.
    sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
}

std::uint64_t
Histogram::count() const
{
    // msw-relaxed(hist-cell): statistics read; exact once writers
    // quiesce (thread join is the synchronisation point).
    return count_.load(std::memory_order_relaxed);
}

std::uint64_t
Histogram::sum() const
{
    // msw-relaxed(hist-cell): statistics read, as count() above.
    return sum_.load(std::memory_order_relaxed);
}

std::uint64_t
Histogram::bucket_count(unsigned index) const
{
    // msw-relaxed(hist-cell): statistics read, as count() above.
    return cells_[index].load(std::memory_order_relaxed);
}

std::uint64_t
Histogram::percentile(double q) const
{
    // Single pass: snapshot-free rank walk. Concurrent writers can skew
    // the result by at most the in-flight samples, which every caller
    // (post-join reporting, diagnostics) tolerates.
    std::uint64_t total = 0;
    for (unsigned i = 0; i < kBuckets; ++i)
        total += bucket_count(i);
    if (total == 0)
        return 0;
    if (q < 0)
        q = 0;
    if (q > 1)
        q = 1;
    // rank = ceil(q * total), clamped to [1, total]; integer math so
    // the signal-safe dump path shares this code.
    auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(total) + 0.9999999);
    if (rank < 1)
        rank = 1;
    if (rank > total)
        rank = total;
    std::uint64_t cum = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        cum += bucket_count(i);
        if (cum >= rank)
            return bucket_upper(i);
    }
    return max_value();
}

std::uint64_t
Histogram::max_value() const
{
    for (unsigned i = kBuckets; i > 0; --i) {
        if (bucket_count(i - 1) != 0)
            return bucket_upper(i - 1);
    }
    return 0;
}

LatencySummary
Histogram::summarize() const
{
    LatencySummary s;
    // One bucket pass feeds count, max and all percentiles so the
    // digest is self-consistent even against concurrent writers.
    std::uint64_t counts[kBuckets];
    std::uint64_t total = 0;
    unsigned highest = 0;
    bool any = false;
    for (unsigned i = 0; i < kBuckets; ++i) {
        counts[i] = bucket_count(i);
        total += counts[i];
        if (counts[i] != 0) {
            highest = i;
            any = true;
        }
    }
    s.count = total;
    if (!any)
        return s;
    s.max_ns = bucket_upper(highest);
    s.mean_ns = static_cast<double>(sum()) / static_cast<double>(total);
    const auto at = [&](std::uint64_t rank) {
        if (rank < 1)
            rank = 1;
        std::uint64_t cum = 0;
        for (unsigned i = 0; i < kBuckets; ++i) {
            cum += counts[i];
            if (cum >= rank)
                return bucket_upper(i);
        }
        return s.max_ns;
    };
    s.p50_ns = at((total + 1) / 2);
    s.p90_ns = at((total * 9 + 9) / 10);
    s.p99_ns = at((total * 99 + 99) / 100);
    s.p999_ns = at((total * 999 + 999) / 1000);
    return s;
}

void
Histogram::reset()
{
    for (unsigned i = 0; i < kBuckets; ++i) {
        // msw-relaxed(hist-cell): reset with no concurrent writers by
        // contract; the caller's quiesce point orders it.
        cells_[i].store(0, std::memory_order_relaxed);
    }
    // msw-relaxed(hist-cell): as above — quiesced reset.
    count_.store(0, std::memory_order_relaxed);
    // msw-relaxed(hist-cell): as above — quiesced reset.
    sum_.store(0, std::memory_order_relaxed);
}

}  // namespace msw::metrics
