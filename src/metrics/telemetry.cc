#include "metrics/telemetry.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <unistd.h>

#include "util/sigsafe_io.h"

namespace msw::metrics {

namespace {

Telemetry g_telemetry;

/// MSW_STATS_DUMP target, captured during single-threaded bootstrap.
char g_dump_path[1024];

std::atomic<bool> g_usr2_installed{false};

/// Maximum counters a provider may export through one dump.
constexpr std::size_t kMaxCounters = 32;

bool
env_truthy(const char* v)
{
    if (v == nullptr || *v == '\0')
        return false;
    return std::strcmp(v, "0") != 0 && std::strcmp(v, "off") != 0 &&
           std::strcmp(v, "false") != 0 && std::strcmp(v, "no") != 0;
}

/// Rounded mean for integer-only output surfaces.
std::uint64_t
mean_as_u64(const LatencySummary& s)
{
    if (s.mean_ns <= 0)
        return 0;
    return static_cast<std::uint64_t>(s.mean_ns + 0.5);
}

void
json_summary(std::FILE* f, const char* name, const LatencySummary& s,
             bool trailing_comma)
{
    std::fprintf(f,
                 "  \"%s\": {\"count\": %llu, \"mean_ns\": %.1f, "
                 "\"max_ns\": %llu, \"p50_ns\": %llu, \"p90_ns\": %llu, "
                 "\"p99_ns\": %llu, \"p999_ns\": %llu}%s\n",
                 name, static_cast<unsigned long long>(s.count), s.mean_ns,
                 static_cast<unsigned long long>(s.max_ns),
                 static_cast<unsigned long long>(s.p50_ns),
                 static_cast<unsigned long long>(s.p90_ns),
                 static_cast<unsigned long long>(s.p99_ns),
                 static_cast<unsigned long long>(s.p999_ns),
                 trailing_comma ? "," : "");
}

void
sigsafe_summary(util::SigsafeWriter& w, const char* name,
                const LatencySummary& s)
{
    w.str(name);
    w.str(" count=");
    w.dec(s.count);
    w.str(" mean=");
    w.dec(mean_as_u64(s));
    w.str(" max=");
    w.dec(s.max_ns);
    w.str(" p50=");
    w.dec(s.p50_ns);
    w.str(" p90=");
    w.dec(s.p90_ns);
    w.str(" p99=");
    w.dec(s.p99_ns);
    w.str(" p999=");
    w.dec(s.p999_ns);
    w.str("\n");
}

void
usr2_handler(int)
{
    // Preserve errno across the dump: write(2) inside SigsafeWriter may
    // clobber it, and the interrupted code must not observe that.
    const int saved_errno = errno;
    telemetry_dump_sigsafe(STDERR_FILENO);
    errno = saved_errno;
}

}  // namespace

Telemetry&
telemetry()
{
    return g_telemetry;
}

std::uint64_t
telemetry_now_ns()
{
    struct timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

bool
telemetry_init_from_env()
{
    bool master = false;
    bool ops = false;
    if (const char* v = std::getenv("MSW_TELEMETRY")) {
        if (env_truthy(v))
            master = true;
        if (std::strcmp(v, "ops") == 0)
            ops = true;
    }
    if (const char* p = std::getenv("MSW_STATS_DUMP")) {
        if (*p != '\0') {
            std::strncpy(g_dump_path, p, sizeof(g_dump_path) - 1);
            g_dump_path[sizeof(g_dump_path) - 1] = '\0';
            master = true;  // a dump path implies the master layer
        }
    }
    Telemetry& t = telemetry();
    if (master) {
        // msw-relaxed(config-flag): advisory toggle armed during
        // bootstrap; gates that observe it late merely skip one sample.
        t.enabled.store(true, std::memory_order_relaxed);
    }
    if (ops) {
        // msw-relaxed(config-flag): as above — advisory toggle.
        t.sample_ops.store(true, std::memory_order_relaxed);
    }
    return master;
}

const char*
telemetry_stats_dump_path()
{
    return g_dump_path[0] != '\0' ? g_dump_path : nullptr;
}

bool
telemetry_write_json(const char* path)
{
    if (path == nullptr || *path == '\0')
        return false;
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr)
        return false;
    Telemetry& t = telemetry();
    std::fprintf(f, "{\n");
    json_summary(f, "alloc_ns", t.alloc_ns.summarize(), true);
    json_summary(f, "free_ns", t.free_ns.summarize(), true);
    json_summary(f, "pause_ns", t.pause_ns.summarize(), true);

    std::fprintf(f, "  \"counters\": {");
    // msw-relaxed(config-flag): provider pointer published once during
    // bootstrap; a null read here just omits the counters section.
    if (TelemetryCounterFn fn =
            t.counter_fn.load(std::memory_order_relaxed)) {
        TelemetryCounter counters[kMaxCounters];
        const std::size_t n = fn(counters, kMaxCounters);
        for (std::size_t i = 0; i < n; ++i) {
            std::fprintf(f, "%s\"%s\": %llu", i == 0 ? "" : ", ",
                         counters[i].name,
                         static_cast<unsigned long long>(counters[i].value));
        }
    }
    std::fprintf(f, "},\n");

    TraceRecord tail[256];
    const std::size_t n =
        t.trace.snapshot(tail, sizeof(tail) / sizeof(tail[0]));
    std::fprintf(f, "  \"trace_pushed\": %llu,\n",
                 static_cast<unsigned long long>(t.trace.pushed()));
    std::fprintf(f, "  \"trace\": [\n");
    for (std::size_t i = 0; i < n; ++i) {
        std::fprintf(f,
                     "    {\"ticket\": %llu, \"ts_ns\": %llu, "
                     "\"event\": \"%s\", \"a0\": %llu, \"a1\": %llu}%s\n",
                     static_cast<unsigned long long>(tail[i].ticket),
                     static_cast<unsigned long long>(tail[i].ts_ns),
                     trace_event_name(tail[i].event),
                     static_cast<unsigned long long>(tail[i].a0),
                     static_cast<unsigned long long>(tail[i].a1),
                     i + 1 == n ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    const bool ok = std::fclose(f) == 0;
    return ok;
}

void
telemetry_dump_sigsafe(int fd)
{
    Telemetry& t = telemetry();
    util::SigsafeWriter w(fd);
    w.str("== msw telemetry ==\n");
    sigsafe_summary(w, "alloc_ns", t.alloc_ns.summarize());
    sigsafe_summary(w, "free_ns", t.free_ns.summarize());
    sigsafe_summary(w, "pause_ns", t.pause_ns.summarize());
    // msw-relaxed(config-flag): provider pointer published once during
    // bootstrap; a null read here just omits the counters section.
    if (TelemetryCounterFn fn =
            t.counter_fn.load(std::memory_order_relaxed)) {
        TelemetryCounter counters[kMaxCounters];
        const std::size_t n = fn(counters, kMaxCounters);
        for (std::size_t i = 0; i < n; ++i) {
            w.str("counter ");
            w.str(counters[i].name);
            w.str("=");
            w.dec(counters[i].value);
            w.str("\n");
        }
    }
    TraceRecord tail[16];
    const std::size_t n =
        t.trace.snapshot(tail, sizeof(tail) / sizeof(tail[0]));
    w.str("trace pushed=");
    w.dec(t.trace.pushed());
    w.str(" showing=");
    w.dec(n);
    w.str("\n");
    for (std::size_t i = 0; i < n; ++i) {
        w.str("  [");
        w.dec(tail[i].ticket);
        w.str("] ts=");
        w.dec(tail[i].ts_ns);
        w.str(" ");
        w.str(trace_event_name(tail[i].event));
        w.str(" a0=");
        w.dec(tail[i].a0);
        w.str(" a1=");
        w.dec(tail[i].a1);
        w.str("\n");
    }
    w.str("== end telemetry ==\n");
    w.flush();
}

void
telemetry_install_sigusr2()
{
    bool expected = false;
    if (!g_usr2_installed.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
        return;
    }
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &usr2_handler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGUSR2, &sa, nullptr);
}

}  // namespace msw::metrics
