/**
 * @file
 * Process-wide telemetry registry: the runtime's observability switchboard
 * (DESIGN.md §14).
 *
 * One static instance aggregates the latency histograms (malloc/free
 * fast-path, sweep pauses), the binary trace ring, and the export
 * surface:
 *
 *  - `MSW_TELEMETRY=1` (or any truthy value) enables the master layer:
 *    pause histograms and trace events. `MSW_TELEMETRY=ops`
 *    additionally samples per-call malloc/free latency — that costs
 *    two clock_gettime reads per operation, so it is a separate gate
 *    that benchmarks leave off.
 *  - `MSW_STATS_DUMP=<path>` implies the master layer and writes a
 *    JSON snapshot at shim teardown (telemetry_write_json).
 *  - SIGUSR2 (telemetry_install_sigusr2) dumps a text snapshot to
 *    stderr through util/sigsafe_io — the handler path touches only
 *    relaxed atomic loads, stack buffers and write(2).
 *
 * With telemetry off, the only cost on the alloc/free fast path is one
 * relaxed load and a predicted-not-taken branch (the acceptance gate:
 * no measurable regression on bench/fastpath_contention).
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "metrics/histogram.h"
#include "metrics/trace_ring.h"

namespace msw::metrics {

/** One named counter exported through the dump surfaces. */
struct TelemetryCounter {
    const char* name;
    std::uint64_t value;
};

/**
 * Provider filling @p out (capacity @p cap) with runtime counters; the
 * shim registers one reading SweepStats. Must be async-signal-safe:
 * the SIGUSR2 handler calls it.
 */
using TelemetryCounterFn = std::size_t (*)(TelemetryCounter* out,
                                           std::size_t cap);

class Telemetry
{
  public:
    constexpr Telemetry() = default;

    Telemetry(const Telemetry&) = delete;
    Telemetry& operator=(const Telemetry&) = delete;

    /** Master gate: pause/sweep histograms + trace ring. */
    bool
    on() const
    {
        // msw-relaxed(config-flag): advisory process-wide toggle; a
        // late-observed flip only drops or adds one sample.
        return enabled.load(std::memory_order_relaxed);
    }

    /** Op-latency gate (separate: costs two clock reads per op). */
    bool
    ops_on() const
    {
        // msw-relaxed(config-flag): advisory toggle, as on() above.
        return sample_ops.load(std::memory_order_relaxed);
    }

    /** Push a trace event iff the master gate is on. */
    void
    trace_event(TraceEvent event, std::uint64_t a0 = 0,
                std::uint64_t a1 = 0)
    {
        if (on())
            trace.push(event, a0, a1);
    }

    std::atomic<bool> enabled{false};
    std::atomic<bool> sample_ops{false};

    Histogram alloc_ns;  ///< malloc/alloc_aligned fast-path latency.
    Histogram free_ns;   ///< free fast-path latency.
    Histogram pause_ns;  ///< Backpressure allocation pauses.
    TraceRing trace;

    std::atomic<TelemetryCounterFn> counter_fn{nullptr};
};

/** The process-wide instance (static storage; allocation-free). */
Telemetry& telemetry();

/**
 * Read MSW_TELEMETRY / MSW_STATS_DUMP and arm the gates accordingly.
 * Returns true when the master layer ended up enabled. Stores the dump
 * path into a fixed internal buffer (telemetry_stats_dump_path).
 */
bool telemetry_init_from_env();

/** MSW_STATS_DUMP path captured by telemetry_init_from_env (or null). */
const char* telemetry_stats_dump_path();

/**
 * Write the JSON snapshot (histograms, counters, trace tail) to @p
 * path. Normal-context only (uses stdio). Returns false on I/O error.
 */
bool telemetry_write_json(const char* path);

/**
 * Async-signal-safe text dump to @p fd: histogram digests, counters
 * and the newest trace events, formatted via util/sigsafe_io only.
 */
void telemetry_dump_sigsafe(int fd);

/** Install the SIGUSR2 dump-to-stderr handler (idempotent). */
void telemetry_install_sigusr2();

/** CLOCK_MONOTONIC in nanoseconds (for op timing in workloads). */
std::uint64_t telemetry_now_ns();

}  // namespace msw::metrics
