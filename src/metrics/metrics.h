/**
 * @file
 * Measurement infrastructure for the benchmark harness.
 *
 * The paper measures wall-clock slowdown (SPEC reported times), memory
 * with PSRecord (periodic RSS sampling of the process), and additional
 * CPU utilisation. This module reproduces that methodology:
 *  - RssSampler: a PSRecord-like background thread sampling
 *    /proc/self/statm on an interval, yielding average/peak RSS and the
 *    full time series (Fig 8);
 *  - process CPU time via getrusage (Fig 12's utilisation numerator);
 *  - RunRecord: one benchmark execution's results, serialisable over a
 *    pipe so each (system, workload) pair runs in a forked child with
 *    pristine RSS/VA (the paper runs each configuration as a separate
 *    process for the same reason).
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "metrics/histogram.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace msw::metrics {

/** Wall-clock + CPU-time measurements and counters for one run. */
struct RunRecord {
    double wall_s = 0;
    double cpu_s = 0;          ///< Process CPU time (all threads).
    std::size_t avg_rss = 0;   ///< Mean sampled RSS (bytes).
    std::size_t peak_rss = 0;  ///< Max sampled RSS (bytes).
    std::uint64_t sweeps = 0;
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t checksum = 0;  ///< Workload output (validity check).

    // Resilience counters (memory-pressure degradation, see core/options.h).
    std::uint64_t emergency_sweeps = 0;    ///< Reclaims run from alloc().
    std::uint64_t commit_retries = 0;      ///< alloc() retries after failure.
    std::uint64_t watchdog_fallbacks = 0;  ///< Synchronous watchdog sweeps.
    std::uint64_t oom_returns = 0;         ///< alloc() nullptr returns.
    std::uint64_t failed_allocs = 0;       ///< Workload-observed nullptrs.

    // Telemetry (observability layer, DESIGN.md §14): per-operation
    // request latency and the runtime's pause/phase breakdown.
    LatencySummary op_latency;     ///< Workload request latency digest.
    LatencySummary sweep_pause;    ///< Backpressure pause digest.
    std::uint64_t pause_total_ns = 0;       ///< Sum of allocation pauses.
    std::uint64_t stw_total_ns = 0;         ///< Sum of STW windows.
    std::uint64_t phase_dirty_scan_ns = 0;  ///< Per-phase sweep totals.
    std::uint64_t phase_mark_ns = 0;
    std::uint64_t phase_drain_ns = 0;
    std::uint64_t phase_release_ns = 0;

    bool ok = false;  ///< Child completed successfully.
    /** RSS series: (seconds since start, bytes). */
    std::vector<std::pair<double, std::size_t>> rss_series;
};

/** Process CPU time (user+system, all threads) in seconds. */
double process_cpu_seconds();

/** Monotonic wall clock in seconds. */
double wall_seconds();

/** PSRecord-style background RSS sampler. */
class RssSampler
{
  public:
    explicit RssSampler(unsigned interval_ms = 10);
    ~RssSampler();

    /** Stop sampling (idempotent). */
    void stop();

    /** Mean of samples taken so far (bytes). */
    std::size_t average() const;

    /** Max of samples taken so far (bytes). */
    std::size_t peak() const;

    /** (seconds, bytes) series. */
    std::vector<std::pair<double, std::size_t>> series() const;

  private:
    void loop();

    unsigned interval_ms_;
    double start_;
    // Rank kMetrics: leaf lock, never held while calling anything else.
    mutable Mutex mu_{util::LockRank::kMetrics};
    std::vector<std::pair<double, std::size_t>> samples_
        MSW_GUARDED_BY(mu_);
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

/**
 * Run @p body in a forked child process and return its RunRecord.
 *
 * The child gets a pristine address space: RSS, reservations and
 * background threads of one system cannot contaminate the next
 * measurement. On child crash or timeout, a record with ok=false is
 * returned.
 *
 * @param timeout_s Kill the child after this long (0 = no timeout).
 */
RunRecord run_in_subprocess(const std::function<RunRecord()>& body,
                            unsigned timeout_s = 0);

/** Geometric mean of a vector of positive ratios. */
double geomean(const std::vector<double>& values);

/** Simple fixed-width table printer for benchmark output. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);

    /** Render to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format helpers. */
std::string fmt_ratio(double r);              // "1.054x"
std::string fmt_mib(std::size_t bytes);       // "123.4"
std::string fmt_seconds(double s);            // "1.234"

/** Benchmark scale factor from MSW_BENCH_SCALE (default 1.0). */
double bench_scale();

}  // namespace msw::metrics
