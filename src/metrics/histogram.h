/**
 * @file
 * Lock-free log-linear (HDR-style) latency histogram.
 *
 * The telemetry layer (DESIGN.md §14) records nanosecond durations —
 * malloc/free fast-path latency, request latency, sweep pauses — into
 * fixed-size bucket arrays of relaxed atomics. The design follows the
 * same exactness argument as core/stat_cells: every record() lands one
 * fetch_add in exactly one cell, 64-bit wraparound addition is
 * associative and commutative, so merging per-thread histograms
 * cell-wise reproduces the exact counts a single shared histogram
 * would hold (no samples lost, no samples double-counted), and readers
 * accept cross-cell skew while writers are active.
 *
 * Bucketing is log-linear: values below 2^kSubBits are exact; above
 * that, each power-of-two range is split into kSubCount/2 linear
 * sub-buckets, bounding the relative quantisation error by
 * 2^-(kSubBits-1) (~6% at kSubBits = 5). The maximum is derived from
 * the highest non-empty bucket (same error bound) rather than from an
 * atomic-max CAS loop, which keeps record() wait-free and the atomics
 * inventory CAS-free.
 *
 * Everything here is allocation-free and uses only relaxed atomic
 * loads plus integer/float arithmetic, so the read side is safe from
 * the SIGUSR2 dump handler (util/sigsafe_io) as well as from normal
 * context.
 */
#pragma once

#include <atomic>
#include <cstdint>

namespace msw::metrics {

/** Percentile digest of one histogram (wire- and JSON-friendly). */
struct LatencySummary {
    std::uint64_t count = 0;
    double mean_ns = 0;        ///< sum/count (exact sums, see above).
    std::uint64_t max_ns = 0;  ///< Upper bound of highest non-empty bucket.
    std::uint64_t p50_ns = 0;
    std::uint64_t p90_ns = 0;
    std::uint64_t p99_ns = 0;
    std::uint64_t p999_ns = 0;
};

class Histogram
{
  public:
    /** Sub-bucket resolution: 2^-(kSubBits-1) relative error. */
    static constexpr unsigned kSubBits = 5;
    static constexpr unsigned kSubCount = 1u << kSubBits;
    static constexpr unsigned kHalf = kSubCount / 2;
    /**
     * Dense enough for the full 64-bit range: the largest index
     * bucket_index() can produce is (64-kSubBits+1)*kHalf + kSubCount.
     */
    static constexpr unsigned kBuckets = 1024;

    constexpr Histogram() = default;

    Histogram(const Histogram&) = delete;
    Histogram& operator=(const Histogram&) = delete;

    /** Record one value. Wait-free: three relaxed fetch_adds. */
    void record(std::uint64_t value);

    /**
     * Cell-wise add of @p other into this histogram. Exact under
     * wraparound (see file comment); concurrent record()s into either
     * side land entirely or not at all in the merged totals.
     */
    void merge_from(const Histogram& other);

    /** Total samples recorded (relaxed read; exact once writers quiesce). */
    std::uint64_t count() const;

    /** Sum of all recorded values (mod 2^64). */
    std::uint64_t sum() const;

    /**
     * Value at quantile @p q in [0, 1]: the upper bound of the bucket
     * holding the sample of rank ceil(q * count). 0 when empty.
     */
    std::uint64_t percentile(double q) const;

    /** Upper bound of the highest non-empty bucket (0 when empty). */
    std::uint64_t max_value() const;

    /** One consistent pass over the buckets -> digest. */
    LatencySummary summarize() const;

    /** Zero every cell. Only legal with no concurrent writers. */
    void reset();

    // Bucket geometry (tests and the signal-safe dump path).
    static unsigned bucket_index(std::uint64_t value);
    static std::uint64_t bucket_lower(unsigned index);
    static std::uint64_t bucket_upper(unsigned index);
    std::uint64_t bucket_count(unsigned index) const;

  private:
    std::atomic<std::uint64_t> cells_[kBuckets] = {};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
};

}  // namespace msw::metrics
