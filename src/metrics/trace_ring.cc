#include "metrics/trace_ring.h"

#include <ctime>

namespace msw::metrics {

namespace {

std::uint64_t
trace_now_ns()
{
    struct timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace

const char*
trace_event_name(TraceEvent event)
{
    switch (event) {
      case TraceEvent::kNone:
        return "none";
      case TraceEvent::kSweepBegin:
        return "sweep_begin";
      case TraceEvent::kSweepEnd:
        return "sweep_end";
      case TraceEvent::kPhaseDirtyScan:
        return "phase_dirty_scan";
      case TraceEvent::kPhaseMark:
        return "phase_mark";
      case TraceEvent::kPhaseDrain:
        return "phase_drain";
      case TraceEvent::kPhaseRelease:
        return "phase_release";
      case TraceEvent::kStwPause:
        return "stw_pause";
      case TraceEvent::kAllocPause:
        return "alloc_pause";
      case TraceEvent::kWatchdogFallback:
        return "watchdog_fallback";
      case TraceEvent::kEmergencySweep:
        return "emergency_sweep";
      case TraceEvent::kOomReturn:
        return "oom_return";
      case TraceEvent::kForkChild:
        return "fork_child";
      case TraceEvent::kCount:
        break;
    }
    return "unknown";
}

void
TraceRing::push(TraceEvent event, std::uint64_t a0, std::uint64_t a1)
{
    // msw-relaxed(trace-ring): ticket handout; fetch_add RMW atomicity
    // gives each producer a distinct slot, and the per-slot sequence
    // word below carries the publication.
    const std::uint64_t ticket =
        cursor_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[ticket & (kSlots - 1)];
    // Mark the slot unstable. The acquire half of the RMW keeps the
    // payload stores below from moving above it; the release store at
    // the end keeps them from moving below. Readers seeing an odd (or
    // changed) sequence discard the slot.
    (void)s.seq.exchange(ticket * 2 + 1, std::memory_order_acq_rel);
    // msw-relaxed(trace-ring): payload stores bracketed by the
    // sequence-word edges above/below; no independent ordering needed.
    s.ts.store(trace_now_ns(), std::memory_order_relaxed);
    // msw-relaxed(trace-ring): as above — bracketed payload store.
    s.ev.store(static_cast<std::uint64_t>(event),
               std::memory_order_relaxed);
    // msw-relaxed(trace-ring): as above — bracketed payload store.
    s.a0.store(a0, std::memory_order_relaxed);
    // msw-relaxed(trace-ring): as above — bracketed payload store.
    s.a1.store(a1, std::memory_order_relaxed);
    s.seq.store(ticket * 2 + 2, std::memory_order_release);
}

std::size_t
TraceRing::snapshot(TraceRecord* out, std::size_t cap) const
{
    // msw-relaxed(trace-ring): cursor peek; a concurrent push only
    // shifts which window of tickets the loop below inspects, and each
    // slot re-validates itself through its sequence word.
    const std::uint64_t cur = cursor_.load(std::memory_order_relaxed);
    std::uint64_t window = cur < kSlots ? cur : kSlots;
    if (window > cap)
        window = cap;
    std::size_t n = 0;
    for (std::uint64_t t = cur - window; t < cur; ++t) {
        const Slot& s = slots_[t & (kSlots - 1)];
        const std::uint64_t want = t * 2 + 2;
        const std::uint64_t seq1 = s.seq.load(std::memory_order_acquire);
        if (seq1 != want)
            continue;  // overwritten by a newer lap, or mid-write
        TraceRecord r;
        r.ticket = t;
        // msw-relaxed(trace-ring): payload loads validated by the
        // sequence recheck below; the residual reorder window returns a
        // stale-but-well-formed diagnostic record, tolerated by design.
        r.ts_ns = s.ts.load(std::memory_order_relaxed);
        // msw-relaxed(trace-ring): as above — validated payload load.
        r.event =
            static_cast<TraceEvent>(s.ev.load(std::memory_order_relaxed));
        // msw-relaxed(trace-ring): as above — validated payload load.
        r.a0 = s.a0.load(std::memory_order_relaxed);
        // msw-relaxed(trace-ring): as above — validated payload load.
        r.a1 = s.a1.load(std::memory_order_relaxed);
        // msw-relaxed(trace-ring): sequence recheck; any overlapping
        // writer changed seq (odd or a newer even), discarding the slot.
        if (s.seq.load(std::memory_order_relaxed) != seq1)
            continue;
        out[n++] = r;
    }
    return n;
}

std::uint64_t
TraceRing::pushed() const
{
    // msw-relaxed(trace-ring): statistics read; exact once producers
    // quiesce (thread join / quiesce point orders it).
    return cursor_.load(std::memory_order_relaxed);
}

void
TraceRing::reset()
{
    // msw-relaxed(trace-ring): reset with no concurrent writers by
    // contract; the caller's quiesce point orders it.
    cursor_.store(0, std::memory_order_relaxed);
    for (Slot& s : slots_) {
        // msw-relaxed(trace-ring): as above — quiesced reset.
        s.seq.store(0, std::memory_order_relaxed);
        // msw-relaxed(trace-ring): as above — quiesced reset.
        s.ts.store(0, std::memory_order_relaxed);
        // msw-relaxed(trace-ring): as above — quiesced reset.
        s.ev.store(0, std::memory_order_relaxed);
        // msw-relaxed(trace-ring): as above — quiesced reset.
        s.a0.store(0, std::memory_order_relaxed);
        // msw-relaxed(trace-ring): as above — quiesced reset.
        s.a1.store(0, std::memory_order_relaxed);
    }
}

}  // namespace msw::metrics
