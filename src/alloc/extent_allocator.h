/**
 * @file
 * The extent allocator: manages the heap reservation at page granularity.
 *
 * Responsibilities:
 *  - hand out page-aligned extents (for slabs and large allocations),
 *    reusing free extents (first-fit within size-bucketed free lists,
 *    splitting oversized ones) before extending the bump frontier;
 *  - coalesce freed extents with free neighbours;
 *  - maintain the page map (page index -> ExtentMeta*) used for interior
 *    pointer lookup;
 *  - decay-purge free extents through the ExtentHooks (jemalloc's ~10 s
 *    decay, which MineSweeper retargets to "full purge after every sweep",
 *    paper §4.5).
 *
 * All free-list state is intrusive (inside ExtentMeta), so this layer
 * performs no internal malloc — a requirement for the LD_PRELOAD shim.
 */
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/mutex.h"
#include "util/spin_lock.h"
#include "util/thread_annotations.h"
#include "vm/vm.h"

#include "alloc/extent.h"
#include "alloc/hooks.h"

namespace msw::alloc {

/** Aggregate extent-allocator statistics (bytes). */
struct ExtentStats {
    std::size_t committed_bytes = 0;  ///< Pages with physical backing.
    std::size_t active_bytes = 0;     ///< Pages inside live extents.
    std::size_t mapped_frontier = 0;  ///< High-water of the bump pointer.
    std::size_t metadata_bytes = 0;   ///< Out-of-line metadata committed.
    std::uint64_t purges = 0;         ///< purge() hook invocations.
};

class ExtentAllocator
{
  public:
    /**
     * @param heap_bytes      Virtual address space to reserve for the heap.
     * @param decay_ms        Age after which free extents are purged
     *                        (0 disables decay purging).
     */
    explicit ExtentAllocator(std::size_t heap_bytes,
                             std::uint64_t decay_ms = 10000);
    ~ExtentAllocator();

    ExtentAllocator(const ExtentAllocator&) = delete;
    ExtentAllocator& operator=(const ExtentAllocator&) = delete;

    /**
     * Install custom hooks (must outlive the allocator). Call before any
     * allocation. Returns the previously installed hooks.
     */
    ExtentHooks* set_hooks(ExtentHooks* hooks);

    /**
     * Allocate an extent of exactly @p pages pages, committed and
     * registered in the page map. @p kind must be kSlab or kLarge; the
     * caller fills in kind-specific fields. If @p align_pages > 1 the
     * extent base is aligned to that many pages.
     *
     * Returns nullptr when the heap reservation is exhausted or the
     * commit hook fails under memory pressure; callers propagate the
     * failure up to alloc() (which retries / reclaims before giving up).
     */
    ExtentMeta* alloc_extent(std::size_t pages, ExtentKind kind,
                             std::size_t align_pages = 1);

    /** Return an extent; coalesces with free neighbours. */
    void free_extent(ExtentMeta* e);

    /**
     * Look up the extent containing @p addr. Returns nullptr for addresses
     * outside any active extent (free ranges, never-allocated space, or
     * outside the reservation).
     */
    ExtentMeta* lookup(std::uintptr_t addr) const;

    /**
     * Lock-free lookup for addresses the caller *knows* are inside a live
     * allocation (the page-map entry for an extent holding a live object
     * cannot change concurrently). Used on the free() fast path.
     */
    ExtentMeta*
    lookup_live(std::uintptr_t addr) const
    {
        MSW_DCHECK(heap_.contains(addr));
        // msw-relaxed(page-map): the entry under a live object cannot
        // change concurrently (see contract above).
        ExtentMeta* e = __atomic_load_n(&page_map_[page_index(addr)],
                                        __ATOMIC_RELAXED);
        MSW_DCHECK(e != nullptr && e->kind != ExtentKind::kFree);
        return e;
    }

    /**
     * Raw racy page-map read (no validation at all). Callers must treat
     * every field of the result as untrusted; see
     * JadeAllocator::lookup_relaxed.
     */
    ExtentMeta*
    peek_page_map(std::uintptr_t addr) const
    {
        MSW_DCHECK(heap_.contains(addr));
        // msw-relaxed(page-map): deliberately racy; every field of
        // the result is untrusted per the contract above.
        return __atomic_load_n(&page_map_[page_index(addr)],
                               __ATOMIC_RELAXED);
    }

    /** True if @p addr lies within the heap reservation. */
    bool
    contains(std::uintptr_t addr) const
    {
        return heap_.contains(addr);
    }

    const vm::Reservation& reservation() const { return heap_; }

    /** Out-of-line metadata regions (for scan exclusion lists). */
    const vm::Reservation& meta_reservation() const
    {
        return meta_pool_.reservation();
    }
    const vm::Reservation& page_map_reservation() const
    {
        return page_map_space_;
    }

    /** Purge free extents older than the decay deadline. */
    void decay_tick();

    /** Purge every committed free extent immediately (post-sweep purge). */
    void purge_all();

    ExtentStats stats() const;

    // atfork integration (called by JadeAllocator's fork hooks): fork
    // with the extent lock and the metadata-pool lock held, in rank
    // order (kExtent -> kExtentMeta). The pairing straddles fork(),
    // outside what the static analysis can see.
    void
    prepare_fork() MSW_NO_THREAD_SAFETY_ANALYSIS
    {
        lock_.lock();
        meta_pool_.prepare_fork();
    }
    void
    after_fork() MSW_NO_THREAD_SAFETY_ANALYSIS
    {
        meta_pool_.after_fork();
        lock_.unlock();
    }

    /**
     * Invoke @p fn(base, bytes) for every active (slab or large) extent.
     * Takes the extent lock; @p fn must not reenter the allocator.
     */
    template <typename Fn>
    void
    for_each_active_extent(Fn&& fn) const
    {
        LockGuard g(lock_);
        for (std::size_t page = 0; page < frontier_pages_;) {
            ExtentMeta* e = page_map_[page];
            if (e != nullptr && e->kind != ExtentKind::kFree) {
                fn(e->base, e->bytes());
                page += e->pages;
            } else {
                page += e != nullptr ? e->pages : 1;
            }
        }
    }

  private:
    // Free-list buckets: exact-size buckets for 1..kExactBuckets pages,
    // then one bucket per power of two.
    static constexpr unsigned kExactBuckets = 64;
    static constexpr unsigned kNumBuckets = kExactBuckets + 24;

    static unsigned bucket_for(std::size_t pages);

    // All private helpers expect lock_ held.
    ExtentMeta* take_free_extent(std::size_t pages, std::size_t align_pages)
        MSW_REQUIRES(lock_);
    void insert_free(ExtentMeta* e) MSW_REQUIRES(lock_);
    void remove_free(ExtentMeta* e) MSW_REQUIRES(lock_);
    void map_extent(ExtentMeta* e) MSW_REQUIRES(lock_);
    void unmap_extent_range(ExtentMeta* e) MSW_REQUIRES(lock_);
    void mark_free_boundaries(ExtentMeta* e) MSW_REQUIRES(lock_);
    [[nodiscard]] bool ensure_committed(ExtentMeta* e) MSW_REQUIRES(lock_);
    void purge_extent(ExtentMeta* e) MSW_REQUIRES(lock_);
    void decay_pass_locked(std::uint64_t now) MSW_REQUIRES(lock_);

    std::size_t page_index(std::uintptr_t addr) const;

    vm::Reservation heap_;
    MetaPool meta_pool_;
    ExtentHooks default_hooks_;
    ExtentHooks* hooks_ MSW_GUARDED_BY(lock_);

    // Rank kExtent: acquired under bin locks; nests before the metadata
    // pool lock (MetaPool::alloc runs under lock_).
    mutable SpinLock lock_{util::LockRank::kExtent};
    ExtentList free_buckets_[kNumBuckets] MSW_GUARDED_BY(lock_);
    // page_map_ entries are written under lock_ but read lock-free via
    // __atomic loads (lookup_live / peek_page_map), so the pointer array
    // itself is deliberately not guarded.
    ExtentMeta** page_map_ = nullptr;  // One entry per heap page.
    vm::Reservation page_map_space_;
    std::uintptr_t bump_ MSW_GUARDED_BY(lock_) = 0;
    std::size_t frontier_pages_ MSW_GUARDED_BY(lock_) = 0;

    std::uint64_t decay_ms_;
    std::uint64_t last_decay_check_ms_ MSW_GUARDED_BY(lock_) = 0;

    std::size_t committed_bytes_ MSW_GUARDED_BY(lock_) = 0;
    std::size_t active_bytes_ MSW_GUARDED_BY(lock_) = 0;
    std::uint64_t purge_count_ MSW_GUARDED_BY(lock_) = 0;
};

/** Monotonic milliseconds used for decay timestamps. */
std::uint64_t monotonic_ms();

}  // namespace msw::alloc
