/**
 * @file
 * JadeHeap: the jemalloc-style allocator substrate.
 *
 * This stands in for the paper's minimally-modified jemalloc. It provides
 * the architectural properties MineSweeper depends on:
 *  - contiguous heap reservation (the paper used sbrk-backed extents) so
 *    "is this word a heap pointer" is a single range test;
 *  - out-of-line metadata, immune to heap overwrites;
 *  - size-class slab allocation with per-thread caches;
 *  - an extent-hook API (commit/purge) MineSweeper overrides to implement
 *    decommit/commit page tracking (paper §4.5);
 *  - decay purging of free extents, plus purge_all() for the post-sweep
 *    full purge.
 *
 * Thread-safety: fully thread-safe. Each thread gets a thread cache
 * (mmap-backed, no internal malloc) flushed on thread exit.
 */
#pragma once

#include <pthread.h>

#include <cstddef>
#include <cstdint>

#include "alloc/allocator.h"
#include "alloc/bin.h"
#include "alloc/extent_allocator.h"
#include "alloc/size_classes.h"

namespace msw::alloc {

struct AllocPolicy;

class JadeAllocator final : public Allocator
{
  public:
    struct Options {
        /** Virtual address space reserved for the heap. */
        std::size_t heap_bytes = std::size_t{8} << 30;
        /** Free-extent decay before purging (0 = never purge by decay). */
        std::uint64_t decay_ms = 10000;
        /** Number of arenas (bins are replicated per arena). */
        unsigned arenas = 1;
        /** Enable per-thread caches. */
        bool enable_tcache = true;
        /**
         * Allocation policy (slot placement, cache reuse order — see
         * policy.h). Null resolves MSW_POLICY from the environment at
         * construction; instance-scoped, so one process can run
         * allocators under different policies (benchmarks do).
         */
        const AllocPolicy* policy = nullptr;
    };

    JadeAllocator() : JadeAllocator(Options{}) {}
    explicit JadeAllocator(const Options& opts);
    ~JadeAllocator() override;

    JadeAllocator(const JadeAllocator&) = delete;
    JadeAllocator& operator=(const JadeAllocator&) = delete;

    void* alloc(std::size_t size) override;
    void free(void* ptr) override;
    std::size_t usable_size(const void* ptr) const override;
    void* alloc_aligned(std::size_t alignment, std::size_t size) override;
    AllocatorStats stats() const override;
    const char* name() const override { return "jade"; }

    /** Flush the calling thread's cache back to the bins. */
    void flush() override;

    /**
     * Free bypassing the thread cache. The quarantine release path uses
     * this so recycled objects return to the shared bins rather than being
     * stranded in the sweeper thread's cache.
     */
    void free_direct(void* ptr);

    /** Resize in place when possible, else allocate/copy/free. */
    void* realloc(void* ptr, std::size_t new_size) override;

    /** True if @p addr lies inside the heap reservation. */
    bool
    contains(std::uintptr_t addr) const
    {
        return extents_.contains(addr);
    }

    const vm::Reservation&
    reservation() const
    {
        return extents_.reservation();
    }

    /** Byte size + base of the allocation containing @p addr, if any. */
    struct AllocationInfo {
        std::uintptr_t base = 0;
        std::size_t usable = 0;
        /** True if the slot/extent is currently allocated. */
        bool live = false;
    };

    /**
     * Conservative interior-pointer lookup: resolves @p addr to the
     * allocation (live or not) containing it. Returns false for addresses
     * in free space or outside the heap. Thread-safe (takes the extent
     * lock); used by the MarkUs marking pass.
     */
    bool lookup_allocation(std::uintptr_t addr, AllocationInfo* out) const;

    /**
     * Lock-free variant of lookup_allocation for concurrent conservative
     * marking. Tolerates races with extent churn by validating the
     * metadata it reads; may return a stale (but range-plausible)
     * allocation, which over-approximates marking — safe, never unsafe.
     */
    bool lookup_relaxed(std::uintptr_t addr, AllocationInfo* out) const;

    /** Access to the extent layer (hook installation, purging). */
    ExtentAllocator& extents() { return extents_; }
    const ExtentAllocator& extents() const { return extents_; }

    /** The resolved allocation policy this instance runs under. */
    const AllocPolicy& policy() const { return *policy_; }

    /** Purge all free extents now (MineSweeper's post-sweep purge). */
    void
    purge_all()
    {
        extents_.purge_all();
    }

    std::size_t
    live_bytes() const
    {
        // msw-relaxed(stat-cells): statistics read; needs no ordering.
        return live_bytes_.load(std::memory_order_relaxed);
    }

    /**
     * atfork integration (called by core/lifecycle): prepare_fork()
     * acquires, in rank order, the process-wide tcache registry lock,
     * every bin lock of every arena, and the extent + metadata-pool
     * locks, so the child forks with the whole substrate consistent.
     * parent_after_fork()/child_after_fork() release them.
     * child_fixup() then adopts the thread caches of threads that did
     * not survive the fork — flushing their objects back to the shared
     * bins and releasing the cache storage — and must only run once
     * every prepare-held lock is released (flushing re-acquires bin and
     * extent locks).
     */
    void prepare_fork();
    void parent_after_fork();
    void child_after_fork();
    void child_fixup();

  private:
    struct TCache;
    struct Arena;

    TCache* get_tcache();
    TCache* make_tcache();
    void flush_shard(TCache* tc, unsigned cls, unsigned keep);
    void free_small(void* ptr, ExtentMeta* meta);
    void free_large(ExtentMeta* meta);
    Bin& bin_for(std::uint8_t arena, unsigned cls) const;
    unsigned arena_for_thread();
    static void tcache_destructor(void* arg);

    void* alloc_large(std::size_t size, std::size_t align_pages);

    /**
     * Head of the global registry of live thread caches. Guarded by the
     * file-local g_tcache_registry_lock (rank kBinRegistry) in the .cc —
     * not annotatable from here because the lock is not visible.
     */
    static TCache* g_tcache_head;

    ExtentAllocator extents_;
    Options opts_;
    /** Resolved from opts_.policy / MSW_POLICY; never null. */
    const AllocPolicy* policy_;
    unsigned num_classes_;
    Arena* arenas_ = nullptr;  // [opts_.arenas], internally allocated
    pthread_key_t tcache_key_{};

    std::atomic<std::size_t> live_bytes_{0};
    std::atomic<std::uint64_t> alloc_calls_{0};
    std::atomic<std::uint64_t> free_calls_{0};
    std::atomic<unsigned> next_arena_{0};
};

}  // namespace msw::alloc
