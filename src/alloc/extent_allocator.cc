#include "alloc/extent_allocator.h"

#include <atomic>
#include <ctime>

#include "util/bits.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/log.h"

namespace msw::alloc {

std::uint64_t
monotonic_ms()
{
    struct timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000u +
           static_cast<std::uint64_t>(ts.tv_nsec) / 1000000u;
}

ExtentAllocator::ExtentAllocator(std::size_t heap_bytes,
                                 std::uint64_t decay_ms)
    : heap_(vm::Reservation::reserve(heap_bytes)),
      // Worst case is one metadata record per heap page (~heap/32 bytes);
      // reserve heap/16 of VA — committed only as used.
      meta_pool_(heap_bytes / 16),
      default_hooks_(&heap_),
      hooks_(&default_hooks_),
      decay_ms_(decay_ms)
{
    const std::size_t heap_pages = heap_.size() >> vm::kPageShift;
    page_map_space_ =
        vm::Reservation::reserve(heap_pages * sizeof(ExtentMeta*));
    page_map_space_.commit_must(page_map_space_.base(),
                                page_map_space_.size());
    page_map_ = to_ptr_of<ExtentMeta*>(page_map_space_.base());
    bump_ = heap_.base();
}

ExtentAllocator::~ExtentAllocator() = default;

ExtentHooks*
ExtentAllocator::set_hooks(ExtentHooks* hooks)
{
    LockGuard g(lock_);
    ExtentHooks* old = hooks_;
    hooks_ = hooks != nullptr ? hooks : &default_hooks_;
    return old;
}

unsigned
ExtentAllocator::bucket_for(std::size_t pages)
{
    MSW_DCHECK(pages >= 1);
    if (pages <= kExactBuckets)
        return static_cast<unsigned>(pages - 1);
    const unsigned lg = log2_floor(pages);  // >= 6
    const unsigned idx = kExactBuckets + (lg - 6);
    return idx < kNumBuckets ? idx : kNumBuckets - 1;
}

std::size_t
ExtentAllocator::page_index(std::uintptr_t addr) const
{
    MSW_DCHECK(heap_.contains(addr));
    return (addr - heap_.base()) >> vm::kPageShift;
}

void
ExtentAllocator::map_extent(ExtentMeta* e)
{
    const std::size_t first = page_index(e->base);
    for (std::size_t i = 0; i < e->pages; ++i)
        // msw-relaxed(page-map): written under the extent lock; racy
        // readers (peek_page_map) treat the result as untrusted.
        __atomic_store_n(&page_map_[first + i], e, __ATOMIC_RELAXED);
}

void
ExtentAllocator::unmap_extent_range(ExtentMeta* e)
{
    const std::size_t first = page_index(e->base);
    for (std::size_t i = 0; i < e->pages; ++i)
        // msw-relaxed(page-map): written under the extent lock; racy
        // readers (peek_page_map) treat the result as untrusted.
        __atomic_store_n(&page_map_[first + i],
                         static_cast<ExtentMeta*>(nullptr),
                         __ATOMIC_RELAXED);
}

void
ExtentAllocator::mark_free_boundaries(ExtentMeta* e)
{
    const std::size_t first = page_index(e->base);
    // msw-relaxed(page-map): written under the extent lock; racy
    // readers (peek_page_map) treat the result as untrusted.
    __atomic_store_n(&page_map_[first], e, __ATOMIC_RELAXED);
    __atomic_store_n(&page_map_[first + e->pages - 1], e, __ATOMIC_RELAXED);
}

void
ExtentAllocator::insert_free(ExtentMeta* e)
{
    e->kind = ExtentKind::kFree;
    e->freed_at_ms = monotonic_ms();
    free_buckets_[bucket_for(e->pages)].push_front(e);
    mark_free_boundaries(e);
}

void
ExtentAllocator::remove_free(ExtentMeta* e)
{
    free_buckets_[bucket_for(e->pages)].remove(e);
}

bool
ExtentAllocator::ensure_committed(ExtentMeta* e)
{
    if (!e->committed) {
        if (!hooks_->commit(e->base, e->bytes())) {
            return false;
        }
        e->committed = true;
        committed_bytes_ += e->bytes();
    }
    return true;
}

void
ExtentAllocator::purge_extent(ExtentMeta* e)
{
    MSW_DCHECK(e->kind == ExtentKind::kFree);
    if (e->committed) {
        if (!hooks_->purge(e->base, e->bytes())) {
            // Purge failed under pressure: keep the pages accounted as
            // committed (they still have backing) and let the next decay
            // pass retry.
            return;
        }
        e->committed = false;
        MSW_DCHECK(committed_bytes_ >= e->bytes());
        committed_bytes_ -= e->bytes();
        ++purge_count_;
    }
}

ExtentMeta*
ExtentAllocator::take_free_extent(std::size_t pages, std::size_t align_pages)
{
    const std::size_t align_bytes = align_pages << vm::kPageShift;
    const std::size_t want_bytes = pages << vm::kPageShift;
    for (unsigned b = bucket_for(pages); b < kNumBuckets; ++b) {
        for (ExtentMeta* e = free_buckets_[b].head(); e != nullptr;
             e = e->next) {
            const std::uintptr_t aligned =
                align_up(e->base, align_bytes);
            if (aligned + want_bytes > e->end())
                continue;
            // Found a fit: remove, then split off leading/trailing slack.
            free_buckets_[b].remove(e);
            unmap_extent_range(e);
            if (aligned > e->base) {
                ExtentMeta* head = meta_pool_.alloc();
                head->base = e->base;
                head->pages = (aligned - e->base) >> vm::kPageShift;
                // committed_bytes_ is unchanged by splits: both pieces
                // inherit the committed state.
                head->committed = e->committed;
                insert_free(head);
                e->base = aligned;
                e->pages -= head->pages;
            }
            if (e->pages > pages) {
                ExtentMeta* tail = meta_pool_.alloc();
                tail->base = e->base + want_bytes;
                tail->pages = e->pages - pages;
                tail->committed = e->committed;
                insert_free(tail);
                e->pages = pages;
            }
            return e;
        }
    }
    return nullptr;
}

ExtentMeta*
ExtentAllocator::alloc_extent(std::size_t pages, ExtentKind kind,
                              std::size_t align_pages)
{
    MSW_CHECK(pages >= 1);
    MSW_CHECK(kind != ExtentKind::kFree);
    MSW_DCHECK(is_pow2(align_pages));

    LockGuard g(lock_);
    ExtentMeta* e = take_free_extent(pages, align_pages);
    if (e == nullptr) {
        // Extend the bump frontier.
        const std::size_t align_bytes = align_pages << vm::kPageShift;
        const std::uintptr_t aligned = align_up(bump_, align_bytes);
        const std::size_t want_bytes = pages << vm::kPageShift;
        if (util::failpoint_should_fail(util::Failpoint::kExtentGrow) ||
            aligned + want_bytes > heap_.end()) {
            // VA exhaustion is survivable: a sweep may return quarantined
            // extents to the free lists. Report once, then fail the
            // request so alloc() can reclaim and retry.
            static std::atomic<bool> logged{false};
            // msw-relaxed(config-flag): log-once latch; only RMW
            // atomicity matters.
            if (!logged.exchange(true, std::memory_order_relaxed)) {
                MSW_LOG_WARN(
                    "heap reservation exhausted (%zu MiB): cannot "
                    "allocate %zu pages",
                    heap_.size() >> 20, pages);
            }
            return nullptr;
        }
        if (aligned > bump_) {
            // Turn the alignment gap into a free extent so it is reusable.
            ExtentMeta* gap = meta_pool_.alloc();
            gap->base = bump_;
            gap->pages = (aligned - bump_) >> vm::kPageShift;
            gap->committed = false;
            insert_free(gap);
        }
        e = meta_pool_.alloc();
        e->base = aligned;
        e->pages = pages;
        e->committed = false;
        bump_ = aligned + want_bytes;
        frontier_pages_ = (bump_ - heap_.base()) >> vm::kPageShift;
    }
    e->kind = kind;
    e->prev = nullptr;
    e->next = nullptr;
    e->used_slots = 0;
    e->large_size = 0;
    if (!ensure_committed(e)) {
        // Commit failed under pressure: hand the extent back to the free
        // lists (still uncommitted) and fail the request.
        insert_free(e);
        return nullptr;
    }
    map_extent(e);
    active_bytes_ += e->bytes();
    return e;
}

void
ExtentAllocator::free_extent(ExtentMeta* e)
{
    LockGuard g(lock_);
    MSW_DCHECK(e->kind != ExtentKind::kFree);
    MSW_DCHECK(active_bytes_ >= e->bytes());
    active_bytes_ -= e->bytes();
    unmap_extent_range(e);
    e->kind = ExtentKind::kFree;

    // Coalesce with free neighbours of the same committed state. Mixed
    // states are left unmerged: committing a purged neighbour would make
    // sweeps fault its pages back in, and purging a hot committed extent
    // would defeat decay. The post-purge pass merges them later.
    const std::size_t first = page_index(e->base);
    if (first > 0) {
        ExtentMeta* left = page_map_[first - 1];
        if (left != nullptr && left->kind == ExtentKind::kFree &&
            left->committed == e->committed) {
            remove_free(left);
            unmap_extent_range(left);  // clears its two boundary entries
            e->base = left->base;
            e->pages += left->pages;
            meta_pool_.free(left);
        }
    }
    const std::size_t last_next = page_index(e->base) + e->pages;
    if (last_next < frontier_pages_) {
        ExtentMeta* right = page_map_[last_next];
        if (right != nullptr && right->kind == ExtentKind::kFree &&
            right->committed == e->committed) {
            remove_free(right);
            unmap_extent_range(right);
            e->pages += right->pages;
            meta_pool_.free(right);
        }
    }
    insert_free(e);

    if (decay_ms_ != 0) {
        const std::uint64_t now = monotonic_ms();
        if (now - last_decay_check_ms_ >= 250) {
            last_decay_check_ms_ = now;
            decay_pass_locked(now);
        }
    }
}

ExtentMeta*
ExtentAllocator::lookup(std::uintptr_t addr) const
{
    if (!heap_.contains(addr))
        return nullptr;
    LockGuard g(lock_);
    ExtentMeta* e = page_map_[page_index(addr)];
    if (e == nullptr || e->kind == ExtentKind::kFree)
        return nullptr;
    MSW_DCHECK(addr >= e->base && addr < e->end());
    return e;
}

void
ExtentAllocator::decay_tick()
{
    LockGuard g(lock_);
    decay_pass_locked(monotonic_ms());
}

void
ExtentAllocator::purge_all()
{
    LockGuard g(lock_);
    decay_pass_locked(UINT64_MAX);
}

void
ExtentAllocator::decay_pass_locked(std::uint64_t now)
{
    // Purge committed free extents past the decay deadline, merging
    // newly-purged extents with purged neighbours as we go.
    for (unsigned b = 0; b < kNumBuckets; ++b) {
        ExtentMeta* e = free_buckets_[b].head();
        while (e != nullptr) {
            ExtentMeta* next = e->next;
            if (e->committed &&
                (now == UINT64_MAX || now - e->freed_at_ms >= decay_ms_)) {
                purge_extent(e);
                // Merge with purged free neighbours.
                const std::size_t first = page_index(e->base);
                if (first > 0) {
                    ExtentMeta* left = page_map_[first - 1];
                    if (left != nullptr && left != e &&
                        left->kind == ExtentKind::kFree && !left->committed) {
                        if (next == left)
                            next = left->next;
                        remove_free(left);
                        remove_free(e);
                        unmap_extent_range(left);
                        unmap_extent_range(e);
                        e->base = left->base;
                        e->pages += left->pages;
                        meta_pool_.free(left);
                        insert_free(e);
                    }
                }
                const std::size_t after = page_index(e->base) + e->pages;
                if (after < frontier_pages_) {
                    ExtentMeta* right = page_map_[after];
                    if (right != nullptr && right != e &&
                        right->kind == ExtentKind::kFree &&
                        !right->committed) {
                        if (next == right)
                            next = right->next;
                        remove_free(right);
                        remove_free(e);
                        unmap_extent_range(right);
                        unmap_extent_range(e);
                        e->pages += right->pages;
                        meta_pool_.free(right);
                        insert_free(e);
                    }
                }
            }
            e = next;
        }
    }
}

ExtentStats
ExtentAllocator::stats() const
{
    LockGuard g(lock_);
    ExtentStats s;
    s.committed_bytes = committed_bytes_;
    s.active_bytes = active_bytes_;
    s.mapped_frontier = bump_ - heap_.base();
    s.metadata_bytes =
        meta_pool_.committed_bytes() + page_map_space_.size();
    s.purges = purge_count_;
    return s;
}

}  // namespace msw::alloc
