/**
 * @file
 * Slab bins: one bin per (arena, size class).
 *
 * A bin owns the slabs of its class. Slabs with at least one free slot sit
 * on the bin's nonfull list; full slabs are tracked only through the page
 * map and rejoin the list when a slot is freed. A slab whose last slot is
 * freed is returned to the extent allocator, except that each bin keeps one
 * empty slab cached to damp extent churn.
 */
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/mutex.h"
#include "util/spin_lock.h"
#include "util/thread_annotations.h"

#include "alloc/extent.h"
#include "alloc/extent_allocator.h"
#include "alloc/size_classes.h"

namespace msw::alloc {

struct AllocPolicy;

class Bin
{
  public:
    Bin() = default;
    Bin(const Bin&) = delete;
    Bin& operator=(const Bin&) = delete;

    /** One-time setup (bins live in arrays, hence not via constructor).
        @p policy selects slot placement (see policy.h); null or a null
        choose_slot hook keeps the built-in first-fit scan. */
    void
    init(ExtentAllocator* extents, unsigned cls, std::uint8_t arena_index,
         const AllocPolicy* policy)
    {
        extents_ = extents;
        cls_ = cls;
        arena_ = arena_index;
        policy_ = policy;
    }

    /**
     * Pop up to @p n objects of this class into @p out. Returns the number
     * actually produced (always n unless the heap is exhausted).
     */
    unsigned alloc_batch(void** out, unsigned n);

    /**
     * Return one object whose containing slab is @p meta (from a page-map
     * lookup by the caller).
     */
    void free_one(void* ptr, ExtentMeta* meta);

    unsigned cls() const { return cls_; }

    // atfork integration (called by JadeAllocator's fork hooks): fork
    // with lock_ held so the child inherits consistent slab lists. The
    // acquire/release pairing straddles fork(), outside what the static
    // analysis can see.
    void prepare_fork() MSW_NO_THREAD_SAFETY_ANALYSIS { lock_.lock(); }
    void after_fork() MSW_NO_THREAD_SAFETY_ANALYSIS { lock_.unlock(); }

  private:
    ExtentMeta* grab_slab_locked() MSW_REQUIRES(lock_);

    ExtentAllocator* extents_ = nullptr;
    // Rank kBin: nests before the extent lock (grab_slab_locked and
    // free_one call into the extent allocator under lock_).
    SpinLock lock_{util::LockRank::kBin};
    ExtentList nonfull_ MSW_GUARDED_BY(lock_);
    ExtentMeta* cached_empty_ MSW_GUARDED_BY(lock_) = nullptr;
    unsigned cls_ = 0;
    std::uint8_t arena_ = 0;
    const AllocPolicy* policy_ = nullptr;
};

}  // namespace msw::alloc
