#include "alloc/policy.h"

#include <unistd.h>

#include <bit>
#include <cstdlib>
#include <cstring>

#include "sweep/sweeper.h"
#include "util/bits.h"
#include "util/check.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/sigsafe_io.h"

namespace msw::alloc {

namespace {

/**
 * Address-keyed tail byte shared by the allocation canary and the
 * quarantine fill: odd (never zero, so it is distinguishable from the
 * zero fill and a zeroing overflow trips it) and derived from the slot
 * address so a constant spray forged for one slot fails on another.
 */
unsigned char
tail_byte(std::uintptr_t base)
{
    return static_cast<unsigned char>(
        ((base >> 4) ^ (base >> 12) ^ 0xa5u) | 0x01u);
}

// ---------------------------------------------------- hardened hooks

unsigned
hardened_choose_slot(const std::uint64_t* slot_bits, unsigned nslots,
                     unsigned free_slots)
{
    // Uniformly pick the k-th free slot; slabs have at most 512 slots,
    // so this walks <= 8 bitmap words.
    std::uint64_t k = thread_rng().next_below(free_slots);
    const unsigned words = (nslots + 63) / 64;
    for (unsigned w = 0; w < words; ++w) {
        std::uint64_t free_bits = ~slot_bits[w];
        if (w == words - 1 && (nslots % 64) != 0)
            free_bits &= (std::uint64_t{1} << (nslots % 64)) - 1;
        const auto avail = static_cast<unsigned>(std::popcount(free_bits));
        if (k >= avail) {
            k -= avail;
            continue;
        }
        for (; k > 0; --k)
            free_bits &= free_bits - 1;
        return w * 64 + static_cast<unsigned>(std::countr_zero(free_bits));
    }
    MSW_CHECK(false);  // free_slots overran the bitmap
    return 0;
}

unsigned
hardened_choose_cached(unsigned count)
{
    return static_cast<unsigned>(thread_rng().next_below(count));
}

void
hardened_fill_free(void* ptr, std::size_t usable)
{
    auto* p = static_cast<unsigned char*>(ptr);
    std::memset(p, 0, usable - 1);
    p[usable - 1] = tail_byte(to_addr(ptr));
}

const void*
hardened_check_free_fill(const void* ptr, std::size_t usable)
{
    if (const void* bad = sweep::find_nonzero(ptr, usable - 1))
        return bad;
    const auto* p = static_cast<const unsigned char*>(ptr);
    if (p[usable - 1] != tail_byte(to_addr(ptr)))
        return p + (usable - 1);
    return nullptr;
}

void
hardened_arm_canary(void* ptr, std::size_t usable)
{
    static_cast<unsigned char*>(ptr)[usable - 1] = tail_byte(to_addr(ptr));
}

bool
hardened_check_canary(const void* ptr, std::size_t usable)
{
    return static_cast<const unsigned char*>(ptr)[usable - 1] ==
           tail_byte(to_addr(ptr));
}

void
hardened_shuffle(void* base, std::size_t count, std::size_t elem_size)
{
    // Type-erased Fisher-Yates; quarantine entries are a few words, so a
    // small stack buffer covers every caller.
    unsigned char tmp[64];
    MSW_CHECK(elem_size <= sizeof(tmp));
    auto* a = static_cast<unsigned char*>(base);
    Rng& rng = thread_rng();
    for (std::size_t i = count; i > 1; --i) {
        const std::size_t j = rng.next_below(i);
        if (j == i - 1)
            continue;
        unsigned char* x = a + j * elem_size;
        unsigned char* y = a + (i - 1) * elem_size;
        std::memcpy(tmp, x, elem_size);
        std::memcpy(x, y, elem_size);
        std::memcpy(y, tmp, elem_size);
    }
}

}  // namespace

const AllocPolicy&
default_policy()
{
    static constexpr AllocPolicy policy{};
    return policy;
}

const AllocPolicy&
hardened_policy()
{
    static constexpr AllocPolicy policy{
        .name = "hardened",
        .choose_slot = &hardened_choose_slot,
        .choose_cached = &hardened_choose_cached,
        .fill_free = &hardened_fill_free,
        .check_free_fill = &hardened_check_free_fill,
        .arm_canary = &hardened_arm_canary,
        .check_canary = &hardened_check_canary,
        .shuffle = &hardened_shuffle,
    };
    return policy;
}

const AllocPolicy*
policy_by_name(const char* name)
{
    if (name == nullptr || std::strcmp(name, "default") == 0)
        return &default_policy();
    if (std::strcmp(name, "hardened") == 0)
        return &hardened_policy();
    return nullptr;
}

const AllocPolicy&
policy_from_env()
{
    const char* env = std::getenv("MSW_POLICY");
    if (env == nullptr || *env == '\0')
        return default_policy();
    if (const AllocPolicy* p = policy_by_name(env))
        return *p;
    MSW_LOG_WARN("unknown MSW_POLICY '%s'; using the default policy", env);
    return default_policy();
}

void
policy_violation(const char* what, const void* addr)
{
    // Runs inside free()/the sweep, possibly self-hosted under
    // LD_PRELOAD: report without allocating or taking locks.
    {
        util::SigsafeWriter w(STDERR_FILENO);
        w.str("msw: allocation policy violation: ");
        w.str(what);
        w.str(" at 0x");
        w.hex(to_addr(addr));
        w.str("\n");
    }
    if (const char* env = std::getenv("MSW_POLICY_FATAL")) {
        if (env[0] == '0' && env[1] == '\0')
            return;  // observe-only mode: the caller counts the event
    }
    std::abort();
}

}  // namespace msw::alloc
