/**
 * @file
 * Extent metadata and its out-of-line pool.
 *
 * An extent is a contiguous, page-aligned run of pages inside the heap
 * reservation. Every active extent is either a slab (carved into equal
 * small objects of one size class) or a single large allocation; inactive
 * ranges are free extents held on the extent allocator's free lists.
 *
 * Metadata is stored *out of line* in a dedicated reservation, never inside
 * the heap pages themselves. This mirrors jemalloc and is load-bearing for
 * security: a heap overflow or use-after-free write cannot corrupt
 * allocator metadata (paper §2 footnote 2, §6.6).
 */
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/bits.h"
#include "util/check.h"
#include "util/mutex.h"
#include "util/spin_lock.h"
#include "util/thread_annotations.h"
#include "vm/vm.h"

#include "alloc/size_classes.h"

namespace msw::alloc {

enum class ExtentKind : std::uint8_t {
    kFree = 0,   ///< On a free list, contents dead.
    kSlab = 1,   ///< Carved into slab_slots(cls) objects of class cls.
    kLarge = 2,  ///< One allocation spanning the whole extent.
};

/**
 * Out-of-line descriptor for one extent. Intrusively linkable into exactly
 * one list at a time (a bin's slab list or a free-list bucket).
 */
struct ExtentMeta {
    std::uintptr_t base = 0;
    std::size_t pages = 0;

    ExtentMeta* prev = nullptr;
    ExtentMeta* next = nullptr;

    /** For kFree extents: when the extent was freed (ms, monotonic). */
    std::uint64_t freed_at_ms = 0;

    /** Requested byte size for kLarge (<= pages * kPageSize). */
    std::size_t large_size = 0;

    ExtentKind kind = ExtentKind::kFree;
    /** Physical/access state: true once commit() has been issued. */
    bool committed = false;
    /** Owning arena index (kSlab extents). */
    std::uint8_t arena = 0;
    /** Size class for kSlab extents. */
    std::uint16_t cls = 0;
    /** Allocated-slot count for kSlab. */
    std::uint16_t used_slots = 0;

    /** Slot allocation bitmap for kSlab (bit set = slot allocated). */
    std::uint64_t slot_bits[kMaxSlabSlots / 64] = {};

    std::size_t
    bytes() const
    {
        return pages * vm::kPageSize;
    }

    std::uintptr_t
    end() const
    {
        return base + bytes();
    }

    bool
    slot_allocated(unsigned slot) const
    {
        return (slot_bits[slot / 64] >> (slot % 64)) & 1u;
    }

    void
    set_slot(unsigned slot)
    {
        slot_bits[slot / 64] |= std::uint64_t{1} << (slot % 64);
    }

    void
    clear_slot(unsigned slot)
    {
        slot_bits[slot / 64] &= ~(std::uint64_t{1} << (slot % 64));
    }
};

/**
 * Doubly-linked intrusive list of extents (bin slab lists, free buckets).
 * Not thread-safe; callers hold the owning lock.
 */
class ExtentList
{
  public:
    bool empty() const { return head_ == nullptr; }
    ExtentMeta* head() const { return head_; }

    void
    push_front(ExtentMeta* e)
    {
        MSW_DCHECK(e->prev == nullptr && e->next == nullptr);
        e->next = head_;
        if (head_ != nullptr)
            head_->prev = e;
        head_ = e;
    }

    void
    remove(ExtentMeta* e)
    {
        if (e->prev != nullptr)
            e->prev->next = e->next;
        else {
            MSW_DCHECK(head_ == e);
            head_ = e->next;
        }
        if (e->next != nullptr)
            e->next->prev = e->prev;
        e->prev = nullptr;
        e->next = nullptr;
    }

    ExtentMeta*
    pop_front()
    {
        ExtentMeta* e = head_;
        if (e != nullptr)
            remove(e);
        return e;
    }

  private:
    ExtentMeta* head_ = nullptr;
};

/**
 * Bump-plus-freelist pool for ExtentMeta records, carved from its own
 * reservation so metadata never shares pages with user data. Thread-safe.
 */
class MetaPool
{
  public:
    /** @param capacity_bytes Reserved VA for metadata (committed on demand). */
    explicit MetaPool(std::size_t capacity_bytes);

    MetaPool(const MetaPool&) = delete;
    MetaPool& operator=(const MetaPool&) = delete;

    /** Allocate a zero-initialised record. */
    ExtentMeta* alloc();

    /** Return a record to the pool. */
    void free(ExtentMeta* meta);

    /** Bytes of metadata currently committed. */
    std::size_t
    committed_bytes() const
    {
        LockGuard g(lock_);
        return committed_;
    }

    /** The metadata reservation (excluded from conservative scans). */
    const vm::Reservation& reservation() const { return space_; }

    // atfork integration (via ExtentAllocator): fork with lock_ held so
    // the child inherits a consistent bump/free-list state. The pairing
    // straddles fork(), outside what the static analysis can see.
    void prepare_fork() MSW_NO_THREAD_SAFETY_ANALYSIS { lock_.lock(); }
    void after_fork() MSW_NO_THREAD_SAFETY_ANALYSIS { lock_.unlock(); }

  private:
    vm::Reservation space_;
    // Rank kExtentMeta: MetaPool::alloc/free run under the extent lock.
    mutable SpinLock lock_{util::LockRank::kExtentMeta};
    std::uintptr_t bump_ MSW_GUARDED_BY(lock_) = 0;
    std::size_t committed_ MSW_GUARDED_BY(lock_) = 0;
    ExtentMeta* free_list_ MSW_GUARDED_BY(lock_) = nullptr;
};

}  // namespace msw::alloc
