#include "alloc/jade_allocator.h"

#include <sys/mman.h>

#include <atomic>
#include <cstring>
#include <new>

#include "alloc/policy.h"
#include "util/bits.h"
#include "util/check.h"
#include "util/log.h"
#include "util/spin_lock.h"

namespace msw::alloc {

namespace {

/** mmap-backed anonymous allocation (no malloc dependency). */
void*
os_alloc(std::size_t bytes)
{
    void* p = ::mmap(nullptr, align_up(bytes, vm::kPageSize),
                     PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1,
                     0);
    MSW_CHECK(p != MAP_FAILED);
    return p;
}

void
os_free(void* p, std::size_t bytes)
{
    ::munmap(p, align_up(bytes, vm::kPageSize));
}

/** Per-class thread-cache capacity: smaller caches for bigger objects. */
unsigned
shard_cap(unsigned cls)
{
    const std::size_t size = class_size(cls);
    if (size <= 256)
        return 32;
    if (size <= 1024)
        return 16;
    if (size <= 4096)
        return 8;
    return 4;
}

/**
 * Serialises tcache-registry operations across all JadeAllocators.
 * Rank kBinRegistry: tcache_destructor flushes shards under this lock,
 * which nests into bin and extent locks.
 */
SpinLock g_tcache_registry_lock{util::LockRank::kBinRegistry};

}  // namespace

struct JadeAllocator::Arena {
    Bin* bins = nullptr;  // [num_classes_]
};

struct JadeAllocator::TCache {
    static constexpr unsigned kMaxCap = 32;

    struct Shard {
        std::uint16_t count = 0;
        void* objs[kMaxCap];
    };

    std::atomic<JadeAllocator*> owner{nullptr};
    TCache* reg_prev = nullptr;
    TCache* reg_next = nullptr;
    std::uint8_t arena = 0;
    std::size_t alloc_size = 0;  // os_alloc size, for os_free
    Shard shards[1];             // [num_classes_], flexible

    static std::size_t
    bytes_for(unsigned num_classes)
    {
        return sizeof(TCache) + (num_classes - 1) * sizeof(Shard);
    }
};

JadeAllocator::TCache* JadeAllocator::g_tcache_head = nullptr;

JadeAllocator::JadeAllocator(const Options& opts)
    : extents_(opts.heap_bytes, opts.decay_ms),
      opts_(opts),
      policy_(&resolve_policy(opts.policy)),
      num_classes_(num_size_classes())
{
    MSW_CHECK(opts_.arenas >= 1 && opts_.arenas <= 64);
    const std::size_t arena_bytes = sizeof(Arena) * opts_.arenas +
                                    sizeof(Bin) * opts_.arenas * num_classes_;
    char* mem = static_cast<char*>(os_alloc(arena_bytes));
    arenas_ = reinterpret_cast<Arena*>(mem);
    Bin* bins = reinterpret_cast<Bin*>(mem + sizeof(Arena) * opts_.arenas);
    for (unsigned a = 0; a < opts_.arenas; ++a) {
        new (&arenas_[a]) Arena();
        arenas_[a].bins = bins + a * num_classes_;
        for (unsigned c = 0; c < num_classes_; ++c) {
            new (&arenas_[a].bins[c]) Bin();
            arenas_[a].bins[c].init(&extents_, c,
                                    static_cast<std::uint8_t>(a), policy_);
        }
    }
    MSW_CHECK(pthread_key_create(&tcache_key_, &tcache_destructor) == 0);
}

JadeAllocator::~JadeAllocator()
{
    // Flush and destroy this thread's cache, then orphan any caches that
    // belong to other still-running threads: their exit callbacks will free
    // the storage without touching this (dead) allocator.
    flush();
    {
        LockGuard g(g_tcache_registry_lock);
        TCache* tc = g_tcache_head;
        while (tc != nullptr) {
            TCache* next = tc->reg_next;
            // msw-relaxed(tcache-owner): read under
            // g_tcache_registry_lock, which every orphaning store holds.
            if (tc->owner.load(std::memory_order_relaxed) == this) {
                tc->owner.store(nullptr, std::memory_order_release);
                if (tc->reg_prev != nullptr)
                    tc->reg_prev->reg_next = tc->reg_next;
                else
                    g_tcache_head = tc->reg_next;
                if (tc->reg_next != nullptr)
                    tc->reg_next->reg_prev = tc->reg_prev;
                tc->reg_prev = nullptr;
                tc->reg_next = nullptr;
            }
            tc = next;
        }
    }
    pthread_key_delete(tcache_key_);
    const std::size_t arena_bytes = sizeof(Arena) * opts_.arenas +
                                    sizeof(Bin) * opts_.arenas * num_classes_;
    os_free(arenas_, arena_bytes);
}

Bin&
JadeAllocator::bin_for(std::uint8_t arena, unsigned cls) const
{
    MSW_DCHECK(arena < opts_.arenas && cls < num_classes_);
    return arenas_[arena].bins[cls];
}

unsigned
JadeAllocator::arena_for_thread()
{
    // msw-relaxed(work-cursor): round-robin ticket; only RMW
    // atomicity matters, the value orders nothing.
    return next_arena_.fetch_add(1, std::memory_order_relaxed) %
           opts_.arenas;
}

JadeAllocator::TCache*
JadeAllocator::make_tcache()
{
    const std::size_t bytes = TCache::bytes_for(num_classes_);
    auto* tc = static_cast<TCache*>(os_alloc(bytes));
    // os_alloc returns zeroed memory; set the non-zero fields.
    // msw-relaxed(tcache-owner): cache not yet published; the registry
    // insert under the lock is what makes it visible.
    tc->owner.store(this, std::memory_order_relaxed);
    tc->arena = static_cast<std::uint8_t>(arena_for_thread());
    tc->alloc_size = bytes;
    {
        LockGuard g(g_tcache_registry_lock);
        tc->reg_next = g_tcache_head;
        if (g_tcache_head != nullptr)
            g_tcache_head->reg_prev = tc;
        g_tcache_head = tc;
    }
    pthread_setspecific(tcache_key_, tc);
    return tc;
}

JadeAllocator::TCache*
JadeAllocator::get_tcache()
{
    if (!opts_.enable_tcache)
        return nullptr;
    auto* tc = static_cast<TCache*>(pthread_getspecific(tcache_key_));
    if (tc == nullptr)
        tc = make_tcache();
    return tc;
}

void
JadeAllocator::tcache_destructor(void* arg)
{
    auto* tc = static_cast<TCache*>(arg);
    if (tc->owner.load(std::memory_order_acquire) != nullptr) {
        // Flush while holding the registry lock: the owning allocator's
        // destructor also takes this lock before orphaning caches, so the
        // allocator cannot be destroyed mid-flush.
        LockGuard g(g_tcache_registry_lock);
        // msw-relaxed(tcache-owner): re-read under
        // g_tcache_registry_lock; the destructor orphans under it too.
        JadeAllocator* owner = tc->owner.load(std::memory_order_relaxed);
        if (owner != nullptr) {
            if (tc->reg_prev != nullptr)
                tc->reg_prev->reg_next = tc->reg_next;
            else
                g_tcache_head = tc->reg_next;
            if (tc->reg_next != nullptr)
                tc->reg_next->reg_prev = tc->reg_prev;
            for (unsigned c = 0; c < owner->num_classes_; ++c)
                owner->flush_shard(tc, c, 0);
        }
    }
    os_free(tc, tc->alloc_size);
}

// The fork hooks hold the whole substrate hierarchy across fork(); the
// pairing is enforced by core/lifecycle, outside what the static
// analysis can see. Same-rank bulk acquisition of the bin locks is
// legal only inside the lock-rank fork window the lifecycle opens.
void
JadeAllocator::prepare_fork() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    g_tcache_registry_lock.lock();  // kBinRegistry (30)
    for (unsigned a = 0; a < opts_.arenas; ++a) {
        for (unsigned c = 0; c < num_classes_; ++c)
            arenas_[a].bins[c].prepare_fork();  // kBin (32), bulk
    }
    extents_.prepare_fork();  // kExtent (40) -> kExtentMeta (42)
}

void
JadeAllocator::parent_after_fork() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    extents_.after_fork();
    for (unsigned a = 0; a < opts_.arenas; ++a) {
        for (unsigned c = 0; c < num_classes_; ++c)
            arenas_[a].bins[c].after_fork();
    }
    g_tcache_registry_lock.unlock();
}

void
JadeAllocator::child_after_fork() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    // Pure release: the locks were held by the forking thread, so the
    // child's copies are consistent. Cache adoption happens later, in
    // child_fixup(), once the whole hierarchy is free again.
    parent_after_fork();
}

void
JadeAllocator::child_fixup()
{
    // Adopt the thread caches of threads that did not survive the fork:
    // flush their objects back to the shared bins and release the
    // storage, exactly as their exit destructors would have. The calling
    // thread's own cache (still reachable via its TSD) survives. Runs
    // single-threaded with no prepare-held locks, so the nested
    // registry -> bin -> extent acquisitions are the normal ones.
    TCache* mine = static_cast<TCache*>(pthread_getspecific(tcache_key_));
    LockGuard g(g_tcache_registry_lock);
    TCache* tc = g_tcache_head;
    while (tc != nullptr) {
        TCache* next = tc->reg_next;
        if (tc != mine &&
            // msw-relaxed(tcache-owner): read under
            // g_tcache_registry_lock, as for every orphaning store.
            tc->owner.load(std::memory_order_relaxed) == this) {
            if (tc->reg_prev != nullptr)
                tc->reg_prev->reg_next = tc->reg_next;
            else
                g_tcache_head = tc->reg_next;
            if (tc->reg_next != nullptr)
                tc->reg_next->reg_prev = tc->reg_prev;
            for (unsigned c = 0; c < num_classes_; ++c)
                flush_shard(tc, c, 0);
            os_free(tc, tc->alloc_size);
        }
        tc = next;
    }
}

void
JadeAllocator::flush_shard(TCache* tc, unsigned cls, unsigned keep)
{
    TCache::Shard& shard = tc->shards[cls];
    // Evict the oldest entries (bottom of the stack), keeping the most
    // recently freed ones hot.
    unsigned evict = shard.count > keep ? shard.count - keep : 0;
    for (unsigned i = 0; i < evict; ++i) {
        void* ptr = shard.objs[i];
        ExtentMeta* meta = extents_.lookup_live(to_addr(ptr));
        bin_for(meta->arena, cls).free_one(ptr, meta);
    }
    if (evict > 0 && shard.count > evict) {
        std::memmove(&shard.objs[0], &shard.objs[evict],
                     (shard.count - evict) * sizeof(void*));
    }
    shard.count = static_cast<std::uint16_t>(shard.count - evict);
}

void*
JadeAllocator::alloc(std::size_t size)
{
    // msw-relaxed(stat-cells): statistics counter; totals need no
    // ordering.
    alloc_calls_.fetch_add(1, std::memory_order_relaxed);
    if (size == 0)
        size = 1;
    if (size > kMaxSmallSize)
        return alloc_large(size, 1);

    const unsigned cls = size_to_class(size);
    // msw-relaxed(stat-cells): statistics counter; totals need no
    // ordering.
    live_bytes_.fetch_add(class_size(cls), std::memory_order_relaxed);

    TCache* tc = get_tcache();
    if (tc != nullptr) {
        TCache::Shard& shard = tc->shards[cls];
        if (shard.count == 0) {
            const unsigned fill = (shard_cap(cls) + 1) / 2;
            shard.count = static_cast<std::uint16_t>(
                bin_for(tc->arena, cls).alloc_batch(shard.objs, fill));
        }
        if (shard.count == 0) {
            // msw-relaxed(stat-cells): statistics counter rollback.
            live_bytes_.fetch_sub(class_size(cls),
                                  std::memory_order_relaxed);
            return nullptr;
        }
        if (policy_->choose_cached != nullptr && shard.count > 1) {
            // Policy-randomized reuse order: pick any cached object and
            // swap it with the top so the pop stays O(1).
            const unsigned pick = policy_->choose_cached(shard.count);
            void* chosen = shard.objs[pick];
            shard.objs[pick] = shard.objs[shard.count - 1];
            shard.count = static_cast<std::uint16_t>(shard.count - 1);
            return chosen;
        }
        return shard.objs[--shard.count];
    }
    void* out = nullptr;
    const unsigned got = bin_for(0, cls).alloc_batch(&out, 1);
    if (got != 1) {
        // msw-relaxed(stat-cells): statistics counter rollback.
        live_bytes_.fetch_sub(class_size(cls), std::memory_order_relaxed);
        return nullptr;
    }
    return out;
}

void*
JadeAllocator::alloc_large(std::size_t size, std::size_t align_pages)
{
    const std::size_t pages = vm::pages_for(size);
    ExtentMeta* e =
        extents_.alloc_extent(pages, ExtentKind::kLarge, align_pages);
    if (e == nullptr) {
        return nullptr;
    }
    e->large_size = size;
    // msw-relaxed(stat-cells): statistics counter; totals need no
    // ordering.
    live_bytes_.fetch_add(e->bytes(), std::memory_order_relaxed);
    return to_ptr(e->base);
}

void
JadeAllocator::free(void* ptr)
{
    if (ptr == nullptr)
        return;
    // msw-relaxed(stat-cells): statistics counter; totals need no
    // ordering.
    free_calls_.fetch_add(1, std::memory_order_relaxed);
    ExtentMeta* meta = extents_.lookup_live(to_addr(ptr));
    if (meta->kind == ExtentKind::kLarge) {
        free_large(meta);
        return;
    }
    MSW_DCHECK(meta->kind == ExtentKind::kSlab);
    const unsigned cls = meta->cls;
    // msw-relaxed(stat-cells): statistics counter; totals need no
    // ordering.
    live_bytes_.fetch_sub(class_size(cls), std::memory_order_relaxed);
    TCache* tc = get_tcache();
    if (tc != nullptr) {
        TCache::Shard& shard = tc->shards[cls];
        const unsigned cap = shard_cap(cls);
        if (shard.count == cap)
            flush_shard(tc, cls, cap / 2);
        shard.objs[shard.count++] = ptr;
        return;
    }
    bin_for(meta->arena, cls).free_one(ptr, meta);
}

void
JadeAllocator::free_direct(void* ptr)
{
    if (ptr == nullptr)
        return;
    // msw-relaxed(stat-cells): statistics counter; totals need no
    // ordering.
    free_calls_.fetch_add(1, std::memory_order_relaxed);
    ExtentMeta* meta = extents_.lookup_live(to_addr(ptr));
    if (meta->kind == ExtentKind::kLarge) {
        free_large(meta);
        return;
    }
    // msw-relaxed(stat-cells): statistics counter; totals need no
    // ordering.
    live_bytes_.fetch_sub(class_size(meta->cls), std::memory_order_relaxed);
    bin_for(meta->arena, meta->cls).free_one(ptr, meta);
}

void
JadeAllocator::free_large(ExtentMeta* meta)
{
    // msw-relaxed(stat-cells): statistics counter; totals need no
    // ordering.
    live_bytes_.fetch_sub(meta->bytes(), std::memory_order_relaxed);
    extents_.free_extent(meta);
}

std::size_t
JadeAllocator::usable_size(const void* ptr) const
{
    ExtentMeta* meta = extents_.lookup_live(to_addr(ptr));
    if (meta->kind == ExtentKind::kLarge)
        return meta->bytes();
    return class_size(meta->cls);
}

void*
JadeAllocator::alloc_aligned(std::size_t alignment, std::size_t size)
{
    // msw-relaxed(stat-cells): statistics counter; totals need no
    // ordering.
    alloc_calls_.fetch_add(1, std::memory_order_relaxed);
    if (size == 0)
        size = 1;
    if (alignment <= kGranule) {
        // msw-relaxed(stat-cells): undo the count; alloc() re-counts.
        alloc_calls_.fetch_sub(1, std::memory_order_relaxed);
        return alloc(size);
    }
    MSW_CHECK(is_pow2(alignment));
    if (size <= kMaxSmallSize && alignment <= vm::kPageSize) {
        // Find a class that is both >= size and a multiple of the
        // alignment: objects are placed at multiples of the class size in
        // page-aligned slabs, so such a class guarantees alignment.
        for (unsigned c = size_to_class(size); c < num_classes_; ++c) {
            if (class_size(c) % alignment == 0) {
                // msw-relaxed(stat-cells): undo the count; alloc()
                // re-counts.
                alloc_calls_.fetch_sub(1, std::memory_order_relaxed);
                return alloc(class_size(c));
            }
        }
    }
    const std::size_t align_pages =
        alignment <= vm::kPageSize ? 1 : alignment >> vm::kPageShift;
    return alloc_large(size, align_pages);
}

void*
JadeAllocator::realloc(void* ptr, std::size_t new_size)
{
    if (ptr == nullptr)
        return alloc(new_size);
    if (new_size == 0)
        new_size = 1;
    const std::size_t old_usable = usable_size(ptr);
    if (new_size <= old_usable && new_size * 2 > old_usable)
        return ptr;
    void* fresh = alloc(new_size);
    if (fresh == nullptr) {
        // Per the realloc contract the original block stays valid.
        return nullptr;
    }
    std::memcpy(fresh, ptr, old_usable < new_size ? old_usable : new_size);
    free(ptr);
    return fresh;
}

bool
JadeAllocator::lookup_allocation(std::uintptr_t addr,
                                 AllocationInfo* out) const
{
    ExtentMeta* e = extents_.lookup(addr);
    if (e == nullptr)
        return false;
    if (e->kind == ExtentKind::kLarge) {
        out->base = e->base;
        out->usable = e->bytes();
        out->live = true;
        return true;
    }
    MSW_DCHECK(e->kind == ExtentKind::kSlab);
    const std::size_t obj = class_size(e->cls);
    const unsigned slot = static_cast<unsigned>((addr - e->base) / obj);
    if (slot >= slab_slots(e->cls))
        return false;  // Tail waste past the last object.
    out->base = e->base + slot * obj;
    out->usable = obj;
    out->live = e->slot_allocated(slot);
    return true;
}

bool
JadeAllocator::lookup_relaxed(std::uintptr_t addr, AllocationInfo* out) const
{
    if (!extents_.contains(addr))
        return false;
    ExtentMeta* e = extents_.peek_page_map(addr);
    if (e == nullptr)
        return false;
    // Validate a racy snapshot of the metadata: a concurrent free/reuse
    // can hand us stale fields, so clamp everything before trusting it.
    const ExtentKind kind = e->kind;
    const std::uintptr_t base = e->base;
    const std::size_t pages = e->pages;
    if (kind == ExtentKind::kFree)
        return false;
    if (!extents_.contains(base) || pages == 0 ||
        pages > (extents_.reservation().size() >> vm::kPageShift)) {
        return false;
    }
    const std::uintptr_t end = base + (pages << vm::kPageShift);
    if (addr < base || addr >= end)
        return false;
    if (kind == ExtentKind::kLarge) {
        out->base = base;
        out->usable = pages << vm::kPageShift;
        out->live = true;
        return true;
    }
    const std::uint16_t cls = e->cls;
    if (cls >= num_classes_)
        return false;
    const std::size_t obj = class_size(cls);
    const unsigned slot = static_cast<unsigned>((addr - base) / obj);
    if (slot >= slab_slots(cls))
        return false;
    out->base = base + slot * obj;
    out->usable = obj;
    out->live = true;
    return true;
}

void
JadeAllocator::flush()
{
    if (!opts_.enable_tcache)
        return;
    auto* tc = static_cast<TCache*>(pthread_getspecific(tcache_key_));
    if (tc == nullptr)
        return;
    for (unsigned c = 0; c < num_classes_; ++c)
        flush_shard(tc, c, 0);
}

AllocatorStats
JadeAllocator::stats() const
{
    const ExtentStats es = extents_.stats();
    AllocatorStats s;
    // msw-relaxed(stat-cells): statistics snapshot; cells may tear
    // relative to each other and that is fine for reporting.
    s.live_bytes = live_bytes_.load(std::memory_order_relaxed);
    s.committed_bytes = es.committed_bytes;
    s.metadata_bytes = es.metadata_bytes;
    // msw-relaxed(stat-cells): as above — reporting snapshot.
    s.alloc_calls = alloc_calls_.load(std::memory_order_relaxed);
    s.free_calls = free_calls_.load(std::memory_order_relaxed);
    return s;
}

}  // namespace msw::alloc
