#include "alloc/bin.h"

#include <bit>

#include "alloc/policy.h"
#include "util/bits.h"
#include "util/check.h"

namespace msw::alloc {

ExtentMeta*
Bin::grab_slab_locked()
{
    if (!nonfull_.empty())
        return nonfull_.head();
    if (cached_empty_ != nullptr) {
        ExtentMeta* slab = cached_empty_;
        cached_empty_ = nullptr;
        nonfull_.push_front(slab);
        return slab;
    }
    ExtentMeta* slab =
        extents_->alloc_extent(slab_pages(cls_), ExtentKind::kSlab);
    if (slab == nullptr) {
        return nullptr;
    }
    slab->cls = static_cast<std::uint16_t>(cls_);
    slab->arena = arena_;
    nonfull_.push_front(slab);
    return slab;
}

unsigned
Bin::alloc_batch(void** out, unsigned n)
{
    const std::size_t obj_size = class_size(cls_);
    const unsigned nslots = slab_slots(cls_);
    unsigned produced = 0;

    // Slot *selection* is policy; everything else here (slab lists,
    // bitmap bookkeeping) is mechanism. The hook is lock-free and runs
    // under lock_; null keeps the historical first-fit scan inlined.
    const auto choose =
        policy_ != nullptr ? policy_->choose_slot : nullptr;

    LockGuard g(lock_);
    while (produced < n) {
        ExtentMeta* slab = grab_slab_locked();
        if (slab == nullptr) {
            // Out of extents under pressure: return the short batch; the
            // caller decides whether to reclaim and retry.
            break;
        }
        if (choose != nullptr) {
            // Policy-selected placement, one slot per pick.
            unsigned free_slots =
                nslots - static_cast<unsigned>(slab->used_slots);
            while (free_slots > 0 && produced < n) {
                const unsigned slot =
                    choose(slab->slot_bits, nslots, free_slots);
                MSW_DCHECK(slot < nslots && !slab->slot_allocated(slot));
                slab->set_slot(slot);
                ++slab->used_slots;
                --free_slots;
                out[produced++] =
                    to_ptr(slab->base + std::size_t{slot} * obj_size);
            }
            if (slab->used_slots == nslots)
                nonfull_.remove(slab);
            continue;
        }
        // Default: scan the slot bitmap for free slots, lowest first.
        const unsigned words = (nslots + 63) / 64;
        for (unsigned w = 0; w < words && produced < n; ++w) {
            std::uint64_t free_bits = ~slab->slot_bits[w];
            if (w == words - 1 && (nslots % 64) != 0) {
                free_bits &= (std::uint64_t{1} << (nslots % 64)) - 1;
            }
            while (free_bits != 0 && produced < n) {
                const unsigned bit =
                    static_cast<unsigned>(std::countr_zero(free_bits));
                free_bits &= free_bits - 1;
                const unsigned slot = w * 64 + bit;
                slab->set_slot(slot);
                ++slab->used_slots;
                out[produced++] =
                    to_ptr(slab->base + std::size_t{slot} * obj_size);
            }
        }
        if (slab->used_slots == nslots)
            nonfull_.remove(slab);
    }
    return produced;
}

void
Bin::free_one(void* ptr, ExtentMeta* meta)
{
    MSW_DCHECK(meta->kind == ExtentKind::kSlab && meta->cls == cls_);
    const std::size_t obj_size = class_size(cls_);
    const auto offset = to_addr(ptr) - meta->base;
    MSW_DCHECK(offset % obj_size == 0);
    const unsigned slot = static_cast<unsigned>(offset / obj_size);
    const unsigned nslots = slab_slots(cls_);

    LockGuard g(lock_);
    MSW_CHECK(meta->slot_allocated(slot));
    const bool was_full = meta->used_slots == nslots;
    meta->clear_slot(slot);
    --meta->used_slots;
    if (was_full)
        nonfull_.push_front(meta);
    if (meta->used_slots == 0) {
        // Keep one empty slab cached; release further ones.
        nonfull_.remove(meta);
        if (cached_empty_ == nullptr) {
            cached_empty_ = meta;
        } else {
            extents_->free_extent(meta);
        }
    }
}

}  // namespace msw::alloc
