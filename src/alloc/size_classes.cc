#include "alloc/size_classes.h"

#include <array>

#include "util/bits.h"
#include "util/check.h"
#include "vm/vm.h"

namespace msw::alloc {

namespace {

/** All class metadata is computed once at startup into flat tables. */
struct Tables {
    // Class sizes.
    std::array<std::size_t, 64> size{};
    // (size/16 - 1) -> class index, for every granule-multiple size.
    std::array<std::uint16_t, kMaxSmallSize / kGranule> lookup{};
    std::array<std::uint8_t, 64> pages{};
    std::array<std::uint16_t, 64> slots{};
    unsigned count = 0;

    Tables()
    {
        build_sizes();
        build_lookup();
        build_slabs();
    }

    void
    build_sizes()
    {
        // One class per granule up to 128 B.
        std::size_t s = kGranule;
        while (s <= 128) {
            size[count++] = s;
            s += kGranule;
        }
        // Then jemalloc spacing: four classes per doubling.
        std::size_t group_base = 128;
        while (group_base < kMaxSmallSize) {
            const std::size_t step = group_base / 4;
            for (int i = 1; i <= 4; ++i) {
                const std::size_t cls_size = group_base + step * i;
                if (cls_size > kMaxSmallSize)
                    return;
                size[count++] = cls_size;
            }
            group_base *= 2;
        }
    }

    void
    build_lookup()
    {
        unsigned cls = 0;
        for (unsigned g = 0; g < lookup.size(); ++g) {
            const std::size_t sz = (g + 1) * kGranule;
            while (size[cls] < sz)
                ++cls;
            lookup[g] = static_cast<std::uint16_t>(cls);
        }
    }

    void
    build_slabs()
    {
        for (unsigned c = 0; c < count; ++c) {
            const std::size_t obj = size[c];
            unsigned best_pages = 1;
            std::size_t best_waste = vm::kPageSize;
            for (unsigned p = 1; p <= 16; ++p) {
                const std::size_t bytes = p * vm::kPageSize;
                const std::size_t n = bytes / obj;
                if (n == 0 || n > kMaxSlabSlots)
                    continue;
                const std::size_t waste = (bytes % obj) * 16 / p;
                // Prefer low normalised waste; stop early on exact fits.
                if (waste < best_waste) {
                    best_waste = waste;
                    best_pages = p;
                    if (waste == 0)
                        break;
                }
            }
            pages[c] = static_cast<std::uint8_t>(best_pages);
            slots[c] = static_cast<std::uint16_t>(best_pages * vm::kPageSize /
                                                  obj);
            MSW_CHECK(slots[c] >= 1 && slots[c] <= kMaxSlabSlots);
        }
    }
};

const Tables&
tables()
{
    static const Tables t;
    return t;
}

}  // namespace

unsigned
num_size_classes()
{
    return tables().count;
}

std::size_t
class_size(unsigned cls)
{
    MSW_DCHECK(cls < tables().count);
    return tables().size[cls];
}

unsigned
size_to_class(std::size_t size)
{
    MSW_DCHECK(size >= 1 && size <= kMaxSmallSize);
    const unsigned g = static_cast<unsigned>((size - 1) / kGranule);
    return tables().lookup[g];
}

unsigned
slab_pages(unsigned cls)
{
    MSW_DCHECK(cls < tables().count);
    return tables().pages[cls];
}

unsigned
slab_slots(unsigned cls)
{
    MSW_DCHECK(cls < tables().count);
    return tables().slots[cls];
}

}  // namespace msw::alloc
