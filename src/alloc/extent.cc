#include "alloc/extent.h"

#include <cstring>

#include "util/bits.h"

namespace msw::alloc {

MetaPool::MetaPool(std::size_t capacity_bytes)
    : space_(vm::Reservation::reserve(capacity_bytes))
{
    LockGuard g(lock_);
    bump_ = space_.base();
}

ExtentMeta*
MetaPool::alloc()
{
    LockGuard g(lock_);
    if (free_list_ != nullptr) {
        ExtentMeta* m = free_list_;
        free_list_ = m->next;
        std::memset(static_cast<void*>(m), 0, sizeof(ExtentMeta));
        return m;
    }
    const std::size_t sz = align_up(sizeof(ExtentMeta), 64);
    if (bump_ + sz > space_.end())
        panic("MetaPool exhausted (%zu bytes reserved)", space_.size());
    // Commit pages lazily as the bump pointer crosses them.
    const std::uintptr_t committed_end = space_.base() + committed_;
    if (bump_ + sz > committed_end) {
        const std::uintptr_t new_end = align_up(bump_ + sz, vm::kPageSize);
        // Metadata the allocator cannot run without; commit_must retries
        // through transient pressure rather than failing the alloc.
        space_.commit_must(committed_end, new_end - committed_end);
        committed_ = new_end - space_.base();
    }
    auto* m = to_ptr_of<ExtentMeta>(bump_);
    bump_ += sz;
    std::memset(static_cast<void*>(m), 0, sizeof(ExtentMeta));
    return m;
}

void
MetaPool::free(ExtentMeta* meta)
{
    LockGuard g(lock_);
    meta->next = free_list_;
    free_list_ = meta;
}

}  // namespace msw::alloc
