/**
 * @file
 * The allocator interface shared by every system under evaluation.
 *
 * JadeHeap (the jemalloc-style substrate), MineSweeper, MarkUs and FFMalloc
 * all implement this interface, which is what lets the workload driver and
 * every benchmark binary treat them interchangeably — the reproduction of
 * the paper's "drop-in" property at the library level.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace msw::alloc {

/** Point-in-time memory accounting for an allocator. */
struct AllocatorStats {
    /** Bytes handed out to the application and not yet truly freed. */
    std::size_t live_bytes = 0;
    /** Bytes of heap pages with physical backing (the RSS the allocator
     *  itself is responsible for). */
    std::size_t committed_bytes = 0;
    /** Out-of-line metadata footprint. */
    std::size_t metadata_bytes = 0;
    /** Bytes held in quarantine awaiting proof of safety (0 for
     *  non-quarantining allocators). */
    std::size_t quarantine_bytes = 0;
    /** Number of sweeps/marking passes performed so far. */
    std::uint64_t sweeps = 0;
    /** malloc calls served. */
    std::uint64_t alloc_calls = 0;
    /** free calls observed (including double frees absorbed). */
    std::uint64_t free_calls = 0;
};

/** Abstract malloc/free provider. Implementations are thread-safe. */
class Allocator
{
  public:
    virtual ~Allocator() = default;

    /** Allocate at least @p size bytes (size 0 behaves as size 1). */
    virtual void* alloc(std::size_t size) = 0;

    /** Free a pointer previously returned by alloc(). nullptr is a no-op. */
    virtual void free(void* ptr) = 0;

    /** Usable size of a live allocation. */
    virtual std::size_t usable_size(const void* ptr) const = 0;

    /** Allocate with alignment (power of two, <= one page). */
    virtual void* alloc_aligned(std::size_t alignment, std::size_t size) = 0;

    /**
     * Resize an allocation. The default implementation is
     * allocate-copy-free; implementations with cheaper strategies
     * override it.
     */
    virtual void*
    realloc(void* ptr, std::size_t new_size)
    {
        if (ptr == nullptr)
            return alloc(new_size);
        if (new_size == 0)
            new_size = 1;
        const std::size_t old = usable_size(ptr);
        void* fresh = alloc(new_size);
        std::memcpy(fresh, ptr, old < new_size ? old : new_size);
        free(ptr);
        return fresh;
    }

    /** Current statistics snapshot. */
    virtual AllocatorStats stats() const = 0;

    /** Human-readable scheme name ("jade", "minesweeper", ...). */
    virtual const char* name() const = 0;

    /**
     * Quiesce background machinery (finish in-flight sweeps, purge).
     * Benchmarks call this before their final memory measurements.
     */
    virtual void flush() {}
};

}  // namespace msw::alloc
