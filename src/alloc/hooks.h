/**
 * @file
 * Extent hooks: the allocator's interface to physical-memory management.
 *
 * This reproduces jemalloc's extent_hooks API surface as used by the paper
 * (§4.5): the allocator calls commit() before handing out pages and purge()
 * when it wants to release the physical memory behind free extents.
 *
 * The default hooks implement jemalloc's stock behaviour: purge is
 * MADV_DONTNEED with the pages left accessible (they refault as zero
 * pages). MineSweeper installs its own hooks that instead *decommit*
 * (discard + PROT_NONE) and track the committed-page bitmap, so sweeps can
 * skip purged pages instead of faulting them back in.
 */
#pragma once

#include <cstddef>
#include <cstdint>

#include "vm/vm.h"

namespace msw::alloc {

/** Physical-memory operations invoked by the extent allocator. */
class ExtentHooks
{
  public:
    explicit ExtentHooks(const vm::Reservation* heap) : heap_(heap) {}
    virtual ~ExtentHooks() = default;

    /**
     * Make [addr, addr+len) readable and writable. Called before an extent
     * is handed out if it is not already committed. Pages previously purged
     * reappear zero-filled. Returns false on transient failure (memory
     * pressure); the extent stays uncommitted and the caller backs off.
     */
    [[nodiscard]] virtual bool
    commit(std::uintptr_t addr, std::size_t len)
    {
        return heap_->protect_rw(addr, len) == vm::VmStatus::kOk;
    }

    /**
     * Release the physical memory behind [addr, addr+len). The stock
     * behaviour keeps the range accessible (demand-zero on next touch),
     * like jemalloc's madvise purging. Returns false on transient
     * failure; the extent must then stay accounted as committed.
     */
    [[nodiscard]] virtual bool
    purge(std::uintptr_t addr, std::size_t len)
    {
        return heap_->purge_keep_accessible(addr, len) == vm::VmStatus::kOk;
    }

  protected:
    const vm::Reservation* heap_;
};

}  // namespace msw::alloc
