/**
 * @file
 * AllocPolicy: the policy/mechanism seam of the allocation stack.
 *
 * The substrate (bins, thread caches) and the quarantine runtime own the
 * *mechanism* — slab bitmaps, cache shards, quarantine epochs. Decisions
 * that are *policy* — which free slot a slab hands out, which cached
 * object a thread cache reuses, what a freed block is filled with, the
 * order quarantined entries are released in — route through the nullable
 * function pointers below.
 *
 * A null hook means "mechanism default": the built-in first-fit slot
 * scan, LIFO cache reuse, plain zero fill, insertion-order release. The
 * default policy is the all-null table, so selecting it costs the fast
 * path exactly one well-predicted null-check branch per hook site and
 * the mechanism code stays inlined — there is no virtual dispatch to a
 * "do the default" function.
 *
 * The hardened policy (S2malloc/FreeGuard-style) fills every hook:
 *  - randomized in-slab slot placement and randomized thread-cache
 *    reuse order (breaks heap-layout grooming);
 *  - an address-keyed canary in the reserved tail byte of every
 *    allocation (the +1 end-pointer slack byte the quarantine runtime
 *    never reports as usable), checked at free() — a one-byte-or-more
 *    heap overflow is caught at the latest when the block is freed;
 *  - a verified quarantine fill: freed blocks are zeroed (preserving
 *    the §4.1 unpinning semantics) with the tail canary re-armed, and
 *    the sweep re-validates the whole fill before releasing an entry,
 *    so any use-after-free *write* into quarantined memory is detected;
 *  - Fisher-Yates shuffling of the locked-in quarantine, so release
 *    (and therefore reuse) order is unpredictable.
 *
 * Policies are immutable process-lifetime singletons; configurations
 * carry `const AllocPolicy*` and a null pointer means "resolve from the
 * MSW_POLICY environment variable" (default | hardened).
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace msw::alloc {

struct AllocPolicy {
    /** Selector name ("default", "hardened"). */
    const char* name = "default";

    /**
     * Pick a free slot in a slab whose occupancy bitmap is @p slot_bits
     * (set bit = allocated; (nslots+63)/64 words, tail bits past nslots
     * are garbage). @p free_slots >= 1 free slots exist. Returns the
     * chosen slot index. Called under the bin lock; must not block or
     * allocate. Null: lowest-index-first scan.
     */
    unsigned (*choose_slot)(const std::uint64_t* slot_bits, unsigned nslots,
                            unsigned free_slots) = nullptr;

    /**
     * Pick which of @p count >= 1 cached objects a thread cache reuses
     * (index in [0, count)). Null: LIFO (top of the stack).
     */
    unsigned (*choose_cached)(unsigned count) = nullptr;

    /**
     * Fill a block entering quarantine (@p ptr is the allocation base;
     * @p usable its full slot/extent size). Only consulted when zeroing
     * is enabled; the fill must keep the §4.1 property that quarantined
     * memory holds no heap pointers. Null: memset to zero.
     */
    void (*fill_free)(void* ptr, std::size_t usable) = nullptr;

    /**
     * Verify a quarantined block still carries the fill_free() pattern.
     * Returns the first mismatching byte, or null when intact. Called by
     * the sweep on entries about to be released.
     */
    const void* (*check_free_fill)(const void* ptr,
                                   std::size_t usable) = nullptr;

    /**
     * Arm the allocation canary. @p usable is the substrate's slot size;
     * the runtime reserves its last byte (usable_size() reports one byte
     * less), which is where the canary lives.
     */
    void (*arm_canary)(void* ptr, std::size_t usable) = nullptr;

    /** Check the allocation canary at free(); false = overwritten. */
    bool (*check_canary)(const void* ptr, std::size_t usable) = nullptr;

    /**
     * Permute an array of @p count elements of @p elem_size bytes
     * (type-erased so the quarantine layer needs no policy types).
     * Used on the locked-in quarantine before release.
     */
    void (*shuffle)(void* base, std::size_t count,
                    std::size_t elem_size) = nullptr;
};

/** The all-null table: bit-identical to the pre-policy behaviour. */
const AllocPolicy& default_policy();

/** S2malloc/FreeGuard-style hardened policy (see file comment). */
const AllocPolicy& hardened_policy();

/** Policy for @p name, or null if unknown. Null name = default. */
const AllocPolicy* policy_by_name(const char* name);

/** Resolve MSW_POLICY (default|hardened); warns once per unknown value
    and falls back to the default policy. */
const AllocPolicy& policy_from_env();

/** Explicit policy if set, else the environment's choice. */
inline const AllocPolicy&
resolve_policy(const AllocPolicy* explicit_policy)
{
    return explicit_policy != nullptr ? *explicit_policy
                                      : policy_from_env();
}

/**
 * Report a canary/fill violation detected by a policy check. Writes an
 * async-signal-safe report to stderr and aborts — heap corruption has
 * been proven, continuing would be exploitable — unless
 * MSW_POLICY_FATAL=0 is set (testing/monitoring), in which case it
 * returns and the caller merely counts the event.
 */
void policy_violation(const char* what, const void* addr);

}  // namespace msw::alloc
