/**
 * @file
 * jemalloc-style size classes for JadeHeap.
 *
 * Small allocations are rounded up to one of a fixed set of classes spaced
 * like jemalloc's: one class per 16 B granule up to 128 B, then groups of
 * four classes per power-of-two size doubling, up to kMaxSmallSize. Larger
 * requests become page-granular "large" extents.
 *
 * The 16 B granule is the paper's 128-bit allocation granule: the shadow
 * map keeps exactly one mark bit per granule, which is what makes one bit
 * sufficient to distinguish any two allocations (paper §3.2).
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace msw::alloc {

/** Smallest allocation granule (bytes); also the minimum alignment. */
inline constexpr std::size_t kGranule = 16;

/** Largest size served from slab bins; beyond this, large extents. */
inline constexpr std::size_t kMaxSmallSize = 14336;

/** Number of small size classes. */
unsigned num_size_classes();

/** Object size of class @p cls (16 <= size <= kMaxSmallSize). */
std::size_t class_size(unsigned cls);

/**
 * Smallest class whose size is >= @p size. @p size must be in
 * [1, kMaxSmallSize].
 */
unsigned size_to_class(std::size_t size);

/** Pages per slab for class @p cls (chosen to bound per-slab waste). */
unsigned slab_pages(unsigned cls);

/** Objects per slab for class @p cls (always <= kMaxSlabSlots). */
unsigned slab_slots(unsigned cls);

/** Upper bound on slots in any slab (sizes the per-slab bitmap). */
inline constexpr unsigned kMaxSlabSlots = 512;

}  // namespace msw::alloc
