/**
 * @file
 * The drop-in LD_PRELOAD shim: MineSweeper as a malloc replacement for
 * unmodified binaries — the deployment model of the paper ("drop-in:
 * without the need for hardware support or recompilation").
 *
 *   $ LD_PRELOAD=libminesweeper_preload.so ./your_program
 *
 * Interposes malloc/free/calloc/realloc/posix_memalign/aligned_alloc/
 * memalign/valloc/malloc_usable_size.
 *
 * Bootstrapping: allocations that arrive while the MineSweeper instance
 * is still being constructed (including allocations made *by* the
 * constructor, which re-enter this shim) are served from a static bump
 * arena and never freed — the standard interposer technique.
 *
 * Roots: the main thread registers itself at initialisation; the
 * process's writable memory regions (globals, other thread stacks) are
 * discovered by rescanning /proc/self/maps at the start of every sweep
 * via the extra-roots provider.
 */
#include <cerrno>
#include <pthread.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "alloc/policy.h"
#include "core/minesweeper.h"
#include "metrics/telemetry.h"
#include "util/bits.h"

namespace {

using msw::core::MineSweeper;
using msw::core::Options;

// ------------------------------------------------------------ bootstrap

/** Static arena for allocations made before/while MineSweeper boots. */
alignas(16) char g_boot_arena[16 << 20];
std::atomic<std::size_t> g_boot_cursor{0};

bool
is_boot_pointer(const void* p)
{
    const auto a = msw::to_addr(p);
    return a >= msw::to_addr(g_boot_arena) &&
           a < msw::to_addr(g_boot_arena) + sizeof(g_boot_arena);
}

void*
boot_alloc(std::size_t size, std::size_t align = 16)
{
    // msw-relaxed(shim-boot): bump cursor over a zero-initialised
    // static arena; the CAS below is the only contended step.
    std::size_t cur = g_boot_cursor.load(std::memory_order_relaxed);
    for (;;) {
        const std::size_t start = msw::align_up(cur, align);
        const std::size_t end = start + size;
        if (end > sizeof(g_boot_arena)) {
            static const char msg[] = "minesweeper shim: boot arena "
                                      "exhausted\n";
            ssize_t ignored = write(2, msg, sizeof(msg) - 1);
            (void)ignored;
            abort();
        }
        // msw-cas(shim-boot): claims [start, end) of a static arena
        // that is never handed between threads; size_t payload, no
        // ABA exposure, RMW atomicity suffices.
        if (g_boot_cursor.compare_exchange_weak(
                cur, end, std::memory_order_relaxed)) {
            return g_boot_arena + start;
        }
    }
}

// --------------------------------------------------------------- engine

/** 0 = not started, 1 = constructing, 2 = ready, 3 = torn down. */
std::atomic<int> g_state{0};
alignas(MineSweeper) char g_engine_storage[sizeof(MineSweeper)];
MineSweeper* g_engine = nullptr;
thread_local bool tls_in_init = false;

/** Rescan /proc/self/maps for writable regions to use as sweep roots. */
std::vector<msw::sweep::Range>
scan_maps_roots()
{
    std::vector<msw::sweep::Range> roots;
    std::FILE* f = std::fopen("/proc/self/maps", "r");
    if (f == nullptr)
        return roots;
    char line[512];
    const std::uintptr_t heap_base = g_engine->substrate().reservation().base();
    const std::uintptr_t heap_end = g_engine->substrate().reservation().end();
    while (std::fgets(line, sizeof(line), f) != nullptr) {
        std::uintptr_t lo = 0;
        std::uintptr_t hi = 0;
        char perms[8] = {};
        if (std::sscanf(line, "%lx-%lx %7s", &lo, &hi, perms) != 3)
            continue;
        if (perms[0] != 'r' || perms[1] != 'w')
            continue;  // only writable memory can hold mutable pointers
        if (lo >= heap_base && lo < heap_end)
            continue;  // the heap itself is scanned via the access map
        if (std::strstr(line, "[stack") != nullptr)
            continue;  // stacks are handled by thread registration
        if (hi - lo > (std::size_t{256} << 20))
            continue;  // skip giant reservations (shadow maps etc.)
        roots.push_back(msw::sweep::Range{lo, hi - lo});
    }
    std::fclose(f);
    return roots;
}

/**
 * Telemetry counter provider: the runtime counters exported through
 * MSW_STATS_DUMP and the SIGUSR2 dump. Async-signal-safe — sweep_stats()
 * is relaxed atomic reads into a stack struct, no allocation.
 */
std::size_t
shim_counters(msw::metrics::TelemetryCounter* out, std::size_t cap)
{
    if (g_state.load(std::memory_order_acquire) < 2 ||
        g_engine == nullptr) {
        return 0;
    }
    const msw::core::SweepStats s = g_engine->sweep_stats();
    std::size_t n = 0;
    const auto put = [&](const char* name, std::uint64_t v) {
        if (n < cap)
            out[n++] = msw::metrics::TelemetryCounter{name, v};
    };
    put("sweeps", s.sweeps);
    put("entries_released", s.entries_released);
    put("bytes_released", s.bytes_released);
    put("failed_frees", s.failed_frees);
    put("double_frees", s.double_frees);
    put("bytes_scanned", s.bytes_scanned);
    put("sweep_cpu_ns", s.sweep_cpu_ns);
    put("stw_ns", s.stw_ns);
    put("pause_ns", s.pause_ns);
    put("phase_dirty_scan_ns", s.phase_dirty_scan_ns);
    put("phase_mark_ns", s.phase_mark_ns);
    put("phase_drain_ns", s.phase_drain_ns);
    put("phase_release_ns", s.phase_release_ns);
    put("emergency_sweeps", s.emergency_sweeps);
    put("watchdog_fallbacks", s.watchdog_fallbacks);
    put("oom_returns", s.oom_returns);
    return n;
}

MineSweeper*
engine()
{
    int state = g_state.load(std::memory_order_acquire);
    // State 3 (torn down) still serves allocations: the engine object
    // is deliberately never destructed, only quiesced, so stragglers
    // running after our teardown keep working.
    if (state >= 2)
        return g_engine;
    if (tls_in_init)
        return nullptr;  // re-entrant call during construction

    int expected = 0;
    if (g_state.compare_exchange_strong(expected, 1,
                                        std::memory_order_acq_rel)) {
        tls_in_init = true;
        Options options;
        if (const char* env = std::getenv("MSW_MODE")) {
            if (std::strcmp(env, "mostly") == 0)
                options.mode = msw::core::Mode::kMostlyConcurrent;
        }
        if (const char* env = std::getenv("MSW_POLICY")) {
            // Null on an unknown name: the runtime then re-resolves from
            // the environment and warns once.
            options.jade.policy = msw::alloc::policy_by_name(env);
        }
        g_engine = new (g_engine_storage) MineSweeper(options);
        g_engine->set_extra_roots_provider(&scan_maps_roots);
        g_engine->register_mutator_thread();
        // Observability surface (MSW_TELEMETRY / MSW_STATS_DUMP): only
        // armed when requested, so programs that use SIGUSR2 themselves
        // keep their handler by default.
        if (msw::metrics::telemetry_init_from_env()) {
            // msw-relaxed(config-flag): publishes a pointer to code,
            // not to runtime-built data; readers load it relaxed.
            msw::metrics::telemetry().counter_fn.store(
                &shim_counters, std::memory_order_relaxed);
            msw::metrics::telemetry_install_sigusr2();
        }
        tls_in_init = false;
        g_state.store(2, std::memory_order_release);
        return g_engine;
    }
    // Another thread is constructing: spin until ready.
    while (g_state.load(std::memory_order_acquire) < 2)
        msw::cpu_relax();
    return g_engine;
}

/**
 * Late static-destruction teardown. Runs after default-priority
 * destructors (destructors with a smaller priority number run later),
 * so normal destructor-time frees still take the full quarantine path.
 * Afterwards the engine is quiesced — the sweeper joined, sweeping
 * disabled — but intentionally never destructed: allocations arriving
 * later (other shared libraries' destructors, libc's own exit path)
 * are still served from the live substrate, and late frees degrade to
 * a guarded no-op in free() below instead of touching torn-down sweep
 * machinery. Idempotent via the g_state CAS.
 */
__attribute__((destructor(101))) void
shim_teardown()
{
    int expected = 2;
    if (!g_state.compare_exchange_strong(expected, 3,
                                         std::memory_order_acq_rel)) {
        return;
    }
    g_engine->quiesce();
    // Final stats snapshot, after the sweeper has drained (stdio is
    // fine here: teardown runs on the exit path, not in a handler).
    if (const char* path = msw::metrics::telemetry_stats_dump_path())
        msw::metrics::telemetry_write_json(path);
}

}  // namespace

extern "C" {

void*
malloc(std::size_t size)
{
    MineSweeper* ms = engine();
    if (ms == nullptr)
        return boot_alloc(size);
    // POSIX: set ENOMEM on failure; a successful malloc must not clobber
    // the caller's errno even though it issues syscalls internally.
    const int saved_errno = errno;
    void* p = ms->alloc(size);
    if (p == nullptr) {
        errno = ENOMEM;
        return nullptr;
    }
    errno = saved_errno;
    return p;
}

void
free(void* ptr)
{
    if (ptr == nullptr || is_boot_pointer(ptr))
        return;
    if (g_state.load(std::memory_order_acquire) == 3) {
        // After teardown: the sweeper that would eventually release
        // this block is gone and the process is exiting. Dropping the
        // free (the block stays quarantine-equivalent: never recycled)
        // is strictly safer than touching quiesced sweep machinery.
        return;
    }
    MineSweeper* ms = engine();
    if (ms == nullptr)
        return;  // cannot free during bootstrap; leak (rare, tiny)
    const int saved_errno = errno;  // free never modifies errno
    ms->free(ptr);
    errno = saved_errno;
}

void*
calloc(std::size_t n, std::size_t size)
{
    std::size_t bytes = 0;
    if (n != 0 && __builtin_mul_overflow(n, size, &bytes)) {
        errno = ENOMEM;
        return nullptr;
    }
    MineSweeper* ms = engine();
    const int saved_errno = errno;
    void* p = ms == nullptr ? boot_alloc(bytes ? bytes : 1)
                            : ms->alloc(bytes ? bytes : 1);
    if (p == nullptr) {
        errno = ENOMEM;
        return nullptr;
    }
    // JadeHeap memory may be recycled; calloc must zero.
    std::memset(p, 0, bytes);
    errno = saved_errno;
    return p;
}

void*
realloc(void* ptr, std::size_t size)
{
    MineSweeper* ms = engine();
    const int saved_errno = errno;
    if (ptr != nullptr && is_boot_pointer(ptr)) {
        void* fresh = ms == nullptr ? boot_alloc(size) : ms->alloc(size);
        if (fresh == nullptr) {
            errno = ENOMEM;
            return nullptr;  // original boot object left intact
        }
        std::memcpy(fresh, ptr, size);  // boot objects are small
        errno = saved_errno;
        return fresh;
    }
    if (ms == nullptr)
        return boot_alloc(size);
    void* p = ms->realloc(ptr, size);  // keeps the original on failure
    if (p == nullptr && size != 0) {
        errno = ENOMEM;
        return nullptr;
    }
    errno = saved_errno;
    return p;
}

int
posix_memalign(void** out, std::size_t alignment, std::size_t size)
{
    if (alignment < sizeof(void*) || !msw::is_pow2(alignment))
        return EINVAL;
    MineSweeper* ms = engine();
    // posix_memalign reports failure via its return value and must leave
    // errno untouched even though the engine issues syscalls internally.
    const int saved_errno = errno;
    *out = ms == nullptr ? boot_alloc(size, alignment)
                         : ms->alloc_aligned(alignment, size);
    errno = saved_errno;
    return *out != nullptr ? 0 : ENOMEM;
}

void*
aligned_alloc(std::size_t alignment, std::size_t size)
{
    MineSweeper* ms = engine();
    if (ms == nullptr)
        return boot_alloc(size, alignment);
    const int saved_errno = errno;
    void* p = ms->alloc_aligned(alignment, size);
    if (p == nullptr) {
        errno = ENOMEM;
        return nullptr;
    }
    errno = saved_errno;
    return p;
}

void*
memalign(std::size_t alignment, std::size_t size)
{
    return aligned_alloc(alignment, size);
}

void*
valloc(std::size_t size)
{
    return aligned_alloc(msw::vm::kPageSize, size);
}

std::size_t
malloc_usable_size(void* ptr)
{
    if (ptr == nullptr)
        return 0;
    if (is_boot_pointer(ptr))
        return 0;  // unknown; boot objects are never queried in practice
    MineSweeper* ms = engine();
    // Pure query, but engine() may boot the runtime (mmap etc.) on the
    // first call; never let that leak into the caller's errno.
    const int saved_errno = errno;
    const std::size_t size = ms == nullptr ? 0 : ms->usable_size(ptr);
    errno = saved_errno;
    return size;
}

}  // extern "C"
