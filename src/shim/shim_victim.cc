/**
 * @file
 * Exerciser for the LD_PRELOAD shim: an ordinary dynamically-linked C++
 * program that uses malloc/free, new/delete, STL containers, realloc and
 * posix_memalign — and contains a deliberate use-after-free pattern whose
 * exploitation the shim must prevent.
 *
 * Run directly it uses glibc malloc; run under the shim all allocation is
 * MineSweeper's:
 *
 *   $ LD_PRELOAD=.../libminesweeper_preload.so ./shim_victim
 */
#include <malloc.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "util/bits.h"

namespace {

/** The "program bug": a global dangling pointer. */
void* g_dangling;

bool
spray_aliases_victim()
{
    char* victim = static_cast<char*>(std::malloc(200));
    std::snprintf(victim, 200, "session token: 1234");
    g_dangling = victim;
    std::free(victim);  // erroneous free; pointer survives in g_dangling

    bool aliased = false;
    std::vector<void*> sprays;
    for (int i = 0; i < 4000 && !aliased; ++i) {
        void* p = std::malloc(200);
        std::memset(p, 'X', 200);
        sprays.push_back(p);
        aliased = p == victim;
    }
    for (void* p : sprays)
        std::free(p);
    g_dangling = nullptr;
    return aliased;
}

}  // namespace

int
main()
{
    // Plain malloc/free churn with integrity checks.
    std::vector<std::pair<unsigned char*, unsigned char>> live;
    for (int i = 0; i < 50000; ++i) {
        if (live.empty() || (i % 5) != 0) {
            const std::size_t size = 1 + (i * 2654435761u) % 2000;
            auto* p = static_cast<unsigned char*>(std::malloc(size));
            const auto canary = static_cast<unsigned char>(i);
            std::memset(p, canary, size);
            live.emplace_back(p, canary);
        } else {
            auto [p, canary] = live.back();
            live.pop_back();
            if (*p != canary) {
                std::printf("VICTIM FAIL: canary corrupted\n");
                return 1;
            }
            std::free(p);
        }
    }
    for (auto [p, canary] : live)
        std::free(p);

    // C++ operators and containers.
    auto* numbers = new int[1000];
    for (int i = 0; i < 1000; ++i)
        numbers[i] = i;
    std::map<std::string, int> table;
    for (int i = 0; i < 2000; ++i)
        table["key-" + std::to_string(i)] = numbers[i % 1000];
    if (table.at("key-1999") != 999) {
        std::printf("VICTIM FAIL: container state wrong\n");
        return 1;
    }
    delete[] numbers;

    // realloc ladder.
    char* buf = static_cast<char*>(std::malloc(16));
    std::strcpy(buf, "grow me");
    for (std::size_t size = 32; size <= 1 << 20; size *= 4)
        buf = static_cast<char*>(std::realloc(buf, size));
    if (std::strcmp(buf, "grow me") != 0) {
        std::printf("VICTIM FAIL: realloc lost data\n");
        return 1;
    }
    std::free(buf);

    // Aligned allocation.
    void* aligned = nullptr;
    if (posix_memalign(&aligned, 4096, 10000) != 0 ||
        (msw::to_addr(aligned) & 4095) != 0) {
        std::printf("VICTIM FAIL: posix_memalign\n");
        return 1;
    }
    std::free(aligned);

    // usable size sanity.
    void* probe = std::malloc(100);
    if (malloc_usable_size(probe) < 100) {
        std::printf("VICTIM FAIL: malloc_usable_size\n");
        return 1;
    }
    std::free(probe);

    // The use-after-free exploit attempt.
    const bool aliased = spray_aliases_victim();
    std::printf("uaf spray aliased the freed object: %s\n",
                aliased ? "YES (unprotected allocator)"
                        : "NO (reuse was prevented)");

    // Under the shim, reuse while the dangling pointer existed must not
    // have happened. MSW_SHIM_EXPECT=1 makes that a hard failure.
    const char* expect = std::getenv("MSW_SHIM_EXPECT");
    if (expect != nullptr && std::strcmp(expect, "protected") == 0 &&
        aliased) {
        std::printf("VICTIM FAIL: use-after-reallocate occurred under "
                    "the shim\n");
        return 1;
    }
    std::printf("VICTIM OK\n");
    return 0;
}
