/**
 * @file
 * Recordable, replayable allocation traces.
 *
 * A Trace is a flat list of allocator operations with stable object ids —
 * the exchange format between workload generation and execution. Uses:
 *  - record a synthetic profile once and replay the *identical* op
 *    sequence against every system (stronger determinism than sharing a
 *    seed: even timing-dependent generators replay exactly);
 *  - persist regression workloads to disk (text format, versioned);
 *  - write targeted micro-traces in tests (e.g. exact quarantine-cycle
 *    shapes) without hand-driving the allocator.
 *
 * Ops reference objects by dense ids; WRITE_PTR stores real pointers
 * between live objects during replay, so sweeps and marking passes see a
 * genuine reference graph, exactly as the profile executor produces.
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "workload/profile.h"
#include "workload/system.h"

namespace msw::workload {

enum class TraceOpKind : std::uint8_t {
    kAlloc,     ///< id := alloc(size)
    kFree,      ///< free(id)
    kWritePtr,  ///< objects[id][slot] = objects[target id] (or null)
    kTouch,     ///< read/write `size` bytes of object `id`
};

struct TraceOp {
    TraceOpKind kind = TraceOpKind::kAlloc;
    std::uint32_t id = 0;
    std::uint32_t target = 0;  ///< kWritePtr: source object (or kNullId)
    std::uint32_t slot = 0;    ///< kWritePtr: pointer field index
    std::uint64_t size = 0;    ///< kAlloc: bytes; kTouch: bytes to touch

    static constexpr std::uint32_t kNullId = 0xffffffffu;
};

class Trace
{
  public:
    /** Append one op. Ids must be dense and allocated before use. */
    void
    push(const TraceOp& op)
    {
        ops_.push_back(op);
        if (op.kind == TraceOpKind::kAlloc && op.id >= num_ids_)
            num_ids_ = op.id + 1;
    }

    const std::vector<TraceOp>& ops() const { return ops_; }
    std::uint32_t num_ids() const { return num_ids_; }
    bool empty() const { return ops_.empty(); }

    /**
     * Serialise to a line-oriented text format:
     *   msw-trace v1
     *   a <id> <size>
     *   f <id>
     *   p <id> <slot> <target|-
     *   t <id> <bytes>
     */
    void save(std::ostream& out) const;

    /** Parse the text format; fatal() on malformed input. */
    static Trace load(std::istream& in);

    /**
     * Record the deterministic op sequence a Profile would execute
     * (single-threaded profiles only).
     */
    static Trace record(const Profile& profile);

  private:
    std::vector<TraceOp> ops_;
    std::uint32_t num_ids_ = 0;
};

/**
 * Replay a trace against a system. Object table is registered as a root
 * range for the duration. Returns a checksum over the touched bytes; two
 * systems replaying the same trace return the same checksum.
 */
WorkloadResult replay_trace(System& system, const Trace& trace);

}  // namespace msw::workload
