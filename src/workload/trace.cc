#include "workload/trace.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/check.h"
#include "util/rng.h"

namespace msw::workload {

void
Trace::save(std::ostream& out) const
{
    out << "msw-trace v1\n";
    for (const TraceOp& op : ops_) {
        switch (op.kind) {
          case TraceOpKind::kAlloc:
            out << "a " << op.id << ' ' << op.size << '\n';
            break;
          case TraceOpKind::kFree:
            out << "f " << op.id << '\n';
            break;
          case TraceOpKind::kWritePtr:
            out << "p " << op.id << ' ' << op.slot << ' ';
            if (op.target == TraceOp::kNullId)
                out << "-\n";
            else
                out << op.target << '\n';
            break;
          case TraceOpKind::kTouch:
            out << "t " << op.id << ' ' << op.size << '\n';
            break;
        }
    }
}

Trace
Trace::load(std::istream& in)
{
    std::string header;
    std::getline(in, header);
    if (header != "msw-trace v1")
        fatal("trace: bad header '%s'", header.c_str());

    Trace trace;
    std::string line;
    std::size_t line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ss(line);
        char kind = 0;
        ss >> kind;
        TraceOp op;
        switch (kind) {
          case 'a':
            op.kind = TraceOpKind::kAlloc;
            ss >> op.id >> op.size;
            break;
          case 'f':
            op.kind = TraceOpKind::kFree;
            ss >> op.id;
            break;
          case 'p': {
            op.kind = TraceOpKind::kWritePtr;
            std::string target;
            ss >> op.id >> op.slot >> target;
            op.target = target == "-"
                            ? TraceOp::kNullId
                            : static_cast<std::uint32_t>(
                                  std::stoul(target));
            break;
          }
          case 't':
            op.kind = TraceOpKind::kTouch;
            ss >> op.id >> op.size;
            break;
          default:
            fatal("trace: bad op '%c' at line %zu", kind, line_no);
        }
        if (ss.fail())
            fatal("trace: malformed line %zu", line_no);
        trace.push(op);
    }
    return trace;
}

Trace
Trace::record(const Profile& profile)
{
    MSW_CHECK(profile.threads == 1);
    Trace trace;
    Rng rng(profile.seed * 7919 + 13);

    struct LiveObj {
        std::uint32_t id;
        std::uint64_t size;
    };
    std::vector<LiveObj> live;
    std::vector<std::vector<std::uint32_t>> ring(8192);
    std::vector<std::uint64_t> sizes;  // by id
    std::uint32_t next_id = 0;

    const auto draw_size = [&]() -> std::uint64_t {
        if (profile.large_prob > 0 &&
            rng.next_bool(profile.large_prob)) {
            return rng.next_range(profile.large_min, profile.large_max);
        }
        const double s =
            rng.next_lognormal(profile.size_mu, profile.size_sigma);
        auto size = static_cast<std::uint64_t>(s);
        size = std::max<std::uint64_t>(size, profile.size_min);
        size = std::min<std::uint64_t>(size, profile.size_max);
        return size;
    };

    const std::uint64_t burst_start =
        profile.ticks - static_cast<std::uint64_t>(
                            static_cast<double>(profile.ticks) *
                            profile.end_burst_frac);

    for (std::uint64_t t = 0; t < profile.ticks; ++t) {
        // Deaths due this tick.
        for (const std::uint32_t id : ring[t % ring.size()]) {
            trace.push(TraceOp{TraceOpKind::kFree, id, 0, 0, 0});
            live.erase(std::find_if(live.begin(), live.end(),
                                    [&](const LiveObj& o) {
                                        return o.id == id;
                                    }));
        }
        ring[t % ring.size()].clear();

        unsigned allocs = profile.allocs_per_tick;
        if (t >= burst_start)
            allocs *= 3;
        for (unsigned i = 0; i < allocs; ++i) {
            const std::uint64_t size = draw_size();
            const std::uint32_t id = next_id++;
            trace.push(TraceOp{TraceOpKind::kAlloc, id, 0, 0, size});
            sizes.push_back(size);

            // Pointer fields to random live objects.
            const std::uint64_t ptr_capacity =
                size / 8 > 1 ? size / 8 - 1 : 0;
            for (unsigned k = 0;
                 k < profile.ptr_slots && k < ptr_capacity; ++k) {
                if (!live.empty() && rng.next_bool(profile.ptr_prob)) {
                    const std::uint32_t target =
                        live[rng.next_below(live.size())].id;
                    trace.push(TraceOp{TraceOpKind::kWritePtr, id,
                                       target, k, 0});
                }
            }
            live.push_back({id, size});

            if (!rng.next_bool(profile.long_lived_frac)) {
                auto lifetime =
                    static_cast<std::uint64_t>(rng.next_exponential(
                        profile.lifetime_mean_ticks)) +
                    1;
                lifetime =
                    std::min<std::uint64_t>(lifetime, ring.size() - 1);
                ring[(t + lifetime) % ring.size()].push_back(id);
            }
        }

        // Touch work over a random live object.
        if (!live.empty() && profile.touch_bytes_per_tick > 0) {
            const LiveObj& obj = live[rng.next_below(live.size())];
            trace.push(TraceOp{TraceOpKind::kTouch, obj.id, 0, 0,
                               std::min<std::uint64_t>(
                                   obj.size,
                                   profile.touch_bytes_per_tick)});
        }
    }
    // Free all survivors.
    for (const LiveObj& obj : live)
        trace.push(TraceOp{TraceOpKind::kFree, obj.id, 0, 0, 0});
    return trace;
}

WorkloadResult
replay_trace(System& system, const Trace& trace)
{
    WorkloadResult result;
    struct Slot {
        void* ptr = nullptr;
        std::uint64_t size = 0;
    };
    std::vector<Slot> objects(trace.num_ids());
    system.register_thread();
    if (!objects.empty())
        system.add_root(objects.data(), objects.size() * sizeof(Slot));

    for (const TraceOp& op : trace.ops()) {
        switch (op.kind) {
          case TraceOpKind::kAlloc: {
            MSW_CHECK(op.id < objects.size());
            MSW_CHECK(objects[op.id].ptr == nullptr);
            void* p = system.allocator->alloc(op.size);
            objects[op.id] = Slot{p, op.size};
            ++result.allocs;
            result.bytes_allocated += op.size;
            if (op.size >= 8) {
                *static_cast<std::uint64_t*>(p) =
                    (std::uint64_t{op.id} * 2654435761u) ^ op.size;
            }
            break;
          }
          case TraceOpKind::kFree:
            MSW_CHECK(objects[op.id].ptr != nullptr);
            system.allocator->free(objects[op.id].ptr);
            objects[op.id] = Slot{};
            ++result.frees;
            break;
          case TraceOpKind::kWritePtr: {
            Slot& obj = objects[op.id];
            MSW_CHECK(obj.ptr != nullptr);
            void* value = op.target == TraceOp::kNullId
                              ? nullptr
                              : objects[op.target].ptr;
            const std::size_t off = (op.slot + 1) * sizeof(void*);
            MSW_CHECK(off + sizeof(void*) <= obj.size);
            std::memcpy(static_cast<char*>(obj.ptr) + off, &value,
                        sizeof(void*));
            break;
          }
          case TraceOpKind::kTouch: {
            Slot& obj = objects[op.id];
            MSW_CHECK(obj.ptr != nullptr);
            auto* bytes = static_cast<unsigned char*>(obj.ptr);
            const std::uint64_t limit =
                std::min<std::uint64_t>(op.size, obj.size);
            // Skip canary + pointer fields; deterministic write+read.
            for (std::uint64_t b = 64; b < limit; ++b)
                bytes[b] = static_cast<unsigned char>(b ^ op.id);
            for (std::uint64_t b = 64; b < limit; b += 16)
                result.checksum += bytes[b];
            break;
          }
        }
    }
    // Free any survivors (robust to hand-written traces).
    for (Slot& slot : objects) {
        if (slot.ptr != nullptr) {
            system.allocator->free(slot.ptr);
            ++result.frees;
        }
    }
    system.remove_root(objects.data());
    system.flush();
    system.unregister_thread();
    return result;
}

}  // namespace msw::workload
