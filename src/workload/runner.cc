#include "workload/runner.h"

#include "workload/executor.h"

namespace msw::workload {

metrics::RunRecord
measure(SystemKind kind,
        const std::function<WorkloadResult(System&)>& body,
        const core::Options& msw_options, const MeasureOptions& mopts)
{
    return metrics::run_in_subprocess(
        [&]() -> metrics::RunRecord {
            metrics::RunRecord rec;
            System sys = make_system(kind, msw_options);
            metrics::RssSampler sampler(mopts.rss_interval_ms);
            const double wall0 = metrics::wall_seconds();
            const double cpu0 = metrics::process_cpu_seconds();

            const WorkloadResult result = body(sys);

            sys.flush();
            rec.wall_s = metrics::wall_seconds() - wall0;
            rec.cpu_s = metrics::process_cpu_seconds() - cpu0;
            sampler.stop();
            rec.avg_rss = sampler.average();
            rec.peak_rss = sampler.peak();
            rec.rss_series = sampler.series();
            rec.sweeps = sys.sweeps();
            rec.allocs = result.allocs;
            rec.frees = result.frees;
            rec.checksum = result.checksum;
            rec.failed_allocs = result.failed_allocs;
            const System::Resilience res = sys.resilience();
            rec.emergency_sweeps = res.emergency_sweeps;
            rec.commit_retries = res.commit_retries;
            rec.watchdog_fallbacks = res.watchdog_fallbacks;
            rec.oom_returns = res.oom_returns;
            rec.ok = true;
            return rec;
        },
        mopts.timeout_s);
}

metrics::RunRecord
measure_profile(SystemKind kind, const Profile& profile,
                const core::Options& msw_options,
                const MeasureOptions& mopts)
{
    return measure(
        kind,
        [&](System& sys) { return run_profile(sys, profile); },
        msw_options, mopts);
}

}  // namespace msw::workload
