#include "workload/runner.h"

#include "metrics/telemetry.h"
#include "workload/executor.h"

namespace msw::workload {

metrics::RunRecord
measure(SystemKind kind,
        const std::function<WorkloadResult(System&)>& body,
        const core::Options& msw_options, const MeasureOptions& mopts)
{
    return metrics::run_in_subprocess(
        [&]() -> metrics::RunRecord {
            metrics::RunRecord rec;
            // The child is this measurement's whole process, so the
            // master telemetry layer (pause histogram, trace ring) can
            // always be on: its cost is confined to sweep slow paths.
            // msw-relaxed(config-flag): advisory toggle armed before
            // the system under test is constructed.
            metrics::telemetry().enabled.store(
                true, std::memory_order_relaxed);
            System sys = make_system(kind, msw_options);
            metrics::RssSampler sampler(mopts.rss_interval_ms);
            const double wall0 = metrics::wall_seconds();
            const double cpu0 = metrics::process_cpu_seconds();

            const WorkloadResult result = body(sys);

            sys.flush();
            rec.wall_s = metrics::wall_seconds() - wall0;
            rec.cpu_s = metrics::process_cpu_seconds() - cpu0;
            sampler.stop();
            rec.avg_rss = sampler.average();
            rec.peak_rss = sampler.peak();
            rec.rss_series = sampler.series();
            rec.sweeps = sys.sweeps();
            rec.allocs = result.allocs;
            rec.frees = result.frees;
            rec.checksum = result.checksum;
            rec.failed_allocs = result.failed_allocs;
            const System::Resilience res = sys.resilience();
            rec.emergency_sweeps = res.emergency_sweeps;
            rec.commit_retries = res.commit_retries;
            rec.watchdog_fallbacks = res.watchdog_fallbacks;
            rec.oom_returns = res.oom_returns;
            rec.op_latency = result.op_latency;
            rec.sweep_pause = metrics::telemetry().pause_ns.summarize();
            const System::PhaseTotals ph = sys.phases();
            rec.pause_total_ns = ph.pause_ns;
            rec.stw_total_ns = ph.stw_ns;
            rec.phase_dirty_scan_ns = ph.dirty_scan_ns;
            rec.phase_mark_ns = ph.mark_ns;
            rec.phase_drain_ns = ph.drain_ns;
            rec.phase_release_ns = ph.release_ns;
            rec.ok = true;
            return rec;
        },
        mopts.timeout_s);
}

metrics::RunRecord
measure_profile(SystemKind kind, const Profile& profile,
                const core::Options& msw_options,
                const MeasureOptions& mopts)
{
    return measure(
        kind,
        [&](System& sys) { return run_profile(sys, profile); },
        msw_options, mopts);
}

}  // namespace msw::workload
