/**
 * @file
 * Reimplementations of the mimalloc-bench stress kernels (paper Fig 19).
 *
 * These are the allocation *patterns* of the upstream suite — extremely
 * high allocation/deallocation rates with little or no other work —
 * rebuilt against the Allocator interface so all four systems run them.
 * Kernel list and behaviours follow github.com/daanx/mimalloc-bench:
 * single- vs multi-threaded churn, batch (sh6/sh8bench) patterns, server
 * workloads (larson), cross-thread frees (mstress, xmalloc-test), and
 * application proxies (barnes, cfrac, espresso).
 */
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "workload/profile.h"
#include "workload/system.h"

namespace msw::workload {

struct StressKernel {
    std::string name;
    /** Run the kernel; @p scale stretches iteration counts. */
    std::function<WorkloadResult(System&, double scale)> run;
};

/** The 16 kernels of Fig 19, in the paper's order. */
std::vector<StressKernel> mimalloc_kernels();

}  // namespace msw::workload
