/**
 * @file
 * Long-running server workload: the tail-latency half of the evaluation.
 *
 * The executor's profile workloads reproduce SPEC-style batch churn and
 * measure throughput; what they cannot show is *when* the runtime's
 * costs land. A quarantine sweeper concentrates work into pauses —
 * backpressure on the allocation path, stop-the-world windows — which
 * batch wall-clock numbers average away but a request/response server
 * feels as tail latency. This workload models that server: a fixed pool
 * of worker threads serves a stream of operations over millions of
 * lightweight sessions with heavy-tailed (Pareto) lifetimes and buffer
 * sizes, timing every operation into a per-thread latency histogram
 * (metrics/histogram.h). The per-operation digest is the workload's
 * product: p50 tracks the allocator fast path, p99/p999 expose sweep
 * pauses and STW windows.
 *
 * Each operation is one of:
 *  - close: the chosen session expired — free its buffers and header;
 *  - open: the chosen slot is empty — allocate a session header plus a
 *    heavy-tailed number/size of buffers, stamp its expiry;
 *  - touch: read-modify-write a stripe of the session's newest buffer
 *    (the "request handler" doing work against live state).
 *
 * Session headers live in the system-under-test heap and hold real
 * pointers to their buffers; the per-thread slot table is registered as
 * a root. Sweeps and transitive marks therefore traverse exactly the
 * object graph a real server would give them.
 */
#pragma once

#include <cstddef>
#include <cstdint>

#include "workload/profile.h"
#include "workload/system.h"

namespace msw::workload {

struct ServerOptions {
    /** Worker threads (independent request streams). */
    unsigned threads = 4;

    /**
     * Operations per thread (op-count mode). Ignored when duration_s is
     * set. Sessions churn continuously, so ops >> slots yields many
     * session generations per run.
     */
    std::uint64_t ops_per_thread = 200000;

    /** If > 0, run for this much wall time instead of a fixed op count. */
    double duration_s = 0;

    /** Concurrent sessions per thread (slot-table size). */
    std::size_t sessions_per_thread = 2048;

    // Session lifetime in operations: Pareto(alpha), clipped. The heavy
    // tail keeps a fraction of sessions alive across many sweeps, which
    // is what makes failed-free pressure realistic.
    double lifetime_alpha = 1.1;
    std::uint64_t lifetime_max = 1 << 16;

    // Buffer sizes: Pareto-tailed from size_min, clipped at size_max.
    double size_alpha = 1.3;
    std::size_t size_min = 48;
    std::size_t size_max = 64 * 1024;

    /** Max buffers per session (actual count uniform in [1, max]). */
    unsigned max_buffers = 3;

    /** Bytes read+written per touch operation. */
    unsigned touch_bytes = 256;

    std::uint64_t seed = 0x5eed;
};

/**
 * Run the server workload against @p sys. The returned result carries
 * the merged per-operation latency digest in op_latency.
 */
WorkloadResult run_server(System& sys, const ServerOptions& opts);

}  // namespace msw::workload
