#include "workload/executor.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "util/bits.h"
#include "util/check.h"
#include "util/rng.h"

namespace msw::workload {

namespace {

/** One tracked allocation in a worker's table. */
struct Slot {
    void* ptr = nullptr;
    std::uint32_t size = 0;
};

/** Death calendar capacity (max trackable lifetime in ticks). */
constexpr std::size_t kRingSize = 8192;

class Worker
{
  public:
    Worker(System& system, const Profile& profile, unsigned index)
        : system_(system),
          profile_(profile),
          rng_(profile.seed * 7919 + index * 104729 + 13),
          ring_(kRingSize)
    {
        // Capacity for the expected live set plus slack; reserved up
        // front so the root registration below stays valid.
        const std::size_t expected_live =
            static_cast<std::size_t>(profile.allocs_per_tick *
                                     profile.lifetime_mean_ticks) +
            static_cast<std::size_t>(
                static_cast<double>(profile.ticks) *
                profile.allocs_per_tick * profile.long_lived_frac) +
            1024;
        slots_.resize(expected_live * 2);
        free_slots_.reserve(slots_.size());
        for (std::size_t i = slots_.size(); i > 0; --i)
            free_slots_.push_back(static_cast<std::uint32_t>(i - 1));
        live_slots_.reserve(slots_.size());
    }

    WorkloadResult
    run()
    {
        system_.register_thread();
        system_.add_root(slots_.data(), slots_.size() * sizeof(Slot));

        const std::uint64_t burst_start =
            profile_.ticks -
            static_cast<std::uint64_t>(
                static_cast<double>(profile_.ticks) *
                profile_.end_burst_frac);

        for (std::uint64_t t = 0; t < profile_.ticks; ++t) {
            process_deaths(t);
            unsigned allocs = profile_.allocs_per_tick;
            if (t >= burst_start)
                allocs *= 3;
            for (unsigned i = 0; i < allocs; ++i)
                allocate_one(t);
            do_work();
        }
        // Program exit: free everything still live.
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            if (slots_[i].ptr != nullptr)
                release(static_cast<std::uint32_t>(i));
        }

        // The slot table's memory is about to be recycled: deregister it
        // before it can be scanned post-mortem.
        system_.remove_root(slots_.data());
        system_.flush();
        system_.unregister_thread();
        return result_;
    }

  private:
    std::size_t
    draw_size()
    {
        if (profile_.large_prob > 0 && rng_.next_bool(profile_.large_prob)) {
            return rng_.next_range(profile_.large_min, profile_.large_max);
        }
        const double s =
            rng_.next_lognormal(profile_.size_mu, profile_.size_sigma);
        auto size = static_cast<std::size_t>(s);
        size = std::max(size, profile_.size_min);
        size = std::min(size, profile_.size_max);
        return size;
    }

    void
    allocate_one(std::uint64_t now)
    {
        if (free_slots_.empty())
            return;  // table full: skip (rare; sized generously)
        const std::uint32_t idx = free_slots_.back();
        free_slots_.pop_back();

        const std::size_t size = draw_size();
        auto* p = static_cast<unsigned char*>(
            system_.allocator->alloc(size));
        if (p == nullptr) {
            // Memory pressure: the system degraded gracefully instead of
            // aborting. Skip this allocation, as a robust program would.
            result_.failed_allocs += 1;
            free_slots_.push_back(idx);
            return;
        }
        result_.allocs += 1;
        result_.bytes_allocated += size;

        // Initialise: canary word + pointer fields referencing other live
        // objects (builds the in-heap reference graph). The canary is a
        // pure function of the trace so checksums agree across systems.
        if (size >= sizeof(std::uint64_t)) {
            *reinterpret_cast<std::uint64_t*>(p) =
                (static_cast<std::uint64_t>(idx) * 2654435761u) ^ size;
        }
        const std::size_t ptr_capacity =
            size / sizeof(void*) > 1 ? size / sizeof(void*) - 1 : 0;
        for (unsigned k = 0; k < profile_.ptr_slots && k < ptr_capacity;
             ++k) {
            if (!live_slots_.empty() && rng_.next_bool(profile_.ptr_prob)) {
                const std::uint32_t target_idx =
                    live_slots_[rng_.next_below(live_slots_.size())];
                void* target = slots_[target_idx].ptr;
                std::memcpy(p + (k + 1) * sizeof(void*), &target,
                            sizeof(void*));
            }
        }

        slots_[idx].ptr = p;
        slots_[idx].size = static_cast<std::uint32_t>(size);
        live_slots_.push_back(idx);

        // Schedule death.
        if (rng_.next_bool(profile_.long_lived_frac))
            return;  // long-lived: freed at end of run
        auto lifetime = static_cast<std::uint64_t>(
            rng_.next_exponential(profile_.lifetime_mean_ticks)) + 1;
        lifetime = std::min<std::uint64_t>(lifetime, kRingSize - 1);
        ring_[(now + lifetime) % kRingSize].push_back(idx);
    }

    void
    process_deaths(std::uint64_t now)
    {
        auto& due = ring_[now % kRingSize];
        for (const std::uint32_t idx : due) {
            if (slots_[idx].ptr != nullptr)
                release(idx);
        }
        due.clear();
    }

    void
    release(std::uint32_t idx)
    {
        // The slot is cleared, but pointers to this object stored inside
        // *other* objects' bodies remain — genuine dangling pointers.
        system_.allocator->free(slots_[idx].ptr);
        result_.frees += 1;
        slots_[idx].ptr = nullptr;
        slots_[idx].size = 0;
        free_slots_.push_back(idx);
        // live_slots_ is lazily compacted in do_work().
    }

    void
    do_work()
    {
        // Memory traffic over live data.
        std::size_t touched = 0;
        while (touched < profile_.touch_bytes_per_tick &&
               !live_slots_.empty()) {
            const std::size_t pick = rng_.next_below(live_slots_.size());
            const std::uint32_t idx = live_slots_[pick];
            if (slots_[idx].ptr == nullptr) {
                // Dead entry: compact.
                live_slots_[pick] = live_slots_.back();
                live_slots_.pop_back();
                continue;
            }
            // Write-then-read traffic over the object body (skipping the
            // canary and pointer fields at the front): the values are a
            // pure function of the trace, so every system computes the
            // same checksum while paying real memory traffic.
            auto* bytes = static_cast<unsigned char*>(slots_[idx].ptr);
            const std::size_t step =
                std::min<std::size_t>(slots_[idx].size, 256);
            const std::size_t data_start =
                (1 + profile_.ptr_slots) * sizeof(void*);
            for (std::size_t b = data_start; b < step; ++b)
                bytes[b] = static_cast<unsigned char>(b ^ idx);
            for (std::size_t b = data_start; b < step; b += 16)
                result_.checksum += bytes[b];
            if (slots_[idx].size >= sizeof(std::uint64_t)) {
                result_.checksum +=
                    *reinterpret_cast<const std::uint64_t*>(bytes);
            }
            touched += step;
        }
        // Pure compute.
        std::uint64_t acc = result_.checksum | 1;
        for (unsigned i = 0; i < profile_.work_per_tick; ++i)
            acc = acc * 6364136223846793005ull + 1442695040888963407ull;
        result_.checksum ^= acc >> 33;
    }

    System& system_;
    const Profile& profile_;
    Rng rng_;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> free_slots_;
    std::vector<std::uint32_t> live_slots_;
    std::vector<std::vector<std::uint32_t>> ring_;
    WorkloadResult result_;
};

}  // namespace

WorkloadResult
run_profile(System& system, const Profile& profile)
{
    MSW_CHECK(profile.threads >= 1);
    if (profile.threads == 1) {
        Worker worker(system, profile, 0);
        return worker.run();
    }

    std::vector<WorkloadResult> results(profile.threads);
    std::vector<std::thread> threads;
    for (unsigned i = 0; i < profile.threads; ++i) {
        threads.emplace_back([&, i] {
            Worker worker(system, profile, i);
            results[i] = worker.run();
        });
    }
    for (auto& t : threads)
        t.join();

    WorkloadResult total;
    for (const WorkloadResult& r : results) {
        total.allocs += r.allocs;
        total.frees += r.frees;
        total.bytes_allocated += r.bytes_allocated;
        total.checksum ^= r.checksum;
        total.failed_allocs += r.failed_allocs;
    }
    return total;
}

}  // namespace msw::workload
