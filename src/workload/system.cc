#include "workload/system.h"

#include "alloc/jade_allocator.h"
#include "baselines/ffmalloc.h"
#include "baselines/markus.h"
#include "core/minesweeper.h"
#include "util/check.h"

namespace msw::workload {

const char*
system_kind_name(SystemKind kind)
{
    switch (kind) {
      case SystemKind::kBaseline:
        return "baseline";
      case SystemKind::kMineSweeper:
        return "minesweeper";
      case SystemKind::kMineSweeperMostly:
        return "minesweeper-mostly";
      case SystemKind::kMarkUs:
        return "markus";
      case SystemKind::kFFMalloc:
        return "ffmalloc";
    }
    return "unknown";
}

System
make_system(SystemKind kind, const core::Options& msw_options)
{
    System sys;
    sys.name = system_kind_name(kind);
    switch (kind) {
      case SystemKind::kBaseline: {
        // The paper's baseline is unmodified jemalloc with its stock
        // 10 s decay purging.
        alloc::JadeAllocator::Options o;
        sys.allocator = std::make_unique<alloc::JadeAllocator>(o);
        break;
      }
      case SystemKind::kMineSweeper:
      case SystemKind::kMineSweeperMostly: {
        core::Options o = msw_options;
        o.mode = kind == SystemKind::kMineSweeperMostly
                     ? core::Mode::kMostlyConcurrent
                     : o.mode;
        auto ms = std::make_unique<core::MineSweeper>(o);
        core::MineSweeper* raw = ms.get();
        sys.add_root = [raw](const void* base, std::size_t len) {
            raw->add_root(base, len);
        };
        sys.remove_root = [raw](const void* base) {
            raw->remove_root(base);
        };
        sys.register_thread = [raw] { raw->register_mutator_thread(); };
        sys.unregister_thread = [raw] {
            raw->unregister_mutator_thread();
        };
        sys.flush = [raw] { raw->flush(); };
        sys.sweeps = [raw] { return raw->sweep_stats().sweeps; };
        sys.resilience = [raw] {
            const core::SweepStats st = raw->sweep_stats();
            System::Resilience r;
            r.emergency_sweeps = st.emergency_sweeps;
            r.commit_retries = st.commit_retries;
            r.watchdog_fallbacks = st.watchdog_fallbacks;
            r.oom_returns = st.oom_returns;
            return r;
        };
        sys.phases = [raw] {
            const core::SweepStats st = raw->sweep_stats();
            System::PhaseTotals p;
            p.dirty_scan_ns = st.phase_dirty_scan_ns;
            p.mark_ns = st.phase_mark_ns;
            p.drain_ns = st.phase_drain_ns;
            p.release_ns = st.phase_release_ns;
            p.stw_ns = st.stw_ns;
            p.pause_ns = st.pause_ns;
            return p;
        };
        sys.allocator = std::move(ms);
        break;
      }
      case SystemKind::kMarkUs: {
        auto mu = std::make_unique<baseline::MarkUs>();
        baseline::MarkUs* raw = mu.get();
        sys.add_root = [raw](const void* base, std::size_t len) {
            raw->add_root(base, len);
        };
        sys.remove_root = [raw](const void* base) {
            raw->remove_root(base);
        };
        sys.register_thread = [raw] { raw->register_mutator_thread(); };
        sys.unregister_thread = [raw] {
            raw->unregister_mutator_thread();
        };
        sys.flush = [raw] { raw->flush(); };
        sys.sweeps = [raw] { return raw->marks_done(); };
        sys.phases = [raw] {
            System::PhaseTotals p;
            p.dirty_scan_ns = raw->stat_ns(core::Stat::kPhaseDirtyScanNs);
            p.mark_ns = raw->stat_ns(core::Stat::kPhaseMarkNs);
            p.drain_ns = raw->stat_ns(core::Stat::kPhaseDrainNs);
            p.release_ns = raw->stat_ns(core::Stat::kPhaseReleaseNs);
            p.stw_ns = raw->stat_ns(core::Stat::kStwNs);
            p.pause_ns = raw->stat_ns(core::Stat::kPauseNs);
            return p;
        };
        sys.allocator = std::move(mu);
        break;
      }
      case SystemKind::kFFMalloc: {
        sys.allocator = std::make_unique<baseline::FFMalloc>();
        break;
      }
    }
    MSW_CHECK(sys.allocator != nullptr);
    return sys;
}

}  // namespace msw::workload
