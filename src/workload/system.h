/**
 * @file
 * System-under-test factory: uniform handles for the four allocation
 * systems the paper evaluates against each other (baseline JadeHeap,
 * MineSweeper, MarkUs, FFMalloc), so the workload executor and every
 * benchmark treat them identically.
 */
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "alloc/allocator.h"
#include "core/options.h"

namespace msw::workload {

/** A constructed system plus the capability hooks the executor needs. */
struct System {
    std::string name;
    std::unique_ptr<alloc::Allocator> allocator;

    /** Register a root range (no-op for systems that do not scan). */
    std::function<void(const void*, std::size_t)> add_root =
        [](const void*, std::size_t) {};

    /**
     * Remove a registered root range. Must be called before the range's
     * memory is released: sweeps scan registered roots, and scanning a
     * recycled region would fault.
     */
    std::function<void(const void*)> remove_root = [](const void*) {};

    /** Register/unregister the calling thread as a mutator. */
    std::function<void()> register_thread = [] {};
    std::function<void()> unregister_thread = [] {};

    /** Quiesce background machinery before final measurements. */
    std::function<void()> flush = [] {};

    /** Sweep/marking-pass count (0 for non-sweeping systems). */
    std::function<std::uint64_t()> sweeps = [] {
        return std::uint64_t{0};
    };

    /** Resilience counters (zero for systems without a degraded mode). */
    struct Resilience {
        std::uint64_t emergency_sweeps = 0;
        std::uint64_t commit_retries = 0;
        std::uint64_t watchdog_fallbacks = 0;
        std::uint64_t oom_returns = 0;
    };
    std::function<Resilience()> resilience = [] { return Resilience{}; };

    /** Sweep pause/phase time totals (telemetry layer; zero for
        non-sweeping systems). */
    struct PhaseTotals {
        std::uint64_t dirty_scan_ns = 0;
        std::uint64_t mark_ns = 0;
        std::uint64_t drain_ns = 0;
        std::uint64_t release_ns = 0;
        std::uint64_t stw_ns = 0;
        std::uint64_t pause_ns = 0;
    };
    std::function<PhaseTotals()> phases = [] { return PhaseTotals{}; };
};

/** Identifiers accepted by make_system(). */
enum class SystemKind {
    kBaseline,     ///< JadeHeap alone (the paper's jemalloc baseline).
    kMineSweeper,  ///< Fully concurrent MineSweeper (paper default).
    kMineSweeperMostly,  ///< Mostly concurrent (stop-the-world) version.
    kMarkUs,
    kFFMalloc,
};

/** Human-readable name for a kind ("baseline", "minesweeper", ...). */
const char* system_kind_name(SystemKind kind);

/**
 * Construct a system. @p msw_options customises MineSweeper variants
 * (ablation/partial configurations); ignored for the others.
 */
System make_system(SystemKind kind,
                   const core::Options& msw_options = core::Options{});

}  // namespace msw::workload
