/**
 * @file
 * Per-benchmark allocation-behaviour profiles for SPEC CPU2006 and
 * SPECspeed2017 (the workloads of paper Figs 7-18).
 *
 * Parameters are calibrated to each benchmark's published allocation
 * character: xalancbmk/omnetpp/perlbench/gcc/dealII/sphinx3 are
 * allocation-intensive (tiny-object churn, pointer-rich structures,
 * xalancbmk's end-of-run churn storm, gcc's large live set); lbm,
 * libquantum, namd, milc, bzip2 etc. allocate a handful of long-lived
 * buffers and spend their time in compute loops. Starred SPEC2017
 * benchmarks run multi-threaded (the paper uses their OpenMP builds).
 *
 * Absolute op counts are scaled for a seconds-per-run harness (and by
 * MSW_BENCH_SCALE); the *relative* intensities across benchmarks are the
 * point, since they determine which benchmarks show overhead.
 */
#pragma once

#include <vector>

#include "workload/profile.h"

namespace msw::workload {

/** The 19 SPEC CPU2006 C/C++ benchmarks of Figs 7/9/10/11/12/14-17. */
std::vector<Profile> spec2006_profiles(double scale = 1.0);

/** The 18 SPECspeed2017 benchmarks of Fig 18 (starred = threaded). */
std::vector<Profile> spec2017_profiles(double scale = 1.0);

/** Look up one profile by name from either suite. */
Profile spec_profile(const std::string& name, double scale = 1.0);

}  // namespace msw::workload
