#include "workload/server.h"

#include <algorithm>
#include <memory>
#include <new>
#include <thread>
#include <vector>

#include "metrics/metrics.h"
#include "metrics/telemetry.h"
#include "util/rng.h"

namespace msw::workload {

namespace {

/**
 * One live session. Lives in the system-under-test heap; the pointers
 * in bufs[] are what sweeps chase. kMaxBufs bounds the inline pointer
 * array — ServerOptions::max_buffers is clamped to it.
 */
struct Session {
    std::uint64_t close_at = 0;  ///< Op index at which the session expires.
    std::uint32_t nbufs = 0;
    std::uint32_t newest = 0;    ///< Index of the most recent buffer.
    static constexpr unsigned kMaxBufs = 4;
    void* bufs[kMaxBufs] = {};
    std::uint32_t buf_sizes[kMaxBufs] = {};
};

class ServerWorker
{
  public:
    ServerWorker(System& system, const ServerOptions& opts, unsigned index)
        : system_(system),
          opts_(opts),
          rng_(opts.seed * 7919 + index * 104729 + 29),
          slots_(opts.sessions_per_thread, nullptr)
    {}

    WorkloadResult
    run(metrics::Histogram* merged)
    {
        system_.register_thread();
        system_.add_root(slots_.data(), slots_.size() * sizeof(Session*));

        const double t_end =
            opts_.duration_s > 0
                ? metrics::wall_seconds() + opts_.duration_s
                : 0;
        std::uint64_t op = 0;
        for (;;) {
            if (opts_.duration_s > 0) {
                // Duration mode: check the clock once per batch so the
                // loop condition itself stays out of the measurement.
                if ((op & 1023) == 0 && metrics::wall_seconds() >= t_end)
                    break;
            } else if (op >= opts_.ops_per_thread) {
                break;
            }
            const std::uint64_t t0 = metrics::telemetry_now_ns();
            serve_one(op);
            hist_.record(metrics::telemetry_now_ns() - t0);
            ++op;
        }

        // Server shutdown: close every live session, then deregister the
        // slot table before its memory can be recycled and scanned.
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            if (slots_[i] != nullptr)
                close_session(i);
        }
        system_.remove_root(slots_.data());
        system_.flush();
        system_.unregister_thread();
        merged->merge_from(hist_);
        return result_;
    }

  private:
    std::size_t
    draw_buf_size()
    {
        const auto tail = static_cast<std::size_t>(rng_.next_pareto(
            opts_.size_alpha, static_cast<double>(opts_.size_max)));
        const std::size_t size = opts_.size_min + tail;
        return std::min(size, opts_.size_max);
    }

    void
    serve_one(std::uint64_t op)
    {
        const std::size_t slot = rng_.next_below(slots_.size());
        Session* s = slots_[slot];
        if (s != nullptr && op >= s->close_at) {
            close_session(slot);
            return;
        }
        if (s == nullptr) {
            open_session(slot, op);
            return;
        }
        touch_session(s);
    }

    void
    open_session(std::size_t slot, std::uint64_t op)
    {
        auto* s = static_cast<Session*>(
            system_.allocator->alloc(sizeof(Session)));
        if (s == nullptr) {
            result_.failed_allocs += 1;
            return;
        }
        result_.allocs += 1;
        result_.bytes_allocated += sizeof(Session);
        new (s) Session();
        s->close_at =
            op + static_cast<std::uint64_t>(rng_.next_pareto(
                     opts_.lifetime_alpha,
                     static_cast<double>(opts_.lifetime_max)));

        const unsigned want = 1 + static_cast<unsigned>(rng_.next_below(
                                      std::min(opts_.max_buffers,
                                               Session::kMaxBufs)));
        for (unsigned b = 0; b < want; ++b) {
            const std::size_t size = draw_buf_size();
            void* buf = system_.allocator->alloc(size);
            if (buf == nullptr) {
                result_.failed_allocs += 1;
                break;  // session opens with fewer buffers
            }
            result_.allocs += 1;
            result_.bytes_allocated += size;
            // Stamp the head so touch has live data to fold.
            *static_cast<std::uint64_t*>(buf) = op ^ size;
            s->bufs[s->nbufs] = buf;
            s->buf_sizes[s->nbufs] = static_cast<std::uint32_t>(size);
            s->newest = s->nbufs;
            s->nbufs += 1;
        }
        slots_[slot] = s;
    }

    void
    close_session(std::size_t slot)
    {
        Session* s = slots_[slot];
        // Clear the root-visible pointer first: nothing keeps the
        // session reachable once its memory is quarantined.
        slots_[slot] = nullptr;
        for (std::uint32_t b = 0; b < s->nbufs; ++b) {
            result_.checksum ^=
                *static_cast<std::uint64_t*>(s->bufs[b]);
            system_.allocator->free(s->bufs[b]);
            result_.frees += 1;
        }
        system_.allocator->free(s);
        result_.frees += 1;
    }

    void
    touch_session(Session* s)
    {
        if (s->nbufs == 0)
            return;
        unsigned char* buf =
            static_cast<unsigned char*>(s->bufs[s->newest]);
        const std::size_t size = s->buf_sizes[s->newest];
        // Read-modify-write a stripe: the request handler doing work
        // against session state, so cached lines and TLB entries behave
        // as in a real server.
        const std::size_t span =
            std::min<std::size_t>(opts_.touch_bytes, size);
        const std::size_t start =
            span < size ? rng_.next_below(size - span + 1) : 0;
        std::uint64_t acc = 0;
        for (std::size_t i = 0; i < span; ++i) {
            acc = acc * 131 + buf[start + i];
            buf[start + i] =
                static_cast<unsigned char>(buf[start + i] + 1);
        }
        result_.checksum ^= acc;
    }

    System& system_;
    const ServerOptions& opts_;
    Rng rng_;
    std::vector<Session*> slots_;
    metrics::Histogram hist_;
    WorkloadResult result_;
};

}  // namespace

WorkloadResult
run_server(System& sys, const ServerOptions& opts)
{
    const unsigned nthreads = std::max(1u, opts.threads);
    // Workers allocate their own state up front; the merged histogram
    // outlives them and produces the final digest.
    metrics::Histogram merged;
    std::vector<WorkloadResult> results(nthreads);
    std::vector<std::unique_ptr<ServerWorker>> workers;
    workers.reserve(nthreads);
    for (unsigned i = 0; i < nthreads; ++i)
        workers.push_back(
            std::make_unique<ServerWorker>(sys, opts, i));

    std::vector<std::thread> threads;
    threads.reserve(nthreads);
    for (unsigned i = 0; i < nthreads; ++i) {
        threads.emplace_back([&, i] {
            results[i] = workers[i]->run(&merged);
        });
    }
    for (auto& t : threads)
        t.join();

    WorkloadResult total;
    for (const WorkloadResult& r : results) {
        total.allocs += r.allocs;
        total.frees += r.frees;
        total.bytes_allocated += r.bytes_allocated;
        total.checksum ^= r.checksum;
        total.failed_allocs += r.failed_allocs;
    }
    total.op_latency = merged.summarize();
    return total;
}

}  // namespace msw::workload
