/**
 * @file
 * Measurement runner: one (system, workload) execution in a forked child
 * with PSRecord-style RSS sampling — the paper's methodology (§5.1, A.5):
 * every configuration runs as its own process, timed end to end, with
 * memory sampled externally on an interval.
 */
#pragma once

#include <functional>

#include "core/options.h"
#include "metrics/metrics.h"
#include "workload/profile.h"
#include "workload/system.h"

namespace msw::workload {

struct MeasureOptions {
    /** Kill a run after this many seconds (0 = unlimited). */
    unsigned timeout_s = 300;
    /** RSS sampling period. */
    unsigned rss_interval_ms = 10;
};

/**
 * Fork; in the child construct the system, run @p body against it, and
 * report wall/CPU time, sampled RSS and counters back to the parent.
 */
metrics::RunRecord measure(
    SystemKind kind, const std::function<WorkloadResult(System&)>& body,
    const core::Options& msw_options = core::Options{},
    const MeasureOptions& mopts = MeasureOptions{});

/** measure() specialisation running a SPEC-style profile. */
metrics::RunRecord measure_profile(
    SystemKind kind, const Profile& profile,
    const core::Options& msw_options = core::Options{},
    const MeasureOptions& mopts = MeasureOptions{});

}  // namespace msw::workload
