/**
 * @file
 * Allocation-behaviour profiles: the workload model standing in for SPEC.
 *
 * The quantities the paper's evaluation depends on are allocation rate,
 * object-size distribution, lifetime distribution, live-heap size,
 * pointer density and compute-to-allocation ratio — not SPEC's actual
 * arithmetic. A Profile captures exactly these axes; the executor
 * (executor.h) turns a profile into a deterministic object-churn trace
 * with real pointers stored in real heap objects, so sweeps, transitive
 * marking and page unmapping all do representative work.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "metrics/histogram.h"

namespace msw::workload {

struct Profile {
    std::string name;

    /** Simulation ticks ("program time"). */
    std::uint64_t ticks = 100000;

    /** Allocations per tick (allocation intensity). */
    unsigned allocs_per_tick = 4;

    // ----- object sizes: lognormal body + optional large tail ---------
    /** exp(mu) is the median small-object size in bytes. */
    double size_mu = 4.0;
    double size_sigma = 1.0;
    std::size_t size_min = 16;
    std::size_t size_max = 14000;
    /** Probability an allocation is a page-scale "large" object. */
    double large_prob = 0.0;
    std::size_t large_min = 64 * 1024;
    std::size_t large_max = 1 << 20;

    // ----- lifetimes ---------------------------------------------------
    /** Mean object lifetime in ticks (exponential). */
    double lifetime_mean_ticks = 64;
    /** Fraction of objects that live until the end of the run. */
    double long_lived_frac = 0.01;

    // ----- pointer structure -------------------------------------------
    /** Max pointer fields written per object. */
    unsigned ptr_slots = 2;
    /** Probability each pointer field is populated. */
    double ptr_prob = 0.3;

    // ----- non-allocation work ------------------------------------------
    /** ALU loop iterations per tick (compute intensity). */
    unsigned work_per_tick = 400;
    /** Bytes of live data touched per tick (memory intensity). */
    unsigned touch_bytes_per_tick = 512;

    // ----- shape ---------------------------------------------------------
    /** Worker threads (OpenMP-style benchmarks use > 1). */
    unsigned threads = 1;
    /** Final fraction of ticks with elevated (3x) allocation rate —
     *  xalancbmk's end-of-run churn storm. */
    double end_burst_frac = 0.0;

    std::uint64_t seed = 0x5eed;
};

/** Result of executing one profile. */
struct WorkloadResult {
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t bytes_allocated = 0;
    std::uint64_t checksum = 0;
    /** Allocations the system refused (nullptr under memory pressure). */
    std::uint64_t failed_allocs = 0;
    /** Per-operation latency digest (workloads that time requests). */
    metrics::LatencySummary op_latency;
};

}  // namespace msw::workload
