#include "workload/mimalloc_kernels.h"

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <thread>

#include "util/mutex.h"
#include "util/rng.h"

namespace msw::workload {

namespace {

constexpr unsigned kThreads = 4;  // the suite's "N" on our 4-vCPU model

std::uint64_t
iters(double scale, std::uint64_t base)
{
    const auto v = static_cast<std::uint64_t>(
        static_cast<double>(base) * scale);
    return v > 0 ? v : 1;
}

/** Shared helper: window-replacement churn (alloc-test's core loop). */
WorkloadResult
window_churn(System& sys, std::uint64_t iterations, std::size_t window,
             std::size_t min_size, std::size_t max_size,
             std::uint64_t seed)
{
    WorkloadResult r;
    Rng rng(seed);
    std::vector<void*> slots(window, nullptr);
    sys.register_thread();
    sys.add_root(slots.data(), slots.size() * sizeof(void*));
    for (std::uint64_t i = 0; i < iterations; ++i) {
        const std::size_t idx = rng.next_below(window);
        if (slots[idx] != nullptr) {
            sys.allocator->free(slots[idx]);
            ++r.frees;
        }
        const std::size_t size = rng.next_range(min_size, max_size);
        slots[idx] = sys.allocator->alloc(size);
        *static_cast<unsigned char*>(slots[idx]) =
            static_cast<unsigned char>(i);
        ++r.allocs;
        r.bytes_allocated += size;
    }
    for (void* p : slots) {
        if (p != nullptr) {
            sys.allocator->free(p);
            ++r.frees;
        }
    }
    sys.remove_root(slots.data());
    sys.flush();
    sys.unregister_thread();
    return r;
}

WorkloadResult
run_threads(unsigned n, const std::function<WorkloadResult(unsigned)>& body)
{
    std::vector<WorkloadResult> results(n);
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < n; ++t)
        threads.emplace_back([&, t] { results[t] = body(t); });
    for (auto& th : threads)
        th.join();
    WorkloadResult total;
    for (const auto& r : results) {
        total.allocs += r.allocs;
        total.frees += r.frees;
        total.bytes_allocated += r.bytes_allocated;
        total.checksum ^= r.checksum;
    }
    return total;
}

// --------------------------------------------------------------- kernels

WorkloadResult
alloc_test(System& sys, double scale, unsigned threads)
{
    const std::uint64_t n = iters(scale, 400000);
    if (threads == 1)
        return window_churn(sys, n, 1000, 16, 1000, 42);
    return run_threads(threads, [&](unsigned t) {
        return window_churn(sys, n / threads, 1000, 16, 1000, 42 + t);
    });
}

/** barnes: build a pointer-linked tree, traverse it, then free it. */
WorkloadResult
barnes(System& sys, double scale)
{
    WorkloadResult r;
    const std::size_t nodes = iters(scale, 300000);
    struct Node {
        Node* left;
        Node* right;
        double mass[6];
    };
    std::vector<Node*> all;
    all.reserve(nodes);
    sys.register_thread();
    Rng rng(7);
    for (std::size_t i = 0; i < nodes; ++i) {
        auto* n = static_cast<Node*>(sys.allocator->alloc(sizeof(Node)));
        n->left = nullptr;
        n->right = nullptr;
        n->mass[0] = static_cast<double>(i);
        if (!all.empty()) {
            Node* parent = all[rng.next_below(all.size())];
            (rng.next_bool(0.5) ? parent->left : parent->right) = n;
        }
        all.push_back(n);
        ++r.allocs;
        r.bytes_allocated += sizeof(Node);
    }
    // Traverse: touch every node through the pointer graph root.
    for (Node* n : all)
        r.checksum += static_cast<std::uint64_t>(n->mass[0]);
    for (Node* n : all) {
        sys.allocator->free(n);
        ++r.frees;
    }
    sys.flush();
    sys.unregister_thread();
    return r;
}

/** cache-scratch: repeated writes to one small object per thread. */
WorkloadResult
cache_scratch(System& sys, double scale, unsigned threads)
{
    const std::uint64_t writes = iters(scale, 20000000);
    auto body = [&](unsigned t) {
        WorkloadResult r;
        sys.register_thread();
        auto* obj = static_cast<unsigned char*>(sys.allocator->alloc(64));
        ++r.allocs;
        for (std::uint64_t i = 0; i < writes / threads; ++i)
            obj[i % 64] = static_cast<unsigned char>(i + t);
        r.checksum = obj[0];
        sys.allocator->free(obj);
        ++r.frees;
        sys.flush();
        sys.unregister_thread();
        return r;
    };
    if (threads == 1)
        return body(0);
    return run_threads(threads, body);
}

/** cfrac: chains of tiny short-lived bignum limbs with compute. */
WorkloadResult
cfrac(System& sys, double scale)
{
    WorkloadResult r;
    Rng rng(11);
    sys.register_thread();
    const std::uint64_t rounds = iters(scale, 120000);
    for (std::uint64_t round = 0; round < rounds; ++round) {
        void* chain[12];
        const unsigned len = 2 + rng.next_below(10);
        for (unsigned i = 0; i < len; ++i) {
            const std::size_t size = 16 + 16 * rng.next_below(4);
            chain[i] = sys.allocator->alloc(size);
            std::memset(chain[i], static_cast<int>(round), 16);
            ++r.allocs;
            r.bytes_allocated += size;
        }
        // "Arithmetic" on the limbs.
        std::uint64_t acc = round;
        for (unsigned i = 0; i < len; ++i)
            acc += *static_cast<unsigned char*>(chain[i]);
        r.checksum ^= acc;
        for (unsigned i = 0; i < len; ++i) {
            sys.allocator->free(chain[i]);
            ++r.frees;
        }
    }
    sys.flush();
    sys.unregister_thread();
    return r;
}

/** espresso: medium-size window churn (logic minimiser proxy). */
WorkloadResult
espresso(System& sys, double scale)
{
    return window_churn(sys, iters(scale, 300000), 400, 32, 2048, 99);
}

/** glibc-simple: tight alloc-free loop of tiny blocks. */
WorkloadResult
glibc_simple(System& sys, double scale)
{
    WorkloadResult r;
    Rng rng(5);
    sys.register_thread();
    const std::uint64_t n = iters(scale, 1500000);
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::size_t size = 8 + 8 * rng.next_below(8);
        void* p = sys.allocator->alloc(size);
        *static_cast<unsigned char*>(p) = static_cast<unsigned char>(i);
        sys.allocator->free(p);
        ++r.allocs;
        ++r.frees;
        r.bytes_allocated += size;
    }
    sys.flush();
    sys.unregister_thread();
    return r;
}

WorkloadResult
glibc_thread(System& sys, double scale)
{
    return run_threads(kThreads, [&](unsigned t) {
        WorkloadResult r;
        Rng rng(50 + t);
        sys.register_thread();
        const std::uint64_t n = iters(scale, 1500000) / kThreads;
        for (std::uint64_t i = 0; i < n; ++i) {
            const std::size_t size = 8 + 8 * rng.next_below(8);
            void* p = sys.allocator->alloc(size);
            *static_cast<unsigned char*>(p) =
                static_cast<unsigned char>(i);
            sys.allocator->free(p);
            ++r.allocs;
            ++r.frees;
            r.bytes_allocated += size;
        }
        sys.flush();
        sys.unregister_thread();
        return r;
    });
}

/** larson: server simulation — per-thread slot tables, random replace. */
WorkloadResult
larson(System& sys, double scale, std::uint64_t seed)
{
    return run_threads(kThreads, [&](unsigned t) {
        return window_churn(sys, iters(scale, 500000) / kThreads, 1024, 16,
                            512, seed + t);
    });
}

/** mstress: threads allocate batches and hand them on for freeing. */
WorkloadResult
mstress(System& sys, double scale)
{
    struct Queue {
        Mutex mu;
        std::deque<std::vector<void*>> batches;
        bool done = false;
    };
    std::vector<Queue> queues(kThreads);
    const std::uint64_t rounds = iters(scale, 150);

    WorkloadResult total = run_threads(kThreads, [&](unsigned t) {
        WorkloadResult r;
        Rng rng(77 + t);
        sys.register_thread();
        Queue& out = queues[(t + 1) % kThreads];
        Queue& in = queues[t];
        for (std::uint64_t round = 0; round < rounds; ++round) {
            // Produce a batch for the neighbour.
            std::vector<void*> batch;
            batch.reserve(1000);
            for (int i = 0; i < 1000; ++i) {
                const std::size_t size = 16 + rng.next_below(500);
                batch.push_back(sys.allocator->alloc(size));
                ++r.allocs;
                r.bytes_allocated += size;
            }
            {
                LockGuard g(out.mu);
                out.batches.push_back(std::move(batch));
            }
            // Drain whatever has arrived for us.
            std::deque<std::vector<void*>> mine;
            {
                LockGuard g(in.mu);
                mine.swap(in.batches);
            }
            for (auto& b : mine) {
                for (void* p : b) {
                    sys.allocator->free(p);
                    ++r.frees;
                }
            }
        }
        sys.flush();
        sys.unregister_thread();
        return r;
    });
    // Batches handed off after a receiver's last drain are freed here.
    for (Queue& q : queues) {
        for (auto& b : q.batches) {
            for (void* p : b) {
                sys.allocator->free(p);
                ++total.frees;
            }
        }
    }
    sys.flush();
    return total;
}

/** rptest: random pattern — mixed alloc/free/realloc. */
WorkloadResult
rptest(System& sys, double scale)
{
    return run_threads(kThreads, [&](unsigned t) {
        WorkloadResult r;
        Rng rng(123 + t);
        sys.register_thread();
        std::vector<std::pair<void*, std::size_t>> slots(512);
        sys.add_root(slots.data(),
                     slots.size() * sizeof(slots[0]));
        const std::uint64_t n = iters(scale, 300000) / kThreads;
        for (std::uint64_t i = 0; i < n; ++i) {
            const std::size_t idx = rng.next_below(slots.size());
            auto& [ptr, size] = slots[idx];
            const unsigned op = static_cast<unsigned>(rng.next_below(10));
            if (ptr == nullptr || op < 5) {
                if (ptr != nullptr) {
                    sys.allocator->free(ptr);
                    ++r.frees;
                }
                size = 16 << rng.next_below(7);  // 16..1024
                ptr = sys.allocator->alloc(size);
                ++r.allocs;
                r.bytes_allocated += size;
            } else if (op < 7) {
                // realloc = free(old) + alloc(new) for accounting.
                const std::size_t new_size = 16 << rng.next_below(8);
                ptr = sys.allocator->realloc(ptr, new_size);
                size = new_size;
                ++r.allocs;
                ++r.frees;
                r.bytes_allocated += new_size;
            } else {
                sys.allocator->free(ptr);
                ++r.frees;
                ptr = nullptr;
            }
        }
        for (auto& [ptr, size] : slots) {
            if (ptr != nullptr) {
                sys.allocator->free(ptr);
                ++r.frees;
            }
        }
        sys.remove_root(slots.data());
        sys.flush();
        sys.unregister_thread();
        return r;
    });
}

/**
 * sh6bench: batched alloc, free-half, alloc-again, free-all — largely in
 * allocation order (the FIFO pattern the paper notes is kind to FFMalloc).
 */
WorkloadResult
sh6bench(System& sys, double scale)
{
    return run_threads(kThreads, [&](unsigned t) {
        WorkloadResult r;
        Rng rng(31 + t);
        sys.register_thread();
        const std::uint64_t rounds = iters(scale, 600) / kThreads;
        for (std::uint64_t round = 0; round < rounds; ++round) {
            std::vector<void*> batch;
            const std::size_t count = 2000;
            batch.reserve(count);
            for (std::size_t i = 0; i < count; ++i) {
                const std::size_t size = 16 + rng.next_below(80);
                batch.push_back(sys.allocator->alloc(size));
                ++r.allocs;
                r.bytes_allocated += size;
            }
            // Free the first half (allocation order), refill, free all.
            for (std::size_t i = 0; i < count / 2; ++i) {
                sys.allocator->free(batch[i]);
                ++r.frees;
                const std::size_t size = 16 + rng.next_below(80);
                batch[i] = sys.allocator->alloc(size);
                ++r.allocs;
                r.bytes_allocated += size;
            }
            for (void* p : batch) {
                sys.allocator->free(p);
                ++r.frees;
            }
        }
        sys.flush();
        sys.unregister_thread();
        return r;
    });
}

/** sh8bench: sh6 with cross-thread frees. */
WorkloadResult
sh8bench(System& sys, double scale)
{
    struct Handoff {
        Mutex mu;
        std::deque<std::vector<void*>> batches;
    };
    std::vector<Handoff> handoffs(kThreads);

    WorkloadResult total = run_threads(kThreads, [&](unsigned t) {
        WorkloadResult r;
        Rng rng(61 + t);
        sys.register_thread();
        Handoff& out = handoffs[(t + 1) % kThreads];
        Handoff& in = handoffs[t];
        const std::uint64_t rounds = iters(scale, 500) / kThreads;
        for (std::uint64_t round = 0; round < rounds; ++round) {
            std::vector<void*> batch;
            for (int i = 0; i < 2000; ++i) {
                const std::size_t size = 16 + rng.next_below(80);
                batch.push_back(sys.allocator->alloc(size));
                ++r.allocs;
                r.bytes_allocated += size;
            }
            {
                LockGuard g(out.mu);
                out.batches.push_back(std::move(batch));
            }
            std::deque<std::vector<void*>> mine;
            {
                LockGuard g(in.mu);
                mine.swap(in.batches);
            }
            for (auto& b : mine) {
                for (void* p : b) {
                    sys.allocator->free(p);
                    ++r.frees;
                }
            }
        }
        sys.flush();
        sys.unregister_thread();
        return r;
    });
    for (Handoff& q : handoffs) {
        for (auto& b : q.batches) {
            for (void* p : b) {
                sys.allocator->free(p);
                ++total.frees;
            }
        }
    }
    sys.flush();
    return total;
}

/** xmalloc-test: dedicated producers and consumers. */
WorkloadResult
xmalloc_test(System& sys, double scale)
{
    struct Shared {
        Mutex mu;
        std::condition_variable_any cv;
        std::deque<void*> queue;
        int producers_left = 2;
    };
    Shared shared;
    const std::uint64_t per_producer = iters(scale, 400000) / 2;

    return run_threads(kThreads, [&](unsigned t) {
        WorkloadResult r;
        sys.register_thread();
        if (t < 2) {
            // Producer.
            Rng rng(211 + t);
            for (std::uint64_t i = 0; i < per_producer; ++i) {
                const std::size_t size = 16 + rng.next_below(256);
                void* p = sys.allocator->alloc(size);
                ++r.allocs;
                r.bytes_allocated += size;
                LockGuard g(shared.mu);
                shared.queue.push_back(p);
                shared.cv.notify_one();
            }
            LockGuard g(shared.mu);
            shared.producers_left -= 1;
            shared.cv.notify_all();
        } else {
            // Consumer.
            for (;;) {
                void* p = nullptr;
                {
                    UniqueLock g(shared.mu);
                    shared.cv.wait(g, [&] {
                        return !shared.queue.empty() ||
                               shared.producers_left == 0;
                    });
                    if (shared.queue.empty())
                        break;
                    p = shared.queue.front();
                    shared.queue.pop_front();
                }
                sys.allocator->free(p);
                ++r.frees;
            }
        }
        sys.flush();
        sys.unregister_thread();
        return r;
    });
}

}  // namespace

std::vector<StressKernel>
mimalloc_kernels()
{
    return {
        {"alloc-test1",
         [](System& s, double sc) { return alloc_test(s, sc, 1); }},
        {"alloc-testN",
         [](System& s, double sc) { return alloc_test(s, sc, kThreads); }},
        {"barnes", [](System& s, double sc) { return barnes(s, sc); }},
        {"cache-scratch1",
         [](System& s, double sc) { return cache_scratch(s, sc, 1); }},
        {"cache-scratchN",
         [](System& s, double sc) {
             return cache_scratch(s, sc, kThreads);
         }},
        {"cfrac", [](System& s, double sc) { return cfrac(s, sc); }},
        {"espresso", [](System& s, double sc) { return espresso(s, sc); }},
        {"glibc-simple",
         [](System& s, double sc) { return glibc_simple(s, sc); }},
        {"glibc-thread",
         [](System& s, double sc) { return glibc_thread(s, sc); }},
        {"larsonN",
         [](System& s, double sc) { return larson(s, sc, 1000); }},
        {"larsonN-sized",
         [](System& s, double sc) { return larson(s, sc, 2000); }},
        {"mstressN", [](System& s, double sc) { return mstress(s, sc); }},
        {"rptestN", [](System& s, double sc) { return rptest(s, sc); }},
        {"sh6benchN",
         [](System& s, double sc) { return sh6bench(s, sc); }},
        {"sh8benchN",
         [](System& s, double sc) { return sh8bench(s, sc); }},
        {"xmalloc-testN",
         [](System& s, double sc) { return xmalloc_test(s, sc); }},
    };
}

}  // namespace msw::workload
