#include "workload/attack.h"

#include <cstring>
#include <vector>

#include "util/bits.h"

namespace msw::workload {

AttackResult
heap_spray_attack(System& system, void** dangling_slot,
                  std::size_t victim_size, int spray_count)
{
    AttackResult result;
    constexpr unsigned char kVictimByte = 0x56;  // 'V'
    constexpr unsigned char kAttackByte = 0xa7;

    auto* victim =
        static_cast<unsigned char*>(system.allocator->alloc(victim_size));
    if (victim == nullptr)
        return result;  // heap exhausted before the attack could start
    std::memset(victim, kVictimByte, victim_size);
    *dangling_slot = victim;

    system.allocator->free(victim);  // the bug: pointer survives

    std::vector<void*> sprays;
    sprays.reserve(spray_count);
    for (int i = 0; i < spray_count; ++i) {
        auto* fake = static_cast<unsigned char*>(
            system.allocator->alloc(victim_size));
        if (fake == nullptr)
            break;  // pressure: spray cut short, verdict still valid
        std::memset(fake, kAttackByte, victim_size);
        sprays.push_back(fake);
        ++result.sprays;
        if (fake == victim) {
            result.aliased = true;
            break;
        }
    }

    // What does the program's dangling pointer see now? (For unmapped
    // quarantined pages this read would fault; callers check first.)
    const auto* view = static_cast<const unsigned char*>(*dangling_slot);
    if (result.aliased || view[0] == kAttackByte)
        result.view = AttackResult::View::kAttackerData;
    else if (view[0] == 0)
        result.view = AttackResult::View::kZeroes;
    else
        result.view = AttackResult::View::kOriginal;

    for (void* p : sprays)
        system.allocator->free(p);
    *dangling_slot = nullptr;
    return result;
}

bool
double_free_attack(System& system, int attempts)
{
    for (int i = 0; i < attempts; ++i) {
        void* a = system.allocator->alloc(128);
        if (a == nullptr)
            return false;  // pressure: attack could not even run
        system.allocator->free(a);
        // Victim allocation that may land on a's memory.
        void* owner1 = system.allocator->alloc(128);
        if (owner1 == nullptr)
            return false;
        // The double free: if honoured, owner1's memory returns to the
        // free lists while owner1 still uses it...
        system.allocator->free(a);
        // ... and the attacker can obtain it again.
        void* owner2 = system.allocator->alloc(128);
        const bool aliased = owner1 == owner2;
        system.allocator->free(owner1);
        if (owner2 != owner1)
            system.allocator->free(owner2);
        if (aliased)
            return true;
    }
    return false;
}

}  // namespace msw::workload
