/**
 * @file
 * Deterministic workload executor.
 *
 * Turns a Profile into an object-churn trace against a System:
 *  - each worker thread owns a slot table (registered as a root range, so
 *    sweeps and marking passes scan the program's "pointers");
 *  - allocations draw sizes from the profile's distribution, carry
 *    canaries, and store real pointers to other live objects in their
 *    bodies (pointer density), so the heap contains a genuine reference
 *    graph;
 *  - lifetimes are managed by a death-ring calendar; long-lived objects
 *    survive to the end;
 *  - between allocations the worker performs compute and memory-touch
 *    work, reproducing each benchmark's allocation-to-work ratio;
 *  - when an object dies, pointers to it elsewhere in the heap are left
 *    dangling *in the heap data* (as real programs do) — this is what
 *    makes failed frees and quarantine dynamics realistic.
 *
 * The run is deterministic for a given (profile, seed): every system
 * executes the identical trace, and the checksum proves it.
 */
#pragma once

#include "workload/profile.h"
#include "workload/system.h"

namespace msw::workload {

/** Execute @p profile against @p system; blocks until complete. */
WorkloadResult run_profile(System& system, const Profile& profile);

}  // namespace msw::workload
