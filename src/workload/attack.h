/**
 * @file
 * Use-after-free attack scenarios (paper §1.2, §2, Figure 2), expressed
 * against the Allocator interface so every system's defence can be
 * evaluated uniformly — by the tests, the exploit example and any
 * downstream harness.
 */
#pragma once

#include <cstddef>
#include <cstdint>

#include "workload/system.h"

namespace msw::workload {

/** Outcome of one attack attempt. */
struct AttackResult {
    /** The spray aliased the victim while the dangling pointer lived. */
    bool aliased = false;
    /** Number of spray allocations performed. */
    int sprays = 0;
    /**
     * What the dangling pointer read back after the spray: attacker data,
     * zeroes (MineSweeper's zero-fill), the original data (no reuse, no
     * zeroing), or nothing (page unmapped -> would fault).
     */
    enum class View { kAttackerData, kZeroes, kOriginal, kUnmapped } view =
        View::kOriginal;
};

/**
 * The Figure 2 heap-spray: allocate a victim, free it while a pointer
 * survives in @p dangling_slot (which should be registered as a root for
 * quarantining systems), spray same-sized fake objects, then inspect what
 * the dangling pointer sees.
 *
 * @param victim_size  Allocation size (the attacker matches it).
 * @param spray_count  Attack effort.
 */
AttackResult heap_spray_attack(System& system, void** dangling_slot,
                               std::size_t victim_size, int spray_count);

/**
 * Double-free-driven attack: free the same allocation twice with an
 * attacker allocation in between — on unprotected allocators this can
 * hand two owners the same memory. Returns true if two live "owners"
 * ever aliased.
 */
bool double_free_attack(System& system, int attempts);

}  // namespace msw::workload
