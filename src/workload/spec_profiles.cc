#include "workload/spec_profiles.h"

#include <cmath>

#include "util/check.h"

namespace msw::workload {

namespace {

/** Convenience builder: profiles differ in a handful of axes. */
Profile
make(const char* name, std::uint64_t ticks, unsigned apt,
     double median_size, double sigma, double lifetime, double llf,
     unsigned ptr_slots, double ptr_prob, unsigned work, unsigned touch)
{
    Profile p;
    p.name = name;
    p.ticks = ticks;
    p.allocs_per_tick = apt;
    p.size_mu = std::log(median_size);
    p.size_sigma = sigma;
    p.lifetime_mean_ticks = lifetime;
    p.long_lived_frac = llf;
    p.ptr_slots = ptr_slots;
    p.ptr_prob = ptr_prob;
    p.work_per_tick = work;
    p.touch_bytes_per_tick = touch;
    p.seed = 0x2006;
    return p;
}

void
apply_scale(std::vector<Profile>& profiles, double scale)
{
    for (Profile& p : profiles) {
        p.ticks = static_cast<std::uint64_t>(
            static_cast<double>(p.ticks) * scale);
        if (p.ticks < 1000)
            p.ticks = 1000;
    }
}

}  // namespace

std::vector<Profile>
spec2006_profiles(double scale)
{
    std::vector<Profile> v;

    // --- allocation-light, compute-bound benchmarks -------------------
    {
        // astar: pathfinding; moderate allocation of nodes.
        Profile p = make("astar", 300000, 1, 80, 0.8, 400, 0.02, 2, 0.3,
                         500, 1024);
        v.push_back(p);
    }
    {
        // bzip2: a few large long-lived buffers, heavy compute.
        Profile p = make("bzip2", 60000, 1, 200, 1.0, 1000, 0.10, 0, 0,
                         2500, 4096);
        p.large_prob = 0.01;
        p.large_min = 256 * 1024;
        p.large_max = 2 << 20;
        v.push_back(p);
    }
    {
        // dealII: FEM library, allocation-intensive C++ (vectors, cells).
        Profile p = make("dealII", 200000, 4, 96, 1.0, 600, 0.05, 2, 0.3,
                         200, 512);
        v.push_back(p);
    }
    {
        // gcc: very large live set, bursty medium allocations, some big
        // IR arrays. The paper's worst memory-overhead case.
        Profile p = make("gcc", 200000, 5, 120, 1.3, 500, 0.05, 2, 0.3,
                         150, 512);
        p.large_prob = 0.004;
        p.large_min = 64 * 1024;
        p.large_max = 2 << 20;
        v.push_back(p);
    }
    {
        Profile p = make("gobmk", 200000, 1, 64, 0.8, 100, 0.01, 1, 0.2,
                         600, 1024);
        v.push_back(p);
    }
    {
        Profile p = make("h264ref", 200000, 1, 96, 1.0, 300, 0.05, 1, 0.2,
                         600, 2048);
        p.large_prob = 0.005;
        v.push_back(p);
    }
    {
        Profile p = make("hmmer", 80000, 1, 128, 0.9, 500, 0.05, 0, 0,
                         2000, 2048);
        v.push_back(p);
    }
    {
        // lbm: one huge grid allocated up front; pure compute after.
        Profile p = make("lbm", 30000, 1, 64, 0.5, 5000, 0.9, 0, 0, 5000,
                         8192);
        p.large_prob = 0.02;
        p.large_min = 1 << 20;
        p.large_max = 4 << 20;
        v.push_back(p);
    }
    {
        Profile p = make("libquantum", 40000, 1, 48, 0.5, 3000, 0.5, 0, 0,
                         4000, 8192);
        v.push_back(p);
    }
    {
        // mcf: a handful of giant arrays, memory-bound traversal.
        Profile p = make("mcf", 150000, 1, 96, 0.8, 2000, 0.2, 1, 0.2,
                         700, 4096);
        p.large_prob = 0.02;
        p.large_min = 256 * 1024;
        p.large_max = 4 << 20;
        v.push_back(p);
    }
    {
        Profile p = make("milc", 50000, 1, 96, 0.8, 2000, 0.4, 0, 0, 3000,
                         8192);
        p.large_prob = 0.03;
        p.large_min = 512 * 1024;
        p.large_max = 4 << 20;
        v.push_back(p);
    }
    {
        Profile p = make("namd", 40000, 1, 128, 0.7, 3000, 0.5, 0, 0,
                         4000, 4096);
        v.push_back(p);
    }
    {
        // omnetpp: discrete-event simulator; constant small-object churn
        // with dense event pointers. Most sweeps in the paper (1075).
        Profile p = make("omnetpp", 250000, 10, 64, 0.8, 300, 0.02, 2,
                         0.4, 80, 256);
        v.push_back(p);
    }
    {
        // perlbench: interpreter; very high small-allocation rate.
        Profile p = make("perlbench", 250000, 8, 56, 1.0, 400, 0.03, 2,
                         0.35, 120, 256);
        v.push_back(p);
    }
    {
        Profile p = make("povray", 250000, 1, 56, 0.8, 50, 0.005, 1, 0.25,
                         600, 512);
        v.push_back(p);
    }
    {
        Profile p = make("sjeng", 60000, 1, 64, 0.6, 2000, 0.3, 0, 0,
                         2500, 2048);
        v.push_back(p);
    }
    {
        // sphinx3: speech recognition; frequent short-lived allocations.
        Profile p = make("sphinx3", 250000, 3, 40, 0.6, 150, 0.01, 1,
                         0.25, 250, 512);
        v.push_back(p);
    }
    {
        // soplex: LP solver; fewer allocations but large matrices.
        Profile p = make("soplex", 150000, 1, 160, 1.0, 800, 0.08, 1, 0.2,
                         600, 2048);
        p.large_prob = 0.05;
        p.large_min = 128 * 1024;
        p.large_max = 2 << 20;
        v.push_back(p);
    }
    {
        // xalancbmk: XSLT processor; extreme tiny-object churn, deep DOM
        // pointer graphs, and an end-of-run sweep storm. The paper's
        // worst slowdown case (654 sweeps, most near the end).
        Profile p = make("xalancbmk", 250000, 12, 48, 0.7, 800, 0.04, 3,
                         0.5, 50, 256);
        p.end_burst_frac = 0.25;
        v.push_back(p);
    }

    apply_scale(v, scale);
    return v;
}

std::vector<Profile>
spec2017_profiles(double scale)
{
    std::vector<Profile> v;
    const auto threaded = [](Profile p) {
        p.name += "*";
        p.threads = 4;
        p.seed = 0x2017;
        return p;
    };

    {
        Profile p = make("perlbench", 250000, 8, 56, 1.0, 400, 0.03, 2,
                         0.35, 110, 256);
        v.push_back(p);
    }
    {
        Profile p = make("gcc", 220000, 5, 120, 1.3, 500, 0.05, 2, 0.3,
                         140, 512);
        p.large_prob = 0.004;
        p.large_min = 64 * 1024;
        p.large_max = 2 << 20;
        v.push_back(p);
    }
    {
        Profile p = make("mcf", 150000, 1, 96, 0.8, 2000, 0.2, 1, 0.2,
                         700, 4096);
        p.large_prob = 0.02;
        p.large_min = 256 * 1024;
        p.large_max = 4 << 20;
        v.push_back(p);
    }
    {
        // xalancbmk: the paper's 2x slowdown case in 2017 too.
        Profile p = make("xalancbmk", 250000, 12, 48, 0.7, 800, 0.04, 3,
                         0.5, 50, 256);
        p.end_burst_frac = 0.25;
        v.push_back(p);
    }
    {
        Profile p = make("x264", 150000, 1, 128, 0.9, 100, 0.05, 1, 0.2,
                         2000, 4096);
        p.large_prob = 0.02;
        p.large_min = 256 * 1024;
        p.large_max = 2 << 20;
        v.push_back(p);
    }
    {
        Profile p = make("deepsjeng", 60000, 1, 64, 0.6, 2000, 0.3, 0, 0,
                         2500, 2048);
        v.push_back(p);
    }
    {
        // leela: Go engine; UCT tree nodes churn.
        Profile p = make("leela", 200000, 2, 72, 0.7, 80, 0.01, 2, 0.35,
                         800, 512);
        v.push_back(p);
    }
    {
        // exchange2: essentially allocation-free Fortran.
        Profile p = make("exchange2", 30000, 1, 48, 0.4, 5000, 0.5, 0, 0,
                         5000, 2048);
        v.push_back(p);
    }
    {
        Profile p = make("xz", 100000, 1, 96, 0.8, 500, 0.1, 0, 0, 2000,
                         4096);
        p.large_prob = 0.008;
        p.large_min = 512 * 1024;
        p.large_max = 4 << 20;
        v.push_back(threaded(p));
    }
    {
        Profile p = make("bwaves", 20000, 1, 96, 0.6, 4000, 0.8, 0, 0,
                         4000, 8192);
        p.large_prob = 0.004;
        p.large_min = 1 << 20;
        p.large_max = 4 << 20;
        v.push_back(threaded(p));
    }
    {
        Profile p = make("cactuBSSN", 25000, 1, 128, 0.7, 4000, 0.7, 0, 0,
                         3500, 8192);
        p.large_prob = 0.004;
        p.large_min = 1 << 20;
        p.large_max = 4 << 20;
        v.push_back(threaded(p));
    }
    {
        Profile p = make("lbm", 30000, 1, 64, 0.5, 5000, 0.9, 0, 0, 5000,
                         8192);
        p.large_prob = 0.004;
        p.large_min = 1 << 20;
        p.large_max = 4 << 20;
        v.push_back(threaded(p));
    }
    {
        // wrf: the slowest parallel benchmark in the paper (66 %):
        // moderate allocation from many threads.
        Profile p = make("wrf", 120000, 3, 100, 0.9, 200, 0.03, 1, 0.25,
                         1200, 2048);
        v.push_back(threaded(p));
    }
    {
        Profile p = make("pop2", 100000, 2, 96, 0.8, 400, 0.05, 1, 0.2,
                         1500, 4096);
        v.push_back(threaded(p));
    }
    {
        Profile p = make("imagick", 80000, 1, 128, 0.9, 50, 0.02, 0, 0,
                         1500, 4096);
        p.large_prob = 0.02;
        p.large_min = 512 * 1024;
        p.large_max = 4 << 20;
        v.push_back(threaded(p));
    }
    {
        Profile p = make("nab", 100000, 2, 96, 0.8, 150, 0.02, 1, 0.2,
                         1200, 2048);
        v.push_back(threaded(p));
    }
    {
        Profile p = make("fotonik3d", 25000, 1, 96, 0.6, 4000, 0.7, 0, 0,
                         3500, 8192);
        p.large_prob = 0.004;
        p.large_min = 1 << 20;
        p.large_max = 4 << 20;
        v.push_back(threaded(p));
    }
    {
        Profile p = make("roms", 30000, 1, 96, 0.6, 4000, 0.6, 0, 0, 3000,
                         8192);
        p.large_prob = 0.003;
        p.large_min = 1 << 20;
        p.large_max = 4 << 20;
        v.push_back(threaded(p));
    }

    apply_scale(v, scale);
    return v;
}

Profile
spec_profile(const std::string& name, double scale)
{
    for (const Profile& p : spec2006_profiles(scale)) {
        if (p.name == name)
            return p;
    }
    for (const Profile& p : spec2017_profiles(scale)) {
        if (p.name == name)
            return p;
    }
    fatal("unknown SPEC profile: %s", name.c_str());
}

}  // namespace msw::workload
