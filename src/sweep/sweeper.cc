#include "sweep/sweeper.h"

#include <sys/mman.h>

#include <algorithm>
#include <cstring>
#include <ctime>
#include <new>

#include "util/bits.h"
#include "util/check.h"
#include "vm/vm.h"

namespace msw::sweep {

std::uint64_t
thread_cpu_ns()
{
    struct timespec ts;
    ::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

// ---------------------------------------------------------------------
// SweepWorkers
// ---------------------------------------------------------------------

SweepWorkers::SweepWorkers(unsigned helpers)
{
    threads_.reserve(helpers);
    for (unsigned i = 0; i < helpers; ++i)
        threads_.emplace_back([this, i] { worker_loop(i + 1); });
}

SweepWorkers::~SweepWorkers()
{
    {
        MutexGuard g(mu_);
        shutdown_ = true;
    }
    cv_work_.notify_all();
    for (auto& t : threads_)
        t.join();
}

void
SweepWorkers::worker_loop(unsigned index)
{
    std::uint64_t seen_generation = 0;
    for (;;) {
        const std::function<void(unsigned)>* job = nullptr;
        {
            UniqueLock g(mu_);
            cv_work_.wait(g, [&]() MSW_REQUIRES(mu_) {
                return shutdown_ || generation_ != seen_generation;
            });
            if (shutdown_)
                return;
            seen_generation = generation_;
            job = job_;
        }
        const std::uint64_t cpu_before = thread_cpu_ns();
        (*job)(index);
        // msw-relaxed(stat-cells): CPU-time tally; totals need no
        // ordering.
        helper_cpu_ns_.fetch_add(thread_cpu_ns() - cpu_before,
                                 std::memory_order_relaxed);
        {
            MutexGuard g(mu_);
            --running_;
        }
        cv_done_.notify_one();
    }
}

void
SweepWorkers::run(const std::function<void(unsigned)>& fn)
{
    {
        MutexGuard g(mu_);
        MSW_CHECK(running_ == 0);
        job_ = &fn;
        running_ = static_cast<unsigned>(threads_.size());
        ++generation_;
    }
    cv_work_.notify_all();
    fn(0);
    UniqueLock g(mu_);
    cv_done_.wait(g, [&]() MSW_REQUIRES(mu_) { return running_ == 0; });
    job_ = nullptr;
}

// The fork hooks hold mu_ across fork(); the pairing is enforced by
// core/lifecycle, outside what the static analysis can see.
void
SweepWorkers::prepare_fork() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    // A dispatched job finishes before mu_ is granted only if run()'s
    // final wait can complete — it can: helpers still exist in the
    // parent, and this lock is only contended between jobs. Fork with
    // the pool idle and frozen.
    mu_.lock();
    while (running_ != 0) {
        mu_.unlock();
        std::this_thread::yield();
        mu_.lock();
    }
}

void
SweepWorkers::parent_after_fork() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    mu_.unlock();
}

void
SweepWorkers::child_after_fork() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    // The inherited handles name parent threads; destroying a joinable
    // std::thread terminates, so reinitialise each in place to "not a
    // thread" before dropping them. The pool degrades to caller-only.
    for (auto& t : threads_)
        new (&t) std::thread();
    threads_.clear();
    job_ = nullptr;
    running_ = 0;
    // The cvs' internal heap mutexes are locked outside mu_ by
    // notify_one/notify_all (libstdc++), so a parent thread mid-notify
    // leaves them locked here with no owner. Reinitialise in place
    // (no destructor: destroying the locked internal mutex is UB).
    new (&cv_work_) std::condition_variable_any();
    new (&cv_done_) std::condition_variable_any();
    mu_.unlock();
}

// ---------------------------------------------------------------------
// Marker
// ---------------------------------------------------------------------

std::vector<Range>
chunk_ranges(const std::vector<Range>& ranges, std::size_t chunk_bytes)
{
    std::vector<Range> chunks;
    for (const Range& r : ranges) {
        std::uintptr_t base = r.base;
        std::size_t left = r.len;
        while (left > chunk_bytes) {
            chunks.push_back(Range{base, chunk_bytes});
            base += chunk_bytes;
            left -= chunk_bytes;
        }
        if (left > 0)
            chunks.push_back(Range{base, left});
    }
    return chunks;
}

void
append_resident_subranges(const Range& range, std::vector<Range>* out)
{
    const std::uintptr_t lo = align_down(range.base, vm::kPageSize);
    const std::uintptr_t hi = align_up(range.end(), vm::kPageSize);
    if (lo >= hi)
        return;
    const std::size_t pages = (hi - lo) >> vm::kPageShift;
    std::vector<Range> resident;
    // mincore in bounded batches to keep the vec buffer small.
    constexpr std::size_t kBatch = 4096;
    unsigned char vec[kBatch];
    Range run{};
    for (std::size_t first = 0; first < pages; first += kBatch) {
        const std::size_t count = std::min(kBatch, pages - first);
        const std::uintptr_t addr = lo + (first << vm::kPageShift);
        if (::mincore(to_ptr(addr), count << vm::kPageShift, vec) != 0) {
            // Unqueryable (e.g. unmapped): treat as resident so nothing
            // is silently skipped; scan_chunk reads what it can.
            std::memset(vec, 1, count);
        }
        for (std::size_t i = 0; i < count; ++i) {
            const std::uintptr_t page = addr + (i << vm::kPageShift);
            if (vec[i] & 1) {
                if (run.len != 0 && run.end() == page) {
                    run.len += vm::kPageSize;
                } else {
                    if (run.len != 0)
                        resident.push_back(run);
                    run = Range{page, vm::kPageSize};
                }
            } else if (run.len != 0) {
                resident.push_back(run);
                run = Range{};
            }
        }
    }
    if (run.len != 0)
        resident.push_back(run);
    // Clip to the original (possibly unaligned) bounds and append.
    for (Range r : resident) {
        const std::uintptr_t clip_lo =
            r.base > range.base ? r.base : range.base;
        const std::uintptr_t clip_hi =
            r.end() < range.end() ? r.end() : range.end();
        if (clip_lo < clip_hi)
            out->push_back(Range{clip_lo, clip_hi - clip_lo});
    }
}

void
Marker::scan_chunk(std::uintptr_t lo, std::uintptr_t hi,
                   MarkStats* stats) const
{
    lo = align_up(lo, sizeof(std::uint64_t));
    hi = align_down(hi, sizeof(std::uint64_t));
    if (lo >= hi)
        return;
    const auto* p = to_ptr_of<const std::uint64_t>(lo);
    const auto* end = to_ptr_of<const std::uint64_t>(hi);
    const std::uintptr_t base = heap_base_;
    const std::uintptr_t limit = heap_end_;
    std::uint64_t found = 0;
    for (; p != end; ++p) {
        // Mutators write the scanned memory concurrently (fully-concurrent
        // mode tolerates torn/stale words by design, §4.3); the relaxed
        // atomic load makes that well-defined without changing the
        // generated code — it is still a single plain load on x86/arm64.
        // msw-relaxed(marker-scan): see above — conservative scan.
        const std::uint64_t v = __atomic_load_n(p, __ATOMIC_RELAXED);
        // One subtraction + compare: "does this word point into the heap
        // reservation?" — the entire per-word cost of the linear sweep.
        if (v - base < limit - base) {
            shadow_->mark(v);
            ++found;
        }
    }
    stats->bytes_scanned += hi - lo;
    stats->pointers_found += found;
}

MarkStats
Marker::mark_one(const Range& range)
{
    MarkStats stats;
    scan_chunk(range.base, range.end(), &stats);
    return stats;
}

MarkStats
Marker::mark_ranges(const std::vector<Range>& ranges, SweepWorkers* workers)
{
    // 1 MiB chunks: large enough to amortise dispatch, small enough to
    // balance across workers.
    const std::vector<Range> chunks = chunk_ranges(ranges, 1 << 20);
    if (workers == nullptr || workers->count() == 1 || chunks.size() <= 1) {
        MarkStats stats;
        for (const Range& c : chunks)
            scan_chunk(c.base, c.end(), &stats);
        return stats;
    }

    std::atomic<std::size_t> next{0};
    std::vector<MarkStats> per_worker(workers->count());
    workers->run([&](unsigned index) {
        MarkStats& stats = per_worker[index];
        for (;;) {
            // msw-relaxed(work-cursor): chunk ticket; only RMW
            // atomicity matters, chunks are read-only here.
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= chunks.size())
                break;
            scan_chunk(chunks[i].base, chunks[i].end(), &stats);
        }
    });

    MarkStats total;
    for (const MarkStats& s : per_worker) {
        total.bytes_scanned += s.bytes_scanned;
        total.pointers_found += s.pointers_found;
    }
    return total;
}

const void*
find_nonzero(const void* p, std::size_t n)
{
    const auto* b = static_cast<const unsigned char*>(p);
    const unsigned char* end = b + n;
    // Byte-wise to word alignment, then whole words, then the tail.
    while (b < end && (to_addr(b) & (sizeof(std::uint64_t) - 1)) != 0) {
        if (*b != 0)
            return b;
        ++b;
    }
    const auto* w = reinterpret_cast<const std::uint64_t*>(b);
    while (b + sizeof(std::uint64_t) <= end) {
        if (*w != 0)
            break;
        ++w;
        b += sizeof(std::uint64_t);
    }
    while (b < end) {
        if (*b != 0)
            return b;
        ++b;
    }
    return nullptr;
}

}  // namespace msw::sweep
