#include "sweep/dirty_tracker.h"

#include <execinfo.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cstring>
#include <cstdio>

#include "util/bits.h"
#include "util/check.h"
#include "util/log.h"
#include "util/mutex.h"
#include "util/spin_lock.h"

namespace msw::sweep {

// ---------------------------------------------------------------------
// SoftDirtyTracker
// ---------------------------------------------------------------------

namespace {

constexpr std::uint64_t kSoftDirtyBit = std::uint64_t{1} << 55;

/** Ask the kernel to clear all soft-dirty bits for this process. */
bool
clear_soft_dirty(int clear_fd)
{
    return ::pwrite(clear_fd, "4\n", 2, 0) == 2;
}

/** Read pagemap entries for @p count pages starting at @p vaddr. */
bool
read_pagemap(int pagemap_fd, std::uintptr_t vaddr, std::uint64_t* entries,
             std::size_t count)
{
    const off_t offset =
        static_cast<off_t>(vaddr >> vm::kPageShift) * sizeof(std::uint64_t);
    const ssize_t want = static_cast<ssize_t>(count * sizeof(std::uint64_t));
    return ::pread(pagemap_fd, entries, want, offset) == want;
}

}  // namespace

std::unique_ptr<SoftDirtyTracker>
SoftDirtyTracker::make()
{
    const int clear_fd = ::open("/proc/self/clear_refs", O_WRONLY);
    const int pagemap_fd = ::open("/proc/self/pagemap", O_RDONLY);
    if (clear_fd < 0 || pagemap_fd < 0) {
        if (clear_fd >= 0)
            ::close(clear_fd);
        if (pagemap_fd >= 0)
            ::close(pagemap_fd);
        MSW_LOG_INFO("soft-dirty unavailable: cannot open proc files");
        return nullptr;
    }

    // Self-test: clear, dirty a page, and confirm the bit reads back. Some
    // containers accept the clear but hide the bit in pagemap.
    void* probe = ::mmap(nullptr, vm::kPageSize, PROT_READ | PROT_WRITE,
                         MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    MSW_CHECK(probe != MAP_FAILED);
    bool ok = clear_soft_dirty(clear_fd);
    if (ok) {
        *static_cast<volatile char*>(probe) = 1;
        std::uint64_t entry = 0;
        ok = read_pagemap(pagemap_fd, to_addr(probe), &entry, 1) &&
             (entry & kSoftDirtyBit) != 0;
    }
    ::munmap(probe, vm::kPageSize);
    if (!ok) {
        MSW_LOG_INFO("soft-dirty unavailable: self-test failed");
        ::close(clear_fd);
        ::close(pagemap_fd);
        return nullptr;
    }
    return std::unique_ptr<SoftDirtyTracker>(
        new SoftDirtyTracker(clear_fd, pagemap_fd));
}

SoftDirtyTracker::SoftDirtyTracker(int clear_fd, int pagemap_fd)
    : clear_fd_(clear_fd), pagemap_fd_(pagemap_fd)
{}

SoftDirtyTracker::~SoftDirtyTracker()
{
    ::close(clear_fd_);
    ::close(pagemap_fd_);
}

void
SoftDirtyTracker::begin(const std::vector<Range>& ranges)
{
    tracked_ = ranges;
    MSW_CHECK(clear_soft_dirty(clear_fd_));
}

void
SoftDirtyTracker::collect_range(const Range& r, std::vector<Range>& out) const
{
    constexpr std::size_t kBatch = 1024;  // pages per pagemap read
    std::uint64_t entries[kBatch];

    std::uintptr_t addr = align_down(r.base, vm::kPageSize);
    const std::uintptr_t end = align_up(r.end(), vm::kPageSize);
    Range run{};
    while (addr < end) {
        const std::size_t pages =
            std::min(kBatch, (end - addr) >> vm::kPageShift);
        if (!read_pagemap(pagemap_fd_, addr, entries, pages)) {
            // Treat unreadable stretches as dirty (conservative).
            out.push_back(Range{addr, pages << vm::kPageShift});
            addr += pages << vm::kPageShift;
            continue;
        }
        for (std::size_t i = 0; i < pages; ++i) {
            const std::uintptr_t page = addr + (i << vm::kPageShift);
            if (entries[i] & kSoftDirtyBit) {
                if (run.len != 0 && run.end() == page) {
                    run.len += vm::kPageSize;
                } else {
                    if (run.len != 0)
                        out.push_back(run);
                    run = Range{page, vm::kPageSize};
                }
            }
        }
        addr += pages << vm::kPageShift;
    }
    if (run.len != 0)
        out.push_back(run);
}

void
SoftDirtyTracker::end_collect(std::vector<Range>& out)
{
    for (const Range& r : tracked_)
        collect_range(r, out);
    tracked_.clear();
}

// ---------------------------------------------------------------------
// MprotectTracker
// ---------------------------------------------------------------------

namespace {

constexpr int kMaxActiveTrackers = 8;
MprotectTracker* g_active_trackers[kMaxActiveTrackers] = {};
SpinLock g_tracker_lock;
std::atomic<bool> g_segv_handler_installed{false};
struct sigaction g_prev_segv;

void
segv_handler(int sig, siginfo_t* info, void* ucontext)
{
    const auto addr = to_addr(info->si_addr);
    for (int i = 0; i < kMaxActiveTrackers; ++i) {
        MprotectTracker* tracker =
            __atomic_load_n(&g_active_trackers[i], __ATOMIC_ACQUIRE);
        if (tracker != nullptr && tracker->handle_fault(addr))
            return;  // store will be retried against the now-RW page
    }
    // Not ours: chain to the previous handler (default: crash). This is
    // also the path a prevented use-after-free takes when it touches a
    // PROT_NONE quarantined page — clean termination, as per the paper.
    {
        char buf[256];
        int n = snprintf(
            buf, sizeof(buf),
            "[msw] unhandled SIGSEGV at %p (code=%d); terminating\n",
            info->si_addr, info->si_code);
        for (int i = 0; i < kMaxActiveTrackers; ++i) {
            MprotectTracker* tracker =
                __atomic_load_n(&g_active_trackers[i], __ATOMIC_ACQUIRE);
            if (tracker != nullptr) {
                n += snprintf(buf + n, sizeof(buf) - n,
                              "[msw]   tracker %d: %s\n", i,
                              tracker->describe_fault(addr));
            }
        }
        ssize_t ignored = write(2, buf, n);
        (void)ignored;
        void* frames[32];
        const int depth = backtrace(frames, 32);
        backtrace_symbols_fd(frames, depth, 2);
    }
    if (g_prev_segv.sa_flags & SA_SIGINFO) {
        if (g_prev_segv.sa_sigaction != nullptr) {
            g_prev_segv.sa_sigaction(sig, info, ucontext);
            return;
        }
    } else if (g_prev_segv.sa_handler != SIG_DFL &&
               g_prev_segv.sa_handler != SIG_IGN &&
               g_prev_segv.sa_handler != nullptr) {
        g_prev_segv.sa_handler(sig);
        return;
    }
    // Restore default disposition and re-raise.
    signal(SIGSEGV, SIG_DFL);
    raise(SIGSEGV);
}

void
install_segv_handler()
{
    bool expected = false;
    if (g_segv_handler_installed.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
        struct sigaction sa;
        std::memset(&sa, 0, sizeof(sa));
        sa.sa_sigaction = &segv_handler;
        sa.sa_flags = SA_SIGINFO | SA_RESTART;
        sigemptyset(&sa.sa_mask);
        MSW_CHECK(sigaction(SIGSEGV, &sa, &g_prev_segv) == 0);
    }
}

constexpr unsigned char kTracked = 1;
constexpr unsigned char kDirty = 2;

}  // namespace

MprotectTracker::MprotectTracker(const vm::Reservation* heap) : heap_(heap)
{
    num_pages_ = heap_->size() >> vm::kPageShift;
    state_ = vm::Reservation::reserve(num_pages_);
    state_.commit_must(state_.base(), state_.size());
    page_state_ = to_ptr_of<unsigned char>(state_.base());
    install_segv_handler();
    // Register for the tracker's whole lifetime (not per epoch): a write
    // fault raised during an epoch can reach the handler *after* the
    // epoch ended, and must still be recognised and recovered.
    LockGuard g(g_tracker_lock);
    bool placed = false;
    for (auto& slot : g_active_trackers) {
        if (slot == nullptr) {
            __atomic_store_n(&slot, this, __ATOMIC_RELEASE);
            placed = true;
            break;
        }
    }
    MSW_CHECK(placed);
}

MprotectTracker::~MprotectTracker()
{
    LockGuard g(g_tracker_lock);
    for (auto& slot : g_active_trackers) {
        if (slot == this)
            __atomic_store_n(&slot, static_cast<MprotectTracker*>(nullptr),
                             __ATOMIC_RELEASE);
    }
}

void
MprotectTracker::begin(const std::vector<Range>& ranges)
{
    MSW_CHECK(!active_);
    tracked_.clear();
    for (const Range& r : ranges) {
        if (heap_->contains(r.base))
            tracked_.push_back(r);
    }
    active_ = true;
    for (const Range& r : tracked_) {
        const std::uintptr_t lo = align_down(r.base, vm::kPageSize);
        const std::uintptr_t hi = align_up(r.end(), vm::kPageSize);
        for (std::uintptr_t p = lo; p < hi; p += vm::kPageSize) {
            // msw-relaxed(dirty-pages): the mprotect() below is the
            // synchronisation point; faults cannot precede it.
            __atomic_store_n(&page_state_[page_index(p)], kTracked,
                             __ATOMIC_RELAXED);
        }
        MSW_CHECK(::mprotect(to_ptr(lo), hi - lo, PROT_READ) == 0);
    }
}

bool
MprotectTracker::handle_fault(std::uintptr_t addr)
{
    if (!heap_->contains(addr))
        return false;
    const std::size_t idx = page_index(addr);
    const std::uintptr_t page = align_down(addr, vm::kPageSize);
    unsigned char st = __atomic_load_n(&page_state_[idx], __ATOMIC_ACQUIRE);
    if (!(st & kTracked)) {
        // Stale barrier fault: the epoch may have ended (end_collect
        // restores RW concurrently with in-flight faults), or another
        // thread already recovered this page. If the page is committed,
        // restoring access is idempotent and the store retries safely;
        // if it is not (an unmapped quarantined page — a real
        // use-after-free), decline so the program terminates cleanly.
        if (committed_filter_ != nullptr &&
            committed_filter_(addr, committed_filter_arg_)) {
            return ::mprotect(to_ptr(page), vm::kPageSize,
                              PROT_READ | PROT_WRITE) == 0;
        }
        return false;
    }
    // First write to this page during the epoch: record and unprotect.
    __atomic_store_n(&page_state_[idx],
                     static_cast<unsigned char>(kDirty), __ATOMIC_RELEASE);
    if (::mprotect(to_ptr(page), vm::kPageSize, PROT_READ | PROT_WRITE) != 0)
        return false;
    return true;
}

const char*
MprotectTracker::describe_fault(std::uintptr_t addr) const
{
    if (!heap_->contains(addr))
        return "outside heap";
    // msw-relaxed(dirty-pages): diagnostic describe path; a stale
    // state only mislabels the crash report.
    const unsigned char st =
        __atomic_load_n(&page_state_[page_index(addr)], __ATOMIC_RELAXED);
    const bool committed =
        committed_filter_ != nullptr &&
        committed_filter_(addr, committed_filter_arg_);
    if (st & kTracked)
        return committed ? "tracked+committed" : "tracked+uncommitted";
    if (st & kDirty)
        return committed ? "dirty+committed" : "dirty+uncommitted";
    return committed ? "untracked+committed" : "untracked+uncommitted";
}

void
MprotectTracker::note_committed(std::uintptr_t addr, std::size_t len)
{
    if (!active_)
        return;
    const std::uintptr_t lo = align_down(addr, vm::kPageSize);
    const std::uintptr_t hi = align_up(addr + len, vm::kPageSize);
    for (std::uintptr_t p = lo; p < hi; p += vm::kPageSize) {
        // msw-relaxed(dirty-pages): cell update; end_collect() reads
        // it only after mprotect restores access on the range.
        __atomic_store_n(&page_state_[page_index(p)], kDirty,
                         __ATOMIC_RELAXED);
    }
}

void
MprotectTracker::end_collect(std::vector<Range>& out)
{
    MSW_CHECK(active_);
    // Restore write access on still-protected pages and harvest dirty runs.
    for (const Range& r : tracked_) {
        const std::uintptr_t lo = align_down(r.base, vm::kPageSize);
        const std::uintptr_t hi = align_up(r.end(), vm::kPageSize);
        MSW_CHECK(::mprotect(to_ptr(lo), hi - lo,
                             PROT_READ | PROT_WRITE) == 0);
        Range run{};
        for (std::uintptr_t p = lo; p < hi; p += vm::kPageSize) {
            const std::size_t idx = page_index(p);
            // msw-relaxed(dirty-pages): harvest after the mprotect
            // above; no new faults can be marking these cells.
            const unsigned char st =
                __atomic_load_n(&page_state_[idx], __ATOMIC_RELAXED);
            // msw-relaxed(dirty-pages): as above — post-mprotect reset.
            __atomic_store_n(&page_state_[idx],
                             static_cast<unsigned char>(0),
                             __ATOMIC_RELAXED);
            if (st & kDirty) {
                if (run.len != 0 && run.end() == p) {
                    run.len += vm::kPageSize;
                } else {
                    if (run.len != 0)
                        out.push_back(run);
                    run = Range{p, vm::kPageSize};
                }
            }
        }
        if (run.len != 0)
            out.push_back(run);
    }
    active_ = false;
    tracked_.clear();
}

std::unique_ptr<DirtyTracker>
make_dirty_tracker(const vm::Reservation* heap)
{
    if (auto sd = SoftDirtyTracker::make()) {
        MSW_LOG_INFO("dirty tracking: soft-dirty PTEs");
        return sd;
    }
    MSW_LOG_INFO("dirty tracking: mprotect write barrier (fallback)");
    return std::make_unique<MprotectTracker>(heap);
}

}  // namespace msw::sweep
