/**
 * @file
 * Dirty-page tracking for the mostly-concurrent sweep mode (paper §4.3).
 *
 * The mostly-concurrent sweep marks memory concurrently with the
 * application, then briefly stops the world and re-checks only the pages
 * modified during the first pass, giving the same guarantee as MarkUs:
 * every reachable dangling pointer is found even if it moved mid-sweep.
 *
 * Two real tracking backends are provided, selected at runtime:
 *  - SoftDirtyTracker: the paper's mechanism — Linux soft-dirty PTEs via
 *    /proc/self/clear_refs + /proc/self/pagemap. Unavailable in some
 *    containers (pagemap hides the bit), detected by a self-test.
 *  - MprotectTracker: the classic GC write barrier the paper describes as
 *    the "standard solution": pages are write-protected and a SIGSEGV
 *    handler records the first write to each. Used as the fallback.
 *  - NullTracker: no tracking; used by the fully concurrent mode.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sweep/roots.h"
#include "vm/vm.h"

namespace msw::sweep {

class DirtyTracker
{
  public:
    virtual ~DirtyTracker() = default;

    virtual const char* name() const = 0;

    /**
     * True if the tracker can track any process memory (soft-dirty);
     * false if it is limited to the heap reservation (mprotect), in which
     * case the sweeper rescans non-heap roots fully during stop-the-world.
     */
    virtual bool tracks_arbitrary_memory() const { return false; }

    /**
     * Begin a tracking epoch over @p ranges (page-aligned, committed).
     * Writes that land in these ranges after this call are recorded.
     * Ranges the tracker cannot cover are ignored.
     */
    virtual void begin(const std::vector<Range>& ranges) = 0;

    /**
     * Inform the tracker that [addr, addr+len) was freshly committed
     * during the epoch; such pages are treated as dirty.
     */
    virtual void note_committed(std::uintptr_t /*addr*/, std::size_t /*len*/)
    {}

    /**
     * End the epoch and append the page ranges dirtied during it (clipped
     * to the tracked ranges) to @p out. The world should be stopped when
     * this is called so the result is exact.
     */
    virtual void end_collect(std::vector<Range>& out) = 0;
};

/** No-op tracker for the fully concurrent mode. */
class NullTracker final : public DirtyTracker
{
  public:
    const char* name() const override { return "null"; }
    void begin(const std::vector<Range>&) override {}
    void end_collect(std::vector<Range>&) override {}
};

/**
 * Soft-dirty PTE tracker. Create via make(); returns nullptr when the
 * kernel does not expose working soft-dirty bits.
 */
class SoftDirtyTracker final : public DirtyTracker
{
  public:
    /** Probe kernel support; nullptr if unusable. */
    static std::unique_ptr<SoftDirtyTracker> make();

    ~SoftDirtyTracker() override;

    const char* name() const override { return "soft-dirty"; }
    bool tracks_arbitrary_memory() const override { return true; }
    void begin(const std::vector<Range>& ranges) override;
    void end_collect(std::vector<Range>& out) override;

  private:
    SoftDirtyTracker(int clear_fd, int pagemap_fd);

    void collect_range(const Range& r, std::vector<Range>& out) const;

    int clear_fd_;
    int pagemap_fd_;
    std::vector<Range> tracked_;
};

/**
 * Write-barrier tracker: write-protects the tracked ranges and records
 * faulting pages from a SIGSEGV handler. Covers exactly one heap
 * reservation. At most a few instances may have an epoch open at a time
 * (they share the process-wide signal handler).
 */
class MprotectTracker final : public DirtyTracker
{
  public:
    explicit MprotectTracker(const vm::Reservation* heap);
    ~MprotectTracker() override;

    /**
     * Install a predicate distinguishing committed heap pages from
     * decommitted ones. A write fault on a page the tracker no longer
     * tracks can be a *stale* barrier fault (raised just as an epoch
     * ended); if the page is committed, restoring PROT_READ|WRITE and
     * retrying is safe and required. Faults on uncommitted pages (e.g.
     * unmapped quarantined allocations — real use-after-frees) are never
     * absorbed. Must be set before the first epoch; called from a signal
     * handler, so it must be async-signal-safe.
     */
    void
    set_committed_filter(bool (*filter)(std::uintptr_t, void*), void* arg)
    {
        committed_filter_ = filter;
        committed_filter_arg_ = arg;
    }

    const char* name() const override { return "mprotect"; }
    void begin(const std::vector<Range>& ranges) override;
    void note_committed(std::uintptr_t addr, std::size_t len) override;
    void end_collect(std::vector<Range>& out) override;

    /**
     * Handler hook: returns true if @p addr was one of our write-protected
     * pages and has been restored (the faulting store can be retried).
     */
    bool handle_fault(std::uintptr_t addr);

    /** Diagnostic string for crash reports (async-signal-safe). */
    const char* describe_fault(std::uintptr_t addr) const;

  private:
    std::size_t
    page_index(std::uintptr_t addr) const
    {
        return (addr - heap_->base()) >> vm::kPageShift;
    }

    const vm::Reservation* heap_;
    vm::Reservation state_;
    /** Per-page state bytes: bit 0 = tracked (write-protected), bit 1 =
     *  dirty. Written from the signal handler, hence plain bytes accessed
     *  with atomic builtins. */
    unsigned char* page_state_ = nullptr;
    std::size_t num_pages_ = 0;
    std::vector<Range> tracked_;
    bool active_ = false;
    bool (*committed_filter_)(std::uintptr_t, void*) = nullptr;
    void* committed_filter_arg_ = nullptr;
};

/**
 * Pick the best available tracker: soft-dirty when supported, otherwise
 * the mprotect write barrier.
 */
std::unique_ptr<DirtyTracker> make_dirty_tracker(
    const vm::Reservation* heap);

}  // namespace msw::sweep
