#include "sweep/shadow_map.h"

#include <cstring>

#include "util/bits.h"
#include "util/check.h"

namespace msw::sweep {

ShadowMap::ShadowMap(std::uintptr_t heap_base, std::size_t heap_bytes)
    : heap_base_(heap_base), heap_end_(heap_base + heap_bytes)
{
    MSW_CHECK(is_aligned(heap_base, kGranuleBytes));
    MSW_CHECK(is_aligned(heap_bytes, kGranuleBytes));
    const std::size_t granules = heap_bytes / kGranuleBytes;
    num_words_ = ceil_div(granules, 64);
    space_ = vm::Reservation::reserve(num_words_ * sizeof(std::uint64_t));
    space_.commit_must(space_.base(), space_.size());
    words_ = to_ptr_of<std::atomic<std::uint64_t>>(space_.base());

    const std::size_t shadow_bytes = num_words_ * sizeof(std::uint64_t);
    num_chunks_ = ceil_div(shadow_bytes, kChunkBytes);
    chunk_space_ = vm::Reservation::reserve(
        ceil_div(num_chunks_, 64) * sizeof(std::uint64_t));
    chunk_space_.commit_must(chunk_space_.base(), chunk_space_.size());
    chunk_dirty_ = to_ptr_of<std::atomic<std::uint64_t>>(chunk_space_.base());
}

bool
ShadowMap::test_range(std::uintptr_t addr, std::size_t len) const
{
    MSW_DCHECK(len > 0);
    MSW_DCHECK(covers(addr) && covers(addr + len - 1));
    const std::size_t g_first = granule_of(addr);
    const std::size_t g_last = granule_of(addr + len - 1);
    std::size_t w = g_first / 64;
    const std::size_t w_last = g_last / 64;

    if (w == w_last) {
        std::uint64_t mask = ~std::uint64_t{0} << (g_first % 64);
        const unsigned top = static_cast<unsigned>(g_last % 64);
        if (top != 63)
            mask &= (std::uint64_t{1} << (top + 1)) - 1;
        // msw-relaxed(marker-scan): release-phase read; the scan that
        // set these bits finished before release began.
        return (words_[w].load(std::memory_order_relaxed) & mask) != 0;
    }

    // First partial word.
    const std::uint64_t head_mask = ~std::uint64_t{0} << (g_first % 64);
    // msw-relaxed(marker-scan): release-phase read; the scan that set
    // these bits finished before release began.
    if ((words_[w].load(std::memory_order_relaxed) & head_mask) != 0)
        return true;
    // Full middle words.
    for (++w; w < w_last; ++w) {
        // msw-relaxed(marker-scan): as above — post-scan read.
        if (words_[w].load(std::memory_order_relaxed) != 0)
            return true;
    }
    // Last partial word.
    const unsigned top = static_cast<unsigned>(g_last % 64);
    const std::uint64_t tail_mask =
        top == 63 ? ~std::uint64_t{0} : (std::uint64_t{1} << (top + 1)) - 1;
    // msw-relaxed(marker-scan): as above — post-scan read.
    return (words_[w_last].load(std::memory_order_relaxed) & tail_mask) != 0;
}

void
ShadowMap::clear_marks()
{
    const std::size_t chunk_words = ceil_div(num_chunks_, 64);
    for (std::size_t cw = 0; cw < chunk_words; ++cw) {
        // msw-relaxed(marker-scan): post-sweep clear; no marker runs
        // concurrently, the exchange only needs RMW atomicity.
        std::uint64_t bits =
            chunk_dirty_[cw].exchange(0, std::memory_order_relaxed);
        while (bits != 0) {
            const unsigned b = static_cast<unsigned>(
                __builtin_ctzll(bits));
            bits &= bits - 1;
            const std::size_t chunk = cw * 64 + b;
            const std::size_t byte_off = chunk * kChunkBytes;
            const std::size_t bytes =
                byte_off + kChunkBytes <= num_words_ * sizeof(std::uint64_t)
                    ? kChunkBytes
                    : num_words_ * sizeof(std::uint64_t) - byte_off;
            std::memset(to_ptr_of<char>(space_.base()) + byte_off, 0,
                        bytes);
        }
    }
}

}  // namespace msw::sweep
