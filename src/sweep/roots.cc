#include "sweep/roots.h"

#include <ucontext.h>

#include <cerrno>
#include <cstring>
#include <ctime>

#include "util/bits.h"
#include "util/check.h"
#include "util/log.h"

namespace msw::sweep {

namespace {

/** Signal used to park mutator threads for stop-the-world phases. */
constexpr int kParkSignal = SIGUSR1;

/** The calling thread's mutator record, if registered. */
thread_local MutatorThread* tls_self = nullptr;

/** Extra per-thread state the handler needs, kept out of the header. */
struct ParkControl {
    std::atomic<std::uint64_t>* resume_gen;
    std::atomic<int>* parked;
};
thread_local ParkControl tls_park{};

std::atomic<bool> g_handler_installed{false};

void
sleep_ns(long ns)
{
    struct timespec ts {
        0, ns
    };
    ::nanosleep(&ts, nullptr);
}

}  // namespace

// Out-of-line STW state (one per registry) — defined here to keep the
// header free of signal plumbing.
struct RootRegistry::StwState {
    std::atomic<std::uint64_t> resume_gen{0};
    std::atomic<int> parked{0};
};

void
RootRegistry::park_handler(int, siginfo_t*, void* ucontext)
{
    MutatorThread* self = tls_self;
    if (self == nullptr || tls_park.resume_gen == nullptr)
        return;

    // Capture the register file: a dangling pointer living only in a
    // register must still pin its allocation during the STW recheck.
    const auto* uc = static_cast<const ucontext_t*>(ucontext);
    const std::size_t n = sizeof(uc->uc_mcontext.gregs) /
                          sizeof(uc->uc_mcontext.gregs[0]);
    const std::size_t count = n < 32 ? n : 32;
    for (std::size_t i = 0; i < count; ++i)
        self->regs[i] = static_cast<std::uint64_t>(uc->uc_mcontext.gregs[i]);
    self->num_regs = static_cast<unsigned>(count);

    const std::uint64_t gen =
        tls_park.resume_gen->load(std::memory_order_acquire);
    self->parked = true;
    tls_park.parked->fetch_add(1, std::memory_order_release);
    while (tls_park.resume_gen->load(std::memory_order_acquire) == gen)
        sleep_ns(50000);
    self->parked = false;
}

void
RootRegistry::install_handler()
{
    bool expected = false;
    if (g_handler_installed.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
        struct sigaction sa;
        std::memset(&sa, 0, sizeof(sa));
        sa.sa_sigaction = &RootRegistry::park_handler;
        sa.sa_flags = SA_SIGINFO | SA_RESTART;
        sigemptyset(&sa.sa_mask);
        MSW_CHECK(sigaction(kParkSignal, &sa, nullptr) == 0);
    }
}

RootRegistry::RootRegistry() : stw_(new StwState) {}

RootRegistry::~RootRegistry()
{
    delete stw_;
}

void
RootRegistry::add_root(const void* base, std::size_t len)
{
    LockGuard g(lock_);
    roots_.push_back(Range{to_addr(base), len});
}

void
RootRegistry::remove_root(const void* base)
{
    LockGuard g(lock_);
    for (std::size_t i = 0; i < roots_.size(); ++i) {
        if (roots_[i].base == to_addr(base)) {
            roots_[i] = roots_.back();
            roots_.pop_back();
            return;
        }
    }
}

void
RootRegistry::register_current_thread()
{
    install_handler();
    MSW_CHECK(tls_self == nullptr);

    auto* t = new MutatorThread();
    t->handle = pthread_self();

    pthread_attr_t attr;
    MSW_CHECK(pthread_getattr_np(pthread_self(), &attr) == 0);
    void* stack_addr = nullptr;
    std::size_t stack_size = 0;
    MSW_CHECK(pthread_attr_getstack(&attr, &stack_addr, &stack_size) == 0);
    pthread_attr_destroy(&attr);
    t->stack = Range{to_addr(stack_addr), stack_size};

    tls_self = t;
    tls_park.resume_gen = &stw_->resume_gen;
    tls_park.parked = &stw_->parked;

    LockGuard g(lock_);
    threads_.push_back(t);
}

void
RootRegistry::unregister_current_thread()
{
    MutatorThread* t = tls_self;
    MSW_CHECK(t != nullptr);
    {
        LockGuard g(lock_);
        for (std::size_t i = 0; i < threads_.size(); ++i) {
            if (threads_[i] == t) {
                threads_[i] = threads_.back();
                threads_.pop_back();
                break;
            }
        }
    }
    tls_self = nullptr;
    tls_park = ParkControl{};
    delete t;
}

// The fork hooks hold lock_ across fork(); the pairing is enforced by
// core/lifecycle, outside what the static analysis can see.
void
RootRegistry::prepare_fork() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    lock_.lock();
}

void
RootRegistry::parent_after_fork() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    lock_.unlock();
}

void
RootRegistry::child_after_fork() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    // Any stop-the-world in flight in the parent is void here: the
    // stopper and the parked threads are all gone. Pruning the dead
    // thread records is deferred to child_fixup() — freeing them here
    // would re-enter the allocator while the forking thread still holds
    // the rest of the prepare-held hierarchy.
    world_stopped_ = false;
    stw_expected_ = 0;
    // msw-relaxed(stw-park): fork-child reset; the parked threads
    // this census counted no longer exist in this process.
    stw_->parked.store(0, std::memory_order_relaxed);
    lock_.unlock();
}

void
RootRegistry::child_fixup()
{
    // Runs in the atfork child after every prepare-held lock has been
    // released; the process is single-threaded, so the deletes below may
    // safely re-enter an interposed free(). tls_self distinguishes the
    // forking thread's own record, which survives (its stack is real in
    // the child).
    MutatorThread* self = tls_self;
    LockGuard g(lock_);
    std::size_t w = 0;
    for (std::size_t i = 0; i < threads_.size(); ++i) {
        if (threads_[i] == self) {
            threads_[w++] = threads_[i];
        } else {
            delete threads_[i];
        }
    }
    threads_.resize(w);
}

std::vector<Range>
RootRegistry::roots() const
{
    LockGuard g(lock_);
    return roots_;
}

std::vector<Range>
RootRegistry::stacks() const
{
    LockGuard g(lock_);
    std::vector<Range> out;
    out.reserve(threads_.size());
    for (const MutatorThread* t : threads_)
        out.push_back(t->stack);
    return out;
}

std::size_t
RootRegistry::num_threads() const
{
    LockGuard g(lock_);
    return threads_.size();
}

void
RootRegistry::stop_world()
{
    lock_.lock();  // held until resume_world(): registry frozen
    MSW_CHECK(!world_stopped_);
    world_stopped_ = true;
    // msw-relaxed(stw-park): census reset before any park signal is
    // sent; the handler's release increments follow it.
    stw_->parked.store(0, std::memory_order_relaxed);

    int expected = 0;
    const pthread_t self = pthread_self();
    for (MutatorThread* t : threads_) {
        if (pthread_equal(t->handle, self))
            continue;
        MSW_CHECK(pthread_kill(t->handle, kParkSignal) == 0);
        ++expected;
    }
    stw_expected_ = expected;

    const std::uint64_t deadline = 10000;  // ms
    std::uint64_t waited_us = 0;
    while (stw_->parked.load(std::memory_order_acquire) < expected) {
        sleep_ns(100000);
        waited_us += 100;
        if (waited_us > deadline * 1000)
            panic("stop_world: %d of %d threads failed to park",
                  // msw-relaxed(stw-park): diagnostic read for the
                  // panic message; the acquire poll did the real work.
                  expected -
                      stw_->parked.load(std::memory_order_relaxed),
                  expected);
    }
}

void
RootRegistry::resume_world()
{
    MSW_CHECK(world_stopped_);
    stw_->resume_gen.fetch_add(1, std::memory_order_release);
    world_stopped_ = false;
    lock_.unlock();
}

std::vector<Range>
RootRegistry::roots_stw() const
{
    MSW_CHECK(world_stopped_);
    return roots_;
}

std::vector<Range>
RootRegistry::stacks_stw() const
{
    MSW_CHECK(world_stopped_);
    std::vector<Range> out;
    out.reserve(threads_.size());
    for (const MutatorThread* t : threads_)
        out.push_back(t->stack);
    return out;
}

std::vector<Range>
RootRegistry::parked_registers() const
{
    // Only valid while the world is stopped (lock_ is held by the
    // stopper, which is the caller).
    MSW_CHECK(world_stopped_);
    std::vector<Range> out;
    const pthread_t self = pthread_self();
    for (const MutatorThread* t : threads_) {
        if (pthread_equal(t->handle, self))
            continue;
        out.push_back(Range{to_addr(&t->regs[0]),
                            t->num_regs * sizeof(std::uint64_t)});
    }
    return out;
}

}  // namespace msw::sweep
