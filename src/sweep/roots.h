/**
 * @file
 * Root registry: the non-heap memory regions a sweep must scan.
 *
 * The paper's sweeps cover "heap, stack and globals" (§4.4). In the
 * LD_PRELOAD deployment these are discovered from /proc/self/maps; as a
 * library, the embedding application (or the workload driver) registers
 * its global/root ranges explicitly, and mutator threads register
 * themselves so their stacks are scanned and they can be stopped during
 * the mostly-concurrent stop-the-world phase.
 */
#pragma once

#include <pthread.h>

#include <atomic>
#include <csignal>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/mutex.h"
#include "util/spin_lock.h"
#include "util/thread_annotations.h"

namespace msw::sweep {

/** A half-open address range. */
struct Range {
    std::uintptr_t base = 0;
    std::size_t len = 0;

    std::uintptr_t
    end() const
    {
        return base + len;
    }

    bool
    empty() const
    {
        return len == 0;
    }
};

/** Per-registered-thread record. */
struct MutatorThread {
    pthread_t handle{};
    /** Full stack range from pthread attributes. */
    Range stack;
    /** Register snapshot captured while parked (stop-the-world). */
    std::uint64_t regs[32];
    unsigned num_regs = 0;
    bool parked = false;
};

/**
 * Registry of root ranges and mutator threads. Thread-safe; sweeps take a
 * snapshot under the lock.
 */
class RootRegistry
{
  public:
    RootRegistry();
    ~RootRegistry();
    RootRegistry(const RootRegistry&) = delete;
    RootRegistry& operator=(const RootRegistry&) = delete;

    /** Register a root range (globals, object tables, ...). */
    void add_root(const void* base, std::size_t len);

    /** Remove a previously registered root range (exact match). */
    void remove_root(const void* base);

    /**
     * Register the calling thread as a mutator: its stack will be scanned
     * by sweeps and it will be suspended during stop-the-world phases.
     */
    void register_current_thread();

    /** Unregister the calling thread (must be called before it exits). */
    void unregister_current_thread();

    /** Snapshot of explicit root ranges. */
    std::vector<Range> roots() const;

    /**
     * Snapshot of the *currently live* portion of each registered mutator
     * stack (from the stack's low bound that could hold data up to its
     * top). Conservative: returns the full registered stack range.
     */
    std::vector<Range> stacks() const;

    /** Number of registered mutator threads. */
    std::size_t num_threads() const;

    // --- Stop-the-world ------------------------------------------------

    /**
     * Suspend every registered mutator thread except the caller. Parked
     * threads capture their register files, scannable via
     * parked_registers(). Must be paired with resume_world(); the registry
     * lock is held for the whole window (the capability transfers to the
     * caller).
     */
    void stop_world() MSW_ACQUIRE(lock_);

    /** Resume all threads parked by stop_world(). */
    void resume_world() MSW_RELEASE(lock_);

    /**
     * Register snapshots of parked threads (valid only between
     * stop_world() and resume_world()).
     */
    std::vector<Range> parked_registers() const MSW_REQUIRES(lock_);

    /**
     * Views for use *between* stop_world() and resume_world() (the
     * stopper holds the registry lock for the whole window, so the plain
     * accessors would self-deadlock).
     */
    std::vector<Range> roots_stw() const MSW_REQUIRES(lock_);
    std::vector<Range> stacks_stw() const MSW_REQUIRES(lock_);

    // --- atfork integration (called by core/lifecycle) ------------------

    /** Freeze the registry: fork with lock_ held, registry consistent. */
    void prepare_fork();

    /** Release the prepare-held lock in the parent. */
    void parent_after_fork();

    /**
     * Rewind any in-flight stop-the-world bookkeeping and release the
     * lock. Does not free anything — safe while the rest of the
     * prepare-held hierarchy is still held.
     */
    void child_after_fork();

    /**
     * Drop every mutator record except the calling (forking) thread's:
     * the other threads do not exist in the child, and scanning their
     * stale stack ranges — or signalling their recycled pthread ids
     * during stop-the-world — would be undefined. May re-enter the
     * allocator; call only once every prepare-held lock is released.
     */
    void child_fixup();

  private:
    struct StwState;

    static void park_handler(int sig, siginfo_t* info, void* ucontext);
    static void install_handler();

    // Rank kCoreRoots: held across the STW window, during which the
    // sweeper still dispatches work (kCoreWorkers) and marks through the
    // allocator (kExtent) — both rank higher.
    mutable SpinLock lock_{util::LockRank::kCoreRoots};
    std::vector<Range> roots_ MSW_GUARDED_BY(lock_);
    std::vector<MutatorThread*> threads_ MSW_GUARDED_BY(lock_);

    StwState* stw_ = nullptr;  // Immutable after construction.
    int stw_expected_ MSW_GUARDED_BY(lock_) = 0;
    bool world_stopped_ MSW_GUARDED_BY(lock_) = false;
};

}  // namespace msw::sweep
