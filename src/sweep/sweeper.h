/**
 * @file
 * Parallel linear sweeping (paper §3.1 phase one, §4.4).
 *
 * The marking phase is embarrassingly parallel: the scannable address
 * ranges (committed heap pages, registered roots, thread stacks) are cut
 * into chunks and handed to a pool of one main sweeper plus N helper
 * threads. Each worker interprets every aligned 64-bit word as a potential
 * pointer; values landing inside the heap reservation set the target's
 * shadow-map bit. No type information, no transitive traversal — this
 * sequential, branch-light loop is the paper's key efficiency claim over
 * MarkUs-style marking.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

#include "sweep/roots.h"
#include "sweep/shadow_map.h"

namespace msw::sweep {

/** Statistics from one marking pass. */
struct MarkStats {
    std::uint64_t bytes_scanned = 0;
    std::uint64_t pointers_found = 0;
};

/**
 * A persistent pool of helper threads. run() executes a job on every
 * helper and on the calling thread, returning when all are done.
 */
class SweepWorkers
{
  public:
    /** @param helpers Number of helper threads (0 = caller only). */
    explicit SweepWorkers(unsigned helpers);
    ~SweepWorkers();

    SweepWorkers(const SweepWorkers&) = delete;
    SweepWorkers& operator=(const SweepWorkers&) = delete;

    /** Total workers including the caller of run(). */
    unsigned
    count() const
    {
        return static_cast<unsigned>(threads_.size()) + 1;
    }

    /**
     * Run @p fn(worker_index) on every worker; index 0 is the calling
     * thread. Blocks until all invocations return. Not reentrant.
     */
    void run(const std::function<void(unsigned)>& fn);

    /** Cumulative CPU time burned by helper threads (ns). */
    std::uint64_t
    helper_cpu_ns() const
    {
        // msw-relaxed(stat-cells): statistics read; needs no ordering.
        return helper_cpu_ns_.load(std::memory_order_relaxed);
    }

    /**
     * atfork integration (called by core/lifecycle). prepare_fork()
     * waits out any dispatched job and holds mu_ across fork();
     * parent_after_fork() releases it. child_after_fork() releases it
     * and discards the inherited helper handles — the pool degrades to
     * caller-only execution in the child (count() == 1), which is the
     * documented helpers=0 mode; it is never re-grown because a child
     * of a multi-threaded fork should not spawn threads from an atfork
     * handler.
     */
    void prepare_fork();
    void parent_after_fork();
    void child_after_fork();

  private:
    void worker_loop(unsigned index);

    std::vector<std::thread> threads_;
    // Rank kCoreWorkers: run() is invoked during the STW window, i.e.
    // while the roots lock (kCoreRoots) is held.
    Mutex mu_{util::LockRank::kCoreWorkers};
    // condition_variable_any: the annotated msw::Mutex is not a
    // std::mutex, which plain std::condition_variable requires.
    std::condition_variable_any cv_work_;
    std::condition_variable_any cv_done_;
    const std::function<void(unsigned)>* job_ MSW_GUARDED_BY(mu_) = nullptr;
    std::uint64_t generation_ MSW_GUARDED_BY(mu_) = 0;
    unsigned running_ MSW_GUARDED_BY(mu_) = 0;
    bool shutdown_ MSW_GUARDED_BY(mu_) = false;
    std::atomic<std::uint64_t> helper_cpu_ns_{0};
};

/**
 * The linear marker. Stateless apart from its shadow-map / heap-bounds
 * configuration; mark_ranges() may be called repeatedly.
 */
class Marker
{
  public:
    Marker(ShadowMap* shadow, std::uintptr_t heap_base,
           std::uintptr_t heap_end)
        : shadow_(shadow), heap_base_(heap_base), heap_end_(heap_end)
    {}

    /**
     * Scan @p ranges with @p workers (nullptr = caller only), marking
     * every word that points into [heap_base, heap_end).
     */
    MarkStats mark_ranges(const std::vector<Range>& ranges,
                          SweepWorkers* workers);

    /** Scan a single range on the calling thread. */
    MarkStats mark_one(const Range& range);

  private:
    /**
     * Conservative scan: reads arbitrary resident memory (other threads'
     * stacks included) that mutators write concurrently, so ASan and
     * TSan instrumentation are off here.
     */
    MSW_NO_SANITIZE_ADDRESS MSW_NO_SANITIZE_THREAD
    void scan_chunk(std::uintptr_t lo, std::uintptr_t hi,
                    MarkStats* stats) const;

    ShadowMap* shadow_;
    std::uintptr_t heap_base_;
    std::uintptr_t heap_end_;
};

/** Split ranges into chunks of at most @p chunk_bytes for work sharing. */
std::vector<Range> chunk_ranges(const std::vector<Range>& ranges,
                                std::size_t chunk_bytes);

/**
 * Restrict @p range to its OS-resident pages (via mincore). Scanning an
 * 8 MiB thread stack would otherwise fault in every untouched page on
 * every sweep; non-resident anonymous pages are all-zero and cannot hold
 * pointers, so skipping them is exact, not approximate.
 */
void append_resident_subranges(const Range& range,
                               std::vector<Range>* out);

/** Thread CPU time of the calling thread in nanoseconds. */
std::uint64_t thread_cpu_ns();

/**
 * First nonzero byte in [p, p+n), or null when the range is all zero.
 * Word-at-a-time linear scan, the same access pattern as the mark
 * phase. The hardened allocation policy validates with this that a
 * quarantined block kept its free-time fill until release — a nonzero
 * byte there is a proven use-after-free write.
 */
const void* find_nonzero(const void* p, std::size_t n);

}  // namespace msw::sweep
