/**
 * @file
 * Committed-page bitmap over the heap reservation.
 *
 * MineSweeper's extent hooks maintain this map: commit sets page bits,
 * purge/decommit (including quarantine page-unmapping, §4.2) clears them.
 * The sweeper then scans exactly the committed pages — purged pages are
 * excluded so a sweep never faults them back in, which is the point of
 * replacing jemalloc's purge with decommit/commit (paper §4.5).
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sweep/roots.h"
#include "util/bits.h"
#include "vm/vm.h"

namespace msw::sweep {

class PageAccessMap
{
  public:
    PageAccessMap(std::uintptr_t base, std::size_t bytes)
        : base_(base), num_pages_(bytes >> vm::kPageShift)
    {
        space_ = vm::Reservation::reserve(ceil_div(num_pages_, 64) *
                                          sizeof(std::uint64_t));
        space_.commit_must(space_.base(), space_.size());
        words_ = to_ptr_of<std::atomic<std::uint64_t>>(space_.base());
    }

    PageAccessMap(const PageAccessMap&) = delete;
    PageAccessMap& operator=(const PageAccessMap&) = delete;

    /** Mark [addr, addr+len) committed. */
    void
    set_range(std::uintptr_t addr, std::size_t len)
    {
        update_range(addr, len, true);
    }

    /** Mark [addr, addr+len) not committed. */
    void
    clear_range(std::uintptr_t addr, std::size_t len)
    {
        update_range(addr, len, false);
    }

    /** True if the page containing @p addr is committed. */
    bool
    test(std::uintptr_t addr) const
    {
        const std::size_t page = page_index(addr);
        // msw-relaxed(page-map): advisory bitmap peek; callers
        // tolerate a concurrently flipping page.
        return (words_[page / 64].load(std::memory_order_relaxed) >>
                (page % 64)) &
               1u;
    }

    /** Backing storage region (for scan exclusion lists). */
    const vm::Reservation& storage() const { return space_; }

    /** Bytes currently committed. */
    std::size_t
    committed_bytes() const
    {
        // msw-relaxed(page-map): statistics read; needs no ordering.
        return committed_pages_.load(std::memory_order_relaxed)
               << vm::kPageShift;
    }

    /**
     * Coalesced runs of committed pages — the sweep's heap scan list.
     * A consistent-enough snapshot: pages committed or purged while this
     * runs may or may not appear.
     */
    std::vector<Range>
    committed_runs() const
    {
        std::vector<Range> out;
        Range run{};
        const std::size_t words = ceil_div(num_pages_, 64);
        for (std::size_t w = 0; w < words; ++w) {
            // msw-relaxed(page-map): snapshot scan; racing commits or
            // purges may or may not appear, as documented above.
            std::uint64_t bits = words_[w].load(std::memory_order_relaxed);
            if (bits == 0) {
                if (run.len != 0) {
                    out.push_back(run);
                    run = Range{};
                }
                continue;
            }
            for (unsigned b = 0; b < 64; ++b) {
                const std::size_t page = w * 64 + b;
                if (page >= num_pages_)
                    break;
                if ((bits >> b) & 1u) {
                    const std::uintptr_t addr =
                        base_ + (page << vm::kPageShift);
                    if (run.len != 0 && run.end() == addr) {
                        run.len += vm::kPageSize;
                    } else {
                        if (run.len != 0)
                            out.push_back(run);
                        run = Range{addr, vm::kPageSize};
                    }
                } else if (run.len != 0) {
                    out.push_back(run);
                    run = Range{};
                }
            }
        }
        if (run.len != 0)
            out.push_back(run);
        return out;
    }

  private:
    std::size_t
    page_index(std::uintptr_t addr) const
    {
        MSW_DCHECK(addr >= base_);
        const std::size_t page = (addr - base_) >> vm::kPageShift;
        MSW_DCHECK(page < num_pages_);
        return page;
    }

    void
    update_range(std::uintptr_t addr, std::size_t len, bool set)
    {
        MSW_DCHECK(is_aligned(addr, vm::kPageSize));
        MSW_DCHECK(is_aligned(len, vm::kPageSize));
        const std::size_t first = page_index(addr);
        const std::size_t count = len >> vm::kPageShift;
        std::int64_t delta = 0;
        for (std::size_t p = first; p < first + count; ++p) {
            auto* word = &words_[p / 64];
            const std::uint64_t bit = std::uint64_t{1} << (p % 64);
            const std::uint64_t old =
                // msw-relaxed(page-map): bit flips need only RMW
                // atomicity; the VM layer orders commit vs. access.
                set ? word->fetch_or(bit, std::memory_order_relaxed)
                    : word->fetch_and(~bit, std::memory_order_relaxed);
            const bool was_set = (old & bit) != 0;
            if (set && !was_set)
                ++delta;
            else if (!set && was_set)
                --delta;
        }
        // msw-relaxed(page-map): statistics counter; needs no ordering.
        committed_pages_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uintptr_t base_;
    std::size_t num_pages_;
    vm::Reservation space_;
    std::atomic<std::uint64_t>* words_ = nullptr;
    std::atomic<std::int64_t> committed_pages_{0};
};

}  // namespace msw::sweep
