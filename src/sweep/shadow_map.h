/**
 * @file
 * The shadow map: one mark bit per 16 B granule of the heap reservation
 * (paper §3.2, Figure 5).
 *
 * During the marking phase of a sweep, every word of scanned memory that
 * looks like a pointer into the heap sets the bit for its target granule.
 * The release phase then tests, for each quarantined allocation, whether
 * any bit in the allocation's granule range is set; a set bit means a
 * (possible) dangling pointer and the allocation stays in quarantine.
 *
 * The bit-space is flat over the heap reservation (< 1 % of heap size).
 * Clearing between sweeps is made cheap by tracking which 64 KiB chunks of
 * shadow were touched, so only those are zeroed.
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/bits.h"
#include "vm/vm.h"

namespace msw::sweep {

class ShadowMap
{
  public:
    /** Granule size: one mark bit covers this many bytes of heap. */
    static constexpr std::size_t kGranuleBytes = 16;

    /** Shadow chunk granularity for dirty tracking (bytes of shadow). */
    static constexpr std::size_t kChunkBytes = 64 * 1024;

    /**
     * Create a shadow map covering [heap_base, heap_base + heap_bytes).
     * @p heap_base must be 16-byte aligned; @p heap_bytes a multiple of 16.
     */
    ShadowMap(std::uintptr_t heap_base, std::size_t heap_bytes);

    ShadowMap(const ShadowMap&) = delete;
    ShadowMap& operator=(const ShadowMap&) = delete;

    /** True if @p addr falls inside the covered heap range. */
    bool
    covers(std::uintptr_t addr) const
    {
        return addr >= heap_base_ && addr < heap_end_;
    }

    /** Set the mark bit for the granule containing @p addr (atomic). */
    void
    mark(std::uintptr_t addr)
    {
        const std::size_t g = granule_of(addr);
        auto* word = &words_[g / 64];
        const std::uint64_t bit = std::uint64_t{1} << (g % 64);
        // Avoid the RMW when the bit is already set (common for hot
        // targets); the load is much cheaper than a contended lock;or.
        // msw-relaxed(marker-scan): mark bits carry no payload; the
        // sweep phase change orders set-during-scan vs read-at-release.
        if ((word->load(std::memory_order_relaxed) & bit) == 0) {
            word->fetch_or(bit, std::memory_order_relaxed);
            note_chunk_dirty(g);
        }
    }

    /**
     * Atomically set the bit for @p addr's granule, returning its
     * previous value (used for double-free de-duplication).
     */
    bool
    test_and_set(std::uintptr_t addr)
    {
        const std::size_t g = granule_of(addr);
        const std::uint64_t bit = std::uint64_t{1} << (g % 64);
        const bool was_set =
            (words_[g / 64].fetch_or(bit, std::memory_order_acq_rel) &
             bit) != 0;
        if (!was_set)
            note_chunk_dirty(g);
        return was_set;
    }

    /** Clear the mark bit for the granule containing @p addr (atomic). */
    void
    clear(std::uintptr_t addr)
    {
        const std::size_t g = granule_of(addr);
        // msw-relaxed(marker-scan): mark bits carry no payload; only
        // RMW atomicity against neighbouring bits matters.
        words_[g / 64].fetch_and(~(std::uint64_t{1} << (g % 64)),
                                 std::memory_order_relaxed);
    }

    /** True if the granule containing @p addr is marked. */
    bool
    test(std::uintptr_t addr) const
    {
        const std::size_t g = granule_of(addr);
        // msw-relaxed(marker-scan): advisory peek; mark bits carry
        // no payload.
        return (words_[g / 64].load(std::memory_order_relaxed) >>
                (g % 64)) &
               1u;
    }

    /**
     * True if any granule intersecting [addr, addr+len) is marked.
     * This is the release-phase test: a set bit anywhere in the
     * allocation's range (including interior pointers) pins it.
     */
    bool test_range(std::uintptr_t addr, std::size_t len) const;

    /** Clear every mark bit touched since the last clear. */
    void clear_marks();

    /** Total size of the shadow bit-space in bytes (for stats). */
    std::size_t
    shadow_bytes() const
    {
        return num_words_ * sizeof(std::uint64_t);
    }

    /** Backing storage regions (for scan exclusion lists). */
    const vm::Reservation& storage() const { return space_; }
    const vm::Reservation& chunk_storage() const { return chunk_space_; }

  private:
    std::size_t
    granule_of(std::uintptr_t addr) const
    {
        MSW_DCHECK(covers(addr));
        return (addr - heap_base_) / kGranuleBytes;
    }

    /** Record that granule @p g's shadow chunk was touched (for clears). */
    void
    note_chunk_dirty(std::size_t g)
    {
        const std::size_t chunk =
            (g / 64) * sizeof(std::uint64_t) / kChunkBytes;
        auto* cword = &chunk_dirty_[chunk / 64];
        const std::uint64_t cbit = std::uint64_t{1} << (chunk % 64);
        // msw-relaxed(marker-scan): dirty-chunk hint for the clearing
        // pass; losing an order costs nothing, bits carry no payload.
        if ((cword->load(std::memory_order_relaxed) & cbit) == 0)
            cword->fetch_or(cbit, std::memory_order_relaxed);
    }

    std::uintptr_t heap_base_;
    std::uintptr_t heap_end_;
    vm::Reservation space_;
    vm::Reservation chunk_space_;
    std::atomic<std::uint64_t>* words_ = nullptr;
    std::atomic<std::uint64_t>* chunk_dirty_ = nullptr;
    std::size_t num_words_ = 0;
    std::size_t num_chunks_ = 0;
};

}  // namespace msw::sweep
