#include "util/rng.h"

#include <unistd.h>

#include <atomic>
#include <ctime>

namespace msw {

namespace {

/** Bumped in the atfork child so stale thread engines reseed. */
std::atomic<std::uint64_t> g_rng_generation{1};

std::uint64_t
entropy_seed()
{
    // Clock + pid + a per-seed counter, whitened through splitmix64. No
    // /dev/urandom dependency: this must work during early LD_PRELOAD
    // bootstrap and right after fork.
    static std::atomic<std::uint64_t> counter{0};
    timespec ts{};
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    SplitMix64 sm(static_cast<std::uint64_t>(ts.tv_nsec) ^
                  (static_cast<std::uint64_t>(ts.tv_sec) << 20) ^
                  (static_cast<std::uint64_t>(::getpid()) << 40) ^
                  // msw-relaxed(fork-window): entropy mix-in; RMW
                  // atomicity decorrelates concurrent seeders.
                  counter.fetch_add(0x9e3779b9u, std::memory_order_relaxed));
    return sm.next();
}

struct ThreadRng {
    Rng rng{0};
    std::uint64_t generation = 0;  // 0 = never seeded
};

thread_local ThreadRng tls_rng;

}  // namespace

Rng&
thread_rng()
{
    // msw-relaxed(fork-window): generation check; the fork child is
    // single-threaded when it bumps, so no ordering is needed.
    const std::uint64_t gen =
        g_rng_generation.load(std::memory_order_relaxed);
    if (__builtin_expect(tls_rng.generation != gen, 0)) {
        tls_rng.rng = Rng(entropy_seed());
        tls_rng.generation = gen;
    }
    return tls_rng.rng;
}

void
rng_note_fork_child()
{
    // msw-relaxed(fork-window): the child is single-threaded here;
    // nothing can race the bump.
    g_rng_generation.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
rng_generation()
{
    // msw-relaxed(fork-window): diagnostic read for tests.
    return g_rng_generation.load(std::memory_order_relaxed);
}

}  // namespace msw
