/**
 * @file
 * Runtime lock-rank (lock-order) validation.
 *
 * The static thread-safety analysis (util/thread_annotations.h) proves
 * which lock guards which field, but it cannot see *dynamic* acquisition
 * order — e.g. a sweeper callback re-entering the allocator. This module
 * encodes the global locking hierarchy as a total order of ranks and
 * checks, per thread, that locks are only ever acquired in strictly
 * increasing rank order. Violations terminate via msw::panic() with a
 * "lock rank inversion" diagnostic.
 *
 * The global order (see DESIGN.md "Locking hierarchy") is
 *
 *   core -> quarantine -> bin -> extent -> vm -> metrics
 *
 * with sub-ranks inside each band for locks of the same subsystem that
 * legitimately nest (e.g. the quarantine's buffer registry is taken
 * before the quarantine epoch lock). Same-rank acquisition while a lock
 * of that rank is held is an inversion: two bin locks must never nest.
 *
 * Cost model: when checking is disabled, every lock/unlock pays one
 * relaxed atomic load and a predicted branch (same pattern as the
 * failpoint fast path). Checking defaults to ON in debug builds
 * (NDEBUG undefined) and OFF otherwise; MSW_LOCK_RANK=0/1 in the
 * environment overrides, and tests can flip it programmatically.
 *
 * try_lock-style acquisitions are exempt from the order check (they
 * cannot deadlock) but still push their rank so later blocking
 * acquisitions are validated against them.
 */
#pragma once

#include <atomic>
#include <cstdint>

namespace msw::util {

/**
 * Global acquisition order. Numeric value IS the rank: a thread may only
 * block on a lock whose rank is strictly greater than every rank it
 * already holds. Bands are spaced so future locks can slot in.
 */
enum class LockRank : std::uint8_t {
    // -- lifecycle band: process-wide runtime registry ------------------
    kLifecycle = 4,  ///< atfork/lifecycle registry; taken before all else.

    // -- core band: sweeper control & orchestration --------------------
    kCoreControl = 10,  ///< Sweeper/marker control mutexes (sweep_mu_).
    kCoreRoots = 12,    ///< RootRegistry (held across the STW window).
    kCoreWorkers = 14,  ///< SweepWorkers job dispatch.
    kCoreUnmap = 16,    ///< Deferred-unmap queues.
    kCoreConfig = 18,   ///< Runtime configuration (extra-roots provider).

    // -- quarantine band ------------------------------------------------
    kQuarantineRegistry = 20,  ///< Thread-buffer registry (process-wide).
    kQuarantine = 22,          ///< Quarantine epoch lists.

    // -- bin band --------------------------------------------------------
    kBinRegistry = 30,  ///< Thread-cache registry (process-wide).
    kBin = 32,          ///< Slab bins, FFMalloc per-class pools.

    // -- extent band -----------------------------------------------------
    kExtent = 40,      ///< Extent allocator / FFMalloc frontier.
    kExtentMeta = 42,  ///< Out-of-line metadata pool.

    // -- vm band ---------------------------------------------------------
    kVm = 50,  ///< Reserved for VM-layer locks (currently lock-free).

    // -- metrics band (leaf) ---------------------------------------------
    kMetrics = 60,  ///< Samplers, failpoint policy table, diagnostics.

    /** Opted out of rank checking (workload/test-local locks). */
    kUnranked = 255,
};

/** Human-readable band name for diagnostics ("bin", "extent", ...). */
const char* lock_rank_name(LockRank rank);

/** Enable/disable checking at runtime (overrides the build default). */
void lock_rank_set_enabled(bool enabled);

/** Number of ranked locks the calling thread currently holds (tests). */
int lock_rank_held_count();

/**
 * Open/close an atfork bulk-acquisition window on the calling thread.
 *
 * The pthread_atfork prepare handler must acquire *every* lock in the
 * hierarchy, including whole arrays of same-rank locks (all the bin
 * locks, both quarantine locks of a registry band). Under the normal
 * rule — strictly increasing rank — the second lock of a rank would be
 * reported as an inversion, and forty bin locks would overflow the
 * fixed per-thread stack. Inside the window, equal-rank blocking
 * acquisitions are legal and are *coalesced* into the single stack
 * entry already holding that rank; acquiring a rank strictly below the
 * top is still an inversion and still panics, so a genuinely misordered
 * atfork cycle is caught rather than masked.
 */
void lock_rank_fork_begin();
void lock_rank_fork_end();

/**
 * Forget every rank the calling thread holds. Only legal where the
 * locks themselves are known to be reset or owned — the atfork child
 * handler after it has released the prepare-held hierarchy.
 */
void lock_rank_reset_thread();

namespace detail {

extern std::atomic<bool> g_lock_rank_enabled;

void lock_rank_acquire_slow(LockRank rank);
void lock_rank_try_acquire_slow(LockRank rank);
void lock_rank_release_slow(LockRank rank);

}  // namespace detail

/** True if rank checking is currently active. */
inline bool
lock_rank_checks_enabled()
{
    // msw-relaxed(config-flag): debug toggle read on every lock
    // acquisition; staleness is harmless, cheapness is the point.
    return detail::g_lock_rank_enabled.load(std::memory_order_relaxed);
}

/**
 * Record a blocking acquisition of @p rank; panics on out-of-order
 * acquisition. Call *before* blocking on the lock so inversions are
 * reported instead of deadlocking.
 */
inline void
lock_rank_acquire(LockRank rank)
{
    if (__builtin_expect(rank != LockRank::kUnranked &&
                             lock_rank_checks_enabled(),
                         0)) {
        detail::lock_rank_acquire_slow(rank);
    }
}

/** Record a successful try_lock of @p rank (no order check). */
inline void
lock_rank_try_acquire(LockRank rank)
{
    if (__builtin_expect(rank != LockRank::kUnranked &&
                             lock_rank_checks_enabled(),
                         0)) {
        detail::lock_rank_try_acquire_slow(rank);
    }
}

/** Record the release of @p rank. */
inline void
lock_rank_release(LockRank rank)
{
    if (__builtin_expect(rank != LockRank::kUnranked &&
                             lock_rank_checks_enabled(),
                         0)) {
        detail::lock_rank_release_slow(rank);
    }
}

}  // namespace msw::util
