#include "util/log.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace msw {

namespace {

int
initial_level()
{
    // Runs once under the static-local guard in log_level_ref(); nothing
    // in this process writes the environment concurrently.
    const char* env = std::getenv("MSW_LOG");  // NOLINT(concurrency-mt-unsafe)
    if (env == nullptr)
        return static_cast<int>(LogLevel::kWarn);
    if (std::strcmp(env, "error") == 0)
        return static_cast<int>(LogLevel::kError);
    if (std::strcmp(env, "warn") == 0)
        return static_cast<int>(LogLevel::kWarn);
    if (std::strcmp(env, "info") == 0)
        return static_cast<int>(LogLevel::kInfo);
    if (std::strcmp(env, "debug") == 0)
        return static_cast<int>(LogLevel::kDebug);
    return static_cast<int>(LogLevel::kWarn);
}

const char*
level_name(LogLevel level)
{
    switch (level) {
      case LogLevel::kError:
        return "E";
      case LogLevel::kWarn:
        return "W";
      case LogLevel::kInfo:
        return "I";
      case LogLevel::kDebug:
        return "D";
    }
    return "?";
}

}  // namespace

namespace detail {

std::atomic<int>&
log_level_ref()
{
    static std::atomic<int> level{initial_level()};
    return level;
}

void
log_write(LogLevel level, const char* fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "[msw/%s] %s\n", level_name(level), buf);
}

}  // namespace detail

void
set_log_level(LogLevel level)
{
    // msw-relaxed(config-flag): log verbosity toggle; a late-observed
    // flip only mis-levels a message or two.
    detail::log_level_ref().store(static_cast<int>(level),
                                  std::memory_order_relaxed);
}

}  // namespace msw
