#include "util/lock_rank.h"

#include <cstdlib>

#include "util/check.h"

namespace msw::util {

namespace {

/**
 * Per-thread stack of held ranks. Plain POD thread_local storage: this
 * code runs inside malloc/free, so it must never allocate. Depth 16 is
 * far above the deepest real nesting (bin -> extent -> metadata -> vm
 * hooks is four).
 */
constexpr int kMaxHeldLocks = 16;

thread_local LockRank t_held[kMaxHeldLocks];
thread_local int t_depth = 0;

/** Nesting depth of atfork bulk-acquisition windows (normally 0/1). */
thread_local int t_fork_window = 0;

bool
initial_enabled()
{
    if (const char* env = std::getenv("MSW_LOCK_RANK")) {
        return env[0] == '1' || env[0] == 'y' || env[0] == 'Y' ||
               env[0] == 't' || env[0] == 'T';
    }
#ifdef NDEBUG
    return false;
#else
    return true;
#endif
}

void
push_rank(LockRank rank)
{
    MSW_CHECK(t_depth < kMaxHeldLocks);
    t_held[t_depth++] = rank;
}

}  // namespace

namespace detail {

std::atomic<bool> g_lock_rank_enabled{initial_enabled()};

void
lock_rank_acquire_slow(LockRank rank)
{
    if (t_depth > 0) {
        const LockRank top = t_held[t_depth - 1];
        if (t_fork_window > 0 && rank == top) {
            // atfork bulk window: same-rank arrays (bin locks, registry
            // bands) coalesce into the entry already on the stack.
            return;
        }
        if (static_cast<std::uint8_t>(rank) <=
            static_cast<std::uint8_t>(top)) {
            panic("lock rank inversion: acquiring %s (%u) while holding "
                  "%s (%u); the global order is core -> quarantine -> bin "
                  "-> extent -> vm -> metrics (see DESIGN.md)",
                  lock_rank_name(rank), static_cast<unsigned>(rank),
                  lock_rank_name(top), static_cast<unsigned>(top));
        }
    }
    push_rank(rank);
}

void
lock_rank_try_acquire_slow(LockRank rank)
{
    // try_lock cannot deadlock, so out-of-order attempts are legal; the
    // acquired rank still joins the stack so blocking acquisitions made
    // while it is held are validated against it.
    push_rank(rank);
}

void
lock_rank_release_slow(LockRank rank)
{
    // Locks are normally released LIFO, but out-of-order release is legal
    // (e.g. unique_lock juggling): remove the topmost matching entry.
    for (int i = t_depth - 1; i >= 0; --i) {
        if (t_held[i] == rank) {
            for (int j = i; j + 1 < t_depth; ++j)
                t_held[j] = t_held[j + 1];
            --t_depth;
            return;
        }
    }
    // Not found: the lock was acquired while checking was disabled (or on
    // another thread, which is a plain bug the lock itself will expose).
    // Tolerate it so flipping the gate mid-run stays safe.
}

}  // namespace detail

const char*
lock_rank_name(LockRank rank)
{
    switch (rank) {
    case LockRank::kLifecycle:
        return "lifecycle";
    case LockRank::kCoreControl:
        return "core/control";
    case LockRank::kCoreRoots:
        return "core/roots";
    case LockRank::kCoreWorkers:
        return "core/workers";
    case LockRank::kCoreUnmap:
        return "core/unmap";
    case LockRank::kCoreConfig:
        return "core/config";
    case LockRank::kQuarantineRegistry:
        return "quarantine/registry";
    case LockRank::kQuarantine:
        return "quarantine";
    case LockRank::kBinRegistry:
        return "bin/registry";
    case LockRank::kBin:
        return "bin";
    case LockRank::kExtent:
        return "extent";
    case LockRank::kExtentMeta:
        return "extent/meta";
    case LockRank::kVm:
        return "vm";
    case LockRank::kMetrics:
        return "metrics";
    case LockRank::kUnranked:
        return "unranked";
    }
    return "?";
}

void
lock_rank_set_enabled(bool enabled)
{
    // msw-relaxed(config-flag): debug toggle; threads may observe the
    // flip late and simply check (or skip) a few extra acquisitions.
    detail::g_lock_rank_enabled.store(enabled, std::memory_order_relaxed);
}

int
lock_rank_held_count()
{
    return t_depth;
}

void
lock_rank_fork_begin()
{
    ++t_fork_window;
}

void
lock_rank_fork_end()
{
    MSW_CHECK(t_fork_window > 0);
    --t_fork_window;
}

void
lock_rank_reset_thread()
{
    t_depth = 0;
}

}  // namespace msw::util
