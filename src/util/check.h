/**
 * @file
 * Fatal-error and invariant-checking helpers.
 *
 * Allocator code cannot use exceptions on its hot paths (it may be called
 * underneath code that itself cannot unwind, e.g. the LD_PRELOAD shim), so
 * invariant violations terminate via abort() after printing a diagnostic.
 *
 * MSW_CHECK   — always-on invariant; aborts on failure.
 * MSW_DCHECK  — debug-only invariant; compiled out in NDEBUG builds.
 * msw::panic  — unconditional "this is a bug" termination.
 * msw::fatal  — unconditional "user/environment error" termination.
 */
#pragma once

#include <cstdio>
#include <cstdlib>

namespace msw {

/** Print a formatted message describing an internal bug and abort(). */
[[noreturn]] [[gnu::format(printf, 1, 2)]]
void panic(const char* fmt, ...);

/**
 * Print a formatted message describing an unrecoverable environment or
 * configuration error (not a bug in this library) and exit(1).
 */
[[noreturn]] [[gnu::format(printf, 1, 2)]]
void fatal(const char* fmt, ...);

namespace detail {

[[noreturn]]
void check_failed(const char* cond, const char* file, int line);

}  // namespace detail

}  // namespace msw

#define MSW_CHECK(cond)                                               \
    do {                                                              \
        if (__builtin_expect(!(cond), 0)) {                           \
            ::msw::detail::check_failed(#cond, __FILE__, __LINE__);   \
        }                                                             \
    } while (0)

#ifdef NDEBUG
#define MSW_DCHECK(cond)           \
    do {                           \
        (void)sizeof((cond) ? 1 : 0); \
    } while (0)
#else
#define MSW_DCHECK(cond) MSW_CHECK(cond)
#endif
