#include "util/check.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace msw {

namespace {

void
vreport(const char* kind, const char* fmt, va_list ap)
{
    std::fprintf(stderr, "[msw %s] ", kind);
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    std::fflush(stderr);
}

}  // namespace

void
panic(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

namespace detail {

void
check_failed(const char* cond, const char* file, int line)
{
    panic("check failed: %s (%s:%d)", cond, file, line);
}

}  // namespace detail

}  // namespace msw
