/**
 * @file
 * Async-signal-safe output primitives.
 *
 * The crash-report path (core/lifecycle) runs inside a SIGSEGV/SIGBUS
 * handler, where the only legal I/O is write(2) on pre-formatted bytes:
 * no malloc, no stdio locks, no iostreams, no locale machinery. This
 * module provides the minimal formatting kit that path needs — string,
 * decimal and hexadecimal emission into a fixed on-stack buffer that is
 * flushed with plain write(2) — and nothing more.
 *
 * POSIX's async-signal-safe list (signal-safety(7)) admits write(2) but
 * none of printf/snprintf (they may take locks or allocate in some libc
 * builds); every routine here is a loop over a caller-owned char array.
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace msw::util {

/**
 * Buffered async-signal-safe writer.
 *
 * Accumulates into an internal fixed buffer and flushes to @p fd with
 * write(2) when full and on destruction. All methods are reentrancy- and
 * signal-safe: no allocation, no locks, no errno-clobbering libc calls
 * other than write(2) itself (whose errno effect the caller's handler
 * must already tolerate — crash handlers terminate afterwards anyway).
 */
class SigsafeWriter
{
  public:
    explicit SigsafeWriter(int fd) : fd_(fd) {}

    SigsafeWriter(const SigsafeWriter&) = delete;
    SigsafeWriter& operator=(const SigsafeWriter&) = delete;

    ~SigsafeWriter() { flush(); }

    /** Append a NUL-terminated string (ignored if null). */
    void str(const char* s);

    /** Append an unsigned decimal. */
    void dec(std::uint64_t v);

    /** Append a signed decimal. */
    void sdec(std::int64_t v);

    /** Append "0x" plus lowercase hex (no leading zeros, "0x0" for 0). */
    void hex(std::uint64_t v);

    /** Write buffered bytes to the fd; safe to call repeatedly. */
    void flush();

  private:
    void put(char c);

    int fd_;
    std::size_t len_ = 0;
    char buf_[512];
};

}  // namespace msw::util
