/**
 * @file
 * Clang thread-safety (capability) analysis macros.
 *
 * MineSweeper's value proposition rests on a *mostly-concurrent* sweep
 * racing malloc/free across bin, extent, quarantine and sweeper locks.
 * These macros let Clang prove, at compile time, that every access to a
 * lock-protected field happens under the right lock and that functions
 * document the locks they require. Under GCC (no capability analysis)
 * every macro expands to nothing.
 *
 * Build with `-DMSW_THREAD_SAFETY=ON` (Clang only) to turn the analysis
 * into hard errors: `-Wthread-safety -Wthread-safety-beta
 * -Werror=thread-safety`.
 *
 * Usage pattern (see util/spin_lock.h and util/mutex.h):
 *
 *   class MSW_CAPABILITY("mutex") SpinLock { ... };
 *   SpinLock lock_;
 *   int value_ MSW_GUARDED_BY(lock_);
 *   void refill() MSW_REQUIRES(lock_);
 *
 * std::lock_guard / std::unique_lock are *not* annotation-aware; use
 * msw::LockGuard / msw::UniqueLock (util/mutex.h) instead.
 */
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define MSW_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MSW_THREAD_ANNOTATION(x)  // no-op: GCC has no capability analysis
#endif

/** Marks a class as a lockable capability (e.g. "mutex"). */
#define MSW_CAPABILITY(x) MSW_THREAD_ANNOTATION(capability(x))

/** Marks an RAII class that acquires a capability for its lifetime. */
#define MSW_SCOPED_CAPABILITY MSW_THREAD_ANNOTATION(scoped_lockable)

/** Field is protected by capability @p x; access requires holding it. */
#define MSW_GUARDED_BY(x) MSW_THREAD_ANNOTATION(guarded_by(x))

/** Pointed-to data is protected by capability @p x. */
#define MSW_PT_GUARDED_BY(x) MSW_THREAD_ANNOTATION(pt_guarded_by(x))

/** This capability must be acquired before the listed ones. */
#define MSW_ACQUIRED_BEFORE(...) \
    MSW_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/** This capability must be acquired after the listed ones. */
#define MSW_ACQUIRED_AFTER(...) \
    MSW_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Function requires the listed capabilities held (and does not release). */
#define MSW_REQUIRES(...) \
    MSW_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function requires the listed capabilities held in shared mode. */
#define MSW_REQUIRES_SHARED(...) \
    MSW_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Function acquires the listed capabilities (held on return). */
#define MSW_ACQUIRE(...) \
    MSW_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function acquires the listed capabilities in shared mode. */
#define MSW_ACQUIRE_SHARED(...) \
    MSW_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/** Function releases the listed capabilities (must be held on entry). */
#define MSW_RELEASE(...) \
    MSW_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function releases shared capabilities. */
#define MSW_RELEASE_SHARED(...) \
    MSW_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/**
 * Function attempts acquisition; holds the capability iff it returned
 * @p success (usually `true` as the first argument).
 */
#define MSW_TRY_ACQUIRE(...) \
    MSW_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define MSW_TRY_ACQUIRE_SHARED(...) \
    MSW_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/** Caller must NOT hold the listed capabilities (non-reentrancy). */
#define MSW_EXCLUDES(...) MSW_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Assert (at runtime, for the analysis) that the capability is held. */
#define MSW_ASSERT_CAPABILITY(x) \
    MSW_THREAD_ANNOTATION(assert_capability(x))

/** Function returns a reference to the given capability. */
#define MSW_RETURN_CAPABILITY(x) MSW_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch: disable the analysis for one function. */
#define MSW_NO_THREAD_SAFETY_ANALYSIS \
    MSW_THREAD_ANNOTATION(no_thread_safety_analysis)

/**
 * Exempt a function from AddressSanitizer instrumentation. For the
 * conservative scanner only: it deliberately reads whole resident stack
 * and heap ranges, including redzones and dead frames of *other*
 * threads, which is exactly what ASan exists to flag.
 */
#if defined(__clang__) || defined(__GNUC__)
#define MSW_NO_SANITIZE_ADDRESS __attribute__((no_sanitize_address))
#else
#define MSW_NO_SANITIZE_ADDRESS
#endif

/**
 * Exempt a function from ThreadSanitizer instrumentation. Same audience
 * as MSW_NO_SANITIZE_ADDRESS: the conservative scanner's reads race
 * mutator writes *by design* (fully-concurrent marking tolerates torn
 * and stale words, paper §4.3), and TSan reports the pair even when the
 * scanner side uses relaxed atomic loads.
 */
#if defined(__clang__) || defined(__GNUC__)
#define MSW_NO_SANITIZE_THREAD __attribute__((no_sanitize_thread))
#else
#define MSW_NO_SANITIZE_THREAD
#endif
