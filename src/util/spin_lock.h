/**
 * @file
 * Small locking primitives for allocator-internal synchronisation. A
 * test-and-test-and-set spin lock with exponential pause backoff is used for
 * short critical sections (bin operations, quarantine buffer flushes); it
 * satisfies the Lockable named requirement so it composes with
 * std::lock_guard / std::scoped_lock.
 */
#pragma once

#include <atomic>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace msw {

/** CPU pause hint for spin loops. */
inline void
cpu_relax()
{
#if defined(__x86_64__)
    _mm_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/** TTAS spin lock with bounded exponential backoff. */
class SpinLock
{
  public:
    SpinLock() = default;
    SpinLock(const SpinLock&) = delete;
    SpinLock& operator=(const SpinLock&) = delete;

    void
    lock()
    {
        int spins = 1;
        for (;;) {
            if (!locked_.exchange(true, std::memory_order_acquire))
                return;
            while (locked_.load(std::memory_order_relaxed)) {
                for (int i = 0; i < spins; ++i)
                    cpu_relax();
                if (spins < 1024)
                    spins <<= 1;
            }
        }
    }

    bool
    try_lock()
    {
        return !locked_.load(std::memory_order_relaxed) &&
               !locked_.exchange(true, std::memory_order_acquire);
    }

    void
    unlock()
    {
        locked_.store(false, std::memory_order_release);
    }

  private:
    std::atomic<bool> locked_{false};
};

}  // namespace msw
