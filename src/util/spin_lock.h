/**
 * @file
 * Small locking primitives for allocator-internal synchronisation. A
 * test-and-test-and-set spin lock with exponential pause backoff is used for
 * short critical sections (bin operations, quarantine buffer flushes); it
 * satisfies the Lockable named requirement so it composes with
 * std::lock_guard / std::scoped_lock — but prefer msw::LockGuard
 * (util/mutex.h), which the Clang thread-safety analysis understands.
 *
 * SpinLock is a capability for that analysis and participates in runtime
 * lock-rank validation when constructed with a LockRank (util/lock_rank.h).
 */
#pragma once

#include <atomic>

#include "util/lock_rank.h"
#include "util/thread_annotations.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace msw {

/** CPU pause hint for spin loops. */
inline void
cpu_relax()
{
#if defined(__x86_64__)
    _mm_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/** TTAS spin lock with bounded exponential backoff. */
class MSW_CAPABILITY("mutex") SpinLock
{
  public:
    constexpr SpinLock() = default;

    /** A lock participating in lock-rank validation (util/lock_rank.h). */
    constexpr explicit SpinLock(util::LockRank rank) : rank_(rank) {}

    SpinLock(const SpinLock&) = delete;
    SpinLock& operator=(const SpinLock&) = delete;

    void
    lock() MSW_ACQUIRE()
    {
        // Validate the rank before blocking so inversions are reported
        // instead of deadlocking.
        util::lock_rank_acquire(rank_);
        int spins = 1;
        for (;;) {
            if (!locked_.exchange(true, std::memory_order_acquire))
                return;
            // msw-relaxed(spin-lock): test-and-test-and-set inner
            // spin; the acquiring exchange above re-validates.
            while (locked_.load(std::memory_order_relaxed)) {
                for (int i = 0; i < spins; ++i)
                    cpu_relax();
                if (spins < 1024)
                    spins <<= 1;
            }
        }
    }

    bool
    try_lock() MSW_TRY_ACQUIRE(true)
    {
        // msw-relaxed(spin-lock): cheap pre-check; the acquiring
        // exchange re-validates under acquire ordering.
        if (!locked_.load(std::memory_order_relaxed) &&
            !locked_.exchange(true, std::memory_order_acquire)) {
            util::lock_rank_try_acquire(rank_);
            return true;
        }
        return false;
    }

    void
    unlock() MSW_RELEASE()
    {
        util::lock_rank_release(rank_);
        locked_.store(false, std::memory_order_release);
    }

  private:
    std::atomic<bool> locked_{false};
    util::LockRank rank_ = util::LockRank::kUnranked;
};

}  // namespace msw
