/**
 * @file
 * Deterministic pseudo-random number generation and the distributions used
 * by the synthetic workload generators.
 *
 * The standard <random> distributions are implementation-defined, which
 * would make workload traces differ between standard libraries. All
 * distributions here are implemented from first principles on top of a
 * xoshiro256** engine, so a (seed, parameters) pair identifies a trace
 * exactly, on any platform.
 */
#pragma once

#include <cmath>
#include <cstdint>

#include "util/check.h"

namespace msw {

/** splitmix64 — used to expand a single seed into engine state. */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state_;
};

/**
 * xoshiro256** 1.0 (Blackman & Vigna) — fast, high-quality, deterministic.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed)
    {
        SplitMix64 sm(seed);
        for (auto& s : s_)
            s = sm.next();
    }

    /** Uniform 64-bit value. */
    std::uint64_t
    next_u64()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    next_below(std::uint64_t bound)
    {
        MSW_DCHECK(bound != 0);
        // Lemire's multiply-shift rejection method (unbiased).
        std::uint64_t x = next_u64();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            const std::uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                x = next_u64();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform in [lo, hi] inclusive. */
    std::uint64_t
    next_range(std::uint64_t lo, std::uint64_t hi)
    {
        MSW_DCHECK(lo <= hi);
        return lo + next_below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    next_double()
    {
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p. */
    bool
    next_bool(double p)
    {
        return next_double() < p;
    }

    /** Standard normal via Box-Muller (no cached spare: keeps state simple). */
    double
    next_normal()
    {
        double u1 = next_double();
        double u2 = next_double();
        while (u1 <= 1e-300) {
            u1 = next_double();
        }
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * 3.14159265358979323846 * u2);
    }

    /** Exponential with mean @p mean. */
    double
    next_exponential(double mean)
    {
        double u = next_double();
        while (u <= 1e-300) {
            u = next_double();
        }
        return -mean * std::log(u);
    }

    /** Log-normal: exp(N(mu, sigma)). */
    double
    next_lognormal(double mu, double sigma)
    {
        return std::exp(mu + sigma * next_normal());
    }

    /**
     * Bounded Pareto-ish heavy tail: returns values >= 1 with tail index
     * @p alpha, truncated at @p max_value.
     */
    double
    next_pareto(double alpha, double max_value)
    {
        double u = next_double();
        while (u <= 1e-300) {
            u = next_double();
        }
        const double v = std::pow(u, -1.0 / alpha);
        return v > max_value ? max_value : v;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

/**
 * The calling thread's engine for *non-deterministic* randomness — the
 * hardened allocation policy's slot placement, reuse order and release
 * shuffling. Unlike the workload engines above it is seeded from local
 * entropy (clock, pid, a per-seed counter), never from a fixed seed.
 *
 * Fork-safe: fork duplicates thread-local engine state, and a child
 * continuing the parent's stream would make its heap layout predictable
 * from the parent's. core/lifecycle bumps a process-wide generation in
 * its atfork child handler (rng_note_fork_child); the next thread_rng()
 * call in the child observes the mismatch and reseeds.
 */
Rng& thread_rng();

/**
 * Invalidate every thread's cached engine (the atfork child handler).
 * Async-signal-safe: one relaxed atomic increment.
 */
void rng_note_fork_child();

/** Current reseed generation (test introspection). */
std::uint64_t rng_generation();

}  // namespace msw
