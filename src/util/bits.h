/**
 * @file
 * Bit-manipulation and alignment helpers used throughout the allocator and
 * sweeper. Everything is constexpr and branch-light; these sit on hot paths.
 */
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "util/check.h"

namespace msw {

/** True if @p x is a (nonzero) power of two. */
constexpr bool
is_pow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Round @p x up to the next multiple of power-of-two @p align. */
constexpr std::uint64_t
align_up(std::uint64_t x, std::uint64_t align)
{
    return (x + align - 1) & ~(align - 1);
}

/** Round @p x down to a multiple of power-of-two @p align. */
constexpr std::uint64_t
align_down(std::uint64_t x, std::uint64_t align)
{
    return x & ~(align - 1);
}

/** True if @p x is a multiple of power-of-two @p align. */
constexpr bool
is_aligned(std::uint64_t x, std::uint64_t align)
{
    return (x & (align - 1)) == 0;
}

/** ceil(a / b) for positive integers. */
constexpr std::uint64_t
ceil_div(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** floor(log2(x)); @p x must be nonzero. */
constexpr unsigned
log2_floor(std::uint64_t x)
{
    return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/** ceil(log2(x)); @p x must be nonzero. */
constexpr unsigned
log2_ceil(std::uint64_t x)
{
    return x <= 1 ? 0 : log2_floor(x - 1) + 1;
}

/** Next power of two >= x (x must be nonzero and representable). */
constexpr std::uint64_t
pow2_ceil(std::uint64_t x)
{
    return std::uint64_t{1} << log2_ceil(x);
}

/** Pointer <-> integer conversions kept in one place. */
inline std::uintptr_t
to_addr(const void* p)
{
    return reinterpret_cast<std::uintptr_t>(p);
}

inline void*
to_ptr(std::uintptr_t a)
{
    return reinterpret_cast<void*>(a);
}

/**
 * Typed view of an address. The only sanctioned integer->pointer
 * conversion outside the VM layer: keeping every such cast behind this
 * helper (enforced by msw-analyze rule MSW-UB-PTR-CAST) confines the
 * provenance-laundering spots to one grep-able place.
 */
template <typename T>
inline T*
to_ptr_of(std::uintptr_t a)
{
    return reinterpret_cast<T*>(a);
}

}  // namespace msw
