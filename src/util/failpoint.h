/**
 * @file
 * Failpoint framework: named fault-injection sites on the paths whose
 * real-world failures a drop-in allocator must survive (transient
 * mprotect/madvise ENOMEM, heap-reservation exhaustion, a stalled
 * background sweeper).
 *
 * Each site is identified by a compile-time enumerator and a stable
 * string name. Sites are armed either programmatically
 * (failpoint_arm()) or from the MSW_FAILPOINTS environment variable,
 * with one of three trigger policies:
 *
 *   probability  fire each evaluation with probability p
 *   every-Nth    fire on every Nth evaluation
 *   burst        fire on evaluations [skip, skip+n) once, then disarm
 *
 * MSW_FAILPOINTS syntax (',' separates clauses; ';' also accepted):
 *
 *   vm.commit=p:0.05,vm.decommit=every:100,extent.grow=burst:3@10,seed=42
 *
 * The seed clause makes probabilistic policies reproducible; without it
 * the RNG is seeded from the clock and pid, so repeated soak runs
 * explore different interleavings.
 *
 * Cost model: when no failpoint is armed, failpoint_should_fail() is a
 * single relaxed atomic load of a process-global counter plus a
 * predictable branch — cheap enough to sit on VM-operation paths.
 * Policy evaluation and counter maintenance happen only while armed.
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace msw::util {

/** Injection sites. Names (failpoint_name) use dotted lowercase. */
enum class Failpoint : unsigned {
    kVmCommit = 0,  ///< "vm.commit": mprotect RW (commit/protect_rw).
    kVmDecommit,    ///< "vm.decommit": madvise+mprotect NONE (decommit).
    kVmPurge,       ///< "vm.purge": keep-accessible madvise purge.
    kExtentGrow,    ///< "extent.grow": heap bump-frontier extension.
    kSweeperStall,  ///< "sweeper.stall": background sweeper plays dead.
    kSweepDelay,    ///< "sweep.delay": sweep blocks while armed (tests).
    kForkPrepare,   ///< "fork.prepare": stall the atfork prepare window.
    kForkChild,     ///< "fork.child": child re-init skips the sweeper
                    ///< respawn mark, forcing the fallback sweep paths.
    kThreadExit,    ///< "thread.exit": delay the thread-exit TSD drain.
    kCount,
};

inline constexpr unsigned kNumFailpoints =
    static_cast<unsigned>(Failpoint::kCount);

/** Trigger policy for one armed failpoint. */
struct FailpointPolicy {
    enum class Kind : std::uint8_t {
        kOff = 0,
        kProbability,
        kEveryNth,
        kBurst,
    };

    Kind kind = Kind::kOff;
    /** kProbability: chance each evaluation fires, in [0, 1]. */
    double probability = 0.0;
    /** kEveryNth: period; kBurst: number of consecutive firings. */
    std::uint64_t n = 0;
    /** kBurst: evaluations to let pass before the burst starts. */
    std::uint64_t skip = 0;

    static FailpointPolicy
    prob(double p)
    {
        return FailpointPolicy{Kind::kProbability, p, 0, 0};
    }

    static FailpointPolicy
    every(std::uint64_t period)
    {
        return FailpointPolicy{Kind::kEveryNth, 0.0, period, 0};
    }

    static FailpointPolicy
    burst(std::uint64_t count, std::uint64_t skip_first = 0)
    {
        return FailpointPolicy{Kind::kBurst, 0.0, count, skip_first};
    }
};

/** Arm @p fp with @p policy (replacing any existing policy). */
void failpoint_arm(Failpoint fp, const FailpointPolicy& policy);

/** Disarm @p fp; evaluations return false again at fast-path cost. */
void failpoint_disarm(Failpoint fp);

/** Disarm every failpoint (counters are kept; see reset). */
void failpoint_disarm_all();

/**
 * Parse an MSW_FAILPOINTS-style spec and arm accordingly. Returns false
 * (arming nothing further) on the first malformed clause.
 */
bool failpoint_configure(const char* spec);

/** Reseed the probabilistic-policy RNG (also via "seed=N" in a spec). */
void failpoint_seed(std::uint64_t seed);

/** Stable dotted name of @p fp ("vm.commit", ...). */
const char* failpoint_name(Failpoint fp);

/** Resolve @p len bytes of @p name to a failpoint. */
bool failpoint_from_name(const char* name, std::size_t len,
                         Failpoint* out);

/** Times @p fp was evaluated while armed (lifetime total). */
std::uint64_t failpoint_evaluations(Failpoint fp);

/** Times @p fp fired (lifetime total). */
std::uint64_t failpoint_hits(Failpoint fp);

/** Zero all evaluation/hit counters. */
void failpoint_reset_counters();

/**
 * atfork integration: the policy-table mutex is process-global state,
 * so the lifecycle prepare handler must hold it across fork() — a child
 * forked while another thread is mid-arm would otherwise inherit a held
 * mutex and deadlock on its next arm/disarm. Called by core/lifecycle
 * in rank order (kMetrics is the leaf band).
 */
void failpoint_prepare_fork();
void failpoint_parent_after_fork();
void failpoint_child_after_fork();

namespace detail {

/** Number of currently armed failpoints; 0 keeps the fast path trivial. */
extern std::atomic<std::uint32_t> g_failpoints_armed;

bool failpoint_eval_slow(Failpoint fp);

}  // namespace detail

/**
 * True if site @p fp should fail this call. One relaxed atomic load and
 * a predicted-not-taken branch when nothing is armed.
 */
inline bool
failpoint_should_fail(Failpoint fp)
{
    // msw-relaxed(failpoint-arm): advisory fast-path gate; a stale
    // zero only delays when a freshly armed site starts firing.
    if (__builtin_expect(detail::g_failpoints_armed.load(
                             std::memory_order_relaxed) == 0,
                         1)) {
        return false;
    }
    return detail::failpoint_eval_slow(fp);
}

}  // namespace msw::util
