/**
 * @file
 * Minimal levelled logging. Output goes to stderr; the level is set either
 * programmatically or from the MSW_LOG environment variable
 * (error|warn|info|debug). Logging is off above the configured level and
 * costs one relaxed atomic load when disabled.
 */
#pragma once

#include <atomic>

namespace msw {

enum class LogLevel : int {
    kError = 0,
    kWarn = 1,
    kInfo = 2,
    kDebug = 3,
};

namespace detail {
// Function-local static so the level is usable from other translation
// units' dynamic initializers (e.g. MSW_FAILPOINTS parsing), which may
// run before this library's own initializers.
std::atomic<int>& log_level_ref();
[[gnu::format(printf, 2, 3)]]
void log_write(LogLevel level, const char* fmt, ...);
}  // namespace detail

/** Set the global log level. */
void set_log_level(LogLevel level);

/** Current global log level. */
inline LogLevel
log_level()
{
    // msw-relaxed(config-flag): verbosity read on the logging fast
    // path; staleness is harmless.
    return static_cast<LogLevel>(
        detail::log_level_ref().load(std::memory_order_relaxed));
}

/** True if messages at @p level would currently be emitted. */
inline bool
log_enabled(LogLevel level)
{
    // msw-relaxed(config-flag): verbosity read on the logging fast
    // path; staleness is harmless.
    return static_cast<int>(level) <=
           detail::log_level_ref().load(std::memory_order_relaxed);
}

}  // namespace msw

#define MSW_LOG(level, ...)                                  \
    do {                                                     \
        if (::msw::log_enabled(level)) {                     \
            ::msw::detail::log_write(level, __VA_ARGS__);    \
        }                                                    \
    } while (0)

#define MSW_LOG_ERROR(...) MSW_LOG(::msw::LogLevel::kError, __VA_ARGS__)
#define MSW_LOG_WARN(...) MSW_LOG(::msw::LogLevel::kWarn, __VA_ARGS__)
#define MSW_LOG_INFO(...) MSW_LOG(::msw::LogLevel::kInfo, __VA_ARGS__)
#define MSW_LOG_DEBUG(...) MSW_LOG(::msw::LogLevel::kDebug, __VA_ARGS__)
