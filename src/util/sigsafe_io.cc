#include "util/sigsafe_io.h"

#include <unistd.h>

namespace msw::util {

void
SigsafeWriter::put(char c)
{
    if (len_ == sizeof(buf_))
        flush();
    buf_[len_++] = c;
}

void
SigsafeWriter::str(const char* s)
{
    if (s == nullptr)
        return;
    for (; *s != '\0'; ++s)
        put(*s);
}

void
SigsafeWriter::dec(std::uint64_t v)
{
    // Digits are produced least-significant first into a local scratch
    // array, then emitted reversed; 20 digits cover 2^64 - 1.
    char digits[20];
    std::size_t n = 0;
    do {
        digits[n++] = static_cast<char>('0' + (v % 10));
        v /= 10;
    } while (v != 0);
    while (n > 0)
        put(digits[--n]);
}

void
SigsafeWriter::sdec(std::int64_t v)
{
    std::uint64_t mag = static_cast<std::uint64_t>(v);
    if (v < 0) {
        put('-');
        mag = ~mag + 1;  // two's complement negate; INT64_MIN-safe
    }
    dec(mag);
}

void
SigsafeWriter::hex(std::uint64_t v)
{
    static const char kHexDigits[] = "0123456789abcdef";
    put('0');
    put('x');
    char digits[16];
    std::size_t n = 0;
    do {
        digits[n++] = kHexDigits[v & 0xf];
        v >>= 4;
    } while (v != 0);
    while (n > 0)
        put(digits[--n]);
}

void
SigsafeWriter::flush()
{
    std::size_t off = 0;
    while (off < len_) {
        const ssize_t w = ::write(fd_, buf_ + off, len_ - off);
        if (w <= 0)
            break;  // best effort: a crash report must never loop forever
        off += static_cast<std::size_t>(w);
    }
    len_ = 0;
}

}  // namespace msw::util
