/**
 * @file
 * Annotation-aware mutex and RAII guards.
 *
 * std::mutex / std::lock_guard / std::unique_lock carry no capability
 * annotations, so code using them is invisible to Clang's thread-safety
 * analysis. msw::Mutex wraps std::mutex as a capability and adds runtime
 * lock-rank validation; msw::LockGuard / msw::UniqueLock are drop-in
 * guard replacements the analysis understands, usable with both
 * msw::Mutex and msw::SpinLock.
 *
 * Condition variables: std::condition_variable requires a literal
 * std::unique_lock<std::mutex>, so code waiting on an msw::Mutex uses
 * std::condition_variable_any with msw::UniqueLock<msw::Mutex>. The wait
 * itself releases/reacquires the lock opaquely to the analysis; predicate
 * lambdas that read guarded fields therefore need their own
 * MSW_REQUIRES(mu) annotation.
 */
#pragma once

#include <mutex>

#include "util/lock_rank.h"
#include "util/thread_annotations.h"

namespace msw {

/** std::mutex as a thread-safety capability with a lock rank. */
class MSW_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;

    /** A mutex participating in lock-rank validation (util/lock_rank.h). */
    explicit Mutex(util::LockRank rank) : rank_(rank) {}

    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void
    lock() MSW_ACQUIRE()
    {
        util::lock_rank_acquire(rank_);
        mu_.lock();
    }

    bool
    try_lock() MSW_TRY_ACQUIRE(true)
    {
        if (mu_.try_lock()) {
            util::lock_rank_try_acquire(rank_);
            return true;
        }
        return false;
    }

    void
    unlock() MSW_RELEASE()
    {
        util::lock_rank_release(rank_);
        mu_.unlock();
    }

  private:
    std::mutex mu_;
    util::LockRank rank_ = util::LockRank::kUnranked;
};

/**
 * Annotation-aware std::lock_guard: acquires @p M for the enclosing
 * scope. Works with any Lockable capability (msw::Mutex, msw::SpinLock).
 */
template <typename M>
class MSW_SCOPED_CAPABILITY LockGuard
{
  public:
    explicit LockGuard(M& mu) MSW_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }

    ~LockGuard() MSW_RELEASE() { mu_.unlock(); }

    LockGuard(const LockGuard&) = delete;
    LockGuard& operator=(const LockGuard&) = delete;

  private:
    M& mu_;
};

/** Guard spelling for the common msw::Mutex case. */
using MutexGuard = LockGuard<Mutex>;

/**
 * Annotation-aware std::unique_lock subset: RAII plus manual
 * lock()/unlock(), which is all std::condition_variable_any::wait needs.
 * Always constructed locked.
 */
template <typename M>
class MSW_SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(M& mu) MSW_ACQUIRE(mu) : mu_(mu), held_(true)
    {
        mu_.lock();
    }

    ~UniqueLock() MSW_RELEASE()
    {
        if (held_)
            mu_.unlock();
    }

    void
    lock() MSW_ACQUIRE()
    {
        mu_.lock();
        held_ = true;
    }

    void
    unlock() MSW_RELEASE()
    {
        mu_.unlock();
        held_ = false;
    }

    bool owns_lock() const { return held_; }

    UniqueLock(const UniqueLock&) = delete;
    UniqueLock& operator=(const UniqueLock&) = delete;

  private:
    M& mu_;
    bool held_;
};

}  // namespace msw
