#include "util/failpoint.h"

#include <sys/types.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <ctime>

#include "util/bits.h"
#include "util/lock_rank.h"
#include "util/log.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace msw::util {
namespace detail {

std::atomic<std::uint32_t> g_failpoints_armed{0};

namespace {

struct FailpointState {
    FailpointPolicy policy;
    /** Evaluation ordinal under the *current* policy (reset on arm). */
    std::atomic<std::uint64_t> policy_evals{0};
    /** Lifetime totals, kept across re-arms. */
    std::atomic<std::uint64_t> total_evals{0};
    std::atomic<std::uint64_t> total_hits{0};
};

FailpointState g_state[kNumFailpoints];

/**
 * Guards policy writes. Evaluations read the policy fields without it:
 * arming while other threads are mid-evaluation may make those threads
 * see a torn mix of old/new policy for one call, which only perturbs
 * *whether* that call fails — acceptable for fault injection, and soak
 * configs arm once at startup anyway.
 */
Mutex g_policy_mu{LockRank::kMetrics};

std::atomic<std::uint64_t> g_rng_seed{0x5eedfa11};

constexpr const char* kNames[kNumFailpoints] = {
    "vm.commit",     "vm.decommit",   "vm.purge",
    "extent.grow",   "sweeper.stall", "sweep.delay",
    "fork.prepare",  "fork.child",    "thread.exit",
};

double
thread_uniform()
{
    // Per-thread engine so evaluations never contend; mixed with the
    // thread id so equal seeds still decorrelate across threads.
    // msw-relaxed(failpoint-arm): seeding is best-effort; a racing
    // failpoint_seed() only changes which tests are deterministic.
    thread_local Rng rng(g_rng_seed.load(std::memory_order_relaxed) +
                         0x9e3779b97f4a7c15ull *
                             static_cast<std::uint64_t>(to_addr(&rng)));
    return rng.next_double();
}

void
recount_armed_locked() MSW_REQUIRES(g_policy_mu)
{
    std::uint32_t armed = 0;
    for (auto& st : g_state) {
        if (st.policy.kind != FailpointPolicy::Kind::kOff) {
            ++armed;
        }
    }
    // msw-relaxed(failpoint-arm): advisory fast-path gate; the policy
    // data it guards is snapshotted racily by design (see eval_slow),
    // so release ordering here would pair with nothing.
    g_failpoints_armed.store(armed, std::memory_order_relaxed);
}

bool
parse_u64(const char* s, std::size_t len, std::uint64_t* out)
{
    if (len == 0 || len > 20) {
        return false;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < len; ++i) {
        if (s[i] < '0' || s[i] > '9') {
            return false;
        }
        v = v * 10 + static_cast<std::uint64_t>(s[i] - '0');
    }
    *out = v;
    return true;
}

bool
parse_double(const char* s, std::size_t len, double* out)
{
    char buf[32];
    if (len == 0 || len >= sizeof(buf)) {
        return false;
    }
    std::memcpy(buf, s, len);
    buf[len] = '\0';
    char* end = nullptr;
    const double v = std::strtod(buf, &end);
    if (end != buf + len) {
        return false;
    }
    *out = v;
    return true;
}

/** Parse one "name=policy" clause of @p len bytes. */
bool
parse_clause(const char* clause, std::size_t len)
{
    const char* eq =
        static_cast<const char*>(std::memchr(clause, '=', len));
    if (eq == nullptr) {
        return false;
    }
    const std::size_t name_len = static_cast<std::size_t>(eq - clause);
    const char* val = eq + 1;
    const std::size_t val_len = len - name_len - 1;

    if (name_len == 4 && std::memcmp(clause, "seed", 4) == 0) {
        std::uint64_t seed = 0;
        if (!parse_u64(val, val_len, &seed)) {
            return false;
        }
        failpoint_seed(seed);
        return true;
    }

    Failpoint fp;
    if (!failpoint_from_name(clause, name_len, &fp)) {
        return false;
    }
    if (val_len == 3 && std::memcmp(val, "off", 3) == 0) {
        failpoint_disarm(fp);
        return true;
    }

    const char* colon =
        static_cast<const char*>(std::memchr(val, ':', val_len));
    if (colon == nullptr) {
        return false;
    }
    const std::size_t kind_len = static_cast<std::size_t>(colon - val);
    const char* arg = colon + 1;
    const std::size_t arg_len = val_len - kind_len - 1;

    if ((kind_len == 1 && val[0] == 'p') ||
        (kind_len == 4 && std::memcmp(val, "prob", 4) == 0)) {
        double p = 0.0;
        if (!parse_double(arg, arg_len, &p) || p < 0.0 || p > 1.0) {
            return false;
        }
        failpoint_arm(fp, FailpointPolicy::prob(p));
        return true;
    }
    if (kind_len == 5 && std::memcmp(val, "every", 5) == 0) {
        std::uint64_t n = 0;
        if (!parse_u64(arg, arg_len, &n) || n == 0) {
            return false;
        }
        failpoint_arm(fp, FailpointPolicy::every(n));
        return true;
    }
    if (kind_len == 5 && std::memcmp(val, "burst", 5) == 0) {
        // burst:N fires the next N evaluations; burst:N@S skips S first.
        std::uint64_t n = 0;
        std::uint64_t skip = 0;
        const char* at =
            static_cast<const char*>(std::memchr(arg, '@', arg_len));
        if (at != nullptr) {
            const std::size_t n_len = static_cast<std::size_t>(at - arg);
            if (!parse_u64(arg, n_len, &n) ||
                !parse_u64(at + 1, arg_len - n_len - 1, &skip)) {
                return false;
            }
        } else if (!parse_u64(arg, arg_len, &n)) {
            return false;
        }
        if (n == 0) {
            return false;
        }
        failpoint_arm(fp, FailpointPolicy::burst(n, skip));
        return true;
    }
    return false;
}

/** Arm failpoints from MSW_FAILPOINTS once, before main() runs. */
const bool g_env_configured = [] {
    // Static initialisation, before any second thread can exist.
    const char* spec = std::getenv("MSW_FAILPOINTS");  // NOLINT(concurrency-mt-unsafe)
    if (spec != nullptr && *spec != '\0') {
        if (!failpoint_configure(spec)) {
            MSW_LOG_WARN("failpoint: malformed MSW_FAILPOINTS \"%s\"",
                         spec);
        }
    }
    return true;
}();

}  // namespace

bool
failpoint_eval_slow(Failpoint fp)
{
    FailpointState& st = g_state[static_cast<unsigned>(fp)];
    // Snapshot: arm/disarm may race this read (see g_policy_mu comment).
    const FailpointPolicy policy = st.policy;
    if (policy.kind == FailpointPolicy::Kind::kOff) {
        return false;
    }

    // msw-relaxed(failpoint-arm): test instrumentation counters;
    // totals need no ordering.
    st.total_evals.fetch_add(1, std::memory_order_relaxed);
    // msw-relaxed(failpoint-arm): per-policy ordinal; RMW atomicity
    // gives every-nth/burst their exactly-once firing.
    const std::uint64_t ordinal =
        st.policy_evals.fetch_add(1, std::memory_order_relaxed);

    bool fire = false;
    switch (policy.kind) {
    case FailpointPolicy::Kind::kProbability:
        fire = thread_uniform() < policy.probability;
        break;
    case FailpointPolicy::Kind::kEveryNth:
        fire = (ordinal + 1) % policy.n == 0;
        break;
    case FailpointPolicy::Kind::kBurst:
        fire = ordinal >= policy.skip && ordinal < policy.skip + policy.n;
        if (ordinal + 1 >= policy.skip + policy.n) {
            failpoint_disarm(fp);
        }
        break;
    case FailpointPolicy::Kind::kOff:
        break;
    }
    if (fire) {
        // msw-relaxed(failpoint-arm): test instrumentation counter.
        st.total_hits.fetch_add(1, std::memory_order_relaxed);
    }
    return fire;
}

}  // namespace detail

void
failpoint_arm(Failpoint fp, const FailpointPolicy& policy)
{
    MutexGuard lock(detail::g_policy_mu);
    auto& st = detail::g_state[static_cast<unsigned>(fp)];
    st.policy = policy;
    // msw-relaxed(failpoint-arm): counter reset under g_policy_mu;
    // racing evaluators snapshot the policy racily by design.
    st.policy_evals.store(0, std::memory_order_relaxed);
    detail::recount_armed_locked();
}

void
failpoint_disarm(Failpoint fp)
{
    MutexGuard lock(detail::g_policy_mu);
    detail::g_state[static_cast<unsigned>(fp)].policy = FailpointPolicy{};
    detail::recount_armed_locked();
}

void
failpoint_disarm_all()
{
    MutexGuard lock(detail::g_policy_mu);
    for (auto& st : detail::g_state) {
        st.policy = FailpointPolicy{};
    }
    detail::recount_armed_locked();
}

bool
failpoint_configure(const char* spec)
{
    if (spec == nullptr) {
        return false;
    }
    // ',' is the documented separator; ';' also accepted for callers not
    // going through ctest ENVIRONMENT properties (where ';' splits lists).
    const char* p = spec;
    while (*p != '\0') {
        std::size_t len = 0;
        while (p[len] != '\0' && p[len] != ',' && p[len] != ';') {
            ++len;
        }
        if (len > 0 && !detail::parse_clause(p, len)) {
            return false;
        }
        p += len;
        if (*p != '\0') {
            ++p;
        }
    }
    return true;
}

void
failpoint_seed(std::uint64_t seed)
{
    // msw-relaxed(failpoint-arm): best-effort seed; threads that
    // already built their Rng keep their old stream.
    detail::g_rng_seed.store(seed, std::memory_order_relaxed);
}

const char*
failpoint_name(Failpoint fp)
{
    return detail::kNames[static_cast<unsigned>(fp)];
}

bool
failpoint_from_name(const char* name, std::size_t len, Failpoint* out)
{
    for (unsigned i = 0; i < kNumFailpoints; ++i) {
        if (std::strlen(detail::kNames[i]) == len &&
            std::memcmp(detail::kNames[i], name, len) == 0) {
            *out = static_cast<Failpoint>(i);
            return true;
        }
    }
    return false;
}

std::uint64_t
failpoint_evaluations(Failpoint fp)
{
    // msw-relaxed(failpoint-arm): test instrumentation read.
    return detail::g_state[static_cast<unsigned>(fp)].total_evals.load(
        std::memory_order_relaxed);
}

std::uint64_t
failpoint_hits(Failpoint fp)
{
    // msw-relaxed(failpoint-arm): test instrumentation read.
    return detail::g_state[static_cast<unsigned>(fp)].total_hits.load(
        std::memory_order_relaxed);
}

// Acquire/release straddle fork(), which the static analysis cannot
// model; the lifecycle handlers guarantee the pairing.
void
failpoint_prepare_fork() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    detail::g_policy_mu.lock();
}

void
failpoint_parent_after_fork() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    detail::g_policy_mu.unlock();
}

void
failpoint_child_after_fork() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    // Same thread that locked in prepare; policy table is consistent.
    detail::g_policy_mu.unlock();
}

void
failpoint_reset_counters()
{
    for (auto& st : detail::g_state) {
        // msw-relaxed(failpoint-arm): test-only counter reset.
        st.total_evals.store(0, std::memory_order_relaxed);
        st.total_hits.store(0, std::memory_order_relaxed);
    }
}

}  // namespace msw::util
