/**
 * @file
 * The quarantine: freed allocations held until a sweep proves no dangling
 * pointer targets them (paper §3).
 *
 * Structure:
 *  - per-thread buffers absorb free() bursts without lock traffic (paper
 *    contribution (c): "thread-local quarantine buffers to reduce lock
 *    contention"); they spill into the global current epoch;
 *  - the *current epoch* collects entries between sweeps;
 *  - at sweep start the current epoch plus all previously *failed* frees
 *    are locked in; frees arriving during the sweep go to a fresh epoch
 *    and can only be recycled by a future sweep (§4.3);
 *  - entries whose shadow range is marked stay behind as failed frees,
 *    excluded from both sides of the trigger inequality (§3.2).
 */
#pragma once

#include <pthread.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/mutex.h"
#include "util/spin_lock.h"
#include "util/thread_annotations.h"

namespace msw::quarantine {

/**
 * One quarantined allocation.
 *
 * The stored address is XOR-masked: quarantine lists (and the sweeper's
 * locked-in snapshot) may themselves live in scannable memory — in the
 * LD_PRELOAD deployment they are allocated from the protected heap — and
 * a raw address there would look like a dangling pointer and self-pin
 * every quarantined object. Masking keeps the quarantine's own metadata
 * invisible to the conservative scan (the paper instead excludes its
 * metadata ranges from sweeping, §3.2; masking achieves the same
 * exclusion without a range list).
 */
struct Entry {
    /** Masked address; use real_base(), construct with make(). */
    std::uintptr_t masked_base = 0;
    std::size_t usable = 0;
    /** Physical pages released while quarantined (paper §4.2). */
    bool unmapped = false;

    static constexpr std::uintptr_t kPtrMask = 0xa5a5'5a5a'c3c3'3c3cull;

    static Entry
    make(std::uintptr_t base, std::size_t usable, bool unmapped)
    {
        return Entry{base ^ kPtrMask, usable, unmapped};
    }

    std::uintptr_t
    real_base() const
    {
        return masked_base ^ kPtrMask;
    }
};

/** Aggregate quarantine statistics. */
struct QuarantineStats {
    std::size_t pending_bytes = 0;    ///< Current epoch (mapped bytes).
    std::size_t failed_bytes = 0;     ///< Failed frees awaiting re-test.
    std::size_t unmapped_bytes = 0;   ///< Unmapped quarantined bytes.
    std::uint64_t entries_added = 0;  ///< Total quarantined frees.
    std::uint64_t double_frees = 0;   ///< Duplicates absorbed (by caller).
};

/**
 * Reorders a locked-in sweep set before it is handed to the sweeper.
 * This is the quarantine's only policy hook: the hardened allocation
 * policy (see alloc/policy.h) uses it to randomize release order so an
 * attacker cannot predict which quarantined object is recycled next
 * (FreeGuard-style delayed-reuse randomization). Kept as a raw function
 * pointer + context so this layer stays free of any dependency on the
 * allocation stack.
 */
using ReleaseOrderFn = void (*)(Entry* entries, std::size_t count,
                                void* ctx);

class Quarantine
{
  public:
    explicit Quarantine(std::size_t tl_buffer_entries = 64,
                        ReleaseOrderFn release_order = nullptr,
                        void* release_order_ctx = nullptr);
    ~Quarantine();

    Quarantine(const Quarantine&) = delete;
    Quarantine& operator=(const Quarantine&) = delete;

    /**
     * Add an allocation to the calling thread's buffer (spilling to the
     * global epoch when full).
     */
    void insert(const Entry& entry);

    /** Spill the calling thread's buffer into the global epoch. */
    void flush_thread_buffer();

    /**
     * Byte size of the current epoch, *excluding* unmapped entries (which
     * do not count towards the sweep threshold, §4.2) and excluding failed
     * frees (§3.2). Includes bytes still sitting in thread buffers.
     */
    std::size_t
    pending_bytes() const
    {
        // msw-relaxed(stat-cells): threshold heuristic read; a stale
        // value only shifts when the next sweep triggers.
        return pending_bytes_.load(std::memory_order_relaxed);
    }

    /** Unmapped bytes currently in quarantine (current + failed). */
    std::size_t
    unmapped_bytes() const
    {
        // msw-relaxed(stat-cells): statistics read; needs no ordering.
        return unmapped_bytes_.load(std::memory_order_relaxed);
    }

    std::size_t
    failed_bytes() const
    {
        // msw-relaxed(stat-cells): statistics read; needs no ordering.
        return failed_bytes_.load(std::memory_order_relaxed);
    }

    /**
     * Lock in the sweep set: moves the current epoch (with the caller's
     * buffer flushed) plus all failed frees into @p out. Entries freed
     * after this call land in a fresh epoch.
     */
    void lock_in(std::vector<Entry>& out);

    /**
     * Record the failed frees left over from a sweep over the set obtained
     * from lock_in().
     */
    void store_failed(std::vector<Entry>&& failed);

    QuarantineStats stats() const;

    /**
     * atfork integration (called by core/lifecycle): fork with the
     * buffer registry and epoch locks held, in rank order (20 -> 22).
     * In the child, every registered thread buffer except the calling
     * thread's belongs to a thread that no longer exists; its entries
     * are *adopted* — flushed into the current epoch — and the buffer
     * unmapped, so quarantined memory is never stranded by a fork. All
     * storage here is mmap-backed, so adoption is safe while the rest
     * of the prepare-held hierarchy is still held.
     */
    void prepare_fork();
    void parent_after_fork();
    void child_after_fork();

  private:
    struct ThreadBuffer;

    /**
     * Internal storage is mmap-chunked, never malloc'd: in the
     * self-hosted (LD_PRELOAD) deployment a std::vector growing under
     * lock_ would free its old buffer through the interposed free(),
     * re-enter insert() and self-deadlock on the non-reentrant spin lock.
     */
    struct EntryChunk {
        static constexpr std::size_t kEntries = 1022;
        EntryChunk* next = nullptr;
        std::size_t count = 0;
        Entry entries[kEntries];
    };

    ThreadBuffer* get_buffer();
    void flush_buffer_locked(ThreadBuffer* buf) MSW_REQUIRES(lock_);
    static void buffer_destructor(void* arg);

    static EntryChunk* chunk_alloc();
    static void chunk_free_list(EntryChunk* head);
    /** Append to a chunk list (caller holds lock_). */
    void append_locked(EntryChunk** head, const Entry& entry)
        MSW_REQUIRES(lock_);

    const std::size_t buffer_capacity_;
    const ReleaseOrderFn release_order_;
    void* const release_order_ctx_;
    pthread_key_t buffer_key_{};

    mutable SpinLock lock_{util::LockRank::kQuarantine};
    EntryChunk* current_ MSW_GUARDED_BY(lock_) = nullptr;
    EntryChunk* failed_ MSW_GUARDED_BY(lock_) = nullptr;

    std::atomic<std::size_t> pending_bytes_{0};
    std::atomic<std::size_t> unmapped_bytes_{0};
    std::atomic<std::size_t> failed_bytes_{0};
    std::atomic<std::uint64_t> entries_added_{0};

    // Global registry of thread buffers so the destructor can orphan
    // buffers of still-running threads. Registry lock ranks *before* the
    // epoch lock: buffer_destructor nests g_buffer_lock -> lock_.
    static SpinLock g_buffer_lock;
    static ThreadBuffer* g_buffer_head MSW_GUARDED_BY(g_buffer_lock);
};

}  // namespace msw::quarantine
