#include "quarantine/quarantine.h"

#include <sys/mman.h>

#include <cstring>
#include <ctime>

#include "util/bits.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "vm/vm.h"

namespace msw::quarantine {

struct Quarantine::ThreadBuffer {
    std::atomic<Quarantine*> owner{nullptr};
    ThreadBuffer* reg_prev = nullptr;
    ThreadBuffer* reg_next = nullptr;
    std::size_t count = 0;
    std::size_t capacity = 0;
    std::size_t mapped_bytes = 0;  // os allocation size, for munmap
    Entry entries[1];              // [capacity], flexible

    static std::size_t
    bytes_for(std::size_t capacity)
    {
        return sizeof(ThreadBuffer) + (capacity - 1) * sizeof(Entry);
    }
};

SpinLock Quarantine::g_buffer_lock{util::LockRank::kQuarantineRegistry};
Quarantine::ThreadBuffer* Quarantine::g_buffer_head = nullptr;

// ------------------------------------------------------ chunked storage

Quarantine::EntryChunk*
Quarantine::chunk_alloc()
{
    void* mem = ::mmap(nullptr, align_up(sizeof(EntryChunk), vm::kPageSize),
                       PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    MSW_CHECK(mem != MAP_FAILED);
    return new (mem) EntryChunk();
}

void
Quarantine::chunk_free_list(EntryChunk* head)
{
    while (head != nullptr) {
        EntryChunk* next = head->next;
        ::munmap(head, align_up(sizeof(EntryChunk), vm::kPageSize));
        head = next;
    }
}

void
Quarantine::append_locked(EntryChunk** head, const Entry& entry)
{
    if (*head == nullptr || (*head)->count == EntryChunk::kEntries) {
        // mmap is a syscall, not a malloc: safe under lock_ even in the
        // self-hosted deployment.
        EntryChunk* chunk = chunk_alloc();
        chunk->next = *head;
        *head = chunk;
    }
    (*head)->entries[(*head)->count++] = entry;
}

// ------------------------------------------------------- thread buffers

Quarantine::Quarantine(std::size_t tl_buffer_entries,
                       ReleaseOrderFn release_order, void* release_order_ctx)
    : buffer_capacity_(tl_buffer_entries > 0 ? tl_buffer_entries : 1),
      release_order_(release_order),
      release_order_ctx_(release_order_ctx)
{
    MSW_CHECK(pthread_key_create(&buffer_key_, &buffer_destructor) == 0);
}

Quarantine::~Quarantine()
{
    flush_thread_buffer();
    {
        LockGuard g(g_buffer_lock);
        ThreadBuffer* buf = g_buffer_head;
        while (buf != nullptr) {
            ThreadBuffer* next = buf->reg_next;
            // msw-relaxed(epoch-handoff): read under g_buffer_lock,
            // which every orphaning store holds.
            if (buf->owner.load(std::memory_order_relaxed) == this) {
                buf->owner.store(nullptr, std::memory_order_release);
                if (buf->reg_prev != nullptr)
                    buf->reg_prev->reg_next = buf->reg_next;
                else
                    g_buffer_head = buf->reg_next;
                if (buf->reg_next != nullptr)
                    buf->reg_next->reg_prev = buf->reg_prev;
                buf->reg_prev = nullptr;
                buf->reg_next = nullptr;
            }
            buf = next;
        }
    }
    pthread_key_delete(buffer_key_);
    EntryChunk* taken_current = nullptr;
    EntryChunk* taken_failed = nullptr;
    {
        LockGuard g(lock_);
        taken_current = current_;
        taken_failed = failed_;
        current_ = nullptr;
        failed_ = nullptr;
    }
    chunk_free_list(taken_current);
    chunk_free_list(taken_failed);
}

Quarantine::ThreadBuffer*
Quarantine::get_buffer()
{
    auto* buf = static_cast<ThreadBuffer*>(pthread_getspecific(buffer_key_));
    if (buf != nullptr)
        return buf;
    const std::size_t bytes = align_up(
        ThreadBuffer::bytes_for(buffer_capacity_), vm::kPageSize);
    void* mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    MSW_CHECK(mem != MAP_FAILED);
    buf = static_cast<ThreadBuffer*>(mem);
    // msw-relaxed(epoch-handoff): buffer not yet published; the
    // registry insert under the lock is what makes it visible.
    buf->owner.store(this, std::memory_order_relaxed);
    buf->capacity = buffer_capacity_;
    buf->mapped_bytes = bytes;
    {
        LockGuard g(g_buffer_lock);
        buf->reg_next = g_buffer_head;
        if (g_buffer_head != nullptr)
            g_buffer_head->reg_prev = buf;
        g_buffer_head = buf;
    }
    pthread_setspecific(buffer_key_, buf);
    return buf;
}

void
Quarantine::buffer_destructor(void* arg)
{
    auto* buf = static_cast<ThreadBuffer*>(arg);
    if (util::failpoint_should_fail(util::Failpoint::kThreadExit)) {
        // Chaos: delay the exit-path drain so it races concurrent
        // sweeps and fork cycles the way late TSD destruction does.
        struct timespec ts {
            0, 1000000
        };
        ::nanosleep(&ts, nullptr);
    }
    if (buf->owner.load(std::memory_order_acquire) != nullptr) {
        LockGuard g(g_buffer_lock);
        // msw-relaxed(epoch-handoff): re-read under g_buffer_lock; the
        // destructor orphans under it too.
        Quarantine* owner = buf->owner.load(std::memory_order_relaxed);
        if (owner != nullptr) {
            if (buf->reg_prev != nullptr)
                buf->reg_prev->reg_next = buf->reg_next;
            else
                g_buffer_head = buf->reg_next;
            if (buf->reg_next != nullptr)
                buf->reg_next->reg_prev = buf->reg_prev;
            // Registry (rank 20) before epoch lock (rank 22).
            LockGuard g2(owner->lock_);
            owner->flush_buffer_locked(buf);
        }
    }
    ::munmap(buf, buf->mapped_bytes);
}

void
Quarantine::flush_buffer_locked(ThreadBuffer* buf)
{
    for (std::size_t i = 0; i < buf->count; ++i)
        append_locked(&current_, buf->entries[i]);
    buf->count = 0;
}

// The fork hooks hold g_buffer_lock and lock_ across fork(); the
// pairing is enforced by core/lifecycle, outside what the static
// analysis can see.
void
Quarantine::prepare_fork() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    g_buffer_lock.lock();  // registry (20) before epoch lock (22)
    lock_.lock();
}

void
Quarantine::parent_after_fork() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    lock_.unlock();
    g_buffer_lock.unlock();
}

void
Quarantine::child_after_fork() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    // Adopt the thread buffers of threads that did not survive the
    // fork: flush their entries into the current epoch and unmap them.
    // The calling thread's own buffer (its TSD still points at it) is
    // the only one left registered. mmap/munmap only — safe while the
    // rest of the prepare-held hierarchy is held.
    ThreadBuffer* mine =
        static_cast<ThreadBuffer*>(pthread_getspecific(buffer_key_));
    ThreadBuffer* buf = g_buffer_head;
    while (buf != nullptr) {
        ThreadBuffer* next = buf->reg_next;
        if (buf != mine &&
            // msw-relaxed(epoch-handoff): read under g_buffer_lock,
            // as for every orphaning store.
            buf->owner.load(std::memory_order_relaxed) == this) {
            flush_buffer_locked(buf);
            if (buf->reg_prev != nullptr)
                buf->reg_prev->reg_next = buf->reg_next;
            else
                g_buffer_head = buf->reg_next;
            if (buf->reg_next != nullptr)
                buf->reg_next->reg_prev = buf->reg_prev;
            ::munmap(buf, buf->mapped_bytes);
        }
        buf = next;
    }
    lock_.unlock();
    g_buffer_lock.unlock();
}

// ------------------------------------------------------------ public API

void
Quarantine::insert(const Entry& entry)
{
    // msw-relaxed(stat-cells): statistics counter; totals need no
    // ordering.
    entries_added_.fetch_add(1, std::memory_order_relaxed);
    if (entry.unmapped) {
        // msw-relaxed(stat-cells): as above — stats only.
        unmapped_bytes_.fetch_add(entry.usable, std::memory_order_relaxed);
    } else {
        // msw-relaxed(stat-cells): as above — stats only.
        pending_bytes_.fetch_add(entry.usable, std::memory_order_relaxed);
    }
    ThreadBuffer* buf = get_buffer();
    buf->entries[buf->count++] = entry;
    if (buf->count == buf->capacity) {
        LockGuard g(lock_);
        flush_buffer_locked(buf);
    }
}

void
Quarantine::flush_thread_buffer()
{
    auto* buf = static_cast<ThreadBuffer*>(pthread_getspecific(buffer_key_));
    if (buf == nullptr || buf->count == 0)
        return;
    LockGuard g(lock_);
    flush_buffer_locked(buf);
}

void
Quarantine::lock_in(std::vector<Entry>& out)
{
    flush_thread_buffer();

    EntryChunk* taken_current = nullptr;
    EntryChunk* taken_failed = nullptr;
    {
        LockGuard g(lock_);
        taken_current = current_;
        taken_failed = failed_;
        current_ = nullptr;
        failed_ = nullptr;
    }

    // Copy into the caller's vector *outside* lock_: its reallocation may
    // re-enter the allocator (and thus insert()), which is fine unlocked.
    out.clear();
    std::size_t mapped = 0;
    std::size_t unmapped = 0;
    for (EntryChunk* c = taken_current; c != nullptr; c = c->next) {
        for (std::size_t i = 0; i < c->count; ++i) {
            out.push_back(c->entries[i]);
            if (c->entries[i].unmapped)
                unmapped += c->entries[i].usable;
            else
                mapped += c->entries[i].usable;
        }
    }
    std::size_t failed_mapped = 0;
    for (EntryChunk* c = taken_failed; c != nullptr; c = c->next) {
        for (std::size_t i = 0; i < c->count; ++i) {
            out.push_back(c->entries[i]);
            if (c->entries[i].unmapped)
                unmapped += c->entries[i].usable;
            else
                failed_mapped += c->entries[i].usable;
        }
    }
    chunk_free_list(taken_current);
    chunk_free_list(taken_failed);

    // Accounting: the locked-in set leaves "pending"/"failed"; entries
    // that fail the sweep re-enter via store_failed().
    // msw-relaxed(stat-cells): statistics cells; totals need no
    // ordering.
    failed_bytes_.fetch_sub(failed_mapped, std::memory_order_relaxed);
    std::size_t expected = pending_bytes_.load(std::memory_order_relaxed);
    std::size_t desired;
    do {
        desired = expected > mapped ? expected - mapped : 0;
        // msw-cas(stat-cells): saturating stats decrement; only RMW
        // atomicity matters.
    } while (!pending_bytes_.compare_exchange_weak(
        expected, desired, std::memory_order_relaxed));
    // msw-relaxed(stat-cells): statistics cell; stats only.
    unmapped_bytes_.fetch_sub(unmapped, std::memory_order_relaxed);

    // Hand the hook the whole sweep set at once (not per-chunk): release
    // order is only unpredictable if the shuffle spans epochs and failed
    // frees alike.
    if (release_order_ != nullptr && !out.empty())
        release_order_(out.data(), out.size(), release_order_ctx_);
}

void
Quarantine::store_failed(std::vector<Entry>&& failed)
{
    // Build the chunk list outside lock_; chunk_alloc is mmap-backed, so
    // nothing here can re-enter the allocator.
    std::size_t mapped = 0;
    std::size_t unmapped = 0;
    EntryChunk* head = nullptr;
    EntryChunk* chunk = nullptr;
    for (const Entry& e : failed) {
        if (e.unmapped)
            unmapped += e.usable;
        else
            mapped += e.usable;
        if (chunk == nullptr || chunk->count == EntryChunk::kEntries) {
            EntryChunk* fresh = chunk_alloc();
            fresh->next = head;
            head = fresh;
            chunk = fresh;
        }
        chunk->entries[chunk->count++] = e;
    }

    {
        LockGuard g(lock_);
        // Attach (failed_ is normally empty here: lock_in drained it).
        if (failed_ == nullptr) {
            failed_ = head;
        } else {
            EntryChunk* last = head;
            while (last != nullptr && last->next != nullptr)
                last = last->next;
            if (last != nullptr) {
                last->next = failed_;
                failed_ = head;
            }
        }
    }
    // msw-relaxed(stat-cells): statistics counters; totals need no
    // ordering.
    failed_bytes_.fetch_add(mapped, std::memory_order_relaxed);
    unmapped_bytes_.fetch_add(unmapped, std::memory_order_relaxed);
}

QuarantineStats
Quarantine::stats() const
{
    QuarantineStats s;
    // msw-relaxed(stat-cells): statistics snapshot; cells may tear
    // relative to each other and that is fine for reporting.
    s.pending_bytes = pending_bytes_.load(std::memory_order_relaxed);
    s.failed_bytes = failed_bytes_.load(std::memory_order_relaxed);
    // msw-relaxed(stat-cells): as above — reporting snapshot.
    s.unmapped_bytes = unmapped_bytes_.load(std::memory_order_relaxed);
    s.entries_added = entries_added_.load(std::memory_order_relaxed);
    return s;
}

}  // namespace msw::quarantine
