#include "core/stat_cells.h"

namespace msw::core {

unsigned
StatCells::next_shard()
{
    static std::atomic<unsigned> next{0};
    return next.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
StatCells::read(Stat stat) const
{
    std::uint64_t sum = 0;
    for (const Shard& s : shards_)
        sum += s.v[static_cast<unsigned>(stat)].load(
            std::memory_order_relaxed);
    return sum;
}

void
StatCells::read_all(std::uint64_t (&out)[kStatCount]) const
{
    for (unsigned i = 0; i < kStatCount; ++i)
        out[i] = 0;
    for (const Shard& s : shards_) {
        for (unsigned i = 0; i < kStatCount; ++i)
            out[i] += s.v[i].load(std::memory_order_relaxed);
    }
}

void
StatCells::reset_events()
{
    for (Shard& s : shards_) {
        for (unsigned i = 0; i < kStatCount; ++i) {
            if (!is_gauge(static_cast<Stat>(i)))
                s.v[i].store(0, std::memory_order_relaxed);
        }
    }
}

}  // namespace msw::core
