#include "core/stat_cells.h"

namespace msw::core {

unsigned
StatCells::next_shard()
{
    static std::atomic<unsigned> next{0};
    // msw-relaxed(work-cursor): shard-assignment ticket; only RMW
    // atomicity matters.
    return next.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
StatCells::read(Stat stat) const
{
    std::uint64_t sum = 0;
    for (const Shard& s : shards_)
        // msw-relaxed(stat-cells): sharded sum; shards may tear
        // relative to each other and that is fine for reporting.
        sum += s.v[static_cast<unsigned>(stat)].load(
            std::memory_order_relaxed);
    return sum;
}

void
StatCells::read_all(std::uint64_t (&out)[kStatCount]) const
{
    for (unsigned i = 0; i < kStatCount; ++i)
        out[i] = 0;
    for (const Shard& s : shards_) {
        for (unsigned i = 0; i < kStatCount; ++i)
            // msw-relaxed(stat-cells): as in read() — sharded sum.
            out[i] += s.v[i].load(std::memory_order_relaxed);
    }
}

void
StatCells::reset_events()
{
    for (Shard& s : shards_) {
        for (unsigned i = 0; i < kStatCount; ++i) {
            if (!is_gauge(static_cast<Stat>(i)))
                // msw-relaxed(stat-cells): test-scoped reset; racing
                // bumps are lost either way.
                s.v[i].store(0, std::memory_order_relaxed);
        }
    }
}

}  // namespace msw::core
