#include "core/runtime_base.h"

#include <ctime>

#include "alloc/extent.h"
#include "alloc/policy.h"
#include "alloc/size_classes.h"
#include "core/lifecycle.h"
#include "util/bits.h"
#include "util/check.h"
#include "util/log.h"

namespace msw::core {

using alloc::ExtentKind;
using alloc::ExtentMeta;
using sweep::Range;

namespace {

/** Quarantine release-order adapter: the quarantine layer knows nothing
    of AllocPolicy, so the hook arrives as fn-pointer + context. */
void
shuffle_entries(quarantine::Entry* entries, std::size_t count, void* ctx)
{
    static_cast<const alloc::AllocPolicy*>(ctx)->shuffle(
        entries, count, sizeof(quarantine::Entry));
}

}  // namespace

/**
 * Extent hooks that keep the committed-page map exact: this is how sweeps
 * know which pages exist, and how purged pages are excluded from scanning
 * instead of being faulted back in (paper §4.5).
 */
class QuarantineRuntime::Hooks final : public alloc::ExtentHooks
{
  public:
    Hooks(QuarantineRuntime* owner, const vm::Reservation* heap)
        : alloc::ExtentHooks(heap), owner_(owner)
    {}

    [[nodiscard]] bool
    commit(std::uintptr_t addr, std::size_t len) override
    {
        if (heap_->protect_rw(addr, len) != vm::VmStatus::kOk) {
            return false;
        }
        owner_->access_map_.set_range(addr, len);
        // Pages appearing mid-epoch must be treated as dirty.
        if (owner_->tracker_ != nullptr &&
            owner_->reclaimer_.scan_active()) {
            owner_->tracker_->note_committed(addr, len);
        }
        return true;
    }

    [[nodiscard]] bool
    purge(std::uintptr_t addr, std::size_t len) override
    {
        // True decommit (discard + PROT_NONE), not jemalloc's
        // keep-accessible purge: sweeps skip these pages entirely.
        if (heap_->decommit(addr, len) != vm::VmStatus::kOk) {
            // Pages keep their backing and stay in the access map; the
            // extent stays accounted committed and is re-purged later.
            return false;
        }
        owner_->access_map_.clear_range(addr, len);
        return true;
    }

  private:
    QuarantineRuntime* owner_;
};

QuarantineRuntime::QuarantineRuntime(const Config& config,
                                     std::function<void()> sweep_fn)
    : config_([&] {
          Config c = config;
          // Quarantine runtimes replace decay purging with the post-sweep
          // full purge (§4.5); leaving decay on would purge behind the
          // page-access map's back from unhooked call sites.
          c.jade.decay_ms = 0;
          // Resolve the allocation policy exactly once, here, and hand
          // the same resolved pointer to every layer (substrate placement,
          // reclaimer fill, quarantine release order) so they cannot
          // disagree mid-run if MSW_POLICY changes.
          c.policy = &alloc::resolve_policy(
              c.policy != nullptr ? c.policy : c.jade.policy);
          c.jade.policy = c.policy;
          c.reclaim.policy = c.policy;
          return c;
      }()),
      jade_(config_.jade),
      mark_bits_(jade_.reservation().base(), jade_.reservation().size()),
      quarantine_bitmap_(jade_.reservation().base(),
                         jade_.reservation().size()),
      access_map_(jade_.reservation().base(), jade_.reservation().size()),
      quarantine_(config_.tl_buffer_entries,
                  config_.policy->shuffle != nullptr ? &shuffle_entries
                                                     : nullptr,
                  const_cast<alloc::AllocPolicy*>(config_.policy)),
      reclaimer_(config_.reclaim, &jade_, &access_map_, &quarantine_bitmap_,
                 &stats_),
      controller_(config_.control, std::move(sweep_fn), &stats_)
{
    // Before any chaining SEGV handler below (the MprotectTracker) is
    // installed: the crash classifier must be the innermost handler so
    // the tracker forwards non-write-barrier faults to it.
    lifecycle::install_crash_handler_from_env();

    hooks_ = std::make_unique<Hooks>(this, &jade_.reservation());
    jade_.extents().set_hooks(hooks_.get());

    if (config_.make_tracker) {
        tracker_ = sweep::make_dirty_tracker(&jade_.reservation());
        if (auto* mp =
                dynamic_cast<sweep::MprotectTracker*>(tracker_.get())) {
            mp->set_committed_filter(
                [](std::uintptr_t addr, void* arg) {
                    return static_cast<sweep::PageAccessMap*>(arg)->test(
                        addr);
                },
                &access_map_);
        }
    }
    // The derived constructor calls controller_.start() once every member
    // its sweep function touches exists.
}

QuarantineRuntime::~QuarantineRuntime()
{
    // The derived destructor already called controller_.shutdown() (it
    // must: the sweep function touches derived members). Idempotent here,
    // covering runtimes whose sweep function only touches base members.
    controller_.shutdown();
    // Restore default hooks before jade_ (a member) is destroyed, so any
    // destructor-time extent operations do not touch freed state.
    jade_.extents().set_hooks(nullptr);
}

QuarantineRuntime::FreeTarget
QuarantineRuntime::classify(std::uintptr_t addr) const
{
    MSW_CHECK(jade_.contains(addr));
    ExtentMeta* meta = jade_.extents().lookup_live(addr);
    FreeTarget t;
    if (meta->kind == ExtentKind::kLarge) {
        t.base = meta->base;
        t.usable = meta->bytes();
        t.is_large = true;
    } else {
        const std::size_t obj = alloc::class_size(meta->cls);
        t.base = meta->base + ((addr - meta->base) / obj) * obj;
        t.usable = obj;
        t.is_large = false;
    }
    MSW_CHECK(t.base == addr);
    return t;
}

bool
QuarantineRuntime::absorb_double_free(void* ptr, std::uintptr_t base)
{
    if (!quarantine_bitmap_.test_and_set(base))
        return false;
    stats_.add(Stat::kDoubleFrees);
    if (config_.report_double_frees)
        MSW_LOG_WARN("double free of %p absorbed", ptr);
    return true;
}

std::size_t
QuarantineRuntime::usable_size(const void* ptr) const
{
    // One byte of the underlying allocation is reserved for the
    // end-pointer guarantee; never report it as usable.
    return jade_.usable_size(ptr) - 1;
}

void
QuarantineRuntime::flush()
{
    quarantine_.flush_thread_buffer();
    jade_.flush();
    // Wait out any in-flight or requested sweep (no-op in synchronous
    // mode; serves stalled requests on this thread otherwise).
    controller_.wait_idle();
}

void
QuarantineRuntime::add_root(const void* base, std::size_t len)
{
    roots_.add_root(base, len);
}

void
QuarantineRuntime::remove_root(const void* base)
{
    roots_.remove_root(base);
}

// msw-analyze: slow-path(once-per-thread registration at thread birth,
// not a per-allocation operation)
void
QuarantineRuntime::register_mutator_thread()
{
    roots_.register_current_thread();
    // Arm the lifecycle auto-drain: if this thread exits without the
    // matching unregister call, the TSD destructor performs it.
    lifecycle::note_mutator_thread(this);
}

void
QuarantineRuntime::unregister_mutator_thread()
{
    lifecycle::forget_mutator_thread();
    quarantine_.flush_thread_buffer();
    jade_.flush();
    roots_.unregister_current_thread();
    // A sweep that snapshotted the stack list before the removal may
    // still be scanning this thread's stack; the thread must not exit
    // (and its stack must not be unmapped) until that sweep drains.
    while (controller_.sweep_in_progress()) {
        struct timespec ts {
            0, 1000000
        };
        ::nanosleep(&ts, nullptr);
    }
}

std::vector<Range>
QuarantineRuntime::internal_regions() const
{
    std::vector<Range> out;
    const auto add = [&out](const vm::Reservation& r) {
        if (r.size() != 0)
            out.push_back(Range{r.base(), r.size()});
    };
    add(jade_.extents().meta_reservation());
    add(jade_.extents().page_map_reservation());
    add(mark_bits_.storage());
    add(mark_bits_.chunk_storage());
    add(quarantine_bitmap_.storage());
    add(quarantine_bitmap_.chunk_storage());
    add(access_map_.storage());
    return out;
}

alloc::AllocatorStats
QuarantineRuntime::stats() const
{
    const quarantine::QuarantineStats qs = quarantine_.stats();
    alloc::AllocatorStats s;
    const std::size_t jade_live = jade_.live_bytes();
    const std::size_t quarantined =
        qs.pending_bytes + qs.failed_bytes + qs.unmapped_bytes;
    s.live_bytes = jade_live > quarantined ? jade_live - quarantined : 0;
    s.committed_bytes = access_map_.committed_bytes();
    s.metadata_bytes =
        jade_.stats().metadata_bytes + mark_bits_.shadow_bytes() * 2;
    s.quarantine_bytes = quarantined;
    s.sweeps = controller_.sweeps_done();
    s.alloc_calls = stats_.read(Stat::kAllocCalls);
    s.free_calls = stats_.read(Stat::kFreeCalls);
    return s;
}

}  // namespace msw::core
