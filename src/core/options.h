/**
 * @file
 * MineSweeper configuration.
 *
 * The toggles map one-to-one onto the paper's evaluation axes:
 *  - mode: fully concurrent vs mostly concurrent (stop-the-world recheck)
 *    vs synchronous (sweeps inline on the freeing thread) — §4.3, Fig 13;
 *  - zeroing / unmapping / purging and helper_threads: the optimisation
 *    ablation of §5.4 (Figs 15-16);
 *  - quarantine_enabled / sweep_enabled / keep_failed: the "partial
 *    versions" of §5.5 (Fig 17);
 *  - sweep_threshold (15 %), unmapped_factor (9x) and the allocation-
 *    pausing backpressure: §3.2, §4.2, §5.7.
 */
#pragma once

#include <cstddef>
#include <cstdint>

#include "alloc/jade_allocator.h"

namespace msw::core {

enum class Mode {
    /**
     * Single concurrent marking pass, no stop-the-world. Guarantees every
     * dangling pointer that does not move during the sweep is found.
     * The paper's recommended default.
     */
    kFullyConcurrent,
    /**
     * Concurrent marking plus a brief stop-the-world recheck of pages
     * dirtied during marking — MarkUs-equivalent guarantees (§4.3).
     */
    kMostlyConcurrent,
    /**
     * Sweeps run inline on the thread that trips the threshold. Used by
     * the ablation's pre-concurrency configurations.
     */
    kSynchronous,
};

struct Options {
    Mode mode = Mode::kFullyConcurrent;

    /** Sweep when quarantine exceeds this fraction of the live heap. */
    double sweep_threshold = 0.15;

    /** Do not sweep below this many quarantined bytes (startup damping). */
    std::size_t min_sweep_bytes = std::size_t{1} << 20;

    /** Zero-fill quarantined allocations on free() (§4.1). */
    bool zeroing = true;

    /** Release physical pages of large quarantined allocations (§4.2). */
    bool unmapping = true;

    /** Full allocator purge after every sweep (§4.5). */
    bool purging = true;

    /** Helper sweep threads in addition to the main sweeper (§4.4). */
    unsigned helper_threads = 6;

    /**
     * Sweep when unmapped quarantine exceeds this multiple of the
     * program's committed footprint (§4.2: nine times).
     */
    double unmapped_factor = 9.0;

    /**
     * Pause allocations briefly when the quarantine exceeds this multiple
     * of the live heap and a sweep is running (§5.7 backpressure).
     * 0 disables pausing.
     */
    double pause_factor = 8.0;

    /** Entries per thread-local quarantine buffer. */
    std::size_t tl_buffer_entries = 64;

    // --- Partial versions for the overhead-source study (§5.5) ---------

    /**
     * If false, free() forwards to the allocator after applying
     * zeroing/unmapping; nothing is quarantined (Fig 17 versions 1-2).
     */
    bool quarantine_enabled = true;

    /**
     * If false, sweeps skip the marking phase and release every
     * quarantined entry unconditionally (Fig 17 versions 3-4).
     */
    bool sweep_enabled = true;

    /**
     * If false, entries with dangling pointers are deallocated anyway
     * after the check (Fig 17 version 5). Unsafe; measurement only.
     */
    bool keep_failed = true;

    /** Report double frees to stderr (the paper's debug mode, §3). */
    bool report_double_frees = false;

    // --- Resilience under memory pressure ------------------------------

    /**
     * Attempts alloc() makes when the substrate fails (heap exhausted or
     * transient commit failure). Each attempt after the first runs the
     * emergency path: synchronous sweep draining reclaimable quarantine,
     * then a full purge. alloc() returns nullptr — never aborts — once
     * they are exhausted.
     */
    unsigned alloc_retry_attempts = 4;

    /** Backoff before each alloc() retry, doubled per attempt (µs). */
    unsigned alloc_retry_backoff_us = 100;

    /**
     * Deadline for the background sweeper to pick up a sweep request.
     * A mutator observing a miss logs once, falls back to synchronous
     * sweeping, and keeps honouring the quarantine threshold. 0 disables
     * the watchdog.
     */
    std::uint64_t watchdog_timeout_ms = 2000;

    /**
     * Capacity of the deferred-unmap queue used while a sweep is
     * scanning. Overflowing entries skip the unmap optimisation (they are
     * zeroed instead and stay quarantined — safe, just less memory win).
     */
    std::size_t max_pending_unmaps = 4096;

    /** Substrate allocator configuration. */
    alloc::JadeAllocator::Options jade{};
};

}  // namespace msw::core
