/**
 * @file
 * MineSweeper: drop-in use-after-free mitigation (the paper's core system).
 *
 * MineSweeper wraps a JadeHeap allocator. free() does not deallocate:
 * the allocation is zero-filled (or its pages unmapped, if large) and
 * placed in quarantine. When the quarantine grows past a threshold, a
 * background sweeper linearly scans all committed heap pages, registered
 * roots and mutator stacks, marking in a shadow map every word that points
 * into the heap. Quarantined allocations with no marked granule provably
 * have no (aligned, unhidden) dangling pointers and are released to the
 * real allocator; the rest remain quarantined as failed frees.
 *
 * Guarantees (matching the paper §1.2/§3.3):
 *  - an allocation is never recycled while a discoverable pointer to it
 *    exists in scanned memory, so use-after-free cannot become
 *    use-after-reallocate;
 *  - double frees are idempotent;
 *  - semantics of correct programs are unchanged (nothing is freed that
 *    the programmer did not free; hidden/XORed pointers never crash the
 *    scheme, they merely fall outside the guarantee);
 *  - every allocation is served with at least one byte of slack so
 *    one-past-the-end pointers keep their object quarantined.
 */
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "alloc/allocator.h"
#include "alloc/jade_allocator.h"
#include "core/options.h"
#include "util/bits.h"
#include "util/failpoint.h"
#include "util/mutex.h"
#include "util/spin_lock.h"
#include "util/thread_annotations.h"
#include "quarantine/quarantine.h"
#include "sweep/dirty_tracker.h"
#include "sweep/page_access_map.h"
#include "sweep/roots.h"
#include "sweep/shadow_map.h"
#include "sweep/sweeper.h"

namespace msw::core {

/** Counters describing sweeping activity (Fig 12, Fig 14 inputs). */
struct SweepStats {
    std::uint64_t sweeps = 0;
    std::uint64_t entries_released = 0;
    std::uint64_t bytes_released = 0;
    std::uint64_t failed_frees = 0;      ///< Entry-test failures (cumulative).
    std::uint64_t double_frees = 0;
    std::uint64_t bytes_scanned = 0;     ///< Total marking traffic.
    std::uint64_t sweep_cpu_ns = 0;      ///< Sweeper + helper CPU time.
    std::uint64_t stw_ns = 0;            ///< Total stop-the-world time.
    std::uint64_t pause_ns = 0;          ///< Allocation-pausing wait time.
    std::uint64_t unmapped_entries = 0;  ///< Large allocations unmapped.

    // Resilience counters (memory-pressure degradation + watchdog).
    std::uint64_t emergency_sweeps = 0;   ///< Reclaims run from alloc().
    std::uint64_t commit_retries = 0;     ///< alloc() retries after failure.
    std::uint64_t watchdog_fallbacks = 0; ///< Synchronous watchdog sweeps.
    std::uint64_t oom_returns = 0;        ///< alloc() nullptr returns.

    /** Process-global failpoint fire counts, indexed by util::Failpoint. */
    std::uint64_t failpoint_hits[util::kNumFailpoints] = {};
};

class MineSweeper final : public alloc::Allocator
{
  public:
    explicit MineSweeper(const Options& opts = {});
    ~MineSweeper() override;

    MineSweeper(const MineSweeper&) = delete;
    MineSweeper& operator=(const MineSweeper&) = delete;

    // ------------------------------------------------------- Allocator
    void* alloc(std::size_t size) override;
    void free(void* ptr) override;
    std::size_t usable_size(const void* ptr) const override;
    void* alloc_aligned(std::size_t alignment, std::size_t size) override;
    alloc::AllocatorStats stats() const override;
    const char* name() const override { return "minesweeper"; }

    /** realloc with quarantine-correct free of the old block. */
    void* realloc(void* ptr, std::size_t new_size) override;

    /** Complete any in-flight sweep and flush quarantine buffers. */
    void flush() override;

    // ------------------------------------------------------ Roots/threads

    /** Register a root range to be scanned by sweeps (globals, tables). */
    void add_root(const void* base, std::size_t len);

    /** Remove a registered root range. */
    void remove_root(const void* base);

    /**
     * Register the calling thread: its stack is scanned by sweeps and it
     * participates in stop-the-world phases (mostly-concurrent mode).
     */
    void register_mutator_thread();

    /** Unregister the calling thread (required before it exits). */
    void unregister_mutator_thread();

    /**
     * Install a callback producing *additional* root ranges, re-evaluated
     * at the start of every sweep. The LD_PRELOAD shim uses this to
     * rescan /proc/self/maps so globals and late-created regions are
     * covered without explicit registration. Ranges overlapping this
     * instance's internal_regions() are excluded automatically.
     */
    void
    set_extra_roots_provider(
        std::function<std::vector<sweep::Range>()> provider)
    {
        extra_roots_provider_ = std::move(provider);
    }

    /**
     * Memory regions owned by this instance's machinery (shadow maps,
     * allocator metadata, page maps). Conservative root scans must skip
     * them: their contents are bit-patterns and metadata, not program
     * pointers.
     */
    std::vector<sweep::Range> internal_regions() const;

    // ---------------------------------------------------------- Control

    /** Trigger a sweep now and wait for it to complete. */
    void force_sweep();

    SweepStats sweep_stats() const;

    const Options& options() const { return opts_; }

    /** The substrate allocator (tests and benchmarks introspect it). */
    alloc::JadeAllocator& substrate() { return jade_; }
    const alloc::JadeAllocator& substrate() const { return jade_; }

    /** True while an allocation with this base is quarantined. */
    bool
    in_quarantine(const void* ptr) const
    {
        return quarantine_bitmap_.test(to_addr(ptr));
    }

  private:
    class Hooks;

    void quarantine_free(void* ptr, std::uintptr_t base, std::size_t usable,
                         bool is_large);
    [[nodiscard]] bool unmap_entry(std::uintptr_t base, std::size_t usable);
    void drain_pending_unmaps_locked() MSW_REQUIRES(unmap_lock_);
    void maybe_trigger_sweep();
    void maybe_pause_allocations();
    void run_sweep();
    [[nodiscard]] bool release_entry(const quarantine::Entry& entry);
    void sweeper_loop();
    std::vector<sweep::Range> scan_ranges() const;

    /** Slow path once the substrate returns nullptr: retry with backoff,
        interleaving emergency reclaims; nullptr only when exhausted. */
    void* alloc_slow(std::size_t request, std::size_t alignment);

    /** Synchronous sweep + full purge to free memory *now*. */
    void emergency_reclaim();

    /**
     * Run one sweep on the calling thread if no sweep is in flight
     * (single-sweeper invariant via CAS on sweep_in_progress_). Returns
     * false if another thread holds the sweep or shutdown has begun.
     */
    bool run_sweep_now();

    /** Mutator-side stall detection; falls back to a synchronous sweep. */
    void check_sweeper_watchdog();

    /** protect_rw with bounded retry; false once attempts are exhausted. */
    bool protect_rw_with_retry(std::uintptr_t base, std::size_t len);

    Options opts_;
    alloc::JadeAllocator jade_;
    std::function<std::vector<sweep::Range>()> extra_roots_provider_;
    std::unique_ptr<Hooks> hooks_;
    sweep::ShadowMap shadow_;
    sweep::ShadowMap quarantine_bitmap_;
    sweep::PageAccessMap access_map_;
    sweep::RootRegistry roots_;
    quarantine::Quarantine quarantine_;
    sweep::Marker marker_;
    std::unique_ptr<sweep::SweepWorkers> workers_;
    std::unique_ptr<sweep::DirtyTracker> tracker_;

    // Deferred page-unmapping while a sweep is scanning (readers must not
    // lose pages mid-scan). Capacity is fixed at construction
    // (opts_.max_pending_unmaps); see ctor.
    SpinLock unmap_lock_{util::LockRank::kCoreUnmap};
    std::atomic<bool> sweep_active_{false};
    std::vector<quarantine::Entry> pending_unmaps_
        MSW_GUARDED_BY(unmap_lock_);

    // Sweeper thread control. Rank kCoreControl: acquired with nothing
    // else held; everything the sweep does (quarantine, bins, extents)
    // ranks higher.
    std::thread sweeper_thread_;
    mutable Mutex sweep_mu_{util::LockRank::kCoreControl};
    std::condition_variable_any sweep_cv_;
    std::condition_variable_any sweep_done_cv_;
    bool sweep_requested_ MSW_GUARDED_BY(sweep_mu_) = false;
    bool shutdown_ MSW_GUARDED_BY(sweep_mu_) = false;
    std::atomic<bool> sweep_in_progress_{false};
    std::atomic<bool> pause_flag_{false};
    std::atomic<std::uint64_t> sweeps_done_{0};

    // Watchdog: timestamp of the oldest unserved sweep request (0 = none)
    // and a sticky "sweeper considered stalled" latch, cleared when the
    // background sweeper resumes serving requests.
    std::atomic<std::uint64_t> sweep_request_ns_{0};
    std::atomic<bool> watchdog_tripped_{false};

    // Threads blocked in force_sweep()/flush()/pause waits. The destructor
    // drains these before tearing members down, so control-path calls that
    // raced shutdown return safely instead of touching freed state.
    std::atomic<int> control_waiters_{0};

    // Statistics.
    std::atomic<std::uint64_t> entries_released_{0};
    std::atomic<std::uint64_t> bytes_released_{0};
    std::atomic<std::uint64_t> failed_frees_{0};
    std::atomic<std::uint64_t> double_frees_{0};
    std::atomic<std::uint64_t> bytes_scanned_{0};
    std::atomic<std::uint64_t> sweep_cpu_ns_{0};
    std::atomic<std::uint64_t> stw_ns_{0};
    std::atomic<std::uint64_t> pause_ns_{0};
    std::atomic<std::uint64_t> unmapped_entries_{0};
    std::atomic<std::uint64_t> alloc_calls_{0};
    std::atomic<std::uint64_t> free_calls_{0};
    std::atomic<std::uint64_t> emergency_sweeps_{0};
    std::atomic<std::uint64_t> commit_retries_{0};
    std::atomic<std::uint64_t> watchdog_fallbacks_{0};
    std::atomic<std::uint64_t> oom_returns_{0};
};

}  // namespace msw::core
