/**
 * @file
 * MineSweeper: drop-in use-after-free mitigation (the paper's core system).
 *
 * MineSweeper wraps a JadeHeap allocator. free() does not deallocate:
 * the allocation is zero-filled (or its pages unmapped, if large) and
 * placed in quarantine. When the quarantine grows past a threshold, a
 * background sweeper linearly scans all committed heap pages, registered
 * roots and mutator stacks, marking in a shadow map every word that points
 * into the heap. Quarantined allocations with no marked granule provably
 * have no (aligned, unhidden) dangling pointers and are released to the
 * real allocator; the rest remain quarantined as failed frees.
 *
 * Guarantees (matching the paper §1.2/§3.3):
 *  - an allocation is never recycled while a discoverable pointer to it
 *    exists in scanned memory, so use-after-free cannot become
 *    use-after-reallocate;
 *  - double frees are idempotent;
 *  - semantics of correct programs are unchanged (nothing is freed that
 *    the programmer did not free; hidden/XORed pointers never crash the
 *    scheme, they merely fall outside the guarantee);
 *  - every allocation is served with at least one byte of slack so
 *    one-past-the-end pointers keep their object quarantined.
 *
 * The mechanism layers live in the QuarantineRuntime base (see
 * runtime_base.h): SweepController decides *when* a sweep runs, Reclaimer
 * decides *how* quarantined memory comes back, StatCells counts the fast
 * path without cache-line contention. This class keeps the policy: the
 * linear mark (sweep::Marker), the trigger thresholds and the allocation
 * degradation ladder.
 */
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/options.h"
#include "core/runtime_base.h"
#include "sweep/sweeper.h"
#include "util/failpoint.h"
#include "util/spin_lock.h"

namespace msw::core {

/** Counters describing sweeping activity (Fig 12, Fig 14 inputs). */
struct SweepStats {
    std::uint64_t sweeps = 0;
    std::uint64_t entries_released = 0;
    std::uint64_t bytes_released = 0;
    std::uint64_t failed_frees = 0;      ///< Entry-test failures (cumulative).
    std::uint64_t double_frees = 0;
    std::uint64_t bytes_scanned = 0;     ///< Total marking traffic.
    std::uint64_t sweep_cpu_ns = 0;      ///< Sweeper + helper CPU time.
    std::uint64_t stw_ns = 0;            ///< Total stop-the-world time.
    std::uint64_t pause_ns = 0;          ///< Allocation-pausing wait time.
    std::uint64_t unmapped_entries = 0;  ///< Large allocations unmapped.

    // Sweep-phase breakdown (telemetry layer; subsets of sweep_cpu_ns).
    std::uint64_t phase_dirty_scan_ns = 0;  ///< Root/lock-in setup.
    std::uint64_t phase_mark_ns = 0;        ///< Linear heap + root marking.
    std::uint64_t phase_drain_ns = 0;       ///< Deferred-free drain.
    std::uint64_t phase_release_ns = 0;     ///< Entry test + release batches.

    // Resilience counters (memory-pressure degradation + watchdog).
    std::uint64_t emergency_sweeps = 0;   ///< Reclaims run from alloc().
    std::uint64_t commit_retries = 0;     ///< alloc() retries after failure.
    std::uint64_t watchdog_fallbacks = 0; ///< Synchronous watchdog sweeps.
    std::uint64_t oom_returns = 0;        ///< alloc() nullptr returns.

    // Hardened-policy counters (zero under the default policy).
    std::uint64_t canary_checks = 0;      ///< free()-time canary tests.
    std::uint64_t canary_violations = 0;  ///< Tampered canaries/fills seen.
    std::uint64_t sweep_fill_checks = 0;  ///< Release-time fill audits.
    std::uint64_t release_shuffles = 0;   ///< Randomized release batches.

    /** Process-global failpoint fire counts, indexed by util::Failpoint. */
    std::uint64_t failpoint_hits[util::kNumFailpoints] = {};
};

class MineSweeper final : public QuarantineRuntime
{
  public:
    explicit MineSweeper(const Options& opts = {});
    ~MineSweeper() override;

    MineSweeper(const MineSweeper&) = delete;
    MineSweeper& operator=(const MineSweeper&) = delete;

    // ------------------------------------------------------- Allocator
    void* alloc(std::size_t size) override;
    void free(void* ptr) override;
    void* alloc_aligned(std::size_t alignment, std::size_t size) override;
    const char* name() const override { return "minesweeper"; }

    /** realloc with quarantine-correct free of the old block. */
    void* realloc(void* ptr, std::size_t new_size) override;

    /**
     * Install a callback producing *additional* root ranges, re-evaluated
     * at the start of every sweep. The LD_PRELOAD shim uses this to
     * rescan /proc/self/maps so globals and late-created regions are
     * covered without explicit registration. Ranges overlapping this
     * instance's internal_regions() are excluded automatically. Safe
     * against a concurrently running sweep.
     */
    void set_extra_roots_provider(
        std::function<std::vector<sweep::Range>()> provider);

    // ---------------------------------------------------------- Control

    /** Trigger a sweep now and wait for it to complete. */
    void force_sweep();

    SweepStats sweep_stats() const;

    const Options& options() const { return opts_; }

    // ------------------------------------------------- Process lifecycle

    /**
     * atfork composition, called by core/lifecycle (never directly):
     * prepare_fork() quiesces the sweep and acquires every subsystem
     * lock in rank order — controller (10), roots (12), workers (14),
     * reclaimer (16), extra-roots config (18), quarantine (20/22) and
     * the jade substrate (30–42) — so the child forks with every
     * invariant consistent. parent_after_fork() releases in reverse.
     * child_after_fork() releases in reverse, resets state describing
     * threads that do not exist in the child (sweep control, STW
     * handshake, helper pool), zeroes the event counters (gauges
     * describing the inherited heap are preserved) and then runs the
     * allocating fixups — pruning dead mutator records and adopting
     * orphaned thread caches — once no prepare-held lock remains.
     */
    void prepare_fork();
    void parent_after_fork();
    void child_after_fork();

    /**
     * Stop the sweeping machinery ahead of process teardown (idempotent;
     * delegates to the controller's shutdown drain). Allocation keeps
     * working afterwards — the substrate needs no sweeper — which is
     * what the shim's destructor-time degradation relies on.
     */
    void quiesce();

    /**
     * Completed-sweep count — the quarantine epoch quoted by crash
     * reports. Async-signal-safe: one relaxed atomic load.
     */
    std::uint64_t sweep_epoch() const { return controller_.sweeps_done(); }

  private:
    /** free() body; the public entry only adds optional op timing. */
    void free_impl(void* ptr);
    void quarantine_free(void* ptr, std::uintptr_t base, std::size_t usable,
                         bool is_large);
    void maybe_trigger_sweep();
    void run_sweep();
    std::vector<sweep::Range> scan_ranges() const;

    /** Slow path once the substrate returns nullptr: retry with backoff,
        interleaving emergency reclaims; nullptr only when exhausted. */
    void* alloc_slow(std::size_t request, std::size_t alignment);

    /** Synchronous sweep + full purge to free memory *now*. */
    void emergency_reclaim();

    static Config make_config(const Options& opts);

    Options opts_;
    sweep::Marker marker_;
    std::unique_ptr<sweep::SweepWorkers> workers_;

    // The provider is installed from the shim while the sweeper may be
    // mid-scan; scan_ranges() copies it under this lock before invoking.
    // Rank kCoreConfig: leaf, held only around the std::function copy.
    mutable SpinLock extra_roots_lock_{util::LockRank::kCoreConfig};
    std::function<std::vector<sweep::Range>()> extra_roots_provider_
        MSW_GUARDED_BY(extra_roots_lock_);
};

}  // namespace msw::core
