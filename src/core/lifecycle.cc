#include "core/lifecycle.h"

#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include "core/minesweeper.h"
#include "util/bits.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/lock_rank.h"
#include "util/rng.h"
#include "util/sigsafe_io.h"
#include "util/spin_lock.h"
#include "util/thread_annotations.h"

namespace msw::core::lifecycle {

namespace {

// ------------------------------------------------------------- registry

// Rank kLifecycle: the atfork prepare handler takes this first and then
// walks the runtime's entire hierarchy (10..42), so it must rank below
// everything else in the process.
SpinLock g_runtime_lock{util::LockRank::kLifecycle};
MineSweeper* g_registered MSW_GUARDED_BY(g_runtime_lock) = nullptr;

// Lock-free mirror of g_registered for the signal handler and other
// readers that must not block (classify_fault runs inside SIGSEGV).
std::atomic<MineSweeper*> g_registered_relaxed{nullptr};

pthread_once_t g_atfork_once = PTHREAD_ONCE_INIT;

// --------------------------------------------------------------- atfork

// The handlers run on whatever thread calls fork(); the acquire (in
// prepare) and the release (in parent/child) pair across the fork, so
// the static analysis cannot follow them. The runtime lock-rank
// validator still can: lock_rank_fork_begin() opens a window in which
// bulk same-rank runs (every bin lock, every arena) are tolerated
// while genuine inversions keep panicking.

void
atfork_prepare() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    g_runtime_lock.lock();
    util::lock_rank_fork_begin();
    MineSweeper* rt = g_registered;
    if (rt != nullptr)
        rt->prepare_fork();
    // Test hook: hold the fully-locked prepare window open so fork
    // races (concurrent mallocs, thread exits) pile up against it.
    if (util::failpoint_should_fail(util::Failpoint::kForkPrepare)) {
        struct timespec ts {
            0, 1000000
        };
        ::nanosleep(&ts, nullptr);
    }
    // Last: kMetrics (60) is the highest band in the hierarchy.
    util::failpoint_prepare_fork();
}

void
atfork_parent() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    util::failpoint_parent_after_fork();
    MineSweeper* rt = g_registered;
    if (rt != nullptr)
        rt->parent_after_fork();
    util::lock_rank_fork_end();
    g_runtime_lock.unlock();
}

void
atfork_child() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    util::failpoint_child_after_fork();
    // Reseed per-thread RNG state before any allocation in the child:
    // policy randomization must diverge from the parent immediately, not
    // replay its stream.
    msw::rng_note_fork_child();
    MineSweeper* rt = g_registered;
    if (rt != nullptr)
        rt->child_after_fork();
    util::lock_rank_fork_end();
    g_runtime_lock.unlock();
    // The child has exactly one thread (this one); any rank stack it
    // inherited from pre-fork critical sections is stale.
    util::lock_rank_reset_thread();
}

void
install_atfork()
{
    MSW_CHECK(::pthread_atfork(&atfork_prepare, &atfork_parent,
                               &atfork_child) == 0);
}

// -------------------------------------------------- thread-exit drain

pthread_key_t g_mutator_key;
pthread_once_t g_mutator_key_once = PTHREAD_ONCE_INIT;

void
mutator_key_destructor(void* value) MSW_NO_THREAD_SAFETY_ANALYSIS
{
    auto* rt = static_cast<QuarantineRuntime*>(value);
    // Hold the registry lock across the drain: the runtime cannot be
    // destroyed mid-unregister (its destructor's unregister_runtime()
    // blocks on this lock), and the rank-4 lock sits below everything
    // the drain acquires (quarantine, bins, roots).
    g_runtime_lock.lock();
    const bool alive = g_registered != nullptr &&
                       static_cast<QuarantineRuntime*>(g_registered) == rt;
    if (alive)
        rt->unregister_mutator_thread();
    g_runtime_lock.unlock();
}

void
make_mutator_key()
{
    MSW_CHECK(::pthread_key_create(&g_mutator_key,
                                   &mutator_key_destructor) == 0);
}

// ----------------------------------------------------- crash reporting

std::atomic<bool> g_crash_installed{false};
struct sigaction g_prev_segv;
struct sigaction g_prev_bus;

/**
 * SIGSEGV/SIGBUS classification handler. Async-signal-safe by
 * construction: classify_fault() performs only atomic loads and
 * lock-free metadata reads, reporting uses util::SigsafeWriter
 * (write(2) onto a stack buffer), and handing off uses sigaction(2).
 * It must not allocate — it runs under a fault that may originate
 * inside the allocator itself.
 */
void
crash_signal_handler(int sig, siginfo_t* info, void* /*ucontext*/)
{
    const int saved_errno = errno;
    const void* addr = info != nullptr ? info->si_addr : nullptr;
    std::uint64_t epoch = 0;
    const FaultClass cls = classify_fault(addr, &epoch);
    if (cls == FaultClass::kQuarantined || cls == FaultClass::kHeapLive ||
        cls == FaultClass::kHeapUnmapped) {
        util::SigsafeWriter w(STDERR_FILENO);
        w.str("minesweeper: ");
        w.str(sig == SIGBUS ? "SIGBUS" : "SIGSEGV");
        w.str(" at ");
        w.hex(to_addr(addr));
        switch (cls) {
        case FaultClass::kQuarantined:
            w.str(": likely use-after-free, quarantined by free() at "
                  "epoch ");
            w.dec(epoch);
            break;
        case FaultClass::kHeapLive:
            w.str(": inside a live heap allocation (not quarantined; "
                  "stray write or overflow?)");
            break;
        default:
            w.str(": inside the heap reservation but outside any "
                  "tracked allocation");
            break;
        }
        w.str("\n");
        w.flush();
    }
    // Hand off: restore the previous dispositions and return; the
    // faulting instruction re-executes and re-faults into them (or the
    // default action, terminating with the original signal).
    ::sigaction(SIGSEGV, &g_prev_segv, nullptr);
    ::sigaction(SIGBUS, &g_prev_bus, nullptr);
    errno = saved_errno;
}

}  // namespace

// ------------------------------------------------------------ public API

void
register_runtime(MineSweeper* rt)
{
    ::pthread_once(&g_atfork_once, &install_atfork);
    LockGuard<SpinLock> g(g_runtime_lock);
    if (g_registered == nullptr) {
        g_registered = rt;
        g_registered_relaxed.store(rt, std::memory_order_release);
    }
}

void
unregister_runtime(MineSweeper* rt)
{
    LockGuard<SpinLock> g(g_runtime_lock);
    if (g_registered == rt) {
        g_registered = nullptr;
        g_registered_relaxed.store(nullptr, std::memory_order_release);
    }
}

MineSweeper*
registered_runtime()
{
    return g_registered_relaxed.load(std::memory_order_acquire);
}

FaultClass
classify_fault(const void* addr, std::uint64_t* epoch_out)
{
    MineSweeper* rt = g_registered_relaxed.load(std::memory_order_acquire);
    if (rt == nullptr)
        return FaultClass::kNoRuntime;
    const std::uintptr_t a = to_addr(addr);
    const alloc::JadeAllocator& jade = rt->substrate();
    if (!jade.reservation().contains(a))
        return FaultClass::kOutsideHeap;
    if (epoch_out != nullptr)
        *epoch_out = rt->sweep_epoch();
    alloc::JadeAllocator::AllocationInfo info;
    if (!jade.lookup_relaxed(a, &info))
        return FaultClass::kHeapUnmapped;
    if (rt->in_quarantine(to_ptr(info.base)))
        return FaultClass::kQuarantined;
    return info.live ? FaultClass::kHeapLive : FaultClass::kHeapUnmapped;
}

void
install_crash_handler()
{
    bool expected = false;
    if (!g_crash_installed.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
        return;
    }
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = &crash_signal_handler;
    ::sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_SIGINFO;
    MSW_CHECK(::sigaction(SIGSEGV, &sa, &g_prev_segv) == 0);
    MSW_CHECK(::sigaction(SIGBUS, &sa, &g_prev_bus) == 0);
}

bool
install_crash_handler_from_env()
{
    const char* v = std::getenv("MSW_CRASH_REPORT");
    if (v == nullptr || v[0] == '\0' ||
        (v[0] == '0' && v[1] == '\0')) {
        return false;
    }
    install_crash_handler();
    return true;
}

bool
crash_handler_installed()
{
    return g_crash_installed.load(std::memory_order_acquire);
}

void
note_mutator_thread(QuarantineRuntime* rt)
{
    ::pthread_once(&g_mutator_key_once, &make_mutator_key);
    const bool is_registered = [&] {
        LockGuard<SpinLock> g(g_runtime_lock);
        return g_registered != nullptr &&
               static_cast<QuarantineRuntime*>(g_registered) == rt;
    }();
    if (is_registered)
        MSW_CHECK(::pthread_setspecific(g_mutator_key, rt) == 0);
}

void
forget_mutator_thread()
{
    ::pthread_once(&g_mutator_key_once, &make_mutator_key);
    ::pthread_setspecific(g_mutator_key, nullptr);
}

}  // namespace msw::core::lifecycle
