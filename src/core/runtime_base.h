/**
 * @file
 * The layered UAF-runtime base classes.
 *
 * Every system under evaluation used to re-implement the same plumbing by
 * hand (MarkUs duplicated MineSweeper's hooks, epochs, root registration
 * and stats surface almost line for line). The hierarchy now is:
 *
 *   alloc::Allocator                    the drop-in malloc interface
 *     └─ RuntimeBase                    sharded statistics surface
 *          ├─ FFMalloc                  (one-time allocator; no quarantine)
 *          └─ QuarantineRuntime         jade substrate + quarantine epochs
 *               │                       + committed-page hooks + roots
 *               │                       + reclaimer + sweep controller
 *               ├─ MineSweeper          linear sweep (paper §3–§4)
 *               └─ MarkUs               transitive conservative marking
 *
 * QuarantineRuntime owns the *mechanism* layers extracted from the old
 * god-object — SweepController (when sweeps run), Reclaimer (how memory
 * comes back) and StatCells (how the fast path counts) — while the
 * derived classes keep only their *policy*: what a sweep/mark pass
 * actually does and when to trigger one.
 */
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "alloc/allocator.h"
#include "alloc/jade_allocator.h"
#include "core/reclaimer.h"
#include "core/stat_cells.h"
#include "core/sweep_controller.h"
#include "quarantine/quarantine.h"
#include "sweep/dirty_tracker.h"
#include "sweep/page_access_map.h"
#include "sweep/roots.h"
#include "sweep/shadow_map.h"

namespace msw::core {

/**
 * Statistics surface shared by every UAF runtime: a sharded counter block
 * replacing the per-class contended atomics.
 */
class RuntimeBase : public alloc::Allocator
{
  public:
    /** The sharded counter block (tests and benchmarks introspect it). */
    StatCells& stat_cells() { return stats_; }
    const StatCells& stat_cells() const { return stats_; }

  protected:
    RuntimeBase() = default;

    mutable StatCells stats_;
};

/**
 * Shared plumbing for quarantine-based runtimes sitting on the JadeHeap
 * substrate: the committed-page hooks, the quarantine epochs and
 * double-free bitmap, root/thread registration, the reclaimer and the
 * sweep controller. Derived classes provide the sweep function and the
 * trigger policy.
 */
class QuarantineRuntime : public RuntimeBase
{
  public:
    struct Config {
        alloc::JadeAllocator::Options jade{};
        std::size_t tl_buffer_entries = 64;
        Reclaimer::Config reclaim{};
        SweepController::Config control{};
        /** Create a dirty tracker (mostly-concurrent marking). */
        bool make_tracker = false;
        /** Report absorbed double frees to stderr (debug mode, §3). */
        bool report_double_frees = false;
        /**
         * Allocation policy for the whole runtime (substrate placement,
         * quarantine fill/canary, release ordering). The constructor
         * resolves this once — from jade.policy or MSW_POLICY — and
         * copies the resolved pointer into jade.policy and
         * reclaim.policy so every layer agrees; never null afterwards.
         */
        const alloc::AllocPolicy* policy = nullptr;
    };

    ~QuarantineRuntime() override;

    // ------------------------------------------------------ Roots/threads

    /** Register a root range to be scanned by sweeps (globals, tables). */
    void add_root(const void* base, std::size_t len);

    /** Remove a registered root range. */
    void remove_root(const void* base);

    /**
     * Register the calling thread: its stack is scanned by sweeps and it
     * participates in stop-the-world phases (mostly-concurrent mode).
     */
    void register_mutator_thread();

    /** Unregister the calling thread (required before it exits). */
    void unregister_mutator_thread();

    // ---------------------------------------------------------- Surface

    std::size_t usable_size(const void* ptr) const override;
    alloc::AllocatorStats stats() const override;

    /** Complete any in-flight sweep and flush quarantine buffers. */
    void flush() override;

    /** True while an allocation with this base is quarantined. */
    bool
    in_quarantine(const void* ptr) const
    {
        return quarantine_bitmap_.test(to_addr(ptr));
    }

    /** The substrate allocator (tests and benchmarks introspect it). */
    alloc::JadeAllocator& substrate() { return jade_; }
    const alloc::JadeAllocator& substrate() const { return jade_; }

    /** Registered mutator threads (tests assert lifecycle draining). */
    std::size_t
    mutator_thread_count() const
    {
        return roots_.num_threads();
    }

    /**
     * Memory regions owned by this instance's machinery (shadow maps,
     * allocator metadata, page maps). Conservative root scans must skip
     * them: their contents are bit-patterns and metadata, not program
     * pointers.
     */
    std::vector<sweep::Range> internal_regions() const;

  protected:
    /**
     * @param sweep_fn One full sweep/mark pass; stored, not invoked — the
     *        derived constructor calls controller_.start() once every
     *        member the pass touches exists.
     */
    QuarantineRuntime(const Config& config,
                      std::function<void()> sweep_fn);

    /** A freed pointer resolved against the substrate's metadata. */
    struct FreeTarget {
        std::uintptr_t base;
        std::size_t usable;
        bool is_large;
    };

    /** Resolve @p addr to its allocation; checks base==addr (invalid or
        interior frees are programming errors, as in the paper). */
    FreeTarget classify(std::uintptr_t addr) const;

    /**
     * Double-free de-duplication (paper §3): returns true (and counts)
     * if @p base is already quarantined — the free is idempotent.
     */
    bool absorb_double_free(void* ptr, std::uintptr_t base);

    Config config_;
    alloc::JadeAllocator jade_;
    sweep::ShadowMap mark_bits_;         ///< Per-sweep mark bits.
    sweep::ShadowMap quarantine_bitmap_; ///< Double-free de-dup.
    sweep::PageAccessMap access_map_;
    sweep::RootRegistry roots_;
    quarantine::Quarantine quarantine_;
    std::unique_ptr<sweep::DirtyTracker> tracker_;
    Reclaimer reclaimer_;
    SweepController controller_;

  private:
    class Hooks;

    std::unique_ptr<Hooks> hooks_;
};

}  // namespace msw::core
