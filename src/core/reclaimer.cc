#include "core/reclaimer.h"

#include <unistd.h>

#include <cstring>

#include "alloc/policy.h"
#include "util/bits.h"
#include "util/log.h"

namespace msw::core {

using quarantine::Entry;

void
Reclaimer::fill_free(void* ptr, std::size_t usable)
{
    if (config_.policy != nullptr && config_.policy->fill_free != nullptr)
        config_.policy->fill_free(ptr, usable);
    else
        std::memset(ptr, 0, usable);
}

Reclaimer::Reclaimer(const Config& config, alloc::JadeAllocator* jade,
                     sweep::PageAccessMap* access_map,
                     sweep::ShadowMap* quarantine_bitmap, StatCells* stats)
    : config_(config),
      jade_(jade),
      access_map_(access_map),
      quarantine_bitmap_(quarantine_bitmap),
      stats_(stats)
{
    LockGuard g(unmap_lock_);
    pending_unmaps_.reserve(config_.max_pending_unmaps);
}

Entry
Reclaimer::quarantine_prepare(void* ptr, std::uintptr_t base,
                              std::size_t usable, bool is_large)
{
    Entry entry = Entry::make(base, usable, false);

    if (config_.unmapping && is_large) {
        // Large allocations span exclusively-owned pages: release the
        // physical memory immediately (§4.2). If a sweep is scanning,
        // defer the decommit so concurrent marking never faults.
        entry = Entry::make(base, usable, true);
        LockGuard g(unmap_lock_);
        // msw-relaxed(epoch-handoff): read under unmap_lock_, which
        // begin_scan/end_scan hold when they flip it.
        if (scan_active_.load(std::memory_order_relaxed)) {
            if (pending_unmaps_.size() < config_.max_pending_unmaps) {
                pending_unmaps_.push_back(entry);
                stats_->add(Stat::kUnmappedEntries);
            } else {
                // Queue full: forgo the unmap for this entry (safe; it
                // just stays mapped while quarantined).
                entry = Entry::make(base, usable, false);
                if (config_.zeroing)
                    fill_free(ptr, usable);
            }
        } else if (unmap_entry(base, usable)) {
            stats_->add(Stat::kUnmappedEntries);
        } else {
            // Decommit refused under pressure: same safe downgrade as a
            // full queue — the entry stays mapped while quarantined.
            entry = Entry::make(base, usable, false);
            if (config_.zeroing)
                fill_free(ptr, usable);
        }
    } else if (config_.zeroing) {
        // Zeroing removes dangling pointers *from* quarantined data,
        // flattening the reference graph and breaking cycles (§4.1). The
        // policy hook may add a guard byte in the reserved tail slack,
        // which the sweeper verifies at release (alloc/policy.h).
        fill_free(ptr, usable);
    }

    return entry;
}

bool
Reclaimer::unmap_entry(std::uintptr_t base, std::size_t usable)
{
    if (jade_->reservation().decommit(base, usable) != vm::VmStatus::kOk) {
        return false;
    }
    access_map_->clear_range(base, usable);
    return true;
}

void
Reclaimer::drain_pending_locked()
{
    for (const Entry& e : pending_unmaps_) {
        // Entries released meanwhile must not be unmapped: their memory
        // may already be reallocated. Release clears the quarantine bit.
        if (quarantine_bitmap_->test(e.real_base())) {
            if (!unmap_entry(e.real_base(), e.usable)) {
                // Transient decommit failure: the entry simply keeps its
                // pages while quarantined. release_entry()'s protect_rw
                // and access-map restore are idempotent, so the stale
                // unmapped flag is harmless.
                MSW_LOG_DEBUG("deferred unmap of %zu bytes skipped",
                              e.usable);
            }
        }
    }
    pending_unmaps_.clear();
}

void
Reclaimer::begin_scan()
{
    LockGuard g(unmap_lock_);
    scan_active_.store(true, std::memory_order_release);
}

void
Reclaimer::drain_pending()
{
    LockGuard g(unmap_lock_);
    drain_pending_locked();
}

void
Reclaimer::end_scan()
{
    LockGuard g(unmap_lock_);
    scan_active_.store(false, std::memory_order_release);
    drain_pending_locked();
}

// The fork hooks hold unmap_lock_ across fork(); the pairing is
// enforced by core/lifecycle, outside what the static analysis can see.
void
Reclaimer::prepare_fork() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    unmap_lock_.lock();
}

void
Reclaimer::parent_after_fork() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    unmap_lock_.unlock();
}

void
Reclaimer::child_after_fork() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    // Queued deferred unmaps are kept: the entries remain quarantined in
    // the child and drain on its next sweep's end_scan().
    scan_active_.store(false, std::memory_order_release);
    unmap_lock_.unlock();
}

bool
Reclaimer::release_entry(const Entry& entry)
{
    if (entry.unmapped) {
        // Restore access before handing the range back; physical pages
        // refault as zeros, so the memory win persists until reuse.
        if (!protect_rw_with_retry(entry.real_base(), entry.usable))
            return false;
        access_map_->set_range(entry.real_base(), entry.usable);
    }
    quarantine_bitmap_->clear(entry.real_base());
    jade_->free_direct(to_ptr(entry.real_base()));
    return true;
}

bool
Reclaimer::protect_rw_with_retry(std::uintptr_t base, std::size_t len)
{
    constexpr int kAttempts = 10;
    unsigned backoff_us = 50;
    for (int i = 0; i < kAttempts; ++i) {
        if (jade_->reservation().protect_rw(base, len) == vm::VmStatus::kOk)
            return true;
        ::usleep(backoff_us);
        if (backoff_us < 10'000)
            backoff_us *= 2;
    }
    return false;
}

}  // namespace msw::core
