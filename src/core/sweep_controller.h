/**
 * @file
 * Sweeper-thread lifecycle and control plane, extracted from the
 * MineSweeper god-object so MineSweeper and MarkUs share one audited
 * implementation of the hard parts: the request/done condition variables,
 * the single-sweeper token, the allocation-pause gate, the mutator-side
 * watchdog and the shutdown drain.
 *
 * The controller owns *when* a sweep runs, never *what* it does: the
 * owning runtime passes a sweep function that performs one full pass
 * (mark + release + purge). The function is always invoked with the
 * single-sweep token held and no controller lock held, from either the
 * background sweeper thread, a mutator that won a watchdog/force/
 * emergency fallback, or the caller itself in synchronous mode.
 *
 * Invariants preserved from the original implementation:
 *  - at most one sweep executes at a time (CAS on sweep_in_progress_);
 *  - a sweep request made before shutdown is either served or safely
 *    abandoned; the destructor-path drain guarantees no thread is left
 *    blocked on controller state while the owner destroys its members;
 *  - threads executing sweep machinery (in_sweep_context()) never block
 *    in the pause gate they are responsible for clearing.
 */
#pragma once

#include <condition_variable>
#include <functional>
#include <thread>

#include "core/stat_cells.h"
#include "util/lock_rank.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace msw::core {

/** Monotonic clock in nanoseconds (CLOCK_MONOTONIC). */
std::uint64_t monotonic_ns();

class SweepController
{
  public:
    struct Config {
        /** Serve requests from a dedicated sweeper thread. When false the
            controller degenerates to synchronous inline sweeps. */
        bool background = true;

        /**
         * Deadline for the background sweeper to pick up a request before
         * mutators fall back to synchronous sweeping (0 disables the
         * watchdog).
         */
        std::uint64_t watchdog_timeout_ms = 0;

        /** Poll interval for force/flush waits when the watchdog is off. */
        std::uint64_t wait_poll_ms = 500;
    };

    /**
     * @param sweep_fn Runs exactly one sweep pass. Called with the
     *        single-sweep token held and no controller lock held.
     * @param stats Receives kPauseNs / kWatchdogFallbacks.
     */
    SweepController(const Config& config, std::function<void()> sweep_fn,
                    StatCells* stats);

    /** Implies shutdown(). */
    ~SweepController();

    SweepController(const SweepController&) = delete;
    SweepController& operator=(const SweepController&) = delete;

    /**
     * Spawn the background sweeper (no-op in synchronous mode). Called by
     * the owning runtime at the end of its constructor, once every member
     * the sweep function touches exists.
     */
    void start();

    /**
     * Stop serving: join the sweeper, wait out any in-flight fallback
     * sweep (claiming the sweep token permanently), and drain control-path
     * waiters. Idempotent. The owner MUST call this at the top of its own
     * destructor — before the members the sweep function touches are
     * destroyed; the base-class destructor chain runs too late for that.
     */
    void shutdown();

    /**
     * Ask for a background sweep (runs one inline in synchronous mode).
     * @param pause_allocations Also raise the backpressure gate: mutators
     *        entering maybe_pause() block until the sweep completes (§5.7).
     */
    void request_sweep(bool pause_allocations);

    /**
     * Run one sweep on the calling thread if no sweep is in flight
     * (single-sweeper invariant via CAS). Returns false if another thread
     * holds the sweep or shutdown has begun.
     */
    bool run_sweep_now();

    /**
     * Request a sweep and wait for one to complete, sweeping on the
     * calling thread if the background sweeper misses the deadline.
     */
    void force_sweep();

    /**
     * Wait until no sweep is requested or in flight (flush semantics),
     * serving stalled requests on the calling thread. Returns immediately
     * in synchronous mode.
     */
    void wait_idle();

    /** Backpressure gate on the allocation path (accounts kPauseNs). */
    void maybe_pause();

    /** Mutator-side stall detection; falls back to a synchronous sweep. */
    void check_watchdog();

    /**
     * atfork integration (called by core/lifecycle in rank order).
     *
     * prepare_fork() quiesces: it waits for any in-flight sweep to
     * complete and returns holding sweep_mu_, so the child forks with
     * the control plane consistent and no sweep half-done over the
     * subsystem locks. parent_after_fork() releases the mutex.
     * child_after_fork() releases it, resets the control state (the
     * single-sweep token, pause gate, watchdog and waiter counts all
     * described threads that do not exist in the child) and discards the
     * inherited — dead — sweeper thread handle; the sweeper itself is
     * re-spawned *lazily* on the next request (a child of a
     * multi-threaded fork may only be async-signal-safe until exec, and
     * TSan forbids thread creation in the atfork child handler).
     */
    void prepare_fork();
    void parent_after_fork();
    void child_after_fork();

    /** Wait (bounded) for the current in-flight sweep to complete. */
    void wait_for_sweep_completion(std::uint64_t timeout_ms);

    bool
    sweep_in_progress() const
    {
        return sweep_in_progress_.load(std::memory_order_acquire);
    }

    std::uint64_t
    sweeps_done() const
    {
        // msw-relaxed(sweeper-token): monotonic stats read; callers
        // needing an ordered count wait under sweep_mu_ instead.
        return sweeps_done_.load(std::memory_order_relaxed);
    }

    bool
    background() const
    {
        return config_.background;
    }

    /**
     * True on threads executing sweep machinery (the sweeper thread and
     * helpers running release jobs). In the self-hosted deployment their
     * internal allocations arrive through the interposed malloc; they must
     * never block in the allocation-pausing backpressure they themselves
     * are responsible for clearing.
     */
    static bool in_sweep_context();

    /**
     * Mark the current scope as sweep machinery, restoring the previous
     * state on exit: release jobs run worker index 0 on the *calling*
     * thread, which for emergency and watchdog-fallback sweeps is a
     * mutator whose own watchdog checks must survive the sweep.
     */
    class ScopedSweepContext
    {
      public:
        ScopedSweepContext();
        ~ScopedSweepContext();

        ScopedSweepContext(const ScopedSweepContext&) = delete;
        ScopedSweepContext& operator=(const ScopedSweepContext&) = delete;

      private:
        bool saved_;
    };

  private:
    void sweeper_loop();

    /** Serve a pending post-fork lazy respawn of the sweeper thread. */
    void ensure_sweeper();

    Config config_;
    std::function<void()> sweep_fn_;
    StatCells* stats_;

    std::thread sweeper_thread_;
    // Rank kCoreControl: acquired with nothing else held; everything the
    // sweep does (quarantine, bins, extents) ranks higher.
    mutable Mutex sweep_mu_{util::LockRank::kCoreControl};
    std::condition_variable_any sweep_cv_;
    std::condition_variable_any sweep_done_cv_;
    bool sweep_requested_ MSW_GUARDED_BY(sweep_mu_) = false;
    bool shutdown_ MSW_GUARDED_BY(sweep_mu_) = false;
    /** prepare_fork() claimed sweep_in_progress_; the after-fork hooks
     *  must release it. Written only with sweep_mu_ held. */
    bool fork_token_held_ MSW_GUARDED_BY(sweep_mu_) = false;
    /** A fork is quiescing: run_sweep_now()/the sweeper must not start
     *  new sweeps, or back-to-back sweeps under force-sweep pressure
     *  starve prepare_fork()'s token claim indefinitely. */
    std::atomic<bool> fork_pending_{false};
    std::atomic<bool> stopped_{false};
    std::atomic<bool> sweep_in_progress_{false};
    /** Set by child_after_fork(); consumed by ensure_sweeper(). */
    std::atomic<bool> sweeper_needs_respawn_{false};
    std::atomic<bool> pause_flag_{false};
    std::atomic<std::uint64_t> sweeps_done_{0};

    // Watchdog: timestamp of the oldest unserved sweep request (0 = none)
    // and a sticky "sweeper considered stalled" latch, cleared when the
    // background sweeper resumes serving requests.
    std::atomic<std::uint64_t> sweep_request_ns_{0};
    std::atomic<bool> watchdog_tripped_{false};

    // Threads blocked in force_sweep()/wait_idle()/pause waits. shutdown()
    // drains these before returning, so control-path calls that raced
    // shutdown return safely instead of touching freed owner state.
    std::atomic<int> control_waiters_{0};
};

}  // namespace msw::core
