/**
 * @file
 * Process-lifecycle hardening for the drop-in runtime (fork, thread
 * exit, crash), shared by the LD_PRELOAD shim and library embedders.
 *
 * Three concerns live here because they are process-global — there can
 * be only one set of pthread_atfork handlers, one SIGSEGV disposition
 * and one thread-exit key, no matter how many runtime instances exist:
 *
 *  - **Fork safety.** fork() in a multi-threaded process snapshots
 *    every lock in whatever state some other thread left it. The
 *    registered runtime's entire lock hierarchy is therefore acquired
 *    in rank order across fork() (core -> quarantine -> bin -> extent
 *    -> metrics) so the child inherits a consistent heap, and the
 *    child-side handler resets every piece of state that described
 *    threads which no longer exist (sweeper, helper pool, STW
 *    handshake, other threads' caches and buffers).
 *
 *  - **Thread exit.** A TSD destructor auto-unregisters mutator
 *    threads that exit without calling unregister_mutator_thread(),
 *    draining their quarantine buffer and thread cache so quarantined
 *    memory is never stranded with a dead thread.
 *
 *  - **Crash diagnostics.** An opt-in (MSW_CRASH_REPORT=1) SIGSEGV /
 *    SIGBUS handler classifies the faulting address against the heap
 *    reservation and the quarantine bitmap and, for faults inside
 *    quarantined memory, writes a "likely use-after-free" report to
 *    stderr using only async-signal-safe primitives before re-raising
 *    into the previous disposition.
 *
 * Exactly one runtime — the first MineSweeper constructed — is
 * "registered" and receives this protection; additional instances (the
 * multi-instance tests, MarkUs) keep the documented manual contracts.
 */
#pragma once

#include <cstdint>

namespace msw::core {

class MineSweeper;
class QuarantineRuntime;

namespace lifecycle {

/**
 * Register @p rt as the process's lifecycle-protected runtime and
 * install the pthread_atfork handler set (once per process; the
 * handlers no-op while no runtime is registered). First caller wins;
 * later registrations while one is live are ignored.
 */
void register_runtime(MineSweeper* rt);

/** Drop @p rt if it is the registered runtime (called from its dtor). */
void unregister_runtime(MineSweeper* rt);

/** The currently registered runtime, or nullptr. */
MineSweeper* registered_runtime();

/** How a faulting address relates to the registered runtime's heap. */
enum class FaultClass {
    kNoRuntime,     ///< No runtime registered; nothing to classify.
    kOutsideHeap,   ///< Outside the heap reservation (not ours).
    kQuarantined,   ///< Inside a quarantined allocation: likely UAF.
    kHeapLive,      ///< Inside a live allocation (stray write?).
    kHeapUnmapped,  ///< In-heap, but free space / no metadata.
};

/**
 * Classify @p addr against the registered runtime. Async-signal-safe:
 * relaxed atomic loads and lock-free metadata reads only. When the
 * result is kQuarantined, @p epoch_out (if non-null) receives the
 * sweep epoch the report quotes.
 */
FaultClass classify_fault(const void* addr,
                          std::uint64_t* epoch_out = nullptr);

/**
 * Install the SIGSEGV/SIGBUS crash-classification handler (idempotent).
 * Must run before any other chaining handler that should sit in front
 * of it — in particular before a MprotectTracker is created, which the
 * runtime constructor guarantees by consulting MSW_CRASH_REPORT first.
 */
void install_crash_handler();

/** install_crash_handler() iff MSW_CRASH_REPORT is set non-"0". */
bool install_crash_handler_from_env();

bool crash_handler_installed();

/**
 * Note that the calling thread registered with @p rt as a mutator.
 * If @p rt is the lifecycle-registered runtime, a TSD destructor is
 * armed that unregisters the thread on exit (idempotent with a manual
 * unregister_mutator_thread(), which calls forget_mutator_thread()).
 */
void note_mutator_thread(QuarantineRuntime* rt);

/** Disarm the calling thread's auto-unregister destructor. */
void forget_mutator_thread();

}  // namespace lifecycle
}  // namespace msw::core
