/**
 * @file
 * Physical-memory reclamation for quarantined allocations, extracted from
 * the MineSweeper god-object and shared with the MarkUs baseline.
 *
 * Three concerns live here:
 *  - the free-path unmap policy for large quarantined allocations (§4.2):
 *    release physical pages immediately, or — while a sweep is scanning —
 *    defer the decommit so concurrent marking never faults on a page that
 *    vanished mid-scan;
 *  - the deferred pending-unmap queue and its drain points (after the
 *    mark phase and at scan end);
 *  - entry release after a successful sweep: restore page access for
 *    unmapped entries (bounded protect_rw retry), clear the quarantine
 *    bit, hand the block back to the substrate.
 *
 * Every failure path degrades instead of aborting: a refused decommit
 * downgrades the entry to mapped-and-zeroed (a bounded leak with correct
 * accounting), a stuck protect_rw keeps the entry quarantined for the
 * next sweep. Never a safety loss.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "alloc/jade_allocator.h"
#include "core/stat_cells.h"
#include "quarantine/quarantine.h"
#include "sweep/page_access_map.h"
#include "sweep/shadow_map.h"
#include "util/lock_rank.h"
#include "util/spin_lock.h"
#include "util/thread_annotations.h"

namespace msw::core {

class Reclaimer
{
  public:
    struct Config {
        /** Release physical pages of large quarantined allocations. */
        bool unmapping = true;
        /** Zero-fill quarantined allocations (MarkUs does not zero). */
        bool zeroing = true;
        /** Deferred-unmap queue capacity (overflow skips the unmap). */
        std::size_t max_pending_unmaps = 4096;
        /**
         * Allocation policy supplying the quarantine fill pattern (see
         * alloc/policy.h). Null, or a null fill_free hook, keeps the
         * paper's plain zero-fill.
         */
        const alloc::AllocPolicy* policy = nullptr;
    };

    Reclaimer(const Config& config, alloc::JadeAllocator* jade,
              sweep::PageAccessMap* access_map,
              sweep::ShadowMap* quarantine_bitmap, StatCells* stats);

    Reclaimer(const Reclaimer&) = delete;
    Reclaimer& operator=(const Reclaimer&) = delete;

    /**
     * Free-path policy: build the quarantine entry for a freed block,
     * applying unmapping (immediate or deferred) and zeroing. The caller
     * inserts the returned entry into its quarantine.
     */
    quarantine::Entry quarantine_prepare(void* ptr, std::uintptr_t base,
                                         std::size_t usable, bool is_large);

    /** A scan (mark phase) is starting: decommits defer from here on. */
    void begin_scan();

    /** Drain the deferred-unmap queue mid-scan (after marking: every
        affected entry is still quarantined and already scanned). */
    void drain_pending();

    /** Scan over: stop deferring and drain what queued meanwhile. */
    void end_scan();

    /** True while a scan holds decommits back (extent hooks consult this
        to treat pages committed mid-scan as dirty). */
    bool
    scan_active() const
    {
        return scan_active_.load(std::memory_order_acquire);
    }

    /**
     * Release a proven-safe entry back to the substrate. False if page
     * access could not be restored under pressure: the caller keeps the
     * entry quarantined and a later sweep retries.
     */
    [[nodiscard]] bool release_entry(const quarantine::Entry& entry);

    /** Decommit + unmap-account one entry's pages. */
    [[nodiscard]] bool unmap_entry(std::uintptr_t base, std::size_t usable);

    /** protect_rw with bounded retry; false once attempts are exhausted. */
    [[nodiscard]] bool protect_rw_with_retry(std::uintptr_t base,
                                             std::size_t len);

    /**
     * atfork integration (called by core/lifecycle): fork with
     * unmap_lock_ held so the child inherits a consistent deferred-unmap
     * queue. The controller quiesces sweeps first, so scan_active_ is
     * normally clear; the child resets it regardless (the scanning
     * thread does not exist there) and keeps any queued entries — they
     * drain on the child's next sweep.
     */
    void prepare_fork();
    void parent_after_fork();
    void child_after_fork();

  private:
    void drain_pending_locked() MSW_REQUIRES(unmap_lock_);

    /** Zero (or policy-fill) a quarantined block of @p usable bytes. */
    void fill_free(void* ptr, std::size_t usable);

    Config config_;
    alloc::JadeAllocator* jade_;
    sweep::PageAccessMap* access_map_;
    sweep::ShadowMap* quarantine_bitmap_;
    StatCells* stats_;

    // Deferred page-unmapping while a sweep is scanning (readers must not
    // lose pages mid-scan). Capacity is fixed at construction: a
    // push_back reallocation's free() of the old buffer would re-enter
    // the interposed free() and self-deadlock on this lock in the
    // self-hosted deployment.
    SpinLock unmap_lock_{util::LockRank::kCoreUnmap};
    std::atomic<bool> scan_active_{false};
    std::vector<quarantine::Entry> pending_unmaps_
        MSW_GUARDED_BY(unmap_lock_);
};

}  // namespace msw::core
