#include "core/sweep_controller.h"

#include <ctime>

#include "util/failpoint.h"
#include "util/log.h"

namespace msw::core {

using util::Failpoint;
using util::failpoint_should_fail;

namespace {

thread_local bool tls_sweep_context = false;

void
sleep_ms(long ms)
{
    struct timespec ts {
        0, ms * 1000000
    };
    ::nanosleep(&ts, nullptr);
}

}  // namespace

std::uint64_t
monotonic_ns()
{
    struct timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

bool
SweepController::in_sweep_context()
{
    return tls_sweep_context;
}

SweepController::ScopedSweepContext::ScopedSweepContext()
    : saved_(tls_sweep_context)
{
    tls_sweep_context = true;
}

SweepController::ScopedSweepContext::~ScopedSweepContext()
{
    tls_sweep_context = saved_;
}

SweepController::SweepController(const Config& config,
                                 std::function<void()> sweep_fn,
                                 StatCells* stats)
    : config_(config), sweep_fn_(std::move(sweep_fn)), stats_(stats)
{}

SweepController::~SweepController()
{
    shutdown();
}

void
SweepController::start()
{
    if (config_.background)
        sweeper_thread_ = std::thread([this] { sweeper_loop(); });
}

void
SweepController::shutdown()
{
    if (stopped_.exchange(true, std::memory_order_acq_rel))
        return;
    {
        MutexGuard g(sweep_mu_);
        shutdown_ = true;
    }
    // Wake everything: the sweeper (to exit) and any force_sweep()/
    // wait_idle()/pause waiters (their predicates include shutdown_).
    sweep_cv_.notify_all();
    sweep_done_cv_.notify_all();
    if (sweeper_thread_.joinable())
        sweeper_thread_.join();

    // Claim the sweep token permanently: a watchdog-fallback or
    // synchronous sweep that won the CAS before shutdown finishes first
    // (the owner's members are still alive here); any later attempt fails
    // the CAS and returns without sweeping.
    bool expected = false;
    while (!sweep_in_progress_.compare_exchange_weak(
        expected, true, std::memory_order_acquire)) {
        expected = false;
        sleep_ms(1);
    }
    sweep_done_cv_.notify_all();

    // Drain control-path waiters that entered before shutdown was
    // visible, so no thread is left blocked on state the owner destroys.
    while (control_waiters_.load(std::memory_order_acquire) != 0) {
        sweep_done_cv_.notify_all();
        sleep_ms(1);
    }
}

void
SweepController::request_sweep(bool pause_allocations)
{
    if (!config_.background) {
        run_sweep_now();
        return;
    }
    {
        MutexGuard g(sweep_mu_);
        sweep_requested_ = true;
        // Watchdog heartbeat: stamp the oldest unserved request (the
        // sweeper clears this when it picks the request up).
        if (sweep_request_ns_.load(std::memory_order_relaxed) == 0)
            sweep_request_ns_.store(monotonic_ns(),
                                    std::memory_order_relaxed);
        if (pause_allocations)
            pause_flag_.store(true, std::memory_order_relaxed);
    }
    sweep_cv_.notify_all();
    check_watchdog();
}

bool
SweepController::run_sweep_now()
{
    bool expected = false;
    if (!sweep_in_progress_.compare_exchange_strong(
            expected, true, std::memory_order_acquire)) {
        return false;
    }
    {
        MutexGuard g(sweep_mu_);
        if (shutdown_) {
            // Do not start new sweeps during teardown; shutdown() is
            // waiting to claim this token.
            sweep_in_progress_.store(false, std::memory_order_release);
            return false;
        }
        sweep_requested_ = false;
        sweep_request_ns_.store(0, std::memory_order_relaxed);
    }
    sweep_fn_();
    {
        MutexGuard g(sweep_mu_);
        sweeps_done_.fetch_add(1, std::memory_order_relaxed);
        pause_flag_.store(false, std::memory_order_relaxed);
        sweep_in_progress_.store(false, std::memory_order_release);
    }
    sweep_done_cv_.notify_all();
    return true;
}

void
SweepController::check_watchdog()
{
    if (config_.watchdog_timeout_ms == 0 || tls_sweep_context ||
        !config_.background) {
        return;
    }
    const std::uint64_t req =
        sweep_request_ns_.load(std::memory_order_relaxed);
    if (req == 0 || sweep_in_progress_.load(std::memory_order_acquire))
        return;
    const bool overdue =
        watchdog_tripped_.load(std::memory_order_relaxed) ||
        monotonic_ns() - req >=
            config_.watchdog_timeout_ms * 1'000'000ull;
    if (!overdue)
        return;
    if (!watchdog_tripped_.exchange(true, std::memory_order_relaxed)) {
        MSW_LOG_WARN("sweeper watchdog: request unserved for %llu ms; "
                     "falling back to synchronous sweeps",
                     static_cast<unsigned long long>(
                         config_.watchdog_timeout_ms));
    }
    if (run_sweep_now())
        stats_->add(Stat::kWatchdogFallbacks);
}

void
SweepController::maybe_pause()
{
    if (tls_sweep_context ||
        !pause_flag_.load(std::memory_order_relaxed)) {
        return;
    }
    const std::uint64_t t0 = monotonic_ns();
    {
        UniqueLock g(sweep_mu_);
        control_waiters_.fetch_add(1, std::memory_order_relaxed);
        sweep_done_cv_.wait_for(g, std::chrono::seconds(2),
                                [&]() MSW_REQUIRES(sweep_mu_) {
                                    return shutdown_ ||
                                           !pause_flag_.load(
                                               std::memory_order_relaxed);
                                });
        control_waiters_.fetch_sub(1, std::memory_order_release);
    }
    stats_->add(Stat::kPauseNs, monotonic_ns() - t0);
    // A stalled sweeper never clears the pause flag — make sure progress
    // is still possible before returning to the allocation path.
    check_watchdog();
}

void
SweepController::wait_for_sweep_completion(std::uint64_t timeout_ms)
{
    UniqueLock g(sweep_mu_);
    control_waiters_.fetch_add(1, std::memory_order_relaxed);
    sweep_done_cv_.wait_for(
        g, std::chrono::milliseconds(timeout_ms),
        [&]() MSW_REQUIRES(sweep_mu_) {
            return shutdown_ ||
                   !sweep_in_progress_.load(std::memory_order_relaxed);
        });
    control_waiters_.fetch_sub(1, std::memory_order_release);
}

void
SweepController::force_sweep()
{
    if (!config_.background) {
        run_sweep_now();
        return;
    }
    control_waiters_.fetch_add(1, std::memory_order_relaxed);
    {
        UniqueLock g(sweep_mu_);
        if (shutdown_) {
            control_waiters_.fetch_sub(1, std::memory_order_release);
            return;
        }
        const std::uint64_t target =
            sweeps_done_.load(std::memory_order_relaxed) + 1;
        sweep_requested_ = true;
        if (sweep_request_ns_.load(std::memory_order_relaxed) == 0)
            sweep_request_ns_.store(monotonic_ns(),
                                    std::memory_order_relaxed);
        sweep_cv_.notify_all();
        const auto timeout = std::chrono::milliseconds(
            config_.watchdog_timeout_ms != 0 ? config_.watchdog_timeout_ms
                                             : config_.wait_poll_ms);
        for (;;) {
            const bool done = sweep_done_cv_.wait_for(
                g, timeout, [&]() MSW_REQUIRES(sweep_mu_) {
                    return shutdown_ ||
                           sweeps_done_.load(std::memory_order_relaxed) >=
                               target;
                });
            if (done)
                break;
            // Timed out: the sweeper may be stalled or dead. Sweep on
            // this thread instead of hanging the caller.
            g.unlock();
            if (run_sweep_now())
                stats_->add(Stat::kWatchdogFallbacks);
            g.lock();
            if (shutdown_ ||
                sweeps_done_.load(std::memory_order_relaxed) >= target) {
                break;
            }
        }
    }
    control_waiters_.fetch_sub(1, std::memory_order_release);
}

void
SweepController::wait_idle()
{
    if (!config_.background)
        return;
    control_waiters_.fetch_add(1, std::memory_order_relaxed);
    {
        UniqueLock g(sweep_mu_);
        for (;;) {
            const bool done = sweep_done_cv_.wait_for(
                g, std::chrono::milliseconds(config_.wait_poll_ms),
                [&]() MSW_REQUIRES(sweep_mu_) {
                    return shutdown_ ||
                           (!sweep_requested_ &&
                            !sweep_in_progress_.load(
                                std::memory_order_relaxed));
                });
            if (done)
                break;
            // A stalled sweeper would leave the request pending forever;
            // serve it here so flush() keeps its completion guarantee.
            g.unlock();
            run_sweep_now();
            g.lock();
        }
    }
    control_waiters_.fetch_sub(1, std::memory_order_release);
}

void
SweepController::sweeper_loop()
{
    tls_sweep_context = true;
    UniqueLock l(sweep_mu_);
    while (!shutdown_) {
        sweep_cv_.wait(l, [&]() MSW_REQUIRES(sweep_mu_) {
            return sweep_requested_ || shutdown_;
        });
        if (shutdown_)
            break;
        if (failpoint_should_fail(Failpoint::kSweeperStall)) {
            // Play dead: leave the request pending (so the watchdog can
            // see it age) and re-check once the failpoint lets go.
            sweep_cv_.wait_for(l, std::chrono::milliseconds(10),
                               [&]() MSW_REQUIRES(sweep_mu_) {
                                   return shutdown_;
                               });
            continue;
        }
        bool expected = false;
        if (!sweep_in_progress_.compare_exchange_strong(
                expected, true, std::memory_order_acquire)) {
            // A watchdog fallback owns the sweep; it clears the request
            // and notifies when done.
            sweep_done_cv_.wait_for(l, std::chrono::milliseconds(1));
            continue;
        }
        sweep_requested_ = false;
        // Heartbeat: the request is being served, so the sweeper is
        // alive again — clear the stall latch.
        sweep_request_ns_.store(0, std::memory_order_relaxed);
        watchdog_tripped_.store(false, std::memory_order_relaxed);
        l.unlock();
        sweep_fn_();
        l.lock();
        sweep_in_progress_.store(false, std::memory_order_release);
        pause_flag_.store(false, std::memory_order_relaxed);
        sweeps_done_.fetch_add(1, std::memory_order_relaxed);
        sweep_done_cv_.notify_all();
    }
}

}  // namespace msw::core
