#include "core/sweep_controller.h"

#include <ctime>
#include <new>

#include "metrics/telemetry.h"
#include "util/failpoint.h"
#include "util/log.h"

namespace msw::core {

using util::Failpoint;
using util::failpoint_should_fail;

namespace {

thread_local bool tls_sweep_context = false;

void
sleep_ms(long ms)
{
    struct timespec ts {
        0, ms * 1000000
    };
    ::nanosleep(&ts, nullptr);
}

}  // namespace

std::uint64_t
monotonic_ns()
{
    struct timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

bool
SweepController::in_sweep_context()
{
    return tls_sweep_context;
}

SweepController::ScopedSweepContext::ScopedSweepContext()
    : saved_(tls_sweep_context)
{
    tls_sweep_context = true;
}

SweepController::ScopedSweepContext::~ScopedSweepContext()
{
    tls_sweep_context = saved_;
}

SweepController::SweepController(const Config& config,
                                 std::function<void()> sweep_fn,
                                 StatCells* stats)
    : config_(config), sweep_fn_(std::move(sweep_fn)), stats_(stats)
{}

SweepController::~SweepController()
{
    shutdown();
}

void
SweepController::start()
{
    if (config_.background)
        sweeper_thread_ = std::thread([this] { sweeper_loop(); });
}

void
SweepController::shutdown()
{
    if (stopped_.exchange(true, std::memory_order_acq_rel))
        return;
    {
        MutexGuard g(sweep_mu_);
        shutdown_ = true;
    }
    // Wake everything: the sweeper (to exit) and any force_sweep()/
    // wait_idle()/pause waiters (their predicates include shutdown_).
    sweep_cv_.notify_all();
    sweep_done_cv_.notify_all();
    if (sweeper_thread_.joinable())
        sweeper_thread_.join();

    // Claim the sweep token permanently: a watchdog-fallback or
    // synchronous sweep that won the CAS before shutdown finishes first
    // (the owner's members are still alive here); any later attempt fails
    // the CAS and returns without sweeping.
    bool expected = false;
    while (!sweep_in_progress_.compare_exchange_weak(
        expected, true, std::memory_order_acquire)) {
        expected = false;
        sleep_ms(1);
    }
    sweep_done_cv_.notify_all();

    // Drain control-path waiters that entered before shutdown was
    // visible, so no thread is left blocked on state the owner destroys.
    while (control_waiters_.load(std::memory_order_acquire) != 0) {
        sweep_done_cv_.notify_all();
        sleep_ms(1);
    }
}

// The fork hooks intentionally hold sweep_mu_ across function (and
// process) boundaries; the pairing is enforced by core/lifecycle, not
// by scopes the static analysis can see.
void
SweepController::prepare_fork() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    // Quiesce by *claiming* the sweep token, then fork with sweep_mu_
    // held: the child must never inherit a sweep half-done over the
    // subsystem locks. The gate comes first — run_sweep_now() takes the
    // token before sweep_mu_, so under steady force-sweep pressure a
    // new sweep wins the token inside any observation gap and an
    // ungated claim loop starves indefinitely (each 1 ms retry lands
    // mid-sweep). With fork_pending_ up, no new sweep starts, and the
    // claim succeeds once the one in-flight sweep drains. After
    // shutdown() the token is claimed permanently and no sweep is
    // running — holding the mutex alone suffices.
    fork_pending_.store(true, std::memory_order_release);
    for (;;) {
        sweep_mu_.lock();
        if (stopped_.load(std::memory_order_acquire))
            return;
        bool expected = false;
        if (sweep_in_progress_.compare_exchange_strong(
                expected, true, std::memory_order_acquire)) {
            fork_token_held_ = true;
            return;
        }
        sweep_mu_.unlock();
        sleep_ms(1);
    }
}

void
SweepController::parent_after_fork() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    const bool release_token = fork_token_held_;
    fork_token_held_ = false;
    if (release_token)
        sweep_in_progress_.store(false, std::memory_order_release);
    fork_pending_.store(false, std::memory_order_release);
    sweep_mu_.unlock();
    // Waiters that timed out against the fork window re-check promptly
    // instead of riding out another watchdog period.
    if (release_token)
        sweep_done_cv_.notify_all();
}

void
SweepController::child_after_fork() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    fork_pending_.store(false, std::memory_order_release);
    if (!stopped_.load(std::memory_order_acquire)) {
        // Control state inherited from the parent describes threads
        // that do not exist here: pending requests, the pause gate,
        // watchdog latches and blocked waiters all reset. The token is
        // held by prepare_fork()'s claim (and its owner is the thread
        // that forked, i.e. us) — release it.
        fork_token_held_ = false;
        sweep_requested_ = false;
        // msw-relaxed(fork-window): the child is single-threaded here;
        // nothing can race these resets.
        sweep_request_ns_.store(0, std::memory_order_relaxed);
        watchdog_tripped_.store(false, std::memory_order_relaxed);
        // msw-relaxed(fork-window): as above — single-threaded child.
        pause_flag_.store(false, std::memory_order_relaxed);
        sweep_in_progress_.store(false, std::memory_order_release);
        control_waiters_.store(0, std::memory_order_release);
        // condition_variable_any keeps an internal heap mutex that
        // notify/wait lock *outside* sweep_mu_ (libstdc++ pairs the
        // notifier with waiters through it). A thread mid-notify at
        // fork time leaves it locked in the child with no owner, so
        // the inherited objects are unusable: reinitialise in place.
        // No destructor — destroying the locked internal mutex is UB;
        // the orphaned allocation is the price of a usable child.
        new (&sweep_cv_) std::condition_variable_any();
        new (&sweep_done_cv_) std::condition_variable_any();
        if (config_.background) {
            // The inherited handle names a parent thread; joining or
            // destroying it would terminate. Reinitialise in place to
            // "not a thread" without running the destructor.
            new (&sweeper_thread_) std::thread();
            if (!util::failpoint_should_fail(Failpoint::kForkChild)) {
                sweeper_needs_respawn_.store(true,
                                             std::memory_order_release);
            }
            // else: simulate a failed respawn — the watchdog and the
            // force_sweep()/wait_idle() self-serve loops keep the child
            // live on mutator threads.
        }
    }
    sweep_mu_.unlock();
}

void
SweepController::ensure_sweeper()
{
    if (!sweeper_needs_respawn_.load(std::memory_order_acquire))
        return;
    MutexGuard g(sweep_mu_);
    // msw-relaxed(sweeper-token): re-check under sweep_mu_, which both
    // writers hold; the acquire load above did the synchronisation.
    if (!sweeper_needs_respawn_.load(std::memory_order_relaxed) ||
        shutdown_) {
        return;
    }
    sweeper_thread_ = std::thread([this] { sweeper_loop(); });
    sweeper_needs_respawn_.store(false, std::memory_order_release);
}

void
SweepController::request_sweep(bool pause_allocations)
{
    if (!config_.background) {
        run_sweep_now();
        return;
    }
    ensure_sweeper();
    {
        MutexGuard g(sweep_mu_);
        sweep_requested_ = true;
        // Watchdog heartbeat: stamp the oldest unserved request (the
        // sweeper clears this when it picks the request up).
        // msw-relaxed(sweeper-token): stamped under sweep_mu_; the
        // unlocked watchdog read tolerates staleness by one period.
        if (sweep_request_ns_.load(std::memory_order_relaxed) == 0)
            sweep_request_ns_.store(monotonic_ns(),
                                    std::memory_order_relaxed);
        // msw-relaxed(sweeper-token): advisory gate; waiters poll it
        // on a timed wait, so a stale read only delays one period.
        if (pause_allocations)
            pause_flag_.store(true, std::memory_order_relaxed);
    }
    sweep_cv_.notify_all();
    check_watchdog();
}

bool
SweepController::run_sweep_now()
{
    // A forking thread is waiting for the token; don't feed it new
    // sweeps. Callers treat `false` as "someone else owns progress" and
    // retry on their own timers, which outlive the fork window.
    if (fork_pending_.load(std::memory_order_acquire))
        return false;
    bool expected = false;
    if (!sweep_in_progress_.compare_exchange_strong(
            expected, true, std::memory_order_acquire)) {
        return false;
    }
    {
        MutexGuard g(sweep_mu_);
        if (shutdown_) {
            // Do not start new sweeps during teardown; shutdown() is
            // waiting to claim this token.
            sweep_in_progress_.store(false, std::memory_order_release);
            return false;
        }
        sweep_requested_ = false;
        // msw-relaxed(sweeper-token): heartbeat clear under sweep_mu_.
        sweep_request_ns_.store(0, std::memory_order_relaxed);
    }
    sweep_fn_();
    {
        MutexGuard g(sweep_mu_);
        // msw-relaxed(sweeper-token): written under sweep_mu_; waiters
        // re-read them under the same mutex in their cv predicates.
        sweeps_done_.fetch_add(1, std::memory_order_relaxed);
        pause_flag_.store(false, std::memory_order_relaxed);
        sweep_in_progress_.store(false, std::memory_order_release);
    }
    sweep_done_cv_.notify_all();
    return true;
}

void
SweepController::check_watchdog()
{
    if (config_.watchdog_timeout_ms == 0 || tls_sweep_context ||
        !config_.background) {
        return;
    }
    // msw-relaxed(sweeper-token): unlocked watchdog heartbeat read; a
    // stale value only delays the fallback by one check period.
    const std::uint64_t req =
        sweep_request_ns_.load(std::memory_order_relaxed);
    if (req == 0 || sweep_in_progress_.load(std::memory_order_acquire))
        return;
    // msw-relaxed(sweeper-token): the latch is advisory (log-once and
    // early-out); the fallback sweep itself re-takes the real token.
    const bool overdue =
        watchdog_tripped_.load(std::memory_order_relaxed) ||
        monotonic_ns() - req >=
            config_.watchdog_timeout_ms * 1'000'000ull;
    if (!overdue)
        return;
    // msw-relaxed(sweeper-token): latch RMW needs atomicity only (one
    // thread wins the warning log); no data is published through it.
    if (!watchdog_tripped_.exchange(true, std::memory_order_relaxed)) {
        MSW_LOG_WARN("sweeper watchdog: request unserved for %llu ms; "
                     "falling back to synchronous sweeps",
                     static_cast<unsigned long long>(
                         config_.watchdog_timeout_ms));
    }
    if (run_sweep_now()) {
        stats_->add(Stat::kWatchdogFallbacks);
        metrics::telemetry().trace_event(
            metrics::TraceEvent::kWatchdogFallback);
    }
}

void
SweepController::maybe_pause()
{
    // msw-relaxed(sweeper-token): advisory fast-path peek; a missed
    // set is caught by the next allocation, a missed clear by the
    // timed wait below.
    if (tls_sweep_context ||
        !pause_flag_.load(std::memory_order_relaxed)) {
        return;
    }
    const std::uint64_t t0 = monotonic_ns();
    {
        // A dead sweeper (e.g. a fork child whose respawn failed) never
        // clears the flag or notifies, so the wait must not outlive the
        // watchdog deadline — check_watchdog() below self-serves then.
        const std::uint64_t cap_ms = config_.watchdog_timeout_ms != 0
                                         ? config_.watchdog_timeout_ms
                                         : 2000;
        UniqueLock g(sweep_mu_);
        // msw-relaxed(sweeper-token): RMW atomicity suffices; the
        // shutdown drain polls the release/acquire-paired count.
        control_waiters_.fetch_add(1, std::memory_order_relaxed);
        sweep_done_cv_.wait_for(g, std::chrono::milliseconds(cap_ms),
                                [&]() MSW_REQUIRES(sweep_mu_) {
                                    // msw-relaxed(sweeper-token): read
                                    // under sweep_mu_ by the cv wait.
                                    return shutdown_ ||
                                           !pause_flag_.load(
                                               std::memory_order_relaxed);
                                });
        control_waiters_.fetch_sub(1, std::memory_order_release);
    }
    const std::uint64_t paused_ns = monotonic_ns() - t0;
    stats_->add(Stat::kPauseNs, paused_ns);
    // Only reached when the thread actually paused, so this is off the
    // allocation fast path; the telemetry gate keeps it one relaxed
    // load when disabled.
    metrics::Telemetry& tele = metrics::telemetry();
    if (tele.on()) {
        tele.pause_ns.record(paused_ns);
        tele.trace.push(metrics::TraceEvent::kAllocPause, paused_ns);
    }
    // A stalled sweeper never clears the pause flag — make sure progress
    // is still possible before returning to the allocation path.
    check_watchdog();
}

void
SweepController::wait_for_sweep_completion(std::uint64_t timeout_ms)
{
    UniqueLock g(sweep_mu_);
    // msw-relaxed(sweeper-token): RMW atomicity suffices; the shutdown
    // drain polls the release/acquire-paired count.
    control_waiters_.fetch_add(1, std::memory_order_relaxed);
    sweep_done_cv_.wait_for(
        g, std::chrono::milliseconds(timeout_ms),
        [&]() MSW_REQUIRES(sweep_mu_) {
            // msw-relaxed(sweeper-token): progress poll on a timed
            // wait; the token's real edges are its CAS/release pair.
            return shutdown_ ||
                   !sweep_in_progress_.load(std::memory_order_relaxed);
        });
    control_waiters_.fetch_sub(1, std::memory_order_release);
}

void
SweepController::force_sweep()
{
    if (!config_.background) {
        run_sweep_now();
        return;
    }
    ensure_sweeper();
    // msw-relaxed(sweeper-token): RMW atomicity suffices; the shutdown
    // drain polls the release/acquire-paired count.
    control_waiters_.fetch_add(1, std::memory_order_relaxed);
    {
        UniqueLock g(sweep_mu_);
        if (shutdown_) {
            control_waiters_.fetch_sub(1, std::memory_order_release);
            return;
        }
        // msw-relaxed(sweeper-token): read under sweep_mu_, which
        // every writer of the sweep counter also holds.
        const std::uint64_t target =
            sweeps_done_.load(std::memory_order_relaxed) + 1;
        sweep_requested_ = true;
        // msw-relaxed(sweeper-token): heartbeat stamp under sweep_mu_;
        // the unlocked watchdog read tolerates one period of staleness.
        if (sweep_request_ns_.load(std::memory_order_relaxed) == 0)
            sweep_request_ns_.store(monotonic_ns(),
                                    std::memory_order_relaxed);
        sweep_cv_.notify_all();
        const auto timeout = std::chrono::milliseconds(
            config_.watchdog_timeout_ms != 0 ? config_.watchdog_timeout_ms
                                             : config_.wait_poll_ms);
        for (;;) {
            const bool done = sweep_done_cv_.wait_for(
                g, timeout, [&]() MSW_REQUIRES(sweep_mu_) {
                    // msw-relaxed(sweeper-token): cv predicate under
                    // sweep_mu_, which the incrementing side holds.
                    return shutdown_ ||
                           sweeps_done_.load(std::memory_order_relaxed) >=
                               target;
                });
            if (done)
                break;
            // Timed out: the sweeper may be stalled or dead. Sweep on
            // this thread instead of hanging the caller.
            g.unlock();
            if (run_sweep_now()) {
                stats_->add(Stat::kWatchdogFallbacks);
                metrics::telemetry().trace_event(
                    metrics::TraceEvent::kWatchdogFallback);
            }
            g.lock();
            // msw-relaxed(sweeper-token): re-read under sweep_mu_,
            // which the incrementing side holds.
            if (shutdown_ ||
                sweeps_done_.load(std::memory_order_relaxed) >= target) {
                break;
            }
        }
    }
    control_waiters_.fetch_sub(1, std::memory_order_release);
}

void
SweepController::wait_idle()
{
    if (!config_.background)
        return;
    // msw-relaxed(sweeper-token): RMW atomicity suffices; the shutdown
    // drain polls the release/acquire-paired count.
    control_waiters_.fetch_add(1, std::memory_order_relaxed);
    {
        UniqueLock g(sweep_mu_);
        for (;;) {
            const bool done = sweep_done_cv_.wait_for(
                g, std::chrono::milliseconds(config_.wait_poll_ms),
                [&]() MSW_REQUIRES(sweep_mu_) {
                    return shutdown_ ||
                           (!sweep_requested_ &&
                            // msw-relaxed(sweeper-token): cv predicate;
                            // the token's edges are its CAS/release pair.
                            !sweep_in_progress_.load(
                                std::memory_order_relaxed));
                });
            if (done)
                break;
            // A stalled sweeper would leave the request pending forever;
            // serve it here so flush() keeps its completion guarantee.
            g.unlock();
            run_sweep_now();
            g.lock();
        }
    }
    control_waiters_.fetch_sub(1, std::memory_order_release);
}

void
SweepController::sweeper_loop()
{
    tls_sweep_context = true;
    UniqueLock l(sweep_mu_);
    while (!shutdown_) {
        sweep_cv_.wait(l, [&]() MSW_REQUIRES(sweep_mu_) {
            return sweep_requested_ || shutdown_;
        });
        if (shutdown_)
            break;
        if (failpoint_should_fail(Failpoint::kSweeperStall)) {
            // Play dead: leave the request pending (so the watchdog can
            // see it age) and re-check once the failpoint lets go.
            sweep_cv_.wait_for(l, std::chrono::milliseconds(10),
                               [&]() MSW_REQUIRES(sweep_mu_) {
                                   return shutdown_;
                               });
            continue;
        }
        bool expected = false;
        if (fork_pending_.load(std::memory_order_acquire) ||
            !sweep_in_progress_.compare_exchange_strong(
                expected, true, std::memory_order_acquire)) {
            // A watchdog fallback owns the sweep, or a fork is
            // quiescing; either clears the request / gate and notifies
            // (or we re-check) when done.
            sweep_done_cv_.wait_for(l, std::chrono::milliseconds(1));
            continue;
        }
        sweep_requested_ = false;
        // Heartbeat: the request is being served, so the sweeper is
        // alive again — clear the stall latch.
        // msw-relaxed(sweeper-token): written under sweep_mu_; the
        // unlocked watchdog read tolerates one period of staleness.
        sweep_request_ns_.store(0, std::memory_order_relaxed);
        watchdog_tripped_.store(false, std::memory_order_relaxed);
        l.unlock();
        sweep_fn_();
        l.lock();
        sweep_in_progress_.store(false, std::memory_order_release);
        // msw-relaxed(sweeper-token): written under sweep_mu_; waiters
        // re-read them under the same mutex in their cv predicates.
        pause_flag_.store(false, std::memory_order_relaxed);
        sweeps_done_.fetch_add(1, std::memory_order_relaxed);
        sweep_done_cv_.notify_all();
    }
}

}  // namespace msw::core
