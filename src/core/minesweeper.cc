#include "core/minesweeper.h"

#include <unistd.h>

#include <cstring>

#include "alloc/extent.h"
#include "alloc/size_classes.h"
#include "util/bits.h"
#include "util/check.h"
#include "util/log.h"

namespace msw::core {

using alloc::ExtentKind;
using alloc::ExtentMeta;
using quarantine::Entry;
using sweep::MarkStats;
using sweep::Range;
using util::Failpoint;
using util::failpoint_should_fail;

namespace {

/**
 * True on threads executing sweep machinery (the sweeper thread and
 * helpers running release jobs). In the self-hosted deployment their
 * internal allocations arrive through the interposed malloc; they must
 * never block in the allocation-pausing backpressure they themselves are
 * responsible for clearing.
 */
thread_local bool tls_sweep_context = false;

std::uint64_t
monotonic_ns()
{
    struct timespec ts;
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

}  // namespace

/**
 * Extent hooks that keep the committed-page map exact: this is how sweeps
 * know which pages exist, and how purged pages are excluded from scanning
 * instead of being faulted back in (paper §4.5).
 */
class MineSweeper::Hooks final : public alloc::ExtentHooks
{
  public:
    Hooks(MineSweeper* msw, const vm::Reservation* heap)
        : alloc::ExtentHooks(heap), msw_(msw)
    {}

    [[nodiscard]] bool
    commit(std::uintptr_t addr, std::size_t len) override
    {
        if (heap_->protect_rw(addr, len) != vm::VmStatus::kOk) {
            return false;
        }
        msw_->access_map_.set_range(addr, len);
        // Pages appearing mid-epoch must be treated as dirty.
        if (msw_->tracker_ != nullptr &&
            msw_->sweep_active_.load(std::memory_order_acquire)) {
            msw_->tracker_->note_committed(addr, len);
        }
        return true;
    }

    [[nodiscard]] bool
    purge(std::uintptr_t addr, std::size_t len) override
    {
        // True decommit (discard + PROT_NONE), not jemalloc's
        // keep-accessible purge: sweeps skip these pages entirely.
        if (heap_->decommit(addr, len) != vm::VmStatus::kOk) {
            // Pages keep their backing and stay in the access map; the
            // extent stays accounted committed and is re-purged later.
            return false;
        }
        msw_->access_map_.clear_range(addr, len);
        return true;
    }

  private:
    MineSweeper* msw_;
};

MineSweeper::MineSweeper(const Options& opts)
    : opts_([&] {
          Options o = opts;
          // MineSweeper replaces decay purging with the post-sweep full
          // purge (§4.5); leaving decay on would purge behind the page
          //-access map's back from unhooked call sites.
          o.jade.decay_ms = 0;
          return o;
      }()),
      jade_(opts_.jade),
      shadow_(jade_.reservation().base(), jade_.reservation().size()),
      quarantine_bitmap_(jade_.reservation().base(),
                         jade_.reservation().size()),
      access_map_(jade_.reservation().base(), jade_.reservation().size()),
      quarantine_(opts_.tl_buffer_entries),
      marker_(&shadow_, jade_.reservation().base(),
              jade_.reservation().end())
{
    hooks_ = std::make_unique<Hooks>(this, &jade_.reservation());
    jade_.extents().set_hooks(hooks_.get());

    // Fixed capacity so push_back under unmap_lock_ never reallocates: a
    // reallocation's free() of the old buffer would re-enter
    // quarantine_free() and self-deadlock on the lock in the self-hosted
    // deployment. Overflowing entries simply skip the unmap optimisation.
    {
        LockGuard g(unmap_lock_);
        pending_unmaps_.reserve(opts_.max_pending_unmaps);
    }

    if (opts_.helper_threads > 0)
        workers_ = std::make_unique<sweep::SweepWorkers>(
            opts_.helper_threads);

    if (opts_.mode == Mode::kMostlyConcurrent) {
        tracker_ = sweep::make_dirty_tracker(&jade_.reservation());
        if (auto* mp =
                dynamic_cast<sweep::MprotectTracker*>(tracker_.get())) {
            mp->set_committed_filter(
                [](std::uintptr_t addr, void* arg) {
                    return static_cast<sweep::PageAccessMap*>(arg)->test(
                        addr);
                },
                &access_map_);
        }
    }

    if (opts_.mode != Mode::kSynchronous)
        sweeper_thread_ = std::thread([this] { sweeper_loop(); });
}

MineSweeper::~MineSweeper()
{
    {
        MutexGuard g(sweep_mu_);
        shutdown_ = true;
    }
    // Wake everything: the sweeper (to exit) and any force_sweep()/
    // flush()/pause waiters (their predicates include shutdown_).
    sweep_cv_.notify_all();
    sweep_done_cv_.notify_all();
    if (sweeper_thread_.joinable())
        sweeper_thread_.join();

    // Claim the sweep token permanently: a watchdog-fallback or
    // synchronous sweep that won the CAS before shutdown finishes first
    // (members are still alive here); any later attempt fails the CAS and
    // returns without sweeping.
    bool expected = false;
    while (!sweep_in_progress_.compare_exchange_weak(
        expected, true, std::memory_order_acquire)) {
        expected = false;
        struct timespec ts {
            0, 1000000
        };
        ::nanosleep(&ts, nullptr);
    }
    sweep_done_cv_.notify_all();

    // Drain control-path waiters that entered before shutdown was
    // visible, so no thread is left blocked on members we destroy.
    while (control_waiters_.load(std::memory_order_acquire) != 0) {
        sweep_done_cv_.notify_all();
        struct timespec ts {
            0, 1000000
        };
        ::nanosleep(&ts, nullptr);
    }

    workers_.reset();
    // Restore default hooks before jade_ (a member) is destroyed, so any
    // destructor-time extent operations do not touch freed state.
    jade_.extents().set_hooks(nullptr);
}

// ----------------------------------------------------------------- alloc

void*
MineSweeper::alloc(std::size_t size)
{
    alloc_calls_.fetch_add(1, std::memory_order_relaxed);
    maybe_pause_allocations();
    // +1 byte so one-past-the-end pointers stay inside the allocation
    // (paper §3.2); size classes are 16 B-granular so this usually costs
    // nothing.
    void* p = jade_.alloc(size + 1);
    if (__builtin_expect(p != nullptr, 1))
        return p;
    return alloc_slow(size + 1, 0);
}

void*
MineSweeper::alloc_aligned(std::size_t alignment, std::size_t size)
{
    alloc_calls_.fetch_add(1, std::memory_order_relaxed);
    maybe_pause_allocations();
    void* p = jade_.alloc_aligned(alignment, size + 1);
    if (__builtin_expect(p != nullptr, 1))
        return p;
    return alloc_slow(size + 1, alignment);
}

void*
MineSweeper::alloc_slow(std::size_t request, std::size_t alignment)
{
    // Degradation ladder (never abort): the substrate failed, which means
    // the heap VA is exhausted or a commit hit transient ENOMEM — both
    // conditions a quarantine full of reclaimable memory can cause. Back
    // off, then interleave retries with emergency reclaims; only report
    // OOM to the caller once every attempt is spent.
    unsigned backoff_us = opts_.alloc_retry_backoff_us;
    for (unsigned attempt = 0; attempt < opts_.alloc_retry_attempts;
         ++attempt) {
        if (attempt > 0) {
            // First retry is cheap (the kernel may just have been briefly
            // unwilling); later ones drain quarantine first.
            emergency_reclaim();
        }
        if (backoff_us > 0) {
            ::usleep(backoff_us);
            backoff_us *= 2;
        }
        commit_retries_.fetch_add(1, std::memory_order_relaxed);
        void* p = alignment > 0 ? jade_.alloc_aligned(alignment, request)
                                : jade_.alloc(request);
        if (p != nullptr)
            return p;
    }
    oom_returns_.fetch_add(1, std::memory_order_relaxed);
    MSW_LOG_WARN("alloc of %zu bytes failed after %u attempts with "
                 "emergency sweeps; returning nullptr",
                 request, opts_.alloc_retry_attempts);
    return nullptr;
}

void
MineSweeper::emergency_reclaim()
{
    emergency_sweeps_.fetch_add(1, std::memory_order_relaxed);
    if (!tls_sweep_context) {
        quarantine_.flush_thread_buffer();
        if (!run_sweep_now()) {
            // Another thread owns the sweep; give it a moment to finish
            // so the purge below sees its released extents.
            UniqueLock g(sweep_mu_);
            control_waiters_.fetch_add(1, std::memory_order_relaxed);
            sweep_done_cv_.wait_for(
                g, std::chrono::milliseconds(100),
                [&]() MSW_REQUIRES(sweep_mu_) {
                    return shutdown_ ||
                           !sweep_in_progress_.load(
                               std::memory_order_relaxed);
                });
            control_waiters_.fetch_sub(1, std::memory_order_release);
        }
    }
    // Return every free extent's pages to the OS so the next commit can
    // succeed even when the kernel is the constraint.
    jade_.purge_all();
}

std::size_t
MineSweeper::usable_size(const void* ptr) const
{
    // One byte of the underlying allocation is reserved for the
    // end-pointer guarantee; never report it as usable.
    return jade_.usable_size(ptr) - 1;
}

void*
MineSweeper::realloc(void* ptr, std::size_t new_size)
{
    if (ptr == nullptr)
        return alloc(new_size);
    if (new_size == 0)
        new_size = 1;
    const std::size_t old_usable = usable_size(ptr);
    if (new_size <= old_usable && new_size * 2 > old_usable)
        return ptr;
    void* fresh = alloc(new_size);
    if (fresh == nullptr) {
        // Per the realloc contract the original block stays valid.
        return nullptr;
    }
    std::memcpy(fresh, ptr,
                old_usable < new_size ? old_usable : new_size);
    free(ptr);
    return fresh;
}

// ------------------------------------------------------------------ free

void
MineSweeper::free(void* ptr)
{
    if (ptr == nullptr)
        return;
    free_calls_.fetch_add(1, std::memory_order_relaxed);
    const std::uintptr_t addr = to_addr(ptr);
    MSW_CHECK(jade_.contains(addr));

    ExtentMeta* meta = jade_.extents().lookup_live(addr);
    std::uintptr_t base;
    std::size_t usable;
    bool is_large;
    if (meta->kind == ExtentKind::kLarge) {
        base = meta->base;
        usable = meta->bytes();
        is_large = true;
    } else {
        const std::size_t obj = alloc::class_size(meta->cls);
        base = meta->base + ((addr - meta->base) / obj) * obj;
        usable = obj;
        is_large = false;
    }
    MSW_CHECK(base == addr);

    // Double-free de-duplication (paper §3): while the allocation is in
    // quarantine, further frees are idempotent.
    if (quarantine_bitmap_.test_and_set(base)) {
        double_frees_.fetch_add(1, std::memory_order_relaxed);
        if (opts_.report_double_frees)
            MSW_LOG_WARN("double free of %p absorbed", ptr);
        return;
    }

    if (!opts_.quarantine_enabled) {
        // Partial versions 1-2 (§5.5): apply unmap/zero side effects, then
        // forward straight to the allocator.
        if (opts_.unmapping && is_large) {
            if (jade_.reservation().decommit(base, usable) ==
                vm::VmStatus::kOk) {
                if (!protect_rw_with_retry(base, usable)) {
                    // Pages stuck inaccessible: handing them back for
                    // reuse would fault the program. Keep the block
                    // quarantined (bounded leak) instead of crashing.
                    quarantine_.insert(Entry::make(base, usable, true));
                    return;
                }
            } else if (opts_.zeroing) {
                std::memset(ptr, 0, usable);
            }
        } else if (opts_.zeroing) {
            std::memset(ptr, 0, usable);
        }
        quarantine_bitmap_.clear(base);
        jade_.free(ptr);
        return;
    }

    quarantine_free(ptr, base, usable, is_large);
    maybe_trigger_sweep();
}

void
MineSweeper::quarantine_free(void* ptr, std::uintptr_t base,
                             std::size_t usable, bool is_large)
{
    Entry entry = Entry::make(base, usable, false);

    if (opts_.unmapping && is_large) {
        // Large allocations span exclusively-owned pages: release the
        // physical memory immediately (§4.2). If a sweep is scanning,
        // defer the decommit so concurrent marking never faults.
        entry = Entry::make(base, usable, true);
        LockGuard g(unmap_lock_);
        if (sweep_active_.load(std::memory_order_relaxed)) {
            if (pending_unmaps_.size() < opts_.max_pending_unmaps) {
                pending_unmaps_.push_back(entry);
                unmapped_entries_.fetch_add(1, std::memory_order_relaxed);
            } else {
                // Queue full: forgo the unmap for this entry (safe; it
                // just stays mapped while quarantined).
                entry = Entry::make(base, usable, false);
                if (opts_.zeroing)
                    std::memset(ptr, 0, usable);
            }
        } else if (unmap_entry(base, usable)) {
            unmapped_entries_.fetch_add(1, std::memory_order_relaxed);
        } else {
            // Decommit refused under pressure: same safe downgrade as a
            // full queue — the entry stays mapped while quarantined.
            entry = Entry::make(base, usable, false);
            if (opts_.zeroing)
                std::memset(ptr, 0, usable);
        }
    } else if (opts_.zeroing) {
        // Zeroing removes dangling pointers *from* quarantined data,
        // flattening the reference graph and breaking cycles (§4.1).
        std::memset(ptr, 0, usable);
    }

    quarantine_.insert(entry);
}

bool
MineSweeper::unmap_entry(std::uintptr_t base, std::size_t usable)
{
    if (jade_.reservation().decommit(base, usable) != vm::VmStatus::kOk) {
        return false;
    }
    access_map_.clear_range(base, usable);
    return true;
}

void
MineSweeper::drain_pending_unmaps_locked()
{
    for (const Entry& e : pending_unmaps_) {
        // Entries released meanwhile must not be unmapped: their memory
        // may already be reallocated. Release clears the quarantine bit.
        if (quarantine_bitmap_.test(e.real_base())) {
            if (!unmap_entry(e.real_base(), e.usable)) {
                // Transient decommit failure: the entry simply keeps its
                // pages while quarantined. release_entry()'s protect_rw
                // and access-map restore are idempotent, so the stale
                // unmapped flag is harmless.
                MSW_LOG_DEBUG("deferred unmap of %zu bytes skipped",
                              e.usable);
            }
        }
    }
    pending_unmaps_.clear();
}

// ------------------------------------------------------------- triggering

void
MineSweeper::maybe_trigger_sweep()
{
    const std::size_t pending = quarantine_.pending_bytes();
    if (pending < opts_.min_sweep_bytes &&
        quarantine_.unmapped_bytes() < opts_.min_sweep_bytes) {
        return;
    }
    const std::size_t failed = quarantine_.failed_bytes();
    const std::size_t unmapped = quarantine_.unmapped_bytes();
    const std::size_t jade_live = jade_.live_bytes();
    // Heap size for the trigger: total live bytes minus failed frees
    // (subtracted from both sides, §3.2) minus unmapped quarantine (which
    // no longer consumes memory, §4.2).
    const std::size_t heap =
        jade_live > failed + unmapped ? jade_live - failed - unmapped : 0;

    bool trigger =
        pending >= opts_.min_sweep_bytes &&
        static_cast<double>(pending) >=
            opts_.sweep_threshold * static_cast<double>(heap);

    // Unmapped quarantine pressures kernel/allocator metadata even though
    // it holds no memory: sweep when it reaches 9x the footprint (§4.2).
    if (!trigger && unmapped >= opts_.min_sweep_bytes &&
        static_cast<double>(unmapped) >=
            opts_.unmapped_factor *
                static_cast<double>(access_map_.committed_bytes())) {
        trigger = true;
    }

    if (!trigger)
        return;

    if (opts_.mode == Mode::kSynchronous) {
        run_sweep_now();
        return;
    }

    {
        MutexGuard g(sweep_mu_);
        sweep_requested_ = true;
        // Watchdog heartbeat: stamp the oldest unserved request (the
        // sweeper clears this when it picks the request up).
        if (sweep_request_ns_.load(std::memory_order_relaxed) == 0)
            sweep_request_ns_.store(monotonic_ns(),
                                    std::memory_order_relaxed);
        // Backpressure (§5.7): if the quarantine has grown far past the
        // heap while a sweep is running, pause this allocating thread
        // until the sweep completes.
        if (opts_.pause_factor > 0 &&
            static_cast<double>(pending) >
                opts_.pause_factor *
                    static_cast<double>(
                        heap > pending ? heap - pending : pending)) {
            pause_flag_.store(true, std::memory_order_relaxed);
        }
    }
    sweep_cv_.notify_all();
    check_sweeper_watchdog();
}

bool
MineSweeper::run_sweep_now()
{
    bool expected = false;
    if (!sweep_in_progress_.compare_exchange_strong(
            expected, true, std::memory_order_acquire)) {
        return false;
    }
    {
        MutexGuard g(sweep_mu_);
        if (shutdown_) {
            // Do not start new sweeps during teardown; the destructor is
            // waiting to claim this token.
            sweep_in_progress_.store(false, std::memory_order_release);
            return false;
        }
        sweep_requested_ = false;
        sweep_request_ns_.store(0, std::memory_order_relaxed);
    }
    run_sweep();
    {
        MutexGuard g(sweep_mu_);
        sweeps_done_.fetch_add(1, std::memory_order_relaxed);
        pause_flag_.store(false, std::memory_order_relaxed);
        sweep_in_progress_.store(false, std::memory_order_release);
    }
    sweep_done_cv_.notify_all();
    return true;
}

void
MineSweeper::check_sweeper_watchdog()
{
    if (opts_.watchdog_timeout_ms == 0 || tls_sweep_context ||
        opts_.mode == Mode::kSynchronous) {
        return;
    }
    const std::uint64_t req =
        sweep_request_ns_.load(std::memory_order_relaxed);
    if (req == 0 || sweep_in_progress_.load(std::memory_order_acquire))
        return;
    const bool overdue =
        watchdog_tripped_.load(std::memory_order_relaxed) ||
        monotonic_ns() - req >=
            opts_.watchdog_timeout_ms * 1'000'000ull;
    if (!overdue)
        return;
    if (!watchdog_tripped_.exchange(true, std::memory_order_relaxed)) {
        MSW_LOG_WARN("sweeper watchdog: request unserved for %llu ms; "
                     "falling back to synchronous sweeps",
                     static_cast<unsigned long long>(
                         opts_.watchdog_timeout_ms));
    }
    if (run_sweep_now())
        watchdog_fallbacks_.fetch_add(1, std::memory_order_relaxed);
}

void
MineSweeper::maybe_pause_allocations()
{
    if (tls_sweep_context ||
        !pause_flag_.load(std::memory_order_relaxed)) {
        return;
    }
    const std::uint64_t t0 = monotonic_ns();
    {
        UniqueLock g(sweep_mu_);
        control_waiters_.fetch_add(1, std::memory_order_relaxed);
        sweep_done_cv_.wait_for(g, std::chrono::seconds(2),
                                [&]() MSW_REQUIRES(sweep_mu_) {
                                    return shutdown_ ||
                                           !pause_flag_.load(
                                               std::memory_order_relaxed);
                                });
        control_waiters_.fetch_sub(1, std::memory_order_release);
    }
    pause_ns_.fetch_add(monotonic_ns() - t0, std::memory_order_relaxed);
    // A stalled sweeper never clears the pause flag — make sure progress
    // is still possible before returning to the allocation path.
    check_sweeper_watchdog();
}

// ---------------------------------------------------------------- sweeps

void
MineSweeper::sweeper_loop()
{
    tls_sweep_context = true;
    UniqueLock l(sweep_mu_);
    while (!shutdown_) {
        sweep_cv_.wait(l, [&]() MSW_REQUIRES(sweep_mu_) {
            return sweep_requested_ || shutdown_;
        });
        if (shutdown_)
            break;
        if (failpoint_should_fail(Failpoint::kSweeperStall)) {
            // Play dead: leave the request pending (so the watchdog can
            // see it age) and re-check once the failpoint lets go.
            sweep_cv_.wait_for(l, std::chrono::milliseconds(10),
                               [&]() MSW_REQUIRES(sweep_mu_) {
                                   return shutdown_;
                               });
            continue;
        }
        bool expected = false;
        if (!sweep_in_progress_.compare_exchange_strong(
                expected, true, std::memory_order_acquire)) {
            // A watchdog fallback owns the sweep; it clears the request
            // and notifies when done.
            sweep_done_cv_.wait_for(l, std::chrono::milliseconds(1));
            continue;
        }
        sweep_requested_ = false;
        // Heartbeat: the request is being served, so the sweeper is
        // alive again — clear the stall latch.
        sweep_request_ns_.store(0, std::memory_order_relaxed);
        watchdog_tripped_.store(false, std::memory_order_relaxed);
        l.unlock();
        run_sweep();
        l.lock();
        sweep_in_progress_.store(false, std::memory_order_release);
        pause_flag_.store(false, std::memory_order_relaxed);
        sweeps_done_.fetch_add(1, std::memory_order_relaxed);
        sweep_done_cv_.notify_all();
    }
}

std::vector<Range>
MineSweeper::internal_regions() const
{
    std::vector<Range> out;
    const auto add = [&out](const vm::Reservation& r) {
        if (r.size() != 0)
            out.push_back(Range{r.base(), r.size()});
    };
    add(jade_.extents().meta_reservation());
    add(jade_.extents().page_map_reservation());
    add(shadow_.storage());
    add(shadow_.chunk_storage());
    add(quarantine_bitmap_.storage());
    add(quarantine_bitmap_.chunk_storage());
    add(access_map_.storage());
    return out;
}

std::vector<Range>
MineSweeper::scan_ranges() const
{
    std::vector<Range> ranges = access_map_.committed_runs();
    for (const Range& r : roots_.roots())
        sweep::append_resident_subranges(r, &ranges);
    // Stacks are filtered to resident pages: untouched stack pages are
    // all-zero and cannot hold pointers.
    for (const Range& r : roots_.stacks())
        sweep::append_resident_subranges(r, &ranges);
    if (extra_roots_provider_) {
        const std::vector<Range> internal = internal_regions();
        for (const Range& r : extra_roots_provider_()) {
            bool overlaps_internal = false;
            for (const Range& i : internal) {
                if (r.base < i.end() && i.base < r.end()) {
                    overlaps_internal = true;
                    break;
                }
            }
            if (!overlaps_internal)
                sweep::append_resident_subranges(r, &ranges);
        }
    }
    return ranges;
}

void
MineSweeper::run_sweep()
{
    {
        LockGuard g(unmap_lock_);
        sweep_active_.store(true, std::memory_order_release);
    }
    // Test hook: hold the sweep open while armed so tests can exercise
    // the concurrent free()/deferred-unmap machinery deterministically.
    while (failpoint_should_fail(Failpoint::kSweepDelay))
        ::usleep(1000);
    std::vector<Entry> locked_in;
    quarantine_.lock_in(locked_in);
    if (locked_in.empty()) {
        LockGuard g(unmap_lock_);
        sweep_active_.store(false, std::memory_order_release);
        drain_pending_unmaps_locked();
        return;
    }

    const std::uint64_t cpu0 = sweep::thread_cpu_ns();
    const std::uint64_t helpers0 =
        workers_ != nullptr ? workers_->helper_cpu_ns() : 0;

    if (opts_.sweep_enabled) {
        // Phase 1: concurrent linear mark of all scannable memory.
        const bool track = tracker_ != nullptr;
        if (track) {
            std::vector<Range> tracked = access_map_.committed_runs();
            if (tracker_->tracks_arbitrary_memory()) {
                for (const Range& r : roots_.roots())
                    tracked.push_back(r);
            }
            tracker_->begin(tracked);
        }
        const MarkStats ms = marker_.mark_ranges(scan_ranges(),
                                                 workers_.get());
        bytes_scanned_.fetch_add(ms.bytes_scanned,
                                 std::memory_order_relaxed);

        if (track) {
            // Phase 2 (mostly-concurrent only): brief stop-the-world
            // recheck of pages modified during phase 1 (§4.3).
            const std::uint64_t t0 = monotonic_ns();
            roots_.stop_world();
            std::vector<Range> rescan;
            tracker_->end_collect(rescan);
            if (!tracker_->tracks_arbitrary_memory()) {
                for (const Range& r : roots_.roots_stw())
                    sweep::append_resident_subranges(r, &rescan);
            }
            for (const Range& r : roots_.stacks_stw())
                sweep::append_resident_subranges(r, &rescan);
            for (const Range& r : roots_.parked_registers())
                rescan.push_back(r);
            const MarkStats ms2 = marker_.mark_ranges(rescan,
                                                      workers_.get());
            roots_.resume_world();
            bytes_scanned_.fetch_add(ms2.bytes_scanned,
                                     std::memory_order_relaxed);
            stw_ns_.fetch_add(monotonic_ns() - t0,
                              std::memory_order_relaxed);
        }
    }

    // Perform deferred page-unmaps now that marking is done: every
    // affected entry is still quarantined at this point, so this is safe
    // and the pages have already been scanned.
    {
        LockGuard g(unmap_lock_);
        drain_pending_unmaps_locked();
    }

    // Phase 3: walk the locked-in quarantine; release unmarked entries.
    std::vector<Entry> failed;
    const unsigned nworkers =
        workers_ != nullptr ? workers_->count() : 1;
    std::vector<std::vector<Entry>> failed_per_worker(nworkers);
    std::atomic<std::size_t> next{0};
    std::atomic<std::uint64_t> released_count{0};
    std::atomic<std::uint64_t> released_bytes{0};
    std::atomic<std::uint64_t> failed_count{0};

    auto release_job = [&](unsigned index) {
        // Restore on exit: index 0 runs on the *calling* thread, which for
        // emergency and watchdog-fallback sweeps is a mutator. Leaving the
        // flag set would permanently disable that thread's watchdog checks
        // and emergency reclaims.
        const bool saved_sweep_context = tls_sweep_context;
        tls_sweep_context = true;
        constexpr std::size_t kBatch = 64;
        for (;;) {
            const std::size_t start =
                next.fetch_add(kBatch, std::memory_order_relaxed);
            if (start >= locked_in.size())
                break;
            const std::size_t end =
                std::min(start + kBatch, locked_in.size());
            for (std::size_t i = start; i < end; ++i) {
                const Entry& e = locked_in[i];
                const bool marked =
                    opts_.sweep_enabled &&
                    shadow_.test_range(e.real_base(), e.usable);
                if (marked) {
                    failed_count.fetch_add(1, std::memory_order_relaxed);
                    if (opts_.keep_failed) {
                        failed_per_worker[index].push_back(e);
                        continue;
                    }
                }
                if (!release_entry(e)) {
                    // Could not restore access under pressure: keep the
                    // entry quarantined; a later sweep retries.
                    failed_count.fetch_add(1, std::memory_order_relaxed);
                    failed_per_worker[index].push_back(e);
                    continue;
                }
                released_count.fetch_add(1, std::memory_order_relaxed);
                released_bytes.fetch_add(e.usable,
                                         std::memory_order_relaxed);
            }
        }
        tls_sweep_context = saved_sweep_context;
    };
    if (workers_ != nullptr)
        workers_->run(release_job);
    else
        release_job(0);

    for (auto& fv : failed_per_worker)
        failed.insert(failed.end(), fv.begin(), fv.end());

    entries_released_.fetch_add(
        released_count.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    bytes_released_.fetch_add(released_bytes.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
    failed_frees_.fetch_add(failed_count.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    shadow_.clear_marks();
    quarantine_.store_failed(std::move(failed));

    {
        LockGuard g(unmap_lock_);
        sweep_active_.store(false, std::memory_order_release);
        drain_pending_unmaps_locked();
    }

    // §4.5: full allocator purge synchronised with the end of the sweep.
    if (opts_.purging)
        jade_.purge_all();

    const std::uint64_t helpers1 =
        workers_ != nullptr ? workers_->helper_cpu_ns() : 0;
    sweep_cpu_ns_.fetch_add(
        (sweep::thread_cpu_ns() - cpu0) + (helpers1 - helpers0),
        std::memory_order_relaxed);
}

bool
MineSweeper::release_entry(const Entry& entry)
{
    if (entry.unmapped) {
        // Restore access before handing the range back; physical pages
        // refault as zeros, so the memory win persists until reuse.
        if (!protect_rw_with_retry(entry.real_base(), entry.usable))
            return false;
        access_map_.set_range(entry.real_base(), entry.usable);
    }
    quarantine_bitmap_.clear(entry.real_base());
    jade_.free_direct(to_ptr(entry.real_base()));
    return true;
}

bool
MineSweeper::protect_rw_with_retry(std::uintptr_t base, std::size_t len)
{
    constexpr int kAttempts = 10;
    unsigned backoff_us = 50;
    for (int i = 0; i < kAttempts; ++i) {
        if (jade_.reservation().protect_rw(base, len) == vm::VmStatus::kOk)
            return true;
        ::usleep(backoff_us);
        if (backoff_us < 10'000)
            backoff_us *= 2;
    }
    return false;
}

// ----------------------------------------------------------------- misc

void
MineSweeper::force_sweep()
{
    quarantine_.flush_thread_buffer();
    if (opts_.mode == Mode::kSynchronous) {
        run_sweep_now();
        return;
    }
    control_waiters_.fetch_add(1, std::memory_order_relaxed);
    {
        UniqueLock g(sweep_mu_);
        if (shutdown_) {
            control_waiters_.fetch_sub(1, std::memory_order_release);
            return;
        }
        const std::uint64_t target =
            sweeps_done_.load(std::memory_order_relaxed) + 1;
        sweep_requested_ = true;
        if (sweep_request_ns_.load(std::memory_order_relaxed) == 0)
            sweep_request_ns_.store(monotonic_ns(),
                                    std::memory_order_relaxed);
        sweep_cv_.notify_all();
        const auto timeout = std::chrono::milliseconds(
            opts_.watchdog_timeout_ms != 0 ? opts_.watchdog_timeout_ms
                                           : 500);
        for (;;) {
            const bool done = sweep_done_cv_.wait_for(
                g, timeout, [&]() MSW_REQUIRES(sweep_mu_) {
                    return shutdown_ ||
                           sweeps_done_.load(std::memory_order_relaxed) >=
                               target;
                });
            if (done)
                break;
            // Timed out: the sweeper may be stalled or dead. Sweep on
            // this thread instead of hanging the caller.
            g.unlock();
            if (run_sweep_now())
                watchdog_fallbacks_.fetch_add(1,
                                              std::memory_order_relaxed);
            g.lock();
            if (shutdown_ ||
                sweeps_done_.load(std::memory_order_relaxed) >= target) {
                break;
            }
        }
    }
    control_waiters_.fetch_sub(1, std::memory_order_release);
}

void
MineSweeper::flush()
{
    quarantine_.flush_thread_buffer();
    jade_.flush();
    if (opts_.mode == Mode::kSynchronous)
        return;
    // Wait out any in-flight or requested sweep.
    control_waiters_.fetch_add(1, std::memory_order_relaxed);
    {
        UniqueLock g(sweep_mu_);
        for (;;) {
            const bool done = sweep_done_cv_.wait_for(
                g, std::chrono::milliseconds(500),
                [&]() MSW_REQUIRES(sweep_mu_) {
                    return shutdown_ ||
                           (!sweep_requested_ &&
                            !sweep_in_progress_.load(
                                std::memory_order_relaxed));
                });
            if (done)
                break;
            // A stalled sweeper would leave the request pending forever;
            // serve it here so flush() keeps its completion guarantee.
            g.unlock();
            run_sweep_now();
            g.lock();
        }
    }
    control_waiters_.fetch_sub(1, std::memory_order_release);
}

void
MineSweeper::add_root(const void* base, std::size_t len)
{
    roots_.add_root(base, len);
}

void
MineSweeper::remove_root(const void* base)
{
    roots_.remove_root(base);
}

void
MineSweeper::register_mutator_thread()
{
    roots_.register_current_thread();
}

void
MineSweeper::unregister_mutator_thread()
{
    quarantine_.flush_thread_buffer();
    jade_.flush();
    roots_.unregister_current_thread();
    // A sweep that snapshotted the stack list before the removal may
    // still be scanning this thread's stack; the thread must not exit
    // (and its stack must not be unmapped) until that sweep drains.
    while (sweep_in_progress_.load(std::memory_order_acquire)) {
        struct timespec ts {
            0, 1000000
        };
        ::nanosleep(&ts, nullptr);
    }
}

alloc::AllocatorStats
MineSweeper::stats() const
{
    const quarantine::QuarantineStats qs = quarantine_.stats();
    alloc::AllocatorStats s;
    const std::size_t jade_live = jade_.live_bytes();
    const std::size_t quarantined =
        qs.pending_bytes + qs.failed_bytes + qs.unmapped_bytes;
    s.live_bytes = jade_live > quarantined ? jade_live - quarantined : 0;
    s.committed_bytes = access_map_.committed_bytes();
    s.metadata_bytes = jade_.stats().metadata_bytes +
                       shadow_.shadow_bytes() * 2;
    s.quarantine_bytes = quarantined;
    s.sweeps = sweeps_done_.load(std::memory_order_relaxed);
    s.alloc_calls = alloc_calls_.load(std::memory_order_relaxed);
    s.free_calls = free_calls_.load(std::memory_order_relaxed);
    return s;
}

SweepStats
MineSweeper::sweep_stats() const
{
    SweepStats s;
    s.sweeps = sweeps_done_.load(std::memory_order_relaxed);
    s.entries_released = entries_released_.load(std::memory_order_relaxed);
    s.bytes_released = bytes_released_.load(std::memory_order_relaxed);
    s.failed_frees = failed_frees_.load(std::memory_order_relaxed);
    s.double_frees = double_frees_.load(std::memory_order_relaxed);
    s.bytes_scanned = bytes_scanned_.load(std::memory_order_relaxed);
    s.sweep_cpu_ns = sweep_cpu_ns_.load(std::memory_order_relaxed);
    s.stw_ns = stw_ns_.load(std::memory_order_relaxed);
    s.pause_ns = pause_ns_.load(std::memory_order_relaxed);
    s.unmapped_entries = unmapped_entries_.load(std::memory_order_relaxed);
    s.emergency_sweeps = emergency_sweeps_.load(std::memory_order_relaxed);
    s.commit_retries = commit_retries_.load(std::memory_order_relaxed);
    s.watchdog_fallbacks =
        watchdog_fallbacks_.load(std::memory_order_relaxed);
    s.oom_returns = oom_returns_.load(std::memory_order_relaxed);
    for (unsigned i = 0; i < util::kNumFailpoints; ++i)
        s.failpoint_hits[i] =
            util::failpoint_hits(static_cast<util::Failpoint>(i));
    return s;
}

}  // namespace msw::core
