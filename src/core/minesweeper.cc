#include "core/minesweeper.h"

#include <unistd.h>

#include <cstring>

#include "alloc/policy.h"
#include "core/lifecycle.h"
#include "metrics/telemetry.h"
#include "util/bits.h"
#include "util/log.h"

namespace msw::core {

using quarantine::Entry;
using sweep::MarkStats;
using sweep::Range;
using util::Failpoint;
using util::failpoint_should_fail;

QuarantineRuntime::Config
MineSweeper::make_config(const Options& opts)
{
    Config c;
    c.jade = opts.jade;
    c.tl_buffer_entries = opts.tl_buffer_entries;
    c.reclaim.unmapping = opts.unmapping;
    c.reclaim.zeroing = opts.zeroing;
    c.reclaim.max_pending_unmaps = opts.max_pending_unmaps;
    c.control.background = opts.mode != Mode::kSynchronous;
    c.control.watchdog_timeout_ms = opts.watchdog_timeout_ms;
    c.make_tracker = opts.mode == Mode::kMostlyConcurrent;
    c.report_double_frees = opts.report_double_frees;
    return c;
}

// msw-analyze: slow-path(one-time engine construction under the shim's
// g_state init latch; never runs on the steady-state alloc/free path)
MineSweeper::MineSweeper(const Options& opts)
    : QuarantineRuntime(make_config(opts), [this] { run_sweep(); }),
      opts_([&] {
          Options o = opts;
          // Mirror the base's decay override (§4.5) so options() reports
          // the configuration actually in effect.
          o.jade.decay_ms = 0;
          return o;
      }()),
      marker_(&mark_bits_, jade_.reservation().base(),
              jade_.reservation().end())
{
    if (opts_.helper_threads > 0)
        workers_ = std::make_unique<sweep::SweepWorkers>(
            opts_.helper_threads);

    controller_.start();

    // Last: every member is live, so the instance can safely serve
    // atfork callbacks from here on. First registered instance wins.
    lifecycle::register_runtime(this);
}

MineSweeper::~MineSweeper()
{
    // First: stop serving atfork callbacks before any member dies.
    lifecycle::unregister_runtime(this);
    // Before our members die: the sweep function touches marker_ and
    // workers_, which are gone by the time the base destructor runs.
    controller_.shutdown();
    workers_.reset();
}

// ----------------------------------------------------------------- alloc

void*
MineSweeper::alloc(std::size_t size)
{
    // Telemetry op sampling (MSW_TELEMETRY=ops): off means one relaxed
    // load and a predicted-not-taken branch; on costs two clock reads.
    const bool timed = __builtin_expect(metrics::telemetry().ops_on(), 0);
    const std::uint64_t t0 = timed ? monotonic_ns() : 0;
    stats_.add(Stat::kAllocCalls);
    controller_.maybe_pause();
    // +1 byte so one-past-the-end pointers stay inside the allocation
    // (paper §3.2); size classes are 16 B-granular so this usually costs
    // nothing.
    void* p = jade_.alloc(size + 1);
    if (__builtin_expect(p == nullptr, 0))
        p = alloc_slow(size + 1, 0);
    // Hardened policy: arm the canary in the reserved slack byte. Under
    // the default policy this is one predicted-not-taken branch.
    const auto arm = config_.policy->arm_canary;
    if (__builtin_expect(arm != nullptr, 0) && p != nullptr)
        arm(p, jade_.usable_size(p));
    if (__builtin_expect(timed, 0))
        metrics::telemetry().alloc_ns.record(monotonic_ns() - t0);
    return p;
}

void*
MineSweeper::alloc_aligned(std::size_t alignment, std::size_t size)
{
    const bool timed = __builtin_expect(metrics::telemetry().ops_on(), 0);
    const std::uint64_t t0 = timed ? monotonic_ns() : 0;
    stats_.add(Stat::kAllocCalls);
    controller_.maybe_pause();
    void* p = jade_.alloc_aligned(alignment, size + 1);
    if (__builtin_expect(p == nullptr, 0))
        p = alloc_slow(size + 1, alignment);
    const auto arm = config_.policy->arm_canary;
    if (__builtin_expect(arm != nullptr, 0) && p != nullptr)
        arm(p, jade_.usable_size(p));
    if (__builtin_expect(timed, 0))
        metrics::telemetry().alloc_ns.record(monotonic_ns() - t0);
    return p;
}

void*
MineSweeper::alloc_slow(std::size_t request, std::size_t alignment)
{
    // Degradation ladder (never abort): the substrate failed, which means
    // the heap VA is exhausted or a commit hit transient ENOMEM — both
    // conditions a quarantine full of reclaimable memory can cause. Back
    // off, then interleave retries with emergency reclaims; only report
    // OOM to the caller once every attempt is spent.
    unsigned backoff_us = opts_.alloc_retry_backoff_us;
    for (unsigned attempt = 0; attempt < opts_.alloc_retry_attempts;
         ++attempt) {
        if (attempt > 0) {
            // First retry is cheap (the kernel may just have been briefly
            // unwilling); later ones drain quarantine first.
            emergency_reclaim();
        }
        if (backoff_us > 0) {
            ::usleep(backoff_us);
            backoff_us *= 2;
        }
        stats_.add(Stat::kCommitRetries);
        void* p = alignment > 0 ? jade_.alloc_aligned(alignment, request)
                                : jade_.alloc(request);
        if (p != nullptr)
            return p;
    }
    stats_.add(Stat::kOomReturns);
    metrics::telemetry().trace_event(metrics::TraceEvent::kOomReturn,
                                     request);
    MSW_LOG_WARN("alloc of %zu bytes failed after %u attempts with "
                 "emergency sweeps; returning nullptr",
                 request, opts_.alloc_retry_attempts);
    return nullptr;
}

void
MineSweeper::emergency_reclaim()
{
    stats_.add(Stat::kEmergencySweeps);
    metrics::telemetry().trace_event(metrics::TraceEvent::kEmergencySweep);
    if (!SweepController::in_sweep_context()) {
        quarantine_.flush_thread_buffer();
        if (!controller_.run_sweep_now()) {
            // Another thread owns the sweep; give it a moment to finish
            // so the purge below sees its released extents.
            controller_.wait_for_sweep_completion(100);
        }
    }
    // Return every free extent's pages to the OS so the next commit can
    // succeed even when the kernel is the constraint.
    jade_.purge_all();
}

void*
MineSweeper::realloc(void* ptr, std::size_t new_size)
{
    if (ptr == nullptr)
        return alloc(new_size);
    if (new_size == 0)
        new_size = 1;
    const std::size_t old_usable = usable_size(ptr);
    if (new_size <= old_usable && new_size * 2 > old_usable)
        return ptr;
    void* fresh = alloc(new_size);
    if (fresh == nullptr) {
        // Per the realloc contract the original block stays valid.
        return nullptr;
    }
    std::memcpy(fresh, ptr,
                old_usable < new_size ? old_usable : new_size);
    free(ptr);
    return fresh;
}

// ------------------------------------------------------------------ free

void
MineSweeper::free(void* ptr)
{
    if (ptr == nullptr)
        return;
    // Same sampling shape as alloc(): gate cost when off is one relaxed
    // load; the early returns inside free_impl stay untouched.
    const bool timed = __builtin_expect(metrics::telemetry().ops_on(), 0);
    if (!timed) {
        free_impl(ptr);
        return;
    }
    const std::uint64_t t0 = monotonic_ns();
    free_impl(ptr);
    metrics::telemetry().free_ns.record(monotonic_ns() - t0);
}

void
MineSweeper::free_impl(void* ptr)
{
    stats_.add(Stat::kFreeCalls);
    const FreeTarget t = classify(to_addr(ptr));

    // Double-free de-duplication (paper §3): while the allocation is in
    // quarantine, further frees are idempotent. Checked before the canary:
    // the quarantine fill already overwrote the canary of a freed block,
    // so testing it again on a double free would false-positive.
    if (absorb_double_free(ptr, t.base))
        return;

    const auto check = config_.policy->check_canary;
    if (__builtin_expect(check != nullptr, 0)) {
        stats_.add(Stat::kCanaryChecks);
        if (!check(ptr, t.usable)) {
            stats_.add(Stat::kCanaryViolations);
            alloc::policy_violation("heap-overflow canary clobbered at free",
                                    ptr);
        }
    }

    if (!opts_.quarantine_enabled) {
        // Partial versions 1-2 (§5.5): apply unmap/zero side effects, then
        // forward straight to the allocator.
        if (opts_.unmapping && t.is_large) {
            if (jade_.reservation().decommit(t.base, t.usable) ==
                vm::VmStatus::kOk) {
                if (!reclaimer_.protect_rw_with_retry(t.base, t.usable)) {
                    // Pages stuck inaccessible: handing them back for
                    // reuse would fault the program. Keep the block
                    // quarantined (bounded leak) instead of crashing.
                    quarantine_.insert(Entry::make(t.base, t.usable, true));
                    return;
                }
            } else if (opts_.zeroing) {
                std::memset(ptr, 0, t.usable);
            }
        } else if (opts_.zeroing) {
            std::memset(ptr, 0, t.usable);
        }
        quarantine_bitmap_.clear(t.base);
        jade_.free(ptr);
        return;
    }

    quarantine_free(ptr, t.base, t.usable, t.is_large);
    maybe_trigger_sweep();
}

void
MineSweeper::quarantine_free(void* ptr, std::uintptr_t base,
                             std::size_t usable, bool is_large)
{
    quarantine_.insert(
        reclaimer_.quarantine_prepare(ptr, base, usable, is_large));
}

// ------------------------------------------------------------- triggering

void
MineSweeper::maybe_trigger_sweep()
{
    const std::size_t pending = quarantine_.pending_bytes();
    if (pending < opts_.min_sweep_bytes &&
        quarantine_.unmapped_bytes() < opts_.min_sweep_bytes) {
        return;
    }
    const std::size_t failed = quarantine_.failed_bytes();
    const std::size_t unmapped = quarantine_.unmapped_bytes();
    const std::size_t jade_live = jade_.live_bytes();
    // Heap size for the trigger: total live bytes minus failed frees
    // (subtracted from both sides, §3.2) minus unmapped quarantine (which
    // no longer consumes memory, §4.2).
    const std::size_t heap =
        jade_live > failed + unmapped ? jade_live - failed - unmapped : 0;

    bool trigger =
        pending >= opts_.min_sweep_bytes &&
        static_cast<double>(pending) >=
            opts_.sweep_threshold * static_cast<double>(heap);

    // Unmapped quarantine pressures kernel/allocator metadata even though
    // it holds no memory: sweep when it reaches 9x the footprint (§4.2).
    if (!trigger && unmapped >= opts_.min_sweep_bytes &&
        static_cast<double>(unmapped) >=
            opts_.unmapped_factor *
                static_cast<double>(access_map_.committed_bytes())) {
        trigger = true;
    }

    if (!trigger)
        return;

    // Backpressure (§5.7): if the quarantine has grown far past the heap
    // while a sweep is running, pause this allocating thread until the
    // sweep completes.
    const bool pause =
        opts_.pause_factor > 0 &&
        static_cast<double>(pending) >
            opts_.pause_factor *
                static_cast<double>(heap > pending ? heap - pending
                                                   : pending);
    controller_.request_sweep(pause);
}

// ---------------------------------------------------------------- sweeps

std::vector<Range>
MineSweeper::scan_ranges() const
{
    std::vector<Range> ranges = access_map_.committed_runs();
    for (const Range& r : roots_.roots())
        sweep::append_resident_subranges(r, &ranges);
    // Stacks are filtered to resident pages: untouched stack pages are
    // all-zero and cannot hold pointers.
    for (const Range& r : roots_.stacks())
        sweep::append_resident_subranges(r, &ranges);
    // Copy the provider under its lock: the shim may swap it while this
    // sweep is already running.
    std::function<std::vector<Range>()> provider;
    {
        LockGuard g(extra_roots_lock_);
        provider = extra_roots_provider_;
    }
    if (provider) {
        const std::vector<Range> internal = internal_regions();
        for (const Range& r : provider()) {
            bool overlaps_internal = false;
            for (const Range& i : internal) {
                if (r.base < i.end() && i.base < r.end()) {
                    overlaps_internal = true;
                    break;
                }
            }
            if (!overlaps_internal)
                sweep::append_resident_subranges(r, &ranges);
        }
    }
    return ranges;
}

// msw-analyze: slow-path(configuration API: called once at engine
// construction and from tests, never on the alloc/free path)
void
MineSweeper::set_extra_roots_provider(
    std::function<std::vector<sweep::Range>()> provider)
{
    LockGuard g(extra_roots_lock_);
    extra_roots_provider_ = std::move(provider);
}

void
MineSweeper::run_sweep()
{
    reclaimer_.begin_scan();
    // Test hook: hold the sweep open while armed so tests can exercise
    // the concurrent free()/deferred-unmap machinery deterministically.
    while (failpoint_should_fail(Failpoint::kSweepDelay))
        ::usleep(1000);
    std::vector<Entry> locked_in;
    quarantine_.lock_in(locked_in);
    if (locked_in.empty()) {
        reclaimer_.end_scan();
        return;
    }
    // lock_in already ran the policy's release-order shuffle; count it.
    if (config_.policy->shuffle != nullptr)
        stats_.add(Stat::kReleaseShuffles);

    const std::uint64_t cpu0 = sweep::thread_cpu_ns();
    const std::uint64_t helpers0 =
        workers_ != nullptr ? workers_->helper_cpu_ns() : 0;
    // Phase timers (telemetry layer): the sweep is the slow path by
    // construction, so the handful of clock reads below are recorded
    // unconditionally; only trace-ring pushes are gated.
    const std::uint64_t sweep_t0 = monotonic_ns();
    metrics::telemetry().trace_event(metrics::TraceEvent::kSweepBegin,
                                     locked_in.size());

    if (opts_.sweep_enabled) {
        // Phase 1a (dirty-scan): arm the write tracker over the ranges
        // whose mutations the STW recheck must observe.
        const std::uint64_t dirty_t0 = monotonic_ns();
        const bool track = tracker_ != nullptr;
        if (track) {
            std::vector<Range> tracked = access_map_.committed_runs();
            if (tracker_->tracks_arbitrary_memory()) {
                for (const Range& r : roots_.roots())
                    tracked.push_back(r);
            }
            tracker_->begin(tracked);
        }
        const std::uint64_t dirty_ns = monotonic_ns() - dirty_t0;
        stats_.add(Stat::kPhaseDirtyScanNs, dirty_ns);
        metrics::telemetry().trace_event(
            metrics::TraceEvent::kPhaseDirtyScan, dirty_ns);

        // Phase 1b (mark): concurrent linear mark of all scannable
        // memory, plus the STW recheck when tracking.
        const std::uint64_t mark_t0 = monotonic_ns();
        const MarkStats ms = marker_.mark_ranges(scan_ranges(),
                                                 workers_.get());
        stats_.add(Stat::kBytesScanned, ms.bytes_scanned);
        std::uint64_t scanned = ms.bytes_scanned;

        if (track) {
            // Phase 2 (mostly-concurrent only): brief stop-the-world
            // recheck of pages modified during phase 1 (§4.3).
            const std::uint64_t t0 = monotonic_ns();
            roots_.stop_world();
            std::vector<Range> rescan;
            tracker_->end_collect(rescan);
            if (!tracker_->tracks_arbitrary_memory()) {
                for (const Range& r : roots_.roots_stw())
                    sweep::append_resident_subranges(r, &rescan);
            }
            for (const Range& r : roots_.stacks_stw())
                sweep::append_resident_subranges(r, &rescan);
            for (const Range& r : roots_.parked_registers())
                rescan.push_back(r);
            const MarkStats ms2 = marker_.mark_ranges(rescan,
                                                      workers_.get());
            roots_.resume_world();
            stats_.add(Stat::kBytesScanned, ms2.bytes_scanned);
            scanned += ms2.bytes_scanned;
            const std::uint64_t stw_ns = monotonic_ns() - t0;
            stats_.add(Stat::kStwNs, stw_ns);
            metrics::telemetry().trace_event(
                metrics::TraceEvent::kStwPause, stw_ns);
        }
        // The mark phase spans both passes (the STW window included:
        // its recheck is marking work; kStwNs isolates the stop itself).
        const std::uint64_t mark_ns = monotonic_ns() - mark_t0;
        stats_.add(Stat::kPhaseMarkNs, mark_ns);
        metrics::telemetry().trace_event(metrics::TraceEvent::kPhaseMark,
                                         mark_ns, scanned);
    }

    // Perform deferred page-unmaps now that marking is done: every
    // affected entry is still quarantined at this point, so this is safe
    // and the pages have already been scanned.
    const std::uint64_t drain_t0 = monotonic_ns();
    reclaimer_.drain_pending();
    const std::uint64_t drain_ns = monotonic_ns() - drain_t0;
    stats_.add(Stat::kPhaseDrainNs, drain_ns);
    metrics::telemetry().trace_event(metrics::TraceEvent::kPhaseDrain,
                                     drain_ns);

    // Phase 3: walk the locked-in quarantine; release unmarked entries.
    std::vector<Entry> failed;
    const unsigned nworkers =
        workers_ != nullptr ? workers_->count() : 1;
    std::vector<std::vector<Entry>> failed_per_worker(nworkers);
    std::atomic<std::size_t> next{0};
    std::atomic<std::uint64_t> released_count{0};
    std::atomic<std::uint64_t> released_bytes{0};
    std::atomic<std::uint64_t> failed_count{0};
    std::atomic<std::uint64_t> fill_checks{0};
    std::atomic<std::uint64_t> fill_violations{0};

    // Hardened policy: audit the quarantine fill of every entry about to
    // be released. A byte that changed while the block sat unreferenced
    // in quarantine is a write-after-free. Needs the fill to have been
    // written in the first place, hence the zeroing gate; unmapped
    // entries have no bytes to audit.
    const auto check_fill =
        opts_.zeroing ? config_.policy->check_free_fill : nullptr;

    auto release_job = [&](unsigned index) {
        // Sweep context with restore on exit: index 0 runs on the
        // *calling* thread, which for emergency and watchdog-fallback
        // sweeps is a mutator whose own watchdog checks must survive.
        SweepController::ScopedSweepContext scoped;
        constexpr std::size_t kBatch = 64;
        for (;;) {
            // msw-relaxed(work-cursor): batch ticket; only RMW
            // atomicity matters, entries are read-only here.
            const std::size_t start =
                next.fetch_add(kBatch, std::memory_order_relaxed);
            if (start >= locked_in.size())
                break;
            const std::size_t end =
                std::min(start + kBatch, locked_in.size());
            for (std::size_t i = start; i < end; ++i) {
                const Entry& e = locked_in[i];
                const bool marked =
                    opts_.sweep_enabled &&
                    mark_bits_.test_range(e.real_base(), e.usable);
                if (marked) {
                    // msw-relaxed(stat-cells): sweep tally; the join
                    // below publishes it to the reader.
                    failed_count.fetch_add(1, std::memory_order_relaxed);
                    if (opts_.keep_failed) {
                        failed_per_worker[index].push_back(e);
                        continue;
                    }
                }
                if (check_fill != nullptr && !e.unmapped) {
                    // msw-relaxed(stat-cells): sweep tally; the join
                    // below publishes it to the reader.
                    fill_checks.fetch_add(1, std::memory_order_relaxed);
                    const void* bad = check_fill(to_ptr(e.real_base()),
                                                 e.usable);
                    if (bad != nullptr) {
                        // msw-relaxed(stat-cells): sweep tally; the
                        // join below publishes it to the reader.
                        fill_violations.fetch_add(
                            1, std::memory_order_relaxed);
                        alloc::policy_violation(
                            "quarantined memory tampered before release",
                            bad);
                    }
                }
                if (!reclaimer_.release_entry(e)) {
                    // Could not restore access under pressure: keep the
                    // entry quarantined; a later sweep retries.
                    // msw-relaxed(stat-cells): sweep tally; the join
                    // below publishes it to the reader.
                    failed_count.fetch_add(1, std::memory_order_relaxed);
                    failed_per_worker[index].push_back(e);
                    continue;
                }
                // msw-relaxed(stat-cells): sweep tallies; the join
                // below publishes them to the reader.
                released_count.fetch_add(1, std::memory_order_relaxed);
                released_bytes.fetch_add(e.usable,
                                         std::memory_order_relaxed);
            }
        }
    };
    const std::uint64_t release_t0 = monotonic_ns();
    if (workers_ != nullptr)
        workers_->run(release_job);
    else
        release_job(0);
    const std::uint64_t release_ns = monotonic_ns() - release_t0;
    stats_.add(Stat::kPhaseReleaseNs, release_ns);

    for (auto& fv : failed_per_worker)
        failed.insert(failed.end(), fv.begin(), fv.end());

    // msw-relaxed(stat-cells): tallies read after the worker join,
    // which publishes every worker's writes.
    const std::uint64_t released_n =
        released_count.load(std::memory_order_relaxed);
    metrics::telemetry().trace_event(metrics::TraceEvent::kPhaseRelease,
                                     release_ns, released_n);
    stats_.add(Stat::kEntriesReleased, released_n);
    // msw-relaxed(stat-cells): as above — post-join read.
    stats_.add(Stat::kBytesReleased,
               released_bytes.load(std::memory_order_relaxed));
    // msw-relaxed(stat-cells): as above — post-join read.
    stats_.add(Stat::kFailedFrees,
               failed_count.load(std::memory_order_relaxed));
    // msw-relaxed(stat-cells): as above — post-join read.
    stats_.add(Stat::kSweepFillChecks,
               fill_checks.load(std::memory_order_relaxed));
    // msw-relaxed(stat-cells): as above — post-join read.
    stats_.add(Stat::kCanaryViolations,
               fill_violations.load(std::memory_order_relaxed));
    mark_bits_.clear_marks();
    quarantine_.store_failed(std::move(failed));

    reclaimer_.end_scan();

    // §4.5: full allocator purge synchronised with the end of the sweep.
    if (opts_.purging)
        jade_.purge_all();

    const std::uint64_t helpers1 =
        workers_ != nullptr ? workers_->helper_cpu_ns() : 0;
    stats_.add(Stat::kSweepCpuNs, (sweep::thread_cpu_ns() - cpu0) +
                                      (helpers1 - helpers0));
    metrics::telemetry().trace_event(metrics::TraceEvent::kSweepEnd,
                                     monotonic_ns() - sweep_t0,
                                     released_n);
}

// ----------------------------------------------------- process lifecycle

// The acquire/release pairings below straddle fork(), outside what the
// static analysis can see; ordering is enforced at runtime by the
// lock-rank validator instead (lock_rank_fork_begin tolerates the bulk
// same-rank runs, inversions still panic).

void
MineSweeper::prepare_fork() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    controller_.prepare_fork();  // kCoreControl (10); quiesces the sweep
    roots_.prepare_fork();       // kCoreRoots   (12)
    if (workers_ != nullptr)
        workers_->prepare_fork();  // kCoreWorkers (14); drains helpers
    reclaimer_.prepare_fork();     // kCoreUnmap   (16)
    extra_roots_lock_.lock();      // kCoreConfig  (18)
    quarantine_.prepare_fork();    // kQuarantineRegistry (20) -> (22)
    jade_.prepare_fork();          // kBinRegistry (30) -> ... -> (42)
}

void
MineSweeper::parent_after_fork() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    jade_.parent_after_fork();
    quarantine_.parent_after_fork();
    extra_roots_lock_.unlock();
    reclaimer_.parent_after_fork();
    if (workers_ != nullptr)
        workers_->parent_after_fork();
    roots_.parent_after_fork();
    controller_.parent_after_fork();
}

void
MineSweeper::child_after_fork() MSW_NO_THREAD_SAFETY_ANALYSIS
{
    // Phase 1 — release the whole hierarchy (reverse rank order) and
    // reset state describing threads that did not survive the fork.
    jade_.child_after_fork();
    quarantine_.child_after_fork();
    extra_roots_lock_.unlock();
    reclaimer_.child_after_fork();
    if (workers_ != nullptr)
        workers_->child_after_fork();
    roots_.child_after_fork();
    controller_.child_after_fork();

    // Event counters described the parent's history; gauges (live /
    // committed bytes) describe the inherited heap and are kept.
    stats_.reset_events();
    metrics::telemetry().trace_event(metrics::TraceEvent::kForkChild);

    // Phase 2 — allocating fixups. These free and flush through the
    // interposed allocator, re-acquiring quarantine/bin/extent locks,
    // so they must only run once phase 1 has released everything.
    roots_.child_fixup();
    jade_.child_fixup();
}

void
MineSweeper::quiesce()
{
    controller_.shutdown();
}

// ----------------------------------------------------------------- misc

void
MineSweeper::force_sweep()
{
    quarantine_.flush_thread_buffer();
    controller_.force_sweep();
}

SweepStats
MineSweeper::sweep_stats() const
{
    std::uint64_t v[kStatCount];
    stats_.read_all(v);
    SweepStats s;
    s.sweeps = controller_.sweeps_done();
    s.entries_released = v[static_cast<unsigned>(Stat::kEntriesReleased)];
    s.bytes_released = v[static_cast<unsigned>(Stat::kBytesReleased)];
    s.failed_frees = v[static_cast<unsigned>(Stat::kFailedFrees)];
    s.double_frees = v[static_cast<unsigned>(Stat::kDoubleFrees)];
    s.bytes_scanned = v[static_cast<unsigned>(Stat::kBytesScanned)];
    s.sweep_cpu_ns = v[static_cast<unsigned>(Stat::kSweepCpuNs)];
    s.stw_ns = v[static_cast<unsigned>(Stat::kStwNs)];
    s.pause_ns = v[static_cast<unsigned>(Stat::kPauseNs)];
    s.unmapped_entries = v[static_cast<unsigned>(Stat::kUnmappedEntries)];
    s.phase_dirty_scan_ns =
        v[static_cast<unsigned>(Stat::kPhaseDirtyScanNs)];
    s.phase_mark_ns = v[static_cast<unsigned>(Stat::kPhaseMarkNs)];
    s.phase_drain_ns = v[static_cast<unsigned>(Stat::kPhaseDrainNs)];
    s.phase_release_ns = v[static_cast<unsigned>(Stat::kPhaseReleaseNs)];
    s.emergency_sweeps = v[static_cast<unsigned>(Stat::kEmergencySweeps)];
    s.commit_retries = v[static_cast<unsigned>(Stat::kCommitRetries)];
    s.watchdog_fallbacks =
        v[static_cast<unsigned>(Stat::kWatchdogFallbacks)];
    s.oom_returns = v[static_cast<unsigned>(Stat::kOomReturns)];
    s.canary_checks = v[static_cast<unsigned>(Stat::kCanaryChecks)];
    s.canary_violations =
        v[static_cast<unsigned>(Stat::kCanaryViolations)];
    s.sweep_fill_checks =
        v[static_cast<unsigned>(Stat::kSweepFillChecks)];
    s.release_shuffles =
        v[static_cast<unsigned>(Stat::kReleaseShuffles)];
    for (unsigned i = 0; i < util::kNumFailpoints; ++i)
        s.failpoint_hits[i] =
            util::failpoint_hits(static_cast<util::Failpoint>(i));
    return s;
}

}  // namespace msw::core
