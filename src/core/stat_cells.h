/**
 * @file
 * Sharded fast-path statistics.
 *
 * The alloc/free fast path used to bump ~20 `std::atomic<uint64_t>`
 * members that shared the MineSweeper object's cache lines: every counter
 * update from every thread contended the same lines, which is exactly
 * where drop-in schemes lose their overhead budget (cf. FreeGuard's and
 * CAMP's per-thread state separation). StatCells stripes each logical
 * counter across a small set of cache-line-padded shards; a thread
 * increments only its home shard (one relaxed RMW on a line it usually
 * owns) and readers sum the shards. Sums are exact: every delta lands in
 * exactly one shard and 64-bit wraparound is associative, so gauges that
 * mix add() and sub() also aggregate to the true value.
 *
 * The layer is allocation-free (fixed inline storage) so it is safe on
 * the self-hosted LD_PRELOAD path, and a StatCells instance is shared by
 * the whole runtime-base hierarchy (MineSweeper, MarkUs, FFMalloc), which
 * is what makes the SweepStats/AllocatorStats surfaces uniform.
 */
#pragma once

#include <atomic>
#include <cstdint>

namespace msw::core {

/**
 * Logical counter identities for the whole runtime family. One shared
 * namespace keeps the aggregation surface uniform; a runtime simply never
 * touches the slots it has no use for (an unused slot costs 8 bytes per
 * shard, nothing on any fast path).
 */
enum class Stat : unsigned {
    // Allocation surface (all runtimes).
    kAllocCalls = 0,
    kFreeCalls,
    kDoubleFrees,

    // Sweep/mark outcomes (MineSweeper, MarkUs).
    kEntriesReleased,
    kBytesReleased,
    kFailedFrees,
    kBytesScanned,
    kSweepCpuNs,
    kStwNs,
    kPauseNs,
    kUnmappedEntries,

    // Sweep-phase breakdown (telemetry layer; MineSweeper, MarkUs).
    kPhaseDirtyScanNs,
    kPhaseMarkNs,
    kPhaseDrainNs,
    kPhaseReleaseNs,

    // Resilience (MineSweeper).
    kEmergencySweeps,
    kCommitRetries,
    kWatchdogFallbacks,
    kOomReturns,

    // Hardened allocation policy (canary + fill verification).
    kCanaryChecks,
    kCanaryViolations,
    kSweepFillChecks,
    kReleaseShuffles,

    // Byte gauges (FFMalloc): add()/sub() pairs, exact under summation.
    kLiveBytes,
    kCommittedBytes,

    kCount,
};

inline constexpr unsigned kStatCount = static_cast<unsigned>(Stat::kCount);

class StatCells
{
  public:
    StatCells() = default;

    StatCells(const StatCells&) = delete;
    StatCells& operator=(const StatCells&) = delete;

    /** Add @p delta to @p stat on the calling thread's home shard. */
    void
    add(Stat stat, std::uint64_t delta = 1)
    {
        cell(stat).fetch_add(delta, std::memory_order_relaxed);
    }

    /** Subtract @p delta (gauges); aggregates exactly via wraparound. */
    void
    sub(Stat stat, std::uint64_t delta)
    {
        cell(stat).fetch_sub(delta, std::memory_order_relaxed);
    }

    /** Sum of @p stat over all shards. */
    std::uint64_t read(Stat stat) const;

    /** Snapshot every counter (one pass over the shards). */
    void read_all(std::uint64_t (&out)[kStatCount]) const;

    /**
     * Zero every *event* counter across all shards. Gauges (kLiveBytes,
     * kCommittedBytes) are preserved: they describe heap state the fork
     * child inherits, and zeroing them would make the sub() half of a
     * later add()/sub() pair wrap. Only legal when no other thread is
     * mutating — the atfork child handler, where the process is
     * single-threaded by construction.
     */
    void reset_events();

    /** True for add()/sub() byte gauges, false for event counters. */
    static constexpr bool
    is_gauge(Stat stat)
    {
        return stat == Stat::kLiveBytes || stat == Stat::kCommittedBytes;
    }

    /** Number of stripes (tests and benchmarks). */
    static constexpr unsigned
    shards()
    {
        return kShards;
    }

  private:
    // Few enough stripes to keep read() cheap, enough that a handful of
    // hot threads land on distinct lines. Must be a power of two.
    static constexpr unsigned kShards = 8;
    static constexpr unsigned kCacheLine = 64;

    struct alignas(kCacheLine) Shard {
        std::atomic<std::uint64_t> v[kStatCount];
    };

    /**
     * The calling thread's stripe, assigned round-robin on first use so
     * the common few-threads case spreads over distinct shards (a tid
     * hash would collide half the time at two threads).
     */
    static unsigned
    home_shard()
    {
        thread_local const unsigned shard = next_shard() & (kShards - 1);
        return shard;
    }

    static unsigned next_shard();

    std::atomic<std::uint64_t>&
    cell(Stat stat)
    {
        return shards_[home_shard()].v[static_cast<unsigned>(stat)];
    }

    Shard shards_[kShards] = {};
};

}  // namespace msw::core
