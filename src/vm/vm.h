/**
 * @file
 * Page-granular virtual-memory primitives.
 *
 * Everything above this layer thinks in terms of a *reservation*: a large
 * contiguous range of virtual addresses obtained once, with physical memory
 * committed and decommitted page-wise inside it. This mirrors how the paper's
 * modified jemalloc used sbrk to keep allocation extents contiguous, which
 * is what makes MineSweeper's flat shadow map and "is this value a heap
 * pointer?" range test cheap.
 *
 * State model per page inside a reservation:
 *  - reserved:    PROT_NONE, no physical backing (initial state)
 *  - committed:   PROT_READ|WRITE, demand-backed
 *  - decommitted: PROT_NONE, physical backing discarded
 *
 * decommit() both discards the physical pages (MADV_DONTNEED) and removes
 * access permissions, exactly the decommit/commit pair MineSweeper installs
 * through jemalloc's extent-hook API (paper §4.5).
 */
#pragma once

#include <cstddef>
#include <cstdint>

namespace msw::vm {

/**
 * Outcome of a page-permission / backing operation.
 *
 * kRetry reports the transient failures (ENOMEM, EAGAIN — kernel out of
 * memory or out of VMA slots) that a quarantining allocator both causes
 * and must survive; callers back off, reclaim, and try again. Permanent
 * errors (bad address, EACCES) still terminate via panic(): they are
 * allocator bugs, not memory pressure.
 */
enum class [[nodiscard]] VmStatus {
    kOk = 0,
    kRetry,
};

/** Base-2 log of the page size this library is built for. */
inline constexpr unsigned kPageShift = 12;

/** Page size in bytes (4 KiB; verified against the OS at startup). */
inline constexpr std::size_t kPageSize = std::size_t{1} << kPageShift;

/** Round a byte count up to whole pages. */
constexpr std::size_t
pages_for(std::size_t bytes)
{
    return (bytes + kPageSize - 1) >> kPageShift;
}

/**
 * A contiguous reserved range of virtual address space.
 *
 * Movable, not copyable; unmaps on destruction. All range arguments must be
 * page-aligned and lie inside the reservation.
 */
class Reservation
{
  public:
    Reservation() = default;

    /**
     * Reserve @p bytes of address space (rounded up to pages) with no
     * physical backing and no access permissions. Terminates the process
     * via fatal() if the reservation cannot be made.
     */
    static Reservation reserve(std::size_t bytes);

    Reservation(Reservation&& other) noexcept;
    Reservation& operator=(Reservation&& other) noexcept;
    Reservation(const Reservation&) = delete;
    Reservation& operator=(const Reservation&) = delete;
    ~Reservation();

    /** Start address (page-aligned), or 0 if empty. */
    std::uintptr_t base() const { return base_; }

    /** Size in bytes (page multiple). */
    std::size_t size() const { return size_; }

    /** One past the last byte. */
    std::uintptr_t end() const { return base_ + size_; }

    /** True if @p addr lies inside the reservation. */
    bool
    contains(std::uintptr_t addr) const
    {
        return addr >= base_ && addr < base_ + size_;
    }

    /** Make [addr, addr+len) readable+writable and demand-backed. */
    VmStatus commit(std::uintptr_t addr, std::size_t len) const;

    /**
     * commit() with a bounded retry-with-backoff loop, terminating via
     * fatal() only once the retries are exhausted. For startup paths
     * (metadata spaces) that cannot run without the pages.
     */
    void commit_must(std::uintptr_t addr, std::size_t len) const;

    /**
     * Discard physical backing of [addr, addr+len) and revoke access.
     * Subsequent commit() restores zero-filled pages.
     */
    VmStatus decommit(std::uintptr_t addr, std::size_t len) const;

    /**
     * Discard physical backing but keep the pages accessible (they refault
     * as zero pages) — jemalloc's default "purge" behaviour, which
     * MineSweeper replaces with decommit/commit (paper §4.5).
     */
    VmStatus purge_keep_accessible(std::uintptr_t addr,
                                   std::size_t len) const;

    /** Remove all access permissions from [addr, addr+len). */
    VmStatus protect_none(std::uintptr_t addr, std::size_t len) const;

    /** Restore read+write permissions on [addr, addr+len). */
    VmStatus protect_rw(std::uintptr_t addr, std::size_t len) const;

    /** Unmap the whole reservation (idempotent; no-op when empty). */
    void release();

  private:
    Reservation(std::uintptr_t base, std::size_t size)
        : base_(base), size_(size)
    {}

    /**
     * Validate [addr, addr+len). Returns false — callers no-op — for an
     * empty reservation or a zero-length range, so released/moved-from
     * objects stay safe to call into; misuse of a live reservation is
     * still a checked programming error.
     */
    bool check_range(std::uintptr_t addr, std::size_t len) const;

    std::uintptr_t base_ = 0;
    std::size_t size_ = 0;
};

/** Current resident set size of this process in bytes (from /proc). */
std::size_t current_rss_bytes();

/** Peak resident set size of this process in bytes (from getrusage). */
std::size_t peak_rss_bytes();

}  // namespace msw::vm
