#include "vm/vm.h"

#include <sys/mman.h>
#include <sys/resource.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/bits.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/log.h"

namespace msw::vm {

namespace {

using util::Failpoint;
using util::failpoint_should_fail;

/**
 * Map an mprotect/madvise failure to a status: ENOMEM and EAGAIN are the
 * kernel saying "not right now" (page-table / VMA allocation failed under
 * pressure) and are survivable; anything else is a bug in our bookkeeping
 * and stays fatal.
 */
VmStatus
classify_failure(const char* op, int err)
{
    if (err == ENOMEM || err == EAGAIN) {
        MSW_LOG_DEBUG("vm: transient %s failure: %s", op,
                      std::strerror(err));
        return VmStatus::kRetry;
    }
    panic("%s failed: %s", op, std::strerror(err));
}

struct PageSizeCheck {
    PageSizeCheck()
    {
        const long os = ::sysconf(_SC_PAGESIZE);
        if (os != static_cast<long>(kPageSize)) {
            fatal("OS page size %ld != compiled page size %zu", os,
                  kPageSize);
        }
    }
};
const PageSizeCheck g_page_size_check;

}  // namespace

Reservation
Reservation::reserve(std::size_t bytes)
{
    const std::size_t size = align_up(bytes, kPageSize);
    void* p = ::mmap(nullptr, size, PROT_NONE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (p == MAP_FAILED) {
        fatal("mmap reserve of %zu bytes failed: %s", size,
              std::strerror(errno));
    }
    return Reservation(to_addr(p), size);
}

Reservation::Reservation(Reservation&& other) noexcept
    : base_(other.base_), size_(other.size_)
{
    other.base_ = 0;
    other.size_ = 0;
}

Reservation&
Reservation::operator=(Reservation&& other) noexcept
{
    if (this != &other) {
        release();
        base_ = other.base_;
        size_ = other.size_;
        other.base_ = 0;
        other.size_ = 0;
    }
    return *this;
}

Reservation::~Reservation()
{
    release();
}

bool
Reservation::check_range(std::uintptr_t addr, std::size_t len) const
{
    if (base_ == 0 || len == 0) {
        return false;
    }
    MSW_DCHECK(is_aligned(addr, kPageSize));
    MSW_DCHECK(is_aligned(len, kPageSize));
    MSW_DCHECK(addr >= base_ && addr + len <= base_ + size_);
    return true;
}

VmStatus
Reservation::commit(std::uintptr_t addr, std::size_t len) const
{
    if (!check_range(addr, len)) {
        return VmStatus::kOk;
    }
    if (failpoint_should_fail(Failpoint::kVmCommit)) {
        return VmStatus::kRetry;
    }
    if (::mprotect(to_ptr(addr), len, PROT_READ | PROT_WRITE) != 0) {
        return classify_failure("commit mprotect", errno);
    }
    return VmStatus::kOk;
}

void
Reservation::commit_must(std::uintptr_t addr, std::size_t len) const
{
    // Startup/metadata pages: retry hard before giving up, so a p=0.05
    // soak or a brief pressure spike cannot kill the process during init.
    constexpr int kAttempts = 10;
    unsigned backoff_us = 100;
    for (int i = 0; i < kAttempts; ++i) {
        if (commit(addr, len) == VmStatus::kOk) {
            return;
        }
        ::usleep(backoff_us);
        if (backoff_us < 100'000) {
            backoff_us *= 2;
        }
    }
    fatal("commit of %zu essential bytes failed after %d attempts", len,
          kAttempts);
}

VmStatus
Reservation::decommit(std::uintptr_t addr, std::size_t len) const
{
    if (!check_range(addr, len)) {
        return VmStatus::kOk;
    }
    if (failpoint_should_fail(Failpoint::kVmDecommit)) {
        return VmStatus::kRetry;
    }
    if (::madvise(to_ptr(addr), len, MADV_DONTNEED) != 0) {
        return classify_failure("decommit madvise", errno);
    }
    if (::mprotect(to_ptr(addr), len, PROT_NONE) != 0) {
        // Backing is already discarded; retrying the whole decommit is
        // safe (madvise on empty pages is harmless).
        return classify_failure("decommit mprotect", errno);
    }
    return VmStatus::kOk;
}

VmStatus
Reservation::purge_keep_accessible(std::uintptr_t addr, std::size_t len) const
{
    if (!check_range(addr, len)) {
        return VmStatus::kOk;
    }
    if (failpoint_should_fail(Failpoint::kVmPurge)) {
        return VmStatus::kRetry;
    }
    if (::madvise(to_ptr(addr), len, MADV_DONTNEED) != 0) {
        return classify_failure("purge madvise", errno);
    }
    return VmStatus::kOk;
}

VmStatus
Reservation::protect_none(std::uintptr_t addr, std::size_t len) const
{
    if (!check_range(addr, len)) {
        return VmStatus::kOk;
    }
    if (::mprotect(to_ptr(addr), len, PROT_NONE) != 0) {
        return classify_failure("protect_none", errno);
    }
    return VmStatus::kOk;
}

VmStatus
Reservation::protect_rw(std::uintptr_t addr, std::size_t len) const
{
    if (!check_range(addr, len)) {
        return VmStatus::kOk;
    }
    if (failpoint_should_fail(Failpoint::kVmCommit)) {
        return VmStatus::kRetry;
    }
    if (::mprotect(to_ptr(addr), len, PROT_READ | PROT_WRITE) != 0) {
        return classify_failure("protect_rw", errno);
    }
    return VmStatus::kOk;
}

void
Reservation::release()
{
    if (base_ != 0) {
        ::munmap(to_ptr(base_), size_);
        base_ = 0;
        size_ = 0;
    }
}

std::size_t
current_rss_bytes()
{
    // /proc/self/statm field 2 is resident pages.
    std::FILE* f = std::fopen("/proc/self/statm", "r");
    if (f == nullptr)
        return 0;
    unsigned long vm_pages = 0;
    unsigned long rss_pages = 0;
    const int n = std::fscanf(f, "%lu %lu", &vm_pages, &rss_pages);
    std::fclose(f);
    if (n != 2)
        return 0;
    return static_cast<std::size_t>(rss_pages) * kPageSize;
}

std::size_t
peak_rss_bytes()
{
    struct rusage ru;
    if (::getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    return static_cast<std::size_t>(ru.ru_maxrss) * 1024u;
}

}  // namespace msw::vm
