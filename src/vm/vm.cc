#include "vm/vm.h"

#include <sys/mman.h>
#include <sys/resource.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/bits.h"
#include "util/check.h"

namespace msw::vm {

namespace {

struct PageSizeCheck {
    PageSizeCheck()
    {
        const long os = ::sysconf(_SC_PAGESIZE);
        if (os != static_cast<long>(kPageSize)) {
            fatal("OS page size %ld != compiled page size %zu", os,
                  kPageSize);
        }
    }
};
const PageSizeCheck g_page_size_check;

}  // namespace

Reservation
Reservation::reserve(std::size_t bytes)
{
    const std::size_t size = align_up(bytes, kPageSize);
    void* p = ::mmap(nullptr, size, PROT_NONE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (p == MAP_FAILED) {
        fatal("mmap reserve of %zu bytes failed: %s", size,
              std::strerror(errno));
    }
    return Reservation(to_addr(p), size);
}

Reservation::Reservation(Reservation&& other) noexcept
    : base_(other.base_), size_(other.size_)
{
    other.base_ = 0;
    other.size_ = 0;
}

Reservation&
Reservation::operator=(Reservation&& other) noexcept
{
    if (this != &other) {
        release();
        base_ = other.base_;
        size_ = other.size_;
        other.base_ = 0;
        other.size_ = 0;
    }
    return *this;
}

Reservation::~Reservation()
{
    release();
}

void
Reservation::check_range(std::uintptr_t addr, std::size_t len) const
{
    MSW_DCHECK(is_aligned(addr, kPageSize));
    MSW_DCHECK(is_aligned(len, kPageSize));
    MSW_DCHECK(addr >= base_ && addr + len <= base_ + size_);
}

void
Reservation::commit(std::uintptr_t addr, std::size_t len) const
{
    check_range(addr, len);
    if (::mprotect(to_ptr(addr), len, PROT_READ | PROT_WRITE) != 0)
        panic("commit mprotect failed: %s", std::strerror(errno));
}

void
Reservation::decommit(std::uintptr_t addr, std::size_t len) const
{
    check_range(addr, len);
    if (::madvise(to_ptr(addr), len, MADV_DONTNEED) != 0)
        panic("decommit madvise failed: %s", std::strerror(errno));
    if (::mprotect(to_ptr(addr), len, PROT_NONE) != 0)
        panic("decommit mprotect failed: %s", std::strerror(errno));
}

void
Reservation::purge_keep_accessible(std::uintptr_t addr, std::size_t len) const
{
    check_range(addr, len);
    if (::madvise(to_ptr(addr), len, MADV_DONTNEED) != 0)
        panic("purge madvise failed: %s", std::strerror(errno));
}

void
Reservation::protect_none(std::uintptr_t addr, std::size_t len) const
{
    check_range(addr, len);
    if (::mprotect(to_ptr(addr), len, PROT_NONE) != 0)
        panic("protect_none failed: %s", std::strerror(errno));
}

void
Reservation::protect_rw(std::uintptr_t addr, std::size_t len) const
{
    check_range(addr, len);
    if (::mprotect(to_ptr(addr), len, PROT_READ | PROT_WRITE) != 0)
        panic("protect_rw failed: %s", std::strerror(errno));
}

void
Reservation::release()
{
    if (base_ != 0) {
        ::munmap(to_ptr(base_), size_);
        base_ = 0;
        size_ = 0;
    }
}

std::size_t
current_rss_bytes()
{
    // /proc/self/statm field 2 is resident pages.
    std::FILE* f = std::fopen("/proc/self/statm", "r");
    if (f == nullptr)
        return 0;
    unsigned long vm_pages = 0;
    unsigned long rss_pages = 0;
    const int n = std::fscanf(f, "%lu %lu", &vm_pages, &rss_pages);
    std::fclose(f);
    if (n != 2)
        return 0;
    return static_cast<std::size_t>(rss_pages) * kPageSize;
}

std::size_t
peak_rss_bytes()
{
    struct rusage ru;
    if (::getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    return static_cast<std::size_t>(ru.ru_maxrss) * 1024u;
}

}  // namespace msw::vm
