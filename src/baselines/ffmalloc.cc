#include "baselines/ffmalloc.h"

#include <cstring>

#include "util/bits.h"
#include "util/check.h"
#include "util/log.h"
#include "util/mutex.h"

namespace msw::baseline {

using alloc::class_size;
using alloc::num_size_classes;
using alloc::size_to_class;

namespace {

constexpr std::uint8_t kOpen = 0;
constexpr std::uint8_t kSealed = 1;
constexpr std::uint8_t kDecommitted = 2;

}  // namespace

FFMalloc::FFMalloc(const Options& opts)
    : space_(vm::Reservation::reserve(opts.va_bytes)),
      num_classes_(num_size_classes())
{
    const std::size_t pages = space_.size() >> vm::kPageShift;
    info_space_ = vm::Reservation::reserve(pages * sizeof(std::uint32_t));
    info_space_.commit_must(info_space_.base(), info_space_.size());
    page_info_ = to_ptr_of<std::uint32_t>(info_space_.base());

    live_space_ = vm::Reservation::reserve(
        pages * (sizeof(std::uint16_t) + sizeof(std::uint8_t)));
    live_space_.commit_must(live_space_.base(), live_space_.size());
    page_live_ = to_ptr_of<std::atomic<std::uint16_t>>(live_space_.base());
    page_sealed_ = to_ptr_of<std::atomic<std::uint8_t>>(
        live_space_.base() + pages * sizeof(std::uint16_t));

    {
        LockGuard g(frontier_lock_);
        frontier_ = space_.base();
    }
    pools_ = new Pool[num_classes_];
}

FFMalloc::~FFMalloc()
{
    delete[] pools_;
}

std::size_t
FFMalloc::frontier_bytes() const
{
    LockGuard g(frontier_lock_);
    return frontier_ - space_.base();
}

std::uintptr_t
FFMalloc::grab_span(std::size_t bytes, std::size_t align_bytes)
{
    LockGuard g(frontier_lock_);
    const std::uintptr_t addr = align_up(frontier_, align_bytes);
    if (addr + bytes > space_.end()) {
        // One-time allocation means VA burn is terminal, not transient;
        // still honour the malloc contract (nullptr, not abort).
        static std::atomic<bool> logged{false};
        // msw-relaxed(config-flag): log-once latch; only RMW
        // atomicity matters.
        if (!logged.exchange(true, std::memory_order_relaxed)) {
            MSW_LOG_WARN(
                "ffmalloc: virtual address space exhausted (%zu MiB); "
                "returning nullptr",
                space_.size() >> 20);
        }
        return 0;
    }
    if (space_.commit(addr, bytes) != vm::VmStatus::kOk)
        return 0;  // frontier untouched; a later attempt may succeed
    // Alignment-gap pages are dead forever; they were never committed, so
    // sealing them costs nothing.
    for (std::uintptr_t p = frontier_; p < addr; p += vm::kPageSize)
        // msw-relaxed(page-seal): written under frontier_lock_; the
        // reclaimer re-reads cells racily and tolerates staleness.
        page_sealed_[page_index(p)].store(kDecommitted,
                                          std::memory_order_relaxed);
    frontier_ = addr + bytes;
    stats_.add(core::Stat::kCommittedBytes, bytes);
    return addr;
}

void
FFMalloc::seal_and_maybe_decommit(std::uintptr_t page_addr)
{
    const std::size_t idx = page_index(page_addr);
    std::uint8_t expected = kOpen;
    if (!page_sealed_[idx].compare_exchange_strong(
            expected, kSealed, std::memory_order_acq_rel)) {
        return;  // already sealed or decommitted
    }
    if (page_live_[idx].load(std::memory_order_acquire) == 0) {
        expected = kSealed;
        if (page_sealed_[idx].compare_exchange_strong(
                expected, kDecommitted, std::memory_order_acq_rel) &&
            space_.decommit(page_addr, vm::kPageSize) == vm::VmStatus::kOk) {
            // On transient decommit failure the page stays physically
            // committed (bounded leak: its VA is retired and it is never
            // touched again), so the accounting must not drop it.
            stats_.sub(core::Stat::kCommittedBytes, vm::kPageSize);
        }
    }
}

void
FFMalloc::on_object_freed(std::uintptr_t base, std::size_t usable)
{
    const std::uintptr_t first = align_down(base, vm::kPageSize);
    const std::uintptr_t last =
        align_down(base + usable - 1, vm::kPageSize);
    for (std::uintptr_t p = first; p <= last; p += vm::kPageSize) {
        const std::size_t idx = page_index(p);
        const std::uint16_t prev =
            page_live_[idx].fetch_sub(1, std::memory_order_acq_rel);
        MSW_CHECK(prev != 0);
        if (prev == 1) {
            // Page is empty: decommit if no future allocation can land on
            // it (sealed).
            std::uint8_t expected = kSealed;
            if (page_sealed_[idx].compare_exchange_strong(
                    expected, kDecommitted, std::memory_order_acq_rel) &&
                space_.decommit(p, vm::kPageSize) == vm::VmStatus::kOk) {
                stats_.sub(core::Stat::kCommittedBytes, vm::kPageSize);
            }
        }
    }
}

bool
FFMalloc::refill_pool(unsigned cls)
{
    Pool& pool = pools_[cls];
    // Retire the old span: every fully-consumed or skipped page is sealed.
    // Idempotent, so running it again on a failed-refill retry is safe.
    if (pool.end != 0) {
        for (std::uintptr_t p = align_down(pool.bump, vm::kPageSize);
             p < pool.end; p += vm::kPageSize) {
            seal_and_maybe_decommit(p);
        }
    }
    const std::uintptr_t span = grab_span(kPoolBytes, vm::kPageSize);
    if (span == 0)
        return false;  // pool untouched; the next alloc retries the refill
    for (std::uintptr_t p = span; p < span + kPoolBytes; p += vm::kPageSize)
        page_info_[page_index(p)] = cls + 1;
    pool.bump = span;
    pool.end = span + kPoolBytes;
    return true;
}

void*
FFMalloc::alloc(std::size_t size)
{
    stats_.add(core::Stat::kAllocCalls);
    if (size == 0)
        size = 1;

    if (size > alloc::kMaxSmallSize) {
        const std::size_t bytes = align_up(size, vm::kPageSize);
        const std::uintptr_t addr = grab_span(bytes, vm::kPageSize);
        if (addr == 0)
            return nullptr;
        const std::size_t first = page_index(addr);
        const std::size_t pages = bytes >> vm::kPageShift;
        page_info_[first] = kLargeStart | static_cast<std::uint32_t>(pages);
        for (std::size_t i = 1; i < pages; ++i)
            page_info_[first + i] = kLargeInterior;
        // msw-relaxed(page-seal): per-page live census; only RMW
        // atomicity matters, sealing re-checks under the pool lock.
        page_live_[first].fetch_add(1, std::memory_order_relaxed);
        stats_.add(core::Stat::kLiveBytes, bytes);
        return to_ptr(addr);
    }

    const unsigned cls = size_to_class(size);
    const std::size_t csize = class_size(cls);
    Pool& pool = pools_[cls];
    std::uintptr_t addr;
    {
        LockGuard g(pool.lock);
        if (pool.bump + csize > pool.end && !refill_pool(cls))
            return nullptr;
        addr = pool.bump;
        pool.bump += csize;
        // Count the object on every page it overlaps *before* sealing, so
        // a page is never sealed-empty while an object on it is pending.
        const std::uintptr_t first = align_down(addr, vm::kPageSize);
        const std::uintptr_t last =
            align_down(addr + csize - 1, vm::kPageSize);
        for (std::uintptr_t p = first; p <= last; p += vm::kPageSize) {
            // msw-relaxed(page-seal): live census under pool.lock;
            // only RMW atomicity matters to racing frees.
            page_live_[page_index(p)].fetch_add(1,
                                                std::memory_order_relaxed);
        }
        // Seal pages the bump pointer has fully passed: nothing more will
        // ever be allocated on them (one-time allocation).
        const std::uintptr_t sealed_limit =
            align_down(pool.bump, vm::kPageSize);
        for (std::uintptr_t p = first; p < sealed_limit; p += vm::kPageSize)
            seal_and_maybe_decommit(p);
    }
    stats_.add(core::Stat::kLiveBytes, csize);
    return to_ptr(addr);
}

void*
FFMalloc::alloc_aligned(std::size_t alignment, std::size_t size)
{
    if (alignment <= alloc::kGranule)
        return alloc(size);
    MSW_CHECK(is_pow2(alignment));
    stats_.add(core::Stat::kAllocCalls);
    if (size == 0)
        size = 1;
    const std::size_t bytes = align_up(size, vm::kPageSize);
    const std::size_t align_bytes =
        alignment > vm::kPageSize ? alignment : vm::kPageSize;
    const std::uintptr_t addr = grab_span(bytes, align_bytes);
    if (addr == 0)
        return nullptr;
    const std::size_t first = page_index(addr);
    const std::size_t pages = bytes >> vm::kPageShift;
    page_info_[first] = kLargeStart | static_cast<std::uint32_t>(pages);
    for (std::size_t i = 1; i < pages; ++i)
        page_info_[first + i] = kLargeInterior;
    // msw-relaxed(page-seal): per-page live census; only RMW
    // atomicity matters, sealing re-checks under the pool lock.
    page_live_[first].fetch_add(1, std::memory_order_relaxed);
    stats_.add(core::Stat::kLiveBytes, bytes);
    return to_ptr(addr);
}

void
FFMalloc::free(void* ptr)
{
    if (ptr == nullptr)
        return;
    stats_.add(core::Stat::kFreeCalls);
    const std::uintptr_t addr = to_addr(ptr);
    MSW_CHECK(space_.contains(addr));
    const std::uint32_t info = page_info_[page_index(addr)];
    MSW_CHECK(info != kPageFree);

    if (info & kLargeStart) {
        // Interior pointers of large objects are not valid free() targets.
        MSW_CHECK((info & kLargeInterior) != kLargeInterior);
        MSW_CHECK(is_aligned(addr, vm::kPageSize));
        const std::size_t pages = info & ~kLargeStart;
        const std::size_t bytes = pages << vm::kPageShift;
        stats_.sub(core::Stat::kLiveBytes, bytes);
        // The whole span dies at once: decommit it and retire the VA.
        const std::size_t first = page_index(addr);
        // msw-relaxed(page-seal): the span dies wholesale; census and
        // seal cells only need atomicity against racing readers.
        page_live_[first].fetch_sub(1, std::memory_order_relaxed);
        for (std::size_t i = 0; i < pages; ++i) {
            page_info_[first + i] = kPageFree;
            // msw-relaxed(page-seal): as above — wholesale death.
            page_sealed_[first + i].store(kDecommitted,
                                          std::memory_order_relaxed);
        }
        if (space_.decommit(addr, bytes) == vm::VmStatus::kOk)
            stats_.sub(core::Stat::kCommittedBytes, bytes);
        return;
    }

    const unsigned cls = info - 1;
    MSW_CHECK(cls < num_classes_);
    const std::size_t csize = class_size(cls);
    stats_.sub(core::Stat::kLiveBytes, csize);
    on_object_freed(addr, csize);
}

std::size_t
FFMalloc::usable_size(const void* ptr) const
{
    const std::uintptr_t addr = to_addr(ptr);
    MSW_CHECK(space_.contains(addr));
    const std::uint32_t info = page_info_[page_index(addr)];
    MSW_CHECK(info != kPageFree);
    if (info & kLargeStart)
        return (info & ~kLargeStart) << vm::kPageShift;
    return class_size(info - 1);
}

alloc::AllocatorStats
FFMalloc::stats() const
{
    alloc::AllocatorStats s;
    s.live_bytes = stats_.read(core::Stat::kLiveBytes);
    s.committed_bytes = stats_.read(core::Stat::kCommittedBytes);
    s.metadata_bytes = info_space_.size() + live_space_.size();
    s.alloc_calls = stats_.read(core::Stat::kAllocCalls);
    s.free_calls = stats_.read(core::Stat::kFreeCalls);
    return s;
}

}  // namespace msw::baseline
