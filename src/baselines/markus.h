/**
 * @file
 * MarkUs baseline (Ainsworth & Jones, S&P 2020) — the strongest prior
 * quarantine scheme the paper compares against.
 *
 * Like MineSweeper, MarkUs quarantines freed allocations; unlike
 * MineSweeper it decides safety with a *transitive, conservative
 * mark-and-sweep* in the style of the Boehm collector: starting from the
 * roots (globals, stacks, registers), every reachable object is marked by
 * chasing pointers through object contents; quarantined objects that were
 * never reached are released. This handles cycles inside the quarantine
 * naturally (a GC property) but pays for it with pointer-chasing,
 * per-word allocation lookups and mark-stack traffic — exactly the costs
 * MineSweeper's linear sweep eliminates (paper §4.1, §6.6).
 *
 * Fidelity notes:
 *  - 25 % quarantine threshold (the paper's MarkUs configuration, §3.2);
 *  - no zeroing on free (MarkUs does not zero);
 *  - physical pages of large quarantined allocations are released, as in
 *    MarkUs (§4.2);
 *  - mostly-concurrent marking: a concurrent pass plus a stop-the-world
 *    recheck that rescans pages dirtied during marking and continues the
 *    transitive closure to a fixpoint (Boehm's mostly-parallel scheme).
 */
#pragma once

#include <condition_variable>
#include <memory>
#include <thread>
#include <vector>

#include "alloc/allocator.h"
#include "alloc/jade_allocator.h"
#include "quarantine/quarantine.h"
#include "sweep/dirty_tracker.h"
#include "sweep/page_access_map.h"
#include "sweep/roots.h"
#include "sweep/shadow_map.h"
#include "util/mutex.h"
#include "util/spin_lock.h"
#include "util/thread_annotations.h"

namespace msw::baseline {

class MarkUs final : public alloc::Allocator
{
  public:
    struct Options {
        /** Mark when quarantine exceeds this fraction of the live heap. */
        double quarantine_threshold = 0.25;
        std::size_t min_mark_bytes = std::size_t{1} << 20;
        /** Release pages of large quarantined allocations. */
        bool unmapping = true;
        /** Run marking on a background thread. */
        bool concurrent = true;
        alloc::JadeAllocator::Options jade{};
    };

    MarkUs() : MarkUs(Options{}) {}
    explicit MarkUs(const Options& opts);
    ~MarkUs() override;

    MarkUs(const MarkUs&) = delete;
    MarkUs& operator=(const MarkUs&) = delete;

    void* alloc(std::size_t size) override;
    void free(void* ptr) override;
    std::size_t usable_size(const void* ptr) const override;
    void* alloc_aligned(std::size_t alignment, std::size_t size) override;
    alloc::AllocatorStats stats() const override;
    const char* name() const override { return "markus"; }
    void flush() override;

    void add_root(const void* base, std::size_t len);
    void remove_root(const void* base);
    void register_mutator_thread();
    void unregister_mutator_thread();

    /** Run a full marking pass now and wait for it. */
    void force_mark();

    bool
    in_quarantine(const void* ptr) const
    {
        return quarantine_bitmap_.test(to_addr(ptr));
    }

    /** Marking-pass count (the analogue of MineSweeper's sweep count). */
    std::uint64_t
    marks_done() const
    {
        return marks_done_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    mark_cpu_ns() const
    {
        return mark_cpu_ns_.load(std::memory_order_relaxed);
    }

  private:
    class Hooks;

    void maybe_trigger_mark();
    /** Substrate-exhaustion path: forced marking passes, then nullptr. */
    void* alloc_slow(std::size_t request, std::size_t alignment);
    void run_mark();
    /**
     * Scan [base, base+len) for pointers; push newly marked objects.
     * Conservative scan over racy memory: sanitizer instrumentation off
     * (see Marker::scan_chunk).
     */
    MSW_NO_SANITIZE_ADDRESS MSW_NO_SANITIZE_THREAD
    void scan_for_objects(std::uintptr_t base, std::size_t len,
                          std::vector<sweep::Range>* worklist);
    void drain_worklist(std::vector<sweep::Range>* worklist);
    void marker_loop();

    Options opts_;
    alloc::JadeAllocator jade_;
    std::unique_ptr<Hooks> hooks_;
    sweep::ShadowMap mark_bits_;         ///< Object-granularity mark bits.
    sweep::ShadowMap quarantine_bitmap_; ///< Double-free de-dup.
    sweep::PageAccessMap access_map_;
    sweep::RootRegistry roots_;
    quarantine::Quarantine quarantine_;
    std::unique_ptr<sweep::DirtyTracker> tracker_;

    SpinLock unmap_lock_{util::LockRank::kCoreUnmap};
    std::atomic<bool> mark_active_{false};
    std::vector<quarantine::Entry> pending_unmaps_
        MSW_GUARDED_BY(unmap_lock_);

    std::thread marker_thread_;
    // Same control-band rank as MineSweeper's sweep_mu_ (the two never
    // coexist on one thread's lock stack).
    Mutex mark_mu_{util::LockRank::kCoreControl};
    std::condition_variable_any mark_cv_;
    std::condition_variable_any mark_done_cv_;
    bool mark_requested_ MSW_GUARDED_BY(mark_mu_) = false;
    bool shutdown_ MSW_GUARDED_BY(mark_mu_) = false;
    std::atomic<bool> mark_in_progress_{false};
    std::atomic<std::uint64_t> marks_done_{0};

    std::atomic<std::uint64_t> mark_cpu_ns_{0};
    std::atomic<std::uint64_t> double_frees_{0};
    std::atomic<std::uint64_t> alloc_calls_{0};
    std::atomic<std::uint64_t> free_calls_{0};
};

}  // namespace msw::baseline
