/**
 * @file
 * MarkUs baseline (Ainsworth & Jones, S&P 2020) — the strongest prior
 * quarantine scheme the paper compares against.
 *
 * Like MineSweeper, MarkUs quarantines freed allocations; unlike
 * MineSweeper it decides safety with a *transitive, conservative
 * mark-and-sweep* in the style of the Boehm collector: starting from the
 * roots (globals, stacks, registers), every reachable object is marked by
 * chasing pointers through object contents; quarantined objects that were
 * never reached are released. This handles cycles inside the quarantine
 * naturally (a GC property) but pays for it with pointer-chasing,
 * per-word allocation lookups and mark-stack traffic — exactly the costs
 * MineSweeper's linear sweep eliminates (paper §4.1, §6.6).
 *
 * All plumbing shared with MineSweeper — extent hooks, quarantine epochs,
 * double-free bitmap, root/thread registration, marker-thread lifecycle,
 * deferred unmaps — lives in core::QuarantineRuntime; this class keeps
 * only what makes MarkUs MarkUs: the transitive mark and the 25 %
 * trigger.
 *
 * Fidelity notes:
 *  - 25 % quarantine threshold (the paper's MarkUs configuration, §3.2);
 *  - no zeroing on free (MarkUs does not zero);
 *  - physical pages of large quarantined allocations are released, as in
 *    MarkUs (§4.2);
 *  - mostly-concurrent marking: a concurrent pass plus a stop-the-world
 *    recheck that rescans pages dirtied during marking and continues the
 *    transitive closure to a fixpoint (Boehm's mostly-parallel scheme).
 */
#pragma once

#include <vector>

#include "core/runtime_base.h"

namespace msw::baseline {

class MarkUs final : public core::QuarantineRuntime
{
  public:
    struct Options {
        /** Mark when quarantine exceeds this fraction of the live heap. */
        double quarantine_threshold = 0.25;
        std::size_t min_mark_bytes = std::size_t{1} << 20;
        /** Release pages of large quarantined allocations. */
        bool unmapping = true;
        /** Run marking on a background thread. */
        bool concurrent = true;
        alloc::JadeAllocator::Options jade{};
    };

    MarkUs() : MarkUs(Options{}) {}
    explicit MarkUs(const Options& opts);
    ~MarkUs() override;

    MarkUs(const MarkUs&) = delete;
    MarkUs& operator=(const MarkUs&) = delete;

    void* alloc(std::size_t size) override;
    void free(void* ptr) override;
    void* alloc_aligned(std::size_t alignment, std::size_t size) override;
    const char* name() const override { return "markus"; }

    /** Run a full marking pass now and wait for it. */
    void force_mark();

    /** Marking-pass count (the analogue of MineSweeper's sweep count). */
    std::uint64_t
    marks_done() const
    {
        return controller_.sweeps_done();
    }

    std::uint64_t
    mark_cpu_ns() const
    {
        return stats_.read(core::Stat::kSweepCpuNs);
    }

    /** Telemetry accessor for one stat cell (phase/pause breakdowns). */
    std::uint64_t
    stat_ns(core::Stat stat) const
    {
        return stats_.read(stat);
    }

  private:
    void maybe_trigger_mark();
    /** Substrate-exhaustion path: forced marking passes, then nullptr. */
    void* alloc_slow(std::size_t request, std::size_t alignment);
    void run_mark();
    /**
     * Scan [base, base+len) for pointers; push newly marked objects.
     * Conservative scan over racy memory: sanitizer instrumentation off
     * (see Marker::scan_chunk).
     */
    MSW_NO_SANITIZE_ADDRESS MSW_NO_SANITIZE_THREAD
    void scan_for_objects(std::uintptr_t base, std::size_t len,
                          std::vector<sweep::Range>* worklist);
    void drain_worklist(std::vector<sweep::Range>* worklist);

    static Config make_config(const Options& opts);

    Options opts_;
};

}  // namespace msw::baseline
