/**
 * @file
 * FFMalloc baseline (Wickman et al., USENIX Security 2021) — the one-time
 * allocation scheme the paper compares against.
 *
 * FFMalloc prevents use-after-reallocate by *never reusing virtual
 * addresses*: allocation bumps monotonically through a huge reservation,
 * and when every object on a physical page has been freed the page is
 * decommitted (its VA stays retired forever). Dangling pointers therefore
 * never alias a new allocation; they hit either unmapped memory (fault) or
 * stale dead bytes.
 *
 * This reproduces FFMalloc's characteristic trade-off: almost-zero CPU
 * overhead but pathological memory behaviour whenever long-lived objects
 * pepper mostly-dead pages — physical pages are pinned by a single
 * survivor and RSS grows monotonically (paper Fig 8, §5.2).
 *
 * Structure:
 *  - small classes (reusing JadeHeap's class table) are bump-allocated
 *    from per-class 64 KiB pools, never revisited once full;
 *  - large allocations take page-multiple spans directly;
 *  - per-page live counters + a per-page info word (class or large
 *    span geometry) support free() and usable_size();
 *  - a page is decommitted when its live count drops to zero and the
 *    bump pointer has moved past it (it is "sealed").
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "alloc/size_classes.h"
#include "core/runtime_base.h"
#include "util/lock_rank.h"
#include "util/spin_lock.h"
#include "util/thread_annotations.h"
#include "vm/vm.h"

namespace msw::baseline {

class FFMalloc final : public core::RuntimeBase
{
  public:
    struct Options {
        /** Virtual address space to burn through (never reused). */
        std::size_t va_bytes = std::size_t{32} << 30;
    };

    FFMalloc() : FFMalloc(Options{}) {}
    explicit FFMalloc(const Options& opts);
    ~FFMalloc() override;

    FFMalloc(const FFMalloc&) = delete;
    FFMalloc& operator=(const FFMalloc&) = delete;

    void* alloc(std::size_t size) override;
    void free(void* ptr) override;
    std::size_t usable_size(const void* ptr) const override;
    void* alloc_aligned(std::size_t alignment, std::size_t size) override;
    alloc::AllocatorStats stats() const override;
    const char* name() const override { return "ffmalloc"; }

    /** True if @p addr lies inside the reservation. */
    bool
    contains(std::uintptr_t addr) const
    {
        return space_.contains(addr);
    }

    /** Bytes of VA consumed so far (monotonic). */
    std::size_t frontier_bytes() const;

  private:
    /** Per-class bump pool. */
    struct Pool {
        // Rank kBin (the per-class analogue of a slab bin); refill nests
        // into frontier_lock_ (kExtent).
        SpinLock lock{util::LockRank::kBin};
        std::uintptr_t bump MSW_GUARDED_BY(lock) = 0;
        std::uintptr_t end MSW_GUARDED_BY(lock) = 0;
    };

    static constexpr std::size_t kPoolBytes = 64 * 1024;

    // Per-page info word encoding.
    static constexpr std::uint32_t kPageFree = 0;
    static constexpr std::uint32_t kLargeStart = 0x8000'0000u;
    static constexpr std::uint32_t kLargeInterior = 0xc000'0000u;
    // Small pages store (class index + 1).

    std::size_t
    page_index(std::uintptr_t addr) const
    {
        return (addr - space_.base()) >> vm::kPageShift;
    }

    /** Returns 0 on VA exhaustion or transient commit failure. */
    std::uintptr_t grab_span(std::size_t bytes, std::size_t align_bytes);
    /**
     * Caller holds pools_[cls].lock — not expressible to the analysis
     * through the index/reference aliasing, hence the opt-out.
     */
    [[nodiscard]] bool refill_pool(unsigned cls)
        MSW_NO_THREAD_SAFETY_ANALYSIS;
    void seal_and_maybe_decommit(std::uintptr_t page_addr);
    void on_object_freed(std::uintptr_t base, std::size_t usable);

    vm::Reservation space_;
    vm::Reservation info_space_;
    vm::Reservation live_space_;

    /** Per-page info word (see encoding above). */
    std::uint32_t* page_info_ = nullptr;
    /** Per-page count of live objects overlapping the page. */
    std::atomic<std::uint16_t>* page_live_ = nullptr;
    /** Per-page flag: bump pointer has passed; no new objects will land. */
    std::atomic<std::uint8_t>* page_sealed_ = nullptr;

    // Rank kExtent: the frontier is FFMalloc's extent layer.
    mutable SpinLock frontier_lock_{util::LockRank::kExtent};
    std::uintptr_t frontier_ MSW_GUARDED_BY(frontier_lock_) = 0;

    Pool* pools_ = nullptr;  // [num_size_classes()]
    unsigned num_classes_;

    // Counters (including the live/committed gauges, via add/sub) live in
    // RuntimeBase's sharded StatCells.
};

}  // namespace msw::baseline
