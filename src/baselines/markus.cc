#include "baselines/markus.h"

#include <cstring>

#include "alloc/extent.h"
#include "sweep/sweeper.h"
#include "alloc/size_classes.h"
#include "util/bits.h"
#include "util/check.h"
#include "util/log.h"

namespace msw::baseline {

using alloc::ExtentKind;
using alloc::ExtentMeta;
using quarantine::Entry;
using sweep::Range;

/** Hooks identical in role to MineSweeper's: exact committed-page map. */
class MarkUs::Hooks final : public alloc::ExtentHooks
{
  public:
    Hooks(MarkUs* owner, const vm::Reservation* heap)
        : alloc::ExtentHooks(heap), owner_(owner)
    {}

    [[nodiscard]] bool
    commit(std::uintptr_t addr, std::size_t len) override
    {
        if (heap_->protect_rw(addr, len) != vm::VmStatus::kOk)
            return false;
        owner_->access_map_.set_range(addr, len);
        if (owner_->tracker_ != nullptr &&
            owner_->mark_active_.load(std::memory_order_acquire)) {
            owner_->tracker_->note_committed(addr, len);
        }
        return true;
    }

    [[nodiscard]] bool
    purge(std::uintptr_t addr, std::size_t len) override
    {
        if (heap_->decommit(addr, len) != vm::VmStatus::kOk)
            return false;
        owner_->access_map_.clear_range(addr, len);
        return true;
    }

  private:
    MarkUs* owner_;
};

MarkUs::MarkUs(const Options& opts)
    : opts_([&] {
          Options o = opts;
          o.jade.decay_ms = 0;  // purging synchronised with marking passes
          return o;
      }()),
      jade_(opts_.jade),
      mark_bits_(jade_.reservation().base(), jade_.reservation().size()),
      quarantine_bitmap_(jade_.reservation().base(),
                         jade_.reservation().size()),
      access_map_(jade_.reservation().base(), jade_.reservation().size()),
      quarantine_(64)
{
    hooks_ = std::make_unique<Hooks>(this, &jade_.reservation());
    jade_.extents().set_hooks(hooks_.get());
    // Fixed capacity: push_back under unmap_lock_ must never reallocate
    // (see MineSweeper; same self-hosting hazard).
    {
        LockGuard g(unmap_lock_);
        pending_unmaps_.reserve(4096);
    }
    tracker_ = sweep::make_dirty_tracker(&jade_.reservation());
    if (auto* mp = dynamic_cast<sweep::MprotectTracker*>(tracker_.get())) {
        mp->set_committed_filter(
            [](std::uintptr_t addr, void* arg) {
                return static_cast<sweep::PageAccessMap*>(arg)->test(addr);
            },
            &access_map_);
    }
    if (opts_.concurrent)
        marker_thread_ = std::thread([this] { marker_loop(); });
}

MarkUs::~MarkUs()
{
    if (marker_thread_.joinable()) {
        {
            MutexGuard g(mark_mu_);
            shutdown_ = true;
        }
        mark_cv_.notify_all();
        marker_thread_.join();
    }
    jade_.extents().set_hooks(nullptr);
}

void*
MarkUs::alloc(std::size_t size)
{
    alloc_calls_.fetch_add(1, std::memory_order_relaxed);
    void* p = jade_.alloc(size + 1);  // end-pointer slack, as MineSweeper
    if (__builtin_expect(p != nullptr, 1))
        return p;
    return alloc_slow(size + 1, 0);
}

void*
MarkUs::alloc_aligned(std::size_t alignment, std::size_t size)
{
    alloc_calls_.fetch_add(1, std::memory_order_relaxed);
    void* p = jade_.alloc_aligned(alignment, size + 1);
    if (__builtin_expect(p != nullptr, 1))
        return p;
    return alloc_slow(size + 1, alignment);
}

void*
MarkUs::alloc_slow(std::size_t request, std::size_t alignment)
{
    // Memory pressure: marking passes both release unreferenced
    // quarantined objects and purge the allocator's free structures
    // (run_mark ends with purge_all), so a forced pass is the strongest
    // reclaim available. Match MineSweeper's contract: never abort,
    // return nullptr only once reclaim stops helping.
    for (unsigned attempt = 0; attempt < 3; ++attempt) {
        force_mark();
        void* p = alignment == 0 ? jade_.alloc(request)
                                 : jade_.alloc_aligned(alignment, request);
        if (p != nullptr)
            return p;
    }
    MSW_LOG_WARN("markus: returning nullptr for %zu-byte request after "
                 "forced marking passes",
                 request);
    return nullptr;
}

std::size_t
MarkUs::usable_size(const void* ptr) const
{
    return jade_.usable_size(ptr) - 1;
}

void
MarkUs::free(void* ptr)
{
    if (ptr == nullptr)
        return;
    free_calls_.fetch_add(1, std::memory_order_relaxed);
    const std::uintptr_t addr = to_addr(ptr);
    MSW_CHECK(jade_.contains(addr));

    ExtentMeta* meta = jade_.extents().lookup_live(addr);
    std::uintptr_t base;
    std::size_t usable;
    bool is_large;
    if (meta->kind == ExtentKind::kLarge) {
        base = meta->base;
        usable = meta->bytes();
        is_large = true;
    } else {
        const std::size_t obj = alloc::class_size(meta->cls);
        base = meta->base + ((addr - meta->base) / obj) * obj;
        usable = obj;
        is_large = false;
    }
    MSW_CHECK(base == addr);

    if (quarantine_bitmap_.test_and_set(base)) {
        double_frees_.fetch_add(1, std::memory_order_relaxed);
        return;
    }

    Entry entry = Entry::make(base, usable, false);
    if (opts_.unmapping && is_large) {
        entry = Entry::make(base, usable, true);
        LockGuard g(unmap_lock_);
        if (mark_active_.load(std::memory_order_relaxed)) {
            if (pending_unmaps_.size() < pending_unmaps_.capacity()) {
                pending_unmaps_.push_back(entry);
            } else {
                entry = Entry::make(base, usable, false);
            }
        } else if (jade_.reservation().decommit(base, usable) ==
                   vm::VmStatus::kOk) {
            access_map_.clear_range(base, usable);
        } else {
            // Transient decommit failure: forgo the unmap optimisation,
            // quarantine the block mapped (safe, just no memory win).
            entry = Entry::make(base, usable, false);
        }
    }
    // Note: MarkUs does *not* zero freed data — reachability through the
    // quarantine is resolved by the transitive marking pass instead.

    quarantine_.insert(entry);
    maybe_trigger_mark();
}

void
MarkUs::maybe_trigger_mark()
{
    const std::size_t pending = quarantine_.pending_bytes();
    if (pending < opts_.min_mark_bytes)
        return;
    const std::size_t failed = quarantine_.failed_bytes();
    const std::size_t unmapped = quarantine_.unmapped_bytes();
    const std::size_t jade_live = jade_.live_bytes();
    const std::size_t heap =
        jade_live > failed + unmapped ? jade_live - failed - unmapped : 0;
    if (static_cast<double>(pending) <
        opts_.quarantine_threshold * static_cast<double>(heap)) {
        return;
    }

    if (!opts_.concurrent) {
        bool expected = false;
        if (mark_in_progress_.compare_exchange_strong(expected, true)) {
            run_mark();
            marks_done_.fetch_add(1, std::memory_order_relaxed);
            mark_in_progress_.store(false, std::memory_order_release);
        }
        return;
    }
    {
        MutexGuard g(mark_mu_);
        mark_requested_ = true;
    }
    mark_cv_.notify_all();
}

void
MarkUs::marker_loop()
{
    UniqueLock l(mark_mu_);
    while (!shutdown_) {
        mark_cv_.wait(l, [&]() MSW_REQUIRES(mark_mu_) {
            return mark_requested_ || shutdown_;
        });
        if (shutdown_)
            break;
        mark_requested_ = false;
        mark_in_progress_.store(true, std::memory_order_release);
        l.unlock();
        run_mark();
        l.lock();
        mark_in_progress_.store(false, std::memory_order_release);
        marks_done_.fetch_add(1, std::memory_order_relaxed);
        mark_done_cv_.notify_all();
    }
}

void
MarkUs::scan_for_objects(std::uintptr_t base, std::size_t len,
                         std::vector<Range>* worklist)
{
    // Conservative Boehm-style scan: every aligned word is treated as a
    // potential pointer; any word resolving to an allocation marks that
    // allocation and schedules its contents for scanning. The per-word
    // allocation lookup is the cost MineSweeper's range test avoids.
    //
    // Ranges that lie inside the heap may have been derived from racy
    // metadata (lookup_relaxed), so inaccessible pages are skipped; this
    // is stable during a mark because decommits are deferred while
    // mark_active_ is set and commits only ever add accessibility.
    std::uintptr_t lo = align_up(base, sizeof(std::uint64_t));
    const std::uintptr_t hi = align_down(base + len, sizeof(std::uint64_t));
    const std::uintptr_t heap_base = jade_.reservation().base();
    const std::uintptr_t heap_end = jade_.reservation().end();
    const bool in_heap = base >= heap_base && base < heap_end;
    std::uintptr_t page_checked_until = 0;
    for (; lo < hi; lo += sizeof(std::uint64_t)) {
        if (in_heap && lo >= page_checked_until) {
            if (!access_map_.test(lo)) {
                // Skip the rest of this inaccessible page.
                lo = align_down(lo, vm::kPageSize) + vm::kPageSize -
                     sizeof(std::uint64_t);
                continue;
            }
            page_checked_until = align_down(lo, vm::kPageSize) +
                                 vm::kPageSize;
        }
        // Relaxed atomic: mutators write scanned memory concurrently and
        // the conservative mark tolerates torn/stale words by design.
        const std::uint64_t v = __atomic_load_n(
            reinterpret_cast<const std::uint64_t*>(lo), __ATOMIC_RELAXED);
        if (v - heap_base >= heap_end - heap_base)
            continue;
        alloc::JadeAllocator::AllocationInfo info;
        if (!jade_.lookup_relaxed(v, &info))
            continue;
        if (mark_bits_.test_and_set(info.base))
            continue;  // already marked
        // Unmapped quarantined objects have no contents to traverse.
        if (access_map_.test(info.base))
            worklist->push_back(Range{info.base, info.usable});
    }
}

void
MarkUs::drain_worklist(std::vector<Range>* worklist)
{
    while (!worklist->empty()) {
        const Range r = worklist->back();
        worklist->pop_back();
        scan_for_objects(r.base, r.len, worklist);
    }
}

void
MarkUs::run_mark()
{
    {
        LockGuard g(unmap_lock_);
        mark_active_.store(true, std::memory_order_release);
    }
    std::vector<Entry> locked_in;
    quarantine_.lock_in(locked_in);
    if (locked_in.empty()) {
        LockGuard g(unmap_lock_);
        mark_active_.store(false, std::memory_order_release);
        for (const Entry& e : pending_unmaps_) {
            if (quarantine_bitmap_.test(e.real_base()) &&
                jade_.reservation().decommit(e.real_base(), e.usable) ==
                    vm::VmStatus::kOk) {
                access_map_.clear_range(e.real_base(), e.usable);
            }
        }
        pending_unmaps_.clear();
        return;
    }

    const std::uint64_t cpu0 = sweep::thread_cpu_ns();

    // Phase 1: concurrent transitive mark from the roots.
    tracker_->begin(access_map_.committed_runs());
    std::vector<Range> worklist;
    std::vector<Range> root_scan;
    for (const Range& r : roots_.roots())
        sweep::append_resident_subranges(r, &root_scan);
    for (const Range& r : roots_.stacks())
        sweep::append_resident_subranges(r, &root_scan);
    for (const Range& r : root_scan)
        scan_for_objects(r.base, r.len, &worklist);
    drain_worklist(&worklist);

    // Phase 2: stop-the-world recheck — rescan dirtied pages, stacks and
    // registers, continuing the transitive closure to a fixpoint
    // (Boehm's mostly-parallel collection).
    roots_.stop_world();
    std::vector<Range> rescan;
    tracker_->end_collect(rescan);
    if (!tracker_->tracks_arbitrary_memory()) {
        for (const Range& r : roots_.roots_stw())
            sweep::append_resident_subranges(r, &rescan);
    }
    for (const Range& r : roots_.stacks_stw())
        sweep::append_resident_subranges(r, &rescan);
    for (const Range& r : roots_.parked_registers())
        rescan.push_back(r);
    for (const Range& r : rescan)
        scan_for_objects(r.base, r.len, &worklist);
    drain_worklist(&worklist);
    roots_.resume_world();

    // Deferred unmaps before release: every affected entry is still
    // quarantined here.
    {
        LockGuard g(unmap_lock_);
        for (const Entry& e : pending_unmaps_) {
            if (quarantine_bitmap_.test(e.real_base()) &&
                jade_.reservation().decommit(e.real_base(), e.usable) ==
                    vm::VmStatus::kOk) {
                access_map_.clear_range(e.real_base(), e.usable);
            }
        }
        pending_unmaps_.clear();
    }

    // Phase 3: release unmarked quarantined allocations.
    std::vector<Entry> failed;
    for (const Entry& e : locked_in) {
        if (mark_bits_.test(e.real_base())) {
            failed.push_back(e);
            continue;
        }
        if (e.unmapped) {
            if (jade_.reservation().protect_rw(e.real_base(), e.usable) !=
                vm::VmStatus::kOk) {
                // Cannot restore accessibility; keep the entry quarantined
                // and retry on the next pass rather than hand out an
                // inaccessible block.
                failed.push_back(e);
                continue;
            }
            access_map_.set_range(e.real_base(), e.usable);
        }
        quarantine_bitmap_.clear(e.real_base());
        jade_.free_direct(to_ptr(e.real_base()));
    }
    mark_bits_.clear_marks();
    quarantine_.store_failed(std::move(failed));

    {
        LockGuard g(unmap_lock_);
        mark_active_.store(false, std::memory_order_release);
        for (const Entry& e : pending_unmaps_) {
            if (quarantine_bitmap_.test(e.real_base()) &&
                jade_.reservation().decommit(e.real_base(), e.usable) ==
                    vm::VmStatus::kOk) {
                access_map_.clear_range(e.real_base(), e.usable);
            }
        }
        pending_unmaps_.clear();
    }

    // MarkUs aggressively reclaims allocator free structures after a
    // marking pass (the paper notes this need for large quarantines).
    jade_.purge_all();

    mark_cpu_ns_.fetch_add(sweep::thread_cpu_ns() - cpu0,
                           std::memory_order_relaxed);
}

void
MarkUs::force_mark()
{
    quarantine_.flush_thread_buffer();
    if (!opts_.concurrent) {
        bool expected = false;
        if (mark_in_progress_.compare_exchange_strong(expected, true)) {
            run_mark();
            marks_done_.fetch_add(1, std::memory_order_relaxed);
            mark_in_progress_.store(false, std::memory_order_release);
        }
        return;
    }
    UniqueLock g(mark_mu_);
    const std::uint64_t target =
        marks_done_.load(std::memory_order_relaxed) + 1;
    mark_requested_ = true;
    mark_cv_.notify_all();
    mark_done_cv_.wait(g, [&]() MSW_REQUIRES(mark_mu_) {
        return marks_done_.load(std::memory_order_relaxed) >= target;
    });
}

void
MarkUs::flush()
{
    quarantine_.flush_thread_buffer();
    jade_.flush();
    if (!opts_.concurrent)
        return;
    UniqueLock g(mark_mu_);
    mark_done_cv_.wait(g, [&]() MSW_REQUIRES(mark_mu_) {
        return !mark_requested_ &&
               !mark_in_progress_.load(std::memory_order_relaxed);
    });
}

void
MarkUs::add_root(const void* base, std::size_t len)
{
    roots_.add_root(base, len);
}

void
MarkUs::remove_root(const void* base)
{
    roots_.remove_root(base);
}

void
MarkUs::register_mutator_thread()
{
    roots_.register_current_thread();
}

void
MarkUs::unregister_mutator_thread()
{
    quarantine_.flush_thread_buffer();
    jade_.flush();
    roots_.unregister_current_thread();
    // As in MineSweeper: an in-flight marking pass may have snapshotted
    // this thread's stack before removal; wait it out before the thread
    // exits and its stack can be recycled.
    while (mark_in_progress_.load(std::memory_order_acquire)) {
        struct timespec ts {
            0, 1000000
        };
        ::nanosleep(&ts, nullptr);
    }
}

alloc::AllocatorStats
MarkUs::stats() const
{
    const quarantine::QuarantineStats qs = quarantine_.stats();
    alloc::AllocatorStats s;
    const std::size_t jade_live = jade_.live_bytes();
    const std::size_t quarantined =
        qs.pending_bytes + qs.failed_bytes + qs.unmapped_bytes;
    s.live_bytes = jade_live > quarantined ? jade_live - quarantined : 0;
    s.committed_bytes = access_map_.committed_bytes();
    s.metadata_bytes =
        jade_.stats().metadata_bytes + mark_bits_.shadow_bytes() * 2;
    s.quarantine_bytes = quarantined;
    s.sweeps = marks_done_.load(std::memory_order_relaxed);
    s.alloc_calls = alloc_calls_.load(std::memory_order_relaxed);
    s.free_calls = free_calls_.load(std::memory_order_relaxed);
    return s;
}

}  // namespace msw::baseline
