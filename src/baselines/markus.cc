#include "baselines/markus.h"

#include "core/sweep_controller.h"
#include "metrics/telemetry.h"
#include "sweep/sweeper.h"
#include "util/bits.h"
#include "util/log.h"

namespace msw::baseline {

using core::Stat;
using quarantine::Entry;
using sweep::Range;

core::QuarantineRuntime::Config
MarkUs::make_config(const Options& opts)
{
    Config c;
    c.jade = opts.jade;
    c.reclaim.unmapping = opts.unmapping;
    // MarkUs does *not* zero freed data — reachability through the
    // quarantine is resolved by the transitive marking pass instead.
    c.reclaim.zeroing = false;
    c.control.background = opts.concurrent;
    c.make_tracker = true;
    return c;
}

MarkUs::MarkUs(const Options& opts)
    : QuarantineRuntime(make_config(opts), [this] { run_mark(); }),
      opts_(opts)
{
    controller_.start();
}

MarkUs::~MarkUs()
{
    // Before our members die: the mark function runs on the controller's
    // thread and calls back into this (derived) object.
    controller_.shutdown();
}

void*
MarkUs::alloc(std::size_t size)
{
    stats_.add(Stat::kAllocCalls);
    void* p = jade_.alloc(size + 1);  // end-pointer slack, as MineSweeper
    if (__builtin_expect(p != nullptr, 1))
        return p;
    return alloc_slow(size + 1, 0);
}

void*
MarkUs::alloc_aligned(std::size_t alignment, std::size_t size)
{
    stats_.add(Stat::kAllocCalls);
    void* p = jade_.alloc_aligned(alignment, size + 1);
    if (__builtin_expect(p != nullptr, 1))
        return p;
    return alloc_slow(size + 1, alignment);
}

void*
MarkUs::alloc_slow(std::size_t request, std::size_t alignment)
{
    // Memory pressure: marking passes both release unreferenced
    // quarantined objects and purge the allocator's free structures
    // (run_mark ends with purge_all), so a forced pass is the strongest
    // reclaim available. Match MineSweeper's contract: never abort,
    // return nullptr only once reclaim stops helping.
    for (unsigned attempt = 0; attempt < 3; ++attempt) {
        force_mark();
        void* p = alignment == 0 ? jade_.alloc(request)
                                 : jade_.alloc_aligned(alignment, request);
        if (p != nullptr)
            return p;
    }
    MSW_LOG_WARN("markus: returning nullptr for %zu-byte request after "
                 "forced marking passes",
                 request);
    return nullptr;
}

void
MarkUs::free(void* ptr)
{
    if (ptr == nullptr)
        return;
    stats_.add(Stat::kFreeCalls);
    const FreeTarget t = classify(to_addr(ptr));

    if (absorb_double_free(ptr, t.base))
        return;

    quarantine_.insert(
        reclaimer_.quarantine_prepare(ptr, t.base, t.usable, t.is_large));
    maybe_trigger_mark();
}

void
MarkUs::maybe_trigger_mark()
{
    const std::size_t pending = quarantine_.pending_bytes();
    if (pending < opts_.min_mark_bytes)
        return;
    const std::size_t failed = quarantine_.failed_bytes();
    const std::size_t unmapped = quarantine_.unmapped_bytes();
    const std::size_t jade_live = jade_.live_bytes();
    const std::size_t heap =
        jade_live > failed + unmapped ? jade_live - failed - unmapped : 0;
    if (static_cast<double>(pending) <
        opts_.quarantine_threshold * static_cast<double>(heap)) {
        return;
    }
    controller_.request_sweep(/*pause_allocations=*/false);
}

void
MarkUs::scan_for_objects(std::uintptr_t base, std::size_t len,
                         std::vector<Range>* worklist)
{
    // Conservative Boehm-style scan: every aligned word is treated as a
    // potential pointer; any word resolving to an allocation marks that
    // allocation and schedules its contents for scanning. The per-word
    // allocation lookup is the cost MineSweeper's range test avoids.
    //
    // Ranges that lie inside the heap may have been derived from racy
    // metadata (lookup_relaxed), so inaccessible pages are skipped; this
    // is stable during a mark because decommits are deferred while the
    // reclaimer's scan epoch is open and commits only ever add
    // accessibility.
    std::uintptr_t lo = align_up(base, sizeof(std::uint64_t));
    const std::uintptr_t hi = align_down(base + len, sizeof(std::uint64_t));
    const std::uintptr_t heap_base = jade_.reservation().base();
    const std::uintptr_t heap_end = jade_.reservation().end();
    const bool in_heap = base >= heap_base && base < heap_end;
    std::uintptr_t page_checked_until = 0;
    for (; lo < hi; lo += sizeof(std::uint64_t)) {
        if (in_heap && lo >= page_checked_until) {
            if (!access_map_.test(lo)) {
                // Skip the rest of this inaccessible page.
                lo = align_down(lo, vm::kPageSize) + vm::kPageSize -
                     sizeof(std::uint64_t);
                continue;
            }
            page_checked_until = align_down(lo, vm::kPageSize) +
                                 vm::kPageSize;
        }
        // Relaxed atomic: mutators write scanned memory concurrently and
        // the conservative mark tolerates torn/stale words by design.
        // msw-relaxed(marker-scan): see above — conservative scan.
        const std::uint64_t v = __atomic_load_n(
            to_ptr_of<const std::uint64_t>(lo), __ATOMIC_RELAXED);
        if (v - heap_base >= heap_end - heap_base)
            continue;
        alloc::JadeAllocator::AllocationInfo info;
        if (!jade_.lookup_relaxed(v, &info))
            continue;
        if (mark_bits_.test_and_set(info.base))
            continue;  // already marked
        // Unmapped quarantined objects have no contents to traverse.
        if (access_map_.test(info.base))
            worklist->push_back(Range{info.base, info.usable});
    }
}

void
MarkUs::drain_worklist(std::vector<Range>* worklist)
{
    while (!worklist->empty()) {
        const Range r = worklist->back();
        worklist->pop_back();
        scan_for_objects(r.base, r.len, worklist);
    }
}

void
MarkUs::run_mark()
{
    reclaimer_.begin_scan();
    std::vector<Entry> locked_in;
    quarantine_.lock_in(locked_in);
    if (locked_in.empty()) {
        reclaimer_.end_scan();
        return;
    }

    const std::uint64_t cpu0 = sweep::thread_cpu_ns();
    const std::uint64_t mark_t0 = core::monotonic_ns();
    metrics::telemetry().trace_event(metrics::TraceEvent::kSweepBegin,
                                     locked_in.size());

    // Phase 1a (dirty-scan): arm the write tracker.
    tracker_->begin(access_map_.committed_runs());
    const std::uint64_t dirty_ns = core::monotonic_ns() - mark_t0;
    stats_.add(Stat::kPhaseDirtyScanNs, dirty_ns);
    metrics::telemetry().trace_event(metrics::TraceEvent::kPhaseDirtyScan,
                                     dirty_ns);

    // Phase 1b: concurrent transitive mark from the roots.
    std::vector<Range> worklist;
    std::vector<Range> root_scan;
    for (const Range& r : roots_.roots())
        sweep::append_resident_subranges(r, &root_scan);
    for (const Range& r : roots_.stacks())
        sweep::append_resident_subranges(r, &root_scan);
    for (const Range& r : root_scan)
        scan_for_objects(r.base, r.len, &worklist);
    drain_worklist(&worklist);

    // Phase 2: stop-the-world recheck — rescan dirtied pages, stacks and
    // registers, continuing the transitive closure to a fixpoint
    // (Boehm's mostly-parallel collection).
    const std::uint64_t stw_t0 = core::monotonic_ns();
    roots_.stop_world();
    std::vector<Range> rescan;
    tracker_->end_collect(rescan);
    if (!tracker_->tracks_arbitrary_memory()) {
        for (const Range& r : roots_.roots_stw())
            sweep::append_resident_subranges(r, &rescan);
    }
    for (const Range& r : roots_.stacks_stw())
        sweep::append_resident_subranges(r, &rescan);
    for (const Range& r : roots_.parked_registers())
        rescan.push_back(r);
    for (const Range& r : rescan)
        scan_for_objects(r.base, r.len, &worklist);
    drain_worklist(&worklist);
    roots_.resume_world();
    const std::uint64_t stw_ns = core::monotonic_ns() - stw_t0;
    stats_.add(Stat::kStwNs, stw_ns);
    metrics::telemetry().trace_event(metrics::TraceEvent::kStwPause,
                                     stw_ns);
    // Mark phase: both transitive passes (the STW recheck included).
    const std::uint64_t mark_ns = core::monotonic_ns() - mark_t0 - dirty_ns;
    stats_.add(Stat::kPhaseMarkNs, mark_ns);
    metrics::telemetry().trace_event(metrics::TraceEvent::kPhaseMark,
                                     mark_ns);

    // Deferred unmaps before release: every affected entry is still
    // quarantined here and its pages have been scanned.
    const std::uint64_t drain_t0 = core::monotonic_ns();
    reclaimer_.drain_pending();
    const std::uint64_t drain_ns = core::monotonic_ns() - drain_t0;
    stats_.add(Stat::kPhaseDrainNs, drain_ns);
    metrics::telemetry().trace_event(metrics::TraceEvent::kPhaseDrain,
                                     drain_ns);

    // Phase 3: release unmarked quarantined allocations.
    const std::uint64_t release_t0 = core::monotonic_ns();
    std::vector<Entry> failed;
    std::uint64_t released_n = 0;
    for (const Entry& e : locked_in) {
        if (mark_bits_.test(e.real_base())) {
            failed.push_back(e);
            continue;
        }
        if (!reclaimer_.release_entry(e)) {
            // Cannot restore accessibility; keep the entry quarantined
            // and retry on the next pass rather than hand out an
            // inaccessible block.
            failed.push_back(e);
            continue;
        }
        ++released_n;
    }
    const std::uint64_t release_ns = core::monotonic_ns() - release_t0;
    stats_.add(Stat::kPhaseReleaseNs, release_ns);
    metrics::telemetry().trace_event(metrics::TraceEvent::kPhaseRelease,
                                     release_ns, released_n);
    mark_bits_.clear_marks();
    quarantine_.store_failed(std::move(failed));

    reclaimer_.end_scan();

    // MarkUs aggressively reclaims allocator free structures after a
    // marking pass (the paper notes this need for large quarantines).
    jade_.purge_all();

    stats_.add(Stat::kSweepCpuNs, sweep::thread_cpu_ns() - cpu0);
    metrics::telemetry().trace_event(metrics::TraceEvent::kSweepEnd,
                                     core::monotonic_ns() - mark_t0,
                                     released_n);
}

void
MarkUs::force_mark()
{
    quarantine_.flush_thread_buffer();
    controller_.force_sweep();
}

}  // namespace msw::baseline
