#!/usr/bin/env python3
"""Validate BENCH_server_tail.json (CI smoke gate).

The server tail-latency benchmark is the repo's answer to "where do the
pauses land"; CI runs it in short duration mode and this script fails
the job if the output lost a system, a percentile key, or its
provenance stamp — the shapes the plotting/tracking tooling consumes.

Usage: check_server_tail.py [path-to-BENCH_server_tail.json]
"""

import json
import sys

EXPECTED_SYSTEMS = ("baseline", "markus", "ffmalloc", "minesweeper")
LATENCY_KEYS = ("count", "mean_ns", "p50_ns", "p90_ns", "p99_ns",
                "p999_ns", "max_ns")
DIGEST_KEYS = ("op_latency_ns", "sweep_pause_ns")
TOTAL_KEYS = ("pause_total_ns", "stw_total_ns", "phase_dirty_scan_ns",
              "phase_mark_ns", "phase_drain_ns", "phase_release_ns")


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_server_tail.json"
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_server_tail: cannot read {path}: {e}",
              file=sys.stderr)
        return 1

    errors = []
    for key in ("schema_version", "git_describe", "systems"):
        if key not in doc:
            errors.append(f"missing top-level key {key!r}")
    systems = doc.get("systems", {})

    for name in EXPECTED_SYSTEMS:
        sys_doc = systems.get(name)
        if sys_doc is None:
            errors.append(f"missing system {name!r}")
            continue
        if not sys_doc.get("ok", False):
            errors.append(f"system {name!r} run failed (ok != true)")
        for digest in DIGEST_KEYS:
            d = sys_doc.get(digest)
            if not isinstance(d, dict):
                errors.append(f"{name}: missing digest {digest!r}")
                continue
            for k in LATENCY_KEYS:
                if k not in d:
                    errors.append(f"{name}.{digest}: missing key {k!r}")
            # A run with zero timed operations means the workload (or
            # the histogram plumbing) silently broke.
            if digest == "op_latency_ns" and d.get("count", 0) <= 0:
                errors.append(f"{name}: zero timed operations")
        for k in TOTAL_KEYS:
            if k not in sys_doc:
                errors.append(f"{name}: missing key {k!r}")

    if errors:
        for e in errors:
            print(f"check_server_tail: {e}", file=sys.stderr)
        return 1

    ops = {n: systems[n]["op_latency_ns"]["count"]
           for n in EXPECTED_SYSTEMS}
    print(f"check_server_tail: OK ({path}; ops per system: {ops})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
