"""Whole-program model for msw-analyze's interprocedural rules.

Builds a cross-TU call graph over every file in the analysis tree. Two
graph builders share the same downstream representation:

  textual   generic function-definition scanner + receiver-typed call
            resolution over the stripped sources (no dependencies; the
            reference implementation — every interprocedural rule is
            fully implemented against it)
  libclang  when the python clang bindings can parse the TUs named in
            compile_commands.json, call edges are refined with real AST
            references; any failure falls back to the textual edges

On top of the graph sit the dataflow passes the rules consume:

  * per-function summaries (exit-held / exit-released rank sets) and an
    entry-context fixpoint that propagates held-rank sets through call
    edges (MSW-LOCK-HELD);
  * reachability with witness paths from signal handlers, atfork child
    hooks (MSW-SIGNAL-SAFE) and fast-path roots (MSW-TLS-FASTPATH).

Source annotations (scanned from raw comment lines, attached to the
next function definition):

  // msw-analyze: fast-path                 extra MSW-TLS-FASTPATH root
  // msw-analyze: slow-path(<why>)          sanctioned fast-path exit
  // msw-analyze: fork-deferred(<why>)      runs after the child hook
                                            has reinitialised the locks
"""

import os
import re

from msw_common import _KEYWORDS, _SHIM_ENTRIES, _ATFORK_RE, \
    _SIG_INSTALL_RES, _match_delim, parse_enum

FACTS_VERSION = 2

TAG_RE = re.compile(
    r"msw-analyze:\s*(fast-path|slow-path|fork-deferred)"
    r"\s*(?:\(([^)]*)\))?")

_DEF_NAME_RE = re.compile(
    r"(~?[A-Za-z_]\w*(?:::~?[A-Za-z_]\w*)*)\s*\(")
_CALL_NAME_RE = re.compile(r"([A-Za-z_]\w*)\s*\(")
_CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+"
    r"((?:MSW_\w+\s*(?:\([^()]*\))?\s+)*)"
    r"([A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)\s*"
    r"(final\s*)?(:\s*[^;{}]*)?\{")
_RANKED_DECL_RE = re.compile(
    r"\b(?:\w+::)*(?:SpinLock|Mutex)\s+(?:[A-Za-z_]\w*::)*"
    r"([A-Za-z_]\w*)\s*[{(]\s*(?:\w+::)*LockRank::(k\w+)")
_GUARD_RE = re.compile(
    r"\b(LockGuard|MutexGuard|UniqueLock)\s*(?:<[^;<>]*>)?\s+(\w+)\s*"
    r"[({]\s*((?:[A-Za-z_]\w*(?:\s*(?:\.|->)\s*))*[A-Za-z_]\w*)")
_LOCK_OP_RE = re.compile(
    r"([A-Za-z_]\w*)\s*(?:\.|->)\s*(lock|unlock|try_lock)\s*\(")
_TYPE_HINT_RE = re.compile(
    r"\b([A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)\s*(<[^;{}<>]*>)?\s*"
    r"[*&]{0,2}\s+([a-z_]\w*)\s*[;=({,)\[]")
_BASE_RE = re.compile(r"[:,]\s*(?:public|protected|private|virtual|\s)*"
                      r"([A-Za-z_][\w:]*)")

_GUARD_TYPES = {"LockGuard", "MutexGuard", "UniqueLock"}
_LOCK_OPS = {"lock", "unlock", "try_lock"}
# Words that may legitimately precede a receiverless call expression;
# any *other* identifier in that position makes `name(` a declaration
# (`Type name(args);`), not a call.
_CALL_PREV_OK = {"return", "throw", "new", "delete", "case", "goto",
                 "else", "do", "co_return", "co_yield", "co_await",
                 "and", "or", "not", "in"}


def _is_macro_name(name):
    return re.fullmatch(r"[A-Z][A-Z0-9_]*", name) is not None


def _scan_def_after_params(code, j):
    """Offset of the body '{' if the text starting just past a
    parameter list's ')' continues as a function definition, else -1.
    Skips const/noexcept/override/final/try, MSW_* attribute macros
    (with optional argument lists), trailing return types, and
    constructor initialiser lists (whose lambda bodies and member
    brace-inits must not be mistaken for the function body)."""
    n = len(code)
    while j < n:
        c = code[j]
        if c.isspace():
            j += 1
            continue
        if c == "{":
            return j
        if c == ":":
            j += 1
            depth = 0
            prev = ":"
            while j < n:
                c = code[j]
                if c in "([":
                    depth += 1
                elif c in ")]":
                    depth -= 1
                elif c == "{":
                    if depth == 0 and not (prev.isalnum() or
                                           prev in "_>"):
                        return j
                    close = _match_delim(code, j, "{", "}")
                    if close < 0:
                        return -1
                    j = close + 1
                    prev = "}"
                    continue
                elif c == ";" and depth == 0:
                    return -1
                if not c.isspace():
                    prev = c
                j += 1
            return -1
        if c == "-" and j + 1 < n and code[j + 1] == ">":
            j += 2
            depth = 0
            while j < n:
                c = code[j]
                if c in "([":
                    depth += 1
                elif c in ")]":
                    depth -= 1
                elif c == "{" and depth == 0:
                    return j
                elif c == ";" and depth == 0:
                    return -1
                j += 1
            return -1
        if c.isalpha() or c == "_":
            m = re.match(r"[A-Za-z_]\w*", code[j:])
            word = m.group(0)
            if word in ("const", "noexcept", "override", "final",
                        "mutable", "volatile", "try") or \
                    _is_macro_name(word):
                j += len(word)
                k = j
                while k < n and code[k].isspace():
                    k += 1
                if k < n and code[k] == "(":
                    close = _match_delim(code, k, "(", ")")
                    if close < 0:
                        return -1
                    j = close + 1
                continue
            return -1
        return -1
    return -1


def _class_spans(code):
    """[(name, bases, body_open, body_close)] for class/struct bodies."""
    spans = []
    for m in _CLASS_RE.finditer(code):
        if re.search(r"enum\s+$", code[:m.start()]):
            continue  # enum class
        name = m.group(2).split("::")[-1]
        open_b = code.index("{", m.end() - 1)
        close_b = _match_delim(code, open_b, "{", "}")
        if close_b < 0:
            continue
        bases = []
        if m.group(4):
            for bm in _BASE_RE.finditer(m.group(4)):
                base = bm.group(1).split("::")[-1]
                if base not in ("public", "protected", "private",
                                "virtual"):
                    bases.append(base)
        spans.append((name, bases, open_b, close_b))
    return spans


def _enclosing_class(spans, off):
    best = None
    for name, _bases, s, e in spans:
        if s <= off <= e and (best is None or s > best[1]):
            best = (name, s)
    return best[0] if best else ""


def _return_hint(code, sig_off):
    """Best-effort return-type class for the definition whose name
    starts at sig_off (repo style puts the return type right before the
    name, often on its own line)."""
    seg = code[max(0, sig_off - 160):sig_off]
    cut = max(seg.rfind(c) for c in ";}{#")
    seg = seg[cut + 1:]
    hint = ""
    for tok in re.findall(r"[A-Za-z_][\w:]*", seg):
        last = tok.split("::")[-1]
        if last in ("static", "inline", "constexpr", "virtual",
                    "explicit", "const", "friend", "extern", "void") or \
                _is_macro_name(last):
            continue
        if last[0].isupper():
            hint = last
    return hint


def _prev_nonspace(code, i):
    j = i - 1
    while j >= 0 and code[j].isspace():
        j -= 1
    return j


def _receiver_before(code, name_off):
    """Classify what precedes a `name(` call expression.

    Returns (rkind, recv): rkind one of
      'bare'    nothing / punctuation / keyword before the name
      'var'     `ident.` or `ident->`
      'scope'   `Ident::` (class or namespace — resolved at link time)
      'result'  `fn(...).` or `fn(...)->` (typed via fn's return hint)
      'unknown' `).`/`].` receiver that cannot be traced to a call
      None      not a call at all (declaration `Type name(...)`)
    """
    j = _prev_nonspace(code, name_off)
    if j < 0:
        return "bare", ""
    c = code[j]
    if c == ":" and j > 0 and code[j - 1] == ":":
        k = _prev_nonspace(code, j - 2)
        m = re.search(r"([A-Za-z_]\w*)$", code[:k + 1])
        return ("scope", m.group(1)) if m else ("unknown", "")
    dot = None
    if c == ".":
        dot = j
    elif c == ">" and j > 0 and code[j - 1] == "-":
        dot = j - 1
    if dot is not None:
        k = _prev_nonspace(code, dot)
        if k >= 0 and (code[k].isalnum() or code[k] == "_"):
            m = re.search(r"([A-Za-z_]\w*)$", code[:k + 1])
            return ("var", m.group(1)) if m else ("unknown", "")
        if k >= 0 and code[k] == ")":
            depth = 0
            i = k
            while i >= 0:
                if code[i] == ")":
                    depth += 1
                elif code[i] == "(":
                    depth -= 1
                    if depth == 0:
                        break
                i -= 1
            if i > 0:
                p = _prev_nonspace(code, i)
                m = re.search(r"([A-Za-z_]\w*)$", code[:p + 1])
                if m and m.group(1) not in _KEYWORDS:
                    return "result", m.group(1)
        return "unknown", ""
    if c.isalnum() or c == "_":
        m = re.search(r"([A-Za-z_]\w*)$", code[:j + 1])
        word = m.group(1) if m else ""
        if word in _CALL_PREV_OK:
            return "bare", ""
        return None, ""  # `Type name(` — a declaration
    return "bare", ""


def _lambda_spans(code, start, end):
    """Body spans [(open_brace, close_brace)] of lambda expressions in
    code[start:end]. A lambda's body must not be attributed to the
    enclosing function: the code runs when the lambda is *invoked* (via
    a callback slot the textual graph cannot see), not where it is
    written, and merging it into the writer creates wildly wrong edges
    (a constructor that stores a sweep callback would otherwise appear
    to run a full sweep on the malloc fast path)."""
    spans = []
    i = start
    n = min(end, len(code))
    while i < n:
        if code[i] != "[":
            i += 1
            continue
        if i + 1 < n and code[i + 1] == "[":  # [[attribute]]
            close = code.find("]]", i)
            i = close + 2 if close >= 0 else i + 2
            continue
        p = _prev_nonspace(code, i)
        if p >= 0 and (code[p].isalnum() or code[p] in "_)]"):
            i += 1  # array subscript / delete[]
            continue
        close = _match_delim(code, i, "[", "]")
        if close < 0:
            i += 1
            continue
        j = close + 1
        while j < n and code[j].isspace():
            j += 1
        if j < n and code[j] == "(":
            pc = _match_delim(code, j, "(", ")")
            if pc < 0:
                i = close + 1
                continue
            j = pc + 1
        # Specifiers / trailing return type up to the body brace.
        k = j
        while k < n and code[k] not in "{;)" and k - j < 120:
            k += 1
        if k < n and code[k] == "{":
            bclose = _match_delim(code, k, "{", "}")
            if bclose > 0:
                spans.append((k, bclose))
                i = k + 1  # keep scanning inside for nested lambdas
                continue
        i = close + 1
    return spans


def _brace_pairs(code, start, end):
    pairs = []
    stack = []
    for i in range(start, end + 1):
        if code[i] == "{":
            stack.append(i)
        elif code[i] == "}" and stack:
            pairs.append((stack.pop(), i))
    return pairs


def _innermost_close(pairs, off, default):
    best = default
    best_open = -1
    for s, e in pairs:
        if s <= off <= e and s > best_open:
            best_open, best = s, e
    return best


def extract_file_facts(sf):
    """Cacheable per-file model: function definitions with their ordered
    lock/call event streams, ranked-lock declarations, local type hints,
    class hierarchy fragments, annotations, and signal/atfork installs."""
    code = sf.code
    spans = _class_spans(code)

    # --- annotations, from the *raw* text (comments are blanked in code)
    tags_by_line = []
    for lineno, raw in enumerate(sf.raw_lines, 1):
        tm = TAG_RE.search(raw)
        if tm:
            tags_by_line.append((lineno, tm.group(1),
                                 (tm.group(2) or "").strip()))

    # --- function definitions
    funcs = []
    claimed = []  # accepted body intervals, in offset order
    for m in _DEF_NAME_RE.finditer(code):
        full = re.sub(r"\s+", "", m.group(1))
        name = full.split("::")[-1]
        if name.lstrip("~") in _KEYWORDS or _is_macro_name(name):
            continue
        sig_off = m.start()
        if any(s <= sig_off <= e for s, e in claimed):
            continue  # local lambda/struct: attribute to the enclosure
        open_paren = code.index("(", m.start())
        close_paren = _match_delim(code, open_paren, "(", ")")
        if close_paren < 0:
            continue
        body_open = _scan_def_after_params(code, close_paren + 1)
        if body_open < 0:
            continue
        body_close = _match_delim(code, body_open, "{", "}")
        if body_close < 0:
            continue
        claimed.append((body_open, body_close))
        qual = full.split("::")[-2] if "::" in full \
            else _enclosing_class(spans, sig_off)
        line = sf.line_of(sig_off)
        tags = [[t, why] for (ln, t, why) in tags_by_line
                if line - 3 <= ln <= line]
        funcs.append({
            "name": name, "qual": qual, "line": line,
            "sig": sig_off, "scan": close_paren + 1, "body": body_open,
            "end": body_close, "ret": _return_hint(code, sig_off),
            "tags": tags, "events": [],
        })

    # --- per-function event streams (offset-ordered)
    def events_in(s, e, body, exclude):
        def excluded(off):
            return any(xs <= off <= xe for xs, xe in exclude)
        pairs = _brace_pairs(code, body, e)
        events = []
        guard_of = {}  # guard var -> lock var
        for gm in _GUARD_RE.finditer(code, s, e):
            if excluded(gm.start()):
                continue
            lock_var = re.findall(r"[A-Za-z_]\w*", gm.group(3))[-1]
            guard_of[gm.group(2)] = lock_var
            off = gm.start()
            events.append([off, sf.line_of(off), "acq", lock_var])
            close = _innermost_close(pairs, off, e)
            events.append([close, sf.line_of(close), "rel", lock_var])
        for lm in _LOCK_OP_RE.finditer(code, s, e):
            if excluded(lm.start()):
                continue
            var = guard_of.get(lm.group(1), lm.group(1))
            kind = {"lock": "acq", "unlock": "rel",
                    "try_lock": "try"}[lm.group(2)]
            off = lm.start()
            events.append([off, sf.line_of(off), kind, var])
        for cm in _CALL_NAME_RE.finditer(code, s, e):
            cname = cm.group(1)
            if cname in _KEYWORDS or cname in _LOCK_OPS or \
                    cname in _GUARD_TYPES or _is_macro_name(cname):
                continue
            if excluded(cm.start()):
                continue
            rkind, recv = _receiver_before(code, cm.start())
            if rkind is None:
                continue
            off = cm.start()
            events.append([off, sf.line_of(off), "call", cname,
                           rkind, recv])
        events.sort(key=lambda ev: (ev[0], ev[2] != "rel"))
        return events

    lambda_funcs = []
    for fn in funcs:
        lspans = _lambda_spans(code, fn["scan"], fn["end"])
        fn["events"] = events_in(fn["scan"], fn["end"], fn["body"],
                                 lspans)
        fn["lam"] = [list(sp) for sp in lspans]
        # Each lambda body becomes a standalone node: its events are
        # still checked (with an empty entry context — the graph cannot
        # see who invokes the callback), but never inherit the writer's
        # reachability.
        for ls, le in lspans:
            inner = [sp for sp in lspans
                     if sp[0] > ls and sp[1] < le]
            lline = sf.line_of(ls)
            lambda_funcs.append({
                "name": f"<lambda:{lline}>", "qual": fn["qual"],
                "line": lline, "sig": ls, "scan": ls, "body": ls,
                "end": le, "ret": "", "tags": [],
                "lam": [list(sp) for sp in inner],
                "events": events_in(ls + 1, le, ls, inner),
            })
    funcs.extend(lambda_funcs)

    # --- ranked lock declarations and type hints
    ranked = {}
    for rm in _RANKED_DECL_RE.finditer(code):
        ranked[rm.group(1)] = rm.group(2)
    types = {}
    ambiguous = set()
    for tm in _TYPE_HINT_RE.finditer(code):
        tname = tm.group(1).split("::")[-1]
        if not tname[0].isupper():
            continue
        if tname in ("UniquePtr",) or \
                (tname in ("unique_ptr", "shared_ptr") and tm.group(2)):
            continue
        if tm.group(1).endswith(("unique_ptr", "shared_ptr")) and \
                tm.group(2):
            inner = re.findall(r"[A-Za-z_]\w*", tm.group(2))
            tname = inner[-1] if inner and inner[-1][0].isupper() else ""
            if not tname:
                continue
        var = tm.group(3)
        if var in types and types[var] != tname:
            ambiguous.add(var)
        types[var] = tname
    for var in ambiguous:
        types.pop(var, None)

    classes = {name: bases for name, bases, _s, _e in spans}

    handlers = []
    for install_re in _SIG_INSTALL_RES:
        for m in install_re.finditer(code):
            if not m.group(1).startswith("SIG_"):
                handlers.append(m.group(1))
    atfork = [[m.group(1), m.group(2), m.group(3)]
              for m in _ATFORK_RE.finditer(code)]

    return {
        "v": FACTS_VERSION,
        "funcs": funcs,
        "ranked": ranked,
        "types": types,
        "classes": classes,
        "handlers": sorted(set(handlers)),
        "atfork": atfork,
        "extern_c": 'extern "C"' in sf.raw,
    }


def _paired_rel(rel):
    for a, b in ((".cc", ".h"), (".h", ".cc"), (".cpp", ".hpp"),
                 (".hpp", ".cpp")):
        if rel.endswith(a):
            return rel[:-len(a)] + b
    return None


class Program:
    """Linked whole-program view: functions indexed across files, call
    resolution, rank resolution, held-set dataflow, reachability."""

    def __init__(self, tree, cache=None):
        self.tree = tree
        self.graph_engine = "textual"
        self.facts = {}
        for sf in tree.src:
            # Keyed on the include-closure hash, not the file's own
            # sha: a header-only change must invalidate dependents.
            key = getattr(sf, "closure_sha", sf.sha)
            facts = cache.get_facts(sf.rel, key) if cache else None
            if facts is None or facts.get("v") != FACTS_VERSION:
                facts = extract_file_facts(sf)
                if cache:
                    cache.put_facts(sf.rel, key, facts)
            self.facts[sf.rel] = facts
        self._link()
        self._resolve_all()
        self._summaries()
        self._entry_contexts()

    # -- linking -----------------------------------------------------

    def _link(self):
        self.funcs = []      # (rel, fndict)
        self.by_name = {}
        self.by_class = {}
        self.classes = {}
        self.file_ranked = {}
        self.handler_names = set()
        self.atfork_hooks = {"prepare": set(), "parent": set(),
                             "child": set()}
        self.shim_fids = []
        for rel, facts in sorted(self.facts.items()):
            self.file_ranked[rel] = dict(facts["ranked"])
            for cname, bases in facts["classes"].items():
                self.classes.setdefault(cname, [])
                for b in bases:
                    if b not in self.classes[cname]:
                        self.classes[cname].append(b)
            self.handler_names.update(facts["handlers"])
            for prep, par, child in facts["atfork"]:
                for slot, nm in (("prepare", prep), ("parent", par),
                                 ("child", child)):
                    if nm not in ("nullptr", "0"):
                        self.atfork_hooks[slot].add(nm)
            for fn in facts["funcs"]:
                fid = len(self.funcs)
                self.funcs.append((rel, fn))
                self.by_name.setdefault(fn["name"], []).append(fid)
                if fn["qual"]:
                    self.by_class.setdefault(
                        (fn["qual"], fn["name"]), []).append(fid)
                if facts["extern_c"] and not fn["qual"] and \
                        fn["name"] in _SHIM_ENTRIES:
                    self.shim_fids.append(fid)
        self.derived = {}
        for cname, bases in self.classes.items():
            for b in bases:
                self.derived.setdefault(b, []).append(cname)
        self.rank_values = {}
        rank_h = self.tree.find_src("src/util/lock_rank.h")
        if rank_h is not None:
            for name, val, _line in parse_enum(rank_h, "LockRank"):
                if name != "kUnranked":
                    self.rank_values[name] = val
        self.rank_names = {v: k for k, v in self.rank_values.items()}
        # global var -> rank, only when unambiguous across files
        seen = {}
        for rel, ranked in self.file_ranked.items():
            for var, rank in ranked.items():
                seen.setdefault(var, set()).add(rank)
        self.global_ranked = {v: next(iter(r))
                              for v, r in seen.items() if len(r) == 1}

    def fname(self, fid):
        rel, fn = self.funcs[fid]
        return (fn["qual"] + "::" + fn["name"]) if fn["qual"] \
            else fn["name"]

    def floc(self, fid):
        rel, fn = self.funcs[fid]
        return rel, fn["line"]

    def tags(self, fid):
        return {t: why for t, why in self.funcs[fid][1]["tags"]}

    def resolve_rank(self, rel, var):
        """Rank value for a lock variable, or None. Resolution order:
        declaring file, its paired header/impl, then globally-unique."""
        rank = self.file_ranked.get(rel, {}).get(var)
        if rank is None:
            pair = _paired_rel(rel)
            if pair:
                rank = self.file_ranked.get(pair, {}).get(var)
        if rank is None:
            rank = self.global_ranked.get(var)
        return self.rank_values.get(rank) if rank else None

    def _chain_lookup(self, cname, method):
        """Method fids over cname and its transitive bases."""
        seen, queue = set(), [cname]
        while queue:
            c = queue.pop()
            if c in seen:
                continue
            seen.add(c)
            hit = self.by_class.get((c, method))
            if hit:
                return hit
            queue.extend(self.classes.get(c, []))
        return []

    def _virtual_lookup(self, cname, method):
        """Dispatch through a variable of static type cname: the method
        may live on cname / a base (chain) or, for a virtual call
        through a base pointer, on any transitive derived class."""
        hit = self._chain_lookup(cname, method)
        if hit:
            return hit
        out = []
        seen, queue = set(), [cname]
        while queue:
            c = queue.pop()
            if c in seen:
                continue
            seen.add(c)
            for d in self.derived.get(c, []):
                out.extend(self.by_class.get((d, method), []))
                queue.append(d)
        return out

    def _resolve_call(self, fid, ev):
        rel, fn = self.funcs[fid]
        _off, _line, _k, name, rkind, recv = ev
        facts = self.facts[rel]
        if rkind == "var":
            # No fall-back by name: `flag_.load()` must not resolve to
            # an unrelated `Trace::load`. An untyped receiver is an
            # unresolved edge (under-approximation, never a wrong edge).
            # Member types usually live in the paired header, not the
            # .cc doing the call.
            t = facts["types"].get(recv)
            if t is None:
                pair = _paired_rel(rel)
                if pair in self.facts:
                    t = self.facts[pair]["types"].get(recv)
            return self._virtual_lookup(t, name) if t else []
        if rkind == "scope":
            if recv in self.classes or (recv, name) in self.by_class:
                return self._chain_lookup(recv, name)
            # Namespace qualification (util::fatal) — name is global.
            return self.by_name.get(name, [])
        if rkind == "result":
            ret = ""
            for cfid in self.by_name.get(recv, []):
                r = self.funcs[cfid][1]["ret"]
                if r:
                    ret = r
                    break
            return self._virtual_lookup(ret, name) if ret else []
        if rkind == "unknown":
            return []
        # bare: own class chain first, then any definition by name
        if fn["qual"]:
            hit = self._chain_lookup(fn["qual"], name)
            if hit:
                return hit
        return self.by_name.get(name, [])

    def _resolve_all(self):
        """events[fid]: ('lock', kind, rank, line, var) — rank-resolved
        only — and ('call', callee_fids, line, name, rkind) in source
        order. call_edges keeps the receiver kind so rules can tell a
        genuine free call `free(p)` from a member spelt the same way
        (`arena_.free(p)`)."""
        self.events = []
        self.call_edges = []  # fid -> [(line, [callee fids], name, rkind)]
        for fid, (rel, fn) in enumerate(self.funcs):
            out = []
            edges = []
            for ev in fn["events"]:
                if ev[2] == "call":
                    callees = self._resolve_call(fid, ev)
                    out.append(("call", callees, ev[1], ev[3], ev[4]))
                    edges.append((ev[1], callees, ev[3], ev[4]))
                else:
                    rank = self.resolve_rank(rel, ev[3])
                    if rank is not None:
                        out.append(("lock", ev[2], rank, ev[1], ev[3]))
            self.events.append(out)
            self.call_edges.append(edges)

    def apply_precise_edges(self, precise):
        """Override textual call targets with libclang-resolved ones.
        `precise` maps fid -> {line: [callee fids]}."""
        for fid, by_line in precise.items():
            out = []
            matched = set()
            for ev in self.events[fid]:
                if ev[0] == "call" and ev[2] in by_line:
                    out.append(("call", by_line[ev[2]], ev[2], ev[3],
                                ev[4]))
                    matched.add(ev[2])
                else:
                    out.append(ev)
            for line, callees in sorted(by_line.items()):
                if line not in matched:
                    out.append(("call", callees, line, "<ast>", "bare"))
            out.sort(key=lambda ev: ev[2] if ev[0] == "call" else ev[3])
            self.events[fid] = out
            self.call_edges[fid] = [(ev[2], ev[1], ev[3], ev[4])
                                    for ev in out if ev[0] == "call"]
        self.graph_engine = "libclang"
        self._summaries()
        self._entry_contexts()

    # -- dataflow ----------------------------------------------------

    def _simulate(self, fid, record=False):
        """Linear walk of a function's event stream from an empty entry
        context. Returns (exit_held, released_below_entry); with
        `record`, also stores the locally-held set right before every
        lock-acq and call event."""
        held, released = set(), set()
        before = []
        for ev in self.events[fid]:
            if ev[0] == "lock":
                _t, kind, rank, _line, _var = ev
                if kind in ("acq", "try"):
                    if record:
                        before.append(frozenset(held))
                    held.add(rank)
                elif kind == "rel":
                    if rank in held:
                        held.discard(rank)
                    else:
                        released.add(rank)
            else:
                callees = ev[1]
                if record:
                    before.append(frozenset(held))
                subs = [self.exit_held.get(c, set()) for c in callees]
                rels = [self.exit_rel.get(c, set()) for c in callees]
                for s in subs:
                    held |= s
                if rels:
                    common = set.intersection(*[set(r) for r in rels])
                    for r in common:
                        if r in held:
                            held.discard(r)
                        else:
                            released.add(r)
        if record:
            self.local_before[fid] = before
        return held, released

    def _summaries(self):
        n = len(self.funcs)
        self.exit_held = {f: set() for f in range(n)}
        self.exit_rel = {f: set() for f in range(n)}
        self.local_before = {}
        for _ in range(30):
            changed = False
            for fid in range(n):
                h, r = self._simulate(fid)
                if h != self.exit_held[fid] or r != self.exit_rel[fid]:
                    self.exit_held[fid] = h
                    self.exit_rel[fid] = r
                    changed = True
            if not changed:
                break
        for fid in range(n):
            self._simulate(fid, record=True)

    def _entry_contexts(self):
        """H[fid]: ranks that can be held on entry, propagated through
        call edges; origin[(fid, rank)] records one witness edge."""
        n = len(self.funcs)
        self.H = {f: set() for f in range(n)}
        self.origin = {}
        work = list(range(n))
        in_work = set(work)
        while work:
            fid = work.pop()
            in_work.discard(fid)
            idx = 0
            for ev in self.events[fid]:
                if ev[0] not in ("lock", "call"):
                    continue
                if ev[0] == "lock" and ev[1] == "rel":
                    continue
                local = self.local_before.get(fid, [])
                here = local[idx] if idx < len(local) else frozenset()
                idx += 1
                if ev[0] != "call":
                    continue
                ctx = self.H[fid] | here
                for callee in ev[1]:
                    new = ctx - self.H[callee]
                    if new:
                        self.H[callee] |= new
                        for r in new:
                            self.origin[(callee, r)] = (fid, ev[2])
                        if callee not in in_work:
                            in_work.add(callee)
                            work.append(callee)

    def held_at_events(self, fid):
        """Yield (ev, locally_held_before) for acq/try/call events."""
        local = self.local_before.get(fid, [])
        idx = 0
        for ev in self.events[fid]:
            if ev[0] == "lock" and ev[1] == "rel":
                continue
            here = local[idx] if idx < len(local) else frozenset()
            idx += 1
            yield ev, here

    def hold_witness(self, fid, rank):
        """Human-readable chain explaining how `rank` can be held on
        entry to fid."""
        steps = []
        cur = fid
        visited = {fid}
        while (cur, rank) in self.origin and len(steps) < 12:
            caller, line = self.origin[(cur, rank)]
            rel, _fn = self.funcs[caller]
            steps.append(f"{self.fname(caller)} ({rel}:{line})")
            if caller in visited:
                break  # recursive witness chain
            visited.add(caller)
            cur = caller
        return " <- ".join(steps) if steps else "this function"

    # -- reachability ------------------------------------------------

    def reachable(self, roots, stop=None):
        """BFS over call edges from `roots`. `stop(fid)` prevents
        *entering* a function (annotation boundaries). Returns
        (visited_set, parent: fid -> (caller_fid, line))."""
        parent = {}
        seen = set(roots)
        queue = list(roots)
        while queue:
            fid = queue.pop()
            for line, callees, _name, _rkind in self.call_edges[fid]:
                for c in callees:
                    if c in seen or (stop and stop(c)):
                        continue
                    seen.add(c)
                    parent[c] = (fid, line)
                    queue.append(c)
        return seen, parent

    def path_from_root(self, fid, parent):
        names = [self.fname(fid)]
        guard = 0
        while fid in parent and guard < 16:
            fid, line = parent[fid]
            names.append(f"{self.fname(fid)}:{line}")
            guard += 1
        return " <- ".join(names)

    def fork_window(self):
        """Functions reachable from atfork hooks or from any function
        that opens the lock-rank fork window: equal-rank bulk
        acquisitions are sanctioned there."""
        roots = set()
        for slot in ("prepare", "parent", "child"):
            for nm in self.atfork_hooks[slot]:
                roots.update(self.by_name.get(nm, []))
        for fid in range(len(self.funcs)):
            for _line, _callees, name, _rkind in self.call_edges[fid]:
                if name == "lock_rank_fork_begin":
                    roots.add(fid)
        seen, _parent = self.reachable(roots)
        return seen


def libclang_call_edges(program, build_dir):
    """Refine call edges with libclang when the bindings + a compilation
    database are available; returns {fid: {line: [callee fids]}} or None
    on any failure (the textual graph remains authoritative then)."""
    try:
        import clang.cindex as cindex
        if not cindex.Config.loaded:
            import glob as _glob
            for pat in ("/usr/lib/llvm-*/lib/libclang.so*",
                        "/usr/lib/x86_64-linux-gnu/libclang-*.so*",
                        "/usr/lib/libclang.so*"):
                hits = sorted(_glob.glob(pat))
                if hits:
                    cindex.Config.set_library_file(hits[-1])
                    break
        index = cindex.Index.create()
        compdb = cindex.CompilationDatabase.fromDirectory(build_dir)
    except Exception:
        return None
    tree = program.tree
    by_path = {os.path.realpath(sf.path): sf.rel for sf in tree.src}
    # (rel, name) -> [(line, fid)] for fuzzy def matching
    def_index = {}
    for fid, (rel, fn) in enumerate(program.funcs):
        def_index.setdefault((rel, fn["name"]), []).append(
            (fn["line"], fid))

    def find_fid(rel, name, line):
        best = None
        for dline, fid in def_index.get((rel, name), []):
            d = abs(dline - line)
            if d <= 2 and (best is None or d < best[0]):
                best = (d, fid)
        return best[1] if best else None

    precise = {}
    try:
        for sf in tree.src:
            if not sf.rel.endswith((".cc", ".cpp")):
                continue
            cmds = compdb.getCompileCommands(sf.path)
            if not cmds:
                continue
            args = []
            skip = False
            for a in list(cmds[0].arguments)[1:]:
                if skip:
                    skip = False
                    continue
                if a in ("-o", "-c"):
                    skip = a == "-o"
                    continue
                if a == sf.path or a.endswith(os.path.basename(sf.path)):
                    continue
                args.append(a)
            tu = index.parse(sf.path, args=args)
            for cur in tu.cursor.walk_preorder():
                if cur.kind not in (cindex.CursorKind.FUNCTION_DECL,
                                    cindex.CursorKind.CXX_METHOD,
                                    cindex.CursorKind.CONSTRUCTOR,
                                    cindex.CursorKind.DESTRUCTOR):
                    continue
                if not cur.is_definition() or cur.location.file is None:
                    continue
                rel = by_path.get(os.path.realpath(
                    cur.location.file.name))
                if rel is None:
                    continue
                fid = find_fid(rel, cur.spelling, cur.location.line)
                if fid is None:
                    continue
                for node in cur.walk_preorder():
                    if node.kind != cindex.CursorKind.CALL_EXPR:
                        continue
                    ref = node.referenced
                    if ref is None or ref.location.file is None:
                        continue
                    crel = by_path.get(os.path.realpath(
                        ref.location.file.name))
                    if crel is None:
                        continue
                    cfid = find_fid(crel, ref.spelling,
                                    ref.location.line)
                    if cfid is None:
                        continue
                    precise.setdefault(fid, {}).setdefault(
                        node.location.line, [])
                    if cfid not in precise[fid][node.location.line]:
                        precise[fid][node.location.line].append(cfid)
    except Exception:
        return None
    return precise or None
