#!/usr/bin/env python3
"""msw-analyze: domain-specific static analyzer for the MineSweeper tree.

Generic linters cannot check the invariants this allocator's correctness
rests on: the LD_PRELOAD shim must never re-enter the allocator, every
lock must respect the core -> quarantine -> bin -> extent -> vm ->
metrics hierarchy, hot-path counters belong in StatCells, and
pointer<->integer laundering is confined to the util/vm helpers. This
tool encodes those rules as a rule pack and runs them over src/ using
the best available engine:

  libclang     python clang bindings + compile_commands.json (preferred)
  clang-query  AST matchers via the clang-query binary
  textual      built-in comment-aware lexical engine, no dependencies

The textual engine is the reference implementation: every rule is fully
implemented there, and the fixture self-test (--self-test) runs against
it so results are reproducible on machines without clang. The libclang
and clang-query engines *refine* the type-sensitive rules (raw-sync,
stat-cells, pointer casts) and the call graph behind the
interprocedural rules with real AST information when available, and
fall back to the textual implementation for the rest. Forcing an engine
that is unavailable exits 0 with a notice (mirroring tools/lint.sh's
clang-tidy behaviour) so the default build never hard-depends on clang.

Rules (see DESIGN.md section 10 for the catalogue):

  per-line / per-file (textual reference, AST-refined when available):
  MSW-REENTRANT-ALLOC  shim entry points must not reach allocating
                       constructs (std::vector growth, std::string,
                       iostream/locale, non-placement new, throw)
  MSW-RAW-SYNC         std::mutex / pthread_mutex / raw
                       std::condition_variable banned outside src/util
  MSW-LOCK-RANK        ranks used by msw::Mutex/SpinLock constructions
                       must exist, be totally ordered, and match the
                       DESIGN.md section 9 table (doc drift is a finding)
  MSW-STAT-CELLS       new std::atomic counter members under src/core
                       and src/alloc are flagged toward core::StatCells
  MSW-SHIM-ERRNO       shim entry points must save/restore errno and be
                       noexcept-clean
  MSW-FAILPOINT-XREF   every Failpoint enumerator needs an injection
                       site in src/ and a reference in tests/
  MSW-UB-PTR-CAST      pointer<->integer reinterpret_casts confined to
                       src/util and src/vm (use msw::to_addr /
                       msw::to_ptr / msw::to_ptr_of)

  interprocedural, over the whole-program call graph (msw_graph):
  MSW-LOCK-HELD        held-rank-set dataflow: no path may acquire a
                       rank <= one already held (fork-window equal-rank
                       bulk acquisitions excepted, as at runtime)
  MSW-SIGNAL-SAFE      signal handlers and pthread_atfork child hooks
                       must not reach non-async-signal-safe libc calls
                       or allocating constructs
  MSW-TLS-FASTPATH     shim entries / fast-path-tagged functions must
                       not reach a ranked-lock acquisition except
                       through '// msw-analyze: slow-path(<why>)'

  atomics / lock-free protocols, over the whole-tree atomics model
  (msw_atomics; protocol catalogue in DESIGN.md section 13):
  MSW-ATOMIC-ORDER     relaxed accesses need '// msw-relaxed(<proto>):
                       <reason>' naming a declared protocol; defaulted
                       (seq_cst-by-default) orders and orphaned halves
                       of release/acquire pairs are findings; the
                       section-13 table must agree with the annotations
                       in both directions
  MSW-CAS-LOOP         ABA-prone CAS-loop shapes (pointer payloads
                       without a generation/tag justification, strong
                       CAS without expected refresh) and failure orders
                       stronger than success orders
  MSW-FENCE-PAIR       atomic_thread_fence sites must pair release <->
                       acquire across the model or name their partner
                       protocol in an msw-fence justification

Suppression baseline (tools/analysis/baseline.txt): lines of the form

  RULE-ID|relative/path|<whitespace-collapsed source line>  # justification

Every entry MUST carry a justification comment; entries without one are
a configuration error (exit 2), and an entry that no longer matches any
finding is a stale suppression — also exit 2 — so the baseline can only
shrink to match reality. --update-baseline appends missing entries with
a "TODO: justify" marker, which deliberately keeps the run red until a
human writes the justification.

Performance: per-file stripping/extraction results are cached in
<build>/msw-analyze-cache.json keyed on file sha256 + a hash of the
analyzer's own sources (see msw_cache); warm runs on an unchanged tree
are sub-second. --sarif writes SARIF 2.1.0 for code-scanning upload;
--timings prints per-rule wall time.

Exit codes: 0 clean (or graceful skip), 1 findings, 2 configuration
error (malformed/unjustified/stale baseline, bad arguments).
"""

import argparse
import hashlib
import json
import os
import re
import shutil
import subprocess
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from msw_common import (  # noqa: E402
    Finding, SourceFile, Tree, _ALLOCATING_TOKENS, _SHIM_ENTRIES,
    _match_delim, fingerprint, parse_enum, strip_code)
import msw_cache  # noqa: E402
import msw_graph  # noqa: E402
import msw_sarif  # noqa: E402
from msw_atomics import ATOMIC_RULES, AtomicsModel  # noqa: E402
from msw_rules2 import INTERPROC_RULES  # noqa: E402

TOOL_VERSION = "3.0"

_KEYWORDS = msw_graph._KEYWORDS  # re-exported for the legacy rules

# --------------------------------------------------------------------------
# Function extents and intra-file call graph (shim rules)
# --------------------------------------------------------------------------

# Definitions sit at column 0 in this repo's style; out-of-line member
# definitions (`RootRegistry::park_handler(...)`) are keyed by their
# last component. (The interprocedural rules use the generic scanner in
# msw_graph instead; this layout-bound one stays for the shim rules,
# whose translation units follow it.)
_FUNC_DEF_RE = re.compile(r"(?m)^(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*\(")
_CALL_RE = re.compile(r"(?<![\w.>:])([A-Za-z_]\w*)\s*\(")


def function_defs(sf):
    """Map name -> (body_start, body_end) using the repo's layout (return
    type on its own line, function name at column 0). Good enough for the
    shim translation units the reentrancy/errno rules target."""
    defs = {}
    for m in _FUNC_DEF_RE.finditer(sf.code):
        name = m.group(1)
        if name in _KEYWORDS:
            continue
        open_paren = sf.code.index("(", m.start())
        close_paren = _match_delim(sf.code, open_paren, "(", ")")
        if close_paren < 0:
            continue
        j = close_paren + 1
        while j < len(sf.code) and (sf.code[j].isspace() or
                                    sf.code[j:j + 5] == "const" or
                                    sf.code[j:j + 8] == "noexcept"):
            if sf.code[j:j + 5] == "const":
                j += 5
            elif sf.code[j:j + 8] == "noexcept":
                j += 8
            else:
                j += 1
        if j >= len(sf.code) or sf.code[j] != "{":
            continue
        body_end = _match_delim(sf.code, j, "{", "}")
        if body_end < 0:
            continue
        defs.setdefault(name, (j, body_end))
    return defs


def calls_in(code, start, end, universe):
    out = set()
    for m in _CALL_RE.finditer(code, start, end):
        if m.group(1) in universe:
            out.add(m.group(1))
    return out


def shim_files(tree):
    """Translation units that define malloc-family entry points."""
    out = []
    for sf in tree.src:
        if not sf.rel.endswith((".cc", ".cpp")):
            continue
        if 'extern "C"' not in sf.raw:
            continue
        defs = function_defs(sf)
        entries = sorted(_SHIM_ENTRIES & set(defs))
        if entries:
            out.append((sf, defs, entries))
    return out


# --------------------------------------------------------------------------
# Rule implementations (textual reference engine)
# --------------------------------------------------------------------------

def _flag_reachable_allocs(sf, defs, entries, kind, findings):
    """BFS the intra-file call graph from @p entries; flag allocating
    tokens with one witness path per reached function."""
    parent = {}
    seen = set(entries)
    work = list(entries)
    while work:
        fn = work.pop()
        body = defs[fn]
        for callee in calls_in(sf.code, body[0], body[1], set(defs)):
            if callee not in seen:
                seen.add(callee)
                parent[callee] = fn
                work.append(callee)
    for fn in sorted(seen):
        start, end = defs[fn]
        for tok_re, what in _ALLOCATING_TOKENS:
            for m in tok_re.finditer(sf.code, start, end):
                line = sf.line_of(m.start())
                path = [fn]
                while path[-1] in parent:
                    path.append(parent[path[-1]])
                via = " <- ".join(path)
                findings.append(Finding(
                    "MSW-REENTRANT-ALLOC", sf.rel, line,
                    what.format(m.group(1) if m.groups() else "") +
                    f" reachable from {kind} ({via})"))


def rule_reentrant_alloc(tree):
    """MSW-REENTRANT-ALLOC: no allocating construct reachable from a
    malloc-family entry point (LD_PRELOAD would recurse or deadlock).
    Signal handlers, which used to be a shallow special case here, are
    covered cross-TU by the interprocedural MSW-SIGNAL-SAFE rule."""
    findings = []
    for sf, defs, entries in shim_files(tree):
        _flag_reachable_allocs(sf, defs, entries,
                               "shim entry point", findings)
    return findings


_RAW_SYNC_RE = re.compile(
    r"\bstd::(mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?!_any)|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|\bpthread_(mutex|cond|rwlock|spin)_")


def rule_raw_sync(tree):
    """MSW-RAW-SYNC: raw synchronisation primitives are invisible to the
    thread-safety annotations and the lock-rank checker; outside
    src/util, use msw::Mutex / msw::SpinLock / msw::LockGuard /
    msw::UniqueLock / std::condition_variable_any."""
    findings = []
    for sf in tree.src:
        if sf.rel.startswith("src/util/"):
            continue
        for i, line in enumerate(sf.code_lines, 1):
            m = _RAW_SYNC_RE.search(line)
            if m:
                findings.append(Finding(
                    "MSW-RAW-SYNC", sf.rel, i,
                    f"raw synchronisation primitive '{m.group(0)}' "
                    "bypasses thread-safety annotations and lock-rank "
                    "checking; use the ranked msw:: wrappers "
                    "(util/mutex.h, util/spin_lock.h)"))
    return findings


_TABLE_ROW_RE = re.compile(r"^\|\s*(\d+)\s+`(k\w+)`\s*\|([^|]*)\|")
_RANK_CTOR_RE = re.compile(
    r"([A-Za-z_]\w*)\s*[{(]\s*(?:msw::)?(?:util::)?LockRank::(k\w+)")
_RANK_INFRA = ("src/util/lock_rank.h", "src/util/lock_rank.cc",
               "src/util/mutex.h", "src/util/spin_lock.h")


def rule_lock_rank(tree):
    """MSW-LOCK-RANK: the LockRank enum must be totally ordered, every
    construction must use a declared rank, and the DESIGN.md section 9
    table must agree with both (doc drift is a finding)."""
    findings = []
    rank_h = tree.find_src("src/util/lock_rank.h")
    if rank_h is None:
        return findings  # tree has no lock-rank subsystem; nothing to check
    enum = parse_enum(rank_h, "LockRank")
    values = {name: val for name, val, _ in enum}

    # (a) declaration order must be strictly increasing: the enum IS the
    # total order the runtime checker enforces, so an out-of-order value
    # silently changes the hierarchy.
    prev = None
    for name, val, line in enum:
        if prev is not None and val <= prev[1]:
            findings.append(Finding(
                "MSW-LOCK-RANK", rank_h.rel, line,
                f"rank {name}={val} breaks the strictly-increasing "
                f"declaration order (follows {prev[0]}={prev[1]})"))
        prev = (name, val)

    reserved = set()
    for name, _val, line in enum:
        # Doc comment may trail the enumerator or sit on preceding lines.
        context = " ".join(rank_h.raw_line(l)
                           for l in range(max(1, line - 2), line + 1))
        if re.search(r"[Rr]eserved|[Oo]pted out", context):
            reserved.add(name)

    # (b) DESIGN table <-> enum agreement, both directions.
    table = {}
    if tree.design is not None:
        for i, line in enumerate(tree.design.raw_lines, 1):
            tm = _TABLE_ROW_RE.match(line.strip())
            if tm:
                table[tm.group(2)] = (int(tm.group(1)), tm.group(3), i)
        for name, (val, _locks, line) in sorted(table.items()):
            if name not in values:
                findings.append(Finding(
                    "MSW-LOCK-RANK", tree.design.rel, line,
                    f"DESIGN table lists rank {name} which does not "
                    "exist in util/lock_rank.h"))
            elif values[name] != val:
                findings.append(Finding(
                    "MSW-LOCK-RANK", tree.design.rel, line,
                    f"DESIGN table says {name}={val} but "
                    f"util/lock_rank.h says {values[name]} (doc drift)"))
        for name, val, line in enum:
            if name not in table:
                findings.append(Finding(
                    "MSW-LOCK-RANK", rank_h.rel, line,
                    f"rank {name}={val} missing from the DESIGN.md "
                    "locking-hierarchy table (doc drift)"))

    # (c) every construction uses a declared rank and is documented.
    used = set()
    for sf in tree.src:
        if sf.rel in _RANK_INFRA:
            continue
        for m in _RANK_CTOR_RE.finditer(sf.code):
            member, rank = m.group(1), m.group(2)
            line = sf.line_of(m.start())
            used.add(rank)
            if rank not in values:
                findings.append(Finding(
                    "MSW-LOCK-RANK", sf.rel, line,
                    f"construction of '{member}' uses undeclared rank "
                    f"LockRank::{rank}"))
                continue
            if table and rank in table and member not in table[rank][1]:
                findings.append(Finding(
                    "MSW-LOCK-RANK", sf.rel, line,
                    f"lock '{member}' (rank {rank}) is not named in the "
                    "DESIGN.md locking-hierarchy row for that rank "
                    "(doc drift)"))

    # (d) non-reserved ranks must be constructed somewhere, or they are
    # dead hierarchy slots that will silently rot.
    for name, val, line in enum:
        if name not in used and name not in reserved:
            findings.append(Finding(
                "MSW-LOCK-RANK", rank_h.rel, line,
                f"rank {name}={val} has no msw::Mutex/SpinLock "
                "construction (mark it Reserved or delete it)"))
    return findings


_ATOMIC_COUNTER_RE = re.compile(
    r"std::atomic<\s*(?:std::)?(u?int(?:8|16|32|64)?(?:_t)?|unsigned|"
    r"long|size_t|uint64_t|uintptr_t)\s*>\s*(\w+_)\s*[{;=]")
_COUNTER_NAME_RE = re.compile(
    r"(count|counts|bytes|calls|hits|misses|fails|failures|done|total)_$")


def rule_stat_cells(tree):
    """MSW-STAT-CELLS: statistic-shaped std::atomic members in the
    runtime layers belong in the striped core::StatCells, not as fresh
    contended cache lines."""
    findings = []
    for sf in tree.src:
        if not sf.rel.startswith(("src/core/", "src/alloc/")):
            continue
        if os.path.basename(sf.rel).startswith("stat_cells"):
            continue  # the striped-counter implementation itself
        for i, line in enumerate(sf.code_lines, 1):
            m = _ATOMIC_COUNTER_RE.search(line)
            if m and _COUNTER_NAME_RE.search(m.group(2)):
                findings.append(Finding(
                    "MSW-STAT-CELLS", sf.rel, i,
                    f"atomic counter member '{m.group(2)}' in the "
                    "runtime layers: route it through core::StatCells "
                    "(striped, cache-line padded) instead of a fresh "
                    "contended atomic"))
    return findings


def rule_shim_errno(tree):
    """MSW-SHIM-ERRNO: every malloc-family entry point must either
    delegate to another entry point or save/restore errno around engine
    calls, and must not contain throw expressions."""
    findings = []
    for sf, defs, entries in shim_files(tree):
        for fn in entries:
            start, end = defs[fn]
            body = sf.code[start:end]
            line = sf.line_of(start)
            if re.search(r"\bthrow\b", body):
                findings.append(Finding(
                    "MSW-SHIM-ERRNO", sf.rel, line,
                    f"shim entry point '{fn}' contains a throw "
                    "expression; entries must be noexcept-clean"))
            delegates = bool(calls_in(sf.code, start, end,
                                      set(entries) - {fn}))
            saves = re.search(r"=\s*errno\b", body)
            restores = re.search(r"\berrno\s*=", body)
            if not delegates and not (saves and restores):
                findings.append(Finding(
                    "MSW-SHIM-ERRNO", sf.rel, line,
                    f"shim entry point '{fn}' neither delegates to "
                    "another entry nor saves/restores errno; engine "
                    "calls issue syscalls that clobber the caller's "
                    "errno"))
    return findings


def rule_failpoint_xref(tree):
    """MSW-FAILPOINT-XREF: a Failpoint enumerator without an injection
    site is dead configuration surface; one without a test reference is
    an untested failure path."""
    findings = []
    fp_h = tree.find_src("src/util/failpoint.h")
    if fp_h is None:
        return findings
    enum = parse_enum(fp_h, "Failpoint", stop="kCount")
    src_refs = set()
    for sf in tree.src:
        if sf.rel.startswith("src/util/failpoint"):
            continue
        for m in re.finditer(r"Failpoint::(k\w+)", sf.code):
            src_refs.add(m.group(1))
    test_refs = set()
    for sf in tree.tests:
        for m in re.finditer(r"Failpoint::(k\w+)", sf.code):
            test_refs.add(m.group(1))
    for name, _val, line in enum:
        if name not in src_refs:
            findings.append(Finding(
                "MSW-FAILPOINT-XREF", fp_h.rel, line,
                f"Failpoint::{name} has no injection site in src/ "
                "(failpoint_should_fail call)"))
        if name not in test_refs:
            findings.append(Finding(
                "MSW-FAILPOINT-XREF", fp_h.rel, line,
                f"Failpoint::{name} is never referenced by a test; "
                "every injectable failure needs coverage"))
    return findings


_PTR_TO_INT_RE = re.compile(
    r"reinterpret_cast<\s*(?:std::)?(u?intptr_t|size_t)(?:\s+const)?\s*>")
_CAST_OPEN_RE = re.compile(r"reinterpret_cast\s*<")
_UINTPTR_DECL_RE = re.compile(r"(?:std::)?u?intptr_t\s+(\w+)\b")


def _reinterpret_casts(code):
    """Yield (offset, target_type, argument_text) for every
    reinterpret_cast, balancing nested template angle brackets."""
    for m in _CAST_OPEN_RE.finditer(code):
        i = m.end()
        depth = 1
        while i < len(code) and depth:
            if code[i] == "<":
                depth += 1
            elif code[i] == ">":
                depth -= 1
            i += 1
        if depth:
            continue
        target = code[m.end():i - 1].strip()
        j = i
        while j < len(code) and code[j].isspace():
            j += 1
        if j >= len(code) or code[j] != "(":
            continue
        close = _match_delim(code, j, "(", ")")
        if close < 0:
            continue
        yield m.start(), target, code[j + 1:close]


def rule_ub_ptr_cast(tree):
    """MSW-UB-PTR-CAST: pointer<->integer conversions are provenance
    hazards; they live behind msw::to_addr / msw::to_ptr / msw::to_ptr_of
    in src/util (and the mmap plumbing in src/vm), nowhere else."""
    findings = []
    # Members declared uintptr_t anywhere in the tree (trailing-underscore
    # names are unambiguous across files in this codebase's style).
    global_int_members = set()
    for sf in tree.src:
        for m in _UINTPTR_DECL_RE.finditer(sf.code):
            if m.group(1).endswith("_"):
                global_int_members.add(m.group(1))
    for sf in tree.src:
        if sf.rel.startswith(("src/util/", "src/vm/")):
            continue
        local_ints = {m.group(1)
                      for m in _UINTPTR_DECL_RE.finditer(sf.code)}
        for off, target, arg in _reinterpret_casts(sf.code):
            line = sf.line_of(off)
            if re.fullmatch(r"(?:std::)?(u?intptr_t|size_t)(\s+const)?",
                            target):
                findings.append(Finding(
                    "MSW-UB-PTR-CAST", sf.rel, line,
                    f"pointer-to-integer reinterpret_cast<{target}> "
                    "outside src/util|src/vm; use msw::to_addr()"))
                continue
            if not target.endswith("*"):
                continue
            root = re.match(r"\s*([A-Za-z_]\w*)", arg)
            rootname = root.group(1) if root else ""
            if (".base()" in arg or ".end()" in arg or
                    rootname in local_ints or
                    rootname in global_int_members):
                findings.append(Finding(
                    "MSW-UB-PTR-CAST", sf.rel, line,
                    "integer-to-pointer reinterpret_cast outside "
                    "src/util|src/vm; use msw::to_ptr()/to_ptr_of<T>()"))
    return findings


RULES = {
    "MSW-REENTRANT-ALLOC": rule_reentrant_alloc,
    "MSW-RAW-SYNC": rule_raw_sync,
    "MSW-LOCK-RANK": rule_lock_rank,
    "MSW-STAT-CELLS": rule_stat_cells,
    "MSW-SHIM-ERRNO": rule_shim_errno,
    "MSW-FAILPOINT-XREF": rule_failpoint_xref,
    "MSW-UB-PTR-CAST": rule_ub_ptr_cast,
}

ALL_RULES = dict(RULES)
ALL_RULES.update(INTERPROC_RULES)
ALL_RULES.update(ATOMIC_RULES)


def rule_description(rule_id):
    fn = ALL_RULES[rule_id]
    doc = " ".join((fn.__doc__ or "").split())
    doc = doc.split(": ", 1)[-1]  # drop the leading "MSW-...:" tag
    # First sentence (avoid splitting inside "e.g." style tokens; the
    # docstrings here end sentences with ". " or final ".").
    end = doc.find(". ")
    return (doc[:end + 1] if end >= 0 else doc).strip()


# --------------------------------------------------------------------------
# Engines
# --------------------------------------------------------------------------

class EngineUnavailable(Exception):
    pass


class TextualEngine:
    """Reference engine: comment-aware lexical analysis, no dependencies."""

    name = "textual"

    def analyze(self, tree, rules, program=None, atomics=None):
        findings = []
        for rule_id in rules:
            if rule_id in INTERPROC_RULES:
                if program is not None:
                    findings.extend(
                        INTERPROC_RULES[rule_id](tree, program))
            elif rule_id in ATOMIC_RULES:
                if atomics is not None:
                    findings.extend(
                        ATOMIC_RULES[rule_id](tree, atomics))
            else:
                findings.extend(RULES[rule_id](tree))
        return findings


class LibclangEngine(TextualEngine):
    """AST-refined engine. Uses python clang bindings when importable;
    replaces the type-sensitive rules (raw-sync, stat-cells, ptr-cast)
    with cursor walks over real ASTs, refines the interprocedural call
    graph via msw_graph.libclang_call_edges, and keeps the textual
    reference implementation for the structural rules."""

    name = "libclang"

    def __init__(self, build_dir):
        try:
            import clang.cindex as cindex  # noqa: deferred import
        except ImportError as e:
            raise EngineUnavailable(f"python clang bindings: {e}")
        self.cindex = cindex
        if not cindex.Config.loaded:
            import glob as _glob
            for pat in ("/usr/lib/llvm-*/lib/libclang.so*",
                        "/usr/lib/x86_64-linux-gnu/libclang-*.so*",
                        "/usr/lib/libclang.so*"):
                hits = sorted(_glob.glob(pat))
                if hits:
                    cindex.Config.set_library_file(hits[-1])
                    break
        try:
            self.index = cindex.Index.create()
        except Exception as e:  # library present but unloadable
            raise EngineUnavailable(f"libclang library: {e}")
        self.build_dir = build_dir
        self._tu_cache = {}
        self.compdb = None
        if build_dir and os.path.isfile(
                os.path.join(build_dir, "compile_commands.json")):
            try:
                self.compdb = cindex.CompilationDatabase.fromDirectory(
                    build_dir)
            except cindex.CompilationDatabaseError:
                self.compdb = None

    _AST_RULES = {"MSW-RAW-SYNC", "MSW-STAT-CELLS", "MSW-UB-PTR-CAST"}

    def analyze(self, tree, rules, program=None, atomics=None):
        textual = [r for r in rules if r not in self._AST_RULES]
        findings = super().analyze(tree, textual, program, atomics)
        ast_rules = [r for r in rules if r in self._AST_RULES]
        if ast_rules:
            try:
                findings.extend(self._analyze_ast(tree, ast_rules))
            except Exception as e:  # never let AST bugs hide findings
                sys.stderr.write(
                    f"msw-analyze: libclang pass failed ({e}); falling "
                    "back to the textual implementation for "
                    f"{', '.join(ast_rules)}\n")
                findings.extend(
                    TextualEngine.analyze(self, tree, ast_rules))
        return findings

    def _args_for(self, path):
        if self.compdb is not None:
            cmds = self.compdb.getCompileCommands(path)
            if cmds:
                args = list(cmds[0].arguments)[1:]
                # Drop the output/input clauses; keep -I/-D/-std.
                out = []
                skip = False
                for a in args:
                    if skip:
                        skip = False
                        continue
                    if a in ("-o", "-c"):
                        skip = a == "-o"
                        continue
                    if a == path or a.endswith(os.path.basename(path)):
                        continue
                    out.append(a)
                return out
        return ["-std=c++20", "-I" + os.path.join(tree_root_of(path))]

    def _parse(self, path):
        tu = self._tu_cache.get(path)
        if tu is None:
            tu = self.index.parse(path, args=self._args_for(path))
            self._tu_cache[path] = tu
        return tu

    def _analyze_ast(self, tree, rules):
        cindex = self.cindex
        findings = []
        seen = set()
        units = [sf for sf in tree.src if sf.rel.endswith((".cc", ".cpp"))]
        headers = {sf.path: sf for sf in tree.src}
        for sf in units:
            tu = self._parse(sf.path)
            for cur in tu.cursor.walk_preorder():
                loc = cur.location
                if loc.file is None:
                    continue
                fpath = os.path.realpath(loc.file.name)
                hit = headers.get(fpath)
                if hit is None:
                    continue
                key = (hit.rel, loc.line, cur.kind, cur.spelling)
                if key in seen:
                    continue
                if "MSW-RAW-SYNC" in rules and \
                        not hit.rel.startswith("src/util/") and \
                        cur.kind in (cindex.CursorKind.FIELD_DECL,
                                     cindex.CursorKind.VAR_DECL):
                    t = cur.type.spelling
                    if _RAW_SYNC_RE.search(t):
                        seen.add(key)
                        findings.append(Finding(
                            "MSW-RAW-SYNC", hit.rel, loc.line,
                            f"raw synchronisation type '{t}' (libclang); "
                            "use the ranked msw:: wrappers"))
                if "MSW-STAT-CELLS" in rules and \
                        hit.rel.startswith(("src/core/", "src/alloc/")) and \
                        not os.path.basename(hit.rel).startswith(
                            "stat_cells") and \
                        cur.kind == cindex.CursorKind.FIELD_DECL:
                    t = cur.type.spelling
                    if (t.startswith("std::atomic<") and "bool" not in t and
                            _COUNTER_NAME_RE.search(cur.spelling or "")):
                        seen.add(key)
                        findings.append(Finding(
                            "MSW-STAT-CELLS", hit.rel, loc.line,
                            f"atomic counter member '{cur.spelling}' "
                            "(libclang); route it through "
                            "core::StatCells"))
                if "MSW-UB-PTR-CAST" in rules and \
                        not hit.rel.startswith(("src/util/", "src/vm/")) and \
                        cur.kind == cindex.CursorKind.CXX_REINTERPRET_CAST_EXPR:
                    dst = cur.type
                    kids = list(cur.get_children())
                    src_t = kids[0].type if kids else None
                    def is_int(t):
                        return t is not None and \
                            t.get_canonical().kind.name.startswith(
                                ("UINT", "INT", "ULONG", "LONG", "USHORT",
                                 "SHORT", "ULONGLONG", "LONGLONG"))
                    def is_ptr(t):
                        return t is not None and \
                            t.get_canonical().kind == \
                            cindex.TypeKind.POINTER
                    if (is_ptr(dst) and is_int(src_t)) or \
                            (is_int(dst) and is_ptr(src_t)):
                        seen.add(key)
                        findings.append(Finding(
                            "MSW-UB-PTR-CAST", hit.rel, loc.line,
                            "pointer<->integer reinterpret_cast "
                            "(libclang); use msw::to_addr()/"
                            "to_ptr()/to_ptr_of<T>()"))
        return findings


class ClangQueryEngine(TextualEngine):
    """clang-query fallback: AST matchers refine the declaration-shaped
    rules; everything else uses the textual reference implementation."""

    name = "clang-query"

    _MATCHERS = [
        ("MSW-RAW-SYNC",
         'match fieldDecl(hasType(cxxRecordDecl(matchesName('
         '"^::std::(mutex|condition_variable$|lock_guard|unique_lock)"))))'),
        ("MSW-RAW-SYNC",
         'match varDecl(hasType(cxxRecordDecl(matchesName('
         '"^::std::(mutex|condition_variable$|lock_guard|unique_lock)"))))'),
    ]

    def __init__(self, build_dir):
        self.binary = shutil.which("clang-query")
        if self.binary is None:
            raise EngineUnavailable("clang-query not found on PATH")
        self.build_dir = build_dir
        if not (build_dir and os.path.isfile(
                os.path.join(build_dir, "compile_commands.json"))):
            raise EngineUnavailable(
                "clang-query needs a build dir with compile_commands.json "
                "(pass --build)")

    def analyze(self, tree, rules, program=None, atomics=None):
        findings = super().analyze(
            tree, [r for r in rules if r != "MSW-RAW-SYNC"], program,
            atomics)
        if "MSW-RAW-SYNC" not in rules:
            return findings
        units = [sf.path for sf in tree.src
                 if sf.rel.endswith((".cc", ".cpp"))
                 and not sf.rel.startswith("src/util/")]
        cmds = "\n".join(q for _r, q in self._MATCHERS) + "\n"
        seen = set()
        try:
            proc = subprocess.run(
                [self.binary, "-p", self.build_dir] + units,
                input=cmds, capture_output=True, text=True, timeout=600)
            for line in proc.stdout.splitlines():
                m = re.match(r"^(/\S+?):(\d+):\d+:", line.strip())
                if not m:
                    continue
                path = os.path.realpath(m.group(1))
                for sf in tree.src:
                    if os.path.realpath(sf.path) == path and \
                            not sf.rel.startswith("src/util/"):
                        key = (sf.rel, int(m.group(2)))
                        if key not in seen:
                            seen.add(key)
                            findings.append(Finding(
                                "MSW-RAW-SYNC", sf.rel, int(m.group(2)),
                                "raw synchronisation primitive "
                                "(clang-query); use the ranked msw:: "
                                "wrappers"))
        except Exception as e:
            sys.stderr.write(
                f"msw-analyze: clang-query pass failed ({e}); using the "
                "textual implementation for MSW-RAW-SYNC\n")
            findings.extend(
                TextualEngine.analyze(self, tree, ["MSW-RAW-SYNC"]))
        return findings


def tree_root_of(path):
    d = os.path.dirname(os.path.abspath(path))
    while d != "/":
        if os.path.isdir(os.path.join(d, "src")):
            return d
        d = os.path.dirname(d)
    return os.path.dirname(path)


def make_engine(kind, build_dir):
    """Returns (engine, notice). Raises EngineUnavailable only when a
    specific engine was forced and cannot run."""
    if kind == "textual":
        return TextualEngine(), None
    if kind == "libclang":
        return LibclangEngine(build_dir), None
    if kind == "clang-query":
        return ClangQueryEngine(build_dir), None
    # auto: best available, never fails.
    try:
        return LibclangEngine(build_dir), None
    except EngineUnavailable as e1:
        try:
            return ClangQueryEngine(build_dir), None
        except EngineUnavailable as e2:
            return TextualEngine(), (
                f"libclang unavailable ({e1}); clang-query unavailable "
                f"({e2}); using the built-in textual engine")


# --------------------------------------------------------------------------
# Baseline
# --------------------------------------------------------------------------

class Baseline:
    def __init__(self, path):
        self.path = path
        self.entries = {}  # (rule, rel, fp) -> justification
        self.errors = []
        self.matched = set()
        self.suppressed_findings = []  # (Finding, justification)
        if path is None or not os.path.isfile(path):
            return
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.rstrip("\n")
                if not line.strip() or line.lstrip().startswith("#"):
                    continue
                body, _hash, just = line.partition(" #")
                parts = body.rstrip().split("|", 2)
                if len(parts) != 3:
                    self.errors.append(
                        f"{path}:{lineno}: malformed baseline entry "
                        "(want RULE|path|fingerprint  # justification)")
                    continue
                just = just.strip()
                if not just or just.upper().startswith("TODO"):
                    self.errors.append(
                        f"{path}:{lineno}: baseline entry for "
                        f"{parts[0]} at {parts[1]} has no justification "
                        "comment; every suppression must say why")
                    continue
                key = (parts[0], parts[1], fingerprint(parts[2]))
                self.entries[key] = just

    def suppresses(self, finding, tree):
        sf = None
        for cand in tree.src + tree.tests + \
                ([tree.design] if tree.design else []):
            if cand.rel == finding.rel:
                sf = cand
                break
        fp = fingerprint(sf.raw_line(finding.line)) if sf else ""
        key = (finding.rule, finding.rel, fp)
        if key in self.entries:
            self.matched.add(key)
            self.suppressed_findings.append(
                (finding, self.entries[key]))
            return True
        return False

    def stale(self, active_rules=None, active_paths=None):
        """Unmatched entries; with a --rules subset or a positional
        path scope, entries for rules/paths that did not run are
        unknown rather than stale."""
        unmatched = set(self.entries) - self.matched
        if active_rules is not None:
            unmatched = {k for k in unmatched if k[0] in active_rules}
        if active_paths is not None:
            unmatched = {k for k in unmatched
                         if _in_paths(k[1], active_paths)}
        return sorted(unmatched)


def _in_paths(rel, paths):
    """True when @p rel falls under one of the positional path scopes
    (repo-relative prefixes; 'src/' and 'src' both scope to src/)."""
    if not paths:
        return True
    rel = rel.replace(os.sep, "/")
    for p in paths:
        p = p.strip("/")
        if rel == p or rel.startswith(p + "/"):
            return True
    return False


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def analyzer_source_hash():
    """Hash of the analyzer's own sources: any edit to tools/analysis
    invalidates the incremental cache wholesale."""
    here = os.path.dirname(os.path.abspath(__file__))
    h = hashlib.sha256()
    for name in sorted(os.listdir(here)):
        if name.endswith(".py"):
            with open(os.path.join(here, name), "rb") as f:
                h.update(name.encode())
                h.update(f.read())
    return h.hexdigest()


def analyze_root(root, engine, rules, baseline_path, build=None,
                 cache=None, timings=None, paths=None,
                 want_atomics_model=False):
    """Returns (kept_findings, baseline, config_errors[, model]). Stale
    baseline entries are config errors: a suppression that matches
    nothing must be removed, or the baseline rots into an
    allow-everything list. @p paths optionally scopes findings (and the
    staleness check) to repo-relative prefixes."""
    t0 = time.perf_counter()
    tree = Tree(root, cache)
    baseline = Baseline(baseline_path)
    if baseline.errors:
        if want_atomics_model:
            return [], baseline, baseline.errors, None
        return [], baseline, baseline.errors
    if timings is not None:
        timings["<tree>"] = time.perf_counter() - t0

    program = None
    if any(r in INTERPROC_RULES for r in rules):
        t0 = time.perf_counter()
        program = msw_graph.Program(tree, cache)
        if isinstance(engine, LibclangEngine) and build:
            precise = msw_graph.libclang_call_edges(program, build)
            if precise:
                program.apply_precise_edges(precise)
        if timings is not None:
            timings["<call-graph>"] = time.perf_counter() - t0

    atomics = None
    if want_atomics_model or any(r in ATOMIC_RULES for r in rules):
        t0 = time.perf_counter()
        atomics = AtomicsModel(tree, cache)
        if timings is not None:
            timings["<atomics>"] = time.perf_counter() - t0

    findings = []
    for rule_id in rules:
        t0 = time.perf_counter()
        findings.extend(engine.analyze(tree, [rule_id], program, atomics))
        if timings is not None:
            timings[rule_id] = time.perf_counter() - t0
    findings = sorted({f.key(): f for f in findings}.values(),
                      key=lambda f: (f.rel, f.line, f.rule))
    if paths:
        # DESIGN.md drift findings stay in scope whenever src/ does:
        # the doc tables are checker input for the src rules.
        findings = [f for f in findings
                    if _in_paths(f.rel, paths) or
                    (f.rel == "DESIGN.md" and _in_paths("src", paths))]
    kept = [f for f in findings if not baseline.suppresses(f, tree)]

    errors = []
    for key in baseline.stale(active_rules=set(rules),
                              active_paths=paths):
        errors.append(
            f"stale suppression {key[0]}|{key[1]}|{key[2]} no longer "
            "matches any finding; remove stale suppression from "
            f"{baseline.path}")
    if want_atomics_model:
        return kept, baseline, errors, atomics
    return kept, baseline, errors


def run_self_test(fixtures_dir, rules):
    cases = sorted(
        d for d in os.listdir(fixtures_dir)
        if os.path.isfile(os.path.join(fixtures_dir, d, "expect.txt")))
    if not cases:
        sys.stderr.write(
            f"msw-analyze: no fixture cases under {fixtures_dir}\n")
        return 2
    failures = 0
    engine = TextualEngine()  # fixtures are engine-independent; the
    # textual engine is the reference and runs everywhere
    for case in cases:
        root = os.path.join(fixtures_dir, case)
        with open(os.path.join(root, "expect.txt"), encoding="utf-8") as f:
            expect_lines = [ln.strip() for ln in f
                            if ln.strip() and not ln.startswith("#")]
        baseline = os.path.join(root, "baseline.txt")
        baseline = baseline if os.path.isfile(baseline) else None
        kept, bl, errors = analyze_root(root, engine, rules, baseline)
        got = sorted({f.rule for f in kept})
        # Every case doubles as a SARIF writer regression test: the
        # emitted document (suppression records included) must pass the
        # structural validator.
        doc = msw_sarif.to_sarif(
            kept, [(r, rule_description(r)) for r in rules], engine.name,
            TOOL_VERSION, suppressed=bl.suppressed_findings)
        sarif_problems = msw_sarif.validate(doc)
        if expect_lines == ["exit:2"]:
            ok = bool(errors)
            want_desc = "configuration error"
        else:
            want = sorted(r for r in expect_lines if r != "none")
            ok = not errors and got == want
            want_desc = ", ".join(want) if want else "no findings"
        ok = ok and not sarif_problems
        status = "PASS" if ok else "FAIL"
        print(f"[{status}] {case}: expected {want_desc}; got "
              f"{', '.join(got) if got else 'no findings'}"
              f"{' + config errors' if errors else ''}")
        if not ok:
            for f in kept:
                print(f"    {f.rel}:{f.line}: {f.rule}: {f.msg}")
            for e in errors:
                print(f"    {e}")
            for p in sarif_problems:
                print(f"    sarif: {p}")
            failures += 1
    print(f"msw-analyze self-test: {len(cases) - failures}/{len(cases)} "
          "cases passed (SARIF validated per case)")
    return 1 if failures else 0


def rule_tier(rule_id):
    if rule_id in INTERPROC_RULES:
        return "interprocedural"
    if rule_id in ATOMIC_RULES:
        return "atomics"
    if rule_id in LibclangEngine._AST_RULES:
        return "ast-refined"
    return "textual"


def main():
    ap = argparse.ArgumentParser(
        prog="msw_analyze.py",
        description="MineSweeper domain-specific static analyzer")
    script_dir = os.path.dirname(os.path.abspath(__file__))
    default_root = os.path.dirname(os.path.dirname(script_dir))
    ap.add_argument("--root", default=default_root,
                    help="analysis root containing src/ (default: repo)")
    ap.add_argument("--build", "-p", default=None,
                    help="build dir with compile_commands.json (for the "
                         "libclang/clang-query engines and the cache)")
    ap.add_argument("--engine", default="auto",
                    choices=["auto", "libclang", "clang-query", "textual"])
    ap.add_argument("--rules", default=None,
                    help="comma-separated rule subset (default: all)")
    ap.add_argument("--rule", action="append", default=[],
                    metavar="ID[,ID...]",
                    help="run specific rule(s) (repeatable, accepts "
                    "comma lists; combines with --rules)")
    ap.add_argument("--baseline", default=None,
                    help="suppression baseline (default: "
                         "tools/analysis/baseline.txt under --root)")
    ap.add_argument("--sarif", metavar="PATH", default=None,
                    help="write SARIF 2.1.0 to PATH (for code scanning)")
    ap.add_argument("--timings", action="store_true",
                    help="print per-rule wall time")
    ap.add_argument("--no-cache", action="store_true",
                    help="disable the per-file incremental cache")
    ap.add_argument("--self-test", metavar="FIXTURES_DIR",
                    help="run the fixture self-test and exit")
    ap.add_argument("--list-rules", action="store_true",
                    help="emit the rule catalogue as JSON and exit")
    ap.add_argument("--update-baseline", action="store_true",
                    help="append entries (marked TODO: justify) for "
                         "current findings to the baseline")
    ap.add_argument("--dump-atomics", metavar="PATH", default=None,
                    help="write the atomics inventory (declarations, "
                         "access sites with orders/annotations, fences, "
                         "section-13 protocols) as JSON; '-' for stdout")
    ap.add_argument("paths", nargs="*", metavar="PATH",
                    help="optional repo-relative path scopes (e.g. "
                         "'src/'): only findings under these prefixes "
                         "are reported")
    args = ap.parse_args()

    rules = list(ALL_RULES)
    selected = []
    if args.rules:
        selected += [r.strip() for r in args.rules.split(",") if r.strip()]
    for part in args.rule:
        selected += [r.strip() for r in part.split(",") if r.strip()]
    if selected:
        unknown = [r for r in selected if r not in ALL_RULES]
        if unknown:
            sys.stderr.write(
                f"msw-analyze: unknown rule(s): {', '.join(unknown)}\n")
            return 2
        rules = [r for r in ALL_RULES if r in selected]

    root = os.path.abspath(args.root)
    build = args.build
    if build is None:
        for cand in ("build", "build-check"):
            if os.path.isfile(os.path.join(root, cand,
                                           "compile_commands.json")):
                build = os.path.join(root, cand)
                break

    if args.list_rules:
        # Machine-readable: id, description, tier, and the engine that
        # would actually run under the requested --engine setting.
        try:
            engine, _notice = make_engine(args.engine, build)
            engine_name = engine.name
        except EngineUnavailable:
            engine_name = "unavailable"
        catalogue = [{
            "id": rule_id,
            "description": rule_description(rule_id),
            "tier": rule_tier(rule_id),
            "engine": ("textual" if rule_tier(rule_id)
                       == "interprocedural" and engine_name
                       == "clang-query" else engine_name),
        } for rule_id in rules]
        json.dump(catalogue, sys.stdout, indent=2)
        sys.stdout.write("\n")
        return 0

    if args.self_test:
        return run_self_test(args.self_test, rules)

    if not os.path.isdir(os.path.join(root, "src")):
        sys.stderr.write(f"msw-analyze: no src/ under {root}\n")
        return 2

    try:
        engine, notice = make_engine(args.engine, build)
    except EngineUnavailable as e:
        # Mirrors tools/lint.sh: a forced-but-missing toolchain is a
        # skip with a notice, never a failure of the default build.
        print(f"msw-analyze: engine '{args.engine}' unavailable ({e}); "
              "skipping (not a failure).")
        print("msw-analyze: run with --engine auto to use the built-in "
              "textual engine instead.")
        return 0
    if notice:
        sys.stderr.write(f"msw-analyze: {notice}\n")

    cache = None
    if build and not args.no_cache:
        cache = msw_cache.AnalysisCache(
            os.path.join(build, "msw-analyze-cache.json"),
            analyzer_source_hash())

    baseline_path = args.baseline or os.path.join(
        root, "tools", "analysis", "baseline.txt")
    timings = {} if args.timings else None
    t_total = time.perf_counter()
    kept, baseline, errors, atomics = analyze_root(
        root, engine, rules, baseline_path, build=build, cache=cache,
        timings=timings, paths=args.paths or None,
        want_atomics_model=True)
    t_total = time.perf_counter() - t_total
    if cache:
        cache.save()
    for e in errors:
        sys.stderr.write(f"msw-analyze: error: {e}\n")
    if errors:
        return 2

    if args.dump_atomics:
        payload = atomics.dump_json()
        if args.dump_atomics == "-":
            sys.stdout.write(payload)
        else:
            with open(args.dump_atomics, "w", encoding="utf-8") as f:
                f.write(payload)
            print(f"msw-analyze: wrote atomics inventory to "
                  f"{args.dump_atomics}")

    for f in kept:
        print(f"{f.rel}:{f.line}: {f.rule}: {f.msg}")

    if args.sarif:
        doc = msw_sarif.to_sarif(
            kept, [(r, rule_description(r)) for r in rules], engine.name,
            TOOL_VERSION, suppressed=baseline.suppressed_findings)
        problems = msw_sarif.validate(doc)
        if problems:
            for p in problems:
                sys.stderr.write(f"msw-analyze: sarif: {p}\n")
            return 2
        msw_sarif.write_sarif(args.sarif, doc)
        print(f"msw-analyze: wrote SARIF to {args.sarif} "
              f"({len(kept)} result(s), "
              f"{len(baseline.suppressed_findings)} suppressed)")

    if timings is not None:
        for rule_id, dt in sorted(timings.items(),
                                  key=lambda kv: -kv[1]):
            print(f"msw-analyze timing: {rule_id:<22s} {dt * 1e3:8.1f} ms")
        print(f"msw-analyze timing: {'total':<22s} {t_total * 1e3:8.1f} ms")
        if cache:
            print(f"msw-analyze timing: cache {cache.hits} hit(s), "
                  f"{cache.misses} miss(es); facts {cache.fact_hits} "
                  f"hit(s), {cache.fact_misses} miss(es)")

    if args.update_baseline and kept:
        tree = Tree(root)
        with open(baseline_path, "a", encoding="utf-8") as out:
            for f in kept:
                sf = next((s for s in tree.src + tree.tests if
                           s.rel == f.rel), None)
                fp = fingerprint(sf.raw_line(f.line)) if sf else ""
                out.write(f"{f.rule}|{f.rel}|{fp}  # TODO: justify\n")
        print(f"msw-analyze: appended {len(kept)} TODO entries to "
              f"{baseline_path}; runs stay red until justified")

    n_sup = len(baseline.matched)
    print(f"msw-analyze [{engine.name}]: {len(kept)} finding(s), "
          f"{n_sup} suppressed by baseline, {len(rules)} rule(s)")
    return 1 if kept else 0


if __name__ == "__main__":
    sys.exit(main())
