#!/usr/bin/env python3
"""Per-file memory-order histogram over the msw-analyze atomics dump.

Consumes the JSON written by `msw_analyze.py --dump-atomics PATH`
(or generates it on the fly when given a tree instead of a dump) and
prints one row per file: access counts bucketed by memory order, the
fence count, and how many relaxed sites carry an msw-relaxed/msw-cas
annotation. The final row totals the tree; `--json` emits the same
table machine-readably for CI artifacts.

Usage:
    python3 tools/analysis/atomics_report.py dump.json
    python3 tools/analysis/atomics_report.py --tree . [--json]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

ORDER_COLUMNS = ("relaxed", "consume", "acquire", "release", "acq_rel",
                 "seq_cst")


def load_dump(args):
    if args.tree is not None:
        analyze = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "msw_analyze.py")
        with tempfile.NamedTemporaryFile(suffix=".json") as tmp:
            subprocess.run(
                [sys.executable, analyze, "--engine", "textual",
                 "--dump-atomics", tmp.name,
                 os.path.join(args.tree, "src")],
                cwd=args.tree, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL, check=False)
            with open(tmp.name, encoding="utf-8") as f:
                return json.load(f)
    with open(args.dump, encoding="utf-8") as f:
        return json.load(f)


def tabulate(dump):
    """[(rel, {order: n, "fences": n, "annotated": n, "relaxed_sites": n})]
    sorted by path, with a trailing ("TOTAL", ...) row."""
    rows = []
    total = {c: 0 for c in ORDER_COLUMNS}
    total.update(fences=0, annotated=0, relaxed_sites=0)
    for rel, facts in sorted(dump.get("files", {}).items()):
        row = {c: 0 for c in ORDER_COLUMNS}
        row.update(fences=0, annotated=0, relaxed_sites=0)
        for a in facts.get("accesses", []):
            # The success order characterises the access; failure
            # orders of a CAS would double-count it.
            orders = a.get("orders") or []
            if not orders:
                continue
            success = orders[0]
            if success in row:
                row[success] += 1
            if "relaxed" in orders:
                row["relaxed_sites"] += 1
                if a.get("annotated"):
                    row["annotated"] += 1
        row["fences"] = len(facts.get("fences", []))
        if not any(row.values()):
            continue
        rows.append((rel, row))
        for k, v in row.items():
            total[k] += v
    rows.append(("TOTAL", total))
    return rows


def render(rows, protocols):
    width = max(len(rel) for rel, _ in rows)
    header = (f"{'file':<{width}}  " +
              "".join(f"{c:>8}" for c in ORDER_COLUMNS) +
              f"{'fences':>8}{'ann/rlx':>9}")
    out = [header, "-" * len(header)]
    for rel, row in rows:
        cells = "".join(f"{row[c] or '.':>8}" for c in ORDER_COLUMNS)
        ann = f"{row['annotated']}/{row['relaxed_sites']}"
        out.append(f"{rel:<{width}}  {cells}{row['fences'] or '.':>8}"
                   f"{ann:>9}")
    out.append(f"protocols declared: {len(protocols)} "
               f"({', '.join(sorted(protocols))})")
    return "\n".join(out)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("dump", nargs="?", help="--dump-atomics JSON file")
    ap.add_argument("--tree", help="repo root: run the analyzer for the "
                                   "dump instead of reading a file")
    ap.add_argument("--json", action="store_true",
                    help="emit the table as JSON")
    args = ap.parse_args()
    if (args.dump is None) == (args.tree is None):
        ap.error("pass exactly one of DUMP or --tree")
    dump = load_dump(args)
    rows = tabulate(dump)
    protocols = dump.get("protocols", {})
    if args.json:
        print(json.dumps({
            "files": {rel: row for rel, row in rows},
            "protocols": sorted(protocols),
        }, indent=2))
    else:
        print(render(rows, protocols))
    return 0


if __name__ == "__main__":
    sys.exit(main())
