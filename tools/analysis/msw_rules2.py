"""Interprocedural rules over the msw_graph whole-program model.

  MSW-LOCK-HELD     held-rank-set dataflow: flag any path on which code
                    holding rank N reaches an acquisition of rank <= N
                    (static complement of the runtime lock-rank
                    checker; equal-rank bulk acquisitions inside the
                    fork window are sanctioned, as at runtime)
  MSW-SIGNAL-SAFE   from installed signal handlers and pthread_atfork
                    child hooks, flag reachability of non-async-signal-
                    safe libc calls or allocating constructs
  MSW-TLS-FASTPATH  shim entries and fast-path-tagged functions must
                    not reach a ranked (global) lock acquisition except
                    through an explicit slow-path annotation
"""

from msw_common import Finding, _ALLOCATING_TOKENS

# Commonly-called libc functions that POSIX does not list as
# async-signal-safe. write/read/sigaction/_exit/abort/nanosleep etc.
# are safe and deliberately absent.
UNSAFE_LIBC = {
    "printf", "fprintf", "vfprintf", "vprintf", "sprintf", "vsprintf",
    "snprintf", "vsnprintf", "puts", "fputs", "fputc", "putc",
    "putchar", "perror", "fwrite", "fread", "fgets", "fgetc", "fopen",
    "fdopen", "freopen", "fclose", "fflush", "fscanf", "scanf",
    "sscanf", "malloc", "calloc", "realloc", "free", "posix_memalign",
    "aligned_alloc", "strdup", "strndup", "asprintf", "vasprintf",
    "exit", "atexit", "quick_exit", "at_quick_exit", "getenv",
    "setenv", "putenv", "unsetenv", "syslog", "vsyslog", "openlog",
    "closelog", "localtime", "gmtime", "ctime", "asctime", "strftime",
    "mktime", "tzset", "dlopen", "dlsym", "dlclose", "pthread_create",
    "pthread_join", "rand", "srand", "random", "srandom", "strerror",
    "backtrace", "backtrace_symbols",
}


def _rank_label(program, rank):
    name = program.rank_names.get(rank)
    return f"{name}={rank}" if name else str(rank)


def rule_lock_held(tree, program):
    """MSW-LOCK-HELD: propagating held-rank sets through the call graph,
    no path may acquire a rank less than or equal to one already held
    (the enum order in util/lock_rank.h is the total order; equal-rank
    acquisitions are tolerated only inside the fork window, mirroring
    the runtime checker's atfork coalescing)."""
    findings = []
    if not program.rank_values:
        return findings
    window = program.fork_window()
    seen = set()
    for fid, (rel, _fn) in enumerate(program.funcs):
        for ev, local_held in program.held_at_events(fid):
            if ev[0] != "lock" or ev[1] != "acq":
                continue  # try_lock is order-exempt, as at runtime
            _t, _kind, rank, line, var = ev
            ctx = set(program.H[fid]) | set(local_held)
            for held in sorted(ctx):
                if held < rank:
                    continue
                if held == rank and fid in window:
                    continue  # fork-window bulk same-rank acquisition
                key = (rel, line, held)
                if key in seen:
                    continue
                seen.add(key)
                if held in local_held:
                    how = "held since earlier in this function"
                else:
                    how = ("held by caller(s): " +
                           program.hold_witness(fid, held))
                relation = "already-held" if held == rank else "higher"
                findings.append(Finding(
                    "MSW-LOCK-HELD", rel, line,
                    f"'{program.fname(fid)}' acquires '{var}' (rank "
                    f"{_rank_label(program, rank)}) while rank "
                    f"{_rank_label(program, held)} is {relation} "
                    f"({how}); lock order must strictly increase"))
    return findings


def _scan_unsafe(program, fid, kind, parent, findings, seen):
    rel, fn = program.funcs[fid]
    sf = next((s for s in program.tree.src if s.rel == rel), None)
    if sf is None:
        return
    path = program.path_from_root(fid, parent)
    lam = fn.get("lam", [])
    for tok_re, what in _ALLOCATING_TOKENS:
        for m in tok_re.finditer(sf.code, fn["body"], fn["end"]):
            if any(s <= m.start() <= e for s, e in lam):
                continue  # lambda bodies are their own graph nodes
            line = sf.line_of(m.start())
            key = (rel, line, "alloc")
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                "MSW-SIGNAL-SAFE", rel, line,
                what.format(m.group(1) if m.groups() else "") +
                f" reachable from {kind} (path: {path})"))
    for line, callees, name, rkind in program.call_edges[fid]:
        if callees or name not in UNSAFE_LIBC:
            continue
        if rkind not in ("bare", "scope"):
            continue  # `arena_.free(p)` is a member, not libc free
        key = (rel, line, name)
        if key in seen:
            continue
        seen.add(key)
        findings.append(Finding(
            "MSW-SIGNAL-SAFE", rel, line,
            f"call to non-async-signal-safe '{name}' reachable from "
            f"{kind} (path: {path})"))


def rule_signal_safe(tree, program):
    """MSW-SIGNAL-SAFE: signal handlers interrupt arbitrary code
    (including malloc itself) and pthread_atfork child hooks run in a
    process whose other threads vanished mid-operation — nothing either
    can reach may allocate or call a non-async-signal-safe libc
    function. Child-hook code that runs only after the hooks have
    reinitialised the allocator locks may opt out with
    '// msw-analyze: fork-deferred(<why>)'."""
    findings = []
    seen = set()

    handler_roots = set()
    for name in program.handler_names:
        handler_roots.update(program.by_name.get(name, []))
    visited, parent = program.reachable(sorted(handler_roots))
    for fid in sorted(visited):
        _scan_unsafe(program, fid, "signal handler", parent,
                     findings, seen)

    child_roots = set()
    for name in program.atfork_hooks["child"]:
        child_roots.update(program.by_name.get(name, []))

    def deferred(fid):
        return "fork-deferred" in program.tags(fid)

    visited, parent = program.reachable(sorted(child_roots),
                                        stop=deferred)
    for fid in sorted(visited):
        _scan_unsafe(program, fid, "fork-child hook", parent,
                     findings, seen)
    return findings


def rule_tls_fastpath(tree, program):
    """MSW-TLS-FASTPATH: the allocation fast path (malloc-family shim
    entries plus anything tagged '// msw-analyze: fast-path') must stay
    lock-free — reaching a ranked-lock acquisition is a finding unless
    the traversal crosses a function tagged
    '// msw-analyze: slow-path(<why>)', the sanctioned boundary."""
    findings = []
    roots = set(program.shim_fids)
    for fid in range(len(program.funcs)):
        if "fast-path" in program.tags(fid):
            roots.add(fid)
    if not roots:
        return findings

    def slow(fid):
        return "slow-path" in program.tags(fid)

    visited, parent = program.reachable(sorted(roots), stop=slow)
    seen = set()
    for fid in sorted(visited):
        rel, _fn = program.funcs[fid]
        for ev in program.events[fid]:
            if ev[0] != "lock" or ev[1] != "acq":
                continue
            _t, _kind, rank, line, var = ev
            if (rel, line) in seen:
                continue
            seen.add((rel, line))
            findings.append(Finding(
                "MSW-TLS-FASTPATH", rel, line,
                f"'{program.fname(fid)}' acquires global lock '{var}' "
                f"(rank {_rank_label(program, rank)}) on the allocation "
                f"fast path (path: "
                f"{program.path_from_root(fid, parent)}); move it off "
                "the hot path or mark the sanctioned boundary with "
                "'// msw-analyze: slow-path(<why>)'"))
    return findings


INTERPROC_RULES = {
    "MSW-LOCK-HELD": rule_lock_held,
    "MSW-SIGNAL-SAFE": rule_signal_safe,
    "MSW-TLS-FASTPATH": rule_tls_fastpath,
}
