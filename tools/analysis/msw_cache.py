"""Per-file content-hash incremental cache for msw-analyze.

The expensive parts of a run are per-file and deterministic: comment
stripping (msw_common.strip_code), call-graph fact extraction
(msw_graph.extract_file_facts), and atomics-model extraction
(msw_atomics.extract_atomics_facts). All are cached keyed per file
plus a hash of the analyzer's own sources, so editing any
tools/analysis/*.py invalidates everything while a warm run on an
unchanged tree does no stripping or extraction at all.

Keying: stripping is a pure function of the file's own bytes and is
keyed on its sha256. Fact extraction is keyed on the file's
*include-closure* hash (Tree.closure_sha: the file plus its transitive
quoted includes) — a header reached only via #include, like
spin_lock.h or shadow_map.h, would otherwise be invisible to
dependents' cache entries and a change to it would serve stale facts
forever. Facts and atomics carry their own key fields in the entry so
the two key spaces never collide.

Location: <build>/msw-analyze-cache.json (next to
compile_commands.json; wiping the build dir wipes the cache). Runs
without a build dir simply skip caching. Saves are atomic
(tmp + rename) and failures to persist are silently ignored — a cache
must never fail the analysis.
"""

import json
import os

CACHE_FORMAT = 2


class AnalysisCache:
    def __init__(self, path, analyzer_hash):
        self.path = path
        self.analyzer_hash = analyzer_hash
        self.files = {}
        self.dirty = False
        self.hits = 0
        self.misses = 0
        self.fact_hits = 0
        self.fact_misses = 0
        if path is None or not os.path.isfile(path):
            return
        try:
            with open(path, encoding="utf-8") as f:
                data = json.load(f)
            if data.get("format") == CACHE_FORMAT and \
                    data.get("analyzer") == analyzer_hash:
                self.files = data.get("files", {})
        except (OSError, ValueError):
            self.files = {}

    def _entry(self, rel, sha):
        ent = self.files.get(rel)
        if ent is not None and ent.get("sha") == sha:
            return ent
        return None

    def _fresh(self, rel, sha):
        ent = self.files.get(rel)
        if ent is None or ent.get("sha") != sha:
            ent = {"sha": sha}
            self.files[rel] = ent
            self.dirty = True
        return ent

    def get_stripped(self, rel, sha):
        ent = self._entry(rel, sha)
        if ent is not None and "stripped" in ent:
            self.hits += 1
            return ent["stripped"]
        self.misses += 1
        return None

    def put_stripped(self, rel, sha, stripped):
        self._fresh(rel, sha)["stripped"] = stripped
        self.dirty = True

    def _get_keyed(self, rel, kind, key):
        """Fetch a fact payload keyed independently of the stripping
        sha (facts use the include-closure hash)."""
        ent = self.files.get(rel)
        if ent is not None and ent.get(kind + "_key") == key and \
                kind in ent:
            self.fact_hits += 1
            return ent[kind]
        self.fact_misses += 1
        return None

    def _put_keyed(self, rel, kind, key, payload):
        ent = self.files.setdefault(rel, {})
        ent[kind + "_key"] = key
        ent[kind] = payload
        self.dirty = True

    def get_facts(self, rel, closure_sha):
        return self._get_keyed(rel, "facts", closure_sha)

    def put_facts(self, rel, closure_sha, facts):
        self._put_keyed(rel, "facts", closure_sha, facts)

    def get_atomics(self, rel, closure_sha):
        return self._get_keyed(rel, "atomics", closure_sha)

    def put_atomics(self, rel, closure_sha, facts):
        self._put_keyed(rel, "atomics", closure_sha, facts)

    def save(self):
        if self.path is None or not self.dirty:
            return
        try:
            tmp = self.path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as f:
                json.dump({"format": CACHE_FORMAT,
                           "analyzer": self.analyzer_hash,
                           "files": self.files}, f)
            os.replace(tmp, self.path)
            self.dirty = False
        except OSError:
            pass
