"""SARIF 2.1.0 output for msw-analyze.

Emits the minimal document GitHub code scanning ingests: one run, one
driver with reportingDescriptors for every rule that ran, one result
per finding with a physical location and a stable partial fingerprint.
Baseline-suppressed findings are emitted too, each carrying a SARIF
suppression record (kind "external", status "accepted") with the
baseline's justification string, so code scanning shows them as
dismissed rather than silently absent. validate() is a structural
checker used by the fixture self-test and the golden-file unit test so
the emitted shape is regression-tested without a jsonschema dependency.
"""

import hashlib
import json

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")


def _fingerprint(finding):
    h = hashlib.sha256()
    h.update(f"{finding.rule}|{finding.rel}|{finding.msg}"
             .encode("utf-8", "replace"))
    return h.hexdigest()[:32]


def to_sarif(findings, rules_meta, engine_name, tool_version="2.0",
             suppressed=None):
    """Build the SARIF document. `rules_meta` is an ordered list of
    (rule_id, description) for every rule that ran (rules without
    findings still get a descriptor so code scanning can show them).
    `suppressed` is an optional list of (finding, justification) pairs
    from the baseline; they are emitted as results with suppression
    records."""
    descriptors = []
    index = {}
    for rule_id, desc in rules_meta:
        index[rule_id] = len(descriptors)
        descriptors.append({
            "id": rule_id,
            "name": "".join(p.capitalize()
                            for p in rule_id.lower().split("-")),
            "shortDescription": {"text": desc},
            "defaultConfiguration": {"level": "error"},
        })
    results = []

    def emit(f, justification=None):
        if f.rule not in index:  # a rule outside the requested subset
            index[f.rule] = len(descriptors)
            descriptors.append({
                "id": f.rule,
                "name": "".join(p.capitalize()
                                for p in f.rule.lower().split("-")),
                "shortDescription": {"text": f.rule},
                "defaultConfiguration": {"level": "error"},
            })
        res = {
            "ruleId": f.rule,
            "ruleIndex": index[f.rule],
            "level": "error",
            "message": {"text": f.msg},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.rel,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(1, int(f.line))},
                },
            }],
            "partialFingerprints": {
                "mswAnalyze/v1": _fingerprint(f),
            },
        }
        if justification is not None:
            res["suppressions"] = [{
                "kind": "external",
                "status": "accepted",
                "justification": justification,
            }]
        results.append(res)

    for f in findings:
        emit(f)
    for f, justification in (suppressed or []):
        emit(f, justification)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "msw-analyze",
                    "informationUri":
                        "https://github.com/minesweeper/minesweeper",
                    "version": tool_version,
                    "rules": descriptors,
                },
            },
            "properties": {"engine": engine_name},
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }


def validate(doc):
    """Structural SARIF 2.1.0 check; returns a list of problems (empty
    means valid). Covers the shape GitHub code scanning requires."""
    problems = []

    def need(cond, msg):
        if not cond:
            problems.append(msg)
        return cond

    if not need(isinstance(doc, dict), "document is not an object"):
        return problems
    need(doc.get("version") == SARIF_VERSION,
         f"version must be '{SARIF_VERSION}'")
    need(isinstance(doc.get("$schema"), str) and doc["$schema"],
         "$schema missing")
    runs = doc.get("runs")
    if not need(isinstance(runs, list) and runs,
                "runs must be a non-empty array"):
        return problems
    for ri, run in enumerate(runs):
        driver = (run.get("tool") or {}).get("driver") or {}
        need(isinstance(driver.get("name"), str) and driver["name"],
             f"runs[{ri}].tool.driver.name missing")
        rules = driver.get("rules", [])
        ids = [r.get("id") for r in rules]
        need(all(isinstance(i, str) and i for i in ids),
             f"runs[{ri}] has a rule descriptor without an id")
        need(len(ids) == len(set(ids)),
             f"runs[{ri}] has duplicate rule ids")
        for pi, res in enumerate(run.get("results", [])):
            where = f"runs[{ri}].results[{pi}]"
            need(isinstance(res.get("ruleId"), str) and res["ruleId"],
                 f"{where}.ruleId missing")
            if ids:
                need(res.get("ruleId") in ids,
                     f"{where}.ruleId not among driver.rules")
            msg = (res.get("message") or {}).get("text")
            need(isinstance(msg, str) and msg,
                 f"{where}.message.text missing")
            need(res.get("level") in ("none", "note", "warning",
                                      "error", None),
                 f"{where}.level invalid")
            locs = res.get("locations")
            if need(isinstance(locs, list) and locs,
                    f"{where}.locations must be non-empty"):
                phys = locs[0].get("physicalLocation") or {}
                art = phys.get("artifactLocation") or {}
                need(isinstance(art.get("uri"), str) and art["uri"],
                     f"{where} artifactLocation.uri missing")
                need("\\" not in art.get("uri", ""),
                     f"{where} uri must use forward slashes")
                region = phys.get("region") or {}
                need(isinstance(region.get("startLine"), int) and
                     region["startLine"] >= 1,
                     f"{where} region.startLine must be an int >= 1")
            sups = res.get("suppressions")
            if sups is not None:
                if need(isinstance(sups, list) and sups,
                        f"{where}.suppressions must be a non-empty "
                        "array when present"):
                    for si, sup in enumerate(sups):
                        need(sup.get("kind") in ("inSource", "external"),
                             f"{where}.suppressions[{si}].kind must be "
                             "'inSource' or 'external'")
                        need(sup.get("status") in ("accepted",
                                                   "underReview",
                                                   "rejected", None),
                             f"{where}.suppressions[{si}].status "
                             "invalid")
                        just = sup.get("justification")
                        need(just is None or
                             (isinstance(just, str) and just),
                             f"{where}.suppressions[{si}].justification"
                             " must be a non-empty string when present")
    return problems


def write_sarif(path, doc):
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
