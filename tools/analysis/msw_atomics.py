"""Atomics model and lock-free protocol checker for msw-analyze.

MineSweeper's correctness rests on a handful of lock-free protocols
being exactly right: the marker-scan races mutators against the sweep,
a CAS token serialises sweepers, epochs hand quarantined memory between
threads. TSan only sees orders that execute; this pass checks the
memory-order *discipline* statically, against the protocol catalogue
the design doc declares.

The model is built from the stripped sources (textual engine; the
atomics rules have no AST refinement — the accesses this codebase uses
are syntactically regular):

  * every `std::atomic<T>` field/global/local declaration (including
    pointer-to-atomic members like the shadow-map word arrays);
  * every access site — `.load/.store/.exchange/.fetch_*/
    .compare_exchange_{weak,strong}` members and the `__atomic_*`
    builtins — with its memory orders (success and failure for CAS),
    or the fact that the order was *defaulted* to seq_cst;
  * every `std::atomic_thread_fence` site;
  * CAS-loop shapes (loop spans, expected-variable refresh);
  * justification annotations scanned from the raw comment text.

Annotations (attached to an access if they appear on any line of the
access's statement or up to two lines above it):

  // msw-relaxed(<protocol>): <reason>   sanctions a relaxed access
  // msw-cas(<protocol>): <reason>       sanctions an ABA-shaped CAS loop
  // msw-fence(<protocol>): <reason>     names a lone fence's partner

`<protocol>` must name a row of the DESIGN.md section 13 protocol
table (see parse contract below) — an annotation naming an undeclared
protocol is a finding, and a declared protocol no annotation references
is doc drift, also a finding. Deleting a section-13 row therefore makes
the checker fail, exactly like the section-9 lock-rank table.

Rules:

  MSW-ATOMIC-ORDER  every relaxed access carries a justification naming
                    a declared protocol; no access defaults its order
                    to seq_cst; every release store has a matching
                    acquire-side access of the same atomic somewhere in
                    the program, and vice versa (orphaned halves of a
                    release/acquire pair are wrong or wasted ordering)
  MSW-CAS-LOOP      CAS loops over pointer-payload atomics are
                    ABA-prone (quarantine addresses recycle) and need a
                    msw-cas justification naming the protocol that tags
                    or fences them; a strong CAS retried in a loop must
                    refresh its expected value; a CAS failure order
                    must not be release/acq_rel or stronger than its
                    success order
  MSW-FENCE-PAIR    a release fence needs an acquire fence somewhere in
                    the program (and vice versa) or an msw-fence
                    justification naming its protocol; relaxed fences
                    are no-ops and always flagged

Approximations, deliberately simple and documented: atomics are keyed
by *name* across the whole tree (two same-named members merge — fine
for pairing, which only needs "some matching side exists"), and the
release/acquire matching is whole-program rather than per-thread-entry
(an under-approximation of "reachable from another thread entry": it
never flags a protocol the graph could prove paired, it only misses
pairs that are unreachable from any second thread).

DESIGN.md section 13 parse contract (the table IS the checker input):
a `## 13.` heading followed by a pipe table whose rows start with a
backtick-quoted protocol name; the second cell lists the backtick-
quoted atomics involved (`Class::member_` — matched by the last `::`
component); remaining cells are prose (happens-before claim, dynamic
test cross-reference) the checker does not interpret.
"""

import json
import re

from msw_common import Finding, _match_delim

ATOMIC_FACTS_VERSION = 3

# Memory-order spellings: std::memory_order_relaxed,
# std::memory_order::relaxed, and the __ATOMIC_RELAXED builtin macros.
_ORDER_RE = re.compile(
    r"\bmemory_order(?:::|_)(relaxed|consume|acquire|release|acq_rel|"
    r"seq_cst)\b|__ATOMIC_(RELAXED|CONSUME|ACQUIRE|RELEASE|ACQ_REL|"
    r"SEQ_CST)\b")

# Member operations. load/store are generic words (any class may have
# them); the rest are distinctive enough to imply an atomic receiver.
_MEMBER_OPS = ("load", "store", "exchange", "compare_exchange_weak",
               "compare_exchange_strong", "fetch_add", "fetch_sub",
               "fetch_and", "fetch_or", "fetch_xor")
_DISTINCT_OPS = frozenset(_MEMBER_OPS) - {"load", "store"}
_CAS_OPS = frozenset(("compare_exchange_weak", "compare_exchange_strong"))

_MEMBER_ACCESS_RE = re.compile(
    r"([A-Za-z_]\w*)\s*(?:\[[^][]*\])?\s*(?:\.|->)\s*(" +
    "|".join(_MEMBER_OPS) + r")\s*\(")
# Call-result receivers: `log_level_ref().load(...)` — keyed by the
# function name, which is identity enough for pairing.
_RESULT_ACCESS_RE = re.compile(
    r"([A-Za-z_]\w*)\s*\(\s*\)\s*\.\s*(" + "|".join(_MEMBER_OPS) +
    r")\s*\(")
_BUILTIN_RE = re.compile(
    r"__atomic_(load_n|load|store_n|store|exchange_n|exchange|"
    r"fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|"
    r"compare_exchange_n|compare_exchange)\s*\(")
_FENCE_RE = re.compile(r"\batomic_thread_fence\s*\(")

_DECL_RE = re.compile(
    r"std::atomic\s*<")
_ANN_RE = re.compile(
    r"msw-(relaxed|cas|fence)\(([A-Za-z0-9_-]+)\)\s*(:?)\s*(.*)")

# First identifier of an expression that names the accessed object,
# skipping cast/helper wrappers.
_SKIP_IDENTS = frozenset((
    "to_ptr_of", "to_ptr", "static_cast", "reinterpret_cast",
    "const_cast", "std", "const", "volatile", "unsigned", "signed",
    "char", "short", "int", "long", "uint8_t", "uint16_t", "uint32_t",
    "uint64_t", "size_t", "uintptr_t", "detail"))

_PROTO_HEADING_RE = re.compile(r"^##\s*13\.")
_PROTO_ROW_RE = re.compile(r"^\|\s*`([A-Za-z0-9_-]+)`\s*\|([^|]*)\|")
_BACKTICK_RE = re.compile(r"`([^`]+)`")


def _expr_ident(arg):
    """Best-effort name of the object a builtin's address argument
    denotes: the first identifier that is not a cast/helper."""
    for m in re.finditer(r"[A-Za-z_]\w*", arg):
        if m.group(0) not in _SKIP_IDENTS:
            return m.group(0)
    return "<expr>"


def _loop_spans(code):
    """[(start, end)] character spans whose contents execute repeatedly:
    while/for bodies and conditions, do { } while (cond) including the
    trailing condition. Nested loops simply produce nested spans."""
    spans = []
    for m in re.finditer(r"\b(while|for)\s*\(", code):
        open_p = code.index("(", m.end() - 1)
        close_p = _match_delim(code, open_p, "(", ")")
        if close_p < 0:
            continue
        j = close_p + 1
        while j < len(code) and code[j].isspace():
            j += 1
        if j < len(code) and code[j] == "{":
            close_b = _match_delim(code, j, "{", "}")
            if close_b > 0:
                spans.append((open_p, close_b))
            continue
        # Single-statement body (or `} while (...)` of a do-loop, which
        # has no body here: the condition span still counts as looped).
        end = code.find(";", j)
        spans.append((open_p, end if end > 0 else close_p))
    for m in re.finditer(r"\bdo\b", code):
        j = m.end()
        while j < len(code) and code[j].isspace():
            j += 1
        if j >= len(code) or code[j] != "{":
            continue
        close_b = _match_delim(code, j, "{", "}")
        if close_b < 0:
            continue
        tail = re.match(r"\s*while\s*\(", code[close_b + 1:])
        end = close_b
        if tail:
            open_p = close_b + 1 + tail.end() - 1
            close_p = _match_delim(code, open_p, "(", ")")
            if close_p > 0:
                end = close_p
        spans.append((j, end))
    return spans


def _in_any(spans, off):
    return any(s <= off <= e for s, e in spans)


def _collect_annotations(sf):
    """{line: (kind, protocol, has_colon, reason)} from raw comments.

    An annotation is keyed at the *last line of its contiguous comment
    block*, not the line carrying the marker: a marker followed by
    continuation `//` lines still sanctions the two code lines after
    the block, so multi-line justifications don't eat the window."""
    anns = {}
    lines = sf.raw_lines
    for lineno, raw in enumerate(lines, 1):
        m = _ANN_RE.search(raw)
        if m:
            end = lineno
            while end < len(lines) and \
                    lines[end].lstrip().startswith("//"):
                end += 1
            anns[end] = (m.group(1), m.group(2), m.group(3) == ":",
                         m.group(4).strip())
    return anns


def _decl_sites(sf):
    """Declarations of std::atomic objects: (name, value_type,
    ptr_to_atomic, line). Handles members, globals, statics, arrays,
    and pointer-to-atomic members (`std::atomic<T>* words_`)."""
    out = []
    code = sf.code
    for m in _DECL_RE.finditer(code):
        open_a = code.index("<", m.end() - 1)
        depth = 0
        i = open_a
        while i < len(code):
            if code[i] == "<":
                depth += 1
            elif code[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if depth:
            continue
        value_type = " ".join(code[open_a + 1:i].split())
        rest = code[i + 1:i + 160]
        dm = re.match(
            r"\s*(\*?)\s*&?\s*([A-Za-z_]\w*)\s*(\[[^\]]*\])?\s*[;{=(,)]",
            rest)
        if not dm:
            continue
        name = dm.group(2)
        if name in ("operator",):
            continue
        out.append({
            "name": name,
            "type": value_type,
            "ptr": dm.group(1) == "*",
            "line": sf.line_of(m.start()),
        })
    return out


def extract_atomics_facts(sf):
    """Cacheable per-file atomics model fragment."""
    code = sf.code
    anns = _collect_annotations(sf)
    loops = _loop_spans(code)

    def annotation_for(kind, line_start, line_end):
        for ln in range(line_start - 2, line_end + 1):
            ann = anns.get(ln)
            if ann is not None and ann[0] == kind:
                return ann
        return None

    accesses = []

    def record(var, op, args_start, args_end, off):
        args = code[args_start + 1:args_end]
        orders = ["_".join(filter(None, g)).lower()
                  for g in _ORDER_RE.findall(args)]
        line_start = sf.line_of(off)
        line_end = sf.line_of(args_end)
        expected_var = ""
        refreshed = False
        in_loop = _in_any(loops, off)
        if op in _CAS_OPS or op.startswith("compare_exchange"):
            em = re.match(r"\s*&?\s*([A-Za-z_]\w*)", args)
            # Builtins pass (&atomic, &expected, ...): expected is the
            # second argument there, first for the member form.
            if op.startswith("compare_exchange") and op not in _CAS_OPS:
                parts = args.split(",")
                em = re.match(r"\s*&?\s*([A-Za-z_]\w*)",
                              parts[1]) if len(parts) > 1 else None
            if em:
                expected_var = em.group(1)
            if in_loop and expected_var:
                for s, e in loops:
                    if s <= off <= e:
                        body = code[s:e]
                        if re.search(
                                r"\b(?:bool\s+|auto\s+)?" +
                                re.escape(expected_var) + r"\s*=",
                                body):
                            refreshed = True
                            break
        accesses.append({
            "var": var, "op": op, "orders": orders,
            "line": line_start, "line_end": line_end,
            "defaulted": not orders,
            "in_loop": in_loop, "expected": expected_var,
            "refreshed": refreshed,
            "ann": annotation_for(
                "cas" if op in _CAS_OPS or
                op.startswith("compare_exchange") else "relaxed",
                line_start, line_end),
        })

    claimed = set()
    for m in _MEMBER_ACCESS_RE.finditer(code):
        open_p = code.index("(", m.end() - 1)
        close_p = _match_delim(code, open_p, "(", ")")
        if close_p < 0:
            continue
        claimed.add(open_p)
        record(m.group(1), m.group(2), open_p, close_p, m.start())
    for m in _RESULT_ACCESS_RE.finditer(code):
        open_p = code.index("(", m.end() - 1)
        close_p = _match_delim(code, open_p, "(", ")")
        if close_p < 0 or open_p in claimed:
            continue
        record(m.group(1), m.group(2), open_p, close_p, m.start())
    for m in _BUILTIN_RE.finditer(code):
        open_p = code.index("(", m.end() - 1)
        close_p = _match_delim(code, open_p, "(", ")")
        if close_p < 0:
            continue
        args = code[open_p + 1:close_p]
        first = args.split(",", 1)[0]
        op = "__atomic_" + m.group(1)
        norm = {"load_n": "load", "load": "load", "store_n": "store",
                "store": "store", "exchange_n": "exchange",
                "exchange": "exchange"}.get(m.group(1), m.group(1))
        if norm.startswith("compare_exchange"):
            norm = "compare_exchange_strong"
        record(_expr_ident(first), norm, open_p, close_p, m.start())
        accesses[-1]["builtin"] = op

    fences = []
    for m in _FENCE_RE.finditer(code):
        open_p = code.index("(", m.end() - 1)
        close_p = _match_delim(code, open_p, "(", ")")
        if close_p < 0:
            continue
        args = code[open_p + 1:close_p]
        orders = ["_".join(filter(None, g)).lower()
                  for g in _ORDER_RE.findall(args)]
        line = sf.line_of(m.start())
        fences.append({
            "order": orders[0] if orders else "seq_cst",
            "line": line,
            "ann": annotation_for("fence", line, sf.line_of(close_p)),
        })

    return {
        "v": ATOMIC_FACTS_VERSION,
        "decls": _decl_sites(sf),
        "accesses": accesses,
        "fences": fences,
    }


# --------------------------------------------------------------------------
# Protocol table (DESIGN.md section 13)
# --------------------------------------------------------------------------

def parse_protocol_table(design_sf):
    """{protocol: {"atomics": [names], "line": n}} from the section-13
    table. Atomic tokens are reduced to their last `::` component with
    array/pointer decoration stripped; tokens ending in `()` (helper
    functions named for context) are ignored."""
    protocols = {}
    if design_sf is None:
        return protocols
    in_section = False
    for lineno, raw in enumerate(design_sf.raw_lines, 1):
        stripped = raw.strip()
        if stripped.startswith("## "):
            in_section = bool(_PROTO_HEADING_RE.match(stripped))
            continue
        if not in_section:
            continue
        m = _PROTO_ROW_RE.match(stripped)
        if not m:
            continue
        atoms = []
        for tok in _BACKTICK_RE.findall(m.group(2)):
            tok = tok.strip()
            if tok.endswith("()"):
                continue
            tok = tok.split("::")[-1].rstrip("*").split("[")[0].strip()
            if tok:
                atoms.append(tok)
        protocols[m.group(1)] = {"atomics": atoms, "line": lineno}
    return protocols


# --------------------------------------------------------------------------
# Linked model
# --------------------------------------------------------------------------

_RELEASE_SIDE = frozenset(("release", "acq_rel", "seq_cst"))
_ACQUIRE_SIDE = frozenset(("acquire", "consume", "acq_rel", "seq_cst"))
_STRENGTH = {"relaxed": 0, "consume": 1, "acquire": 2, "release": 2,
             "acq_rel": 3, "seq_cst": 4}


class AtomicsModel:
    """Whole-tree atomics inventory: declarations, accesses, fences,
    and the declared protocol catalogue, keyed for the three rules."""

    def __init__(self, tree, cache=None):
        self.tree = tree
        self.facts = {}
        for sf in tree.src:
            key = getattr(sf, "closure_sha", sf.sha)
            facts = cache.get_atomics(sf.rel, key) if cache else None
            if facts is None or facts.get("v") != ATOMIC_FACTS_VERSION:
                facts = extract_atomics_facts(sf)
                if cache:
                    cache.put_atomics(sf.rel, key, facts)
            self.facts[sf.rel] = facts
        self.protocols = parse_protocol_table(tree.design)
        self._link()

    def _link(self):
        self.decl_names = set()
        self.ptr_payload = set()   # atomics whose value type is T*
        self.access_names = set()
        self.release_side = set()  # names with a release-side op
        self.acquire_side = set()  # names with an acquire-side op
        for rel, facts in sorted(self.facts.items()):
            for d in facts["decls"]:
                self.decl_names.add(d["name"])
                if d["type"].endswith("*") and not d["ptr"]:
                    self.ptr_payload.add(d["name"])
            for a in facts["accesses"]:
                self.access_names.add(a["var"])
                orders = a["orders"]
                success = orders[0] if orders else None
                op = a["op"]
                if success is None:
                    continue
                is_rmw = op not in ("load", "store")
                if (op != "load" and success in _RELEASE_SIDE) and \
                        (is_rmw or op == "store"):
                    self.release_side.add(a["var"])
                if (op != "store" and success in _ACQUIRE_SIDE) and \
                        (is_rmw or op == "load"):
                    self.acquire_side.add(a["var"])
        self.fence_orders = set()
        for facts in self.facts.values():
            for f in facts["fences"]:
                self.fence_orders.add(f["order"])

    def is_atomic_access(self, access):
        return (not access["defaulted"] or
                access["op"] in _DISTINCT_OPS or
                access["var"] in self.decl_names)

    # -- dump ---------------------------------------------------------

    def dump(self):
        """JSON-ready inventory for --dump-atomics and the
        atomics_report tool."""
        files = {}
        for rel, facts in sorted(self.facts.items()):
            if not facts["accesses"] and not facts["decls"] and \
                    not facts["fences"]:
                continue
            files[rel] = {
                "decls": facts["decls"],
                "accesses": [{
                    "var": a["var"], "op": a["op"],
                    "orders": a["orders"], "line": a["line"],
                    "defaulted": a["defaulted"],
                    "annotated": a["ann"][1] if a["ann"] else None,
                } for a in facts["accesses"]
                    if self.is_atomic_access(a)],
                "fences": [{
                    "order": f["order"], "line": f["line"],
                    "annotated": f["ann"][1] if f["ann"] else None,
                } for f in facts["fences"]],
            }
        return {
            "version": ATOMIC_FACTS_VERSION,
            "protocols": {
                name: {"atomics": p["atomics"], "line": p["line"]}
                for name, p in sorted(self.protocols.items())},
            "files": files,
        }

    def dump_json(self):
        return json.dumps(self.dump(), indent=2) + "\n"


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------

def _check_annotation(model, rel, line, ann, used_protocols, findings,
                      what):
    """Shared annotation validity: must name a declared protocol and
    carry a reason. Returns True when the annotation sanctions."""
    kind, proto, has_colon, reason = ann
    used_protocols.add(proto)
    if proto not in model.protocols:
        findings.append(Finding(
            "MSW-ATOMIC-ORDER", rel, line,
            f"{what} names protocol '{proto}' which is not declared in "
            "the DESIGN.md section-13 protocol table (add the row or "
            "fix the name; the table is the checker's input)"))
        return False
    if not has_colon or not reason:
        findings.append(Finding(
            "MSW-ATOMIC-ORDER", rel, line,
            f"{what} has no reason after the protocol name; write "
            f"'msw-{kind}({proto}): <why this ordering is sufficient>'"))
        return False
    return True


def rule_atomic_order(tree, model):
    """MSW-ATOMIC-ORDER: every relaxed access must carry a
    'msw-relaxed(<protocol>): <reason>' justification naming a declared
    section-13 protocol; no access may default its memory order to
    seq_cst (an explicit seq_cst is a decision, a defaulted one is
    usually an unexamined one); release stores and acquire loads must
    have a matching opposite side on the same atomic somewhere in the
    program; and the protocol table must agree with the annotations in
    both directions (undeclared and unreferenced protocols are both
    findings, like the section-9 lock-rank table)."""
    findings = []
    used_protocols = set()
    flagged_orphans = set()
    for rel, facts in sorted(model.facts.items()):
        for a in facts["accesses"]:
            if not model.is_atomic_access(a):
                continue
            orders = a["orders"]
            if a["defaulted"]:
                findings.append(Finding(
                    "MSW-ATOMIC-ORDER", rel, a["line"],
                    f"'{a['var']}.{a['op']}' defaults its memory order "
                    "to seq_cst; state the order explicitly (seq_cst "
                    "included) so the protocol is a decision, not a "
                    "default"))
                continue
            if "relaxed" in orders:
                ann = a["ann"]
                if ann is None:
                    findings.append(Finding(
                        "MSW-ATOMIC-ORDER", rel, a["line"],
                        f"relaxed access '{a['var']}.{a['op']}' has no "
                        "'// msw-relaxed(<protocol>): <reason>' "
                        "justification naming a DESIGN.md section-13 "
                        "protocol"))
                else:
                    _check_annotation(
                        model, rel, a["line"], ann, used_protocols,
                        findings,
                        f"relaxed-access justification on '{a['var']}'")
            elif a["ann"] is not None and a["ann"][0] == "relaxed":
                # Keep the table's reference graph honest even when the
                # annotated access is not relaxed (e.g. documentation on
                # the release half of a protocol).
                used_protocols.add(a["ann"][1])
            success = orders[0]
            var = a["var"]
            if var not in model.decl_names or var in flagged_orphans:
                continue
            op = a["op"]
            if op == "store" and success in ("release", "seq_cst") and \
                    var not in model.acquire_side:
                flagged_orphans.add(var)
                findings.append(Finding(
                    "MSW-ATOMIC-ORDER", rel, a["line"],
                    f"release store to '{var}' has no acquire-side "
                    "access of the same atomic anywhere in the program "
                    "(orphaned release: either the acquire half is "
                    "missing or the release ordering is wasted — make "
                    "it relaxed and justify it)"))
            if op == "load" and success in ("acquire", "seq_cst") and \
                    var not in model.release_side:
                flagged_orphans.add(var)
                findings.append(Finding(
                    "MSW-ATOMIC-ORDER", rel, a["line"],
                    f"acquire load of '{var}' has no release-side "
                    "access of the same atomic anywhere in the program "
                    "(orphaned acquire: nothing publishes with release "
                    "ordering, so this synchronises with nothing)"))

    design_rel = tree.design.rel if tree.design else "DESIGN.md"
    for proto, info in sorted(model.protocols.items()):
        if proto not in used_protocols:
            findings.append(Finding(
                "MSW-ATOMIC-ORDER", design_rel, info["line"],
                f"protocol '{proto}' is declared in the section-13 "
                "table but no msw-relaxed/msw-cas/msw-fence annotation "
                "references it (doc drift: delete the row or annotate "
                "its accesses)"))
        for atom in info["atomics"]:
            if atom not in model.decl_names and \
                    atom not in model.access_names:
                findings.append(Finding(
                    "MSW-ATOMIC-ORDER", design_rel, info["line"],
                    f"protocol '{proto}' lists atomic '{atom}' which "
                    "matches no std::atomic declaration or access in "
                    "src/ (doc drift)"))
    return findings


def rule_cas_loop(tree, model):
    """MSW-CAS-LOOP: a CAS loop whose payload is a raw pointer is
    ABA-prone in an allocator (freed addresses recycle through the
    quarantine and come back bit-identical) and must carry a
    'msw-cas(<protocol>): <reason>' naming the protocol whose
    generation/tag word (or single-writer structure) defuses it; a
    strong CAS retried in a loop must refresh its expected value inside
    the loop (weak CAS refreshes it by contract); and a CAS failure
    order must not be release/acq_rel or stronger than the success
    order."""
    findings = []
    used = set()
    for rel, facts in sorted(model.facts.items()):
        for a in facts["accesses"]:
            op = a["op"]
            if op not in _CAS_OPS:
                continue
            orders = a["orders"]
            if len(orders) >= 2:
                success, failure = orders[0], orders[1]
                if failure in ("release", "acq_rel"):
                    findings.append(Finding(
                        "MSW-CAS-LOOP", rel, a["line"],
                        f"CAS on '{a['var']}' uses failure order "
                        f"'{failure}': a failed CAS performs no store, "
                        "so release semantics are meaningless there "
                        "(and ill-formed before C++17)"))
                elif _STRENGTH[failure] > _STRENGTH[success]:
                    findings.append(Finding(
                        "MSW-CAS-LOOP", rel, a["line"],
                        f"CAS on '{a['var']}' has failure order "
                        f"'{failure}' stronger than success order "
                        f"'{success}'; the failure path cannot need "
                        "more ordering than the success path"))
            if not a["in_loop"]:
                continue
            if a["var"] in model.ptr_payload:
                ann = a["ann"]
                if ann is None:
                    findings.append(Finding(
                        "MSW-CAS-LOOP", rel, a["line"],
                        f"CAS loop over pointer-payload atomic "
                        f"'{a['var']}' is ABA-prone (a freed pointer "
                        "can recycle to the same bits between load and "
                        "CAS); add a generation/tag word or justify "
                        "with '// msw-cas(<protocol>): <reason>'"))
                else:
                    used.add(ann[1])
                    _check_annotation(
                        model, rel, a["line"], ann, used, findings,
                        f"CAS-loop justification on '{a['var']}'")
            if op == "compare_exchange_strong" and a["expected"] and \
                    not a["refreshed"]:
                findings.append(Finding(
                    "MSW-CAS-LOOP", rel, a["line"],
                    f"strong CAS on '{a['var']}' retried in a loop "
                    f"never refreshes expected value "
                    f"'{a['expected']}' inside the loop; a stale "
                    "expected spins forever (use the weak form, which "
                    "updates it, or reassign it in the loop body)"))
    return findings


def rule_fence_pair(tree, model):
    """MSW-FENCE-PAIR: atomic_thread_fence sites must pair — a release
    fence synchronises only with an acquire fence (or acquire
    operation) elsewhere, so a program with one half and not the other
    has either a missing fence or a wasted one. A lone half may instead
    carry '// msw-fence(<protocol>): <reason>' naming the section-13
    protocol that documents its partner (e.g. an acquire *operation*
    rather than a fence). Relaxed fences are no-ops and always
    flagged."""
    findings = []
    used = set()
    for rel, facts in sorted(model.facts.items()):
        for f in facts["fences"]:
            order = f["order"]
            if order == "relaxed":
                findings.append(Finding(
                    "MSW-FENCE-PAIR", rel, f["line"],
                    "atomic_thread_fence(memory_order_relaxed) is a "
                    "no-op; delete it or state the intended order"))
                continue
            if order in ("acq_rel", "seq_cst"):
                continue  # self-pairing orders
            partner = "acquire" if order == "release" else "release"
            paired = partner in model.fence_orders or \
                "acq_rel" in model.fence_orders or \
                "seq_cst" in model.fence_orders
            if paired:
                continue
            ann = f["ann"]
            if ann is None:
                findings.append(Finding(
                    "MSW-FENCE-PAIR", rel, f["line"],
                    f"{order} fence has no matching {partner} fence "
                    "anywhere in the program; add the partner or name "
                    "it with '// msw-fence(<protocol>): <reason>'"))
            else:
                used.add(ann[1])
                _check_annotation(
                    model, rel, f["line"], ann, used, findings,
                    f"fence justification")
    return findings


ATOMIC_RULES = {
    "MSW-ATOMIC-ORDER": rule_atomic_order,
    "MSW-CAS-LOOP": rule_cas_loop,
    "MSW-FENCE-PAIR": rule_fence_pair,
}
