"""Shared source model for msw-analyze.

Everything here is engine-agnostic: comment/string stripping that
preserves line and column positions, the SourceFile/Tree containers the
rules walk, and the small parsing helpers (balanced-delimiter matching,
enum parsing) that both the legacy per-line rules and the whole-program
call-graph model (msw_graph) build on. Keeping the model in its own
module lets msw_graph import it without a circular dependency on the
driver in msw_analyze.
"""

import hashlib
import os
import re

_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "new",
    "delete", "alignas", "alignof", "static_assert", "decltype", "throw",
    "else", "do", "case", "defined", "noexcept", "requires", "assert",
}


def strip_code(text):
    """Blank out comments and string/char literal contents, preserving
    newlines and column positions so line/offset math on the result maps
    back to the original file."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line-comment | block-comment | string | char | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block-comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw string literal R"delim( ... )delim"
                m = re.match(r'R"([^()\s\\]{0,16})\(', text[i - 1:i + 20]) \
                    if i > 0 and text[i - 1] == "R" else None
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = "raw"
                    out.append('"')
                    i += 1
                    continue
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                # Digit separator (100'000), not a char literal, when
                # sandwiched between identifier/number characters.
                prev = text[i - 1] if i > 0 else ""
                if prev.isalnum() or prev == "_":
                    out.append("'")
                    i += 1
                    continue
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line-comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append('"')
            else:
                out.append(" ")
            i += 1
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append("'")
            else:
                out.append(" ")
            i += 1
        elif state == "raw":
            if text.startswith(raw_delim, i):
                out.append(" " * (len(raw_delim) - 1) + '"')
                i += len(raw_delim)
                state = "code"
                continue
            out.append("\n" if c == "\n" else " ")
            i += 1
    return "".join(out)


class SourceFile:
    def __init__(self, root, rel, cache=None):
        self.rel = rel.replace(os.sep, "/")
        self.path = os.path.join(root, rel)
        with open(self.path, "r", encoding="utf-8", errors="replace") as f:
            self.raw = f.read()
        self.raw_lines = self.raw.splitlines()
        self.sha = hashlib.sha256(self.raw.encode("utf-8",
                                                  "replace")).hexdigest()
        stripped = cache.get_stripped(self.rel, self.sha) if cache else None
        if stripped is None:
            stripped = strip_code(self.raw)
            if cache:
                cache.put_stripped(self.rel, self.sha, stripped)
        self.code = stripped
        self.code_lines = self.code.splitlines()

    def line_of(self, offset):
        return self.code.count("\n", 0, offset) + 1

    def raw_line(self, line):
        if 1 <= line <= len(self.raw_lines):
            return self.raw_lines[line - 1]
        return ""


class Finding:
    def __init__(self, rule, rel, line, msg):
        self.rule = rule
        self.rel = rel
        self.line = line
        self.msg = msg

    def key(self):
        return (self.rel, self.line, self.rule, self.msg)


_INCLUDE_RE = re.compile(r'(?m)^\s*#\s*include\s*"([^"]+)"')


class Tree:
    """All sources the rules look at, rooted at an analysis root that has
    (at least) a src/ directory and optionally DESIGN.md and tests/.

    Each src file also gets a `closure_sha`: a hash over the file plus
    its transitive quoted includes (resolved under src/). Fact
    extraction keys the incremental cache on it, so editing a header
    that is only ever reached via #include (spin_lock.h, shadow_map.h)
    cold-reruns every dependent instead of silently serving stale
    facts keyed on the dependent's own unchanged bytes."""

    def __init__(self, root, cache=None):
        self.root = root
        self.src = []
        src_dir = os.path.join(root, "src")
        for dirpath, _dirs, files in sorted(os.walk(src_dir)):
            for name in sorted(files):
                if name.endswith((".h", ".cc", ".cpp", ".hpp")):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    self.src.append(SourceFile(root, rel, cache))
        self._compute_include_closures()
        self.tests = []
        tests_dir = os.path.join(root, "tests")
        for dirpath, _dirs, files in sorted(os.walk(tests_dir)):
            if os.path.join("tests", "analysis") in os.path.relpath(
                    dirpath, root):
                continue  # fixture mini-repos are not this tree's tests
            for name in sorted(files):
                if name.endswith((".h", ".cc", ".cpp")):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    self.tests.append(SourceFile(root, rel, cache))
        design = os.path.join(root, "DESIGN.md")
        self.design = None
        if os.path.isfile(design):
            self.design = SourceFile(root, "DESIGN.md")

    def find_src(self, rel_suffix):
        for f in self.src:
            if f.rel.endswith(rel_suffix):
                return f
        return None

    def _compute_include_closures(self):
        by_rel = {sf.rel: sf for sf in self.src}
        edges = {}
        for sf in self.src:
            deps = []
            for inc in _INCLUDE_RE.findall(sf.raw):
                cand = "src/" + inc  # quoted includes are src/-relative
                if cand in by_rel:
                    deps.append(cand)
            edges[sf.rel] = deps
        memo = {}

        def closure(rel, stack):
            got = memo.get(rel)
            if got is not None:
                return got
            if rel in stack:
                return {rel}  # include cycle: guards make it benign
            stack.add(rel)
            out = {rel}
            for dep in edges[rel]:
                out |= closure(dep, stack)
            stack.discard(rel)
            memo[rel] = out
            return out

        for sf in self.src:
            h = hashlib.sha256()
            for member in sorted(closure(sf.rel, set())):
                h.update(member.encode("utf-8"))
                h.update(by_rel[member].sha.encode("ascii"))
            sf.closure_sha = h.hexdigest()


def _match_delim(code, start, open_c, close_c):
    depth = 0
    for i in range(start, len(code)):
        if code[i] == open_c:
            depth += 1
        elif code[i] == close_c:
            depth -= 1
            if depth == 0:
                return i
    return -1


_ENUMERATOR_RE = re.compile(r"^\s*(k\w+)\s*(?:=\s*(\d+))?\s*,?")


def parse_enum(sf, enum_name, stop=None):
    """Ordered [(name, value, raw_line_no)] for `enum class <enum_name>`."""
    m = re.search(r"enum\s+class\s+" + enum_name + r"\b[^{]*\{", sf.code)
    if not m:
        return []
    end = _match_delim(sf.code, sf.code.index("{", m.start()), "{", "}")
    body_start = sf.code.index("{", m.start()) + 1
    out = []
    next_val = 0
    for raw in sf.code[body_start:end].split(","):
        em = _ENUMERATOR_RE.match(raw.strip())
        if not em:
            continue
        name = em.group(1)
        val = int(em.group(2)) if em.group(2) is not None else next_val
        next_val = val + 1
        if stop and name == stop:
            break
        off = sf.code.index(name, body_start)
        out.append((name, val, sf.line_of(off)))
    return out


_SHIM_ENTRIES = {
    "malloc", "free", "calloc", "realloc", "posix_memalign",
    "aligned_alloc", "memalign", "valloc", "malloc_usable_size",
    "reallocarray", "pvalloc", "cfree",
}


_ALLOCATING_TOKENS = [
    (re.compile(r"\bstd::(vector|string|deque|map|unordered_map|set|"
                r"unordered_set|list|function|ostringstream|stringstream|"
                r"to_string|make_unique|make_shared)\b"),
     "allocating std::{0} use"),
    (re.compile(r"\bstd::(cout|cerr|clog|locale)\b"),
     "iostream/locale use (allocates and takes internal locks)"),
    (re.compile(r"\bthrow\b"), "throw expression (shim must be "
                               "noexcept-clean)"),
    # `new T` allocates; placement `new (addr) T` does not, but
    # `new (std::nothrow) T` still allocates.
    (re.compile(r"\bnew\s*\(\s*std::nothrow"), "operator new use"),
    (re.compile(r"\bnew\b(?!\s*\()"), "operator new use"),
]


# A function name assigned as a signal disposition. Handlers run on
# whatever thread the kernel picks, possibly mid-malloc: they are entry
# points with the same no-allocation contract as the shim.
_SIG_INSTALL_RES = [
    re.compile(r"\.sa_sigaction\s*=\s*&?(?:[A-Za-z_]\w*::)*"
               r"([A-Za-z_]\w*)"),
    re.compile(r"\.sa_handler\s*=\s*&?(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)"),
    re.compile(r"\bsignal\s*\(\s*SIG\w+\s*,\s*&?(?:[A-Za-z_]\w*::)*"
               r"([A-Za-z_]\w*)"),
]

# pthread_atfork(prepare, parent, child): the child hook runs in a
# process whose other threads vanished mid-operation — the async-signal
# contract applies to everything it can reach.
_ATFORK_RE = re.compile(
    r"\bpthread_atfork\s*\(\s*&?(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*|nullptr|0)"
    r"\s*,\s*&?(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*|nullptr|0)"
    r"\s*,\s*&?(?:[A-Za-z_]\w*::)*([A-Za-z_]\w*|nullptr|0)\s*\)")


def fingerprint(raw_line):
    return " ".join(raw_line.split())
