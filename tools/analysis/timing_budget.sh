#!/usr/bin/env bash
# Analysis-timing budget gate: a cold run (cache removed) must finish
# within MSW_ANALYZE_COLD_BUDGET seconds (default 120) and a warm run
# (cache hot, tree unchanged) within MSW_ANALYZE_WARM_BUDGET seconds
# (default 5). On a breach the per-rule --timings breakdown of the
# offending run is printed so the regression is attributable. The
# budget guards the incremental cache: a warm-run regression means
# cache keying broke (e.g. an include-closure key churning), not that
# the rules got slower.
#
# Usage: tools/analysis/timing_budget.sh [--root DIR] [--build DIR]
set -euo pipefail

root="$(cd "$(dirname "$0")/../.." && pwd)"
build="$root/build"
while [ $# -gt 0 ]; do
    case "$1" in
      --root) root="$2"; shift 2 ;;
      --build) build="$2"; shift 2 ;;
      *) echo "timing_budget.sh: unknown arg $1" >&2; exit 2 ;;
    esac
done

cold_budget="${MSW_ANALYZE_COLD_BUDGET:-120}"
warm_budget="${MSW_ANALYZE_WARM_BUDGET:-5}"
cache="$build/msw-analyze-cache.json"
log="$(mktemp)"
trap 'rm -f "$log"' EXIT

run_timed() {  # run_timed <label> <budget-seconds> -> fails on breach
    local label="$1" budget="$2" start end elapsed
    start=$(date +%s%N)
    if ! python3 "$root/tools/analysis/msw_analyze.py" \
            --root "$root" --build "$build" --timings >"$log" 2>&1; then
        echo "timing_budget: $label run FAILED (findings/config error):" >&2
        cat "$log" >&2
        return 1
    fi
    end=$(date +%s%N)
    elapsed=$(( (end - start) / 1000000 ))  # ms
    echo "timing_budget: $label run took ${elapsed}ms" \
         "(budget ${budget}s)"
    if [ "$elapsed" -gt $(( budget * 1000 )) ]; then
        echo "timing_budget: $label run over budget; --timings:" >&2
        cat "$log" >&2
        return 1
    fi
}

rm -f "$cache"
run_timed cold "$cold_budget"
run_timed warm "$warm_budget"
echo "timing_budget: PASS (cold<=${cold_budget}s warm<=${warm_budget}s)"
