#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy) over the src/ tree and fail on any
# finding. Builds compile_commands.json first if missing.
#
# Usage: tools/lint.sh [build-dir] [-- extra clang-tidy args]
#   build-dir defaults to build/ (created if needed).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"

# A leading "--" means "default build dir, everything after is for
# clang-tidy" — it must not be mistaken for the build dir itself.
build="$repo/build"
if [ $# -gt 0 ] && [ "$1" != "--" ]; then
    build="$1"
    shift
fi
if [ "${1:-}" = "--" ]; then shift; fi

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "lint.sh: clang-tidy not found on PATH; skipping (not a failure)." >&2
    echo "lint.sh: install clang-tidy to run the static-analysis pass." >&2
    exit 0
fi

# compile_commands.json is exported unconditionally (CMakeLists.txt sets
# CMAKE_EXPORT_COMPILE_COMMANDS); configure if this build dir has none.
if [ ! -f "$build/compile_commands.json" ]; then
    echo "lint.sh: no compile_commands.json in $build; configuring to export it." >&2
    cmake -B "$build" -S "$repo" >/dev/null
fi

mapfile -t sources < <(find "$repo/src" -name '*.cc' | sort)

if command -v run-clang-tidy >/dev/null 2>&1; then
    # Propagate the exit status explicitly: run-clang-tidy returns
    # nonzero on findings and that must fail the lint, not be swallowed.
    status=0
    run-clang-tidy -p "$build" -quiet "$@" "${sources[@]}" || status=$?
    exit $status
else
    status=0
    for f in "${sources[@]}"; do
        clang-tidy -p "$build" --quiet "$@" "$f" || status=1
    done
    exit $status
fi
