#!/usr/bin/env bash
# Build-and-test matrix for local verification:
#   1. default build + full test suite (the tier-1 gate), then the
#      hardened-policy label (-L hardened) on the same build;
#   2. MSW_THREAD_SAFETY=ON with clang++ (thread-safety analysis is a
#      Clang feature) — compile-only, -Werror=thread-safety;
#   3. MSW_SANITIZE=address,undefined + full test suite, then the
#      lifecycle chaos soak (-L chaos) with a longer local budget;
#   4. MSW_SANITIZE=thread + the race suite and the chaos soak
#      (-L "tsan|chaos"), then the tsan label again with
#      MSW_POLICY=hardened so the policy hooks are raced too;
#   5. msw-analyze (tools/analysis/) self-test + clean run over src/;
#   6. server tail-latency smoke: bench/server_tail in short duration
#      mode, then tools/ci/check_server_tail.py validates the output
#      shape (all four systems with full percentile digests).
# Configurations whose toolchain is unavailable are skipped with a note,
# not failed: the matrix must be runnable on minimal containers.
#
# Usage: tools/check.sh [--quick]
#   --quick runs only the default configuration.
#   MSW_CHAOS_SECONDS (default 10 here; the binary's own default is 2)
#   scales the chaos soaks.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
quick=0
if [ "${1:-}" = "--quick" ]; then quick=1; fi

run() { echo "+ $*" >&2; "$@"; }

failures=()
chaos_seconds="${MSW_CHAOS_SECONDS:-10}"

echo "=== [1/6] default build + tests ==="
run cmake -B "$repo/build-check" -S "$repo" >/dev/null
run cmake --build "$repo/build-check" -j >/dev/null
if ! (cd "$repo/build-check" && ctest --output-on-failure -j "$(nproc)"); then
    failures+=("default")
fi
# The hardened-policy reruns are part of the default gate: same build,
# MSW_POLICY=hardened via the ctest registrations.
if ! (cd "$repo/build-check" && ctest --output-on-failure -j "$(nproc)" \
          -L hardened); then
    failures+=("hardened")
fi

if [ "$quick" = "0" ]; then
    echo "=== [2/6] MSW_THREAD_SAFETY=ON (clang) ==="
    if command -v clang++ >/dev/null 2>&1; then
        if run cmake -B "$repo/build-check-tsa" -S "$repo" \
                -DCMAKE_CXX_COMPILER=clang++ \
                -DMSW_THREAD_SAFETY=ON >/dev/null &&
           run cmake --build "$repo/build-check-tsa" -j >/dev/null; then
            echo "thread-safety analysis: clean"
        else
            failures+=("thread-safety")
        fi
    else
        echo "clang++ not found; skipping the thread-safety configuration."
    fi

    echo "=== [3/6] MSW_SANITIZE=address,undefined + tests ==="
    # handle_segv=0: the suite *intends* SIGSEGV in places (UAF probes on
    # unmapped quarantine pages, mprotect write-barrier faults); ASan must
    # not convert those into aborts.
    if run cmake -B "$repo/build-check-asan" -S "$repo" \
            -DMSW_SANITIZE=address,undefined >/dev/null &&
       run cmake --build "$repo/build-check-asan" -j >/dev/null; then
        # shim_victim_preload is excluded: LD_PRELOADing an ASan-built
        # shim violates ASan's requirement to be first in the initial
        # library list (runtime refuses to start).
        if ! (cd "$repo/build-check-asan" &&
              ASAN_OPTIONS=handle_segv=0:allow_user_segv_handler=1 \
                  ctest --output-on-failure -j "$(nproc)" \
                      -E shim_victim_preload); then
            failures+=("asan-ubsan")
        fi
        # The chaos soak once more, solo and with wall-clock to spare:
        # fork/thread-exit interleavings are schedule-dependent.
        if ! (cd "$repo/build-check-asan" &&
              ASAN_OPTIONS=handle_segv=0:allow_user_segv_handler=1 \
                  MSW_CHAOS_SECONDS="$chaos_seconds" \
                  ctest --output-on-failure -L chaos); then
            failures+=("asan-ubsan-chaos")
        fi
    else
        failures+=("asan-ubsan-build")
    fi

    echo "=== [4/6] MSW_SANITIZE=thread + race/chaos suites ==="
    # Only the tsan- and chaos-labelled tests: a full suite under TSan
    # takes too long for a local gate, and the remaining tests exercise
    # no cross-thread interleavings the labelled ones don't.
    if run cmake -B "$repo/build-check-tsan" -S "$repo" \
            -DMSW_SANITIZE=thread >/dev/null &&
       run cmake --build "$repo/build-check-tsan" -j >/dev/null; then
        if ! (cd "$repo/build-check-tsan" &&
              MSW_CHAOS_SECONDS="$chaos_seconds" \
                  ctest --output-on-failure -j "$(nproc)" \
                      -L "tsan|chaos"); then
            failures+=("tsan")
        fi
        # Race the hardened policy's hook paths (randomized placement,
        # canary writes, release shuffling) under TSan as well.
        if ! (cd "$repo/build-check-tsan" &&
              MSW_POLICY=hardened ctest --output-on-failure \
                  -j "$(nproc)" -L tsan); then
            failures+=("tsan-hardened")
        fi
    else
        failures+=("tsan-build")
    fi

    echo "=== [5/6] msw-analyze (domain-specific static analysis) ==="
    # The analyzer degrades to its built-in textual engine when libclang/
    # clang-query are absent; only a missing python3 skips the stage. The
    # build dir from stage 1 supplies compile_commands.json (and hosts
    # the analyzer's incremental cache); export it here if a stale or
    # hand-rolled build dir lacks one.
    if command -v python3 >/dev/null 2>&1; then
        if [ ! -f "$repo/build-check/compile_commands.json" ]; then
            echo "check.sh: exporting compile_commands.json for the analyzer" >&2
            run cmake -B "$repo/build-check" -S "$repo" >/dev/null
        fi
        if ! run python3 "$repo/tools/analysis/msw_analyze.py" \
                --self-test "$repo/tests/analysis/fixtures"; then
            failures+=("msw-analyze-selftest")
        fi
        if ! run python3 "$repo/tools/analysis/msw_analyze.py" \
                --root "$repo" --build "$repo/build-check" --timings \
                --dump-atomics "$repo/build-check/msw-atomics.json"; then
            failures+=("msw-analyze")
        fi
        # Per-file memory-order histogram from the inventory the run
        # above just dumped (annotated/relaxed must read n/n).
        if [ -f "$repo/build-check/msw-atomics.json" ]; then
            run python3 "$repo/tools/analysis/atomics_report.py" \
                "$repo/build-check/msw-atomics.json" || true
        fi
        # Cold/warm wall-clock budget (cold <=120s, warm <=5s): a warm
        # breach means the incremental cache keying regressed.
        if ! run bash "$repo/tools/analysis/timing_budget.sh" \
                --root "$repo" --build "$repo/build-check"; then
            failures+=("msw-analyze-timing")
        fi
    else
        echo "python3 not found; skipping the msw-analyze stage."
    fi

    echo "=== [6/6] server tail-latency smoke ==="
    # The gate is the output *shape* (four systems, full percentile
    # digests), not the numbers; MSW_BENCH_SECONDS keeps it short.
    if command -v python3 >/dev/null 2>&1; then
        if (cd "$repo/build-check" &&
            MSW_BENCH_SECONDS="${MSW_BENCH_SECONDS:-1}" \
                run ./bench/server_tail); then
            if ! (cd "$repo/build-check" &&
                  run python3 "$repo/tools/ci/check_server_tail.py" \
                      BENCH_server_tail.json); then
                failures+=("server-tail-shape")
            fi
        else
            failures+=("server-tail")
        fi
    else
        echo "python3 not found; skipping the server-tail smoke stage."
    fi
fi

echo
if [ "${#failures[@]}" -gt 0 ]; then
    echo "check.sh: FAILED configurations: ${failures[*]}" >&2
    exit 1
fi
echo "check.sh: all configurations passed."
