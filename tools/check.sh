#!/usr/bin/env bash
# Build-and-test matrix for local verification:
#   1. default build + full test suite (the tier-1 gate);
#   2. MSW_THREAD_SAFETY=ON with clang++ (thread-safety analysis is a
#      Clang feature) — compile-only, -Werror=thread-safety;
#   3. MSW_SANITIZE=address,undefined + full test suite;
#   4. msw-analyze (tools/analysis/) self-test + clean run over src/.
# Configurations whose toolchain is unavailable are skipped with a note,
# not failed: the matrix must be runnable on minimal containers.
#
# Usage: tools/check.sh [--quick]
#   --quick runs only the default configuration.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
quick=0
if [ "${1:-}" = "--quick" ]; then quick=1; fi

run() { echo "+ $*" >&2; "$@"; }

failures=()

echo "=== [1/4] default build + tests ==="
run cmake -B "$repo/build-check" -S "$repo" >/dev/null
run cmake --build "$repo/build-check" -j >/dev/null
if ! (cd "$repo/build-check" && ctest --output-on-failure -j "$(nproc)"); then
    failures+=("default")
fi

if [ "$quick" = "0" ]; then
    echo "=== [2/4] MSW_THREAD_SAFETY=ON (clang) ==="
    if command -v clang++ >/dev/null 2>&1; then
        if run cmake -B "$repo/build-check-tsa" -S "$repo" \
                -DCMAKE_CXX_COMPILER=clang++ \
                -DMSW_THREAD_SAFETY=ON >/dev/null &&
           run cmake --build "$repo/build-check-tsa" -j >/dev/null; then
            echo "thread-safety analysis: clean"
        else
            failures+=("thread-safety")
        fi
    else
        echo "clang++ not found; skipping the thread-safety configuration."
    fi

    echo "=== [3/4] MSW_SANITIZE=address,undefined + tests ==="
    # handle_segv=0: the suite *intends* SIGSEGV in places (UAF probes on
    # unmapped quarantine pages, mprotect write-barrier faults); ASan must
    # not convert those into aborts.
    if run cmake -B "$repo/build-check-asan" -S "$repo" \
            -DMSW_SANITIZE=address,undefined >/dev/null &&
       run cmake --build "$repo/build-check-asan" -j >/dev/null; then
        # shim_victim_preload is excluded: LD_PRELOADing an ASan-built
        # shim violates ASan's requirement to be first in the initial
        # library list (runtime refuses to start).
        if ! (cd "$repo/build-check-asan" &&
              ASAN_OPTIONS=handle_segv=0:allow_user_segv_handler=1 \
                  ctest --output-on-failure -j "$(nproc)" \
                      -E shim_victim_preload); then
            failures+=("asan-ubsan")
        fi
    else
        failures+=("asan-ubsan-build")
    fi

    echo "=== [4/4] msw-analyze (domain-specific static analysis) ==="
    # The analyzer degrades to its built-in textual engine when libclang/
    # clang-query are absent; only a missing python3 skips the stage. The
    # build dir from stage 1 supplies compile_commands.json.
    if command -v python3 >/dev/null 2>&1; then
        if ! run python3 "$repo/tools/analysis/msw_analyze.py" \
                --self-test "$repo/tests/analysis/fixtures"; then
            failures+=("msw-analyze-selftest")
        fi
        if ! run python3 "$repo/tools/analysis/msw_analyze.py" \
                --root "$repo" --build "$repo/build-check"; then
            failures+=("msw-analyze")
        fi
    else
        echo "python3 not found; skipping the msw-analyze stage."
    fi
fi

echo
if [ "${#failures[@]}" -gt 0 ]; then
    echo "check.sh: FAILED configurations: ${failures[*]}" >&2
    exit 1
fi
echo "check.sh: all configurations passed."
