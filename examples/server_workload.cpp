/**
 * @file
 * A multithreaded "server" on MineSweeper: the production deployment the
 * paper targets (long-running, allocation-heavy, latency-conscious).
 *
 * Four worker threads handle "requests": each allocates a session, a
 * parse buffer and a response, links them (real pointers in the heap),
 * does some work, and retires sessions out of order. A shared
 * session table is registered as a root; workers register as mutator
 * threads so their stacks are scanned and they participate in
 * stop-the-world phases (this example runs the mostly-concurrent mode to
 * exercise them).
 *
 *   $ ./server_workload [requests-per-worker]
 */
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "core/minesweeper.h"
#include "metrics/metrics.h"
#include "util/rng.h"

namespace {

struct Session {
    std::uint64_t id;
    char* parse_buffer;
    char* response;
    Session* next_in_table;  // intrusive chain: heap-internal pointers
};

constexpr int kWorkers = 4;
constexpr std::size_t kTableSlots = 512;

/** Shared session table — a root range the sweeps scan. */
Session* g_table[kTableSlots];
msw::SpinLock g_table_lock;

void
worker(msw::core::MineSweeper& ms, int index, std::uint64_t requests,
       std::atomic<std::uint64_t>& served)
{
    ms.register_mutator_thread();
    msw::Rng rng(9000 + index);

    for (std::uint64_t r = 0; r < requests; ++r) {
        // Parse an incoming request. Under memory pressure alloc()
        // returns nullptr (it never aborts): a real server sheds the
        // request and keeps serving.
        auto* session = static_cast<Session*>(ms.alloc(sizeof(Session)));
        if (session == nullptr)
            continue;
        session->id = (static_cast<std::uint64_t>(index) << 32) | r;
        const std::size_t parse_size = 64 + rng.next_below(1500);
        session->parse_buffer = static_cast<char*>(ms.alloc(parse_size));
        if (session->parse_buffer == nullptr) {
            ms.free(session);
            continue;
        }
        std::memset(session->parse_buffer, 'q', parse_size);

        // Produce a response.
        const std::size_t resp_size = 128 + rng.next_below(4000);
        session->response = static_cast<char*>(ms.alloc(resp_size));
        if (session->response == nullptr) {
            ms.free(session->parse_buffer);
            ms.free(session);
            continue;
        }
        std::snprintf(session->response, resp_size,
                      "HTTP/1.1 200 OK\r\ncontent-length: %zu\r\n\r\n",
                      parse_size);

        // Publish into the shared table, chaining collisions.
        const std::size_t slot = session->id % kTableSlots;
        {
            std::lock_guard<msw::SpinLock> g(g_table_lock);
            session->next_in_table = g_table[slot];
            g_table[slot] = session;
        }

        // Occasionally retire a whole chain (sessions die out of order,
        // possibly freed by a different thread than allocated them).
        if (rng.next_bool(0.3)) {
            Session* chain = nullptr;
            const std::size_t victim = rng.next_below(kTableSlots);
            {
                std::lock_guard<msw::SpinLock> g(g_table_lock);
                chain = g_table[victim];
                g_table[victim] = nullptr;
            }
            while (chain != nullptr) {
                Session* next = chain->next_in_table;
                ms.free(chain->parse_buffer);
                ms.free(chain->response);
                ms.free(chain);
                chain = next;
            }
        }
        served.fetch_add(1, std::memory_order_relaxed);
    }
    ms.unregister_mutator_thread();
}

}  // namespace

int
main(int argc, char** argv)
{
    const std::uint64_t requests =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;

    msw::core::Options options;
    options.mode = msw::core::Mode::kMostlyConcurrent;
    options.min_sweep_bytes = 256 * 1024;
    msw::core::MineSweeper ms(options);
    ms.add_root(g_table, sizeof(g_table));

    std::printf("serving %llu requests on %d workers "
                "(mostly-concurrent MineSweeper)...\n",
                static_cast<unsigned long long>(requests), kWorkers);

    const double t0 = msw::metrics::wall_seconds();
    std::atomic<std::uint64_t> served{0};
    std::vector<std::thread> workers;
    for (int i = 0; i < kWorkers; ++i)
        workers.emplace_back(
            [&, i] { worker(ms, i, requests / kWorkers, served); });
    for (auto& t : workers)
        t.join();
    const double elapsed = msw::metrics::wall_seconds() - t0;

    // Drain the table on shutdown.
    for (auto& slot : g_table) {
        while (slot != nullptr) {
            Session* next = slot->next_in_table;
            ms.free(slot->parse_buffer);
            ms.free(slot->response);
            ms.free(slot);
            slot = next;
        }
    }
    ms.flush();

    const auto stats = ms.stats();
    const auto sweep_stats = ms.sweep_stats();
    std::printf("served %llu requests in %.2fs (%.0f req/s)\n",
                static_cast<unsigned long long>(served.load()), elapsed,
                served.load() / elapsed);
    std::printf("sweeps: %llu | stop-the-world total: %.2f ms | "
                "failed frees: %llu | quarantine now: %.1f MiB\n",
                static_cast<unsigned long long>(sweep_stats.sweeps),
                sweep_stats.stw_ns / 1e6,
                static_cast<unsigned long long>(sweep_stats.failed_frees),
                stats.quarantine_bytes / (1024.0 * 1024.0));
    std::printf("no session was ever reallocated while referenced — "
                "use-after-free cannot become use-after-reallocate\n");
    return 0;
}
