/**
 * @file
 * Run one benchmark profile against all four systems and compare — a
 * miniature of the paper's evaluation loop, built on the public workload
 * API.
 *
 *   $ ./compare_systems [profile-name] [scale]
 *   $ ./compare_systems xalancbmk 0.3
 */
#include <cstdio>
#include <cstdlib>

#include "metrics/metrics.h"
#include "workload/runner.h"
#include "workload/spec_profiles.h"

int
main(int argc, char** argv)
{
    const char* name = argc > 1 ? argv[1] : "omnetpp";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.3;

    const msw::workload::Profile profile =
        msw::workload::spec_profile(name, scale);
    std::printf("profile %s: %llu ticks x %u allocs/tick, %u thread(s)\n\n",
                profile.name.c_str(),
                static_cast<unsigned long long>(profile.ticks),
                profile.allocs_per_tick, profile.threads);

    msw::metrics::Table table({"system", "wall s", "cpu s", "avg MiB",
                               "peak MiB", "sweeps"});
    double base_wall = 0;
    for (const auto kind : {msw::workload::SystemKind::kBaseline,
                            msw::workload::SystemKind::kMineSweeper,
                            msw::workload::SystemKind::kMineSweeperMostly,
                            msw::workload::SystemKind::kMarkUs,
                            msw::workload::SystemKind::kFFMalloc}) {
        const auto rec = msw::workload::measure_profile(kind, profile);
        if (kind == msw::workload::SystemKind::kBaseline)
            base_wall = rec.wall_s;
        table.add_row({msw::workload::system_kind_name(kind),
                       msw::metrics::fmt_seconds(rec.wall_s),
                       msw::metrics::fmt_seconds(rec.cpu_s),
                       msw::metrics::fmt_mib(rec.avg_rss),
                       msw::metrics::fmt_mib(rec.peak_rss),
                       std::to_string(rec.sweeps)});
    }
    table.print();
    if (base_wall > 0)
        std::printf("\n(ratios vs the first row give the paper's "
                    "slowdown figures)\n");
    return 0;
}
