/**
 * @file
 * Quickstart: MineSweeper as a library allocator.
 *
 * Shows the core API: construct, allocate, free (which quarantines),
 * register roots and mutator threads, observe quarantine state and sweep
 * statistics, and see the use-after-free guarantee in action.
 *
 *   $ ./quickstart
 */
#include <cstdio>
#include <cstring>

#include "core/minesweeper.h"

int
main()
{
    // 1. Construct. Options default to the paper's configuration:
    //    fully concurrent sweeping, 15 % sweep threshold, zeroing,
    //    large-allocation unmapping, post-sweep purging, 6 helpers.
    msw::core::Options options;
    options.min_sweep_bytes = 64 * 1024;  // small demo heap
    msw::core::MineSweeper ms(options);

    // 2. Register the "program's" pointer locations. In the LD_PRELOAD
    //    deployment this is automatic (globals + stacks); as a library
    //    you register the ranges that hold your pointers.
    static void* global_pointers[8];
    ms.add_root(global_pointers, sizeof(global_pointers));

    // 3. Allocate and use memory exactly as with malloc/free.
    char* message = static_cast<char*>(ms.alloc(64));
    if (message == nullptr)  // nullptr under memory pressure, like malloc
        return 1;
    std::snprintf(message, 64, "hello from the quarantined heap");
    std::printf("allocated: %s\n", message);

    // 4. Keep a pointer around, then free the object — the classic
    //    use-after-free setup.
    global_pointers[0] = message;
    ms.free(message);

    std::printf("after free: in_quarantine=%d (pointer still exists)\n",
                ms.in_quarantine(message));

    // 5. Sweeps cannot release it while the dangling pointer remains.
    ms.force_sweep();
    std::printf("after sweep: in_quarantine=%d (pinned by root slot)\n",
                ms.in_quarantine(message));

    // 6. The memory was zero-filled on free: a benign use-after-free read
    //    sees zeros, never another object's data.
    std::printf("freed contents now: '%.10s' (zeroed)\n", message);

    // 7. Once the program drops the pointer, the next sweep recycles it.
    global_pointers[0] = nullptr;
    ms.force_sweep();
    std::printf("after pointer cleared: in_quarantine=%d (released)\n",
                ms.in_quarantine(message));

    // 8. Statistics.
    const auto stats = ms.stats();
    const auto sweep_stats = ms.sweep_stats();
    std::printf("\nstats: %llu allocs, %llu frees, %llu sweeps, "
                "%llu bytes scanned, %llu double frees\n",
                static_cast<unsigned long long>(stats.alloc_calls),
                static_cast<unsigned long long>(stats.free_calls),
                static_cast<unsigned long long>(sweep_stats.sweeps),
                static_cast<unsigned long long>(sweep_stats.bytes_scanned),
                static_cast<unsigned long long>(sweep_stats.double_frees));
    std::printf("quickstart complete\n");
    return 0;
}
