/**
 * @file
 * Figure 13 — fully concurrent vs mostly concurrent (stop-the-world)
 * MineSweeper.
 *
 * Paper result: the mostly concurrent version (which adds a brief
 * stop-the-world recheck of pages dirtied during marking, matching
 * MarkUs's guarantees) costs 8.2 % geomean vs 5.4 % fully concurrent,
 * at similar memory overhead (11.7 % vs 11.1 %).
 */
#include "bench/bench_common.h"

int
main()
{
    using namespace msw::bench;
    std::printf("== Fig 13: fully vs mostly concurrent sweeping ==\n");
    std::printf("paper: fully 1.054x, mostly 1.082x (memory 1.111x vs "
                "1.117x)\n");

    const auto profiles =
        msw::workload::spec2006_profiles(effective_scale(0.5));
    const std::vector<SystemColumn> systems = {
        {"baseline", SystemKind::kBaseline, {}},
        {"fully", SystemKind::kMineSweeper, {}},
        {"mostly", SystemKind::kMineSweeperMostly, {}},
    };
    const auto rows = run_suite(profiles, systems);
    const auto geo_time = print_ratio_table("Slowdown", rows, systems,
                                            "baseline", metric_wall);
    const auto geo_mem =
        print_ratio_table("Average memory overhead", rows, systems,
                          "baseline", metric_avg_rss);

    std::printf("\nreproduced: fully %.3fx time / %.3fx mem; mostly %.3fx "
                "time / %.3fx mem\n",
                geo_time.at("fully"), geo_mem.at("fully"),
                geo_time.at("mostly"), geo_mem.at("mostly"));
    return 0;
}
