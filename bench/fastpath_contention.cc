/**
 * @file
 * Fast-path statistics contention benchmark.
 *
 * Motivates the StatCells layer: the alloc/free fast path increments
 * bookkeeping counters on every call, and with one shared cache line a
 * malloc-heavy multi-threaded program serialises on counter traffic that
 * has nothing to do with allocation itself. Three measurements:
 *
 *   1. counter layers head-to-head — threads hammering a single shared
 *      std::atomic (the pre-refactor design) vs StatCells' striped
 *      cache-line-padded shards;
 *   2. end-to-end MineSweeper alloc/free throughput across thread counts
 *      (counter cost embedded in the real fast path);
 *   3. aggregation-read cost, since striping moves work to read().
 *
 * Emits BENCH_fastpath.json alongside the human-readable table so CI can
 * track the numbers.
 */
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/minesweeper.h"
#include "core/stat_cells.h"
#include "core/sweep_controller.h"
#include "metrics/metrics.h"

namespace {

using msw::core::MineSweeper;
using msw::core::monotonic_ns;
using msw::core::Stat;
using msw::core::StatCells;

constexpr std::uint64_t kOpsPerThread = 2'000'000;

double
mops(std::uint64_t total_ops, std::uint64_t ns)
{
    return ns == 0 ? 0.0
                   : static_cast<double>(total_ops) * 1000.0 /
                         static_cast<double>(ns);
}

template <typename Body>
std::uint64_t
run_threads(unsigned nthreads, Body&& body)
{
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < nthreads; ++t) {
        threads.emplace_back([&go, &body, t] {
            while (!go.load(std::memory_order_acquire))
                std::this_thread::yield();
            body(t);
        });
    }
    const std::uint64_t t0 = monotonic_ns();
    go.store(true, std::memory_order_release);
    for (auto& t : threads)
        t.join();
    return monotonic_ns() - t0;
}

double
bench_shared_atomic(unsigned nthreads)
{
    alignas(64) static std::atomic<std::uint64_t> counter{0};
    counter.store(0);
    const std::uint64_t ns = run_threads(nthreads, [](unsigned) {
        for (std::uint64_t i = 0; i < kOpsPerThread; ++i)
            counter.fetch_add(1, std::memory_order_relaxed);
    });
    return mops(kOpsPerThread * nthreads, ns);
}

double
bench_stat_cells(unsigned nthreads)
{
    static StatCells cells;
    const std::uint64_t ns = run_threads(nthreads, [](unsigned) {
        for (std::uint64_t i = 0; i < kOpsPerThread; ++i)
            cells.add(Stat::kAllocCalls);
    });
    return mops(kOpsPerThread * nthreads, ns);
}

double
bench_minesweeper_allocfree(MineSweeper* msw, unsigned nthreads)
{
    constexpr std::uint64_t kAllocOps = 200'000;
    const std::uint64_t ns = run_threads(nthreads, [msw](unsigned t) {
        // Mixed small sizes, immediately freed: the quarantine absorbs
        // them, so this stresses the alloc/free fast path including its
        // counter traffic, not the sweep.
        const std::size_t sizes[4] = {16, 48, 96, 256};
        for (std::uint64_t i = 0; i < kAllocOps; ++i) {
            void* p = msw->alloc(sizes[(i + t) & 3]);
            if (p != nullptr)
                msw->free(p);
        }
    });
    return mops(kAllocOps * nthreads, ns);
}

double
bench_read_cost()
{
    StatCells cells;
    cells.add(Stat::kAllocCalls, 7);
    constexpr std::uint64_t kReads = 2'000'000;
    std::uint64_t sink = 0;
    const std::uint64_t t0 = monotonic_ns();
    for (std::uint64_t i = 0; i < kReads; ++i)
        sink += cells.read(Stat::kAllocCalls);
    const std::uint64_t ns = monotonic_ns() - t0;
    if (sink == 0)
        std::fprintf(stderr, "unreachable\n");
    return mops(kReads, ns);
}

}  // namespace

int
main()
{
    const unsigned hw = std::thread::hardware_concurrency();
    std::vector<unsigned> thread_counts = {1, 2, 4};
    if (hw > 4)
        thread_counts.push_back(hw > 16 ? 16 : hw);

    std::printf("fastpath contention (Mops/s, higher is better)\n");
    msw::metrics::Table table(
        {"threads", "shared-atomic", "stat-cells", "speedup",
         "msw-allocfree"});

    FILE* json = std::fopen("BENCH_fastpath.json", "w");
    if (json != nullptr) {
        std::fprintf(json, "{\n");
        msw::bench::json_stamp(json);
        std::fprintf(json, "  \"read_mops\": %.2f,\n  \"rows\": [\n",
                     bench_read_cost());
    }

    bool first = true;
    for (unsigned n : thread_counts) {
        const double shared = bench_shared_atomic(n);
        const double striped = bench_stat_cells(n);
        // Fresh instance per thread count so quarantine state from one
        // row cannot slow the next.
        MineSweeper msw;
        const double e2e = bench_minesweeper_allocfree(&msw, n);
        char shared_s[32], striped_s[32], speedup_s[32], e2e_s[32];
        std::snprintf(shared_s, sizeof shared_s, "%.1f", shared);
        std::snprintf(striped_s, sizeof striped_s, "%.1f", striped);
        std::snprintf(speedup_s, sizeof speedup_s, "%.2fx",
                      striped / shared);
        std::snprintf(e2e_s, sizeof e2e_s, "%.2f", e2e);
        table.add_row({std::to_string(n), shared_s, striped_s, speedup_s,
                       e2e_s});
        if (json != nullptr) {
            std::fprintf(json,
                         "    %s{\"threads\": %u, \"shared_atomic_mops\": "
                         "%.2f, \"stat_cells_mops\": %.2f, "
                         "\"msw_allocfree_mops\": %.2f}",
                         first ? "" : ",\n    ", n, shared, striped, e2e);
            first = false;
        }
    }
    table.print();

    if (json != nullptr) {
        std::fprintf(json, "\n  ]\n}\n");
        std::fclose(json);
        std::printf("\nwrote BENCH_fastpath.json\n");
    }
    return 0;
}
