/**
 * @file
 * Figure 14 — number of sweeps triggered per benchmark (fully concurrent
 * version).
 *
 * Paper result: omnetpp triggers the most sweeps (1075), xalancbmk 654
 * (almost all close together near the end of the run); allocation-light
 * benchmarks trigger few or none. Sweep count does not correlate
 * perfectly with slowdown — sweeping is not the only overhead (§5.5).
 */
#include "bench/bench_common.h"

int
main()
{
    using namespace msw::bench;
    std::printf("== Fig 14: sweeps triggered per benchmark ==\n");
    std::printf("paper: omnetpp 1075, xalancbmk 654 (mostly in the "
                "end-of-run churn), compute-bound benchmarks ~0\n\n");

    const auto profiles =
        msw::workload::spec2006_profiles(effective_scale(0.5));

    msw::metrics::Table table({"benchmark", "sweeps", "allocs", "frees"});
    std::uint64_t max_sweeps = 0;
    std::string max_bench;
    for (const Profile& p : profiles) {
        std::fprintf(stderr, "  [%s]...\n", p.name.c_str());
        const RunRecord rec =
            msw::workload::measure_profile(SystemKind::kMineSweeper, p);
        if (rec.sweeps > max_sweeps) {
            max_sweeps = rec.sweeps;
            max_bench = p.name;
        }
        table.add_row({p.name, std::to_string(rec.sweeps),
                       std::to_string(rec.allocs),
                       std::to_string(rec.frees)});
    }
    table.print();
    std::printf("\nmost sweeps: %s (%llu) — paper: omnetpp, with "
                "xalancbmk second\n",
                max_bench.c_str(),
                static_cast<unsigned long long>(max_sweeps));
    return 0;
}
