/**
 * @file
 * Figure 17 — where MineSweeper's overheads come from (§5.5).
 *
 * Six partial versions, each adding one mechanism, over the five most
 * affected benchmarks (dealII, gcc, omnetpp, perlbench, xalancbmk):
 *  (1) base:        library loaded, free() forwards to the allocator;
 *  (2) unmap+zero:  free() zeroes / unmap-remaps, then forwards;
 *  (3) quarantine:  frees quarantined; trigger releases all (no sweep);
 *  (4) concurrency: same, but releases on the sweeper thread;
 *  (5) sweep:       full marking, but failed frees released anyway;
 *  (6) full:        failed frees stay in quarantine.
 *
 * Paper result: base costs ~1 % time; unmap+zero 5.8 % time and *saves*
 * memory; quarantining adds the bulk of the time cost (delay-of-reuse →
 * cache misses) and 14.8 % memory; sweep/failed-frees add the remaining
 * memory, reaching 39.4 % on these five benchmarks.
 */
#include "bench/bench_common.h"

namespace {

std::vector<msw::bench::SystemColumn>
partial_columns()
{
    using msw::bench::SystemColumn;
    using msw::bench::SystemKind;
    using msw::core::Mode;
    using msw::core::Options;

    Options base;
    base.quarantine_enabled = false;
    base.zeroing = false;
    base.unmapping = false;
    base.purging = false;
    base.mode = Mode::kSynchronous;
    base.helper_threads = 0;

    Options unmapzero = base;
    unmapzero.zeroing = true;
    unmapzero.unmapping = true;

    Options quarantine = unmapzero;
    quarantine.quarantine_enabled = true;
    quarantine.sweep_enabled = false;

    Options concurrency = quarantine;
    concurrency.mode = Mode::kFullyConcurrent;
    concurrency.helper_threads = 6;

    Options sweep = concurrency;
    sweep.sweep_enabled = true;
    sweep.keep_failed = false;

    Options full = sweep;
    full.keep_failed = true;
    full.purging = true;

    return {
        {"jade", SystemKind::kBaseline, {}},
        {"base", SystemKind::kMineSweeper, base},
        {"+unmap+zero", SystemKind::kMineSweeper, unmapzero},
        {"+quarantine", SystemKind::kMineSweeper, quarantine},
        {"+concurrency", SystemKind::kMineSweeper, concurrency},
        {"+sweep", SystemKind::kMineSweeper, sweep},
        {"+failed-frees", SystemKind::kMineSweeper, full},
    };
}

}  // namespace

int
main()
{
    using namespace msw::bench;
    std::printf("== Fig 17: sources of overhead (partial versions, five "
                "most-affected benchmarks) ==\n");
    std::printf("paper: base ~1%% time; +unmap+zero 5.8%% time / -2.7%% "
                "mem; +quarantine 17.9%% / +14.8%%; full reaches +39.4%% "
                "mem on these five\n");

    std::vector<Profile> profiles;
    for (const char* name :
         {"dealII", "gcc", "omnetpp", "perlbench", "xalancbmk"}) {
        profiles.push_back(
            msw::workload::spec_profile(name, effective_scale(0.3)));
    }
    const auto systems = partial_columns();
    const auto rows = run_suite(profiles, systems, /*timeout_s=*/240);

    const auto geo_time = print_ratio_table("Time overhead (Fig 17a)",
                                            rows, systems, "jade",
                                            metric_wall);
    const auto geo_mem =
        print_ratio_table("Memory overhead (Fig 17b)", rows, systems,
                          "jade", metric_avg_rss);

    std::printf("\nreproduced geomeans (time | memory):\n");
    for (const auto& sys : systems) {
        if (sys.label != "jade")
            std::printf("  %-14s %.3fx | %.3fx\n", sys.label.c_str(),
                        geo_time.at(sys.label), geo_mem.at(sys.label));
    }
    return 0;
}
