/**
 * @file
 * Figure 19 — mimalloc-bench stress tests (§5.7).
 *
 * Paper result (geomeans vs jemalloc baseline): MineSweeper 2.7x time /
 * 4.0x memory (worst 31x / 27x); MarkUs 6.7x time (worst 121x) / 1.7x
 * memory; FFMalloc 2.16x time / 7.2x memory (97x worst — though kernels
 * that free in allocation order, like sh6/sh8bench and xmalloc-test, are
 * kind to it). These kernels do nothing but allocate and free, violating
 * the assumption that sweeps can keep up in the background; MineSweeper's
 * allocation pausing keeps its worst case bounded.
 */
#include "bench/bench_common.h"

#include "workload/mimalloc_kernels.h"

int
main()
{
    using namespace msw::bench;
    std::printf("== Fig 19: mimalloc-bench stress kernels ==\n");
    std::printf("paper geomeans: minesweeper 2.7x time / 4.0x mem; "
                "markus 6.7x time / 1.7x mem; ffmalloc 2.16x time / "
                "7.2x mem\n");

    const double scale = effective_scale(0.3);
    const auto kernels = msw::workload::mimalloc_kernels();
    const auto systems = paper_systems();

    std::vector<Row> rows;
    for (const auto& kernel : kernels) {
        Row row;
        row.bench = kernel.name;
        for (const auto& sys : systems) {
            std::fprintf(stderr, "  [%s / %s]...", kernel.name.c_str(),
                         sys.label.c_str());
            std::fflush(stderr);
            msw::workload::MeasureOptions mo;
            mo.timeout_s = 240;
            const RunRecord rec = msw::workload::measure(
                sys.kind,
                [&](msw::workload::System& s) {
                    return kernel.run(s, scale);
                },
                sys.msw_options, mo);
            std::fprintf(stderr, " %s %.2fs\n", rec.ok ? "ok" : "FAILED",
                         rec.wall_s);
            row.runs[sys.label] = rec;
        }
        rows.push_back(std::move(row));
    }

    const auto geo_time = print_ratio_table("Slowdown (Fig 19a)", rows,
                                            systems, "baseline",
                                            metric_wall);
    const auto geo_mem =
        print_ratio_table("Average memory overhead (Fig 19b)", rows,
                          systems, "baseline", metric_avg_rss);

    std::printf("\nreproduced: minesweeper %.3fx time / %.3fx mem; "
                "markus %.3fx / %.3fx; ffmalloc %.3fx / %.3fx\n",
                geo_time.at("minesweeper"), geo_mem.at("minesweeper"),
                geo_time.at("markus"), geo_mem.at("markus"),
                geo_time.at("ffmalloc"), geo_mem.at("ffmalloc"));
    return 0;
}
