/**
 * @file
 * Figure 16 — average memory overhead by optimisation level (§5.4).
 *
 * Paper result: unoptimised exhausts memory on gcc/milc (cycles and
 * fragmentation keep the quarantine from draining); zeroing recovers
 * most reclaimable memory; unmapping cuts the geomean to 1.211x;
 * concurrency *costs* memory (1.241x — recycling is delayed relative to
 * the application); the post-sweep purge brings it down to 1.111x.
 */
#include "bench/bench_common.h"

namespace {

std::vector<msw::bench::SystemColumn>
ablation_columns()
{
    using msw::bench::SystemColumn;
    using msw::bench::SystemKind;
    using msw::core::Mode;
    using msw::core::Options;

    Options unopt;
    unopt.mode = Mode::kSynchronous;
    unopt.helper_threads = 0;
    unopt.zeroing = false;
    unopt.unmapping = false;
    unopt.purging = false;

    Options zero = unopt;
    zero.zeroing = true;

    Options unmap = zero;
    unmap.unmapping = true;

    Options conc = unmap;
    conc.mode = Mode::kFullyConcurrent;
    conc.helper_threads = 6;

    Options purge = conc;
    purge.purging = true;

    return {
        {"baseline", SystemKind::kBaseline, {}},
        {"unoptimised", SystemKind::kMineSweeper, unopt},
        {"+zeroing", SystemKind::kMineSweeper, zero},
        {"+unmapping", SystemKind::kMineSweeper, unmap},
        {"+concurrency", SystemKind::kMineSweeper, conc},
        {"+purging", SystemKind::kMineSweeper, purge},
    };
}

}  // namespace

int
main()
{
    using namespace msw::bench;
    std::printf("== Fig 16: average memory overhead by optimisation "
                "level ==\n");
    std::printf("paper geomeans: +zeroing still heavy -> +unmapping "
                "1.211x -> +concurrency 1.241x (worse!) -> "
                "+purging 1.111x\n");

    const auto profiles =
        msw::workload::spec2006_profiles(effective_scale(0.3));
    const auto systems = ablation_columns();
    const auto rows = run_suite(profiles, systems, /*timeout_s=*/240);
    const auto geo = print_ratio_table(
        "Average memory overhead by optimisation level", rows, systems,
        "baseline", metric_avg_rss);

    std::printf("\nreproduced geomeans:");
    for (const auto& sys : systems) {
        if (sys.label != "baseline")
            std::printf(" %s %.3fx", sys.label.c_str(),
                        geo.at(sys.label));
    }
    std::printf("\n");
    return 0;
}
