/**
 * @file
 * Figure 15 — run-time overhead as optimisations are applied one-by-one
 * (§5.4): Unoptimised → +Zeroing → +Unmapping → +Concurrency → +Purging.
 *
 * Paper result: the unoptimised version is very slow on allocation-heavy
 * benchmarks (gcc/milc exhaust memory); zeroing and unmapping recover
 * memory (helping time via reduced metadata pressure); concurrency cuts
 * time from 9.5 % to 5.0 %; purging trades a little time (5.4 %) for a
 * large memory win.
 */
#include "bench/bench_common.h"

namespace {

std::vector<msw::bench::SystemColumn>
ablation_columns()
{
    using msw::bench::SystemColumn;
    using msw::bench::SystemKind;
    using msw::core::Mode;
    using msw::core::Options;

    Options unopt;
    unopt.mode = Mode::kSynchronous;
    unopt.helper_threads = 0;
    unopt.zeroing = false;
    unopt.unmapping = false;
    unopt.purging = false;

    Options zero = unopt;
    zero.zeroing = true;

    Options unmap = zero;
    unmap.unmapping = true;

    Options conc = unmap;
    conc.mode = Mode::kFullyConcurrent;
    conc.helper_threads = 6;

    Options purge = conc;  // the full system
    purge.purging = true;

    return {
        {"baseline", SystemKind::kBaseline, {}},
        {"unoptimised", SystemKind::kMineSweeper, unopt},
        {"+zeroing", SystemKind::kMineSweeper, zero},
        {"+unmapping", SystemKind::kMineSweeper, unmap},
        {"+concurrency", SystemKind::kMineSweeper, conc},
        {"+purging", SystemKind::kMineSweeper, purge},
    };
}

}  // namespace

int
main()
{
    using namespace msw::bench;
    std::printf("== Fig 15: run-time overhead by optimisation level ==\n");
    std::printf("paper geomeans: unoptimised worst (gcc/milc OOM) -> "
                "+unmapping 1.095x -> +concurrency 1.050x -> "
                "+purging 1.054x\n");

    const auto profiles =
        msw::workload::spec2006_profiles(effective_scale(0.3));
    const auto systems = ablation_columns();
    const auto rows = run_suite(profiles, systems, /*timeout_s=*/240);
    const auto geo = print_ratio_table("Slowdown by optimisation level",
                                       rows, systems, "baseline",
                                       metric_wall);

    std::printf("\nreproduced geomeans:");
    for (const auto& sys : systems) {
        if (sys.label != "baseline")
            std::printf(" %s %.3fx", sys.label.c_str(),
                        geo.at(sys.label));
    }
    std::printf("\n");
    return 0;
}
