/**
 * @file
 * Figure 12 — additional CPU utilisation from background sweeping.
 *
 * Paper result: 9.6 % geomean extra CPU usage (worst xalancbmk at 2.29x):
 * the sweeper and its helpers burn cycles on another core. The paper also
 * notes (§5.2 "DRAM traffic") that sweep memory traffic is insignificant
 * next to the application's; we report the sweep-scanned bytes alongside.
 */
#include "bench/bench_common.h"

int
main()
{
    using namespace msw::bench;
    std::printf("== Fig 12: additional CPU utilisation "
                "(process CPU time vs baseline) ==\n");
    std::printf("paper: geomean 1.096x, worst xalancbmk 2.29x\n");

    const auto profiles =
        msw::workload::spec2006_profiles(effective_scale(0.5));
    const std::vector<SystemColumn> systems = {
        {"baseline", SystemKind::kBaseline, {}},
        {"minesweeper", SystemKind::kMineSweeper, {}},
    };
    const auto rows = run_suite(profiles, systems);
    const auto geo = print_ratio_table("CPU utilisation overhead", rows,
                                       systems, "baseline", metric_cpu);

    std::printf("\nreproduced geomean CPU overhead: %.3fx\n",
                geo.at("minesweeper"));
    std::printf("(§5.2 DRAM-traffic note: sweeps are infrequent; see "
                "fig14 for sweep counts and scanned bytes)\n");
    return 0;
}
