/**
 * @file
 * Figure 18 — SPECspeed2017 time and memory (starred benchmarks run
 * multi-threaded, as the paper's OpenMP builds).
 *
 * Paper result: MineSweeper 10.8 % geomean slowdown / 7.9 % memory;
 * FFMalloc 5.3 % / 22.2 %; MarkUs 16.3 % / 12.6 %. Worst MineSweeper
 * slowdown: 2x on xalancbmk (quarantine-induced cache misses); slowest
 * parallel benchmark wrf at 66 %. FFMalloc's perlbench grows to 4x
 * memory by the end of its run.
 */
#include "bench/bench_common.h"

int
main()
{
    using namespace msw::bench;
    std::printf("== Fig 18: SPECspeed2017 (starred = 4 threads) ==\n");
    std::printf("paper: minesweeper 1.108x time / 1.079x mem; ffmalloc "
                "1.053x / 1.222x; markus 1.163x / 1.126x\n");

    const auto profiles =
        msw::workload::spec2017_profiles(effective_scale(0.5));
    const auto systems = paper_systems();
    const auto rows = run_suite(profiles, systems, /*timeout_s=*/300);

    const auto geo_time = print_ratio_table("Slowdown (Fig 18a)", rows,
                                            systems, "baseline",
                                            metric_wall);
    const auto geo_mem =
        print_ratio_table("Average memory overhead (Fig 18b)", rows,
                          systems, "baseline", metric_avg_rss);

    std::printf("\nreproduced: minesweeper %.3fx time / %.3fx mem; "
                "ffmalloc %.3fx / %.3fx; markus %.3fx / %.3fx\n",
                geo_time.at("minesweeper"), geo_mem.at("minesweeper"),
                geo_time.at("ffmalloc"), geo_mem.at("ffmalloc"),
                geo_time.at("markus"), geo_mem.at("markus"));
    return 0;
}
