/**
 * @file
 * Figure 8 — RSS over time for sphinx3.
 *
 * Paper result: the baseline and MineSweeper hold a roughly constant
 * footprint over the run, while FFMalloc's RSS climbs monotonically —
 * fragmentation from never reusing virtual addresses means physical pages
 * pinned by long-lived objects accumulate.
 */
#include <algorithm>

#include "bench/bench_common.h"

namespace {

/** RSS (MiB) at a normalised time fraction, by nearest sample. */
double
rss_at(const msw::bench::RunRecord& rec, double fraction)
{
    if (rec.rss_series.empty())
        return 0;
    const double t = rec.wall_s * fraction;
    const auto it = std::min_element(
        rec.rss_series.begin(), rec.rss_series.end(),
        [&](const auto& a, const auto& b) {
            return std::abs(a.first - t) < std::abs(b.first - t);
        });
    return static_cast<double>(it->second) / (1 << 20);
}

}  // namespace

int
main()
{
    using namespace msw::bench;
    std::printf("== Fig 8: memory usage over time, sphinx3 ==\n");
    std::printf("paper: baseline/minesweeper flat; ffmalloc grows "
                "monotonically to several times the baseline\n\n");

    const Profile profile =
        msw::workload::spec_profile("sphinx3", effective_scale(1.0));
    const std::vector<SystemColumn> systems = {
        {"baseline", SystemKind::kBaseline, {}},
        {"ffmalloc", SystemKind::kFFMalloc, {}},
        {"minesweeper", SystemKind::kMineSweeper, {}},
    };

    std::map<std::string, RunRecord> runs;
    for (const auto& sys : systems) {
        std::fprintf(stderr, "  [sphinx3 / %s]...\n", sys.label.c_str());
        runs[sys.label] = msw::workload::measure_profile(
            sys.kind, profile, sys.msw_options);
    }

    msw::metrics::Table table(
        {"time%", "baseline MiB", "ffmalloc MiB", "minesweeper MiB"});
    for (int pct = 0; pct <= 100; pct += 10) {
        const double f = pct / 100.0;
        table.add_row({std::to_string(pct),
                       msw::metrics::fmt_seconds(rss_at(runs["baseline"], f)),
                       msw::metrics::fmt_seconds(rss_at(runs["ffmalloc"], f)),
                       msw::metrics::fmt_seconds(
                           rss_at(runs["minesweeper"], f))});
    }
    table.print();

    // Shape checks: FFMalloc end-vs-start growth exceeds the others'.
    const double ff_growth =
        rss_at(runs["ffmalloc"], 1.0) / std::max(1.0, rss_at(runs["ffmalloc"], 0.2));
    const double msw_growth =
        rss_at(runs["minesweeper"], 1.0) /
        std::max(1.0, rss_at(runs["minesweeper"], 0.2));
    std::printf("\ngrowth late/early: ffmalloc %.2fx, minesweeper %.2fx "
                "(paper: ffmalloc grows, minesweeper flat)\n",
                ff_growth, msw_growth);
    return 0;
}
