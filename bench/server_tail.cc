/**
 * @file
 * Server tail-latency benchmark (ROADMAP open item 3).
 *
 * Runs the long-running request/response workload (workload/server.h)
 * against all four runtimes and reports the *distribution* of
 * per-operation latency — p50/p90/p99/p999/max — alongside the sweep
 * pause breakdown (backpressure pauses, STW windows, per-phase totals).
 * Batch benchmarks answer "how much slower"; this one answers "where do
 * the pauses land", which is the question a latency-sensitive service
 * asks of a drop-in UAF mitigation.
 *
 * Output: a ratio table on stdout plus BENCH_server_tail.json with the
 * full percentile set for every system (CI validates the keys).
 *
 * Knobs: MSW_BENCH_SCALE scales the op count; MSW_BENCH_SECONDS=<s>
 * switches to duration mode (used by the CI smoke stage).
 */
#include <cstdlib>

#include "bench/bench_common.h"
#include "workload/server.h"

namespace {

using namespace msw;
using bench::RunRecord;
using bench::SystemColumn;

void
json_latency(std::FILE* f, const char* key,
             const metrics::LatencySummary& s, const char* trailer)
{
    std::fprintf(f,
                 "      \"%s\": {\"count\": %llu, \"mean_ns\": %.1f, "
                 "\"p50_ns\": %llu, \"p90_ns\": %llu, \"p99_ns\": %llu, "
                 "\"p999_ns\": %llu, \"max_ns\": %llu}%s\n",
                 key, static_cast<unsigned long long>(s.count), s.mean_ns,
                 static_cast<unsigned long long>(s.p50_ns),
                 static_cast<unsigned long long>(s.p90_ns),
                 static_cast<unsigned long long>(s.p99_ns),
                 static_cast<unsigned long long>(s.p999_ns),
                 static_cast<unsigned long long>(s.max_ns), trailer);
}

}  // namespace

int
main()
{
    const double scale = bench::effective_scale(1.0);

    workload::ServerOptions so;
    so.threads = 4;
    so.ops_per_thread =
        static_cast<std::uint64_t>(1'000'000 * scale);
    if (const char* env = std::getenv("MSW_BENCH_SECONDS")) {
        const double secs = std::atof(env);
        if (secs > 0)
            so.duration_s = secs;
    }

    const std::vector<SystemColumn> systems = bench::paper_systems();
    std::map<std::string, RunRecord> runs;
    for (const SystemColumn& sys : systems) {
        std::fprintf(stderr, "  [server_tail / %s] ...",
                     sys.label.c_str());
        std::fflush(stderr);
        workload::MeasureOptions mo;
        mo.timeout_s = so.duration_s > 0
                           ? static_cast<unsigned>(so.duration_s) + 120
                           : 600;
        const RunRecord rec = workload::measure(
            sys.kind,
            [&](workload::System& s) {
                return workload::run_server(s, so);
            },
            sys.msw_options, mo);
        std::fprintf(stderr, " %s %.2fs p99 %llu ns\n",
                     rec.ok ? "ok" : "FAILED", rec.wall_s,
                     static_cast<unsigned long long>(
                         rec.op_latency.p99_ns));
        runs[sys.label] = rec;
    }

    // Human-readable summary.
    metrics::Table table({"system", "ops", "p50_ns", "p90_ns", "p99_ns",
                          "p999_ns", "max_ns", "pauses", "stw_ms"});
    for (const SystemColumn& sys : systems) {
        const RunRecord& r = runs[sys.label];
        const auto cell = [](std::uint64_t v) {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%llu",
                          static_cast<unsigned long long>(v));
            return std::string(buf);
        };
        table.add_row({sys.label, cell(r.op_latency.count),
                       cell(r.op_latency.p50_ns),
                       cell(r.op_latency.p90_ns),
                       cell(r.op_latency.p99_ns),
                       cell(r.op_latency.p999_ns),
                       cell(r.op_latency.max_ns),
                       cell(r.sweep_pause.count),
                       metrics::fmt_seconds(
                           static_cast<double>(r.stw_total_ns) * 1e-6)});
    }
    std::printf("\nserver tail latency (%s mode)\n",
                so.duration_s > 0 ? "duration" : "op-count");
    table.print();

    std::FILE* json = std::fopen("BENCH_server_tail.json", "w");
    if (json == nullptr) {
        std::fprintf(stderr, "cannot write BENCH_server_tail.json\n");
        return 1;
    }
    std::fprintf(json, "{\n");
    bench::json_stamp(json);
    std::fprintf(json, "  \"threads\": %u,\n", so.threads);
    std::fprintf(json, "  \"duration_s\": %.1f,\n", so.duration_s);
    std::fprintf(json, "  \"ops_per_thread\": %llu,\n",
                 static_cast<unsigned long long>(
                     so.duration_s > 0 ? 0 : so.ops_per_thread));
    std::fprintf(json, "  \"systems\": {\n");
    for (std::size_t i = 0; i < systems.size(); ++i) {
        const RunRecord& r = runs[systems[i].label];
        std::fprintf(json, "    \"%s\": {\n", systems[i].label.c_str());
        std::fprintf(json, "      \"ok\": %s,\n", r.ok ? "true" : "false");
        std::fprintf(json, "      \"wall_s\": %.3f,\n", r.wall_s);
        std::fprintf(json, "      \"sweeps\": %llu,\n",
                     static_cast<unsigned long long>(r.sweeps));
        json_latency(json, "op_latency_ns", r.op_latency, ",");
        json_latency(json, "sweep_pause_ns", r.sweep_pause, ",");
        std::fprintf(json, "      \"pause_total_ns\": %llu,\n",
                     static_cast<unsigned long long>(r.pause_total_ns));
        std::fprintf(json, "      \"stw_total_ns\": %llu,\n",
                     static_cast<unsigned long long>(r.stw_total_ns));
        std::fprintf(
            json, "      \"phase_dirty_scan_ns\": %llu,\n",
            static_cast<unsigned long long>(r.phase_dirty_scan_ns));
        std::fprintf(json, "      \"phase_mark_ns\": %llu,\n",
                     static_cast<unsigned long long>(r.phase_mark_ns));
        std::fprintf(json, "      \"phase_drain_ns\": %llu,\n",
                     static_cast<unsigned long long>(r.phase_drain_ns));
        std::fprintf(
            json, "      \"phase_release_ns\": %llu\n",
            static_cast<unsigned long long>(r.phase_release_ns));
        std::fprintf(json, "    }%s\n",
                     i + 1 == systems.size() ? "" : ",");
    }
    std::fprintf(json, "  }\n}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_server_tail.json\n");

    // The benchmark "fails" only if a run failed outright: tail numbers
    // are data, not assertions.
    for (const SystemColumn& sys : systems) {
        if (!runs[sys.label].ok)
            return 1;
    }
    return 0;
}
