/**
 * @file
 * google-benchmark microbenchmarks of the core primitives — the ablation
 * units behind the figure-level results: allocation fast paths under each
 * system, shadow-map marking/clearing, the linear-sweep scan rate
 * (pointer-dense vs pointer-free memory), quarantine insertion, and the
 * MarkUs-style lookup that the linear sweep's range test replaces.
 */
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "alloc/jade_allocator.h"
#include "baselines/ffmalloc.h"
#include "baselines/markus.h"
#include "core/minesweeper.h"
#include "sweep/shadow_map.h"
#include "sweep/sweeper.h"
#include "util/rng.h"
#include "vm/vm.h"

namespace {

using namespace msw;

// ----------------------------------------------------- allocator paths

template <typename MakeFn>
void
alloc_free_cycle(benchmark::State& state, MakeFn&& make)
{
    auto allocator = make();
    const std::size_t size = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        void* p = allocator->alloc(size);
        benchmark::DoNotOptimize(p);
        allocator->free(p);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_AllocFree_Jade(benchmark::State& state)
{
    alloc_free_cycle(state, [] {
        alloc::JadeAllocator::Options o;
        o.heap_bytes = std::size_t{1} << 30;
        return std::make_unique<alloc::JadeAllocator>(o);
    });
}
BENCHMARK(BM_AllocFree_Jade)->Arg(16)->Arg(128)->Arg(1024)->Arg(16384);

void
BM_AllocFree_MineSweeper(benchmark::State& state)
{
    alloc_free_cycle(state, [] {
        core::Options o;
        o.jade.heap_bytes = std::size_t{1} << 30;
        return std::make_unique<core::MineSweeper>(o);
    });
}
BENCHMARK(BM_AllocFree_MineSweeper)->Arg(16)->Arg(128)->Arg(1024)->Arg(16384);

void
BM_AllocFree_FFMalloc(benchmark::State& state)
{
    alloc_free_cycle(state, [] {
        baseline::FFMalloc::Options o;
        o.va_bytes = std::size_t{16} << 30;
        return std::make_unique<baseline::FFMalloc>(o);
    });
}
BENCHMARK(BM_AllocFree_FFMalloc)->Arg(16)->Arg(128)->Arg(1024);

void
BM_AllocFree_MarkUs(benchmark::State& state)
{
    alloc_free_cycle(state, [] {
        baseline::MarkUs::Options o;
        o.jade.heap_bytes = std::size_t{1} << 30;
        return std::make_unique<baseline::MarkUs>(o);
    });
}
BENCHMARK(BM_AllocFree_MarkUs)->Arg(16)->Arg(128)->Arg(1024);

// ----------------------------------------------------------- shadow map

void
BM_ShadowMark(benchmark::State& state)
{
    const std::uintptr_t base = std::uintptr_t{1} << 40;
    sweep::ShadowMap map(base, 1 << 30);
    Rng rng(1);
    std::vector<std::uintptr_t> addrs(4096);
    for (auto& a : addrs)
        a = base + rng.next_below(1 << 30);
    std::size_t i = 0;
    for (auto _ : state) {
        map.mark(addrs[i++ & 4095]);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShadowMark);

void
BM_ShadowTestRange(benchmark::State& state)
{
    const std::uintptr_t base = std::uintptr_t{1} << 40;
    sweep::ShadowMap map(base, 1 << 30);
    const std::size_t len = static_cast<std::size_t>(state.range(0));
    Rng rng(2);
    std::size_t i = 0;
    std::vector<std::uintptr_t> addrs(4096);
    for (auto& a : addrs)
        a = base + align_down(rng.next_below((1 << 30) - len), 16);
    for (auto _ : state) {
        benchmark::DoNotOptimize(map.test_range(addrs[i++ & 4095], len));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShadowTestRange)->Arg(64)->Arg(1024)->Arg(65536);

// ----------------------------------------------------------- sweep rate

/** The headline primitive: linear scan GB/s over pointer-free data. */
void
BM_LinearSweep(benchmark::State& state)
{
    const std::size_t bytes = 64 << 20;
    vm::Reservation heap = vm::Reservation::reserve(bytes);
    heap.commit_must(heap.base(), bytes);
    const double density = static_cast<double>(state.range(0)) / 100.0;
    // Fill with `density` fraction of heap pointers, rest integers.
    Rng rng(3);
    auto* words = reinterpret_cast<std::uint64_t*>(heap.base());
    for (std::size_t i = 0; i < bytes / 8; ++i) {
        words[i] = rng.next_bool(density)
                       ? heap.base() + rng.next_below(bytes)
                       : rng.next_u64() | (std::uint64_t{1} << 63);
    }
    sweep::ShadowMap shadow(heap.base(), bytes);
    sweep::Marker marker(&shadow, heap.base(), heap.base() + bytes);
    for (auto _ : state) {
        const auto stats =
            marker.mark_one(sweep::Range{heap.base(), bytes});
        benchmark::DoNotOptimize(stats.pointers_found);
        shadow.clear_marks();
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_LinearSweep)->Arg(0)->Arg(5)->Arg(50)->Unit(
    benchmark::kMillisecond);

/**
 * The cost MineSweeper avoids: MarkUs-style per-word allocation lookup
 * over the same memory.
 */
void
BM_ConservativeLookupScan(benchmark::State& state)
{
    alloc::JadeAllocator::Options o;
    o.heap_bytes = std::size_t{1} << 30;
    alloc::JadeAllocator jade(o);
    // A live heap to point into.
    std::vector<void*> objs;
    for (int i = 0; i < 20000; ++i)
        objs.push_back(jade.alloc(64));
    // A buffer of pointers into it.
    const std::size_t n = (4 << 20) / 8;
    std::vector<std::uint64_t> buffer(n);
    Rng rng(4);
    for (auto& w : buffer)
        w = to_addr(objs[rng.next_below(objs.size())]);

    for (auto _ : state) {
        std::uint64_t found = 0;
        for (const std::uint64_t w : buffer) {
            alloc::JadeAllocator::AllocationInfo info;
            if (jade.lookup_relaxed(w, &info))
                ++found;
        }
        benchmark::DoNotOptimize(found);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n * 8));
    for (void* p : objs)
        jade.free(p);
}
BENCHMARK(BM_ConservativeLookupScan)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------ sweep e2e

void
BM_FullSweep(benchmark::State& state)
{
    core::Options o;
    o.jade.heap_bytes = std::size_t{1} << 30;
    o.min_sweep_bytes = std::size_t{1} << 40;  // only explicit sweeps
    core::MineSweeper ms(o);
    // A resident live heap of ~64 MiB plus a quarantine to test.
    std::vector<void*> live;
    for (int i = 0; i < 60000; ++i) {
        void* p = ms.alloc(1024);
        std::memset(p, 1, 64);
        live.push_back(p);
    }
    for (auto _ : state) {
        state.PauseTiming();
        for (int i = 0; i < 5000; ++i)
            ms.free(live[live.size() - 1 - i]);
        state.ResumeTiming();
        ms.force_sweep();
        state.PauseTiming();
        for (int i = 0; i < 5000; ++i)
            live[live.size() - 1 - i] = ms.alloc(1024);
        state.ResumeTiming();
    }
    for (void* p : live)
        ms.free(p);
}
BENCHMARK(BM_FullSweep)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
