/**
 * @file
 * Figure 7 / Figure 9 — SPEC CPU2006 slowdown.
 *
 * Paper result: MineSweeper 5.4 % geomean slowdown (worst case xalancbmk
 * 1.73x); MarkUs 15.5 % (worst 2.97x); FFMalloc 3.5 %. MineSweeper beats
 * MarkUs everywhere, FFMalloc is slightly faster than MineSweeper, and
 * only allocation-heavy benchmarks (xalancbmk, gcc, perlbench, omnetpp,
 * sphinx3) show slowdowns above 5 %.
 */
#include "bench/bench_common.h"

int
main()
{
    using namespace msw::bench;
    std::printf("== Fig 7/9: SPEC CPU2006 slowdown "
                "(wall time vs JadeHeap baseline) ==\n");
    std::printf("paper: minesweeper 1.054x geomean (xalancbmk 1.73x), "
                "markus 1.155x, ffmalloc 1.035x\n");

    const auto profiles =
        msw::workload::spec2006_profiles(effective_scale(0.5));
    const auto systems = paper_systems();
    const auto rows = run_suite(profiles, systems);
    const auto geo = print_ratio_table("Slowdown (wall time)", rows,
                                       systems, "baseline", metric_wall);

    std::printf("\nreproduced geomeans: markus %.3fx  ffmalloc %.3fx  "
                "minesweeper %.3fx\n",
                geo.at("markus"), geo.at("ffmalloc"),
                geo.at("minesweeper"));
    return 0;
}
