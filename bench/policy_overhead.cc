/**
 * @file
 * Allocation-policy overhead: MineSweeper under the default policy vs the
 * hardened (S2malloc/FreeGuard-style) policy on the allocation-heaviest
 * mimalloc-bench kernels (larson server churn, mstress cross-thread
 * frees). The hardened policy buys randomized placement/reuse, canaries
 * and verified quarantine fills; this binary prices that in wall time,
 * CPU and peak RSS against the default policy's fast path.
 *
 * Emits BENCH_policy_overhead.json alongside the table so CI can track
 * the ratios.
 */
#include "bench/bench_common.h"

#include "alloc/policy.h"
#include "workload/mimalloc_kernels.h"

int
main()
{
    using namespace msw::bench;
    std::printf("== Allocation-policy overhead (default vs hardened) ==\n");

    const double scale = effective_scale(0.3);
    std::vector<SystemColumn> systems = {
        {"default", SystemKind::kMineSweeper, {}},
        {"hardened", SystemKind::kMineSweeper, {}},
    };
    systems[0].msw_options.jade.policy = &msw::alloc::default_policy();
    systems[1].msw_options.jade.policy = &msw::alloc::hardened_policy();

    // The policy hooks live on the alloc/free path, so the kernels that
    // do nothing else bound the overhead from above.
    const std::vector<std::string> wanted = {"larsonN", "larsonN-sized",
                                             "mstressN"};
    std::vector<Row> rows;
    for (const auto& kernel : msw::workload::mimalloc_kernels()) {
        bool selected = false;
        for (const auto& w : wanted)
            if (kernel.name == w)
                selected = true;
        if (!selected)
            continue;
        Row row;
        row.bench = kernel.name;
        for (const auto& sys : systems) {
            std::fprintf(stderr, "  [%s / %s]...", kernel.name.c_str(),
                         sys.label.c_str());
            std::fflush(stderr);
            msw::workload::MeasureOptions mo;
            mo.timeout_s = 240;
            const RunRecord rec = msw::workload::measure(
                sys.kind,
                [&](msw::workload::System& s) {
                    return kernel.run(s, scale);
                },
                sys.msw_options, mo);
            std::fprintf(stderr, " %s %.2fs\n", rec.ok ? "ok" : "FAILED",
                         rec.wall_s);
            row.runs[sys.label] = rec;
        }
        rows.push_back(std::move(row));
    }

    const auto geo_time = print_ratio_table(
        "Hardened slowdown vs default policy", rows, systems, "default",
        metric_wall);
    const auto geo_mem = print_ratio_table(
        "Hardened peak-RSS overhead vs default policy", rows, systems,
        "default", metric_peak_rss);

    FILE* json = std::fopen("BENCH_policy_overhead.json", "w");
    if (json != nullptr) {
        std::fprintf(json, "{\n");
        json_stamp(json);
        std::fprintf(json,
                     "  \"geomean_time_ratio\": %.4f,\n"
                     "  \"geomean_peak_rss_ratio\": %.4f,\n"
                     "  \"rows\": [\n",
                     geo_time.at("hardened"), geo_mem.at("hardened"));
        bool first = true;
        for (const Row& row : rows) {
            for (const auto& sys : systems) {
                const auto it = row.runs.find(sys.label);
                if (it == row.runs.end())
                    continue;
                const RunRecord& r = it->second;
                std::fprintf(json,
                             "%s    {\"bench\": \"%s\", "
                             "\"policy\": \"%s\", \"ok\": %s, "
                             "\"wall_s\": %.3f, \"cpu_s\": %.3f, "
                             "\"peak_rss\": %zu}",
                             first ? "" : ",\n", row.bench.c_str(),
                             sys.label.c_str(), r.ok ? "true" : "false",
                             r.wall_s, r.cpu_s,
                             static_cast<std::size_t>(r.peak_rss));
                first = false;
            }
        }
        std::fprintf(json, "\n  ]\n}\n");
        std::fclose(json);
        std::printf("\nwrote BENCH_policy_overhead.json\n");
    }

    std::printf("\nhardened policy: %.3fx time, %.3fx peak RSS vs the "
                "default policy\n",
                geo_time.at("hardened"), geo_mem.at("hardened"));
    return 0;
}
