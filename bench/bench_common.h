/**
 * @file
 * Shared scaffolding for the per-figure benchmark binaries.
 *
 * Every figure binary follows the paper's methodology: run each
 * (system, workload) pair in its own forked process, measure wall time
 * (SPEC-style), sampled RSS (PSRecord-style) and CPU time, then print the
 * figure's rows normalised against the JadeHeap baseline, with the
 * paper's reported numbers alongside for comparison (EXPERIMENTS.md
 * records both).
 *
 * MSW_BENCH_SCALE scales workload sizes (default 1.0); figures were
 * calibrated so each binary completes in a few minutes on one core.
 */
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "metrics/metrics.h"
#include "workload/profile.h"
#include "workload/runner.h"
#include "workload/spec_profiles.h"
#include "workload/system.h"

namespace msw::bench {

using metrics::RunRecord;
using workload::Profile;
using workload::SystemKind;

/**
 * Schema version stamped into every BENCH_*.json, bumped whenever a key
 * is renamed or removed (additions do not bump it). Plot/CI tooling
 * checks this instead of sniffing key presence.
 */
inline constexpr int kBenchSchemaVersion = 1;

/** Build provenance: `git describe` captured at configure time. */
inline const char*
git_describe()
{
#ifdef MSW_GIT_DESCRIBE
    return MSW_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

/**
 * Stamp the provenance keys into an open JSON object. Call immediately
 * after writing the opening "{\n".
 */
inline void
json_stamp(std::FILE* f)
{
    std::fprintf(f,
                 "  \"schema_version\": %d,\n"
                 "  \"git_describe\": \"%s\",\n",
                 kBenchSchemaVersion, git_describe());
}

/** All measurements for one benchmark row. */
struct Row {
    std::string bench;
    std::map<std::string, RunRecord> runs;  // keyed by system label
};

/** One system column in a suite run. */
struct SystemColumn {
    std::string label;
    SystemKind kind;
    core::Options msw_options{};
};

/** The paper's standard four-system comparison. */
inline std::vector<SystemColumn>
paper_systems()
{
    return {
        {"baseline", SystemKind::kBaseline, {}},
        {"markus", SystemKind::kMarkUs, {}},
        {"ffmalloc", SystemKind::kFFMalloc, {}},
        {"minesweeper", SystemKind::kMineSweeper, {}},
    };
}

/** Run @p systems over @p profiles, printing progress to stderr. */
inline std::vector<Row>
run_suite(const std::vector<Profile>& profiles,
          const std::vector<SystemColumn>& systems,
          unsigned timeout_s = 300)
{
    std::vector<Row> rows;
    for (const Profile& p : profiles) {
        Row row;
        row.bench = p.name;
        for (const SystemColumn& sys : systems) {
            std::fprintf(stderr, "  [%s / %s] ...", p.name.c_str(),
                         sys.label.c_str());
            std::fflush(stderr);
            workload::MeasureOptions mo;
            mo.timeout_s = timeout_s;
            const RunRecord rec =
                workload::measure_profile(sys.kind, p, sys.msw_options, mo);
            std::fprintf(stderr, " %s %.2fs rss %.1fMiB\n",
                         rec.ok ? "ok" : "FAILED", rec.wall_s,
                         static_cast<double>(rec.avg_rss) / (1 << 20));
            row.runs[sys.label] = rec;
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

/**
 * Print a ratio table: each system column normalised to the baseline
 * column for the chosen metric, with a geomean footer. Returns the
 * geomeans keyed by system label.
 */
template <typename MetricFn>
std::map<std::string, double>
print_ratio_table(const char* title, const std::vector<Row>& rows,
                  const std::vector<SystemColumn>& systems,
                  const std::string& baseline_label, MetricFn&& metric)
{
    std::printf("\n%s\n", title);
    std::vector<std::string> headers = {"benchmark"};
    for (const auto& sys : systems) {
        if (sys.label != baseline_label)
            headers.push_back(sys.label);
    }
    metrics::Table table(headers);
    std::map<std::string, std::vector<double>> ratios;

    for (const Row& row : rows) {
        const auto base_it = row.runs.find(baseline_label);
        if (base_it == row.runs.end() || !base_it->second.ok)
            continue;
        const double base = metric(base_it->second);
        std::vector<std::string> cells = {row.bench};
        for (const auto& sys : systems) {
            if (sys.label == baseline_label)
                continue;
            const auto it = row.runs.find(sys.label);
            if (it == row.runs.end() || !it->second.ok || base <= 0) {
                cells.push_back("n/a");
                continue;
            }
            const double r = metric(it->second) / base;
            ratios[sys.label].push_back(r);
            cells.push_back(metrics::fmt_ratio(r));
        }
        table.add_row(std::move(cells));
    }

    std::vector<std::string> footer = {"geomean"};
    std::map<std::string, double> geo;
    for (const auto& sys : systems) {
        if (sys.label == baseline_label)
            continue;
        const double g = metrics::geomean(ratios[sys.label]);
        geo[sys.label] = g;
        footer.push_back(metrics::fmt_ratio(g));
    }
    table.add_row(std::move(footer));
    table.print();
    return geo;
}

inline double
metric_wall(const RunRecord& r)
{
    return r.wall_s;
}

inline double
metric_avg_rss(const RunRecord& r)
{
    return static_cast<double>(r.avg_rss);
}

inline double
metric_peak_rss(const RunRecord& r)
{
    return static_cast<double>(r.peak_rss);
}

inline double
metric_cpu(const RunRecord& r)
{
    return r.cpu_s;
}

/** Effective scale: binary default x MSW_BENCH_SCALE. */
inline double
effective_scale(double binary_default)
{
    return binary_default * metrics::bench_scale();
}

}  // namespace msw::bench
