/**
 * @file
 * Figure 10 / Figure 11 — SPEC CPU2006 memory overhead.
 *
 * Paper result: MineSweeper 11.1 % geomean average-RSS overhead and
 * 17.7 % peak (worst case gcc: 62.7 % avg / 93.4 % peak); MarkUs 12.3 %;
 * FFMalloc 3.44x average with extreme outliers (fragmentation).
 */
#include "bench/bench_common.h"

int
main()
{
    using namespace msw::bench;
    std::printf("== Fig 10/11: SPEC CPU2006 memory overhead "
                "(sampled RSS vs baseline) ==\n");
    std::printf("paper: minesweeper 1.111x avg / 1.177x peak (gcc worst "
                "1.63x/1.93x); markus 1.123x; ffmalloc 3.44x avg\n");

    const auto profiles =
        msw::workload::spec2006_profiles(effective_scale(0.5));
    const auto systems = paper_systems();
    const auto rows = run_suite(profiles, systems);

    const auto geo_avg =
        print_ratio_table("Average memory overhead (Fig 10)", rows,
                          systems, "baseline", metric_avg_rss);
    const auto geo_peak =
        print_ratio_table("Peak memory overhead (Fig 11)", rows, systems,
                          "baseline", metric_peak_rss);

    std::printf("\nreproduced geomeans: avg markus %.3fx ffmalloc %.3fx "
                "minesweeper %.3fx | peak minesweeper %.3fx\n",
                geo_avg.at("markus"), geo_avg.at("ffmalloc"),
                geo_avg.at("minesweeper"), geo_peak.at("minesweeper"));
    return 0;
}
