# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/size_classes_test[1]_include.cmake")
include("/root/repo/build/tests/extent_allocator_test[1]_include.cmake")
include("/root/repo/build/tests/jade_allocator_test[1]_include.cmake")
include("/root/repo/build/tests/shadow_map_test[1]_include.cmake")
include("/root/repo/build/tests/sweeper_test[1]_include.cmake")
include("/root/repo/build/tests/quarantine_test[1]_include.cmake")
include("/root/repo/build/tests/roots_test[1]_include.cmake")
include("/root/repo/build/tests/dirty_tracker_test[1]_include.cmake")
include("/root/repo/build/tests/minesweeper_test[1]_include.cmake")
include("/root/repo/build/tests/minesweeper_modes_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/attack_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extra_roots_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/jade_classes_test[1]_include.cmake")
