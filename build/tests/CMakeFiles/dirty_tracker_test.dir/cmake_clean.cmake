file(REMOVE_RECURSE
  "CMakeFiles/dirty_tracker_test.dir/dirty_tracker_test.cc.o"
  "CMakeFiles/dirty_tracker_test.dir/dirty_tracker_test.cc.o.d"
  "dirty_tracker_test"
  "dirty_tracker_test.pdb"
  "dirty_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dirty_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
