file(REMOVE_RECURSE
  "CMakeFiles/minesweeper_modes_test.dir/minesweeper_modes_test.cc.o"
  "CMakeFiles/minesweeper_modes_test.dir/minesweeper_modes_test.cc.o.d"
  "minesweeper_modes_test"
  "minesweeper_modes_test.pdb"
  "minesweeper_modes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minesweeper_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
