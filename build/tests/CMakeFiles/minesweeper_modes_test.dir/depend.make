# Empty dependencies file for minesweeper_modes_test.
# This may be replaced when dependencies are built.
