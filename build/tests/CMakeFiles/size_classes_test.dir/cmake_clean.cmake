file(REMOVE_RECURSE
  "CMakeFiles/size_classes_test.dir/size_classes_test.cc.o"
  "CMakeFiles/size_classes_test.dir/size_classes_test.cc.o.d"
  "size_classes_test"
  "size_classes_test.pdb"
  "size_classes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/size_classes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
