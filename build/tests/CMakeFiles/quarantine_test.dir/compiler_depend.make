# Empty compiler generated dependencies file for quarantine_test.
# This may be replaced when dependencies are built.
