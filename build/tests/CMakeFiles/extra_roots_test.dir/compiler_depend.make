# Empty compiler generated dependencies file for extra_roots_test.
# This may be replaced when dependencies are built.
