file(REMOVE_RECURSE
  "CMakeFiles/extra_roots_test.dir/extra_roots_test.cc.o"
  "CMakeFiles/extra_roots_test.dir/extra_roots_test.cc.o.d"
  "extra_roots_test"
  "extra_roots_test.pdb"
  "extra_roots_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_roots_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
