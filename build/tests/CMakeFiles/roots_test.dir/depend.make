# Empty dependencies file for roots_test.
# This may be replaced when dependencies are built.
