# Empty dependencies file for jade_allocator_test.
# This may be replaced when dependencies are built.
