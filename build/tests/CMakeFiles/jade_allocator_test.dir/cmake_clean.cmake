file(REMOVE_RECURSE
  "CMakeFiles/jade_allocator_test.dir/jade_allocator_test.cc.o"
  "CMakeFiles/jade_allocator_test.dir/jade_allocator_test.cc.o.d"
  "jade_allocator_test"
  "jade_allocator_test.pdb"
  "jade_allocator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jade_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
