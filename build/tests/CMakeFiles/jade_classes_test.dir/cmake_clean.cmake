file(REMOVE_RECURSE
  "CMakeFiles/jade_classes_test.dir/jade_classes_test.cc.o"
  "CMakeFiles/jade_classes_test.dir/jade_classes_test.cc.o.d"
  "jade_classes_test"
  "jade_classes_test.pdb"
  "jade_classes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jade_classes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
