# Empty dependencies file for jade_classes_test.
# This may be replaced when dependencies are built.
