# Empty compiler generated dependencies file for minesweeper_test.
# This may be replaced when dependencies are built.
