file(REMOVE_RECURSE
  "CMakeFiles/minesweeper_test.dir/minesweeper_test.cc.o"
  "CMakeFiles/minesweeper_test.dir/minesweeper_test.cc.o.d"
  "minesweeper_test"
  "minesweeper_test.pdb"
  "minesweeper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minesweeper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
