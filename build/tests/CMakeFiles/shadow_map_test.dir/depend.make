# Empty dependencies file for shadow_map_test.
# This may be replaced when dependencies are built.
