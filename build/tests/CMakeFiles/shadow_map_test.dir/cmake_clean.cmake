file(REMOVE_RECURSE
  "CMakeFiles/shadow_map_test.dir/shadow_map_test.cc.o"
  "CMakeFiles/shadow_map_test.dir/shadow_map_test.cc.o.d"
  "shadow_map_test"
  "shadow_map_test.pdb"
  "shadow_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadow_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
