file(REMOVE_RECURSE
  "CMakeFiles/msw_workload.dir/attack.cc.o"
  "CMakeFiles/msw_workload.dir/attack.cc.o.d"
  "CMakeFiles/msw_workload.dir/executor.cc.o"
  "CMakeFiles/msw_workload.dir/executor.cc.o.d"
  "CMakeFiles/msw_workload.dir/mimalloc_kernels.cc.o"
  "CMakeFiles/msw_workload.dir/mimalloc_kernels.cc.o.d"
  "CMakeFiles/msw_workload.dir/runner.cc.o"
  "CMakeFiles/msw_workload.dir/runner.cc.o.d"
  "CMakeFiles/msw_workload.dir/spec_profiles.cc.o"
  "CMakeFiles/msw_workload.dir/spec_profiles.cc.o.d"
  "CMakeFiles/msw_workload.dir/system.cc.o"
  "CMakeFiles/msw_workload.dir/system.cc.o.d"
  "CMakeFiles/msw_workload.dir/trace.cc.o"
  "CMakeFiles/msw_workload.dir/trace.cc.o.d"
  "libmsw_workload.a"
  "libmsw_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msw_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
