# Empty dependencies file for msw_workload.
# This may be replaced when dependencies are built.
