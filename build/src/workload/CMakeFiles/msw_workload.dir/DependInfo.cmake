
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/attack.cc" "src/workload/CMakeFiles/msw_workload.dir/attack.cc.o" "gcc" "src/workload/CMakeFiles/msw_workload.dir/attack.cc.o.d"
  "/root/repo/src/workload/executor.cc" "src/workload/CMakeFiles/msw_workload.dir/executor.cc.o" "gcc" "src/workload/CMakeFiles/msw_workload.dir/executor.cc.o.d"
  "/root/repo/src/workload/mimalloc_kernels.cc" "src/workload/CMakeFiles/msw_workload.dir/mimalloc_kernels.cc.o" "gcc" "src/workload/CMakeFiles/msw_workload.dir/mimalloc_kernels.cc.o.d"
  "/root/repo/src/workload/runner.cc" "src/workload/CMakeFiles/msw_workload.dir/runner.cc.o" "gcc" "src/workload/CMakeFiles/msw_workload.dir/runner.cc.o.d"
  "/root/repo/src/workload/spec_profiles.cc" "src/workload/CMakeFiles/msw_workload.dir/spec_profiles.cc.o" "gcc" "src/workload/CMakeFiles/msw_workload.dir/spec_profiles.cc.o.d"
  "/root/repo/src/workload/system.cc" "src/workload/CMakeFiles/msw_workload.dir/system.cc.o" "gcc" "src/workload/CMakeFiles/msw_workload.dir/system.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/msw_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/msw_workload.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/msw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/msw_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/msw_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/msw_util.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/msw_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/sweep/CMakeFiles/msw_sweep.dir/DependInfo.cmake"
  "/root/repo/build/src/quarantine/CMakeFiles/msw_quarantine.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/msw_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
