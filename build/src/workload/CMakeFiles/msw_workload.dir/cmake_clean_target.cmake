file(REMOVE_RECURSE
  "libmsw_workload.a"
)
