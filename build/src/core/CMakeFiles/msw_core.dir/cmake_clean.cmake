file(REMOVE_RECURSE
  "CMakeFiles/msw_core.dir/minesweeper.cc.o"
  "CMakeFiles/msw_core.dir/minesweeper.cc.o.d"
  "libmsw_core.a"
  "libmsw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
