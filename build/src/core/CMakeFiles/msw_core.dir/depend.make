# Empty dependencies file for msw_core.
# This may be replaced when dependencies are built.
