
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/minesweeper.cc" "src/core/CMakeFiles/msw_core.dir/minesweeper.cc.o" "gcc" "src/core/CMakeFiles/msw_core.dir/minesweeper.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/alloc/CMakeFiles/msw_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/sweep/CMakeFiles/msw_sweep.dir/DependInfo.cmake"
  "/root/repo/build/src/quarantine/CMakeFiles/msw_quarantine.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/msw_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/msw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
