file(REMOVE_RECURSE
  "libmsw_core.a"
)
