file(REMOVE_RECURSE
  "libmsw_sweep.a"
)
