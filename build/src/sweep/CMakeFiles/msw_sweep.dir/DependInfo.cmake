
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sweep/dirty_tracker.cc" "src/sweep/CMakeFiles/msw_sweep.dir/dirty_tracker.cc.o" "gcc" "src/sweep/CMakeFiles/msw_sweep.dir/dirty_tracker.cc.o.d"
  "/root/repo/src/sweep/roots.cc" "src/sweep/CMakeFiles/msw_sweep.dir/roots.cc.o" "gcc" "src/sweep/CMakeFiles/msw_sweep.dir/roots.cc.o.d"
  "/root/repo/src/sweep/shadow_map.cc" "src/sweep/CMakeFiles/msw_sweep.dir/shadow_map.cc.o" "gcc" "src/sweep/CMakeFiles/msw_sweep.dir/shadow_map.cc.o.d"
  "/root/repo/src/sweep/sweeper.cc" "src/sweep/CMakeFiles/msw_sweep.dir/sweeper.cc.o" "gcc" "src/sweep/CMakeFiles/msw_sweep.dir/sweeper.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/msw_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/msw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
