file(REMOVE_RECURSE
  "CMakeFiles/msw_sweep.dir/dirty_tracker.cc.o"
  "CMakeFiles/msw_sweep.dir/dirty_tracker.cc.o.d"
  "CMakeFiles/msw_sweep.dir/roots.cc.o"
  "CMakeFiles/msw_sweep.dir/roots.cc.o.d"
  "CMakeFiles/msw_sweep.dir/shadow_map.cc.o"
  "CMakeFiles/msw_sweep.dir/shadow_map.cc.o.d"
  "CMakeFiles/msw_sweep.dir/sweeper.cc.o"
  "CMakeFiles/msw_sweep.dir/sweeper.cc.o.d"
  "libmsw_sweep.a"
  "libmsw_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msw_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
