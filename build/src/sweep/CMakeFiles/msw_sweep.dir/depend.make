# Empty dependencies file for msw_sweep.
# This may be replaced when dependencies are built.
