# Empty dependencies file for msw_metrics.
# This may be replaced when dependencies are built.
