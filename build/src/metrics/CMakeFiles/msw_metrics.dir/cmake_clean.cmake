file(REMOVE_RECURSE
  "CMakeFiles/msw_metrics.dir/metrics.cc.o"
  "CMakeFiles/msw_metrics.dir/metrics.cc.o.d"
  "libmsw_metrics.a"
  "libmsw_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msw_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
