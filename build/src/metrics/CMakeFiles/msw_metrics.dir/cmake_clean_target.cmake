file(REMOVE_RECURSE
  "libmsw_metrics.a"
)
