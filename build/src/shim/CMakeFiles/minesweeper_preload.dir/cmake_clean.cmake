file(REMOVE_RECURSE
  "CMakeFiles/minesweeper_preload.dir/shim.cc.o"
  "CMakeFiles/minesweeper_preload.dir/shim.cc.o.d"
  "libminesweeper_preload.pdb"
  "libminesweeper_preload.so"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minesweeper_preload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
