# Empty dependencies file for minesweeper_preload.
# This may be replaced when dependencies are built.
