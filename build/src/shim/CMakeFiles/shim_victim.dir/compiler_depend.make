# Empty compiler generated dependencies file for shim_victim.
# This may be replaced when dependencies are built.
