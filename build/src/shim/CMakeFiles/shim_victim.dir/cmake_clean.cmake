file(REMOVE_RECURSE
  "CMakeFiles/shim_victim.dir/shim_victim.cc.o"
  "CMakeFiles/shim_victim.dir/shim_victim.cc.o.d"
  "shim_victim"
  "shim_victim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shim_victim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
