# CMake generated Testfile for 
# Source directory: /root/repo/src/shim
# Build directory: /root/repo/build/src/shim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(shim_victim_native "/root/repo/build/src/shim/shim_victim")
set_tests_properties(shim_victim_native PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/shim/CMakeLists.txt;12;add_test;/root/repo/src/shim/CMakeLists.txt;0;")
add_test(shim_victim_preload "/usr/bin/cmake" "-E" "env" "LD_PRELOAD=/root/repo/build/src/shim/libminesweeper_preload.so" "MSW_SHIM_EXPECT=protected" "/root/repo/build/src/shim/shim_victim")
set_tests_properties(shim_victim_preload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/src/shim/CMakeLists.txt;13;add_test;/root/repo/src/shim/CMakeLists.txt;0;")
