file(REMOVE_RECURSE
  "libmsw_alloc.a"
)
