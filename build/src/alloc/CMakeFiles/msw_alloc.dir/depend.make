# Empty dependencies file for msw_alloc.
# This may be replaced when dependencies are built.
