
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/bin.cc" "src/alloc/CMakeFiles/msw_alloc.dir/bin.cc.o" "gcc" "src/alloc/CMakeFiles/msw_alloc.dir/bin.cc.o.d"
  "/root/repo/src/alloc/extent.cc" "src/alloc/CMakeFiles/msw_alloc.dir/extent.cc.o" "gcc" "src/alloc/CMakeFiles/msw_alloc.dir/extent.cc.o.d"
  "/root/repo/src/alloc/extent_allocator.cc" "src/alloc/CMakeFiles/msw_alloc.dir/extent_allocator.cc.o" "gcc" "src/alloc/CMakeFiles/msw_alloc.dir/extent_allocator.cc.o.d"
  "/root/repo/src/alloc/jade_allocator.cc" "src/alloc/CMakeFiles/msw_alloc.dir/jade_allocator.cc.o" "gcc" "src/alloc/CMakeFiles/msw_alloc.dir/jade_allocator.cc.o.d"
  "/root/repo/src/alloc/size_classes.cc" "src/alloc/CMakeFiles/msw_alloc.dir/size_classes.cc.o" "gcc" "src/alloc/CMakeFiles/msw_alloc.dir/size_classes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/msw_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/msw_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
