file(REMOVE_RECURSE
  "CMakeFiles/msw_alloc.dir/bin.cc.o"
  "CMakeFiles/msw_alloc.dir/bin.cc.o.d"
  "CMakeFiles/msw_alloc.dir/extent.cc.o"
  "CMakeFiles/msw_alloc.dir/extent.cc.o.d"
  "CMakeFiles/msw_alloc.dir/extent_allocator.cc.o"
  "CMakeFiles/msw_alloc.dir/extent_allocator.cc.o.d"
  "CMakeFiles/msw_alloc.dir/jade_allocator.cc.o"
  "CMakeFiles/msw_alloc.dir/jade_allocator.cc.o.d"
  "CMakeFiles/msw_alloc.dir/size_classes.cc.o"
  "CMakeFiles/msw_alloc.dir/size_classes.cc.o.d"
  "libmsw_alloc.a"
  "libmsw_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msw_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
