file(REMOVE_RECURSE
  "CMakeFiles/msw_quarantine.dir/quarantine.cc.o"
  "CMakeFiles/msw_quarantine.dir/quarantine.cc.o.d"
  "libmsw_quarantine.a"
  "libmsw_quarantine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msw_quarantine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
