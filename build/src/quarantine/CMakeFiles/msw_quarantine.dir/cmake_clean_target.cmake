file(REMOVE_RECURSE
  "libmsw_quarantine.a"
)
