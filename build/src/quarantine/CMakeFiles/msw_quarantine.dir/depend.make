# Empty dependencies file for msw_quarantine.
# This may be replaced when dependencies are built.
