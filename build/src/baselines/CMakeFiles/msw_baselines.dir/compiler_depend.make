# Empty compiler generated dependencies file for msw_baselines.
# This may be replaced when dependencies are built.
