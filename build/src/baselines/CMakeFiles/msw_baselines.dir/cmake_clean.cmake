file(REMOVE_RECURSE
  "CMakeFiles/msw_baselines.dir/ffmalloc.cc.o"
  "CMakeFiles/msw_baselines.dir/ffmalloc.cc.o.d"
  "CMakeFiles/msw_baselines.dir/markus.cc.o"
  "CMakeFiles/msw_baselines.dir/markus.cc.o.d"
  "libmsw_baselines.a"
  "libmsw_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msw_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
