file(REMOVE_RECURSE
  "libmsw_baselines.a"
)
