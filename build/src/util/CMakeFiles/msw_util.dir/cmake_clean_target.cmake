file(REMOVE_RECURSE
  "libmsw_util.a"
)
