# Empty dependencies file for msw_util.
# This may be replaced when dependencies are built.
