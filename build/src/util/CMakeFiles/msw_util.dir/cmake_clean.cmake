file(REMOVE_RECURSE
  "CMakeFiles/msw_util.dir/check.cc.o"
  "CMakeFiles/msw_util.dir/check.cc.o.d"
  "CMakeFiles/msw_util.dir/log.cc.o"
  "CMakeFiles/msw_util.dir/log.cc.o.d"
  "libmsw_util.a"
  "libmsw_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msw_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
