# Empty compiler generated dependencies file for msw_vm.
# This may be replaced when dependencies are built.
