# Empty dependencies file for msw_vm.
# This may be replaced when dependencies are built.
