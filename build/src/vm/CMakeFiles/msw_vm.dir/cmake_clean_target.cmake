file(REMOVE_RECURSE
  "libmsw_vm.a"
)
