file(REMOVE_RECURSE
  "CMakeFiles/msw_vm.dir/vm.cc.o"
  "CMakeFiles/msw_vm.dir/vm.cc.o.d"
  "libmsw_vm.a"
  "libmsw_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msw_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
