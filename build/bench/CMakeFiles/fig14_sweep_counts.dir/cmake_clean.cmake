file(REMOVE_RECURSE
  "CMakeFiles/fig14_sweep_counts.dir/fig14_sweep_counts.cc.o"
  "CMakeFiles/fig14_sweep_counts.dir/fig14_sweep_counts.cc.o.d"
  "fig14_sweep_counts"
  "fig14_sweep_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_sweep_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
