# Empty compiler generated dependencies file for fig14_sweep_counts.
# This may be replaced when dependencies are built.
