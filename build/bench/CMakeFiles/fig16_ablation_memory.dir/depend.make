# Empty dependencies file for fig16_ablation_memory.
# This may be replaced when dependencies are built.
