file(REMOVE_RECURSE
  "CMakeFiles/fig16_ablation_memory.dir/fig16_ablation_memory.cc.o"
  "CMakeFiles/fig16_ablation_memory.dir/fig16_ablation_memory.cc.o.d"
  "fig16_ablation_memory"
  "fig16_ablation_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_ablation_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
