file(REMOVE_RECURSE
  "CMakeFiles/fig18_spec2017.dir/fig18_spec2017.cc.o"
  "CMakeFiles/fig18_spec2017.dir/fig18_spec2017.cc.o.d"
  "fig18_spec2017"
  "fig18_spec2017.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_spec2017.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
