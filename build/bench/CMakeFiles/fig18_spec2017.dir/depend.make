# Empty dependencies file for fig18_spec2017.
# This may be replaced when dependencies are built.
