# Empty dependencies file for fig17_overhead_sources.
# This may be replaced when dependencies are built.
