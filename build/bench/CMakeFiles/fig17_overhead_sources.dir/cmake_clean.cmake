file(REMOVE_RECURSE
  "CMakeFiles/fig17_overhead_sources.dir/fig17_overhead_sources.cc.o"
  "CMakeFiles/fig17_overhead_sources.dir/fig17_overhead_sources.cc.o.d"
  "fig17_overhead_sources"
  "fig17_overhead_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_overhead_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
