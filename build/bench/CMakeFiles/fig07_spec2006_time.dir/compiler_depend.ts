# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig07_spec2006_time.
