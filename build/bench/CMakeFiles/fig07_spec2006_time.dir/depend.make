# Empty dependencies file for fig07_spec2006_time.
# This may be replaced when dependencies are built.
