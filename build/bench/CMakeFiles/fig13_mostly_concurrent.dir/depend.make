# Empty dependencies file for fig13_mostly_concurrent.
# This may be replaced when dependencies are built.
