file(REMOVE_RECURSE
  "CMakeFiles/fig13_mostly_concurrent.dir/fig13_mostly_concurrent.cc.o"
  "CMakeFiles/fig13_mostly_concurrent.dir/fig13_mostly_concurrent.cc.o.d"
  "fig13_mostly_concurrent"
  "fig13_mostly_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_mostly_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
