file(REMOVE_RECURSE
  "CMakeFiles/fig12_cpu_utilisation.dir/fig12_cpu_utilisation.cc.o"
  "CMakeFiles/fig12_cpu_utilisation.dir/fig12_cpu_utilisation.cc.o.d"
  "fig12_cpu_utilisation"
  "fig12_cpu_utilisation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cpu_utilisation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
