# Empty dependencies file for fig19_mimalloc_bench.
# This may be replaced when dependencies are built.
