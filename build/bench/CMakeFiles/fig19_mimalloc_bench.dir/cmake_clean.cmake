file(REMOVE_RECURSE
  "CMakeFiles/fig19_mimalloc_bench.dir/fig19_mimalloc_bench.cc.o"
  "CMakeFiles/fig19_mimalloc_bench.dir/fig19_mimalloc_bench.cc.o.d"
  "fig19_mimalloc_bench"
  "fig19_mimalloc_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_mimalloc_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
