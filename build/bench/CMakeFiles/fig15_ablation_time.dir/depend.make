# Empty dependencies file for fig15_ablation_time.
# This may be replaced when dependencies are built.
