file(REMOVE_RECURSE
  "CMakeFiles/fig10_spec2006_memory.dir/fig10_spec2006_memory.cc.o"
  "CMakeFiles/fig10_spec2006_memory.dir/fig10_spec2006_memory.cc.o.d"
  "fig10_spec2006_memory"
  "fig10_spec2006_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_spec2006_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
