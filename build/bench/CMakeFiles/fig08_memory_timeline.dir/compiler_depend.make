# Empty compiler generated dependencies file for fig08_memory_timeline.
# This may be replaced when dependencies are built.
