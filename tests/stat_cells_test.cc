/**
 * @file
 * StatCells aggregation-exactness tests: the striped counters must sum to
 * exactly what was added (and subtracted — gauges rely on 64-bit
 * wraparound across shards) no matter how many threads wrote from which
 * shards. Labelled tsan so the sanitizer build replays the races.
 */
#include "core/stat_cells.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace msw::core {
namespace {

TEST(StatCellsTest, SingleThreadExact)
{
    StatCells cells;
    EXPECT_EQ(cells.read(Stat::kAllocCalls), 0u);
    for (int i = 0; i < 1000; ++i)
        cells.add(Stat::kAllocCalls);
    cells.add(Stat::kBytesReleased, 12345);
    EXPECT_EQ(cells.read(Stat::kAllocCalls), 1000u);
    EXPECT_EQ(cells.read(Stat::kBytesReleased), 12345u);
    EXPECT_EQ(cells.read(Stat::kFreeCalls), 0u);
}

TEST(StatCellsTest, MultiThreadAggregationIsExact)
{
    constexpr unsigned kThreads = 16;  // > shard count: shards are shared
    constexpr std::uint64_t kPerThread = 100'000;
    StatCells cells;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cells] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                cells.add(Stat::kAllocCalls);
                cells.add(Stat::kBytesScanned, 3);
            }
        });
    }
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(cells.read(Stat::kAllocCalls), kThreads * kPerThread);
    EXPECT_EQ(cells.read(Stat::kBytesScanned), kThreads * kPerThread * 3);
}

TEST(StatCellsTest, GaugeSubFromOtherShardWrapsExactly)
{
    // A gauge's add and sub can land on different shards (freeing thread
    // != allocating thread). Individual shards then go "negative", but
    // unsigned wraparound makes the sum exact.
    StatCells cells;
    std::thread adder([&] { cells.add(Stat::kLiveBytes, 1'000'000); });
    adder.join();
    std::thread subber([&] { cells.sub(Stat::kLiveBytes, 999'999); });
    subber.join();
    EXPECT_EQ(cells.read(Stat::kLiveBytes), 1u);
}

TEST(StatCellsTest, ConcurrentGaugeChurnBalancesToZero)
{
    constexpr unsigned kThreads = 8;
    constexpr int kIters = 50'000;
    StatCells cells;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cells] {
            for (int i = 0; i < kIters; ++i) {
                cells.add(Stat::kLiveBytes, 64);
                cells.sub(Stat::kLiveBytes, 64);
            }
        });
    }
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(cells.read(Stat::kLiveBytes), 0u);
}

TEST(StatCellsTest, ReadAllMatchesPerStatReads)
{
    StatCells cells;
    for (unsigned s = 0; s < kStatCount; ++s)
        cells.add(static_cast<Stat>(s), s + 1);
    std::uint64_t all[kStatCount];
    cells.read_all(all);
    for (unsigned s = 0; s < kStatCount; ++s) {
        EXPECT_EQ(all[s], s + 1) << "stat " << s;
        EXPECT_EQ(cells.read(static_cast<Stat>(s)), s + 1);
    }
}

}  // namespace
}  // namespace msw::core
