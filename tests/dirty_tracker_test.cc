// Dirty-tracker tests, parameterised over the available backends so the
// soft-dirty and mprotect implementations are held to the same contract.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <string>

#include "sweep/dirty_tracker.h"
#include "util/bits.h"
#include "vm/vm.h"

namespace msw::sweep {
namespace {

struct Backend {
    std::string name;
    std::function<std::unique_ptr<DirtyTracker>(const vm::Reservation*)>
        make;
};

std::vector<Backend>
available_backends()
{
    std::vector<Backend> out;
    if (SoftDirtyTracker::make() != nullptr) {
        out.push_back(
            {"softdirty", [](const vm::Reservation*) {
                 return std::unique_ptr<DirtyTracker>(
                     SoftDirtyTracker::make().release());
             }});
    }
    out.push_back({"mprotect", [](const vm::Reservation* heap) {
                       return std::unique_ptr<DirtyTracker>(
                           new MprotectTracker(heap));
                   }});
    return out;
}

class DirtyTrackerTest : public ::testing::TestWithParam<Backend>
{
  protected:
    DirtyTrackerTest() : heap(vm::Reservation::reserve(8 << 20))
    {
        heap.commit_must(heap.base(), heap.size());
        tracker = GetParam().make(&heap);
    }

    static bool
    contains_page(const std::vector<Range>& dirty, std::uintptr_t addr)
    {
        const std::uintptr_t page = align_down(addr, vm::kPageSize);
        for (const Range& r : dirty) {
            if (page >= r.base && page < r.end())
                return true;
        }
        return false;
    }

    vm::Reservation heap;
    std::unique_ptr<DirtyTracker> tracker;
};

TEST_P(DirtyTrackerTest, DetectsWriteDuringEpoch)
{
    tracker->begin({Range{heap.base(), heap.size()}});
    auto* p = reinterpret_cast<volatile char*>(heap.base() + 5 * 4096 + 17);
    *p = 1;
    std::vector<Range> dirty;
    tracker->end_collect(dirty);
    EXPECT_TRUE(contains_page(dirty, heap.base() + 5 * 4096));
}

TEST_P(DirtyTrackerTest, UntouchedPagesStayClean)
{
    // Touch everything before the epoch so pre-epoch dirtiness can't leak.
    std::memset(to_ptr(heap.base()), 1, heap.size());
    tracker->begin({Range{heap.base(), heap.size()}});
    auto* p = reinterpret_cast<volatile char*>(heap.base());
    *p = 2;
    std::vector<Range> dirty;
    tracker->end_collect(dirty);
    EXPECT_TRUE(contains_page(dirty, heap.base()));
    EXPECT_FALSE(contains_page(dirty, heap.base() + 4096))
        << "adjacent untouched page must be clean";
    EXPECT_FALSE(contains_page(dirty, heap.base() + (4 << 20)));
}

TEST_P(DirtyTrackerTest, ReadsDoNotDirty)
{
    std::memset(to_ptr(heap.base()), 1, heap.size());
    tracker->begin({Range{heap.base(), heap.size()}});
    volatile char sink = 0;
    for (std::size_t off = 0; off < heap.size(); off += 4096)
        sink += *reinterpret_cast<volatile char*>(heap.base() + off);
    std::vector<Range> dirty;
    tracker->end_collect(dirty);
    std::size_t dirty_bytes = 0;
    for (const Range& r : dirty)
        dirty_bytes += r.len;
    EXPECT_EQ(dirty_bytes, 0u) << "pure reads dirtied pages";
    (void)sink;
}

TEST_P(DirtyTrackerTest, SecondEpochStartsClean)
{
    tracker->begin({Range{heap.base(), heap.size()}});
    *reinterpret_cast<volatile char*>(heap.base() + 4096) = 1;
    std::vector<Range> dirty;
    tracker->end_collect(dirty);
    EXPECT_TRUE(contains_page(dirty, heap.base() + 4096));

    // New epoch: old write must not reappear.
    tracker->begin({Range{heap.base(), heap.size()}});
    std::vector<Range> dirty2;
    tracker->end_collect(dirty2);
    EXPECT_FALSE(contains_page(dirty2, heap.base() + 4096));
}

TEST_P(DirtyTrackerTest, MultipleWritesCoalesceToRuns)
{
    std::memset(to_ptr(heap.base()), 1, heap.size());
    tracker->begin({Range{heap.base(), heap.size()}});
    for (int p = 10; p < 14; ++p)
        *reinterpret_cast<volatile char*>(heap.base() + p * 4096) = 1;
    std::vector<Range> dirty;
    tracker->end_collect(dirty);
    // All four pages dirty, as one or more runs.
    for (int p = 10; p < 14; ++p)
        EXPECT_TRUE(contains_page(dirty, heap.base() + p * 4096)) << p;
}

TEST_P(DirtyTrackerTest, WritesOutsideTrackedRangesIgnored)
{
    std::memset(to_ptr(heap.base()), 1, heap.size());
    // Track only the first megabyte.
    tracker->begin({Range{heap.base(), 1 << 20}});
    *reinterpret_cast<volatile char*>(heap.base() + (2 << 20)) = 1;
    std::vector<Range> dirty;
    tracker->end_collect(dirty);
    EXPECT_FALSE(contains_page(dirty, heap.base() + (2 << 20)));
}

INSTANTIATE_TEST_SUITE_P(
    Backends, DirtyTrackerTest, ::testing::ValuesIn(available_backends()),
    [](const ::testing::TestParamInfo<Backend>& info) {
        return info.param.name;
    });

TEST(MakeDirtyTracker, ReturnsSomeBackend)
{
    vm::Reservation heap = vm::Reservation::reserve(1 << 20);
    auto tracker = make_dirty_tracker(&heap);
    ASSERT_NE(tracker, nullptr);
}

TEST(MprotectTrackerTest, NoteCommittedMarksDirty)
{
    vm::Reservation heap = vm::Reservation::reserve(1 << 20);
    heap.commit_must(heap.base(), heap.size());
    MprotectTracker tracker(&heap);
    tracker.begin({Range{heap.base(), 1 << 20}});
    tracker.note_committed(heap.base() + 64 * 1024, 4096);
    std::vector<Range> dirty;
    tracker.end_collect(dirty);
    bool found = false;
    for (const Range& r : dirty)
        found |= r.base <= heap.base() + 64 * 1024 &&
                 heap.base() + 64 * 1024 < r.end();
    EXPECT_TRUE(found);
}

}  // namespace
}  // namespace msw::sweep
