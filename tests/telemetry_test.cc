// Telemetry registry tests: env arming, the JSON export, the
// async-signal-safe dump (exercised through a real SIGUSR2 delivery),
// and op-latency sampling wired through a live MineSweeper.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <string>
#include <unistd.h>

#include "core/minesweeper.h"
#include "metrics/telemetry.h"

namespace msw::metrics {
namespace {

// The registry is process-global, so every test restores the gates it
// flips; tests touching env vars clean those too.
class TelemetryTest : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        telemetry().enabled.store(false, std::memory_order_relaxed);
        telemetry().sample_ops.store(false, std::memory_order_relaxed);
        ::unsetenv("MSW_TELEMETRY");
        ::unsetenv("MSW_STATS_DUMP");
    }
};

std::string
slurp(const std::string& path)
{
    std::string out;
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

std::string
temp_path(const char* tag)
{
    return std::string(::testing::TempDir()) + "telemetry_" + tag + "_" +
           std::to_string(::getpid());
}

TEST_F(TelemetryTest, OffByDefault)
{
    EXPECT_FALSE(telemetry().on());
    EXPECT_FALSE(telemetry().ops_on());
    // Gated trace push must be a no-op while off.
    const std::uint64_t before = telemetry().trace.pushed();
    telemetry().trace_event(TraceEvent::kSweepBegin, 1, 2);
    EXPECT_EQ(telemetry().trace.pushed(), before);
}

TEST_F(TelemetryTest, EnvArmsTheMasterLayer)
{
    ::setenv("MSW_TELEMETRY", "1", 1);
    EXPECT_TRUE(telemetry_init_from_env());
    EXPECT_TRUE(telemetry().on());
    EXPECT_FALSE(telemetry().ops_on()) << "ops sampling is a separate gate";

    ::setenv("MSW_TELEMETRY", "ops", 1);
    EXPECT_TRUE(telemetry_init_from_env());
    EXPECT_TRUE(telemetry().ops_on());
}

TEST_F(TelemetryTest, FalsyEnvStaysOff)
{
    for (const char* v : {"", "0", "off", "false", "no"}) {
        ::setenv("MSW_TELEMETRY", v, 1);
        telemetry().enabled.store(false, std::memory_order_relaxed);
        EXPECT_FALSE(telemetry_init_from_env()) << "value: " << v;
        EXPECT_FALSE(telemetry().on()) << "value: " << v;
    }
}

TEST_F(TelemetryTest, StatsDumpPathImpliesMaster)
{
    const std::string path = temp_path("implied");
    ::setenv("MSW_STATS_DUMP", path.c_str(), 1);
    EXPECT_TRUE(telemetry_init_from_env());
    EXPECT_TRUE(telemetry().on());
    ASSERT_NE(telemetry_stats_dump_path(), nullptr);
    EXPECT_STREQ(telemetry_stats_dump_path(), path.c_str());
}

TEST_F(TelemetryTest, JsonExportCarriesHistogramsAndTrace)
{
    telemetry().enabled.store(true, std::memory_order_relaxed);
    telemetry().pause_ns.record(1234);
    telemetry().trace_event(TraceEvent::kAllocPause, 1234, 0);

    const std::string path = temp_path("json");
    ASSERT_TRUE(telemetry_write_json(path.c_str()));
    const std::string json = slurp(path);
    ::unlink(path.c_str());

    // Keys the plot/CI tooling depends on.
    EXPECT_NE(json.find("\"pause_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"alloc_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"free_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"p999_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"trace\""), std::string::npos);
    EXPECT_NE(json.find("alloc_pause"), std::string::npos)
        << "trace entries are exported by event name";
}

TEST_F(TelemetryTest, SigsafeDumpWritesDigests)
{
    telemetry().enabled.store(true, std::memory_order_relaxed);
    telemetry().pause_ns.record(4321);

    const std::string path = temp_path("sigsafe");
    const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0600);
    ASSERT_GE(fd, 0);
    telemetry_dump_sigsafe(fd);
    ::close(fd);
    const std::string text = slurp(path);
    ::unlink(path.c_str());

    EXPECT_NE(text.find("msw telemetry"), std::string::npos);
    EXPECT_NE(text.find("pause_ns"), std::string::npos);
    EXPECT_NE(text.find("p99"), std::string::npos);
}

TEST_F(TelemetryTest, Sigusr2DeliversTheDump)
{
    telemetry().enabled.store(true, std::memory_order_relaxed);
    telemetry().pause_ns.record(99);
    telemetry_install_sigusr2();

    // The handler writes to stderr; point fd 2 at a file around the
    // raise() so the dump lands somewhere this test can read.
    const std::string path = temp_path("usr2");
    const int saved = ::dup(STDERR_FILENO);
    ASSERT_GE(saved, 0);
    const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0600);
    ASSERT_GE(fd, 0);
    ASSERT_GE(::dup2(fd, STDERR_FILENO), 0);
    ::close(fd);

    ::raise(SIGUSR2);

    ::dup2(saved, STDERR_FILENO);
    ::close(saved);
    const std::string text = slurp(path);
    ::unlink(path.c_str());

    EXPECT_NE(text.find("msw telemetry"), std::string::npos)
        << "SIGUSR2 must produce the text dump";
}

TEST_F(TelemetryTest, OpsSamplingTimesMineSweeperCalls)
{
    telemetry().enabled.store(true, std::memory_order_relaxed);
    telemetry().sample_ops.store(true, std::memory_order_relaxed);
    const std::uint64_t allocs0 = telemetry().alloc_ns.count();
    const std::uint64_t frees0 = telemetry().free_ns.count();

    {
        core::MineSweeper msw;
        msw.register_mutator_thread();
        for (int i = 0; i < 1000; ++i) {
            void* p = msw.alloc(64);
            ASSERT_NE(p, nullptr);
            msw.free(p);
        }
        msw.unregister_mutator_thread();
    }

    EXPECT_GE(telemetry().alloc_ns.count(), allocs0 + 1000);
    EXPECT_GE(telemetry().free_ns.count(), frees0 + 1000);
    EXPECT_GT(telemetry().alloc_ns.summarize().p50_ns, 0u);
}

TEST_F(TelemetryTest, OpsOffRecordsNothing)
{
    telemetry().enabled.store(true, std::memory_order_relaxed);
    telemetry().sample_ops.store(false, std::memory_order_relaxed);
    const std::uint64_t allocs0 = telemetry().alloc_ns.count();

    core::MineSweeper msw;
    msw.register_mutator_thread();
    void* p = msw.alloc(64);
    ASSERT_NE(p, nullptr);
    msw.free(p);
    msw.unregister_mutator_thread();

    EXPECT_EQ(telemetry().alloc_ns.count(), allocs0)
        << "the op gate must keep the fast path untimed";
}

TEST_F(TelemetryTest, NowNsIsMonotonic)
{
    const std::uint64_t a = telemetry_now_ns();
    const std::uint64_t b = telemetry_now_ns();
    EXPECT_GE(b, a);
    EXPECT_GT(b, 0u);
}

}  // namespace
}  // namespace msw::metrics
