/**
 * @file
 * SweepController unit tests: request/serve ordering, the single-sweeper
 * invariant, watchdog fallback, the allocation-pause gate and shutdown
 * draining — the control-plane races the refactor moved out of
 * MineSweeper. Labelled tsan so the sanitizer build replays them.
 */
#include "core/sweep_controller.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/stat_cells.h"
#include "util/failpoint.h"

namespace msw::core {
namespace {

using util::Failpoint;
using util::FailpointPolicy;

TEST(SweepControllerTest, SynchronousModeRunsInline)
{
    StatCells stats;
    std::atomic<int> runs{0};
    SweepController::Config cfg;
    cfg.background = false;
    SweepController ctl(cfg, [&] { runs.fetch_add(1); }, &stats);
    ctl.start();  // no-op without a background sweeper

    ctl.request_sweep(false);
    EXPECT_EQ(runs.load(), 1);
    EXPECT_EQ(ctl.sweeps_done(), 1u);

    ctl.force_sweep();
    EXPECT_EQ(runs.load(), 2);

    // wait_idle is immediate in synchronous mode.
    ctl.wait_idle();
}

TEST(SweepControllerTest, BackgroundServesRequest)
{
    StatCells stats;
    std::atomic<int> runs{0};
    SweepController::Config cfg;
    SweepController ctl(cfg, [&] { runs.fetch_add(1); }, &stats);
    ctl.start();

    ctl.request_sweep(false);
    ctl.wait_idle();
    EXPECT_GE(runs.load(), 1);
    EXPECT_GE(ctl.sweeps_done(), 1u);
}

TEST(SweepControllerTest, ForceSweepWaitsForCompletion)
{
    StatCells stats;
    std::atomic<int> runs{0};
    SweepController::Config cfg;
    SweepController ctl(cfg, [&] { runs.fetch_add(1); }, &stats);
    ctl.start();

    for (int i = 0; i < 5; ++i) {
        const std::uint64_t before = ctl.sweeps_done();
        ctl.force_sweep();
        EXPECT_GE(ctl.sweeps_done(), before + 1);
    }
    EXPECT_GE(runs.load(), 5);
}

TEST(SweepControllerTest, SingleSweeperInvariant)
{
    StatCells stats;
    std::atomic<bool> release{false};
    std::atomic<int> concurrent{0};
    std::atomic<int> peak{0};
    SweepController::Config cfg;
    cfg.background = false;
    SweepController ctl(
        cfg,
        [&] {
            const int now = concurrent.fetch_add(1) + 1;
            int prev = peak.load();
            while (now > prev && !peak.compare_exchange_weak(prev, now)) {
            }
            while (!release.load(std::memory_order_acquire))
                std::this_thread::yield();
            concurrent.fetch_sub(1);
        },
        &stats);

    std::thread holder([&] { EXPECT_TRUE(ctl.run_sweep_now()); });
    // Wait until the holder is inside the sweep, then every other
    // attempt must bounce off the CAS.
    while (concurrent.load() == 0)
        std::this_thread::yield();
    for (int i = 0; i < 8; ++i)
        EXPECT_FALSE(ctl.run_sweep_now());
    EXPECT_TRUE(ctl.sweep_in_progress());
    release.store(true, std::memory_order_release);
    holder.join();
    EXPECT_EQ(peak.load(), 1);
    EXPECT_EQ(ctl.sweeps_done(), 1u);
    EXPECT_FALSE(ctl.sweep_in_progress());
}

TEST(SweepControllerTest, WatchdogFallsBackToSynchronousSweep)
{
    StatCells stats;
    std::atomic<int> runs{0};
    SweepController::Config cfg;
    cfg.watchdog_timeout_ms = 20;
    SweepController ctl(cfg, [&] { runs.fetch_add(1); }, &stats);
    ctl.start();

    // Sweeper plays dead while armed: requests age unserved.
    util::failpoint_arm(Failpoint::kSweeperStall, FailpointPolicy::prob(1.0));
    ctl.request_sweep(false);
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    // A mutator-side check past the deadline must sweep synchronously.
    ctl.check_watchdog();
    util::failpoint_disarm(Failpoint::kSweeperStall);

    EXPECT_GE(runs.load(), 1);
    EXPECT_GE(stats.read(Stat::kWatchdogFallbacks), 1u);
    ctl.wait_idle();
}

TEST(SweepControllerTest, PauseGateReleasedBySweepCompletion)
{
    StatCells stats;
    SweepController::Config cfg;
    SweepController ctl(
        cfg,
        [&] { std::this_thread::sleep_for(std::chrono::milliseconds(20)); },
        &stats);
    ctl.start();

    ctl.request_sweep(/*pause_allocations=*/true);
    // The gate must open once the sweep completes (bounded by the gate's
    // internal 2 s cap, far above the 20 ms sweep).
    ctl.maybe_pause();
    ctl.wait_idle();
    EXPECT_GE(ctl.sweeps_done(), 1u);
    EXPECT_GT(stats.read(Stat::kPauseNs), 0u);
    // Gate open: a second call returns without waiting.
    ctl.maybe_pause();
}

TEST(SweepControllerTest, SweepContextThreadsNeverPause)
{
    StatCells stats;
    SweepController::Config cfg;
    SweepController ctl(cfg, [] {}, &stats);
    ctl.start();

    EXPECT_FALSE(SweepController::in_sweep_context());
    {
        SweepController::ScopedSweepContext outer;
        EXPECT_TRUE(SweepController::in_sweep_context());
        {
            SweepController::ScopedSweepContext inner;
            EXPECT_TRUE(SweepController::in_sweep_context());
        }
        // Restore, not clear: nested scopes keep the outer context.
        EXPECT_TRUE(SweepController::in_sweep_context());
        // Sweep-machinery threads skip the gate even while it is closed.
        ctl.request_sweep(true);
        ctl.maybe_pause();
    }
    EXPECT_FALSE(SweepController::in_sweep_context());
    ctl.wait_idle();
}

TEST(SweepControllerTest, ShutdownDrainsConcurrentControlCalls)
{
    StatCells stats;
    std::atomic<bool> stop{false};
    auto ctl = std::make_unique<SweepController>(
        SweepController::Config{}, [] {}, &stats);
    ctl->start();

    // Hammer every control entry point while shutdown races them; the
    // destructor-path drain must leave no thread blocked.
    std::vector<std::thread> threads;
    for (int i = 0; i < 4; ++i) {
        threads.emplace_back([&, i] {
            while (!stop.load(std::memory_order_acquire)) {
                ctl->request_sweep(i % 2 == 0);
                ctl->force_sweep();
                ctl->maybe_pause();
                ctl->wait_for_sweep_completion(1);
            }
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ctl->shutdown();
    stop.store(true, std::memory_order_release);
    for (auto& t : threads)
        t.join();

    // Post-shutdown control calls are safe no-ops.
    EXPECT_FALSE(ctl->run_sweep_now());
    ctl->force_sweep();
    ctl.reset();
}

TEST(SweepControllerTest, ShutdownIsIdempotent)
{
    StatCells stats;
    std::atomic<int> runs{0};
    SweepController ctl(SweepController::Config{},
                        [&] { runs.fetch_add(1); }, &stats);
    ctl.start();
    ctl.force_sweep();
    ctl.shutdown();
    ctl.shutdown();
    EXPECT_GE(runs.load(), 1);
    EXPECT_FALSE(ctl.run_sweep_now());
}

}  // namespace
}  // namespace msw::core
