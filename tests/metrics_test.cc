// Metrics tests: RSS sampling, CPU/wall clocks, subprocess round-trips,
// geomean and table formatting.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "metrics/metrics.h"
#include "vm/vm.h"

namespace msw::metrics {
namespace {

TEST(Clocks, WallAdvances)
{
    const double a = wall_seconds();
    struct timespec ts {
        0, 20 * 1000 * 1000
    };
    nanosleep(&ts, nullptr);
    EXPECT_GT(wall_seconds(), a + 0.015);
}

TEST(Clocks, CpuAdvancesUnderWork)
{
    const double a = process_cpu_seconds();
    volatile std::uint64_t x = 1;
    for (int i = 0; i < 30000000; ++i)
        x = x * 31 + 7;
    EXPECT_GT(process_cpu_seconds(), a);
}

TEST(Sampler, ObservesAllocationGrowth)
{
    RssSampler sampler(2);
    const std::size_t kBytes = 64 << 20;
    vm::Reservation r = vm::Reservation::reserve(kBytes);
    r.commit_must(r.base(), kBytes);
    std::memset(reinterpret_cast<void*>(r.base()), 1, kBytes);
    struct timespec ts {
        0, 30 * 1000 * 1000
    };
    nanosleep(&ts, nullptr);
    sampler.stop();
    EXPECT_GE(sampler.peak(), sampler.average());
    EXPECT_GT(sampler.peak(), kBytes / 2);
    EXPECT_GE(sampler.series().size(), 2u);
}

TEST(Subprocess, ReturnsChildRecord)
{
    const RunRecord rec = run_in_subprocess([] {
        RunRecord r;
        r.wall_s = 1.5;
        r.cpu_s = 0.5;
        r.allocs = 42;
        r.frees = 42;
        r.checksum = 0xabcd;
        r.avg_rss = 1000;
        r.peak_rss = 2000;
        r.sweeps = 7;
        r.rss_series = {{0.1, 500}, {0.2, 1500}};
        return r;
    });
    ASSERT_TRUE(rec.ok);
    EXPECT_DOUBLE_EQ(rec.wall_s, 1.5);
    EXPECT_EQ(rec.allocs, 42u);
    EXPECT_EQ(rec.checksum, 0xabcdu);
    EXPECT_EQ(rec.sweeps, 7u);
    ASSERT_EQ(rec.rss_series.size(), 2u);
    EXPECT_EQ(rec.rss_series[1].second, 1500u);
}

TEST(Subprocess, ChildCrashReportsNotOk)
{
    const RunRecord rec = run_in_subprocess([]() -> RunRecord {
        std::abort();
    });
    EXPECT_FALSE(rec.ok);
}

TEST(Subprocess, ChildIsolatesMemory)
{
    // Memory the child touches must not affect the parent's RSS.
    const std::size_t before = vm::current_rss_bytes();
    const RunRecord rec = run_in_subprocess([] {
        vm::Reservation r = vm::Reservation::reserve(256 << 20);
        r.commit_must(r.base(), 256 << 20);
        std::memset(reinterpret_cast<void*>(r.base()), 1, 256 << 20);
        RunRecord out;
        out.peak_rss = vm::current_rss_bytes();
        return out;
    });
    ASSERT_TRUE(rec.ok);
    EXPECT_GT(rec.peak_rss, 200u << 20);
    EXPECT_LT(vm::current_rss_bytes(), before + (64u << 20));
}

TEST(Subprocess, TimeoutKillsHungChild)
{
    const double t0 = wall_seconds();
    const RunRecord rec = run_in_subprocess(
        []() -> RunRecord {
            for (;;)
                pause();
        },
        /*timeout_s=*/1);
    EXPECT_FALSE(rec.ok);
    EXPECT_LT(wall_seconds() - t0, 10.0);
}

TEST(Geomean, MatchesClosedForm)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_EQ(geomean({}), 0.0);
}

TEST(Format, Ratios)
{
    EXPECT_EQ(fmt_ratio(1.0536), "1.054x");
    EXPECT_EQ(fmt_mib(1024 * 1024), "1.0");
    EXPECT_EQ(fmt_seconds(1.23456), "1.235");
}

TEST(TableTest, PrintsWithoutCrashing)
{
    Table t({"bench", "time", "memory"});
    t.add_row({"xalancbmk", "1.73x", "1.12x"});
    t.add_row({"geomean", "1.05x", "1.11x"});
    t.print();
}

}  // namespace
}  // namespace msw::metrics
