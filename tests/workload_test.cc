// Workload subsystem tests: profile determinism, executor invariants,
// system factory, SPEC profile tables, and stress-kernel smoke runs.
#include <gtest/gtest.h>

#include "workload/executor.h"
#include "workload/mimalloc_kernels.h"
#include "workload/runner.h"
#include "workload/spec_profiles.h"
#include "workload/system.h"

namespace msw::workload {
namespace {

Profile
tiny_profile()
{
    Profile p;
    p.name = "tiny";
    p.ticks = 5000;
    p.allocs_per_tick = 4;
    p.lifetime_mean_ticks = 40;
    p.long_lived_frac = 0.01;
    p.ptr_slots = 2;
    p.ptr_prob = 0.4;
    p.work_per_tick = 50;
    return p;
}

TEST(SystemFactory, CreatesAllKinds)
{
    for (SystemKind kind :
         {SystemKind::kBaseline, SystemKind::kMineSweeper,
          SystemKind::kMineSweeperMostly, SystemKind::kMarkUs,
          SystemKind::kFFMalloc}) {
        System sys = make_system(kind);
        ASSERT_NE(sys.allocator, nullptr);
        EXPECT_EQ(sys.name, system_kind_name(kind));
        void* p = sys.allocator->alloc(100);
        ASSERT_NE(p, nullptr);
        sys.allocator->free(p);
        sys.flush();
    }
}

TEST(Executor, AllocsAndFreesBalance)
{
    System sys = make_system(SystemKind::kBaseline);
    const WorkloadResult r = run_profile(sys, tiny_profile());
    EXPECT_GT(r.allocs, 10000u);
    EXPECT_EQ(r.allocs, r.frees)
        << "every allocation must be freed by the end of the run";
    EXPECT_GT(r.bytes_allocated, 0u);
}

TEST(Executor, DeterministicChecksumAcrossSystems)
{
    // The same profile must produce the same trace (checksum) no matter
    // which allocator runs underneath — the workloads are
    // system-independent by construction.
    const Profile p = tiny_profile();
    std::uint64_t checksums[4];
    int i = 0;
    for (SystemKind kind :
         {SystemKind::kBaseline, SystemKind::kMineSweeper,
          SystemKind::kMarkUs, SystemKind::kFFMalloc}) {
        System sys = make_system(kind);
        checksums[i++] = run_profile(sys, p).checksum;
    }
    EXPECT_EQ(checksums[0], checksums[1]);
    EXPECT_EQ(checksums[0], checksums[2]);
    EXPECT_EQ(checksums[0], checksums[3]);
}

TEST(Executor, DifferentSeedsDiverge)
{
    Profile a = tiny_profile();
    Profile b = tiny_profile();
    b.seed += 1;
    System s1 = make_system(SystemKind::kBaseline);
    System s2 = make_system(SystemKind::kBaseline);
    EXPECT_NE(run_profile(s1, a).checksum, run_profile(s2, b).checksum);
}

TEST(Executor, MultiThreadedProfileCompletes)
{
    Profile p = tiny_profile();
    p.threads = 4;
    System sys = make_system(SystemKind::kMineSweeper);
    const WorkloadResult r = run_profile(sys, p);
    EXPECT_EQ(r.allocs, r.frees);
}

TEST(Executor, MineSweeperSweepsUnderChurnProfile)
{
    Profile p = tiny_profile();
    p.ticks = 30000;
    core::Options o;
    o.min_sweep_bytes = 64 * 1024;
    System sys = make_system(SystemKind::kMineSweeper, o);
    run_profile(sys, p);
    EXPECT_GT(sys.sweeps(), 0u);
}

TEST(SpecProfiles, SuitesHaveExpectedBenchmarks)
{
    const auto suite06 = spec2006_profiles();
    EXPECT_EQ(suite06.size(), 19u);
    const auto suite17 = spec2017_profiles();
    EXPECT_EQ(suite17.size(), 18u);

    int threaded = 0;
    for (const Profile& p : suite17)
        threaded += p.threads > 1;
    EXPECT_EQ(threaded, 10) << "ten starred (OpenMP) benchmarks in Fig 18";
}

TEST(SpecProfiles, AllocationIntensityOrdering)
{
    // The profiles must encode the paper's key contrast: xalancbmk and
    // omnetpp allocate orders of magnitude more than lbm/libquantum.
    const auto by_name = [](const char* name) {
        return spec_profile(name);
    };
    const auto total_allocs = [](const Profile& p) {
        return p.ticks * p.allocs_per_tick;
    };
    EXPECT_GT(total_allocs(by_name("xalancbmk")),
              50 * total_allocs(by_name("lbm")));
    EXPECT_GT(total_allocs(by_name("omnetpp")),
              50 * total_allocs(by_name("libquantum")));
    EXPECT_GT(total_allocs(by_name("perlbench")),
              10 * total_allocs(by_name("namd")));
}

TEST(SpecProfiles, ScaleShrinksTicks)
{
    const Profile full = spec_profile("gcc", 1.0);
    const Profile small = spec_profile("gcc", 0.1);
    EXPECT_LT(small.ticks, full.ticks);
}

TEST(StressKernels, AllSixteenPresent)
{
    const auto kernels = mimalloc_kernels();
    ASSERT_EQ(kernels.size(), 16u);
    EXPECT_EQ(kernels.front().name, "alloc-test1");
    EXPECT_EQ(kernels.back().name, "xmalloc-testN");
}

class KernelSmokeTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, SystemKind>>
{
};

TEST_P(KernelSmokeTest, RunsCleanlyAtTinyScale)
{
    const auto [kernel_idx, kind] = GetParam();
    const auto kernels = mimalloc_kernels();
    System sys = make_system(kind);
    const WorkloadResult r = kernels[kernel_idx].run(sys, 0.01);
    EXPECT_GT(r.allocs, 0u);
    EXPECT_EQ(r.allocs, r.frees) << kernels[kernel_idx].name;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelSmokeTest,
    ::testing::Combine(::testing::Range<std::size_t>(0, 16),
                       ::testing::Values(SystemKind::kBaseline,
                                         SystemKind::kMineSweeper)),
    [](const ::testing::TestParamInfo<std::tuple<std::size_t, SystemKind>>&
           info) {
        const auto kernels = mimalloc_kernels();
        std::string name = kernels[std::get<0>(info.param)].name;
        for (char& c : name) {
            if (c == '-')
                c = '_';
        }
        return name + "_" +
               system_kind_name(std::get<1>(info.param));
    });

TEST(Runner, SubprocessMeasurementRoundTrips)
{
    Profile p = tiny_profile();
    const metrics::RunRecord rec =
        measure_profile(SystemKind::kBaseline, p);
    ASSERT_TRUE(rec.ok);
    EXPECT_GT(rec.wall_s, 0.0);
    EXPECT_GT(rec.allocs, 0u);
    EXPECT_EQ(rec.allocs, rec.frees);
    EXPECT_GT(rec.peak_rss, 1u << 20);
    EXPECT_GE(rec.peak_rss, rec.avg_rss);
}

TEST(Runner, ChecksumsIdenticalAcrossSubprocessRuns)
{
    Profile p = tiny_profile();
    const auto a = measure_profile(SystemKind::kBaseline, p);
    const auto b = measure_profile(SystemKind::kMineSweeper, p);
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_GT(b.sweeps, 0u);
}

}  // namespace
}  // namespace msw::workload
