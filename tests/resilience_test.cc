// Resilience tests: memory-pressure graceful degradation, the sweeper
// watchdog, deferred-unmap queue overflow, shutdown races, and a
// fault-injection soak asserting the UAF guarantees hold while VM
// operations fail underneath the allocator.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/minesweeper.h"
#include "util/failpoint.h"
#include "workload/attack.h"
#include "workload/executor.h"
#include "workload/system.h"

namespace msw::core {
namespace {

using util::Failpoint;
using util::FailpointPolicy;

/** Process-global failpoints: leave nothing armed behind a test. */
class ResilienceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        util::failpoint_disarm_all();
        util::failpoint_reset_counters();
    }

    void
    TearDown() override
    {
        util::failpoint_disarm_all();
        util::failpoint_reset_counters();
    }

    static bool
    wait_until(const std::function<bool()>& pred, unsigned timeout_ms)
    {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(timeout_ms);
        while (std::chrono::steady_clock::now() < deadline) {
            if (pred())
                return true;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return pred();
    }
};

/** Options that keep every sweep under explicit test control. */
Options
manual_sweep_options()
{
    Options o;
    o.sweep_threshold = 1e9;
    o.min_sweep_bytes = ~std::size_t{0};
    o.pause_factor = 0;
    return o;
}

TEST_F(ResilienceTest, EmergencySweepRecoversExhaustedHeap)
{
    Options o = manual_sweep_options();
    o.jade.heap_bytes = 64 << 20;
    MineSweeper ms(o);

    // Quarantine ~48 MiB of dead large blocks. Nothing references them,
    // but with sweeps disabled their extents stay unavailable.
    constexpr std::size_t kBlock = 1 << 20;
    for (int i = 0; i < 48; ++i) {
        void* p = ms.alloc(kBlock);
        ASSERT_NE(p, nullptr);
        ms.free(p);
    }
    ASSERT_EQ(ms.sweep_stats().sweeps, 0u);

    // The heap cannot hold another ~32 MiB live without reclaiming the
    // quarantine: alloc() must run the emergency path, not fail or abort.
    std::vector<void*> live;
    for (int i = 0; i < 32; ++i) {
        void* p = ms.alloc(kBlock);
        ASSERT_NE(p, nullptr) << "emergency reclaim should have freed "
                                 "unreferenced quarantine, block "
                              << i;
        std::memset(p, 0x11, kBlock);
        live.push_back(p);
    }

    const SweepStats st = ms.sweep_stats();
    EXPECT_GT(st.emergency_sweeps, 0u);
    EXPECT_GT(st.commit_retries, 0u);
    EXPECT_EQ(st.oom_returns, 0u);
    for (void* p : live)
        ms.free(p);
}

TEST_F(ResilienceTest, NullptrOnlyAfterReclaimIsExhausted)
{
    Options o = manual_sweep_options();
    o.jade.heap_bytes = 32 << 20;
    o.alloc_retry_attempts = 2;
    o.alloc_retry_backoff_us = 1;
    MineSweeper ms(o);

    // Fill the heap with *live* blocks: reclaim cannot help here, so the
    // allocator must eventually return nullptr — and must not abort.
    std::vector<void*> live;
    for (;;) {
        void* p = ms.alloc(1 << 20);
        if (p == nullptr)
            break;
        live.push_back(p);
        ASSERT_LT(live.size(), 100u) << "32 MiB heap cannot hold this";
    }
    const SweepStats st = ms.sweep_stats();
    EXPECT_GT(st.oom_returns, 0u);
    EXPECT_GT(st.emergency_sweeps, 0u)
        << "nullptr must be preceded by reclaim attempts";

    // Degradation is not terminal: freeing memory restores service.
    ASSERT_GE(live.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        ms.free(live.back());
        live.pop_back();
    }
    void* again = ms.alloc(1 << 20);
    EXPECT_NE(again, nullptr)
        << "alloc must recover once quarantine becomes reclaimable";
    if (again != nullptr)
        ms.free(again);
    for (void* p : live)
        ms.free(p);
}

TEST_F(ResilienceTest, WatchdogFallsBackWhenSweeperStalls)
{
    util::failpoint_arm(Failpoint::kSweeperStall, FailpointPolicy::prob(1.0));

    Options o;
    o.watchdog_timeout_ms = 50;
    o.sweep_threshold = 0.01;
    o.min_sweep_bytes = 64 << 10;
    o.pause_factor = 0;
    MineSweeper ms(o);

    // Churn long enough for a sweep request to age past the deadline
    // while the background sweeper plays dead.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    SweepStats st;
    do {
        for (int i = 0; i < 128; ++i) {
            void* p = ms.alloc(4096);
            ASSERT_NE(p, nullptr);
            ms.free(p);
        }
        st = ms.sweep_stats();
    } while (st.watchdog_fallbacks == 0 &&
             std::chrono::steady_clock::now() < deadline);

    EXPECT_GT(st.watchdog_fallbacks, 0u)
        << "mutators must take over sweeping from a stalled sweeper";
    EXPECT_GT(st.sweeps, 0u);
    EXPECT_GT(st.failpoint_hits[static_cast<unsigned>(
                  Failpoint::kSweeperStall)],
              0u);

    // Quarantine stays bounded by the fallback sweeps: after draining,
    // another full churn round must still be serviceable.
    util::failpoint_disarm(Failpoint::kSweeperStall);
    ms.force_sweep();  // background sweeper must have recovered
    void* p = ms.alloc(1 << 16);
    EXPECT_NE(p, nullptr);
    ms.free(p);
}

TEST_F(ResilienceTest, PendingUnmapOverflowFallsBackToZeroing)
{
    Options o = manual_sweep_options();
    o.max_pending_unmaps = 4;
    MineSweeper ms(o);

    constexpr std::size_t kLarge = 256 << 10;
    std::vector<unsigned char*> blocks;
    for (int i = 0; i < 12; ++i) {
        auto* p = static_cast<unsigned char*>(ms.alloc(kLarge));
        ASSERT_NE(p, nullptr);
        std::memset(p, 0xee, kLarge);
        blocks.push_back(p);
    }

    // Hold a sweep open so frees land while sweep_active_ is set.
    util::failpoint_arm(Failpoint::kSweepDelay,
                        FailpointPolicy::burst(2000));
    std::thread sweeper([&] { ms.force_sweep(); });
    ASSERT_TRUE(wait_until(
        [] {
            return util::failpoint_evaluations(Failpoint::kSweepDelay) > 0;
        },
        5000))
        << "sweep never reached the delay hook";

    // 12 large frees against a 4-entry queue: 4 defer their unmap, 8
    // overflow. Overflowing entries must stay quarantined, mapped, and be
    // zeroed — never dropped, never left with stale contents.
    const std::uint64_t unmapped_before =
        ms.sweep_stats().unmapped_entries;
    for (unsigned char* p : blocks)
        ms.free(p);
    EXPECT_EQ(ms.sweep_stats().unmapped_entries - unmapped_before, 4u);
    for (unsigned char* p : blocks)
        EXPECT_TRUE(ms.in_quarantine(p));
    for (std::size_t i = 4; i < blocks.size(); ++i) {
        // Overflowed entries are readable (still mapped) and zero-filled.
        EXPECT_EQ(blocks[i][0], 0u) << "entry " << i;
        EXPECT_EQ(blocks[i][kLarge - 1], 0u) << "entry " << i;
    }

    util::failpoint_disarm(Failpoint::kSweepDelay);
    sweeper.join();

    // Nothing references the blocks: a full flush must release them all,
    // including the overflowed ones.
    ms.flush();
    ms.force_sweep();
    for (unsigned char* p : blocks)
        EXPECT_FALSE(ms.in_quarantine(p));
}

TEST_F(ResilienceTest, DestructorRacesInFlightForceSweep)
{
    for (int round = 0; round < 3; ++round) {
        util::failpoint_disarm_all();
        Options o = manual_sweep_options();
        auto ms = std::make_unique<MineSweeper>(o);
        std::vector<void*> dead;
        for (int i = 0; i < 64; ++i) {
            void* p = ms->alloc(32 << 10);
            ASSERT_NE(p, nullptr);
            ms->free(p);
        }

        // Stretch the sweep so destruction lands while it is in flight.
        util::failpoint_reset_counters();
        util::failpoint_arm(Failpoint::kSweepDelay,
                            FailpointPolicy::burst(50));
        std::thread t([&] { ms->force_sweep(); });
        ASSERT_TRUE(wait_until(
            [] {
                return util::failpoint_evaluations(Failpoint::kSweepDelay) >
                       0;
            },
            5000));

        // The waiter is inside force_sweep() now: the destructor must
        // drain it safely and finish without hanging or crashing.
        ms.reset();
        t.join();
    }
}

TEST_F(ResilienceTest, UnregisterWhileSweepIsMarking)
{
    Options o = manual_sweep_options();
    o.mode = Mode::kMostlyConcurrent;
    MineSweeper ms(o);

    std::atomic<bool> registered{false};
    std::thread mutator([&] {
        ms.register_mutator_thread();
        registered.store(true);
        // Free traffic whose stack frames the sweep may have snapshotted.
        for (int i = 0; i < 32; ++i) {
            void* p = ms.alloc(8 << 10);
            ASSERT_NE(p, nullptr);
            ms.free(p);
        }
        while (util::failpoint_evaluations(Failpoint::kSweepDelay) == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        // Sweep is mid-flight: unregistration must synchronise with it,
        // not return while the sweeper can still scan this stack.
        ms.unregister_mutator_thread();
    });
    while (!registered.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    util::failpoint_arm(Failpoint::kSweepDelay,
                        FailpointPolicy::burst(30));
    ms.force_sweep();
    mutator.join();
    ms.force_sweep();  // second sweep after the thread left: no stale stack
}

TEST_F(ResilienceTest, CommitFailureSoakKeepsGuarantees)
{
    util::failpoint_seed(2026);
    util::failpoint_arm(Failpoint::kVmCommit, FailpointPolicy::prob(0.05));

    {
        workload::System sys =
            workload::make_system(workload::SystemKind::kMineSweeper);

        // Representative churn (pointer-bearing objects, large tail).
        workload::Profile profile;
        profile.name = "soak";
        profile.ticks = 4000;
        profile.allocs_per_tick = 4;
        profile.large_prob = 0.02;
        const workload::WorkloadResult wr =
            workload::run_profile(sys, profile);
        EXPECT_GT(wr.allocs, 0u);

        // The injection must actually have exercised the failure paths.
        EXPECT_GT(util::failpoint_hits(Failpoint::kVmCommit), 0u);

        // UAF guarantees survive the fault storm: the dangling pointer
        // never sees attacker data, and double frees never alias.
        void* dangling = nullptr;
        sys.add_root(&dangling, sizeof(dangling));
        const workload::AttackResult atk =
            workload::heap_spray_attack(sys, &dangling, 512, 200);
        EXPECT_FALSE(atk.aliased);
        EXPECT_NE(atk.view, workload::AttackResult::View::kAttackerData);
        sys.remove_root(&dangling);

        EXPECT_FALSE(workload::double_free_attack(sys, 50));
        sys.flush();
    }
    util::failpoint_disarm(Failpoint::kVmCommit);
}

}  // namespace
}  // namespace msw::core
