// Latency-histogram tests: bucket geometry, percentile edge cases and
// relative-error bounds, and wraparound-exact merge under concurrent
// recording (the StatCells argument applied to bucket cells).
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "metrics/histogram.h"

namespace msw::metrics {
namespace {

TEST(HistogramBuckets, ExactBelowLinearThreshold)
{
    // Values below kSubCount get one bucket each: no rounding at all
    // in the range where a few nanoseconds matter most.
    for (std::uint64_t v = 0; v < Histogram::kSubCount; ++v) {
        const std::size_t idx = Histogram::bucket_index(v);
        EXPECT_EQ(Histogram::bucket_lower(idx), v) << "v=" << v;
        EXPECT_EQ(Histogram::bucket_upper(idx), v) << "v=" << v;
    }
}

TEST(HistogramBuckets, ValueFallsInItsBucket)
{
    for (std::uint64_t v : {0ull, 1ull, 31ull, 32ull, 33ull, 100ull,
                            1000ull, 4095ull, 4096ull, 1ull << 20,
                            (1ull << 32) + 12345ull, ~0ull}) {
        const std::size_t idx = Histogram::bucket_index(v);
        ASSERT_LT(idx, Histogram::kBuckets) << "v=" << v;
        EXPECT_GE(v, Histogram::bucket_lower(idx)) << "v=" << v;
        EXPECT_LE(v, Histogram::bucket_upper(idx)) << "v=" << v;
    }
}

TEST(HistogramBuckets, ProducedBucketsTileTheAxis)
{
    // The layout leaves unused gap cells between groups, so only walk
    // the indices bucket_index() actually produces: they must be
    // non-decreasing in the value and tile the axis without holes.
    unsigned prev = Histogram::bucket_index(0);
    for (std::uint64_t v = 1; v < (1ull << 22); ++v) {
        const unsigned idx = Histogram::bucket_index(v);
        ASSERT_GE(idx, prev) << "v=" << v;
        if (idx != prev) {
            ASSERT_EQ(Histogram::bucket_lower(idx),
                      Histogram::bucket_upper(prev) + 1)
                << "hole or overlap between produced buckets, v=" << v;
        }
        prev = idx;
    }
}

TEST(HistogramBuckets, RelativeErrorBounded)
{
    // Log-linear with 16 sub-buckets per octave: bucket width is at
    // most 1/16 of the bucket's lower bound, so reporting the upper
    // bound overstates a value by < 6.25%.
    for (std::uint64_t v = Histogram::kSubCount; v < (1ull << 40);
         v = v * 17 / 16 + 1) {
        const std::size_t idx = Histogram::bucket_index(v);
        const double lo = static_cast<double>(Histogram::bucket_lower(idx));
        const double hi = static_cast<double>(Histogram::bucket_upper(idx));
        EXPECT_LE((hi - lo) / lo, 1.0 / 16.0 + 1e-9) << "v=" << v;
    }
}

TEST(HistogramPercentile, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.5), 0u);
    const LatencySummary s = h.summarize();
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.p999_ns, 0u);
    EXPECT_EQ(s.max_ns, 0u);
}

TEST(HistogramPercentile, SingleValue)
{
    Histogram h;
    h.record(7);  // exact range: bucket == value
    const LatencySummary s = h.summarize();
    EXPECT_EQ(s.count, 1u);
    EXPECT_EQ(s.p50_ns, 7u);
    EXPECT_EQ(s.p999_ns, 7u);
    EXPECT_EQ(s.max_ns, 7u);
    EXPECT_DOUBLE_EQ(s.mean_ns, 7.0);
}

TEST(HistogramPercentile, OrderingAndTail)
{
    Histogram h;
    // 1000 samples at 10, 10 samples at 10000: p50/p90 sit in the bulk,
    // p99/p999 must see the tail.
    for (int i = 0; i < 1000; ++i)
        h.record(10);
    for (int i = 0; i < 10; ++i)
        h.record(10000);
    const LatencySummary s = h.summarize();
    EXPECT_EQ(s.count, 1010u);
    EXPECT_EQ(s.p50_ns, 10u);
    EXPECT_EQ(s.p90_ns, 10u);
    EXPECT_GE(s.p999_ns, 10000u * 15 / 16);
    EXPECT_LE(s.p50_ns, s.p90_ns);
    EXPECT_LE(s.p90_ns, s.p99_ns);
    EXPECT_LE(s.p99_ns, s.p999_ns);
    EXPECT_LE(s.p999_ns, s.max_ns);
    EXPECT_GE(s.max_ns, 10000u);
}

TEST(HistogramPercentile, ApproximationWithinBucketError)
{
    Histogram h;
    for (std::uint64_t v = 1; v <= 100000; ++v)
        h.record(v);
    // True p50 is 50000; the report may only overstate by one bucket.
    const std::uint64_t p50 = h.percentile(0.5);
    EXPECT_GE(p50, 50000u);
    EXPECT_LE(static_cast<double>(p50), 50000.0 * (1 + 1.0 / 16) + 1);
}

TEST(HistogramMerge, CellWiseExact)
{
    Histogram a, b;
    for (std::uint64_t v = 0; v < 4096; ++v) {
        a.record(v);
        b.record(v * 3);
    }
    a.merge_from(b);
    EXPECT_EQ(a.count(), 8192u);
    // Sums are tracked exactly, so the merged sum is the exact total.
    std::uint64_t want = 0;
    for (std::uint64_t v = 0; v < 4096; ++v)
        want += v + v * 3;
    EXPECT_EQ(a.sum(), want);
}

TEST(HistogramMerge, ResetClears)
{
    Histogram h;
    h.record(42);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.summarize().max_ns, 0u);
}

// Concurrent recorders into one histogram, plus per-thread histograms
// merged at join: both totals must be exact (relaxed fetch_add never
// loses increments), which is the property the runner relies on.
TEST(HistogramConcurrent, RecordAndMergeAreExact)
{
    constexpr unsigned kThreads = 8;
    constexpr std::uint64_t kPerThread = 100000;
    Histogram shared;
    std::vector<Histogram> local(kThreads);

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                const std::uint64_t v = (t * kPerThread + i) % 100000;
                shared.record(v);
                local[t].record(v);
            }
        });
    }
    for (auto& th : threads)
        th.join();

    Histogram merged;
    for (unsigned t = 0; t < kThreads; ++t)
        merged.merge_from(local[t]);

    EXPECT_EQ(shared.count(), kThreads * kPerThread);
    EXPECT_EQ(merged.count(), kThreads * kPerThread);
    EXPECT_EQ(shared.sum(), merged.sum());
    EXPECT_EQ(shared.summarize().p99_ns, merged.summarize().p99_ns);
}

}  // namespace
}  // namespace msw::metrics
