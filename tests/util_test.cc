// Unit tests for util: bit helpers, RNG determinism and distribution sanity.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/bits.h"
#include "util/rng.h"
#include "util/spin_lock.h"

#include <thread>
#include <vector>

namespace msw {
namespace {

TEST(Bits, Pow2Predicates)
{
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(2));
    EXPECT_TRUE(is_pow2(4096));
    EXPECT_TRUE(is_pow2(std::uint64_t{1} << 63));
    EXPECT_FALSE(is_pow2(0));
    EXPECT_FALSE(is_pow2(3));
    EXPECT_FALSE(is_pow2(4097));
}

TEST(Bits, AlignUpDown)
{
    EXPECT_EQ(align_up(0, 16), 0u);
    EXPECT_EQ(align_up(1, 16), 16u);
    EXPECT_EQ(align_up(16, 16), 16u);
    EXPECT_EQ(align_up(17, 16), 32u);
    EXPECT_EQ(align_down(17, 16), 16u);
    EXPECT_EQ(align_down(15, 16), 0u);
    EXPECT_TRUE(is_aligned(4096, 4096));
    EXPECT_FALSE(is_aligned(4097, 4096));
}

TEST(Bits, Log2)
{
    EXPECT_EQ(log2_floor(1), 0u);
    EXPECT_EQ(log2_floor(2), 1u);
    EXPECT_EQ(log2_floor(3), 1u);
    EXPECT_EQ(log2_floor(4096), 12u);
    EXPECT_EQ(log2_ceil(1), 0u);
    EXPECT_EQ(log2_ceil(3), 2u);
    EXPECT_EQ(log2_ceil(4), 2u);
    EXPECT_EQ(pow2_ceil(5), 8u);
    EXPECT_EQ(pow2_ceil(8), 8u);
}

TEST(Bits, CeilDiv)
{
    EXPECT_EQ(ceil_div(0, 7), 0u);
    EXPECT_EQ(ceil_div(1, 7), 1u);
    EXPECT_EQ(ceil_div(7, 7), 1u);
    EXPECT_EQ(ceil_div(8, 7), 2u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next_u64() == b.next_u64();
    EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRangeAndCoversAll)
{
    Rng r(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t v = r.next_below(10);
        ASSERT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng r(7);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t v = r.next_range(3, 5);
        ASSERT_GE(v, 3u);
        ASSERT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 10000; ++i) {
        const double d = r.next_double();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
    }
}

TEST(Rng, NormalMoments)
{
    Rng r(11);
    const int n = 200000;
    double sum = 0;
    double sq = 0;
    for (int i = 0; i < n; ++i) {
        const double x = r.next_normal();
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, ExponentialMean)
{
    Rng r(13);
    const int n = 200000;
    double sum = 0;
    for (int i = 0; i < n; ++i)
        sum += r.next_exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ParetoBounded)
{
    Rng r(17);
    for (int i = 0; i < 10000; ++i) {
        const double v = r.next_pareto(1.2, 100.0);
        ASSERT_GE(v, 1.0);
        ASSERT_LE(v, 100.0);
    }
}

TEST(SpinLock, MutualExclusion)
{
    SpinLock lock;
    long counter = 0;
    const int kThreads = 4;
    const int kIters = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                lock.lock();
                ++counter;
                lock.unlock();
            }
        });
    }
    for (auto& th : threads)
        th.join();
    EXPECT_EQ(counter, long{kThreads} * kIters);
}

TEST(SpinLock, TryLock)
{
    SpinLock lock;
    EXPECT_TRUE(lock.try_lock());
    EXPECT_FALSE(lock.try_lock());
    lock.unlock();
    EXPECT_TRUE(lock.try_lock());
    lock.unlock();
}

}  // namespace
}  // namespace msw
