// Shadow-map tests: marking, range tests with granule edge cases, dirty-
// chunk clearing, and the de-dup test_and_set.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sweep/shadow_map.h"
#include "util/rng.h"

namespace msw::sweep {
namespace {

constexpr std::uintptr_t kBase = std::uintptr_t{1} << 40;  // fake heap base
constexpr std::size_t kBytes = 64 << 20;

class ShadowTest : public ::testing::Test
{
  protected:
    ShadowMap map{kBase, kBytes};
};

TEST_F(ShadowTest, CoversExactRange)
{
    EXPECT_TRUE(map.covers(kBase));
    EXPECT_TRUE(map.covers(kBase + kBytes - 1));
    EXPECT_FALSE(map.covers(kBase - 1));
    EXPECT_FALSE(map.covers(kBase + kBytes));
}

TEST_F(ShadowTest, MarkSetsExactlyOneGranule)
{
    map.mark(kBase + 1000);
    EXPECT_TRUE(map.test(kBase + 1000));
    // Same granule (16 B): also marked.
    EXPECT_TRUE(map.test(kBase + 1000 - (1000 % 16)));
    // Neighbouring granules: unmarked.
    EXPECT_FALSE(map.test(kBase + 1000 + 16));
    EXPECT_FALSE(map.test(kBase + 1000 - 16 - (1000 % 16)));
}

TEST_F(ShadowTest, TestRangeFindsInteriorMark)
{
    map.mark(kBase + 4096 + 160);  // interior of [4096, 4096+512)
    EXPECT_TRUE(map.test_range(kBase + 4096, 512));
    EXPECT_FALSE(map.test_range(kBase + 4096 + 512, 512));
    EXPECT_FALSE(map.test_range(kBase, 4096));
}

TEST_F(ShadowTest, TestRangeBoundaryInclusive)
{
    // Mark exactly the first granule of an allocation.
    map.mark(kBase + 1024);
    EXPECT_TRUE(map.test_range(kBase + 1024, 16));
    // Mark the last granule.
    map.clear_marks();
    map.mark(kBase + 1024 + 496);
    EXPECT_TRUE(map.test_range(kBase + 1024, 512));
    EXPECT_FALSE(map.test_range(kBase + 1024, 496));
}

TEST_F(ShadowTest, TestRangeSpanningManyWords)
{
    // A range longer than 64 granules exercises the multi-word path.
    const std::size_t len = 64 * 1024;
    EXPECT_FALSE(map.test_range(kBase, len));
    map.mark(kBase + 32 * 1024);
    EXPECT_TRUE(map.test_range(kBase, len));
}

TEST_F(ShadowTest, UnalignedRangeEdges)
{
    // Granule-unaligned base and length must still test conservatively.
    map.mark(kBase + 105);
    EXPECT_TRUE(map.test_range(kBase + 100, 10));
    EXPECT_TRUE(map.test_range(kBase + 96, 16));
}

TEST_F(ShadowTest, ClearMarksResetsEverything)
{
    Rng rng(5);
    std::vector<std::uintptr_t> addrs;
    for (int i = 0; i < 1000; ++i) {
        const std::uintptr_t a = kBase + rng.next_below(kBytes);
        addrs.push_back(a);
        map.mark(a);
    }
    map.clear_marks();
    for (const auto a : addrs)
        ASSERT_FALSE(map.test(a));
}

TEST_F(ShadowTest, ClearThenRemarkWorks)
{
    map.mark(kBase + 100);
    map.clear_marks();
    map.mark(kBase + 200);
    EXPECT_FALSE(map.test(kBase + 100));
    EXPECT_TRUE(map.test(kBase + 200));
}

TEST_F(ShadowTest, TestAndSetReportsPriorState)
{
    EXPECT_FALSE(map.test_and_set(kBase + 64));
    EXPECT_TRUE(map.test_and_set(kBase + 64));
    map.clear(kBase + 64);
    EXPECT_FALSE(map.test_and_set(kBase + 64));
}

TEST_F(ShadowTest, SingleClearOnlyAffectsOneGranule)
{
    map.mark(kBase);
    map.mark(kBase + 16);
    map.clear(kBase);
    EXPECT_FALSE(map.test(kBase));
    EXPECT_TRUE(map.test(kBase + 16));
}

TEST_F(ShadowTest, ConcurrentMarkingIsSound)
{
    // Multiple threads marking overlapping regions: every mark must land.
    const int kThreads = 4;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (std::size_t i = 0; i < 50000; ++i)
                map.mark(kBase + ((i * 37 + t * 13) % (kBytes / 2)));
        });
    }
    for (auto& th : threads)
        th.join();
    for (std::size_t i = 0; i < 50000; ++i) {
        for (int t = 0; t < kThreads; ++t)
            ASSERT_TRUE(map.test(kBase + ((i * 37 + t * 13) % (kBytes / 2))));
    }
}

TEST_F(ShadowTest, ShadowOverheadIsUnderOnePercent)
{
    // Paper §3.2: the shadow space is less than 1 % overhead.
    EXPECT_LT(map.shadow_bytes(), kBytes / 100);
}

}  // namespace
}  // namespace msw::sweep
