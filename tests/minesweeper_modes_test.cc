// Mode- and option-matrix tests: fully/mostly concurrent and synchronous
// sweeps, the ablation toggles (§5.4), the partial versions (§5.5), and
// the mostly-concurrent moved-pointer guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "core/minesweeper.h"
#include "util/rng.h"

namespace msw::core {
namespace {

Options
base_options(Mode mode)
{
    Options o;
    o.mode = mode;
    o.helper_threads = 2;
    o.min_sweep_bytes = 4096;
    o.jade.heap_bytes = std::size_t{1} << 30;
    return o;
}

struct Roots {
    void* slot[64] = {};
};

// The core safety property, replayed under every mode.
class ModeTest : public ::testing::TestWithParam<Mode>
{
};

TEST_P(ModeTest, CoreGuaranteesHoldInEveryMode)
{
    MineSweeper ms(base_options(GetParam()));
    Roots roots;
    ms.add_root(&roots, sizeof(roots));

    // Dangling pointer pins; removal releases.
    void* p = ms.alloc(64);
    roots.slot[0] = p;
    ms.free(p);
    ms.force_sweep();
    EXPECT_TRUE(ms.in_quarantine(p));
    roots.slot[0] = nullptr;
    ms.force_sweep();
    EXPECT_FALSE(ms.in_quarantine(p));

    // Cycle collapse via zeroing.
    auto** a = static_cast<void**>(ms.alloc(64));
    auto** b = static_cast<void**>(ms.alloc(64));
    a[0] = b;
    b[0] = a;
    ms.free(a);
    ms.free(b);
    ms.force_sweep();
    EXPECT_FALSE(ms.in_quarantine(a));
    EXPECT_FALSE(ms.in_quarantine(b));

    // Double free absorbed.
    void* d = ms.alloc(32);
    ms.free(d);
    ms.free(d);
    EXPECT_EQ(ms.sweep_stats().double_frees, 1u);
}

TEST_P(ModeTest, ChurnCompletesAndSweeps)
{
    MineSweeper ms(base_options(GetParam()));
    Rng rng(3);
    std::vector<void*> live;
    for (int i = 0; i < 30000; ++i) {
        if (live.empty() || rng.next_bool(0.5)) {
            live.push_back(ms.alloc(1 + rng.next_below(400)));
        } else {
            const std::size_t idx = rng.next_below(live.size());
            ms.free(live[idx]);
            live[idx] = live.back();
            live.pop_back();
        }
    }
    for (void* p : live)
        ms.free(p);
    ms.flush();
    ms.force_sweep();
    EXPECT_GT(ms.stats().sweeps, 0u);
    EXPECT_EQ(ms.stats().live_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllModes, ModeTest,
                         ::testing::Values(Mode::kFullyConcurrent,
                                           Mode::kMostlyConcurrent,
                                           Mode::kSynchronous),
                         [](const ::testing::TestParamInfo<Mode>& info) {
                             switch (info.param) {
                               case Mode::kFullyConcurrent:
                                 return "fully";
                               case Mode::kMostlyConcurrent:
                                 return "mostly";
                               case Mode::kSynchronous:
                                 return "synchronous";
                             }
                             return "unknown";
                         });

// ------------------------------------------------- mostly-concurrent STW

TEST(MostlyConcurrent, MovedPointerIsStillFound)
{
    // A mutator thread continuously moves the only copy of a dangling
    // pointer between two root slots while sweeps run. The mostly-
    // concurrent mode guarantees the pointer is found regardless (§4.3):
    // the allocation must never be released while a copy exists.
    MineSweeper ms(base_options(Mode::kMostlyConcurrent));
    Roots roots;
    ms.add_root(&roots, sizeof(roots));

    void* victim = ms.alloc(64);
    roots.slot[0] = victim;
    ms.free(victim);

    std::atomic<bool> stop{false};
    std::thread mover([&] {
        ms.register_mutator_thread();
        bool at_zero = true;
        while (!stop.load(std::memory_order_relaxed)) {
            if (at_zero) {
                // Move: write the new copy, then erase the old one.
                roots.slot[63] = roots.slot[0];
                roots.slot[0] = nullptr;
            } else {
                roots.slot[0] = roots.slot[63];
                roots.slot[63] = nullptr;
            }
            at_zero = !at_zero;
        }
        ms.unregister_mutator_thread();
    });

    for (int i = 0; i < 10; ++i) {
        ms.force_sweep();
        ASSERT_TRUE(ms.in_quarantine(victim))
            << "moved dangling pointer lost on sweep " << i;
    }
    stop.store(true);
    mover.join();
    roots.slot[0] = nullptr;
    roots.slot[63] = nullptr;
    ms.force_sweep();
    EXPECT_FALSE(ms.in_quarantine(victim));
}

TEST(MostlyConcurrent, RegisterHeldPointerIsFoundDuringStw)
{
    // Keep the only pointer in a parked thread's context (stack/register
    // file): the STW register/stack scan must pin the allocation.
    MineSweeper ms(base_options(Mode::kMostlyConcurrent));
    std::atomic<bool> stop{false};
    std::atomic<void*> handoff{nullptr};
    std::atomic<void* volatile*> escape{nullptr};

    std::thread holder([&] {
        ms.register_mutator_thread();
        // A volatile stack slot whose address escapes keeps a genuinely
        // live copy of the pointer on the registered stack (a plain local
        // — even a volatile one whose address is never taken — can be
        // kept out of memory entirely).
        void* mine = ms.alloc(64);
        void* volatile stack_copy = mine;
        escape.store(&stack_copy, std::memory_order_release);
        handoff.store(mine, std::memory_order_release);
        while (!stop.load(std::memory_order_relaxed))
            std::this_thread::yield();
        // Erase the stack copy, then tell the main thread.
        stack_copy = nullptr;
        (void)stack_copy;
        handoff.store(nullptr, std::memory_order_release);
        while (handoff.load(std::memory_order_acquire) == nullptr)
            std::this_thread::yield();  // wait for ack before unwinding
        ms.unregister_mutator_thread();
    });

    void* victim;
    while ((victim = handoff.load(std::memory_order_acquire)) == nullptr)
        std::this_thread::yield();
    ms.free(victim);
    ms.force_sweep();
    EXPECT_TRUE(ms.in_quarantine(victim))
        << "stack-held dangling pointer must pin the allocation";
    stop.store(true);
    while (handoff.load(std::memory_order_acquire) != nullptr)
        std::this_thread::yield();
    handoff.store(&stop, std::memory_order_release);  // ack
    holder.join();
}

// ------------------------------------------------------ ablation toggles

TEST(Ablation, WithoutZeroingCyclesPersist)
{
    Options o = base_options(Mode::kSynchronous);
    o.zeroing = false;
    o.helper_threads = 0;
    MineSweeper ms(o);
    auto** a = static_cast<void**>(ms.alloc(64));
    auto** b = static_cast<void**>(ms.alloc(64));
    a[0] = b;
    b[0] = a;
    ms.free(a);
    ms.free(b);
    ms.force_sweep();
    EXPECT_TRUE(ms.in_quarantine(a))
        << "without zeroing, cyclic quarantined data pins itself";
    EXPECT_TRUE(ms.in_quarantine(b));
}

TEST(Ablation, WithoutUnmappingPagesStayCommitted)
{
    Options o = base_options(Mode::kSynchronous);
    o.unmapping = false;
    o.helper_threads = 0;
    // Keep the sweep from firing so the allocation stays quarantined for
    // the duration of the check.
    o.min_sweep_bytes = std::size_t{1} << 30;
    MineSweeper ms(o);
    const std::size_t before = ms.stats().committed_bytes;
    void* p = ms.alloc(4 << 20);
    std::memset(p, 1, 4 << 20);
    ms.free(p);
    EXPECT_GE(ms.stats().committed_bytes, before + (4u << 20))
        << "pages must remain committed while quarantined";
    EXPECT_EQ(ms.sweep_stats().unmapped_entries, 0u);
}

TEST(Ablation, WithoutPurgingFreeExtentsRemainCommitted)
{
    Options with = base_options(Mode::kSynchronous);
    with.helper_threads = 0;
    Options without = with;
    without.purging = false;

    auto run = [](MineSweeper& ms) {
        std::vector<void*> ptrs;
        for (int i = 0; i < 2000; ++i)
            ptrs.push_back(ms.alloc(4096));
        for (void* p : ptrs)
            ms.free(p);
        ms.force_sweep();
        return ms.stats().committed_bytes;
    };
    MineSweeper ms_with(with);
    MineSweeper ms_without(without);
    const std::size_t committed_with = run(ms_with);
    const std::size_t committed_without = run(ms_without);
    EXPECT_LT(committed_with, committed_without)
        << "post-sweep purge must reduce committed memory";
}

// ------------------------------------------------------ partial versions

TEST(PartialVersions, NoQuarantineForwardsImmediately)
{
    Options o = base_options(Mode::kSynchronous);
    o.quarantine_enabled = false;
    o.helper_threads = 0;
    MineSweeper ms(o);
    void* p = ms.alloc(64);
    ms.free(p);
    EXPECT_FALSE(ms.in_quarantine(p));
    // Reuse happens immediately (thread cache LIFO).
    void* q = ms.alloc(64);
    EXPECT_EQ(q, p);
    ms.free(q);
}

TEST(PartialVersions, QuarantineWithoutSweepReleasesEverything)
{
    Options o = base_options(Mode::kSynchronous);
    o.sweep_enabled = false;
    o.helper_threads = 0;
    MineSweeper ms(o);
    Roots roots;
    ms.add_root(&roots, sizeof(roots));
    void* p = ms.alloc(64);
    roots.slot[0] = p;  // dangling — but version 3 releases regardless
    ms.free(p);
    EXPECT_TRUE(ms.in_quarantine(p));
    ms.force_sweep();
    EXPECT_FALSE(ms.in_quarantine(p));
    EXPECT_EQ(ms.sweep_stats().failed_frees, 0u);
    roots.slot[0] = nullptr;
}

TEST(PartialVersions, SweepWithoutKeepFailedCountsButReleases)
{
    Options o = base_options(Mode::kSynchronous);
    o.keep_failed = false;
    o.helper_threads = 0;
    MineSweeper ms(o);
    Roots roots;
    ms.add_root(&roots, sizeof(roots));
    void* p = ms.alloc(64);
    roots.slot[0] = p;
    ms.free(p);
    ms.force_sweep();
    EXPECT_FALSE(ms.in_quarantine(p)) << "version 5 deallocates regardless";
    EXPECT_GE(ms.sweep_stats().failed_frees, 1u)
        << "the failed test is still recorded";
    roots.slot[0] = nullptr;
}

TEST(Backpressure, ExtremeChurnStaysBoundedViaPausing)
{
    // mimalloc-bench-style pure churn (§5.7): quarantine growth must be
    // throttled by sweeps (plus pausing) rather than growing unboundedly.
    Options o = base_options(Mode::kFullyConcurrent);
    o.pause_factor = 4.0;
    MineSweeper ms(o);
    for (int i = 0; i < 200000; ++i) {
        void* p = ms.alloc(256);
        ms.free(p);
    }
    ms.flush();
    const auto s = ms.stats();
    EXPECT_GT(s.sweeps, 0u);
    EXPECT_LT(s.quarantine_bytes, 64u << 20);
}

}  // namespace
}  // namespace msw::core
