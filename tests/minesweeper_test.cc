// MineSweeper end-to-end tests: the paper's security guarantees
// (quarantine until no dangling pointers, use-after-reallocate prevention,
// double-free idempotence, zeroing, unmapping) plus mode and partial-
// version behaviour.
//
// Note on methodology: the gtest thread's stack is *not* registered as a
// mutator stack, so pointers held in test locals do not pin allocations.
// Tests place dangling pointers in explicitly registered root arrays to
// control exactly what the sweep can see.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "core/minesweeper.h"
#include "util/rng.h"

namespace msw::core {
namespace {

Options
test_options(Mode mode = Mode::kFullyConcurrent)
{
    Options o;
    o.mode = mode;
    o.helper_threads = 2;
    o.min_sweep_bytes = 4096;  // tests use tiny heaps
    o.jade.heap_bytes = std::size_t{1} << 30;
    return o;
}

/** Root array the sweep scans; entries act as the program's pointers. */
struct Roots {
    static constexpr int kSlots = 64;
    void* slot[kSlots] = {};
};

class MineSweeperTest : public ::testing::Test
{
  protected:
    MineSweeperTest() : ms(test_options())
    {
        ms.add_root(&roots, sizeof(roots));
    }

    MineSweeper ms;
    Roots roots;
};

// ------------------------------------------------------------ basic API

TEST_F(MineSweeperTest, AllocFreeBasics)
{
    void* p = ms.alloc(100);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xee, 100);
    ms.free(p);
    ms.free(nullptr);  // no-op
}

TEST_F(MineSweeperTest, UsableSizeCoversRequestWithEndSlack)
{
    for (std::size_t size : {1ul, 15ul, 16ul, 100ul, 14335ul, 100000ul}) {
        void* p = ms.alloc(size);
        EXPECT_GE(ms.usable_size(p), size) << size;
        // The underlying allocation must exceed the request: the +1 byte
        // end-pointer guarantee (§3.2).
        EXPECT_GT(ms.substrate().usable_size(p), size) << size;
        ms.free(p);
    }
}

TEST_F(MineSweeperTest, FreedAllocationEntersQuarantine)
{
    void* p = ms.alloc(64);
    EXPECT_FALSE(ms.in_quarantine(p));
    ms.free(p);
    EXPECT_TRUE(ms.in_quarantine(p));
}

TEST_F(MineSweeperTest, SweepReleasesUnreferencedAllocation)
{
    void* p = ms.alloc(64);
    ms.free(p);
    ms.force_sweep();
    EXPECT_FALSE(ms.in_quarantine(p))
        << "no pointer anywhere: must be released";
}

TEST_F(MineSweeperTest, DanglingRootPointerPinsAllocation)
{
    void* p = ms.alloc(64);
    roots.slot[0] = p;  // dangling pointer survives the free
    ms.free(p);
    ms.force_sweep();
    EXPECT_TRUE(ms.in_quarantine(p))
        << "allocation with a dangling pointer must stay quarantined";
    EXPECT_GE(ms.sweep_stats().failed_frees, 1u);

    roots.slot[0] = nullptr;  // program overwrites the dangling pointer
    ms.force_sweep();
    EXPECT_FALSE(ms.in_quarantine(p))
        << "once unreachable, the allocation must be released";
}

TEST_F(MineSweeperTest, InteriorDanglingPointerPins)
{
    auto* p = static_cast<char*>(ms.alloc(1024));
    roots.slot[0] = p + 512;  // interior pointer
    ms.free(p);
    ms.force_sweep();
    EXPECT_TRUE(ms.in_quarantine(p));
    roots.slot[0] = nullptr;
    ms.force_sweep();
    EXPECT_FALSE(ms.in_quarantine(p));
}

TEST_F(MineSweeperTest, EndPointerPinsAllocation)
{
    // C/C++ allows one-past-the-end pointers; the +1 B slack keeps them
    // inside the allocation's shadow range (§3.2).
    const std::size_t size = 256;  // exactly a class size
    auto* p = static_cast<char*>(ms.alloc(size));
    roots.slot[0] = p + size;  // end() pointer
    ms.free(p);
    ms.force_sweep();
    EXPECT_TRUE(ms.in_quarantine(p))
        << "end pointer must pin the allocation";
    roots.slot[0] = nullptr;
    ms.force_sweep();
    EXPECT_FALSE(ms.in_quarantine(p));
}

TEST_F(MineSweeperTest, PointerInLiveHeapObjectPins)
{
    // The dangling pointer lives inside another *live* heap allocation.
    auto** holder = static_cast<void**>(ms.alloc(sizeof(void*) * 4));
    void* victim = ms.alloc(64);
    holder[2] = victim;
    roots.slot[0] = holder;  // keep holder reachable (irrelevant to test)
    ms.free(victim);
    ms.force_sweep();
    EXPECT_TRUE(ms.in_quarantine(victim));

    holder[2] = nullptr;
    ms.force_sweep();
    EXPECT_FALSE(ms.in_quarantine(victim));
    roots.slot[0] = nullptr;
    ms.free(holder);
}

TEST_F(MineSweeperTest, FalsePointerConservativelyPins)
{
    void* p = ms.alloc(64);
    // An integer that happens to equal the address: indistinguishable
    // from a pointer; must conservatively prevent deallocation (§3.3).
    roots.slot[0] = reinterpret_cast<void*>(to_addr(p));
    ms.free(p);
    ms.force_sweep();
    EXPECT_TRUE(ms.in_quarantine(p));
    roots.slot[0] = nullptr;
    ms.force_sweep();
}

TEST_F(MineSweeperTest, HiddenXorPointerIsNotFound)
{
    // XORed pointers are outside the guarantee (§1.2) but must not break
    // anything: the allocation is simply released.
    void* p = ms.alloc(64);
    roots.slot[0] =
        reinterpret_cast<void*>(to_addr(p) ^ 0xdeadbeefcafebabeull);
    ms.free(p);
    ms.force_sweep();
    EXPECT_FALSE(ms.in_quarantine(p));
    roots.slot[0] = nullptr;
}

TEST_F(MineSweeperTest, ZeroingClearsFreedContents)
{
    auto* p = static_cast<unsigned char*>(ms.alloc(256));
    std::memset(p, 0xaa, 256);
    ms.free(p);
    // Benign use-after-free read: still mapped, but must read zeros —
    // free() zero-fills (§4.1), so no stale data (or pointers) survive.
    for (int i = 0; i < 256; ++i)
        ASSERT_EQ(p[i], 0u);
}

TEST_F(MineSweeperTest, ZeroingBreaksQuarantineCycles)
{
    // a -> b and b -> a, both freed: without zeroing they would pin each
    // other forever; zeroing flattens the graph (§4.1, Figure 6).
    auto** a = static_cast<void**>(ms.alloc(64));
    auto** b = static_cast<void**>(ms.alloc(64));
    a[0] = b;
    b[0] = a;
    ms.free(a);
    ms.free(b);
    ms.force_sweep();
    EXPECT_FALSE(ms.in_quarantine(a));
    EXPECT_FALSE(ms.in_quarantine(b));
}

TEST_F(MineSweeperTest, DanglingPointerInsideQuarantinedDataIsGone)
{
    // holder -> victim; both freed, holder freed *after* victim but
    // before the sweep. Zeroing holder removes its pointer, so victim
    // must be released too.
    auto** holder = static_cast<void**>(ms.alloc(64));
    void* victim = ms.alloc(64);
    holder[0] = victim;
    ms.free(victim);
    ms.free(holder);
    ms.force_sweep();
    EXPECT_FALSE(ms.in_quarantine(victim));
    EXPECT_FALSE(ms.in_quarantine(holder));
}

// ------------------------------------------------------- double frees

TEST_F(MineSweeperTest, DoubleFreeIsIdempotent)
{
    void* p = ms.alloc(64);
    ms.free(p);
    ms.free(p);
    ms.free(p);
    EXPECT_EQ(ms.sweep_stats().double_frees, 2u);
    ms.force_sweep();
    EXPECT_FALSE(ms.in_quarantine(p));
    // The allocation was truly freed exactly once: allocating again works.
    void* q = ms.alloc(64);
    ASSERT_NE(q, nullptr);
    ms.free(q);
}

TEST_F(MineSweeperTest, FreeAfterReleaseAndReallocIsLegitimate)
{
    void* p = ms.alloc(64);
    ms.free(p);
    ms.force_sweep();
    // p's memory may be reused now; a new allocation at the same address
    // must be freeable without being flagged as a double free.
    std::vector<void*> ptrs;
    bool reused = false;
    for (int i = 0; i < 1000 && !reused; ++i) {
        void* q = ms.alloc(64);
        ptrs.push_back(q);
        reused = q == p;
    }
    const std::uint64_t before = ms.sweep_stats().double_frees;
    for (void* q : ptrs)
        ms.free(q);
    EXPECT_EQ(ms.sweep_stats().double_frees, before);
}

// ------------------------------------------- use-after-reallocate defence

TEST_F(MineSweeperTest, UseAfterReallocatePrevented)
{
    // The Figure-2 exploit pattern: free an object while a dangling
    // pointer remains, then spray same-sized allocations. None may alias
    // the victim while the dangling pointer exists.
    void* victim = ms.alloc(128);
    roots.slot[0] = victim;  // the program's dangling pointer
    ms.free(victim);

    for (int i = 0; i < 5000; ++i) {
        void* attacker = ms.alloc(128);
        ASSERT_NE(attacker, victim)
            << "attacker aliased the victim at spray " << i;
        ms.free(attacker);
    }
    ms.force_sweep();
    EXPECT_TRUE(ms.in_quarantine(victim));
    roots.slot[0] = nullptr;
}

TEST_F(MineSweeperTest, ReuseAllowedOnceDanglingPointerGone)
{
    void* victim = ms.alloc(128);
    roots.slot[0] = victim;
    ms.free(victim);
    ms.force_sweep();
    roots.slot[0] = nullptr;  // program drops the pointer
    ms.force_sweep();
    // Now reuse is safe and should eventually happen.
    bool reused = false;
    std::vector<void*> ptrs;
    for (int i = 0; i < 5000 && !reused; ++i) {
        void* q = ms.alloc(128);
        ptrs.push_back(q);
        reused = q == victim;
    }
    EXPECT_TRUE(reused) << "memory must eventually be recycled";
    for (void* q : ptrs)
        ms.free(q);
}

// --------------------------------------------------------- large/unmap

TEST_F(MineSweeperTest, LargeFreeUnmapsPhysicalPages)
{
    const std::size_t size = 4 << 20;
    auto before = ms.stats().committed_bytes;
    void* p = ms.alloc(size);
    std::memset(p, 1, size);
    EXPECT_GE(ms.stats().committed_bytes, before + size);
    ms.free(p);
    // Pages are decommitted immediately; committed accounting drops even
    // though the allocation is still quarantined.
    EXPECT_LT(ms.stats().committed_bytes, before + size / 2);
    EXPECT_TRUE(ms.in_quarantine(p));
    EXPECT_GE(ms.sweep_stats().unmapped_entries, 1u);
}

TEST_F(MineSweeperTest, UnmappedQuarantinePageFaultsOnAccess)
{
    void* p = ms.alloc(1 << 20);
    ms.free(p);
    // A use-after-free through the unmapped page must fault (clean
    // termination, not silent corruption). Probed in a forked child.
    const pid_t pid = fork();
    if (pid == 0) {
        *static_cast<volatile char*>(p) = 1;
        _exit(0);
    }
    int status = 0;
    waitpid(pid, &status, 0);
    EXPECT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGSEGV);
}

TEST_F(MineSweeperTest, UnmappedAllocationIsReusableAfterRelease)
{
    void* p = ms.alloc(1 << 20);
    ms.free(p);
    ms.force_sweep();
    EXPECT_FALSE(ms.in_quarantine(p));
    void* q = ms.alloc(1 << 20);
    std::memset(q, 0x3c, 1 << 20);  // must be writable again
    ms.free(q);
}

TEST_F(MineSweeperTest, DanglingPointerToUnmappedLargeStillPins)
{
    void* p = ms.alloc(1 << 20);
    roots.slot[0] = p;
    ms.free(p);
    ms.force_sweep();
    EXPECT_TRUE(ms.in_quarantine(p));
    roots.slot[0] = nullptr;
    ms.force_sweep();
    EXPECT_FALSE(ms.in_quarantine(p));
}

// ------------------------------------------------------------- realloc

TEST_F(MineSweeperTest, ReallocPreservesDataAndQuarantinesOld)
{
    auto* p = static_cast<char*>(ms.alloc(64));
    std::memset(p, 'q', 64);
    auto* q = static_cast<char*>(ms.realloc(p, 10000));
    ASSERT_NE(q, p);
    for (int i = 0; i < 64; ++i)
        ASSERT_EQ(q[i], 'q');
    EXPECT_TRUE(ms.in_quarantine(p));
    ms.free(q);
}

// ------------------------------------------------------------- triggers

TEST_F(MineSweeperTest, SweepsTriggerAutomatically)
{
    // Churn enough memory that the 15 % threshold fires on its own.
    Rng rng(1);
    for (int i = 0; i < 20000; ++i) {
        void* p = ms.alloc(64 + rng.next_below(512));
        std::memset(p, 1, 16);
        ms.free(p);
    }
    ms.flush();
    EXPECT_GT(ms.stats().sweeps, 0u);
}

TEST_F(MineSweeperTest, QuarantineBytesBounded)
{
    // With automatic sweeping, the quarantine must stay bounded relative
    // to the live heap.
    std::vector<void*> live;
    Rng rng(2);
    for (int i = 0; i < 30000; ++i) {
        live.push_back(ms.alloc(128));
        if (live.size() > 256) {
            const std::size_t idx = rng.next_below(live.size());
            ms.free(live[idx]);
            live[idx] = live.back();
            live.pop_back();
        }
    }
    ms.flush();
    ms.force_sweep();
    const auto s = ms.stats();
    EXPECT_LT(s.quarantine_bytes, s.live_bytes + (4u << 20));
    for (void* p : live)
        ms.free(p);
}

// ----------------------------------------------------------------- stats

TEST_F(MineSweeperTest, StatsAreCoherent)
{
    void* p = ms.alloc(1000);
    const auto s = ms.stats();
    EXPECT_GE(s.live_bytes, 1000u);
    EXPECT_GT(s.committed_bytes, 0u);
    EXPECT_GT(s.metadata_bytes, 0u);
    EXPECT_GE(s.alloc_calls, 1u);
    ms.free(p);
    const auto s2 = ms.stats();
    EXPECT_GE(s2.free_calls, 1u);
    EXPECT_GE(s2.quarantine_bytes, 1000u);
}

// ------------------------------------------------------------- threading

TEST_F(MineSweeperTest, MultiThreadedChurnPreservesInvariants)
{
    const int kThreads = 4;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            ms.register_mutator_thread();
            Rng rng(77 + t);
            std::vector<std::pair<unsigned char*, unsigned char>> mine;
            for (int i = 0; i < 20000; ++i) {
                if (mine.empty() || rng.next_bool(0.52)) {
                    const std::size_t size = 1 + rng.next_below(1000);
                    auto canary =
                        static_cast<unsigned char>(rng.next_below(256));
                    auto* p =
                        static_cast<unsigned char*>(ms.alloc(size));
                    std::memset(p, canary, size);
                    mine.emplace_back(p, canary);
                } else {
                    const std::size_t idx = rng.next_below(mine.size());
                    auto [p, canary] = mine[idx];
                    // Canary intact = no aliasing reallocation occurred.
                    ASSERT_EQ(*p, canary);
                    ms.free(p);
                    mine[idx] = mine.back();
                    mine.pop_back();
                }
            }
            for (auto [p, canary] : mine) {
                ASSERT_EQ(*p, canary);
                ms.free(p);
            }
            ms.unregister_mutator_thread();
        });
    }
    for (auto& th : threads)
        th.join();
    ms.flush();
}

}  // namespace
}  // namespace msw::core
