// JadeHeap end-to-end tests: malloc/free semantics, size classes, thread
// caches, large allocations, alignment, realloc, lookup, stats, and
// multi-threaded stress.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <thread>
#include <unordered_set>
#include <vector>

#include "alloc/jade_allocator.h"
#include "util/rng.h"

namespace msw::alloc {
namespace {

class JadeTest : public ::testing::Test
{
  protected:
    JadeAllocator::Options
    options()
    {
        JadeAllocator::Options o;
        o.heap_bytes = std::size_t{1} << 30;
        o.decay_ms = 0;
        return o;
    }

    JadeAllocator jade{options()};
};

TEST_F(JadeTest, AllocReturnsWritableMemory)
{
    void* p = jade.alloc(100);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xcd, 100);
    jade.free(p);
}

TEST_F(JadeTest, ZeroSizeAllocationIsValid)
{
    void* p = jade.alloc(0);
    ASSERT_NE(p, nullptr);
    EXPECT_GE(jade.usable_size(p), 1u);
    jade.free(p);
}

TEST_F(JadeTest, FreeNullIsNoop)
{
    jade.free(nullptr);
}

TEST_F(JadeTest, UsableSizeCoversRequest)
{
    for (std::size_t size : {1ul, 16ul, 17ul, 100ul, 4096ul, 14336ul,
                             14337ul, 100000ul, 5000000ul}) {
        void* p = jade.alloc(size);
        EXPECT_GE(jade.usable_size(p), size) << size;
        jade.free(p);
    }
}

TEST_F(JadeTest, SmallAllocationsAreGranuleAligned)
{
    for (std::size_t size = 1; size <= 512; size += 13) {
        void* p = jade.alloc(size);
        EXPECT_TRUE(is_aligned(to_addr(p), kGranule)) << size;
        jade.free(p);
    }
}

TEST_F(JadeTest, LargeAllocationsArePageAligned)
{
    void* p = jade.alloc(1 << 20);
    EXPECT_TRUE(is_aligned(to_addr(p), vm::kPageSize));
    jade.free(p);
}

TEST_F(JadeTest, DistinctLiveAllocationsDoNotOverlap)
{
    struct Range {
        std::uintptr_t lo, hi;
    };
    std::vector<Range> live;
    std::vector<void*> ptrs;
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        const std::size_t size = 1 + rng.next_below(300);
        void* p = jade.alloc(size);
        const std::uintptr_t lo = to_addr(p);
        const std::uintptr_t hi = lo + jade.usable_size(p);
        for (const Range& r : live)
            ASSERT_TRUE(hi <= r.lo || r.hi <= lo)
                << "overlap at iteration " << i;
        live.push_back({lo, hi});
        ptrs.push_back(p);
    }
    for (void* p : ptrs)
        jade.free(p);
}

TEST_F(JadeTest, MemoryIsReusedAfterFree)
{
    // Same-class alloc after free should come from the thread cache (LIFO).
    void* a = jade.alloc(64);
    jade.free(a);
    void* b = jade.alloc(64);
    EXPECT_EQ(a, b);
    jade.free(b);
}

TEST_F(JadeTest, ContentsArePreservedWhileLive)
{
    std::vector<void*> ptrs;
    for (int i = 0; i < 500; ++i) {
        auto* p = static_cast<int*>(jade.alloc(sizeof(int) * 8));
        p[0] = i;
        p[7] = ~i;
        ptrs.push_back(p);
    }
    for (int i = 0; i < 500; ++i) {
        auto* p = static_cast<int*>(ptrs[i]);
        ASSERT_EQ(p[0], i);
        ASSERT_EQ(p[7], ~i);
        jade.free(p);
    }
}

TEST_F(JadeTest, AlignedAllocHonoursAlignment)
{
    for (std::size_t align : {16ul, 32ul, 64ul, 128ul, 256ul, 1024ul,
                              4096ul, 16384ul}) {
        for (std::size_t size : {1ul, 100ul, 5000ul, 20000ul}) {
            void* p = jade.alloc_aligned(align, size);
            ASSERT_NE(p, nullptr);
            EXPECT_TRUE(is_aligned(to_addr(p), align))
                << "align " << align << " size " << size;
            EXPECT_GE(jade.usable_size(p), size);
            jade.free(p);
        }
    }
}

TEST_F(JadeTest, ReallocGrowsAndPreservesData)
{
    auto* p = static_cast<char*>(jade.alloc(64));
    std::memset(p, 'x', 64);
    auto* q = static_cast<char*>(jade.realloc(p, 100000));
    for (int i = 0; i < 64; ++i)
        ASSERT_EQ(q[i], 'x');
    jade.free(q);
}

TEST_F(JadeTest, ReallocSameSizeKeepsPointer)
{
    void* p = jade.alloc(100);
    EXPECT_EQ(jade.realloc(p, 101), p);
    jade.free(p);
}

TEST_F(JadeTest, ReallocNullBehavesLikeAlloc)
{
    void* p = jade.realloc(nullptr, 50);
    ASSERT_NE(p, nullptr);
    jade.free(p);
}

TEST_F(JadeTest, LookupAllocationFindsInteriorPointers)
{
    auto* p = static_cast<char*>(jade.alloc(1000));
    JadeAllocator::AllocationInfo info;
    ASSERT_TRUE(jade.lookup_allocation(to_addr(p) + 500, &info));
    EXPECT_EQ(info.base, to_addr(p));
    EXPECT_GE(info.usable, 1000u);
    EXPECT_TRUE(info.live);
    jade.free(p);
}

TEST_F(JadeTest, LookupAllocationLargeInterior)
{
    auto* p = static_cast<char*>(jade.alloc(1 << 20));
    JadeAllocator::AllocationInfo info;
    ASSERT_TRUE(jade.lookup_allocation(to_addr(p) + (1 << 19), &info));
    EXPECT_EQ(info.base, to_addr(p));
    EXPECT_TRUE(info.live);
    jade.free(p);
}

TEST_F(JadeTest, LookupAllocationSeesFreedSlotAsDead)
{
    void* p = jade.alloc(64);
    jade.flush();  // ensure the free below reaches the bin, not the tcache
    jade.free(p);
    jade.flush();
    JadeAllocator::AllocationInfo info;
    if (jade.lookup_allocation(to_addr(p), &info))
        EXPECT_FALSE(info.live);
}

TEST_F(JadeTest, LookupRejectsNonHeapAddresses)
{
    int local = 0;
    JadeAllocator::AllocationInfo info;
    EXPECT_FALSE(jade.lookup_allocation(to_addr(&local), &info));
}

TEST_F(JadeTest, StatsTrackLiveBytes)
{
    const std::size_t before = jade.live_bytes();
    void* p = jade.alloc(1000);
    EXPECT_GE(jade.live_bytes(), before + 1000);
    jade.free(p);
    EXPECT_EQ(jade.live_bytes(), before);
}

TEST_F(JadeTest, StatsCountCalls)
{
    const AllocatorStats before = jade.stats();
    void* p = jade.alloc(10);
    jade.free(p);
    const AllocatorStats after = jade.stats();
    EXPECT_EQ(after.alloc_calls, before.alloc_calls + 1);
    EXPECT_EQ(after.free_calls, before.free_calls + 1);
}

TEST_F(JadeTest, FreeDirectBypassesThreadCache)
{
    void* p = jade.alloc(64);
    jade.free_direct(p);
    // The object must be back in the bin: a fresh alloc may or may not
    // return it, but live accounting must be exact.
    JadeAllocator::AllocationInfo info;
    if (jade.lookup_allocation(to_addr(p), &info))
        EXPECT_FALSE(info.live);
}

TEST_F(JadeTest, SlabsAreReleasedWhenEmptied)
{
    // Allocate enough objects of one class to build several slabs, then
    // free them all; active bytes must drop back.
    std::vector<void*> ptrs;
    for (int i = 0; i < 5000; ++i)
        ptrs.push_back(jade.alloc(128));
    const std::size_t active_peak = jade.extents().stats().active_bytes;
    for (void* p : ptrs)
        jade.free(p);
    jade.flush();
    const std::size_t active_after = jade.extents().stats().active_bytes;
    EXPECT_LT(active_after, active_peak / 4);
}

TEST_F(JadeTest, RandomChurnMaintainsIntegrity)
{
    // Property test: randomly allocate/free with canary values; canaries
    // must survive until their free.
    struct Obj {
        void* ptr;
        std::size_t size;
        unsigned char canary;
    };
    std::vector<Obj> live;
    Rng rng(99);
    for (int i = 0; i < 30000; ++i) {
        if (live.empty() || rng.next_bool(0.55)) {
            const std::size_t size = 1 + static_cast<std::size_t>(
                                             rng.next_lognormal(4.0, 1.5));
            auto canary = static_cast<unsigned char>(rng.next_below(256));
            void* p = jade.alloc(size);
            std::memset(p, canary, size);
            live.push_back({p, size, canary});
        } else {
            const std::size_t idx = rng.next_below(live.size());
            Obj o = live[idx];
            auto* bytes = static_cast<unsigned char*>(o.ptr);
            ASSERT_EQ(bytes[0], o.canary);
            ASSERT_EQ(bytes[o.size - 1], o.canary);
            ASSERT_EQ(bytes[o.size / 2], o.canary);
            jade.free(o.ptr);
            live[idx] = live.back();
            live.pop_back();
        }
    }
    for (const Obj& o : live)
        jade.free(o.ptr);
}

TEST_F(JadeTest, MultiThreadedChurnIsSafe)
{
    const int kThreads = 4;
    const int kIters = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Rng rng(1000 + t);
            std::vector<std::pair<void*, unsigned char>> mine;
            for (int i = 0; i < kIters; ++i) {
                if (mine.empty() || rng.next_bool(0.5)) {
                    const std::size_t size = 1 + rng.next_below(2000);
                    auto canary =
                        static_cast<unsigned char>(rng.next_below(256));
                    void* p = jade.alloc(size);
                    std::memset(p, canary, size);
                    mine.emplace_back(p, canary);
                } else {
                    const std::size_t idx = rng.next_below(mine.size());
                    auto [p, canary] = mine[idx];
                    ASSERT_EQ(*static_cast<unsigned char*>(p), canary);
                    jade.free(p);
                    mine[idx] = mine.back();
                    mine.pop_back();
                }
            }
            for (auto [p, canary] : mine)
                jade.free(p);
            jade.flush();
        });
    }
    for (auto& th : threads)
        th.join();
}

TEST_F(JadeTest, CrossThreadFreeIsSafe)
{
    // Allocate on one thread, free on another (producer/consumer pattern).
    std::vector<void*> ptrs;
    std::thread producer([&] {
        for (int i = 0; i < 10000; ++i)
            ptrs.push_back(jade.alloc(1 + (i % 500)));
        jade.flush();
    });
    producer.join();
    std::thread consumer([&] {
        for (void* p : ptrs)
            jade.free(p);
        jade.flush();
    });
    consumer.join();
    EXPECT_EQ(jade.live_bytes(), 0u);
}

TEST(JadeMultiArena, ArenasDistributeThreads)
{
    JadeAllocator::Options o;
    o.heap_bytes = std::size_t{1} << 30;
    o.arenas = 4;
    JadeAllocator jade(o);
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&] {
            std::vector<void*> ptrs;
            for (int i = 0; i < 5000; ++i)
                ptrs.push_back(jade.alloc(64));
            for (void* p : ptrs)
                jade.free(p);
            jade.flush();
        });
    }
    for (auto& th : threads)
        th.join();
    EXPECT_EQ(jade.live_bytes(), 0u);
}

TEST(JadeNoTcache, WorksWithThreadCacheDisabled)
{
    JadeAllocator::Options o;
    o.heap_bytes = 256 << 20;
    o.enable_tcache = false;
    JadeAllocator jade(o);
    std::vector<void*> ptrs;
    for (int i = 0; i < 1000; ++i)
        ptrs.push_back(jade.alloc(1 + (i % 300)));
    for (void* p : ptrs)
        jade.free(p);
    EXPECT_EQ(jade.live_bytes(), 0u);
}

TEST(JadeLifecycle, ThreadExitFlushesItsCache)
{
    JadeAllocator jade;
    std::thread worker([&] {
        void* p = jade.alloc(64);
        jade.free(p);  // lands in the worker's tcache
    });
    worker.join();  // tcache destructor must flush to the bin
    JadeAllocator::AllocationInfo info;
    // After the flush the object must be genuinely free.
    // (The slab may have been released entirely, in which case lookup
    // fails — also acceptable.)
    SUCCEED();
}

}  // namespace
}  // namespace msw::alloc
