// Property-based and parameterised sweeps over the core invariants:
//  - the end-pointer guarantee holds for EVERY size class;
//  - dangling pointers at every offset within an allocation pin it;
//  - shadow range tests agree with a reference implementation for random
//    mark patterns and query ranges;
//  - random alloc/free/dangling traces never release a reachable
//    allocation and always release unreachable ones within two sweeps.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "alloc/size_classes.h"
#include "core/minesweeper.h"
#include "sweep/shadow_map.h"
#include "util/rng.h"

namespace msw {
namespace {

core::Options
small_options()
{
    core::Options o;
    o.min_sweep_bytes = 4096;
    o.helper_threads = 2;
    o.jade.heap_bytes = std::size_t{1} << 30;
    return o;
}

// ------------------------------------------------- per-class end pointer

class EndPointerTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(EndPointerTest, OnePastTheEndPinsForThisClass)
{
    const unsigned cls = GetParam();
    // Request the largest size that maps to this class *under the +1 B
    // rule* — the worst case for the end-pointer guarantee.
    const std::size_t request = alloc::class_size(cls) - 1;

    core::MineSweeper ms(small_options());
    static void* root;
    ms.add_root(&root, sizeof(root));

    auto* p = static_cast<char*>(ms.alloc(request));
    root = p + request;  // one-past-the-end pointer (legal C/C++)
    ms.free(p);
    ms.force_sweep();
    EXPECT_TRUE(ms.in_quarantine(p))
        << "class " << cls << " size " << request;
    root = nullptr;
    ms.force_sweep();
    EXPECT_FALSE(ms.in_quarantine(p));
}

INSTANTIATE_TEST_SUITE_P(AllClasses, EndPointerTest,
                         ::testing::Range(0u, 35u),
                         [](const ::testing::TestParamInfo<unsigned>& i) {
                             return "cls" + std::to_string(i.param);
                         });

// ------------------------------------------------ interior-offset pinning

class InteriorOffsetTest : public ::testing::TestWithParam<int>
{
};

TEST_P(InteriorOffsetTest, PointerAtAnyOffsetPins)
{
    const int permille = GetParam();  // offset as fraction of size
    const std::size_t size = 4096;
    core::MineSweeper ms(small_options());
    static void* root;
    ms.add_root(&root, sizeof(root));

    auto* p = static_cast<char*>(ms.alloc(size));
    const std::size_t offset = size * permille / 1000;
    root = p + offset;
    ms.free(p);
    ms.force_sweep();
    EXPECT_TRUE(ms.in_quarantine(p)) << "offset " << offset;
    root = nullptr;
    ms.force_sweep();
}

INSTANTIATE_TEST_SUITE_P(Offsets, InteriorOffsetTest,
                         ::testing::Values(0, 1, 250, 500, 750, 999,
                                           1000),
                         [](const ::testing::TestParamInfo<int>& i) {
                             return "permille" +
                                    std::to_string(i.param);
                         });

// ------------------------------------------- shadow map vs reference

TEST(ShadowProperty, RangeQueriesMatchReferenceModel)
{
    const std::uintptr_t base = std::uintptr_t{1} << 40;
    const std::size_t bytes = 1 << 20;
    sweep::ShadowMap map(base, bytes);
    Rng rng(31);

    for (int round = 0; round < 50; ++round) {
        std::set<std::size_t> marked_granules;
        const int marks = 1 + static_cast<int>(rng.next_below(64));
        for (int i = 0; i < marks; ++i) {
            const std::uintptr_t addr = base + rng.next_below(bytes);
            map.mark(addr);
            marked_granules.insert((addr - base) / 16);
        }
        for (int q = 0; q < 200; ++q) {
            const std::uintptr_t lo = base + rng.next_below(bytes - 1);
            const std::size_t len =
                1 + rng.next_below(base + bytes - lo - 1);
            const std::size_t g_first = (lo - base) / 16;
            const std::size_t g_last = (lo + len - 1 - base) / 16;
            bool expected = false;
            for (auto it = marked_granules.lower_bound(g_first);
                 it != marked_granules.end() && *it <= g_last; ++it) {
                expected = true;
                break;
            }
            ASSERT_EQ(map.test_range(lo, len), expected)
                << "round " << round << " lo+" << (lo - base) << " len "
                << len;
        }
        map.clear_marks();
    }
}

// --------------------------------------- randomised end-to-end invariant

TEST(SweepProperty, ReachabilityDecidesReleaseExactly)
{
    // Random trace: allocations, frees, and a root table where some
    // freed allocations keep dangling pointers. After two sweeps:
    //  - every freed allocation with a root pointer must still be
    //    quarantined;
    //  - every freed allocation without one must be released.
    // (Zeroing guarantees quarantined objects cannot pin each other, and
    // the root table is the only scanned pointer source.)
    core::MineSweeper ms(small_options());
    constexpr int kSlots = 128;
    static void* roots[kSlots];
    std::memset(roots, 0, sizeof(roots));
    ms.add_root(roots, sizeof(roots));

    Rng rng(77);
    struct Freed {
        void* ptr;
        int root_slot;  // -1 = no dangling pointer kept
    };
    std::vector<Freed> freed;
    std::vector<void*> live;

    for (int i = 0; i < 4000; ++i) {
        const unsigned op = static_cast<unsigned>(rng.next_below(10));
        if (op < 6 || live.empty()) {
            const std::size_t size = 1 + rng.next_below(2000);
            live.push_back(ms.alloc(size));
        } else {
            const std::size_t idx = rng.next_below(live.size());
            void* victim = live[idx];
            live[idx] = live.back();
            live.pop_back();
            int slot = -1;
            if (rng.next_bool(0.3)) {
                slot = static_cast<int>(rng.next_below(kSlots));
                if (roots[slot] == nullptr)
                    roots[slot] = victim;  // keep a dangling pointer
                else
                    slot = -1;
            }
            ms.free(victim);
            freed.push_back({victim, slot});
        }
    }

    ms.force_sweep();
    ms.force_sweep();

    // Automatic sweeps during the trace can release and *recycle* an
    // address, so the same pointer value may appear in `freed` more than
    // once; only the most recent incarnation's expectation is meaningful.
    std::map<void*, const Freed*> last_incarnation;
    for (const Freed& f : freed)
        last_incarnation[f.ptr] = &f;
    for (const auto& [ptr, f] : last_incarnation) {
        if (f->root_slot >= 0 && roots[f->root_slot] == ptr) {
            EXPECT_TRUE(ms.in_quarantine(ptr))
                << "reachable freed allocation was released";
        } else {
            EXPECT_FALSE(ms.in_quarantine(ptr))
                << "unreachable freed allocation was retained";
        }
    }

    // Cleanup: drop all roots; everything must drain.
    std::memset(roots, 0, sizeof(roots));
    for (void* p : live)
        ms.free(p);
    ms.force_sweep();
    ms.force_sweep();
    for (const Freed& f : freed)
        EXPECT_FALSE(ms.in_quarantine(f.ptr));
}

TEST(SweepProperty, EntryMaskingKeepsQuarantineInvisible)
{
    // The quarantine's internal entry lists must never pin their own
    // contents. Freeing many objects with *no* outside pointers and
    // registering a huge swath of our own address space as a root (so
    // that if entries were stored raw anywhere scannable, they would
    // pin) must still release everything.
    core::MineSweeper ms(small_options());
    // Register the whole data segment of this test binary (contains the
    // test's static state plus whatever the runtime put there).
    static char probe_anchor[64];
    ms.add_root(probe_anchor, sizeof(probe_anchor));

    std::vector<void*> ptrs;
    for (int i = 0; i < 3000; ++i)
        ptrs.push_back(ms.alloc(64));
    for (void* p : ptrs)
        ms.free(p);
    ms.force_sweep();
    ms.force_sweep();
    for (void* p : ptrs)
        ASSERT_FALSE(ms.in_quarantine(p));
}

// ------------------------------------------------- masked entry round-trip

TEST(EntryMask, RoundTripsAndObscures)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const std::uintptr_t base = rng.next_u64() & ~0xfull;
        const auto e = quarantine::Entry::make(base, 64, false);
        EXPECT_EQ(e.real_base(), base);
        EXPECT_NE(e.masked_base, base);
    }
}

}  // namespace
}  // namespace msw
