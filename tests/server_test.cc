// Server-workload tests: session bookkeeping balances, the latency
// digest populates, duration mode terminates, and the workload runs
// against every system the benchmark compares.
#include <gtest/gtest.h>

#include "workload/server.h"
#include "workload/system.h"

namespace msw::workload {
namespace {

ServerOptions
tiny_options()
{
    ServerOptions so;
    so.threads = 2;
    so.ops_per_thread = 20000;
    so.sessions_per_thread = 128;
    return so;
}

TEST(ServerWorkload, AllocsAndFreesBalance)
{
    System sys = make_system(SystemKind::kBaseline);
    const WorkloadResult r = run_server(sys, tiny_options());
    EXPECT_GT(r.allocs, 1000u);
    EXPECT_EQ(r.allocs, r.frees)
        << "shutdown closes every session, so the books must balance";
    EXPECT_GT(r.bytes_allocated, 0u);
}

TEST(ServerWorkload, OpLatencyDigestPopulates)
{
    const ServerOptions so = tiny_options();
    System sys = make_system(SystemKind::kBaseline);
    const WorkloadResult r = run_server(sys, so);
    EXPECT_EQ(r.op_latency.count, so.threads * so.ops_per_thread)
        << "every operation is timed exactly once";
    EXPECT_GT(r.op_latency.p50_ns, 0u);
    EXPECT_LE(r.op_latency.p50_ns, r.op_latency.p99_ns);
    EXPECT_LE(r.op_latency.p99_ns, r.op_latency.p999_ns);
    EXPECT_LE(r.op_latency.p999_ns, r.op_latency.max_ns);
}

TEST(ServerWorkload, DeterministicOpStreamForSameSeed)
{
    // The op stream (and so the alloc/free ledger) is a pure function
    // of the seed. The checksum is deliberately NOT: touch operations
    // fold recycled heap bytes, which vary run to run.
    const ServerOptions so = tiny_options();
    System a = make_system(SystemKind::kBaseline);
    const WorkloadResult ra = run_server(a, so);
    System b = make_system(SystemKind::kBaseline);
    const WorkloadResult rb = run_server(b, so);
    EXPECT_EQ(ra.allocs, rb.allocs)
        << "per-thread RNG streams are seeded deterministically";
    EXPECT_EQ(ra.frees, rb.frees);
    EXPECT_EQ(ra.bytes_allocated, rb.bytes_allocated);
}

TEST(ServerWorkload, DurationModeTerminates)
{
    ServerOptions so = tiny_options();
    so.duration_s = 0.2;
    System sys = make_system(SystemKind::kBaseline);
    const WorkloadResult r = run_server(sys, so);
    EXPECT_GT(r.op_latency.count, 0u);
    EXPECT_EQ(r.allocs, r.frees);
}

TEST(ServerWorkload, RunsAgainstEverySystem)
{
    for (SystemKind kind :
         {SystemKind::kBaseline, SystemKind::kMineSweeper,
          SystemKind::kMarkUs, SystemKind::kFFMalloc}) {
        ServerOptions so = tiny_options();
        so.ops_per_thread = 10000;
        System sys = make_system(kind);
        const WorkloadResult r = run_server(sys, so);
        EXPECT_EQ(r.allocs, r.frees)
            << "system: " << system_kind_name(kind);
        EXPECT_GT(r.op_latency.count, 0u)
            << "system: " << system_kind_name(kind);
        sys.flush();
    }
}

}  // namespace
}  // namespace msw::workload
